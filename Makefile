# offchip build helpers. `make check` is the gate CI runs; keep it green.

GO ?= go

.PHONY: check vet fmt build test test-race determinism validate conservation bench-smoke profile-smoke service-smoke fuzz-smoke bench bench-engine bench-trace bench-sweepd clean

## check: everything CI enforces — vet, formatting, build, tests under -race,
## the sequential-vs-parallel determinism gate, the invariant/metamorphic
## validation battery, the engine allocation gate, the profiler conservation
## gate, and the sweep-service smoke.
check: vet fmt build test-race determinism validate bench-smoke profile-smoke service-smoke

vet:
	$(GO) vet ./...

## fmt: fails if any file needs gofmt; prints the offenders.
fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

## determinism: differential gate — every parallel run must be bit-identical
## to sequential. -count=2 defeats test caching so both runs actually execute.
determinism:
	$(GO) test -run Determinism -race -count=2 ./...

## validate: the simulator-wide validation battery — every runtime invariant
## probe (causality, conservation, XY routing, zero-load oracles, the
## FR-FCFS starvation bound, address-map bijection) over every bundled
## workload, both L2 organizations, and the optimal scheme, plus the
## metamorphic relations (faster DRAM / ideal NoC / optimal scheme never
## slower; seeds never change totals). Subsumes the old `conservation`
## target, whose identities now live in check.VerifyTotals.
validate:
	$(GO) test -race ./internal/check
	$(GO) test -run Conservation -race -count=2 ./internal/sim

## conservation: legacy alias for the conservation half of `validate`.
conservation:
	$(GO) test -run Conservation -race -count=2 ./internal/sim

## bench-smoke: the allocation-regression gates on the hot paths. Runs the
## engine micro-benchmarks briefly and fails if the steady-state dispatch
## path allocates at all (pinned ceiling: 0 allocs/op), then pins the
## trace-cache hit path — decoding a memoized workload from its delta-encoded
## blob — to the same ceiling, so cache hits stay allocation-free no matter
## how the encoding evolves.
bench-smoke:
	$(GO) test -run='^$$' -bench='SteadyStateDispatch|ScheduleOnly' -benchtime=100x -benchmem ./internal/engine \
		| $(GO) run ./cmd/benchgate -bench 'SteadyStateDispatchTyped$$|ScheduleOnly$$' -max-allocs 0
	$(GO) test -run='^$$' -bench='DecodeCacheHit' -benchtime=1000x -benchmem ./internal/tracecache \
		| $(GO) run ./cmd/benchgate -bench 'DecodeCacheHit$$' -max-allocs 0

## profile-smoke: the latency-attribution conservation gate — a small
## three-way comparison with the profiler attached must attribute every
## access's latency exactly (components sum to the probe-observed end-to-end
## latency, no violations) and the live plane's Prometheus exposition must
## re-parse. -count=1 defeats caching so the simulation actually runs.
profile-smoke:
	$(GO) test -run TestProfileSmoke -count=1 ./internal/prof

## service-smoke: boot the sweep service with a real worker-process fleet,
## submit a sweep over HTTP, and check the results against the golden
## snapshot. -count=1 defeats caching so the fleet actually spawns.
service-smoke:
	$(GO) test -run TestServiceSmoke -count=1 ./cmd/sweepd

## fuzz-smoke: a short fuzz of every Fuzz target (also run nightly in CI).
FUZZTIME ?= 30s
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=FuzzParseProgram -fuzztime=$(FUZZTIME) ./internal/ir
	$(GO) test -run=^$$ -fuzz=FuzzParseJobID -fuzztime=$(FUZZTIME) ./internal/runner
	$(GO) test -run=^$$ -fuzz=FuzzDecodeOTC1 -fuzztime=$(FUZZTIME) ./internal/tracecache
	$(GO) test -run=^$$ -fuzz=FuzzParseMigrationSpec -fuzztime=$(FUZZTIME) ./internal/mem
	$(GO) test -run=^$$ -fuzz=FuzzParseMixSpec -fuzztime=$(FUZZTIME) ./internal/workloads

## bench: record the event-kernel wall-clock and allocation numbers into
## BENCH_engine.json, then run the per-figure benchmarks plus the obs
## overhead guards.
bench: bench-engine
	$(GO) test -bench=. -benchmem ./...

## bench-engine: time `-exp all` end to end and the engine micro-benchmarks,
## and write BENCH_engine.json (see README "Performance" for how to read it).
bench-engine:
	$(GO) run ./cmd/benchtab -bench-engine BENCH_engine.json

## bench-trace: time `-exp all` exact vs trace-cached + sampled and write
## BENCH_trace.json (see README "Performance").
bench-trace:
	$(GO) run ./cmd/benchtab -bench-trace BENCH_trace.json

## bench-sweepd: time the example sweep in-process vs on a worker-process
## fleet and write BENCH_sweepd.json (see README "Performance").
bench-sweepd:
	$(GO) run ./cmd/benchtab -bench-sweepd BENCH_sweepd.json -parallel 2

clean:
	$(GO) clean ./...
