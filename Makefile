# offchip build helpers. `make check` is the gate CI runs; keep it green.

GO ?= go

.PHONY: check vet fmt build test test-race bench clean

## check: everything CI enforces — vet, formatting, build, tests under -race.
check: vet fmt build test-race

vet:
	$(GO) vet ./...

## fmt: fails if any file needs gofmt; prints the offenders.
fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

## bench: the per-figure benchmarks plus the obs overhead guards.
bench:
	$(GO) test -bench=. -benchmem ./...

clean:
	$(GO) clean ./...
