# offchip build helpers. `make check` is the gate CI runs; keep it green.

GO ?= go

.PHONY: check vet fmt build test test-race determinism fuzz-smoke bench clean

## check: everything CI enforces — vet, formatting, build, tests under -race,
## and the sequential-vs-parallel determinism gate run twice.
check: vet fmt build test-race determinism

vet:
	$(GO) vet ./...

## fmt: fails if any file needs gofmt; prints the offenders.
fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

## determinism: differential gate — every parallel run must be bit-identical
## to sequential. -count=2 defeats test caching so both runs actually execute.
determinism:
	$(GO) test -run Determinism -race -count=2 ./...

## fuzz-smoke: a short fuzz of every Fuzz target (also run nightly in CI).
FUZZTIME ?= 30s
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=FuzzParseProgram -fuzztime=$(FUZZTIME) ./internal/ir

## bench: the per-figure benchmarks plus the obs overhead guards.
bench:
	$(GO) test -bench=. -benchmem ./...

clean:
	$(GO) clean ./...
