package offchip_test

// One benchmark per table and figure of the paper's evaluation (Section 6).
// Each iteration regenerates the experiment with full traces on the Table 1
// platform and reports the figure's headline number as a benchmark metric,
// so `go test -bench=. -benchmem` reproduces the whole evaluation:
//
//	BenchmarkFig16_LineInterleaving    avg_exec_improvement_pct=...
//
// The printed tables themselves come from `go run ./cmd/benchtab -exp all`;
// EXPERIMENTS.md records paper-vs-measured for every experiment.

import (
	"fmt"
	"testing"

	"offchip/internal/core"
	"offchip/internal/experiments"
	"offchip/internal/layout"
	"offchip/internal/sim"
	"offchip/internal/workloads"
)

// BenchmarkFullSweep is the end-to-end engine regression benchmark: one full
// (untruncated) application simulation per iteration, reporting wall-clock
// ns per simulated event and allocations. This is the number BENCH_engine.json
// tracks across engine changes — the micro-benchmarks in internal/engine
// isolate the queue, this one includes the caches, NoC, and DRAM model the
// events drive.
func BenchmarkFullSweep(b *testing.B) {
	app, ok := workloads.ByName("apsi")
	if !ok {
		b.Fatal("apsi workload missing")
	}
	m := layout.Default8x8()
	cm, err := layout.MappingM1(m, layout.PlacementCorners(8, 8))
	if err != nil {
		b.Fatal(err)
	}
	base, _, _, err := core.Workloads(app, m, cm, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.SimConfig(m, cm, core.Options{})
	b.ReportAllocs()
	b.ResetTimer()
	var events int64
	for i := 0; i < b.N; i++ {
		r, err := sim.Run(cfg, base)
		if err != nil {
			b.Fatal(err)
		}
		events += r.Events
	}
	b.StopTimer()
	if events > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(events), "ns/simevent")
	}
}

func full() experiments.Config { return experiments.Config{} }

// benchFig runs a FigResult experiment and reports selected columns of its
// average row as benchmark metrics.
func benchFig(b *testing.B, run func(experiments.Config) (*experiments.FigResult, error), metrics map[string]string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r, err := run(full())
		if err != nil {
			b.Fatal(err)
		}
		for metric, column := range metrics {
			for c, name := range r.Columns {
				if name == column {
					b.ReportMetric(r.Average[c], metric)
				}
			}
		}
	}
}

// BenchmarkFig03_OffChipShare regenerates Figure 3: the off-chip share of
// data accesses (paper: 22.4% of dynamic accesses on average).
func BenchmarkFig03_OffChipShare(b *testing.B) {
	benchFig(b, experiments.Fig3, map[string]string{
		"avg_offchip_share_pct":   "offchip/total%",
		"avg_offchip_l2level_pct": "offchip/L2level%",
	})
}

// BenchmarkFig04_OptimalScheme regenerates Figure 4: the optimal scheme's
// savings (paper: 20.8% / 68.2% / 45.6% network+memory, 19.5% execution).
func BenchmarkFig04_OptimalScheme(b *testing.B) {
	benchFig(b, experiments.Fig4, map[string]string{
		"avg_exec_improvement_pct":        "exec%",
		"avg_offchip_net_improvement_pct": "offchip-net%",
	})
}

// BenchmarkTable02_CompilerStats regenerates Table 2: arrays optimized and
// references satisfied per application.
func BenchmarkTable02_CompilerStats(b *testing.B) {
	benchFig(b, experiments.Table2, map[string]string{
		"avg_arrays_optimized_pct": "arrays%",
		"avg_refs_satisfied_pct":   "refs%",
	})
}

// BenchmarkFig13_AccessMaps regenerates Figure 13: the per-node
// distribution of apsi's off-chip accesses to MC0 before/after.
func BenchmarkFig13_AccessMaps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig13(full())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.QuadrantShareOriginal, "orig_quadrant_share_pct")
		b.ReportMetric(100*r.QuadrantShareOptimized, "opt_quadrant_share_pct")
	}
}

// BenchmarkFig14_PageInterleaving regenerates Figure 14 (paper averages:
// 12.1% / 62.8% / 41.9% / 17.1%).
func BenchmarkFig14_PageInterleaving(b *testing.B) {
	benchFig(b, experiments.Fig14, map[string]string{
		"avg_exec_improvement_pct":        "exec%",
		"avg_onchip_net_improvement_pct":  "onchip-net%",
		"avg_offchip_net_improvement_pct": "offchip-net%",
		"avg_mem_improvement_pct":         "mem%",
	})
}

// BenchmarkFig15_HopCDF regenerates Figure 15: the CDF of links traversed
// (paper: requests using <=4 links go from 22% to 31% off-chip).
func BenchmarkFig15_HopCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig15(full())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.AtOrBelow(r.OffChipBase, 4), "offchip_orig_le4links_pct")
		b.ReportMetric(100*r.AtOrBelow(r.OffChipOpt, 4), "offchip_opt_le4links_pct")
	}
}

// BenchmarkFig16_LineInterleaving regenerates Figure 16, the headline
// result (paper averages: 13.6% / 66.4% / 45.8% / 20.5%).
func BenchmarkFig16_LineInterleaving(b *testing.B) {
	benchFig(b, experiments.Fig16, map[string]string{
		"avg_exec_improvement_pct":        "exec%",
		"avg_onchip_net_improvement_pct":  "onchip-net%",
		"avg_offchip_net_improvement_pct": "offchip-net%",
		"avg_mem_improvement_pct":         "mem%",
	})
}

// BenchmarkFig17_MappingM1vsM2 regenerates Figure 17 (paper: M1 wins except
// for fma3d and minighost).
func BenchmarkFig17_MappingM1vsM2(b *testing.B) {
	benchFig(b, experiments.Fig17, map[string]string{
		"avg_m1_exec_pct": "M1 exec%",
		"avg_m2_exec_pct": "M2 exec%",
	})
}

// BenchmarkFig18_BankQueues regenerates Figure 18: per-application bank
// queue occupancy under M1 (paper: fma3d and minighost highest).
func BenchmarkFig18_BankQueues(b *testing.B) {
	benchFig(b, experiments.Fig18, map[string]string{
		"avg_queue_occupancy": "queue-occupancy",
	})
}

// BenchmarkFig19_MCPlacements regenerates Figure 19 (paper: P2 best at
// ~20.7% average).
func BenchmarkFig19_MCPlacements(b *testing.B) {
	benchFig(b, experiments.Fig19, map[string]string{
		"avg_p1_exec_pct": "P1-corners exec%",
		"avg_p2_exec_pct": "P2-diamond exec%",
		"avg_p3_exec_pct": "P3-topbottom exec%",
	})
}

// BenchmarkFig20_MCCounts regenerates Figure 20 (paper: more controllers,
// larger savings).
func BenchmarkFig20_MCCounts(b *testing.B) {
	benchFig(b, experiments.Fig20, map[string]string{
		"avg_4mc_exec_pct":  "4MC exec%",
		"avg_8mc_exec_pct":  "8MC exec%",
		"avg_16mc_exec_pct": "16MC exec%",
	})
}

// BenchmarkFig21_CoreCounts regenerates Figure 21 (paper: 14% on 4x4, 18%
// on 4x8, 20.5% on 8x8).
func BenchmarkFig21_CoreCounts(b *testing.B) {
	benchFig(b, experiments.Fig21, map[string]string{
		"avg_4x4_exec_pct": "4x4 exec%",
		"avg_8x4_exec_pct": "8x4 exec%",
		"avg_8x8_exec_pct": "8x8 exec%",
	})
}

// BenchmarkFig22_SharedL2 regenerates Figure 22 (paper: 24.3% average with
// the shared SNUCA L2).
func BenchmarkFig22_SharedL2(b *testing.B) {
	benchFig(b, experiments.Fig22, map[string]string{
		"avg_exec_improvement_pct":        "exec%",
		"avg_offchip_net_improvement_pct": "offchip-net%",
	})
}

// BenchmarkFig23_FirstTouch regenerates Figure 23 (paper: 12.3% average
// over the first-touch policy).
func BenchmarkFig23_FirstTouch(b *testing.B) {
	benchFig(b, experiments.Fig23, map[string]string{
		"avg_exec_improvement_pct": "exec%",
	})
}

// BenchmarkFig24_ThreadsPerCore regenerates Figure 24 (paper: improvements
// grow with thread count).
func BenchmarkFig24_ThreadsPerCore(b *testing.B) {
	benchFig(b, experiments.Fig24, map[string]string{
		"avg_1tpc_exec_pct": "1tpc exec%",
		"avg_2tpc_exec_pct": "2tpc exec%",
	})
}

// BenchmarkFig25_Multiprogrammed regenerates Figure 25 (paper: weighted
// speedup improvements of 5.4%..13.1%).
func BenchmarkFig25_Multiprogrammed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig25(full())
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, row := range r.Rows {
			sum += row.ImprovementP
		}
		b.ReportMetric(sum/float64(len(r.Rows)), "avg_ws_improvement_pct")
	}
}

// ---------------------------------------------------------------------------
// Ablation benches for the design choices DESIGN.md calls out. These are not
// paper figures; they quantify how much each modeling decision matters.

// BenchmarkAblationContention compares the optimization's benefit with and
// without NoC link contention: with an ideal (contention-free) network the
// benefit shrinks to the pure-distance component.
func BenchmarkAblationContention(b *testing.B) {
	app, _ := workloads.ByName("apsi")
	m := layout.Default8x8()
	cm, err := layout.MappingM1(m, layout.PlacementCorners(8, 8))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		withC, err := core.Compare(app, m, cm, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		noC, err := core.Compare(app, m, cm, core.Options{NoContention: true})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*withC.ExecImprovement(), "exec_improvement_contended_pct")
		b.ReportMetric(100*noC.ExecImprovement(), "exec_improvement_ideal_net_pct")
	}
}

// BenchmarkAblationMLP compares the benefit under different per-core
// outstanding-miss windows: wider windows hide more of the latency the
// optimization removes.
func BenchmarkAblationMLP(b *testing.B) {
	app, _ := workloads.ByName("apsi")
	m := layout.Default8x8()
	cm, err := layout.MappingM1(m, layout.PlacementCorners(8, 8))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, w := range []int{1, 2, 8} {
			c, err := core.Compare(app, m, cm, core.Options{MLPWindow: w})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(100*c.ExecImprovement(), fmt.Sprintf("exec_improvement_mlp%d_pct", w))
		}
	}
}

// BenchmarkAblationBanks compares the benefit under bank-scarce (4) and
// bank-rich (16) controllers: scarcity shifts the bottleneck from the
// network to the queues and shrinks the locality benefit.
func BenchmarkAblationBanks(b *testing.B) {
	app, _ := workloads.ByName("minighost")
	m := layout.Default8x8()
	cm, err := layout.MappingM1(m, layout.PlacementCorners(8, 8))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, banks := range []int{4, 16} {
			c, err := core.Compare(app, m, cm, core.Options{BanksPerMC: banks})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(100*c.ExecImprovement(), fmt.Sprintf("exec_improvement_%dbanks_pct", banks))
		}
	}
}
