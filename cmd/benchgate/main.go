// Command benchgate is the allocation-regression gate behind `make
// bench-smoke`: it reads `go test -bench -benchmem` output on stdin, checks
// the allocs/op of every benchmark matching -bench against a pinned
// ceiling, and exits non-zero on a regression. The engine's steady-state
// dispatch path is pinned at 0 allocs/op — the timing-wheel scheduler and
// its free-lists exist precisely so the hot loop never allocates, and this
// gate is what keeps that true:
//
//	go test -run='^$' -bench=... -benchtime=100x -benchmem ./internal/engine | benchgate -bench Steady -max-allocs 0
//
// The gate fails closed: if no benchmark line matches -bench (a rename, a
// compile failure upstream), it errors rather than passing vacuously.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

func main() {
	benchRe := flag.String("bench", ".", "regexp of benchmark names the ceiling applies to")
	maxAllocs := flag.Int64("max-allocs", 0, "maximum allowed allocs/op for matching benchmarks")
	flag.Parse()

	re, err := regexp.Compile(*benchRe)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var checked, failed int
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the full bench log through for the CI record
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
		if !re.MatchString(name) {
			continue
		}
		for i, f := range fields {
			if f != "allocs/op" || i == 0 {
				continue
			}
			v, err := strconv.ParseFloat(fields[i-1], 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchgate: %s: unparseable allocs/op %q\n", name, fields[i-1])
				os.Exit(2)
			}
			checked++
			if int64(v) > *maxAllocs {
				failed++
				fmt.Fprintf(os.Stderr, "benchgate: FAIL %s: %.0f allocs/op exceeds pinned ceiling %d\n",
					name, v, *maxAllocs)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	if checked == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: no benchmark matched %q — the gate would be vacuous\n", *benchRe)
		os.Exit(2)
	}
	if failed > 0 {
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchgate: OK — %d benchmark(s) within %d allocs/op\n", checked, *maxAllocs)
}
