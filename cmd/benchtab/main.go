// Command benchtab regenerates the tables and figures of "Optimizing
// Off-Chip Accesses in Multicores" (PLDI 2015):
//
//	benchtab -exp fig16          # one experiment
//	benchtab -exp all            # everything (several minutes)
//	benchtab -exp fig14 -apps apsi,swim -quick
//
// Experiments are sharded into independent jobs (one simulation each) and
// can run on a worker pool; results are bit-identical at any worker count:
//
//	benchtab -exp fig16 -parallel 8          # 8 workers, same numbers
//	benchtab -sweep -parallel 8 -progress    # app × scheme example sweep
//	benchtab -jobs                           # print the sweep's job IDs
//	benchtab -replay '<job-id>'              # re-run one job, bit-exact
//	benchtab -bench-runner BENCH_runner.json # record 1-vs-N wall clocks
//
// Each experiment prints a fixed-width table whose rows correspond to the
// bars/series of the paper's figure; see DESIGN.md for the per-experiment
// index and EXPERIMENTS.md for paper-vs-measured commentary.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"offchip/internal/experiments"
	"offchip/internal/runner"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (fig3..fig25, table2) or 'all'")
	apps := flag.String("apps", "", "comma-separated application subset (default: all 13)")
	quick := flag.Bool("quick", false, "sampled short traces (fast smoke run; numbers not meaningful)")
	asJSON := flag.Bool("json", false, "emit JSON instead of tables")
	parallel := flag.Int("parallel", 1, "worker count for job-sharded experiments (results identical at any count)")
	seed := flag.Uint64("seed", 0, "sweep seed; 0 keeps the historical jitter stream of the recorded figures")
	replay := flag.String("replay", "", "re-run one job from its canonical ID and print its outcome")
	sweep := flag.Bool("sweep", false, "run the app × layout-scheme example sweep")
	jobs := flag.Bool("jobs", false, "print the example sweep's job IDs (replay handles) without running")
	progress := flag.Bool("progress", false, "print one line per finished job")
	benchRunner := flag.String("bench-runner", "", "measure the sweep at 1 and -parallel workers; write wall clocks to this JSON file")
	flag.Parse()

	cfg := experiments.Config{Parallel: *parallel, Seed: *seed}
	if *apps != "" {
		cfg.Apps = strings.Split(*apps, ",")
	}
	if *quick {
		cfg.MaxAccessesPerThread = 200
	}
	if *progress {
		cfg.OnJob = func(ev runner.JobEvent) {
			status := "ok"
			if ev.Err != nil {
				status = "FAIL: " + ev.Err.Error()
			}
			fmt.Fprintf(os.Stderr, "[%3d/%3d] w%d %6.2fs %s %s\n",
				ev.Done, ev.Total, ev.Worker, float64(ev.WallNS)/1e9, ev.ID, status)
		}
	}

	switch {
	case *replay != "":
		if err := replayJob(*replay); err != nil {
			fail(err)
		}
		return
	case *jobs:
		specs, err := cfg.ExampleSweep()
		if err != nil {
			fail(err)
		}
		for _, s := range specs {
			fmt.Println(s.ID())
		}
		return
	case *benchRunner != "":
		if err := benchRunnerRun(cfg, *parallel, *benchRunner); err != nil {
			fail(err)
		}
		return
	case *sweep:
		start := time.Now()
		res, err := experiments.RunSweep(cfg)
		if err != nil {
			fail(err)
		}
		fmt.Println(res.Table())
		fmt.Printf("[sweep: %d jobs, %d workers, %d steals, %.1fs]\n",
			len(res.Specs), res.Result.Workers, res.Result.Steals, res.Result.Wall.Seconds())
		fmt.Printf("[total %.1fs; replay any job with -replay '<id>' from -jobs]\n", time.Since(start).Seconds())
		return
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.AllIDs()
	}
	for _, id := range ids {
		start := time.Now()
		if *asJSON {
			raw, err := experiments.RunJSON(id, cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchtab: %s: %v\n", id, err)
				os.Exit(1)
			}
			fmt.Println(string(raw))
			continue
		}
		out, err := experiments.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(out)
		fmt.Printf("[%s took %.1fs]\n\n", id, time.Since(start).Seconds())
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchtab:", err)
	os.Exit(1)
}

// replayJob re-executes one job from its ID and prints the canonical
// (deterministic) outcome — the same bytes the differential tests compare,
// so two replays of the same ID always print identical output.
func replayJob(id string) error {
	out, err := runner.Replay(id)
	if err != nil {
		return err
	}
	raw, err := out.CanonicalJSON()
	if err != nil {
		return err
	}
	var pretty map[string]any
	if err := json.Unmarshal(raw, &pretty); err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(pretty)
}

// benchRunnerRun times the example sweep at 1 worker and at `workers`
// workers and records both wall clocks. On a single-CPU host the speedup
// is honestly ~1×; the numbers exist to track the scaling, not to flatter
// it.
func benchRunnerRun(cfg experiments.Config, workers int, path string) error {
	if workers <= 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	time1, jobs, err := timeSweep(cfg, 1)
	if err != nil {
		return err
	}
	timeN, _, err := timeSweep(cfg, workers)
	if err != nil {
		return err
	}
	rec := map[string]any{
		"bench":        "runner-sweep",
		"jobs":         jobs,
		"apps":         cfg.Apps,
		"cap":          cfg.MaxAccessesPerThread,
		"numcpu":       runtime.NumCPU(),
		"gomaxprocs":   runtime.GOMAXPROCS(0),
		"workers":      workers,
		"seconds_1":    time1.Seconds(),
		"seconds_n":    timeN.Seconds(),
		"speedup":      time1.Seconds() / timeN.Seconds(),
		"generated_at": time.Now().UTC().Format(time.RFC3339),
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("runner sweep: %d jobs, 1 worker %.1fs, %d workers %.1fs (%.2fx, %d CPUs) -> %s\n",
		jobs, time1.Seconds(), workers, timeN.Seconds(),
		time1.Seconds()/timeN.Seconds(), runtime.NumCPU(), path)
	return nil
}

func timeSweep(cfg experiments.Config, workers int) (time.Duration, int, error) {
	cfg.Parallel = workers
	start := time.Now()
	res, err := experiments.RunSweep(cfg)
	if err != nil {
		return 0, 0, err
	}
	return time.Since(start), len(res.Specs), nil
}
