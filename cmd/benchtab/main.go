// Command benchtab regenerates the tables and figures of "Optimizing
// Off-Chip Accesses in Multicores" (PLDI 2015):
//
//	benchtab -exp fig16          # one experiment
//	benchtab -exp all            # everything (several minutes)
//	benchtab -exp fig14 -apps apsi,swim -quick
//
// Experiments are sharded into independent jobs (one simulation each) and
// can run on a worker pool; results are bit-identical at any worker count:
//
//	benchtab -exp fig16 -parallel 8          # 8 workers, same numbers
//	benchtab -sweep -parallel 8 -progress    # app × scheme example sweep
//	benchtab -jobs                           # print the sweep's job IDs
//	benchtab -replay '<job-id>'              # re-run one job, bit-exact
//	benchtab -bench-runner BENCH_runner.json # record 1-vs-N wall clocks
//
// Sweep observability (see EXPERIMENTS.md "Profiling a sweep"):
//
//	benchtab -sweep -prof                    # sweep-wide latency attribution
//	benchtab -sweep -serve :9090             # live /metrics, /progress, /profile
//	benchtab -sweep -sweep-out s.jsonl       # merged registry dump + manifest
//	benchtab -replay '<job-id>' -prof        # attribution of one replayed job
//
// Each experiment prints a fixed-width table whose rows correspond to the
// bars/series of the paper's figure; see DESIGN.md for the per-experiment
// index and EXPERIMENTS.md for paper-vs-measured commentary.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"offchip/internal/core"
	"offchip/internal/experiments"
	"offchip/internal/layout"
	"offchip/internal/mem"
	"offchip/internal/obs"
	"offchip/internal/prof"
	"offchip/internal/runner"
	"offchip/internal/sim"
	"offchip/internal/sweepq"
	"offchip/internal/tracecache"
	"offchip/internal/workloads"
)

func main() {
	// -bench-sweepd spawns this binary as its own worker fleet; the children
	// enter the protocol loop here and never parse flags.
	sweepq.MaybeWorker()
	exp := flag.String("exp", "all", "experiment id (fig3..fig25, table2, figmig, figmix, figtune) or 'all'")
	apps := flag.String("apps", "", "comma-separated application subset (default: all 13)")
	quick := flag.Bool("quick", false, "sampled short traces (fast smoke run; numbers not meaningful)")
	asJSON := flag.Bool("json", false, "emit JSON instead of tables")
	parallel := flag.Int("parallel", 1, "worker count for job-sharded experiments (results identical at any count)")
	seed := flag.Uint64("seed", 0, "sweep seed; 0 keeps the historical jitter stream of the recorded figures")
	replay := flag.String("replay", "", "re-run one job from its canonical ID and print its outcome")
	sweep := flag.Bool("sweep", false, "run the app × layout-scheme example sweep")
	jobs := flag.Bool("jobs", false, "print the example sweep's job IDs (replay handles) without running")
	progress := flag.Bool("progress", false, "print one line per finished job")
	benchRunner := flag.String("bench-runner", "", "measure the sweep at 1 and -parallel workers; write wall clocks to this JSON file")
	benchEngine := flag.String("bench-engine", "", "time the full experiment suite and a representative simulation against the pre-overhaul engine baseline; write the record to this JSON file")
	benchTrace := flag.String("bench-trace", "", "time the full experiment suite exact vs trace-cached + sampled; write the record to this JSON file")
	benchSweepd := flag.String("bench-sweepd", "", "measure the sweep in-process vs on a worker-process fleet; write wall clocks to this JSON file")
	cacheFlag := flag.String("trace-cache", "", `memoize trace generation across experiments: "mem" (in-process) or a directory for a persistent cache`)
	sampleFlag := flag.String("sample", "", `sampled simulation for job-sharded experiments: off | on | w<windows>f<fraction>u<warmup>r<replicates>`)
	migrateFlag := flag.String("migrate", "", `hot-page migration spec for figmig/figmix dynamic and hybrid runs: on | h<thr>w<win>c<cool>f<flits>t<stall>[g<pages>] (default: "on" for figmig; figmix retunes to per-page granularity)`)
	profFlag := flag.Bool("prof", false, "attach the latency-attribution profiler to every job and print the sweep-wide differential attribution")
	serveAddr := flag.String("serve", "", "serve the live sweep observability plane (/metrics, /progress, /profile) on this address")
	sweepOut := flag.String("sweep-out", "", "write the sweep's merged registry as JSONL, plus a .manifest.json provenance record")
	flag.Parse()

	cfg := experiments.Config{Parallel: *parallel, Seed: *seed, Prof: *profFlag}
	if *apps != "" {
		cfg.Apps = strings.Split(*apps, ",")
	}
	if *cacheFlag != "" {
		dir := *cacheFlag
		if dir == "mem" {
			dir = "" // in-process only
		}
		tc, err := tracecache.New(dir)
		if err != nil {
			fail(err)
		}
		cfg.TraceCache = tc
	}
	if sp, err := sim.ParseSampleSpec(*sampleFlag); err != nil {
		fail(err)
	} else if sp != nil {
		cfg.Sample = sp.String()
	}
	if sp, err := mem.ParseMigrationSpec(*migrateFlag); err != nil {
		fail(err)
	} else if sp != nil {
		cfg.Migrate = sp.String()
	}
	if *quick {
		cfg.MaxAccessesPerThread = 200
	}
	if *progress {
		cfg.OnJob = func(ev runner.JobEvent) {
			status := "ok"
			if ev.Err != nil {
				status = "FAIL: " + ev.Err.Error()
			}
			fmt.Fprintf(os.Stderr, "[%3d/%3d] w%d %6.2fs %s %s\n",
				ev.Done, ev.Total, ev.Worker, float64(ev.WallNS)/1e9, ev.ID, status)
		}
	}

	switch {
	case *replay != "":
		if err := replayJob(*replay, *profFlag); err != nil {
			fail(err)
		}
		return
	case *jobs:
		specs, err := cfg.ExampleSweep()
		if err != nil {
			fail(err)
		}
		for _, s := range specs {
			fmt.Println(s.ID())
		}
		return
	case *benchRunner != "":
		if err := benchRunnerRun(cfg, *parallel, *benchRunner); err != nil {
			fail(err)
		}
		return
	case *benchEngine != "":
		if err := benchEngineRun(cfg, *benchEngine); err != nil {
			fail(err)
		}
		return
	case *benchTrace != "":
		if err := benchTraceRun(cfg, *benchTrace); err != nil {
			fail(err)
		}
		return
	case *benchSweepd != "":
		if err := benchSweepdRun(cfg, *parallel, *benchSweepd); err != nil {
			fail(err)
		}
		return
	case *sweep:
		if err := runSweep(cfg, *serveAddr, *sweepOut, *profFlag, *seed); err != nil {
			fail(err)
		}
		return
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.AllIDs()
	}
	for _, id := range ids {
		start := time.Now()
		if *asJSON {
			raw, err := experiments.RunJSON(id, cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchtab: %s: %v\n", id, err)
				os.Exit(1)
			}
			fmt.Println(string(raw))
			continue
		}
		out, err := experiments.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(out)
		fmt.Printf("[%s took %.1fs]\n\n", id, time.Since(start).Seconds())
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchtab:", err)
	os.Exit(1)
}

// runSweep runs the example sweep with the sweep-level observability
// attached: the live HTTP plane (when -serve), the merged-registry dump and
// provenance manifest (when -sweep-out), and the sweep-wide differential
// attribution (when -prof).
func runSweep(cfg experiments.Config, serveAddr, sweepOut string, withProf bool, seed uint64) error {
	specs, err := cfg.ExampleSweep()
	if err != nil {
		return err
	}
	manifest := prof.NewManifest()
	manifest.Seed = seed
	manifest.Config = map[string]string{
		"apps":     strings.Join(cfg.Apps, ","),
		"cap":      strconv.Itoa(cfg.MaxAccessesPerThread),
		"parallel": strconv.Itoa(cfg.Parallel),
		"prof":     strconv.FormatBool(withProf),
	}
	for _, s := range specs {
		manifest.Jobs = append(manifest.Jobs, s.ID())
	}

	// The live plane folds each job's registries and profiles in as the job
	// completes (OnJob calls are serialized by the runner). The registry is
	// safe for concurrent snapshot; profiles are copied out under the mutex.
	var (
		liveMu    sync.Mutex
		liveReg   = obs.NewRegistry()
		liveProfs = map[string]*prof.Profile{}
		liveDone  int
		liveFail  int
	)
	if serveAddr != "" {
		prev := cfg.OnJob
		cfg.OnJob = func(ev runner.JobEvent) {
			if prev != nil {
				prev(ev)
			}
			liveMu.Lock()
			defer liveMu.Unlock()
			liveDone = ev.Done
			if ev.Err != nil {
				liveFail++
			}
			o := ev.Outcome
			if o == nil || o.Err != nil {
				return
			}
			runs := make([]string, 0, len(o.Observers))
			for run := range o.Observers {
				runs = append(runs, run)
			}
			sort.Strings(runs)
			for _, run := range runs {
				if ob := o.Observers[run]; ob != nil && ob.Reg != nil {
					liveReg.MergeScoped(ob.Reg, o.ExecTimes[run], "job="+o.ShortID, "run="+run)
				}
			}
			for run, p := range o.Profiles {
				if liveProfs[run] == nil {
					liveProfs[run] = &prof.Profile{}
				}
				liveProfs[run].Add(p)
			}
		}
		srv, err := prof.NewServer(prof.ServerConfig{
			Addr: serveAddr,
			Registries: func() map[string]*obs.Registry {
				return map[string]*obs.Registry{"sweep": liveReg}
			},
			Profiles: func() map[string]*prof.Profile {
				liveMu.Lock()
				defer liveMu.Unlock()
				out := make(map[string]*prof.Profile, len(liveProfs))
				for run, p := range liveProfs {
					c := &prof.Profile{}
					c.Add(p) // deep copy: the live aggregate keeps mutating
					out[run] = c
				}
				return out
			},
			Progress: func() prof.Progress {
				liveMu.Lock()
				defer liveMu.Unlock()
				inflight := len(specs) - liveDone
				if w := cfg.Parallel; w >= 1 && inflight > w {
					inflight = w
				}
				return prof.Progress{
					TotalJobs: len(specs), DoneJobs: liveDone,
					InFlight: inflight, Failed: liveFail,
				}
			},
		})
		if err != nil {
			return err
		}
		srv.Start()
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "benchtab: observability plane on http://%s\n", srv.Addr())
	}

	start := time.Now()
	res, err := experiments.RunSweep(cfg)
	if err != nil {
		return err
	}
	fmt.Println(res.Table())
	fmt.Printf("[sweep: %d jobs, %d workers, %d steals, %.1fs]\n",
		len(res.Specs), res.Result.Workers, res.Result.Steals, res.Result.Wall.Seconds())
	fmt.Printf("[total %.1fs; replay any job with -replay '<id>' from -jobs]\n", time.Since(start).Seconds())

	if withProf {
		profs := res.Profiles()
		fmt.Println()
		fmt.Println(prof.DiffTable("sweep latency attribution (cycles/access, baseline vs optimized, all jobs)",
			profs["baseline"], profs["optimized"]).String())
		fmt.Println(prof.QuantileTable("sweep optimized-run stage latency quantiles (cycles)",
			profs["optimized"]).String())
		if p := profs["optimized"]; p != nil {
			manifest.StageTotals = p.StageTotals()
		}
	}
	if sweepOut != "" {
		f, err := os.Create(sweepOut)
		if err != nil {
			return err
		}
		if err := obs.WriteJSONL(f, res.Merged.Snapshot(0)); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if err := manifest.Write(prof.ManifestPath(sweepOut)); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "benchtab: wrote merged sweep registry to %s (manifest %s)\n",
			sweepOut, prof.ManifestPath(sweepOut))
	}
	return nil
}

// replayJob re-executes one job from its ID and prints the canonical
// (deterministic) outcome — the same bytes the differential tests compare,
// so two replays of the same ID always print identical output. With -prof it
// also prints the job's latency attribution (the profiler observes without
// changing the job's identity or results).
func replayJob(id string, withProf bool) error {
	spec, err := runner.ParseJobID(id)
	if err != nil {
		return err
	}
	spec.Prof = withProf
	out := spec.Execute()
	if out.Err != nil {
		return out.Err
	}
	raw, err := out.CanonicalJSON()
	if err != nil {
		return err
	}
	var pretty map[string]any
	if err := json.Unmarshal(raw, &pretty); err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(pretty); err != nil {
		return err
	}
	if withProf {
		if base, opt := out.Profiles["baseline"], out.Profiles["optimized"]; base != nil && opt != nil {
			fmt.Println(prof.DiffTable("latency attribution (cycles/access, baseline vs optimized)", base, opt).String())
		} else {
			runs := make([]string, 0, len(out.Profiles))
			for run := range out.Profiles {
				runs = append(runs, run)
			}
			sort.Strings(runs)
			for _, run := range runs {
				fmt.Println(prof.AttributionTable("latency attribution: "+run, out.Profiles[run]).String())
			}
		}
	}
	return nil
}

// benchRunnerRun times the example sweep at 1 worker and at `workers`
// workers and records both wall clocks. On a single-CPU host the speedup
// is honestly ~1×; the numbers exist to track the scaling, not to flatter
// it.
func benchRunnerRun(cfg experiments.Config, workers int, path string) error {
	if workers <= 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	time1, jobs, err := timeSweep(cfg, 1)
	if err != nil {
		return err
	}
	timeN, _, err := timeSweep(cfg, workers)
	if err != nil {
		return err
	}
	rec := map[string]any{
		"bench":        "runner-sweep",
		"jobs":         jobs,
		"apps":         cfg.Apps,
		"cap":          cfg.MaxAccessesPerThread,
		"numcpu":       runtime.NumCPU(),
		"gomaxprocs":   runtime.GOMAXPROCS(0),
		"workers":      workers,
		"seconds_1":    time1.Seconds(),
		"seconds_n":    timeN.Seconds(),
		"speedup":      time1.Seconds() / timeN.Seconds(),
		"generated_at": time.Now().UTC().Format(time.RFC3339),
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("runner sweep: %d jobs, 1 worker %.1fs, %d workers %.1fs (%.2fx, %d CPUs) -> %s\n",
		jobs, time1.Seconds(), workers, timeN.Seconds(),
		time1.Seconds()/timeN.Seconds(), runtime.NumCPU(), path)
	return nil
}

// benchSweepdRun times the example sweep in-process (1 worker, the
// reference) and on a worker-process fleet (this binary re-executed, the
// sweep service's execution path), checks the merged registries are
// identical, and records both wall clocks. Process spawn and JSON framing
// are pure overhead on a single CPU; the record tracks what the isolation
// costs, not a speedup.
func benchSweepdRun(cfg experiments.Config, workers int, path string) error {
	if workers <= 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	specs, err := cfg.ExampleSweep()
	if err != nil {
		return err
	}

	start := time.Now()
	local, err := runner.Run(specs, runner.Options{Workers: 1})
	if err != nil {
		return err
	}
	if err := local.FirstError(); err != nil {
		return err
	}
	localWall := time.Since(start)

	fleet, err := sweepq.NewFleet(sweepq.FleetConfig{Workers: workers})
	if err != nil {
		return err
	}
	defer fleet.Close()
	start = time.Now()
	remote, err := runner.Run(specs, runner.Options{Workers: workers, Executor: fleet})
	if err != nil {
		return err
	}
	if err := remote.FirstError(); err != nil {
		return err
	}
	fleetWall := time.Since(start)

	horizon := int64(1) << 40
	if !reflect.DeepEqual(local.Merged().Snapshot(horizon), remote.Merged().Snapshot(horizon)) {
		return fmt.Errorf("bench-sweepd: fleet sweep diverged from in-process sweep")
	}

	rec := map[string]any{
		"bench":            "sweepd-fleet",
		"jobs":             len(specs),
		"apps":             cfg.Apps,
		"cap":              cfg.MaxAccessesPerThread,
		"numcpu":           runtime.NumCPU(),
		"gomaxprocs":       runtime.GOMAXPROCS(0),
		"fleet_workers":    workers,
		"seconds_inproc":   localWall.Seconds(),
		"seconds_fleet":    fleetWall.Seconds(),
		"fleet_overhead":   fleetWall.Seconds() / localWall.Seconds(),
		"merged_identical": true,
		"generated_at":     time.Now().UTC().Format(time.RFC3339),
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("sweepd fleet: %d jobs, in-process %.1fs, %d-worker fleet %.1fs (%.2fx overhead, identical results) -> %s\n",
		len(specs), localWall.Seconds(), workers, fleetWall.Seconds(),
		fleetWall.Seconds()/localWall.Seconds(), path)
	return nil
}

// Pre-overhaul engine baseline, measured on the commit immediately before
// the timing-wheel rewrite (container/heap event queue, closure events,
// same host, GOMAXPROCS unchanged, `benchtab -exp all` at 1 worker). The
// micro numbers are BenchmarkSteadyStateDispatchHeapOracle, which still
// runs the original queue verbatim: `go test -bench HeapOracle ./internal/engine`.
const (
	baselineExpAllSeconds    = 413.74
	baselineMicroNsPerEvent  = 222.1
	baselineMicroAllocsPerOp = 2
)

// benchEngineRun records the engine-overhaul regression numbers: wall clock
// of the full experiment suite (the acceptance metric), plus end-to-end ns
// and heap allocations per simulated event on a representative full
// application run, all against the pinned pre-overhaul baseline.
func benchEngineRun(cfg experiments.Config, path string) error {
	// Representative simulation: apsi baseline trace, full length — the same
	// machine BenchmarkFullSweep drives.
	app, ok := workloads.ByName("apsi")
	if !ok {
		return fmt.Errorf("bench-engine: apsi workload missing")
	}
	m := layout.Default8x8()
	cm, err := layout.MappingM1(m, layout.PlacementCorners(m.MeshX, m.MeshY))
	if err != nil {
		return err
	}
	base, _, _, err := core.Workloads(app, m, cm, core.Options{})
	if err != nil {
		return err
	}
	simCfg := core.SimConfig(m, cm, core.Options{})
	if _, err := sim.Run(simCfg, base); err != nil { // warm-up
		return err
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	simStart := time.Now()
	r, err := sim.Run(simCfg, base)
	if err != nil {
		return err
	}
	simWall := time.Since(simStart)
	runtime.ReadMemStats(&after)
	nsPerEvent := float64(simWall.Nanoseconds()) / float64(r.Events)
	allocsPerEvent := float64(after.Mallocs-before.Mallocs) / float64(r.Events)

	// The acceptance metric: the full suite, same worker count as the
	// baseline measurement (1).
	fmt.Fprintln(os.Stderr, "bench-engine: running the full experiment suite (several minutes)...")
	suiteStart := time.Now()
	for _, id := range experiments.AllIDs() {
		if _, err := experiments.Run(id, cfg); err != nil {
			return fmt.Errorf("bench-engine: %s: %w", id, err)
		}
	}
	suiteWall := time.Since(suiteStart)

	rec := map[string]any{
		"bench":      "engine-overhaul",
		"numcpu":     runtime.NumCPU(),
		"gomaxprocs": runtime.GOMAXPROCS(0),
		"baseline": map[string]any{
			"queue":                  "container/heap + closure events",
			"expall_seconds":         baselineExpAllSeconds,
			"micro_ns_per_event":     baselineMicroNsPerEvent,
			"micro_allocs_per_event": baselineMicroAllocsPerOp,
		},
		"current": map[string]any{
			"queue":                  "timing wheel + pooled typed events",
			"expall_seconds":         suiteWall.Seconds(),
			"sim_events":             r.Events,
			"sim_ns_per_event":       nsPerEvent,
			"sim_allocs_per_event":   allocsPerEvent,
			"micro_allocs_per_event": 0,
			"micro_bench":            "go test -bench SteadyStateDispatch -benchmem ./internal/engine",
		},
		"expall_speedup": baselineExpAllSeconds / suiteWall.Seconds(),
		"generated_at":   time.Now().UTC().Format(time.RFC3339),
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("engine: suite %.1fs vs baseline %.1fs (%.2fx); sim %.1f ns/event, %.4f allocs/event -> %s\n",
		suiteWall.Seconds(), baselineExpAllSeconds, baselineExpAllSeconds/suiteWall.Seconds(),
		nsPerEvent, allocsPerEvent, path)
	return nil
}

// benchTraceRun records the trace-cache + sampled-simulation speedup: wall
// clock of the full experiment suite exact and uncached (every job
// regenerates its traces and simulates end to end) versus the same suite
// trace-cached + sampled, measured twice — once against an empty persistent
// cache (the cold pass pays every unique generation once and fills the
// cache) and once against the populated cache (the steady state of a
// recurring sweep: every trace decodes from disk, no generation at all).
// Exact numbers are the acceptance baseline; the cached+sampled passes
// trade bit-exactness for wall clock, and the sampled battery
// (internal/check) separately pins how far the estimates may stray.
func benchTraceRun(cfg experiments.Config, path string) error {
	sample := cfg.Sample
	if sample == "" {
		sample = sim.DefaultSampleSpec().String()
	}

	exact := cfg
	exact.TraceCache = nil
	exact.Sample = ""
	fmt.Fprintln(os.Stderr, "bench-trace: running the full suite exact and uncached (several minutes)...")
	exactWall, err := timeSuite(exact)
	if err != nil {
		return err
	}

	dir, err := os.MkdirTemp("", "offchip-bench-trace-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	fast := cfg
	tc, err := tracecache.New(dir) // empty cache: every miss generates once
	if err != nil {
		return err
	}
	fast.TraceCache = tc
	fast.Sample = sample
	fmt.Fprintln(os.Stderr, "bench-trace: running the suite trace-cached + sampled (cold cache)...")
	coldWall, err := timeSuite(fast)
	if err != nil {
		return err
	}
	cold := tc.Stats()

	// Steady state: a fresh in-process layer over the now-full on-disk
	// cache, as a recurring sweep (CI, a sweep service) would see it.
	tc, err = tracecache.New(dir)
	if err != nil {
		return err
	}
	fast.TraceCache = tc
	fmt.Fprintln(os.Stderr, "bench-trace: running the suite trace-cached + sampled (warm cache)...")
	warmWall, err := timeSuite(fast)
	if err != nil {
		return err
	}
	warm := tc.Stats()

	rec := map[string]any{
		"bench":      "trace-cache-sampled",
		"numcpu":     runtime.NumCPU(),
		"gomaxprocs": runtime.GOMAXPROCS(0),
		"sample":     sample,
		"exact": map[string]any{
			"expall_seconds": exactWall.Seconds(),
		},
		"cached_sampled_cold": map[string]any{
			"expall_seconds":    coldWall.Seconds(),
			"cache_hits":        cold.Hits,
			"cache_misses":      cold.Misses,
			"cache_disk_hits":   cold.DiskHits,
			"cache_disk_writes": cold.DiskWrites,
		},
		"cached_sampled_warm": map[string]any{
			"expall_seconds":  warmWall.Seconds(),
			"cache_hits":      warm.Hits,
			"cache_misses":    warm.Misses,
			"cache_disk_hits": warm.DiskHits,
		},
		"expall_speedup_cold": exactWall.Seconds() / coldWall.Seconds(),
		"expall_speedup_warm": exactWall.Seconds() / warmWall.Seconds(),
		"generated_at":        time.Now().UTC().Format(time.RFC3339),
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("trace: suite exact %.1fs vs cached+sampled(%s) cold %.1fs (%.2fx) / warm %.1fs (%.2fx; %d disk hits) -> %s\n",
		exactWall.Seconds(), sample,
		coldWall.Seconds(), exactWall.Seconds()/coldWall.Seconds(),
		warmWall.Seconds(), exactWall.Seconds()/warmWall.Seconds(),
		warm.DiskHits, path)
	return nil
}

// timeSuite runs every experiment once under cfg and returns the wall clock.
func timeSuite(cfg experiments.Config) (time.Duration, error) {
	start := time.Now()
	for _, id := range experiments.AllIDs() {
		if _, err := experiments.Run(id, cfg); err != nil {
			return 0, fmt.Errorf("bench-trace: %s: %w", id, err)
		}
	}
	return time.Since(start), nil
}

func timeSweep(cfg experiments.Config, workers int) (time.Duration, int, error) {
	cfg.Parallel = workers
	start := time.Now()
	res, err := experiments.RunSweep(cfg)
	if err != nil {
		return 0, 0, err
	}
	return time.Since(start), len(res.Specs), nil
}
