// Command benchtab regenerates the tables and figures of "Optimizing
// Off-Chip Accesses in Multicores" (PLDI 2015):
//
//	benchtab -exp fig16          # one experiment
//	benchtab -exp all            # everything (several minutes)
//	benchtab -exp fig14 -apps apsi,swim -quick
//
// Each experiment prints a fixed-width table whose rows correspond to the
// bars/series of the paper's figure; see DESIGN.md for the per-experiment
// index and EXPERIMENTS.md for paper-vs-measured commentary.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"offchip/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (fig3..fig25, table2) or 'all'")
	apps := flag.String("apps", "", "comma-separated application subset (default: all 13)")
	quick := flag.Bool("quick", false, "sampled short traces (fast smoke run; numbers not meaningful)")
	asJSON := flag.Bool("json", false, "emit JSON instead of tables")
	flag.Parse()

	cfg := experiments.Config{}
	if *apps != "" {
		cfg.Apps = strings.Split(*apps, ",")
	}
	if *quick {
		cfg.MaxAccessesPerThread = 200
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.AllIDs()
	}
	for _, id := range ids {
		start := time.Now()
		if *asJSON {
			raw, err := experiments.RunJSON(id, cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchtab: %s: %v\n", id, err)
				os.Exit(1)
			}
			fmt.Println(string(raw))
			continue
		}
		out, err := experiments.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(out)
		fmt.Printf("[%s took %.1fs]\n\n", id, time.Since(start).Seconds())
	}
}
