// Command offchip runs the off-chip access localization pass on a program
// in the affine-loop language and reports what the compiler did and what it
// bought on the simulated manycore:
//
//	offchip -src kernel.alc                # transform + simulate
//	offchip -src kernel.alc -show          # also print the transformed forms
//	offchip -app apsi                      # use a built-in benchmark kernel
//	offchip -app apsi -l2 shared -mapping m2
//	offchip -app apsi -interleave page -policy ftnearest -migrate on
//
// The report shows the per-array transformation decisions (Table 2 style),
// the Figure 9(c) customized reference forms, and the baseline/optimized/
// optimal comparison on the Table 1 platform.
//
// Observability (see README "Observing a run"):
//
//	offchip -app apsi -progress            # live one-line run status
//	offchip -app apsi -trace t.json        # Chrome trace of the optimized run
//	offchip -app apsi -metrics m.jsonl     # metrics registry dump, all runs
//	offchip -app apsi -report              # post-run text dashboard
//	offchip -app apsi -pprof :6060         # serve net/http/pprof while running
//	offchip -app apsi -prof                # cycle-level latency attribution tables
//	offchip -app apsi -prof-folded p.txt   # folded stacks for flamegraph.pl
//	offchip -app apsi -prof-pprof p.pb.gz  # attribution as pprof protobuf
//	offchip -app apsi -serve :9090         # live /metrics, /progress, /profile
//
// Parallelism and replay (see EXPERIMENTS.md "Parallel sweeps"):
//
//	offchip -app apsi -parallel            # run the three simulations concurrently
//	offchip -app apsi -seed 7              # decorrelate the DRAM jitter stream
//	offchip -replay '<job-id>'             # re-run one sweep job bit-exactly
//
// Sweep service client (see README "Running a sweep service"):
//
//	offchip -submit http://host:9191                  # submit the full suite sweep
//	offchip -submit http://host:9191 -apps apsi,swim -cap 100
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"offchip/internal/approx"
	"offchip/internal/core"
	"offchip/internal/experiments"
	"offchip/internal/ir"
	"offchip/internal/layout"
	"offchip/internal/mem"
	"offchip/internal/obs"
	"offchip/internal/prof"
	"offchip/internal/runner"
	"offchip/internal/sim"
	"offchip/internal/stats"
	"offchip/internal/sweepq"
	"offchip/internal/tracecache"
	"offchip/internal/workloads"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "offchip:", err)
		os.Exit(1)
	}
}

func run() error {
	src := flag.String("src", "", "program in the affine-loop language")
	app := flag.String("app", "", "built-in benchmark kernel (wupwise..minimd)")
	l2 := flag.String("l2", "private", "last-level cache: private | shared")
	mapping := flag.String("mapping", "m1", "L2-to-MC mapping: m1 | m2")
	interleave := flag.String("interleave", "line", "physical address interleaving: line | page")
	policy := flag.String("policy", "interleaved", "baseline page-placement policy: interleaved | firsttouch | ftnearest | osassisted")
	migrate := flag.String("migrate", "off", `online hot-page migration for the baseline and optimized runs (requires -interleave page): off | on | h<thr>w<win>c<cool>f<flits>t<stall>[g<pages>]`)
	show := flag.Bool("show", false, "print the transformed reference forms")
	simulate := flag.Bool("sim", true, "run the baseline/optimized/optimal simulation")
	traceOut := flag.String("trace", "", "write a Chrome trace_event file of the optimized run (chrome://tracing, Perfetto)")
	traceSample := flag.Int64("trace-sample", 1, "keep every Nth trace event")
	metricsOut := flag.String("metrics", "", "write a JSONL metrics dump of all three runs")
	progress := flag.Bool("progress", false, "print a live one-line status during simulation")
	report := flag.Bool("report", false, "print the post-run observability dashboard")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. :6060)")
	profFlag := flag.Bool("prof", false, "attach the latency-attribution profiler and print per-stage attribution tables")
	profFolded := flag.String("prof-folded", "", "write the optimized run's attribution as folded stacks (flamegraph.pl); implies -prof")
	profPprof := flag.String("prof-pprof", "", "write the optimized run's attribution as a gzipped pprof protobuf (go tool pprof); implies -prof")
	serveAddr := flag.String("serve", "", "serve the live observability plane (/metrics, /progress, /profile) on this address")
	parallel := flag.Bool("parallel", false, "run the baseline/optimized/optimal simulations concurrently (identical results)")
	checkRun := flag.Bool("check", false, "attach the invariant checker to every run and fail on any violation")
	seed := flag.Uint64("seed", 0, "jitter seed; 0 keeps the historical stream of the recorded figures")
	replay := flag.String("replay", "", "re-run one sweep job from its canonical ID (see benchtab -jobs) and exit")
	cacheFlag := flag.String("trace-cache", "", `memoize trace generation: "mem" (in-process) or a directory for a persistent cache`)
	sampleFlag := flag.String("sample", "off", `sampled simulation: off | on | w<windows>f<fraction>u<warmup>r<replicates>`)
	submit := flag.String("submit", "", "submit a sweep to a sweepd service at this base URL, wait, and print the results")
	submitApps := flag.String("apps", "", "-submit: comma-separated applications (empty: the full suite)")
	submitSchemes := flag.String("schemes", "", "-submit: comma-separated layout schemes (empty: all)")
	submitCap := flag.Int("cap", 0, "-submit: trace length cap per thread (0: full traces)")
	flag.Parse()

	if *replay != "" {
		return replayJob(*replay)
	}
	if *submit != "" {
		req := &experiments.Request{
			Cap:  *submitCap,
			Seed: *seed,
		}
		if *submitApps != "" {
			req.Apps = strings.Split(*submitApps, ",")
		}
		if *submitSchemes != "" {
			req.Schemes = strings.Split(*submitSchemes, ",")
		}
		if *sampleFlag != "off" {
			req.Sample = *sampleFlag
		}
		return submitSweep(strings.TrimRight(*submit, "/"), req)
	}

	if *pprofAddr != "" {
		// Bind before the run so a bad address fails fast instead of racing
		// ListenAndServe in a goroutine; close cleanly on exit.
		ln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof: %w", err)
		}
		srv := &http.Server{Handler: http.DefaultServeMux}
		go func() {
			if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "offchip: pprof:", err)
			}
		}()
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "offchip: pprof serving on %s\n", ln.Addr())
	}

	m := layout.Default8x8()
	switch *l2 {
	case "private":
	case "shared":
		m.L2 = layout.SharedL2
	default:
		return fmt.Errorf("unknown -l2 %q", *l2)
	}
	switch *interleave {
	case "line":
	case "page":
		m.Interleave = layout.PageInterleave
	default:
		return fmt.Errorf("unknown -interleave %q", *interleave)
	}
	placement := layout.PlacementCorners(m.MeshX, m.MeshY)
	var cm *layout.ClusterMapping
	var err error
	switch *mapping {
	case "m1":
		cm, err = layout.MappingM1(m, placement)
	case "m2":
		cm, err = layout.MappingM2(m, placement)
	default:
		return fmt.Errorf("unknown -mapping %q", *mapping)
	}
	if err != nil {
		return err
	}

	var prog *ir.Program
	var store *ir.DataStore
	var bench *workloads.App
	switch {
	case *src != "":
		text, err := os.ReadFile(*src)
		if err != nil {
			return err
		}
		prog, err = ir.Parse(string(text))
		if err != nil {
			return err
		}
		store = ir.NewDataStore()
	case *app != "":
		a, ok := workloads.ByName(*app)
		if !ok {
			return fmt.Errorf("unknown application %q (have %v)", *app, workloads.Names())
		}
		bench = a
		prog, store, err = a.Load()
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -src <file> or -app <name>")
	}

	res, err := layout.Optimize(prog, m, cm, &layout.Options{Approx: approx.NewProfiler(store)})
	if err != nil {
		return err
	}
	fmt.Printf("machine: %dx%d mesh, %d MCs (%s), %s, %s interleaving, mapping %s\n\n",
		m.MeshX, m.MeshY, m.NumMCs, placement.Name, m.L2, m.Interleave, cm.Name)
	fmt.Println(res.Report())

	if *show {
		fmt.Println("transformed references (Figure 9(c) forms):")
		for _, nest := range prog.Nests {
			for _, s := range nest.Body {
				for _, r := range s.Refs() {
					al := res.Layout(r.Array)
					if !al.Optimized {
						continue
					}
					if cr, err := al.RewriteRef(r); err == nil {
						fmt.Printf("  %-28s -> %s\n", r, cr)
					} else {
						fmt.Printf("  %-28s -> %s   (schematic: %v)\n", r, al.CustomizedForm(r), err)
					}
				}
			}
		}
		fmt.Println()
	}

	if !*simulate {
		return nil
	}
	if bench == nil {
		// Wrap the parsed program as an ad-hoc app for the comparison.
		bench = &workloads.App{Name: prog.Name, Source: string(mustRead(*src)), Demand: layout.DefaultDemand()}
	}

	wantProf := *profFlag || *profFolded != "" || *profPprof != ""
	opt := core.Options{Concurrent: *parallel, Seed: *seed, Check: *checkRun, Prof: wantProf}
	switch *policy {
	case "interleaved":
	case "firsttouch":
		opt.BaselinePolicy = sim.PolicyFirstTouch
	case "ftnearest":
		opt.BaselinePolicy = sim.PolicyFirstTouchNearest
	case "osassisted":
		opt.BaselinePolicy = sim.PolicyOSAssisted
	default:
		return fmt.Errorf("unknown -policy %q", *policy)
	}
	migSpec, err := mem.ParseMigrationSpec(*migrate)
	if err != nil {
		return err
	}
	opt.Migrate = migSpec
	if *cacheFlag != "" {
		dir := *cacheFlag
		if dir == "mem" {
			dir = "" // in-process only
		}
		tc, err := tracecache.New(dir)
		if err != nil {
			return err
		}
		opt.TraceCache = tc
	}
	sampleSpec, err := sim.ParseSampleSpec(*sampleFlag)
	if err != nil {
		return err
	}
	opt.Sample = sampleSpec
	var tracer *obs.Tracer
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		tracer = obs.NewTracer(obs.TracerOptions{Chrome: f, Sample: *traceSample})
		opt.Observer = func(run string) *obs.Observer {
			if run == "optimized" {
				return &obs.Observer{Reg: obs.NewRegistry(), Tracer: tracer}
			}
			return nil
		}
	}
	if *progress {
		opt.OnProgress = liveProgress()
	}

	// The live observability plane binds before the runs start and watches
	// the registries as the simulations fill them; the attribution snapshot
	// appears on /profile once the runs retire.
	var (
		liveMu    sync.Mutex
		liveRegs  = map[string]*obs.Registry{}
		liveProfs = map[string]*prof.Profile{}
	)
	if *serveAddr != "" {
		prev := opt.Observer
		opt.Observer = func(run string) *obs.Observer {
			var o *obs.Observer
			if prev != nil {
				o = prev(run)
			}
			o = obs.OrNew(o)
			liveMu.Lock()
			liveRegs[run] = o.Reg
			liveMu.Unlock()
			return o
		}
		srv, err := prof.NewServer(prof.ServerConfig{
			Addr: *serveAddr,
			Registries: func() map[string]*obs.Registry {
				liveMu.Lock()
				defer liveMu.Unlock()
				out := make(map[string]*obs.Registry, len(liveRegs))
				for k, v := range liveRegs {
					out[k] = v
				}
				return out
			},
			Profiles: func() map[string]*prof.Profile {
				liveMu.Lock()
				defer liveMu.Unlock()
				out := make(map[string]*prof.Profile, len(liveProfs))
				for k, v := range liveProfs {
					out[k] = v
				}
				return out
			},
		})
		if err != nil {
			return err
		}
		srv.Start()
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "offchip: observability plane on http://%s\n", srv.Addr())
	}

	manifest := prof.NewManifest()
	manifest.Seed = *seed
	manifest.Config = map[string]string{
		"app": bench.Name, "l2": *l2, "mapping": *mapping, "interleave": *interleave,
		"check": strconv.FormatBool(*checkRun), "prof": strconv.FormatBool(wantProf),
		"trace-cache": *cacheFlag, "policy": *policy,
	}
	if sampleSpec != nil {
		manifest.Config["sample"] = sampleSpec.String()
	}
	if migSpec != nil {
		manifest.Config["migrate"] = migSpec.String()
	}

	c, err := core.Compare(bench, m, cm, opt)
	if *progress {
		fmt.Fprintln(os.Stderr)
	}
	if err != nil {
		return err
	}
	if tracer != nil {
		if err := tracer.Close(); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		fmt.Fprintf(os.Stderr, "offchip: wrote %d trace events to %s (load in chrome://tracing or Perfetto)\n",
			tracer.Kept(), *traceOut)
	}
	if *checkRun {
		bad := 0
		for _, run := range []string{"baseline", "optimized", "optimal"} {
			vs := c.Checks[run]
			if len(vs) == 0 {
				fmt.Fprintf(os.Stderr, "offchip: check %-9s ok\n", run)
				continue
			}
			bad += len(vs)
			for _, v := range vs {
				fmt.Fprintf(os.Stderr, "offchip: check %-9s VIOLATION %s\n", run, v)
			}
		}
		if bad > 0 {
			return fmt.Errorf("invariant checker found %d violation(s)", bad)
		}
	}

	t := &stats.Table{
		Title:   "simulation (baseline vs optimized vs optimal)",
		Headers: []string{"metric", "baseline", "optimized", "optimal", "improvement"},
	}
	t.AddF("execution time (cycles)", c.Baseline.ExecTime, c.Optimized.ExecTime, c.Optimal.ExecTime, stats.Pct(c.ExecImprovement()))
	t.AddF("on-chip net latency", c.Baseline.OnChipNetAvg, c.Optimized.OnChipNetAvg, c.Optimal.OnChipNetAvg, stats.Pct(c.OnChipNetImprovement()))
	t.AddF("off-chip net latency", c.Baseline.OffChipNetAvg, c.Optimized.OffChipNetAvg, c.Optimal.OffChipNetAvg, stats.Pct(c.OffChipNetImprovement()))
	t.AddF("off-chip mem latency", c.Baseline.MemAvg, c.Optimized.MemAvg, c.Optimal.MemAvg, stats.Pct(c.MemImprovement()))
	t.AddF("off-chip queue wait", c.Baseline.QueueAvg, c.Optimized.QueueAvg, c.Optimal.QueueAvg, stats.Pct(c.QueueImprovement()))
	if c.Baseline.Migrations+c.Optimized.Migrations > 0 {
		t.AddF("page migrations", c.Baseline.Migrations, c.Optimized.Migrations, c.Optimal.Migrations, "-")
		t.AddF("migration copy msgs", c.Baseline.MigCopyMsgs, c.Optimized.MigCopyMsgs, c.Optimal.MigCopyMsgs, "-")
		t.AddF("migration stall cycles", c.Baseline.MigStallCycles, c.Optimized.MigStallCycles, c.Optimal.MigStallCycles, "-")
	}
	fmt.Println(t.String())

	if sampleSpec != nil && len(c.Sampled) > 0 {
		st := &stats.Table{
			Title:   fmt.Sprintf("sampled simulation (%s): estimates with 95%% bounds", sampleSpec.String()),
			Headers: []string{"run", "simulated", "of accesses", "exec estimate", "±", "rel"},
		}
		for _, run := range []string{"baseline", "optimized", "optimal"} {
			sr := c.Sampled[run]
			if sr == nil {
				continue
			}
			mode := "sampled"
			if sr.Exact {
				mode = "exact"
			}
			st.AddF(run+" ("+mode+")", sr.SimulatedAccesses, sr.FullAccesses,
				sr.Est.ExecTime.Mean, sr.Est.ExecTime.Half, stats.Pct(sr.Est.ExecTime.RelHalf()))
		}
		fmt.Println(st.String())
	}
	if opt.TraceCache != nil {
		cs := opt.TraceCache.Stats()
		fmt.Fprintf(os.Stderr, "offchip: trace cache: %d hits, %d misses, %d disk hits, %d disk writes\n",
			cs.Hits, cs.Misses, cs.DiskHits, cs.DiskWrites)
	}

	if wantProf {
		liveMu.Lock()
		for run, p := range c.Profiles {
			liveProfs[run] = p
		}
		liveMu.Unlock()
		if err := printProfiles(c, *profFolded, *profPprof); err != nil {
			return err
		}
		if p := c.Profiles["optimized"]; p != nil {
			manifest.StageTotals = p.StageTotals()
		}
	}
	if *metricsOut != "" {
		if err := writeMetrics(*metricsOut, c); err != nil {
			return err
		}
		if err := manifest.Write(prof.ManifestPath(*metricsOut)); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "offchip: wrote metrics to %s (manifest %s)\n",
			*metricsOut, prof.ManifestPath(*metricsOut))
	}
	if *report {
		printDashboard(c, m)
	}
	return nil
}

// printProfiles renders the latency-attribution view of a finished
// comparison: the baseline-vs-optimized differential table (every component's
// per-access delta, summing to the end-to-end delta), per-stage quantiles of
// the optimized run, and the optional flamegraph exports.
func printProfiles(c *core.Comparison, foldedOut, pprofOut string) error {
	base, opt := c.Profiles["baseline"], c.Profiles["optimized"]
	for _, run := range []string{"baseline", "optimized", "optimal"} {
		if p := c.Profiles[run]; p != nil && len(p.Violations) > 0 {
			for _, v := range p.Violations {
				fmt.Fprintf(os.Stderr, "offchip: prof %-9s VIOLATION %s\n", run, v)
			}
		}
	}
	fmt.Println(prof.DiffTable("latency attribution (cycles/access, baseline vs optimized)", base, opt).String())
	fmt.Println(prof.QuantileTable("optimized run stage latency quantiles (cycles)", opt).String())
	if foldedOut != "" && opt != nil {
		if err := os.WriteFile(foldedOut, []byte(opt.FoldedStacks(c.App)), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "offchip: wrote folded stacks to %s\n", foldedOut)
	}
	if pprofOut != "" && opt != nil {
		f, err := os.Create(pprofOut)
		if err != nil {
			return err
		}
		if err := opt.WritePprof(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "offchip: wrote pprof profile to %s (go tool pprof %s)\n", pprofOut, pprofOut)
	}
	return nil
}

// liveProgress returns a progress callback that keeps one status line
// updated on stderr: run name, simulated cycles, events/sec (wall clock),
// and in-flight misses. With -parallel the three runs report from separate
// goroutines, so the closure's state is mutex-guarded; the line then shows
// whichever run reported last.
func liveProgress() func(run string, p sim.Progress) {
	start := time.Now()
	var mu sync.Mutex
	var lastEvents int64
	lastWall := start
	return func(run string, p sim.Progress) {
		mu.Lock()
		defer mu.Unlock()
		now := time.Now()
		rate := float64(p.Events-lastEvents) / now.Sub(lastWall).Seconds()
		lastEvents, lastWall = p.Events, now
		fmt.Fprintf(os.Stderr, "\r[%-9s] cycles=%-12d events=%-12d events/sec=%-12.0f outstanding=%-4d",
			run, p.Cycles, p.Events, rate, p.Outstanding)
	}
}

// replayJob re-runs one sweep job from its canonical ID and prints the
// headline comparison. The simulation is bit-identical to the same job's
// execution inside any parallel sweep (same derived seed, fresh state).
func replayJob(id string) error {
	out, err := runner.Replay(id)
	if err != nil {
		return err
	}
	fmt.Printf("replayed %s (short %s)\n\n", out.ID, out.ShortID)
	if c := out.Comparison; c != nil {
		t := &stats.Table{
			Title:   "replay (baseline vs optimized vs optimal)",
			Headers: []string{"metric", "baseline", "optimized", "optimal", "improvement"},
		}
		t.AddF("execution time (cycles)", c.Baseline.ExecTime, c.Optimized.ExecTime, c.Optimal.ExecTime, stats.Pct(c.ExecImprovement()))
		t.AddF("off-chip mem latency", c.Baseline.MemAvg, c.Optimized.MemAvg, c.Optimal.MemAvg, stats.Pct(c.MemImprovement()))
		t.AddF("off-chip queue wait", c.Baseline.QueueAvg, c.Optimized.QueueAvg, c.Optimal.QueueAvg, stats.Pct(c.QueueImprovement()))
		fmt.Println(t.String())
	} else if r := out.Run; r != nil {
		fmt.Printf("exec time %d cycles, %d off-chip requests\n", r.ExecTime, r.OffChip)
	} else if a := out.Analysis; a != nil {
		fmt.Printf("arrays optimized %.1f%%, refs satisfied %.1f%%\n",
			a.PctArraysOptimized(), a.PctRefsSatisfied())
	}
	return nil
}

// submitSweep is the sweep-service client: POST the request to /submit,
// wait for every job to finish (polling /jobs/<id>), and render the same
// improvements table an in-process sweep would print — built entirely from
// the canonical result projections the service hands back.
func submitSweep(base string, req *experiments.Request) error {
	body, err := json.Marshal(sweepq.SubmitRequest{Request: req})
	if err != nil {
		return err
	}
	resp, err := http.Post(base+"/submit", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("submit: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	var sub sweepq.SubmitResult
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "offchip: submitted %d jobs (%d new, %d cached, %d coalesced)\n",
		len(sub.IDs), sub.Accepted, sub.Cached, sub.Coalesced)

	// Wait for each job in submission order; the service dedups, so waiting
	// sequentially still tracks overall completion.
	statuses := make([]*sweepq.JobStatus, len(sub.IDs))
	for i, id := range sub.IDs {
		js, err := awaitJob(base, id)
		if err != nil {
			return err
		}
		statuses[i] = js
		fmt.Fprintf(os.Stderr, "\roffchip: %d/%d jobs done", i+1, len(sub.IDs))
	}
	fmt.Fprintln(os.Stderr)

	t := &stats.Table{
		Title:   "sweep service results (improvement vs baseline)",
		Headers: []string{"app", "l2", "interleave", "exec%", "mem%", "offchip-net%"},
	}
	failed := 0
	for _, js := range statuses {
		spec, err := runner.ParseJobID(js.ID)
		if err != nil {
			return err
		}
		if js.State == "failed" {
			failed++
			fmt.Fprintf(os.Stderr, "offchip: job %s failed: %s\n", js.ID, js.Err)
			continue
		}
		// The canonical projection carries the three metric blocks for
		// compare-mode jobs; decode just those and rebuild the comparison.
		var can struct {
			Baseline  *core.Metrics `json:"Baseline"`
			Optimized *core.Metrics `json:"Optimized"`
			Optimal   *core.Metrics `json:"Optimal"`
		}
		if err := json.Unmarshal(js.Canonical, &can); err != nil {
			return fmt.Errorf("job %s: decode canonical result: %w", js.ID, err)
		}
		if can.Baseline == nil || can.Optimized == nil {
			fmt.Fprintf(os.Stderr, "offchip: job %s is not a compare-mode job; skipping\n", js.ID)
			continue
		}
		c := core.Comparison{Baseline: *can.Baseline, Optimized: *can.Optimized}
		if can.Optimal != nil {
			c.Optimal = *can.Optimal
		}
		t.AddF(spec.App, orDefault(spec.L2, "private"), orDefault(spec.Interleave, "line"),
			100*c.ExecImprovement(), 100*c.MemImprovement(), 100*c.OffChipNetImprovement())
	}
	fmt.Println(t.String())
	if failed > 0 {
		return fmt.Errorf("%d job(s) failed", failed)
	}
	return nil
}

// awaitJob polls one job's status until it settles.
func awaitJob(base, id string) (*sweepq.JobStatus, error) {
	for {
		resp, err := http.Get(base + "/jobs/" + id)
		if err != nil {
			return nil, fmt.Errorf("jobs: %w", err)
		}
		var js sweepq.JobStatus
		err = json.NewDecoder(resp.Body).Decode(&js)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if js.State == "done" || js.State == "failed" {
			return &js, nil
		}
		time.Sleep(250 * time.Millisecond)
	}
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

// writeMetrics dumps every run's registry as JSONL, one point per line,
// tagged with the run name.
func writeMetrics(path string, c *core.Comparison) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	for _, run := range []string{"baseline", "optimized", "optimal"} {
		o := c.Observers[run]
		if o == nil {
			continue
		}
		until := c.Baseline.ExecTime
		switch run {
		case "optimized":
			until = c.Optimized.ExecTime
		case "optimal":
			until = c.Optimal.ExecTime
		}
		points := o.Reg.Snapshot(until)
		for i := range points {
			points[i].Run = run
		}
		if err := obs.WriteJSONL(f, points); err != nil {
			return err
		}
	}
	return f.Close()
}

// printDashboard renders the post-run observability dashboard: the mesh
// link heat grids, the per-MC request mix and hottest banks (baseline vs
// optimized), the Figure 15 hop CDF, and the structural metric diff.
func printDashboard(c *core.Comparison, m layout.Machine) {
	base := c.Observers["baseline"].Reg
	opt := c.Observers["optimized"].Reg
	fmt.Println("== observability dashboard ==")
	fmt.Println()
	fmt.Println("--- baseline ---")
	fmt.Println(obs.LinkHeatGrid(base, m.MeshX, m.MeshY))
	fmt.Println(obs.MCRequestMix(base, c.Baseline.ExecTime).String())
	fmt.Println(obs.HottestBanks(base, 10).String())
	fmt.Println("--- optimized ---")
	fmt.Println(obs.LinkHeatGrid(opt, m.MeshX, m.MeshY))
	fmt.Println(obs.MCRequestMix(opt, c.Optimized.ExecTime).String())
	fmt.Println(obs.HottestBanks(opt, 10).String())
	fmt.Println(obs.HottestLinks(opt, 10).String())
	fmt.Println(obs.HopCDFTable(opt).String())
	fmt.Println(obs.DiffTable(base, opt).String())
}

func mustRead(path string) []byte {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	return b
}
