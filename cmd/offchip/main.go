// Command offchip runs the off-chip access localization pass on a program
// in the affine-loop language and reports what the compiler did and what it
// bought on the simulated manycore:
//
//	offchip -src kernel.alc                # transform + simulate
//	offchip -src kernel.alc -show          # also print the transformed forms
//	offchip -app apsi                      # use a built-in benchmark kernel
//	offchip -app apsi -l2 shared -mapping m2
//
// The report shows the per-array transformation decisions (Table 2 style),
// the Figure 9(c) customized reference forms, and the baseline/optimized/
// optimal comparison on the Table 1 platform.
//
// Observability (see README "Observing a run"):
//
//	offchip -app apsi -progress            # live one-line run status
//	offchip -app apsi -trace t.json        # Chrome trace of the optimized run
//	offchip -app apsi -metrics m.jsonl     # metrics registry dump, all runs
//	offchip -app apsi -report              # post-run text dashboard
//	offchip -app apsi -pprof :6060         # serve net/http/pprof while running
//
// Parallelism and replay (see EXPERIMENTS.md "Parallel sweeps"):
//
//	offchip -app apsi -parallel            # run the three simulations concurrently
//	offchip -app apsi -seed 7              # decorrelate the DRAM jitter stream
//	offchip -replay '<job-id>'             # re-run one sweep job bit-exactly
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"sync"
	"time"

	"offchip/internal/approx"
	"offchip/internal/core"
	"offchip/internal/ir"
	"offchip/internal/layout"
	"offchip/internal/obs"
	"offchip/internal/runner"
	"offchip/internal/sim"
	"offchip/internal/stats"
	"offchip/internal/workloads"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "offchip:", err)
		os.Exit(1)
	}
}

func run() error {
	src := flag.String("src", "", "program in the affine-loop language")
	app := flag.String("app", "", "built-in benchmark kernel (wupwise..minimd)")
	l2 := flag.String("l2", "private", "last-level cache: private | shared")
	mapping := flag.String("mapping", "m1", "L2-to-MC mapping: m1 | m2")
	interleave := flag.String("interleave", "line", "physical address interleaving: line | page")
	show := flag.Bool("show", false, "print the transformed reference forms")
	simulate := flag.Bool("sim", true, "run the baseline/optimized/optimal simulation")
	traceOut := flag.String("trace", "", "write a Chrome trace_event file of the optimized run (chrome://tracing, Perfetto)")
	traceSample := flag.Int64("trace-sample", 1, "keep every Nth trace event")
	metricsOut := flag.String("metrics", "", "write a JSONL metrics dump of all three runs")
	progress := flag.Bool("progress", false, "print a live one-line status during simulation")
	report := flag.Bool("report", false, "print the post-run observability dashboard")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. :6060)")
	parallel := flag.Bool("parallel", false, "run the baseline/optimized/optimal simulations concurrently (identical results)")
	checkRun := flag.Bool("check", false, "attach the invariant checker to every run and fail on any violation")
	seed := flag.Uint64("seed", 0, "jitter seed; 0 keeps the historical stream of the recorded figures")
	replay := flag.String("replay", "", "re-run one sweep job from its canonical ID (see benchtab -jobs) and exit")
	flag.Parse()

	if *replay != "" {
		return replayJob(*replay)
	}

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "offchip: pprof:", err)
			}
		}()
	}

	m := layout.Default8x8()
	switch *l2 {
	case "private":
	case "shared":
		m.L2 = layout.SharedL2
	default:
		return fmt.Errorf("unknown -l2 %q", *l2)
	}
	switch *interleave {
	case "line":
	case "page":
		m.Interleave = layout.PageInterleave
	default:
		return fmt.Errorf("unknown -interleave %q", *interleave)
	}
	placement := layout.PlacementCorners(m.MeshX, m.MeshY)
	var cm *layout.ClusterMapping
	var err error
	switch *mapping {
	case "m1":
		cm, err = layout.MappingM1(m, placement)
	case "m2":
		cm, err = layout.MappingM2(m, placement)
	default:
		return fmt.Errorf("unknown -mapping %q", *mapping)
	}
	if err != nil {
		return err
	}

	var prog *ir.Program
	var store *ir.DataStore
	var bench *workloads.App
	switch {
	case *src != "":
		text, err := os.ReadFile(*src)
		if err != nil {
			return err
		}
		prog, err = ir.Parse(string(text))
		if err != nil {
			return err
		}
		store = ir.NewDataStore()
	case *app != "":
		a, ok := workloads.ByName(*app)
		if !ok {
			return fmt.Errorf("unknown application %q (have %v)", *app, workloads.Names())
		}
		bench = a
		prog, store, err = a.Load()
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -src <file> or -app <name>")
	}

	res, err := layout.Optimize(prog, m, cm, &layout.Options{Approx: approx.NewProfiler(store)})
	if err != nil {
		return err
	}
	fmt.Printf("machine: %dx%d mesh, %d MCs (%s), %s, %s interleaving, mapping %s\n\n",
		m.MeshX, m.MeshY, m.NumMCs, placement.Name, m.L2, m.Interleave, cm.Name)
	fmt.Println(res.Report())

	if *show {
		fmt.Println("transformed references (Figure 9(c) forms):")
		for _, nest := range prog.Nests {
			for _, s := range nest.Body {
				for _, r := range s.Refs() {
					al := res.Layout(r.Array)
					if !al.Optimized {
						continue
					}
					if cr, err := al.RewriteRef(r); err == nil {
						fmt.Printf("  %-28s -> %s\n", r, cr)
					} else {
						fmt.Printf("  %-28s -> %s   (schematic: %v)\n", r, al.CustomizedForm(r), err)
					}
				}
			}
		}
		fmt.Println()
	}

	if !*simulate {
		return nil
	}
	if bench == nil {
		// Wrap the parsed program as an ad-hoc app for the comparison.
		bench = &workloads.App{Name: prog.Name, Source: string(mustRead(*src)), Demand: layout.DefaultDemand()}
	}

	opt := core.Options{Concurrent: *parallel, Seed: *seed, Check: *checkRun}
	var tracer *obs.Tracer
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		tracer = obs.NewTracer(obs.TracerOptions{Chrome: f, Sample: *traceSample})
		opt.Observer = func(run string) *obs.Observer {
			if run == "optimized" {
				return &obs.Observer{Reg: obs.NewRegistry(), Tracer: tracer}
			}
			return nil
		}
	}
	if *progress {
		opt.OnProgress = liveProgress()
	}

	c, err := core.Compare(bench, m, cm, opt)
	if *progress {
		fmt.Fprintln(os.Stderr)
	}
	if err != nil {
		return err
	}
	if tracer != nil {
		if err := tracer.Close(); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		fmt.Fprintf(os.Stderr, "offchip: wrote %d trace events to %s (load in chrome://tracing or Perfetto)\n",
			tracer.Kept(), *traceOut)
	}
	if *checkRun {
		bad := 0
		for _, run := range []string{"baseline", "optimized", "optimal"} {
			vs := c.Checks[run]
			if len(vs) == 0 {
				fmt.Fprintf(os.Stderr, "offchip: check %-9s ok\n", run)
				continue
			}
			bad += len(vs)
			for _, v := range vs {
				fmt.Fprintf(os.Stderr, "offchip: check %-9s VIOLATION %s\n", run, v)
			}
		}
		if bad > 0 {
			return fmt.Errorf("invariant checker found %d violation(s)", bad)
		}
	}

	t := &stats.Table{
		Title:   "simulation (baseline vs optimized vs optimal)",
		Headers: []string{"metric", "baseline", "optimized", "optimal", "improvement"},
	}
	t.AddF("execution time (cycles)", c.Baseline.ExecTime, c.Optimized.ExecTime, c.Optimal.ExecTime, stats.Pct(c.ExecImprovement()))
	t.AddF("on-chip net latency", c.Baseline.OnChipNetAvg, c.Optimized.OnChipNetAvg, c.Optimal.OnChipNetAvg, stats.Pct(c.OnChipNetImprovement()))
	t.AddF("off-chip net latency", c.Baseline.OffChipNetAvg, c.Optimized.OffChipNetAvg, c.Optimal.OffChipNetAvg, stats.Pct(c.OffChipNetImprovement()))
	t.AddF("off-chip mem latency", c.Baseline.MemAvg, c.Optimized.MemAvg, c.Optimal.MemAvg, stats.Pct(c.MemImprovement()))
	t.AddF("off-chip queue wait", c.Baseline.QueueAvg, c.Optimized.QueueAvg, c.Optimal.QueueAvg, stats.Pct(c.QueueImprovement()))
	fmt.Println(t.String())

	if *metricsOut != "" {
		if err := writeMetrics(*metricsOut, c); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "offchip: wrote metrics to %s\n", *metricsOut)
	}
	if *report {
		printDashboard(c, m)
	}
	return nil
}

// liveProgress returns a progress callback that keeps one status line
// updated on stderr: run name, simulated cycles, events/sec (wall clock),
// and in-flight misses. With -parallel the three runs report from separate
// goroutines, so the closure's state is mutex-guarded; the line then shows
// whichever run reported last.
func liveProgress() func(run string, p sim.Progress) {
	start := time.Now()
	var mu sync.Mutex
	var lastEvents int64
	lastWall := start
	return func(run string, p sim.Progress) {
		mu.Lock()
		defer mu.Unlock()
		now := time.Now()
		rate := float64(p.Events-lastEvents) / now.Sub(lastWall).Seconds()
		lastEvents, lastWall = p.Events, now
		fmt.Fprintf(os.Stderr, "\r[%-9s] cycles=%-12d events=%-12d events/sec=%-12.0f outstanding=%-4d",
			run, p.Cycles, p.Events, rate, p.Outstanding)
	}
}

// replayJob re-runs one sweep job from its canonical ID and prints the
// headline comparison. The simulation is bit-identical to the same job's
// execution inside any parallel sweep (same derived seed, fresh state).
func replayJob(id string) error {
	out, err := runner.Replay(id)
	if err != nil {
		return err
	}
	fmt.Printf("replayed %s (short %s)\n\n", out.ID, out.ShortID)
	if c := out.Comparison; c != nil {
		t := &stats.Table{
			Title:   "replay (baseline vs optimized vs optimal)",
			Headers: []string{"metric", "baseline", "optimized", "optimal", "improvement"},
		}
		t.AddF("execution time (cycles)", c.Baseline.ExecTime, c.Optimized.ExecTime, c.Optimal.ExecTime, stats.Pct(c.ExecImprovement()))
		t.AddF("off-chip mem latency", c.Baseline.MemAvg, c.Optimized.MemAvg, c.Optimal.MemAvg, stats.Pct(c.MemImprovement()))
		t.AddF("off-chip queue wait", c.Baseline.QueueAvg, c.Optimized.QueueAvg, c.Optimal.QueueAvg, stats.Pct(c.QueueImprovement()))
		fmt.Println(t.String())
	} else if r := out.Run; r != nil {
		fmt.Printf("exec time %d cycles, %d off-chip requests\n", r.ExecTime, r.OffChip)
	} else if a := out.Analysis; a != nil {
		fmt.Printf("arrays optimized %.1f%%, refs satisfied %.1f%%\n",
			a.PctArraysOptimized(), a.PctRefsSatisfied())
	}
	return nil
}

// writeMetrics dumps every run's registry as JSONL, one point per line,
// tagged with the run name.
func writeMetrics(path string, c *core.Comparison) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	for _, run := range []string{"baseline", "optimized", "optimal"} {
		o := c.Observers[run]
		if o == nil {
			continue
		}
		until := c.Baseline.ExecTime
		switch run {
		case "optimized":
			until = c.Optimized.ExecTime
		case "optimal":
			until = c.Optimal.ExecTime
		}
		points := o.Reg.Snapshot(until)
		for i := range points {
			points[i].Run = run
		}
		if err := obs.WriteJSONL(f, points); err != nil {
			return err
		}
	}
	return f.Close()
}

// printDashboard renders the post-run observability dashboard: the mesh
// link heat grids, the per-MC request mix and hottest banks (baseline vs
// optimized), the Figure 15 hop CDF, and the structural metric diff.
func printDashboard(c *core.Comparison, m layout.Machine) {
	base := c.Observers["baseline"].Reg
	opt := c.Observers["optimized"].Reg
	fmt.Println("== observability dashboard ==")
	fmt.Println()
	fmt.Println("--- baseline ---")
	fmt.Println(obs.LinkHeatGrid(base, m.MeshX, m.MeshY))
	fmt.Println(obs.MCRequestMix(base, c.Baseline.ExecTime).String())
	fmt.Println(obs.HottestBanks(base, 10).String())
	fmt.Println("--- optimized ---")
	fmt.Println(obs.LinkHeatGrid(opt, m.MeshX, m.MeshY))
	fmt.Println(obs.MCRequestMix(opt, c.Optimized.ExecTime).String())
	fmt.Println(obs.HottestBanks(opt, 10).String())
	fmt.Println(obs.HottestLinks(opt, 10).String())
	fmt.Println(obs.HopCDFTable(opt).String())
	fmt.Println(obs.DiffTable(base, opt).String())
}

func mustRead(path string) []byte {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	return b
}
