// Command offchip runs the off-chip access localization pass on a program
// in the affine-loop language and reports what the compiler did and what it
// bought on the simulated manycore:
//
//	offchip -src kernel.alc                # transform + simulate
//	offchip -src kernel.alc -show          # also print the transformed forms
//	offchip -app apsi                      # use a built-in benchmark kernel
//	offchip -app apsi -l2 shared -mapping m2
//
// The report shows the per-array transformation decisions (Table 2 style),
// the Figure 9(c) customized reference forms, and the baseline/optimized/
// optimal comparison on the Table 1 platform.
package main

import (
	"flag"
	"fmt"
	"os"

	"offchip/internal/approx"
	"offchip/internal/core"
	"offchip/internal/ir"
	"offchip/internal/layout"
	"offchip/internal/stats"
	"offchip/internal/workloads"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "offchip:", err)
		os.Exit(1)
	}
}

func run() error {
	src := flag.String("src", "", "program in the affine-loop language")
	app := flag.String("app", "", "built-in benchmark kernel (wupwise..minimd)")
	l2 := flag.String("l2", "private", "last-level cache: private | shared")
	mapping := flag.String("mapping", "m1", "L2-to-MC mapping: m1 | m2")
	interleave := flag.String("interleave", "line", "physical address interleaving: line | page")
	show := flag.Bool("show", false, "print the transformed reference forms")
	simulate := flag.Bool("sim", true, "run the baseline/optimized/optimal simulation")
	flag.Parse()

	m := layout.Default8x8()
	switch *l2 {
	case "private":
	case "shared":
		m.L2 = layout.SharedL2
	default:
		return fmt.Errorf("unknown -l2 %q", *l2)
	}
	switch *interleave {
	case "line":
	case "page":
		m.Interleave = layout.PageInterleave
	default:
		return fmt.Errorf("unknown -interleave %q", *interleave)
	}
	placement := layout.PlacementCorners(m.MeshX, m.MeshY)
	var cm *layout.ClusterMapping
	var err error
	switch *mapping {
	case "m1":
		cm, err = layout.MappingM1(m, placement)
	case "m2":
		cm, err = layout.MappingM2(m, placement)
	default:
		return fmt.Errorf("unknown -mapping %q", *mapping)
	}
	if err != nil {
		return err
	}

	var prog *ir.Program
	var store *ir.DataStore
	var bench *workloads.App
	switch {
	case *src != "":
		text, err := os.ReadFile(*src)
		if err != nil {
			return err
		}
		prog, err = ir.Parse(string(text))
		if err != nil {
			return err
		}
		store = ir.NewDataStore()
	case *app != "":
		a, ok := workloads.ByName(*app)
		if !ok {
			return fmt.Errorf("unknown application %q (have %v)", *app, workloads.Names())
		}
		bench = a
		prog, store, err = a.Load()
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -src <file> or -app <name>")
	}

	res, err := layout.Optimize(prog, m, cm, &layout.Options{Approx: approx.NewProfiler(store)})
	if err != nil {
		return err
	}
	fmt.Printf("machine: %dx%d mesh, %d MCs (%s), %s, %s interleaving, mapping %s\n\n",
		m.MeshX, m.MeshY, m.NumMCs, placement.Name, m.L2, m.Interleave, cm.Name)
	fmt.Println(res.Report())

	if *show {
		fmt.Println("transformed references (Figure 9(c) forms):")
		for _, nest := range prog.Nests {
			for _, s := range nest.Body {
				for _, r := range s.Refs() {
					al := res.Layout(r.Array)
					if !al.Optimized {
						continue
					}
					if cr, err := al.RewriteRef(r); err == nil {
						fmt.Printf("  %-28s -> %s\n", r, cr)
					} else {
						fmt.Printf("  %-28s -> %s   (schematic: %v)\n", r, al.CustomizedForm(r), err)
					}
				}
			}
		}
		fmt.Println()
	}

	if !*simulate {
		return nil
	}
	if bench == nil {
		// Wrap the parsed program as an ad-hoc app for the comparison.
		bench = &workloads.App{Name: prog.Name, Source: string(mustRead(*src)), Demand: layout.DefaultDemand()}
	}
	c, err := core.Compare(bench, m, cm, core.Options{})
	if err != nil {
		return err
	}
	t := &stats.Table{
		Title:   "simulation (baseline vs optimized vs optimal)",
		Headers: []string{"metric", "baseline", "optimized", "optimal", "improvement"},
	}
	t.AddF("execution time (cycles)", c.Baseline.ExecTime, c.Optimized.ExecTime, c.Optimal.ExecTime, stats.Pct(c.ExecImprovement()))
	t.AddF("on-chip net latency", c.Baseline.OnChipNetAvg, c.Optimized.OnChipNetAvg, c.Optimal.OnChipNetAvg, stats.Pct(c.OnChipNetImprovement()))
	t.AddF("off-chip net latency", c.Baseline.OffChipNetAvg, c.Optimized.OffChipNetAvg, c.Optimal.OffChipNetAvg, stats.Pct(c.OffChipNetImprovement()))
	t.AddF("off-chip mem latency", c.Baseline.MemAvg, c.Optimized.MemAvg, c.Optimal.MemAvg, stats.Pct(c.MemImprovement()))
	t.AddF("off-chip queue wait", c.Baseline.QueueAvg, c.Optimized.QueueAvg, c.Optimal.QueueAvg, stats.Pct(c.QueueImprovement()))
	fmt.Println(t.String())
	return nil
}

func mustRead(path string) []byte {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	return b
}
