// Command sweepd is the sharded sweep service: an HTTP server that accepts
// sweep requests, expands them into canonical job IDs, runs them on a fleet
// of worker processes, and aggregates every job's observability registry
// into one live merged view.
//
//	sweepd -state /var/lib/sweepd -addr :9191 -workers 4
//
// Endpoints (see README.md "Running a sweep service"):
//
//	POST /submit    {"request": {"apps": ["apsi"], "cap": 100}} or {"jobs": ["j1:..."]}
//	GET  /progress  job counts, elapsed, ETA
//	GET  /jobs/<id> one job's state and canonical result
//	GET  /metrics   the merged registry, Prometheus text exposition
//	GET  /state     queue and fleet counters (journal hits, retries, ...)
//
// Every completion is journaled to the state directory before it is
// acknowledged, so killing the daemon mid-sweep loses only in-flight jobs:
// on restart, resubmitted IDs are served from the journal and only the
// remainder re-runs. Identical job IDs always dedup — in-flight submissions
// coalesce and completed ones are cache hits.
//
// The worker fleet is this same binary re-executed with -worker, speaking
// length-prefixed JSON over stdin/stdout (the protocol in DESIGN.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"offchip/internal/sweepq"
)

func main() {
	sweepq.MaybeWorker()
	worker := flag.Bool("worker", false, "run as a worker process: execute jobs framed over stdin/stdout (the server spawns these)")
	addr := flag.String("addr", "127.0.0.1:9191", "HTTP listen address")
	state := flag.String("state", "sweepd-state", "state directory: checkpoint journal, result blobs, shared trace cache")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker process count")
	jobTimeout := flag.Duration("job-timeout", 10*time.Minute, "per-job wall-clock bound; a worker that blows it is killed and the job retried (0: unbounded)")
	retries := flag.Int("retries", 2, "transport-failure retries per job (crash, timeout); deterministic job errors never retry")
	backoff := flag.Duration("retry-backoff", time.Second, "base delay before a failed job requeues (scales with the attempt)")
	flag.Parse()

	if *worker {
		if err := sweepq.WorkerMain(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "sweepd worker:", err)
			os.Exit(1)
		}
		return
	}

	self, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		os.Exit(1)
	}
	srv, err := sweepq.NewServer(sweepq.Config{
		StateDir:     *state,
		Addr:         *addr,
		Workers:      *workers,
		JobTimeout:   *jobTimeout,
		MaxRetries:   *retries,
		RetryBackoff: *backoff,
		WorkerCommand: func() *exec.Cmd {
			return exec.Command(self, "-worker")
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "sweepd: serving on http://%s (state %s, %d workers)\n",
		srv.Addr(), *state, *workers)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "sweepd: shutting down")
	srv.Close()
}
