package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"offchip/internal/experiments"
	"offchip/internal/prof"
	"offchip/internal/runner"
	"offchip/internal/stats"
	"offchip/internal/sweepq"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden snapshot files")

// TestMain lets this test binary double as the worker fleet: the server
// under test spawns it with sweepq.WorkerEnv set, and MaybeWorker routes
// those children into the protocol loop.
func TestMain(m *testing.M) {
	sweepq.MaybeWorker()
	os.Exit(m.Run())
}

// TestServiceSmoke is the make service-smoke gate: boot the sweep service,
// submit a tiny sweep request over HTTP, and verify the improvements table
// rendered from the service's results against the golden snapshot, plus a
// well-formed /metrics exposition of the merged registry.
func TestServiceSmoke(t *testing.T) {
	srv, err := sweepq.NewServer(sweepq.Config{
		StateDir:   t.TempDir(),
		Workers:    2,
		MaxRetries: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Submit a declarative sweep request: one app × the three layout
	// schemes, short traces.
	req := sweepq.SubmitRequest{
		Request: &experiments.Request{Apps: []string{"apsi"}, Cap: 100},
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post("http://"+srv.Addr()+"/submit", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub sweepq.SubmitResult
	err = json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.IDs) != 3 || sub.Accepted != 3 {
		t.Fatalf("expected 3 accepted jobs, got %+v", sub)
	}
	if failed := srv.Wait(0); failed != 0 {
		t.Fatalf("%d jobs failed", failed)
	}

	// Render the improvements table from the service's results — the same
	// figures an in-process sweep would print.
	table := &stats.Table{
		Title:   "service sweep: app × layout scheme",
		Headers: []string{"app", "scheme", "exec%", "mem%", "offchip-net%"},
	}
	schemes := experiments.SchemeNames()
	for i, id := range sub.IDs {
		jr := srv.Result(id)
		if jr == nil {
			t.Fatalf("no result for %s", id)
		}
		out := jr.Outcome()
		if out.Err != nil {
			t.Fatalf("%s: %v", id, out.Err)
		}
		c := out.Comparison
		table.AddF(out.Spec.App, schemes[i%len(schemes)],
			100*c.ExecImprovement(), 100*c.MemImprovement(), 100*c.OffChipNetImprovement())
	}
	got := table.String()

	golden := filepath.Join("testdata", "service_smoke.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	} else {
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("missing golden snapshot (run with -update to create): %v", err)
		}
		if got != string(want) {
			t.Errorf("service sweep table drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
		}
	}

	// The merged registry must export as valid Prometheus text exposition.
	resp, err = http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	families, samples, err := prof.ParseExposition(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if families == 0 || samples == 0 {
		t.Fatalf("empty exposition: %d families, %d samples", families, samples)
	}

	// /progress and /jobs/<id> answer sensibly after completion.
	resp, err = http.Get("http://" + srv.Addr() + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	var p prof.Progress
	err = json.NewDecoder(resp.Body).Decode(&p)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalJobs != 3 || p.DoneJobs != 3 {
		t.Fatalf("progress after completion: %+v", p)
	}
	resp, err = http.Get("http://" + srv.Addr() + "/jobs/" + sub.IDs[0])
	if err != nil {
		t.Fatal(err)
	}
	var js struct {
		State     string          `json:"state"`
		Canonical json.RawMessage `json:"canonical"`
	}
	err = json.NewDecoder(resp.Body).Decode(&js)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if js.State != "done" || len(js.Canonical) == 0 {
		t.Fatalf("job status after completion: state=%q canonical=%d bytes", js.State, len(js.Canonical))
	}

	// The canonical result must byte-match an in-process replay: the fleet
	// upholds the determinism contract end to end. The HTTP layer
	// pretty-prints responses (re-indenting the embedded raw message), so
	// compact before comparing.
	spec, err := runner.ParseJobID(sub.IDs[0])
	if err != nil {
		t.Fatal(err)
	}
	want, err := spec.Execute().CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var compacted bytes.Buffer
	if err := json.Compact(&compacted, js.Canonical); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(compacted.Bytes(), want) {
		t.Fatalf("service result differs from in-process replay for %s:\n got %s\nwant %s",
			sub.IDs[0], compacted.Bytes(), want)
	}
}

// TestServiceResubmitIsCached pins the dedup contract at the service
// boundary: a second identical submission does no new work.
func TestServiceResubmitIsCached(t *testing.T) {
	srv, err := sweepq.NewServer(sweepq.Config{StateDir: t.TempDir(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	id := runner.JobSpec{Mode: runner.ModeBaseline, App: "apsi", Cap: 60}.ID()
	if _, err := srv.Submit([]string{id}, 0); err != nil {
		t.Fatal(err)
	}
	srv.Wait(0)
	res, err := srv.Submit([]string{id, id}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 0 || res.Cached != 2 {
		t.Fatalf("resubmit not served from cache: %+v", res)
	}
	if st := srv.Stats(); st.CacheHits != 2 {
		t.Fatalf("cache hits not counted: %+v", st)
	}
}
