// Package offchip reproduces "Optimizing Off-Chip Accesses in Multicores"
// (Ding, Tang, Kandemir, Zhang, Kultursay — PLDI 2015): a compiler-guided
// data layout transformation that places each thread's data so its off-chip
// (main memory) requests reach a nearby memory controller over the
// network-on-chip, plus the manycore simulation substrate the evaluation
// needs.
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory), the runnable entry points under cmd/ and examples/, and the
// benchmark harness that regenerates every table and figure of the paper in
// bench_test.go (one testing.B benchmark per figure).
package offchip
