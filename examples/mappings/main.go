// Mappings: explore the locality-vs-parallelism trade-off of Section 4.
// The L2-to-MC mapping M1 (one controller per quadrant) maximizes locality;
// M2 (two controllers per half) halves the distance advantage but doubles
// each cluster's bank parallelism. For most applications M1 wins; for the
// bank-hungry fma3d it loses — and the compiler analysis (ChooseMapping)
// predicts the winner from the demand profile without simulating.
//
//	go run ./examples/mappings
package main

import (
	"fmt"
	"log"

	"offchip/internal/core"
	"offchip/internal/layout"
	"offchip/internal/stats"
	"offchip/internal/workloads"
)

func main() {
	machine := layout.Default8x8()
	placement := layout.PlacementCorners(machine.MeshX, machine.MeshY)
	m1, err := layout.MappingM1(machine, placement)
	if err != nil {
		log.Fatal(err)
	}
	m2, err := layout.MappingM2(machine, placement)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("M1: %d clusters × %d MC(s), avg distance-to-MC %.2f hops\n",
		m1.NumClusters(), m1.K, m1.AvgDistToMC())
	fmt.Printf("M2: %d clusters × %d MC(s), avg distance-to-MC %.2f hops\n\n",
		m2.NumClusters(), m2.K, m2.AvgDistToMC())

	t := &stats.Table{
		Title:   "execution time improvement by mapping",
		Headers: []string{"app", "demand", "chooser", "M1", "M2", "winner"},
	}
	for _, name := range []string{"swim", "apsi", "fma3d", "minighost"} {
		app, _ := workloads.ByName(name)
		pick := layout.ChooseMapping([]*layout.ClusterMapping{m1, m2}, app.Demand, 4)

		imp := func(cm *layout.ClusterMapping) float64 {
			c, err := core.Compare(app, machine, cm, core.Options{})
			if err != nil {
				log.Fatal(err)
			}
			return 100 * c.ExecImprovement()
		}
		i1, i2 := imp(m1), imp(m2)
		winner := "M1"
		if i2 > i1 {
			winner = "M2"
		}
		t.AddF(name, app.Demand.ConcurrentRequests, pick.Name,
			fmt.Sprintf("%.1f%%", i1), fmt.Sprintf("%.1f%%", i2), winner)
	}
	fmt.Println(t.String())
	fmt.Println("The chooser favors M2 exactly for the high-MLP applications (Figure 17).")
}
