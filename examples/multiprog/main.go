// Multiprog: co-run two multithreaded applications on one manycore
// (Section 6.4). Each core time-shares one thread of each application; the
// layout transformation is per-application and oblivious to co-scheduling,
// yet the mix's weighted speedup improves because both applications' off-
// chip traffic stops criss-crossing the mesh.
//
//	go run ./examples/multiprog
package main

import (
	"fmt"
	"log"

	"offchip/internal/core"
	"offchip/internal/layout"
	"offchip/internal/sim"
	"offchip/internal/stats"
	"offchip/internal/trace"
	"offchip/internal/workloads"
)

func main() {
	machine := layout.Default8x8()
	mapping, err := layout.MappingM1(machine, layout.PlacementCorners(machine.MeshX, machine.MeshY))
	if err != nil {
		log.Fatal(err)
	}
	mix := []string{"swim", "apsi"}
	cfg := core.SimConfig(machine, mapping, core.Options{})

	var alone []int64
	var baseStreams, optStreams []*sim.Workload
	for appID, name := range mix {
		app, _ := workloads.ByName(name)
		baseW, optW, _, err := core.Workloads(app, machine, mapping, core.Options{})
		if err != nil {
			log.Fatal(err)
		}
		for i := range baseW.Streams {
			baseW.Streams[i].AppID = appID
		}
		for i := range optW.Streams {
			optW.Streams[i].AppID = appID
		}
		r, err := sim.Run(cfg, baseW)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s alone: %d cycles\n", name, r.ExecTime)
		alone = append(alone, r.ExecTime)
		baseStreams = append(baseStreams, baseW)
		optStreams = append(optStreams, optW)
	}

	run := func(label string, ws []*sim.Workload) float64 {
		r, err := sim.Run(cfg, trace.Merge("mix", ws...))
		if err != nil {
			log.Fatal(err)
		}
		var shared []int64
		for appID, name := range mix {
			fmt.Printf("%-6s shared (%s): %d cycles\n", name, label, r.AppExecTime[appID])
			shared = append(shared, r.AppExecTime[appID])
		}
		return stats.WeightedSpeedup(alone, shared)
	}
	wsBase := run("original", baseStreams)
	wsOpt := run("optimized", optStreams)
	fmt.Printf("\nweighted speedup: original %.2f, optimized %.2f (%.1f%% better)\n",
		wsBase, wsOpt, 100*(wsOpt-wsBase)/wsBase)
}
