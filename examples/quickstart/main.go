// Quickstart: write a parallel stencil in the affine-loop language, run the
// off-chip access localization pass on the paper's 8×8/4-MC platform, and
// measure what it buys on the simulated manycore.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"offchip/internal/core"
	"offchip/internal/ir"
	"offchip/internal/layout"
	"offchip/internal/sim"
	"offchip/internal/trace"
)

// A column-order stencil (the paper's Figure 9(a) shape): the parallel loop
// indexes the fastest-varying dimension, so under the original layout each
// thread's off-chip misses spray across all four memory controllers.
const kernel = `
program quickstart
param NCOL = 2048
param NROW = 24
array Z[24][2048]

parfor i = 1 .. NCOL-1 {
  for j = 1 .. NROW-1 {
    Z[j][i] = Z[j-1][i] + Z[j][i] + Z[j+1][i]
  }
}
`

func main() {
	prog, err := ir.Parse(kernel)
	if err != nil {
		log.Fatal(err)
	}

	// The paper's Table 1 platform: 8×8 mesh, four corner controllers,
	// private L2s, cache-line interleaving, and the default L2-to-MC
	// mapping M1 (Figure 8a: one controller per quadrant).
	machine := layout.Default8x8()
	mapping, err := layout.MappingM1(machine, layout.PlacementCorners(machine.MeshX, machine.MeshY))
	if err != nil {
		log.Fatal(err)
	}

	// Step 1+2 of the paper: Data-to-Core mapping, then layout
	// customization (Algorithm 1).
	res, err := layout.Optimize(prog, machine, mapping, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Report())
	w := prog.Nests[0].Body[0].Write
	fmt.Printf("transformed reference: %s -> %s\n\n", w, res.Layout(w.Array).CustomizedForm(w))

	// Generate per-core traces for the original and transformed layouts
	// and replay them on the simulator.
	identity := &layout.Result{Program: prog, Layouts: map[*ir.Array]*layout.ArrayLayout{}}
	baseW, err := trace.Generate(prog, identity, machine, nil, trace.Options{MaxAccessesPerThread: trace.Unlimited})
	if err != nil {
		log.Fatal(err)
	}
	optW, err := trace.Generate(prog, res, machine, nil, trace.Options{MaxAccessesPerThread: trace.Unlimited})
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.SimConfig(machine, mapping, core.Options{})
	baseR, err := sim.Run(cfg, baseW)
	if err != nil {
		log.Fatal(err)
	}
	optR, err := sim.Run(cfg, optW)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("baseline : %8d cycles (off-chip share %.1f%%)\n", baseR.ExecTime, 100*baseR.OffChipShare())
	fmt.Printf("optimized: %8d cycles (off-chip share %.1f%%)\n", optR.ExecTime, 100*optR.OffChipShare())
	fmt.Printf("execution time saving: %.1f%%\n",
		100*float64(baseR.ExecTime-optR.ExecTime)/float64(baseR.ExecTime))
}
