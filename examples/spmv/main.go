// SpMV: localize the indexed references of a CRS sparse matrix-vector
// product using the Section 5.4 profile-based affine approximation. The
// gather x[colidx[...]] cannot be analyzed statically; the profiler fits an
// affine function to its dense access pattern and the pass optimizes the
// array when the fit error is acceptable — here a banded (27-point-style)
// matrix fits well, while a randomly permuted one is rejected and x keeps
// its original layout.
//
//	go run ./examples/spmv
package main

import (
	"fmt"
	"log"
	"math/rand"

	"offchip/internal/approx"
	"offchip/internal/ir"
	"offchip/internal/layout"
)

const kernel = `
program spmv
param ROWS = 4096
param NNZ = 8
array x[4096]
array Ax[4096]
array colidx[32768] elem 4

parfor row = 0 .. ROWS {
  for nz = 0 .. NNZ {
    Ax[row] = Ax[row] + x[colidx[8*row+nz]]
  }
}
`

func main() {
	machine := layout.Default8x8()
	mapping, err := layout.MappingM1(machine, layout.PlacementCorners(machine.MeshX, machine.MeshY))
	if err != nil {
		log.Fatal(err)
	}

	for _, matrix := range []string{"banded", "random"} {
		prog, err := ir.Parse(kernel)
		if err != nil {
			log.Fatal(err)
		}
		col := prog.Array("colidx")
		store := ir.NewDataStore()
		store.SetContents(col, columns(matrix))

		profiler := approx.NewProfiler(store)
		res, err := layout.Optimize(prog, machine, mapping, &layout.Options{Approx: profiler})
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("--- %s matrix ---\n", matrix)
		// Find the indexed reference and report the fit.
		for _, nest := range prog.Nests {
			for _, s := range nest.Body {
				for _, r := range s.Refs() {
					if r.Indexed() {
						fmt.Printf("indexed reference %s: normalized fit error %.3f (threshold %.2f)\n",
							r, profiler.Err(r), approx.DefaultThreshold)
					}
				}
			}
		}
		xl := res.Layout(prog.Array("x"))
		if xl.Optimized {
			fmt.Printf("x optimized: partition vector gv = %v\n", xl.D2C.Gv)
		} else {
			fmt.Printf("x left in its original layout (%s)\n", xl.Reason)
		}
		fmt.Printf("%.0f%% of references satisfied\n\n", res.PctRefsSatisfied())
	}
}

// columns builds the CRS column-index array: row r's 8 nonzeros.
func columns(kind string) []int64 {
	rng := rand.New(rand.NewSource(7))
	vals := make([]int64, 4096*8)
	offsets := []int64{-1056, -1024, -33, -1, 0, 1, 32, 1024}
	for r := int64(0); r < 4096; r++ {
		for nz := int64(0); nz < 8; nz++ {
			var c int64
			if kind == "banded" {
				c = r + offsets[nz]
			} else {
				c = int64(rng.Intn(4096))
			}
			if c < 0 {
				c = 0
			}
			if c > 4095 {
				c = 4095
			}
			vals[8*r+nz] = c
		}
	}
	return vals
}
