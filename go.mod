module offchip

go 1.22
