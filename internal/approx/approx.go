// Package approx implements Section 5.4 of the paper: profile-driven affine
// approximation of indexed (irregular) array references such as the x[col[k]]
// access of sparse matrix-vector multiplication.
//
// Given the profiled contents of the index arrays, the approximator samples
// the iteration space, fits one affine function per subscript dimension by
// least squares, and measures the normalized approximation error. References
// whose error exceeds the acceptance threshold are left unoptimized — over-
// or under-approximation is never a correctness issue, only a performance
// one, but a very bad fit (the paper cites >30%) would misplace data.
package approx

import (
	"math"

	"offchip/internal/ir"
	"offchip/internal/linalg"
)

// DefaultThreshold is the maximum acceptable normalized mean absolute error
// of a fitted subscript, as a fraction of the subscript dimension's extent.
const DefaultThreshold = 0.30

// DefaultMaxSamples bounds the number of profiled iterations per reference.
const DefaultMaxSamples = 4096

// Profiler fits affine access matrices to indexed references from profile
// data. It implements layout.Approximator.
type Profiler struct {
	// Store supplies the profiled index-array contents.
	Store *ir.DataStore
	// Threshold is the acceptance error bound (DefaultThreshold if zero).
	Threshold float64
	// MaxSamples bounds profiling work (DefaultMaxSamples if zero).
	MaxSamples int

	errs    map[*ir.Ref]float64
	sampled int // iterations profiled by the last Approximate call
}

// NewProfiler returns a Profiler over the given profiled index contents.
func NewProfiler(store *ir.DataStore) *Profiler {
	return &Profiler{Store: store, errs: map[*ir.Ref]float64{}}
}

// Err returns the measured normalized error of the last approximation of r
// (NaN if r was never approximated).
func (pr *Profiler) Err(r *ir.Ref) float64 {
	if e, ok := pr.errs[r]; ok {
		return e
	}
	return math.NaN()
}

// Approximate fits an affine access matrix to an indexed reference by
// sampling its profiled address stream. It returns (A, true) when every
// subscript dimension fits within the threshold, and (nil, false) otherwise.
// Purely affine references return their exact access matrix.
func (pr *Profiler) Approximate(r *ir.Ref, nest *ir.LoopNest) (*linalg.Mat, bool) {
	vars := nest.Vars()
	if !r.Indexed() {
		a, _ := r.AccessMatrix(vars)
		return a, true
	}
	thresh := pr.Threshold
	if thresh == 0 {
		thresh = DefaultThreshold
	}
	maxSamples := pr.MaxSamples
	if maxSamples == 0 {
		maxSamples = DefaultMaxSamples
	}

	// Sample the iteration space with a stride that caps the sample count.
	total := nest.TripCount()
	stride := int64(1)
	if total > int64(maxSamples) {
		// Ceiling division: a floor stride collects up to ~2× maxSamples
		// when total is just under a stride multiple.
		stride = (total + int64(maxSamples) - 1) / int64(maxSamples)
	}
	var iters [][]float64 // sampled iteration vectors (with 1 appended)
	var coords [][]int64  // touched element coordinates
	var k int64
	nest.Iterate(func(env map[string]int64) bool {
		if k%stride == 0 {
			row := make([]float64, len(vars)+1)
			for i, v := range vars {
				row[i] = float64(env[v])
			}
			row[len(vars)] = 1
			iters = append(iters, row)
			c := ir.EvalRef(r, env, pr.Store)
			ic := make([]int64, len(c))
			for i, x := range c {
				ic[i] = x
			}
			coords = append(coords, ic)
		}
		k++
		return true
	})
	pr.sampled = len(iters)
	if len(iters) == 0 {
		return nil, false
	}

	n := len(r.Subs)
	m := len(vars)
	a := linalg.NewMat(n, m)
	worst := 0.0
	for dim := 0; dim < n; dim++ {
		if _, indexed := r.IndexSubs[dim]; !indexed {
			// Exact affine subscript: copy its coefficients.
			for j, v := range vars {
				a.Set(dim, j, r.Subs[dim].Coeff(v))
			}
			continue
		}
		y := make([]float64, len(coords))
		for i, c := range coords {
			y[i] = float64(c[dim])
		}
		coef, ok := leastSquares(iters, y)
		if !ok {
			pr.errs[r] = math.Inf(1)
			return nil, false
		}
		// Measure the fit error as mean |ŷ−y| normalized by the mean
		// absolute deviation of y itself: 0 for a perfect affine pattern,
		// ≈1 when the fit explains nothing (uniform scatter) — so the
		// threshold rejects references whose dense pattern is not affine,
		// not merely noisy.
		var mean float64
		for _, v := range y {
			mean += v
		}
		mean /= float64(len(y))
		var sumAbs, spread float64
		for i, row := range iters {
			pred := 0.0
			for j, c := range coef {
				pred += c * row[j]
			}
			sumAbs += math.Abs(pred - y[i])
			spread += math.Abs(y[i] - mean)
		}
		mae := sumAbs / float64(len(iters))
		mad := spread / float64(len(iters))
		var errNorm float64
		switch {
		case mae == 0:
			errNorm = 0
		case mad < 1e-9:
			errNorm = 1
		default:
			errNorm = mae / mad
		}
		if errNorm > worst {
			worst = errNorm
		}
		if errNorm > thresh {
			pr.errs[r] = errNorm
			return nil, false
		}
		for j := 0; j < m; j++ {
			a.Set(dim, j, int64(math.Round(coef[j])))
		}
	}
	pr.errs[r] = worst
	return a, true
}

// leastSquares solves min ‖X·c − y‖₂ by normal equations with partial
// pivoting; ok is false for a singular system.
func leastSquares(x [][]float64, y []float64) (coef []float64, ok bool) {
	cols := len(x[0])
	// Build XᵀX and Xᵀy.
	xtx := make([][]float64, cols)
	xty := make([]float64, cols)
	for i := range xtx {
		xtx[i] = make([]float64, cols)
	}
	for r, row := range x {
		for i := 0; i < cols; i++ {
			xty[i] += row[i] * y[r]
			for j := 0; j < cols; j++ {
				xtx[i][j] += row[i] * row[j]
			}
		}
	}
	// Gaussian elimination with partial pivoting.
	for col := 0; col < cols; col++ {
		piv := col
		for r := col + 1; r < cols; r++ {
			if math.Abs(xtx[r][col]) > math.Abs(xtx[piv][col]) {
				piv = r
			}
		}
		if math.Abs(xtx[piv][col]) < 1e-9 {
			// Rank-deficient (e.g. a loop variable with a single sampled
			// value): treat the column as unused rather than failing.
			xtx[col][col] = 1
			xty[col] = 0
			continue
		}
		xtx[col], xtx[piv] = xtx[piv], xtx[col]
		xty[col], xty[piv] = xty[piv], xty[col]
		for r := 0; r < cols; r++ {
			if r == col {
				continue
			}
			f := xtx[r][col] / xtx[col][col]
			for c := col; c < cols; c++ {
				xtx[r][c] -= f * xtx[col][c]
			}
			xty[r] -= f * xty[col]
		}
	}
	coef = make([]float64, cols)
	for i := 0; i < cols; i++ {
		coef[i] = xty[i] / xtx[i][i]
		if math.IsNaN(coef[i]) || math.IsInf(coef[i], 0) {
			return nil, false
		}
	}
	return coef, true
}
