package approx

import (
	"math"
	"math/rand"
	"testing"

	"offchip/internal/ir"
)

// bandedSpMV builds an SpMV-like program whose col index array follows a
// near-affine banded pattern: row i's nonzeros sit around column i.
func bandedSpMV(jitter int, rng *rand.Rand) (*ir.Program, *ir.DataStore) {
	p := ir.MustParse(`
program spmv
param N = 64
param NNZ = 4
array x[64]
array col[256] elem 4
array y[64]

parfor i = 0 .. N {
  for k = 0 .. NNZ {
    y[i] = y[i] + x[col[4*i+k]]
  }
}
`)
	col := p.Array("col")
	vals := make([]int64, col.NumElems())
	for i := int64(0); i < 64; i++ {
		for k := int64(0); k < 4; k++ {
			c := i + k - 2
			if jitter > 0 {
				c += int64(rng.Intn(2*jitter+1) - jitter)
			}
			if c < 0 {
				c = 0
			}
			if c > 63 {
				c = 63
			}
			vals[4*i+k] = c
		}
	}
	store := ir.NewDataStore()
	store.SetContents(col, vals)
	return p, store
}

func indexedRef(t *testing.T, p *ir.Program) (*ir.Ref, *ir.LoopNest) {
	t.Helper()
	for _, n := range p.Nests {
		for _, s := range n.Body {
			for _, r := range s.Refs() {
				if r.Indexed() {
					return r, n
				}
			}
		}
	}
	t.Fatal("no indexed reference")
	return nil, nil
}

func TestApproximateBandedAccepted(t *testing.T) {
	p, store := bandedSpMV(0, nil)
	pr := NewProfiler(store)
	r, nest := indexedRef(t, p)
	a, ok := pr.Approximate(r, nest)
	if !ok {
		t.Fatalf("banded pattern rejected (err %.3f)", pr.Err(r))
	}
	// col[4i+k] = i + k - 2: the fitted row for x's single dimension should
	// have coefficient ~1 on i and ~1 on k.
	if got := a.At(0, 0); got != 1 {
		t.Errorf("coefficient on i = %d, want 1", got)
	}
	if got := a.At(0, 1); got != 1 {
		t.Errorf("coefficient on k = %d, want 1", got)
	}
	if e := pr.Err(r); e > 0.01 {
		t.Errorf("error for exact affine pattern = %v", e)
	}
}

func TestApproximateJitterStillAccepted(t *testing.T) {
	p, store := bandedSpMV(3, rand.New(rand.NewSource(7)))
	pr := NewProfiler(store)
	r, nest := indexedRef(t, p)
	if _, ok := pr.Approximate(r, nest); !ok {
		t.Fatalf("small-jitter band rejected (err %.3f)", pr.Err(r))
	}
	if e := pr.Err(r); e <= 0 || e > DefaultThreshold {
		t.Errorf("error = %v, want within (0, %v]", e, DefaultThreshold)
	}
}

func TestApproximateRandomRejected(t *testing.T) {
	p, store := bandedSpMV(0, nil)
	// Overwrite the profile with a uniformly random scatter.
	col := p.Array("col")
	rng := rand.New(rand.NewSource(11))
	vals := make([]int64, col.NumElems())
	for i := range vals {
		vals[i] = int64(rng.Intn(64))
	}
	store.SetContents(col, vals)
	pr := NewProfiler(store)
	r, nest := indexedRef(t, p)
	if _, ok := pr.Approximate(r, nest); ok {
		t.Fatalf("random scatter accepted (err %.3f)", pr.Err(r))
	}
	if e := pr.Err(r); e <= DefaultThreshold {
		t.Errorf("rejection error = %v, want > %v", e, DefaultThreshold)
	}
}

func TestApproximateAffinePassThrough(t *testing.T) {
	p := ir.MustParse(`
program aff
array A[8][8]
parfor i = 0 .. 8 {
  for j = 0 .. 8 {
    A[i][j] = A[i][j]
  }
}
`)
	pr := NewProfiler(ir.NewDataStore())
	r := p.Nests[0].Body[0].Write
	a, ok := pr.Approximate(r, p.Nests[0])
	if !ok {
		t.Fatal("exact affine reference rejected")
	}
	want, _ := r.AccessMatrix(p.Nests[0].Vars())
	if !a.Equal(want) {
		t.Errorf("pass-through matrix mismatch:\n%v\nwant\n%v", a, want)
	}
}

func TestErrUnknownRef(t *testing.T) {
	pr := NewProfiler(ir.NewDataStore())
	r := &ir.Ref{}
	if !math.IsNaN(pr.Err(r)) {
		t.Error("unknown ref error not NaN")
	}
}

func TestCustomThresholdAndSampling(t *testing.T) {
	p, store := bandedSpMV(3, rand.New(rand.NewSource(3)))
	pr := NewProfiler(store)
	pr.Threshold = 1e-9 // reject everything imperfect
	pr.MaxSamples = 64
	r, nest := indexedRef(t, p)
	if _, ok := pr.Approximate(r, nest); ok {
		t.Error("jittered pattern accepted under zero threshold")
	}
}

func TestSampleStrideBoundary(t *testing.T) {
	// TripCount = 2·MaxSamples − 1: a floor-division stride degenerates to 1
	// and profiles all 127 iterations; ceiling division stays within the cap.
	p := ir.MustParse(`
program b
param N = 127
array x[128]
array col[127] elem 4
array y[127]

parfor i = 0 .. N {
  y[i] = y[i] + x[col[i]]
}
`)
	col := p.Array("col")
	vals := make([]int64, col.NumElems())
	for i := range vals {
		vals[i] = int64(i)
	}
	store := ir.NewDataStore()
	store.SetContents(col, vals)
	pr := NewProfiler(store)
	pr.MaxSamples = 64
	r, nest := indexedRef(t, p)
	if _, ok := pr.Approximate(r, nest); !ok {
		t.Fatalf("exact affine index pattern rejected (err %.3f)", pr.Err(r))
	}
	if pr.sampled > pr.MaxSamples {
		t.Errorf("profiled %d iterations, cap %d", pr.sampled, pr.MaxSamples)
	}
	if pr.sampled < pr.MaxSamples/2 {
		t.Errorf("profiled only %d iterations for cap %d", pr.sampled, pr.MaxSamples)
	}
}

func TestLeastSquares(t *testing.T) {
	// y = 2a + 3b + 5, exactly.
	var x [][]float64
	var y []float64
	for a := 0.0; a < 5; a++ {
		for b := 0.0; b < 5; b++ {
			x = append(x, []float64{a, b, 1})
			y = append(y, 2*a+3*b+5)
		}
	}
	coef, ok := leastSquares(x, y)
	if !ok {
		t.Fatal("singular")
	}
	for i, want := range []float64{2, 3, 5} {
		if math.Abs(coef[i]-want) > 1e-9 {
			t.Errorf("coef[%d] = %v, want %v", i, coef[i], want)
		}
	}
}

func TestLeastSquaresRankDeficient(t *testing.T) {
	// Column 0 is constant zero: solvable by treating it as unused.
	x := [][]float64{{0, 1, 1}, {0, 2, 1}, {0, 3, 1}}
	y := []float64{3, 5, 7}
	coef, ok := leastSquares(x, y)
	if !ok {
		t.Fatal("rank-deficient system rejected")
	}
	if math.Abs(coef[1]-2) > 1e-9 || math.Abs(coef[2]-1) > 1e-9 {
		t.Errorf("coef = %v", coef)
	}
}
