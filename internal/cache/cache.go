// Package cache provides the set-associative LRU caches of the simulated
// manycore (per-node L1s, private or shared-SNUCA L2 banks) and the
// centralized L2 tag directory that private-L2 systems cache at the memory
// controllers (Figure 2a). Caches optionally publish hit/miss/eviction
// counters and trace events through the observability layer (Instrument).
package cache

import (
	"fmt"

	"offchip/internal/engine"
	"offchip/internal/mesh"
	"offchip/internal/obs"
)

// Cache is a set-associative cache with LRU replacement. It tracks only
// tags (the simulator never stores data), which is all latency modeling
// needs.
type Cache struct {
	sets      int
	ways      int
	lineBytes int64

	tags    [][]int64
	valid   [][]bool
	lastUse [][]int64
	tick    int64

	Hits, Misses int64

	// Observability (set by Instrument; handle methods are nil-safe, so an
	// uninstrumented cache pays only nil checks).
	comp      string
	tracer    *obs.Tracer
	clock     engine.Clock
	hitC      *obs.Counter
	missC     *obs.Counter
	evictC    *obs.Counter
	Evictions int64
}

// Instrument attaches the cache to an observer under the component name
// (e.g. "l1.3"): hit/miss/eviction counters in the registry plus, when a
// tracer is present, per-access trace events stamped from the clock.
// Taking engine.Clock (not a func) keeps the attachment allocation-free:
// a *Sim converts to the interface directly, with no closure.
func (c *Cache) Instrument(o *obs.Observer, comp string, clock engine.Clock) {
	if o == nil {
		return
	}
	c.comp = comp
	c.tracer = o.Tracer
	c.clock = clock
	label := "comp=" + comp
	c.hitC = o.Reg.Counter("cache", "hits", label)
	c.missC = o.Reg.Counter("cache", "misses", label)
	c.evictC = o.Reg.Counter("cache", "evictions", label)
}

// New builds a cache of the given total capacity. Capacity must be a
// multiple of lineBytes×ways so the set count is a whole number (and a
// power of two is not required).
func New(capacityBytes, lineBytes int64, ways int) *Cache {
	if capacityBytes <= 0 || lineBytes <= 0 || ways <= 0 {
		panic(fmt.Sprintf("cache: bad geometry %dB/%dB/%d-way", capacityBytes, lineBytes, ways))
	}
	lines := capacityBytes / lineBytes
	sets := int(lines) / ways
	if sets == 0 {
		sets = 1
	}
	c := &Cache{sets: sets, ways: ways, lineBytes: lineBytes}
	c.tags = make([][]int64, sets)
	c.valid = make([][]bool, sets)
	c.lastUse = make([][]int64, sets)
	// One backing array per field: a cache is allocated per core per run,
	// and per-set slices would cost sets×3 allocations each time.
	tags := make([]int64, sets*ways)
	valid := make([]bool, sets*ways)
	lastUse := make([]int64, sets*ways)
	for s := 0; s < sets; s++ {
		lo, hi := s*ways, (s+1)*ways
		c.tags[s] = tags[lo:hi:hi]
		c.valid[s] = valid[lo:hi:hi]
		c.lastUse[s] = lastUse[lo:hi:hi]
	}
	return c
}

// LineBytes returns the cache's line size.
func (c *Cache) LineBytes() int64 { return c.lineBytes }

// LineAddr returns the line-aligned address containing addr.
func (c *Cache) LineAddr(addr int64) int64 { return addr - addr%c.lineBytes }

func (c *Cache) setOf(line int64) int {
	// XOR-folded set index, as in real L2 designs: strided access patterns
	// (including the cluster-interleaved layouts this simulator exists to
	// study) would otherwise alias a fraction of the sets and manufacture
	// conflict misses the paper's hardware does not see.
	x := line / c.lineBytes
	return int((x ^ (x >> 5) ^ (x >> 11)) % int64(c.sets))
}

// Access looks up the line containing addr, filling it on a miss. It
// returns whether the access hit, and the address of the line evicted to
// make room (-1 when nothing valid was evicted).
func (c *Cache) Access(addr int64) (hit bool, evicted int64) {
	line := c.LineAddr(addr)
	s := c.setOf(line)
	c.tick++
	victim := 0
	for w := 0; w < c.ways; w++ {
		if c.valid[s][w] && c.tags[s][w] == line {
			c.lastUse[s][w] = c.tick
			c.Hits++
			c.hitC.Inc()
			if c.tracer.Enabled() {
				c.tracer.Emit(c.clock.Now(), "cache", "hit", c.comp, 0)
			}
			return true, -1
		}
		if !c.valid[s][w] {
			victim = w
		} else if c.valid[s][victim] && c.lastUse[s][w] < c.lastUse[s][victim] {
			victim = w
		}
	}
	c.Misses++
	c.missC.Inc()
	evicted = -1
	if c.valid[s][victim] {
		evicted = c.tags[s][victim]
		c.Evictions++
		c.evictC.Inc()
	}
	c.tags[s][victim] = line
	c.valid[s][victim] = true
	c.lastUse[s][victim] = c.tick
	if c.tracer.Enabled() {
		c.tracer.Emit(c.clock.Now(), "cache", "miss", c.comp, 0)
		if evicted >= 0 {
			c.tracer.Emit(c.clock.Now(), "cache", "evict", c.comp, 0)
		}
	}
	return false, evicted
}

// Contains reports whether the line containing addr is present, without
// disturbing LRU state or statistics.
func (c *Cache) Contains(addr int64) bool {
	line := c.LineAddr(addr)
	s := c.setOf(line)
	for w := 0; w < c.ways; w++ {
		if c.valid[s][w] && c.tags[s][w] == line {
			return true
		}
	}
	return false
}

// ResetStats zeroes the hit/miss/eviction counters while leaving the tag
// and LRU state intact, so statistics after a functional warm-up pass
// reflect only the timed accesses that follow.
func (c *Cache) ResetStats() {
	c.Hits, c.Misses, c.Evictions = 0, 0, 0
}

// Snapshot captures the cache's tag, validity, and LRU state (not the
// statistics counters) as a deep copy, so an identical warm state can be
// restored into many runs without replaying the accesses that built it.
type Snapshot struct {
	tags    []int64
	valid   []bool
	lastUse []int64
	tick    int64
}

// Snapshot captures the current tag/LRU state.
func (c *Cache) Snapshot() *Snapshot {
	n := c.sets * c.ways
	s := &Snapshot{
		tags:    make([]int64, 0, n),
		valid:   make([]bool, 0, n),
		lastUse: make([]int64, 0, n),
		tick:    c.tick,
	}
	for set := 0; set < c.sets; set++ {
		s.tags = append(s.tags, c.tags[set]...)
		s.valid = append(s.valid, c.valid[set]...)
		s.lastUse = append(s.lastUse, c.lastUse[set]...)
	}
	return s
}

// Restore overwrites the tag/LRU state with the snapshot's. The cache must
// have the geometry the snapshot was taken from.
func (c *Cache) Restore(s *Snapshot) {
	if len(s.tags) != c.sets*c.ways {
		panic(fmt.Sprintf("cache: restoring %d-line snapshot into %d-line cache",
			len(s.tags), c.sets*c.ways))
	}
	for set := 0; set < c.sets; set++ {
		copy(c.tags[set], s.tags[set*c.ways:])
		copy(c.valid[set], s.valid[set*c.ways:])
		copy(c.lastUse[set], s.lastUse[set*c.ways:])
	}
	c.tick = s.tick
}

// Invalidate drops the line containing addr if present.
func (c *Cache) Invalidate(addr int64) {
	line := c.LineAddr(addr)
	s := c.setOf(line)
	for w := 0; w < c.ways; w++ {
		if c.valid[s][w] && c.tags[s][w] == line {
			c.valid[s][w] = false
			return
		}
	}
}

// MissRate returns misses / accesses (0 when never accessed).
func (c *Cache) MissRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Misses) / float64(total)
}

// MaxDirectoryCores bounds the sharer bitmask width of the directory.
const MaxDirectoryCores = 64

// Directory is the centralized L2 tag directory of the private-L2 system,
// logically partitioned across memory controllers: it records which
// private L2s hold each line so a miss can be served by an on-chip
// cache-to-cache transfer instead of going off-chip.
type Directory struct {
	sharers map[int64]uint64
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{sharers: map[int64]uint64{}}
}

// Owner returns the core whose L2 holds the line that is nearest to the
// requester by mesh hop distance (on a width-meshX mesh, row-major core
// IDs), or -1 when no other L2 holds it. The requester itself is excluded —
// its own L2 already missed. Ties break toward the lowest core ID, keeping
// the choice deterministic. Picking the nearest sharer models a
// distance-aware directory: always forwarding from the lowest-numbered
// sharer would bias every cache-to-cache transfer toward core 0's corner
// and turn it into a hotspot for widely shared lines.
func (d *Directory) Owner(line int64, requester, meshX int) int {
	m := d.sharers[line]
	if m == 0 {
		return -1
	}
	reqNode := mesh.CoordOf(requester, meshX)
	best, bestD := -1, 1<<30
	for i := 0; i < MaxDirectoryCores; i++ {
		if m&(1<<uint(i)) == 0 || i == requester {
			continue
		}
		if dist := mesh.Dist(reqNode, mesh.CoordOf(i, meshX)); dist < bestD {
			best, bestD = i, dist
		}
	}
	return best
}

// Add records that core's L2 now holds the line.
func (d *Directory) Add(line int64, core int) {
	if core < 0 || core >= MaxDirectoryCores {
		panic(fmt.Sprintf("cache: directory core %d out of range", core))
	}
	d.sharers[line] |= 1 << uint(core)
}

// Remove records that core's L2 evicted the line.
func (d *Directory) Remove(line int64, core int) {
	if core < 0 || core >= MaxDirectoryCores {
		return
	}
	m := d.sharers[line] &^ (1 << uint(core))
	if m == 0 {
		delete(d.sharers, line)
	} else {
		d.sharers[line] = m
	}
}

// Snapshot returns a copy of the directory's sharer map.
func (d *Directory) Snapshot() map[int64]uint64 {
	s := make(map[int64]uint64, len(d.sharers))
	for k, v := range d.sharers {
		s[k] = v
	}
	return s
}

// Restore overwrites the directory's sharer map with a copy of s.
func (d *Directory) Restore(s map[int64]uint64) {
	d.sharers = make(map[int64]uint64, len(s))
	for k, v := range s {
		d.sharers[k] = v
	}
}

// Entries returns the number of tracked lines (for tests).
func (d *Directory) Entries() int { return len(d.sharers) }

// Sharers returns the bitmask of cores whose L2s hold the line.
func (d *Directory) Sharers(line int64) uint64 { return d.sharers[line] }
