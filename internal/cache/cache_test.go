package cache

import "testing"

func TestHitAfterFill(t *testing.T) {
	c := New(1024, 64, 2)
	if hit, _ := c.Access(0); hit {
		t.Error("cold access hit")
	}
	if hit, _ := c.Access(32); !hit {
		t.Error("same-line access missed")
	}
	if hit, _ := c.Access(64); hit {
		t.Error("next-line access hit")
	}
	if c.Hits != 1 || c.Misses != 2 {
		t.Errorf("hits=%d misses=%d", c.Hits, c.Misses)
	}
	if c.MissRate() != 2.0/3.0 {
		t.Errorf("miss rate = %v", c.MissRate())
	}
}

func TestLRUEviction(t *testing.T) {
	// 2 ways × 2 sets × 64B lines = 256B. Lines 0, 128, 256 share set 0.
	c := New(256, 64, 2)
	c.Access(0)
	c.Access(128)
	c.Access(0) // touch 0: now 128 is LRU
	hit, evicted := c.Access(256)
	if hit {
		t.Error("conflicting access hit")
	}
	if evicted != 128 {
		t.Errorf("evicted %d, want 128 (LRU)", evicted)
	}
	if !c.Contains(0) || c.Contains(128) || !c.Contains(256) {
		t.Error("post-eviction contents wrong")
	}
}

func TestContainsDoesNotPerturb(t *testing.T) {
	c := New(256, 64, 2)
	c.Access(0)
	hits, misses := c.Hits, c.Misses
	if c.Contains(4096) {
		t.Error("phantom line")
	}
	if c.Hits != hits || c.Misses != misses {
		t.Error("Contains changed stats")
	}
}

func TestInvalidate(t *testing.T) {
	c := New(256, 64, 2)
	c.Access(0)
	c.Invalidate(32) // same line as 0
	if c.Contains(0) {
		t.Error("line survived invalidation")
	}
	c.Invalidate(512) // absent: no-op
}

func TestLineAddr(t *testing.T) {
	c := New(1024, 64, 2)
	if got := c.LineAddr(130); got != 128 {
		t.Errorf("LineAddr(130) = %d", got)
	}
	if c.LineBytes() != 64 {
		t.Errorf("LineBytes = %d", c.LineBytes())
	}
}

func TestEvictedSentinel(t *testing.T) {
	c := New(256, 64, 2)
	if _, ev := c.Access(0); ev != -1 {
		t.Errorf("cold fill evicted %d", ev)
	}
}

func TestDirectory(t *testing.T) {
	d := NewDirectory()
	if d.Owner(100) != -1 {
		t.Error("empty directory has owner")
	}
	d.Add(100, 5)
	d.Add(100, 3)
	if d.Owner(100) != 3 {
		t.Errorf("owner = %d, want lowest sharer 3", d.Owner(100))
	}
	d.Remove(100, 3)
	if d.Owner(100) != 5 {
		t.Errorf("owner after remove = %d", d.Owner(100))
	}
	d.Remove(100, 5)
	if d.Owner(100) != -1 || d.Entries() != 0 {
		t.Error("entry not cleaned up")
	}
	d.Remove(200, 1) // absent: no-op
	d.Remove(100, -1)
}

func TestDirectoryPanicsOutOfRange(t *testing.T) {
	d := NewDirectory()
	defer func() {
		if recover() == nil {
			t.Error("out-of-range core accepted")
		}
	}()
	d.Add(0, MaxDirectoryCores)
}

func TestGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad geometry accepted")
		}
	}()
	New(0, 64, 2)
}
