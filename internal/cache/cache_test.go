package cache

import "testing"

func TestHitAfterFill(t *testing.T) {
	c := New(1024, 64, 2)
	if hit, _ := c.Access(0); hit {
		t.Error("cold access hit")
	}
	if hit, _ := c.Access(32); !hit {
		t.Error("same-line access missed")
	}
	if hit, _ := c.Access(64); hit {
		t.Error("next-line access hit")
	}
	if c.Hits != 1 || c.Misses != 2 {
		t.Errorf("hits=%d misses=%d", c.Hits, c.Misses)
	}
	if c.MissRate() != 2.0/3.0 {
		t.Errorf("miss rate = %v", c.MissRate())
	}
}

func TestLRUEviction(t *testing.T) {
	// 2 ways × 2 sets × 64B lines = 256B. Lines 0, 128, 256 share set 0.
	c := New(256, 64, 2)
	c.Access(0)
	c.Access(128)
	c.Access(0) // touch 0: now 128 is LRU
	hit, evicted := c.Access(256)
	if hit {
		t.Error("conflicting access hit")
	}
	if evicted != 128 {
		t.Errorf("evicted %d, want 128 (LRU)", evicted)
	}
	if !c.Contains(0) || c.Contains(128) || !c.Contains(256) {
		t.Error("post-eviction contents wrong")
	}
}

func TestContainsDoesNotPerturb(t *testing.T) {
	c := New(256, 64, 2)
	c.Access(0)
	hits, misses := c.Hits, c.Misses
	if c.Contains(4096) {
		t.Error("phantom line")
	}
	if c.Hits != hits || c.Misses != misses {
		t.Error("Contains changed stats")
	}
}

func TestInvalidate(t *testing.T) {
	c := New(256, 64, 2)
	c.Access(0)
	c.Invalidate(32) // same line as 0
	if c.Contains(0) {
		t.Error("line survived invalidation")
	}
	c.Invalidate(512) // absent: no-op
}

func TestLineAddr(t *testing.T) {
	c := New(1024, 64, 2)
	if got := c.LineAddr(130); got != 128 {
		t.Errorf("LineAddr(130) = %d", got)
	}
	if c.LineBytes() != 64 {
		t.Errorf("LineBytes = %d", c.LineBytes())
	}
}

func TestEvictedSentinel(t *testing.T) {
	c := New(256, 64, 2)
	if _, ev := c.Access(0); ev != -1 {
		t.Errorf("cold fill evicted %d", ev)
	}
}

func TestDirectory(t *testing.T) {
	// Requester 0 on an 8-wide mesh: cores 3 and 5 sit 3 and 5 hops away.
	d := NewDirectory()
	if d.Owner(100, 0, 8) != -1 {
		t.Error("empty directory has owner")
	}
	d.Add(100, 5)
	d.Add(100, 3)
	if got := d.Owner(100, 0, 8); got != 3 {
		t.Errorf("owner = %d, want nearest sharer 3", got)
	}
	d.Remove(100, 3)
	if got := d.Owner(100, 0, 8); got != 5 {
		t.Errorf("owner after remove = %d", got)
	}
	d.Remove(100, 5)
	if d.Owner(100, 0, 8) != -1 || d.Entries() != 0 {
		t.Error("entry not cleaned up")
	}
	d.Remove(200, 1) // absent: no-op
	d.Remove(100, -1)
}

// TestDirectoryOwnerNearest is the regression test for the satellite fix:
// Owner must pick the sharer nearest the requester by mesh hop distance,
// not the lowest-numbered one, exclude the requester itself, and break
// distance ties toward the lower core ID.
func TestDirectoryOwnerNearest(t *testing.T) {
	const meshX = 8 // 8×8 mesh, row-major core IDs
	d := NewDirectory()
	d.Add(100, 0)  // node (0,0)
	d.Add(100, 63) // node (7,7)
	// Requester 62 = (6,7): core 63 is 1 hop away, core 0 is 13 hops.
	if got := d.Owner(100, 62, meshX); got != 63 {
		t.Errorf("owner for requester 62 = %d, want nearest sharer 63 (not lowest-numbered 0)", got)
	}
	// Requester 1 = (1,0): core 0 is the near one again.
	if got := d.Owner(100, 1, meshX); got != 0 {
		t.Errorf("owner for requester 1 = %d, want 0", got)
	}
	// The requester is never its own owner, even as the only sharer.
	d2 := NewDirectory()
	d2.Add(200, 5)
	if got := d2.Owner(200, 5, meshX); got != -1 {
		t.Errorf("requester offered itself as owner: %d", got)
	}
	// Distance ties break toward the lower core ID: requester 9 = (1,1) is
	// 1 hop from both 8 = (0,1) and 10 = (2,1).
	d3 := NewDirectory()
	d3.Add(300, 10)
	d3.Add(300, 8)
	if got := d3.Owner(300, 9, meshX); got != 8 {
		t.Errorf("tie broke to %d, want lower core ID 8", got)
	}
}

func TestDirectoryPanicsOutOfRange(t *testing.T) {
	d := NewDirectory()
	defer func() {
		if recover() == nil {
			t.Error("out-of-range core accepted")
		}
	}()
	d.Add(0, MaxDirectoryCores)
}

func TestGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad geometry accepted")
		}
	}()
	New(0, 64, 2)
}
