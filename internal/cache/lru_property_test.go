package cache

import (
	"fmt"
	"math/rand"
	"testing"
)

// refLRU is a deliberately naive reference model of one set-associative LRU
// cache: a map per set from line tag to last-use tick, evicting the minimum
// tick when a full set misses. It shares nothing with the array-based
// implementation except the set-index function, so any disagreement — hit
// status, which line is evicted, whether an eviction is reported at all —
// is a property violation in one of them.
type refLRU struct {
	ways int
	sets []map[int64]int64 // set → line → last-use tick
	tick int64
}

func newRefLRU(sets, ways int) *refLRU {
	r := &refLRU{ways: ways, sets: make([]map[int64]int64, sets)}
	for i := range r.sets {
		r.sets[i] = map[int64]int64{}
	}
	return r
}

// access mirrors Cache.Access: returns (hit, evicted line or -1).
func (r *refLRU) access(set int, line int64) (bool, int64) {
	r.tick++
	m := r.sets[set]
	if _, ok := m[line]; ok {
		m[line] = r.tick
		return true, -1
	}
	evicted := int64(-1)
	if len(m) == r.ways {
		// Evict the least recently used line. Ticks are unique, so the
		// minimum is unambiguous.
		var lru int64
		min := int64(1<<62 - 1)
		for tag, t := range m {
			if t < min {
				min, lru = t, tag
			}
		}
		evicted = lru
		delete(m, lru)
	}
	m[line] = r.tick
	return false, evicted
}

func (r *refLRU) invalidate(set int, line int64) { delete(r.sets[set], line) }

func (r *refLRU) contains(set int, line int64) bool {
	_, ok := r.sets[set][line]
	return ok
}

// TestLRUPropertyVsReference exercises randomized geometries and access
// strings (with interleaved invalidations) against the reference model,
// checking per access: hit/miss agreement, exact LRU victim identity,
// eviction reported only when the set is full (a cache that evicts a valid
// line while an invalidated hole exists fails here), and Contains
// agreement over the whole address pool.
func TestLRUPropertyVsReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	geometries := []struct {
		capacity, lineBytes int64
		ways                int
	}{
		{256, 64, 1},   // direct-mapped, 4 sets
		{256, 64, 2},   // 2 sets × 2 ways
		{256, 64, 4},   // fully associative single set
		{512, 32, 4},   // 4 sets × 4 ways
		{1024, 64, 8},  // 2 sets × 8 ways
		{2048, 64, 2},  // 16 sets × 2 ways
		{96, 32, 3},    // non-power-of-two: 1 set × 3 ways
		{3072, 64, 16}, // 3 sets × 16 ways
	}
	for _, g := range geometries {
		g := g
		t.Run(fmt.Sprintf("%dB_%dB-line_%d-way", g.capacity, g.lineBytes, g.ways), func(t *testing.T) {
			c := New(g.capacity, g.lineBytes, g.ways)
			ref := newRefLRU(c.sets, c.ways)
			// A pool a few times larger than the cache, so sets overflow and
			// evictions are common, but reuse still produces hits.
			poolLines := 4 * g.capacity / g.lineBytes
			wantHits, wantMisses, wantEvictions := int64(0), int64(0), int64(0)
			for i := 0; i < 4000; i++ {
				lineIdx := rng.Int63n(poolLines)
				// Sub-line offsets must not matter: address within the line.
				addr := lineIdx*g.lineBytes + rng.Int63n(g.lineBytes)
				line := c.LineAddr(addr)
				set := c.setOf(line)

				if rng.Intn(10) == 0 {
					c.Invalidate(addr)
					ref.invalidate(set, line)
					continue
				}

				hit, evicted := c.Access(addr)
				refHit, refEvicted := ref.access(set, line)
				if hit != refHit {
					t.Fatalf("access %d (line %#x): hit=%v, reference says %v", i, line, hit, refHit)
				}
				if evicted != refEvicted {
					t.Fatalf("access %d (line %#x): evicted %#x, reference says %#x",
						i, line, evicted, refEvicted)
				}
				if hit {
					wantHits++
				} else {
					wantMisses++
				}
				if evicted >= 0 {
					wantEvictions++
				}
			}
			if c.Hits != wantHits || c.Misses != wantMisses || c.Evictions != wantEvictions {
				t.Errorf("stats: hits=%d misses=%d evictions=%d, want %d/%d/%d",
					c.Hits, c.Misses, c.Evictions, wantHits, wantMisses, wantEvictions)
			}
			// Final-state sweep: both models agree on residency of every
			// line in the pool.
			for lineIdx := int64(0); lineIdx < poolLines; lineIdx++ {
				line := lineIdx * g.lineBytes
				if got, want := c.Contains(line), ref.contains(c.setOf(line), line); got != want {
					t.Errorf("Contains(%#x) = %v, reference says %v", line, got, want)
				}
			}
		})
	}
}

// TestLRUInvalidWayPreference pins the specific shape of the invalid-way
// rule deterministic tests rely on: a fill after an invalidation reuses the
// hole (no valid line is evicted), and the refilled line joins the LRU
// order at most-recent.
func TestLRUInvalidWayPreference(t *testing.T) {
	// Fully associative: 4 ways × 64B lines in one 256B set, so every line
	// lands in the same set.
	c := New(256, 64, 4)
	lines := []int64{0, 64, 128, 192}
	for _, l := range lines {
		c.Access(l)
	}
	c.Invalidate(lines[1])
	// The fill must take line[1]'s hole, evicting nothing, even though
	// lines[0] is the LRU valid line.
	if _, ev := c.Access(4 * 64); ev != -1 {
		t.Errorf("fill with an invalid way available evicted %#x", ev)
	}
	// All three survivors plus the new line are resident.
	for _, l := range []int64{lines[0], lines[2], lines[3], 4 * 64} {
		if !c.Contains(l) {
			t.Errorf("line %#x missing after hole refill", l)
		}
	}
	// Next eviction is the true LRU (lines[0]), proving the refilled line
	// entered at most-recent rather than inheriting the hole's age.
	if _, ev := c.Access(5 * 64); ev != lines[0] {
		t.Errorf("evicted %#x, want LRU %#x", ev, lines[0])
	}
}
