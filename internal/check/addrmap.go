package check

import (
	"fmt"

	"offchip/internal/layout"
	"offchip/internal/linalg"
	"offchip/internal/mem"
)

// interleaveUnit returns the granularity at which physical addresses stripe
// across controllers under the configuration.
func interleaveUnit(cfg mem.Config) int64 {
	if cfg.Interleave == layout.PageInterleave {
		return cfg.PageBytes
	}
	return cfg.LineBytes
}

// AddressMap verifies that MCOf and LocalAddr form a bijection between
// physical addresses and (controller, local address) pairs over the first
// `units` interleaving units: the reconstruction (local/unit)·stripe +
// mc·unit + local%unit must invert every sampled address exactly, which
// implies no two addresses collide in a controller's local space. Three
// offsets per unit (first, middle, last byte) catch every off-by-one the
// div/mod arithmetic can produce.
func AddressMap(cfg mem.Config, units int64) []Violation {
	var vs []Violation
	badf := func(format string, args ...any) {
		vs = append(vs, Violation{Probe: "addr-map", Msg: fmt.Sprintf(format, args...)})
	}
	if cfg.NumMCs <= 0 || cfg.LineBytes <= 0 || cfg.PageBytes <= 0 {
		badf("config not checkable: %+v", cfg)
		return vs
	}
	unit := interleaveUnit(cfg)
	stripe := unit * int64(cfg.NumMCs)
	for u := int64(0); u < units; u++ {
		for _, off := range [3]int64{0, unit / 2, unit - 1} {
			paddr := u*unit + off
			mc := mem.MCOf(paddr, cfg)
			if mc < 0 || mc >= cfg.NumMCs {
				badf("paddr %#x maps to controller %d of %d", paddr, mc, cfg.NumMCs)
				continue
			}
			local := mem.LocalAddr(paddr, cfg)
			if local < 0 {
				badf("paddr %#x maps to negative local address %#x", paddr, local)
				continue
			}
			if back := (local/unit)*stripe + int64(mc)*unit + local%unit; back != paddr {
				badf("paddr %#x -> (mc%d, local %#x) inverts to %#x", paddr, mc, local, back)
			}
		}
		if len(vs) >= maxRecorded {
			break
		}
	}
	return vs
}

// layoutSampleCap bounds the number of element coordinates LayoutBijective
// walks per array; larger arrays are sampled at a uniform stride (still
// catching systematic collisions, which repeat with the layout's period).
const layoutSampleCap = 1 << 20

// LayoutBijective verifies that a layout's address remapping is injective
// over the array footprint and lands inside the allocation: distinct
// element coordinates must map to distinct, element-aligned byte offsets in
// [0, SizeBytes). This is the property that makes the rewritten references
// of Figure 9(c) a relayout rather than a lossy projection.
func LayoutBijective(al *layout.ArrayLayout) []Violation {
	var vs []Violation
	badf := func(format string, args ...any) {
		vs = append(vs, Violation{Probe: "layout", Msg: fmt.Sprintf(format, args...)})
	}
	arr := al.Array
	n := arr.NumElems()
	if n <= 0 {
		badf("array %s has no elements", arr.Name)
		return vs
	}
	step := int64(1)
	if n > layoutSampleCap {
		step = (n + layoutSampleCap - 1) / layoutSampleCap
	}
	size := al.SizeBytes()
	seen := make(map[int64]int64, n/step+1)
	coord := make(linalg.Vec, arr.NumDims())
	for lin := int64(0); lin < n; lin += step {
		// Decode the row-major linear index into a coordinate.
		rem := lin
		for d := arr.NumDims() - 1; d >= 0; d-- {
			coord[d] = rem % arr.Dims[d]
			rem /= arr.Dims[d]
		}
		off := al.Offset(coord)
		if off < 0 || off >= size {
			badf("array %s: element %v maps to offset %d outside [0,%d)", arr.Name, coord, off, size)
		} else if off%arr.ElemSize != 0 {
			badf("array %s: element %v maps to misaligned offset %d", arr.Name, coord, off)
		} else if prev, dup := seen[off]; dup {
			badf("array %s: elements at linear %d and %d collide at offset %d", arr.Name, prev, lin, off)
		} else {
			seen[off] = lin
		}
		if len(vs) >= maxRecorded {
			break
		}
	}
	return vs
}
