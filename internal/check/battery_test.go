package check_test

// The metamorphic validation battery: every bundled workload runs through
// both L2 organizations and all three schemes with the full invariant
// checker attached, and pairs of runs related by a known transformation
// (faster DRAM, ideal NoC, optimal scheme, reseeded jitter) are compared
// against the direction the transformation guarantees. `make validate`
// runs this package under -race.

import (
	"testing"

	"offchip/internal/check"
	"offchip/internal/core"
	"offchip/internal/ir"
	"offchip/internal/layout"
	"offchip/internal/mem"
	"offchip/internal/sim"
	"offchip/internal/trace"
	"offchip/internal/workloads"
)

// batteryOptions caps traces so the full sweep stays fast while still
// exercising every pipeline stage.
func batteryOptions() core.Options {
	return core.Options{MaxAccessesPerThread: 120}
}

// checkedRun executes one simulation with a fresh Checker attached and
// fails the test on any probe violation.
func checkedRun(t *testing.T, cfg sim.Config, w *sim.Workload, tag string) *sim.Result {
	t.Helper()
	ck := check.New()
	cfg.Check = ck
	r, err := sim.Run(cfg, w)
	if err != nil {
		t.Fatalf("%s: %v", tag, err)
	}
	for _, v := range ck.Violations() {
		t.Errorf("%s: %s", tag, v)
	}
	if n := ck.Count(); n > int64(len(ck.Violations())) {
		t.Errorf("%s: %d further violations past the recording cap", tag, n)
	}
	return r
}

// TestValidateAllWorkloads is the core of `make validate`: every bundled
// application, through private and shared L2s, under the baseline, the
// optimized layouts, and the Section 2 optimal scheme — all with every
// runtime probe live.
func TestValidateAllWorkloads(t *testing.T) {
	for _, app := range workloads.All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			t.Parallel()
			for _, l2 := range []layout.CacheKind{layout.PrivateL2, layout.SharedL2} {
				m := layout.Default8x8()
				m.L2 = l2
				cm, err := layout.MappingM1(m, layout.PlacementCorners(m.MeshX, m.MeshY))
				if err != nil {
					t.Fatal(err)
				}
				opt := batteryOptions()
				base, optim, _, err := core.Workloads(app, m, cm, opt)
				if err != nil {
					t.Fatal(err)
				}
				cfg := core.SimConfig(m, cm, opt)
				checkedRun(t, cfg, base, app.Name+"/base")
				checkedRun(t, cfg, optim, app.Name+"/optim")
				optCfg := cfg
				optCfg.OptimalOffchip = true
				checkedRun(t, optCfg, base, app.Name+"/optimal")
			}
		})
	}
}

// batterySetup builds one app's machine, workload, and config for the
// metamorphic pairs.
func batterySetup(t *testing.T, appName string, l2 layout.CacheKind) (sim.Config, *sim.Workload) {
	t.Helper()
	app, ok := workloads.ByName(appName)
	if !ok {
		t.Fatalf("workload %s missing", appName)
	}
	m := layout.Default8x8()
	m.L2 = l2
	cm, err := layout.MappingM1(m, layout.PlacementCorners(m.MeshX, m.MeshY))
	if err != nil {
		t.Fatal(err)
	}
	opt := batteryOptions()
	base, _, _, err := core.Workloads(app, m, cm, opt)
	if err != nil {
		t.Fatal(err)
	}
	return core.SimConfig(m, cm, opt), base
}

// metamorphicApps is the subset the pairwise relations sweep; the full-app
// sweep above already runs everything once.
var metamorphicApps = []string{"apsi", "swim", "fma3d"}

// TestMetamorphicFasterDRAM: halving every DRAM access time can never make
// a run slower — the schedule only tightens.
func TestMetamorphicFasterDRAM(t *testing.T) {
	for _, name := range metamorphicApps {
		for _, l2 := range []layout.CacheKind{layout.PrivateL2, layout.SharedL2} {
			cfg, w := batterySetup(t, name, l2)
			slow := checkedRun(t, cfg, w, name+"/dram-base")
			fast := cfg
			fast.DRAM.TRowHit /= 2
			fast.DRAM.TRowMiss /= 2
			fast.DRAM.TRowConflict /= 2
			quick := checkedRun(t, fast, w, name+"/dram-fast")
			if quick.ExecTime > slow.ExecTime {
				t.Errorf("%s/%v: halved DRAM timings slowed the run: %d > %d",
					name, l2, quick.ExecTime, slow.ExecTime)
			}
		}
	}
}

// TestMetamorphicIdealNoC: removing link contention can never make a run
// slower than the contended network.
func TestMetamorphicIdealNoC(t *testing.T) {
	for _, name := range metamorphicApps {
		for _, l2 := range []layout.CacheKind{layout.PrivateL2, layout.SharedL2} {
			cfg, w := batterySetup(t, name, l2)
			real := checkedRun(t, cfg, w, name+"/noc-real")
			ideal := cfg
			ideal.NoC.Contention = false
			fast := checkedRun(t, ideal, w, name+"/noc-ideal")
			if fast.ExecTime > real.ExecTime {
				t.Errorf("%s/%v: ideal NoC slower than contended: %d > %d",
					name, l2, fast.ExecTime, real.ExecTime)
			}
		}
	}
}

// TestMetamorphicOptimalScheme: the Section 2 optimal scheme (every
// off-chip access a local row hit) is a lower bound — it can never be
// slower than any real scheme on the same trace.
func TestMetamorphicOptimalScheme(t *testing.T) {
	for _, name := range metamorphicApps {
		for _, l2 := range []layout.CacheKind{layout.PrivateL2, layout.SharedL2} {
			cfg, w := batterySetup(t, name, l2)
			real := checkedRun(t, cfg, w, name+"/real")
			optCfg := cfg
			optCfg.OptimalOffchip = true
			ideal := checkedRun(t, optCfg, w, name+"/optimal")
			if ideal.ExecTime > real.ExecTime {
				t.Errorf("%s/%v: optimal scheme slower than real: %d > %d",
					name, l2, ideal.ExecTime, real.ExecTime)
			}
		}
	}
}

// TestMetamorphicSeedInvariance: the jitter seed perturbs timing only.
// Conservation totals — what was injected, completed, and how outcomes
// partition — are seed-independent, and every seed's run passes the
// full identity check.
func TestMetamorphicSeedInvariance(t *testing.T) {
	cfg, w := batterySetup(t, "apsi", layout.PrivateL2)
	var first *sim.Result
	for _, seed := range []uint64{0, 1, 12345} {
		c := cfg
		c.Seed = seed
		r := checkedRun(t, c, w, "apsi/seed")
		for _, v := range check.VerifyTotals(r.Totals(w, &c)) {
			t.Errorf("seed %d: %s", seed, v)
		}
		if first == nil {
			first = r
			continue
		}
		if r.Total != first.Total || r.Completed != first.Completed {
			t.Errorf("seed %d changed injection totals: %d/%d vs %d/%d",
				seed, r.Total, r.Completed, first.Total, first.Completed)
		}
	}
}

// TestLayoutBijectiveAllApps runs the layout pass on every application and
// verifies each produced array layout is a bijection over the array
// footprint — the property that makes the rewrite a relayout, not a lossy
// projection.
func TestLayoutBijectiveAllApps(t *testing.T) {
	m := layout.Default8x8()
	cm, err := layout.MappingM1(m, layout.PlacementCorners(m.MeshX, m.MeshY))
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range workloads.All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			t.Parallel()
			p, store, err := app.Load()
			if err != nil {
				t.Fatal(err)
			}
			_ = store
			res, err := layout.Optimize(p, m, cm, &layout.Options{})
			if err != nil {
				t.Fatal(err)
			}
			for arr, al := range res.Layouts {
				for _, v := range check.LayoutBijective(al) {
					t.Errorf("%s/%s: %s", app.Name, arr.Name, v)
				}
			}
		})
	}
}

// TestAddressMapBothInterleaves sweeps the physical address map under both
// hardware interleavings.
func TestAddressMapBothInterleaves(t *testing.T) {
	for _, gran := range []layout.Granularity{layout.LineInterleave, layout.PageInterleave} {
		cfg := mem.Config{
			PageBytes:  4096,
			LineBytes:  64,
			NumMCs:     4,
			Interleave: gran,
		}
		for _, v := range check.AddressMap(cfg, 4096) {
			t.Errorf("%v: %s", gran, v)
		}
	}
}

// migBatterySetup builds a page-interleaved machine and the app's
// identity-layout baseline trace for the migration relations. The layout
// optimizer is skipped deliberately: it refuses shared L2 under page
// interleaving (a compiler constraint), while the migration engine runs
// under the OS-default layout where no compiler pass is involved.
func migBatterySetup(t *testing.T, appName string, l2 layout.CacheKind) (sim.Config, *sim.Workload) {
	t.Helper()
	app, ok := workloads.ByName(appName)
	if !ok {
		t.Fatalf("workload %s missing", appName)
	}
	m := layout.Default8x8()
	m.L2 = l2
	m.Interleave = layout.PageInterleave
	cm, err := layout.MappingM1(m, layout.PlacementCorners(m.MeshX, m.MeshY))
	if err != nil {
		t.Fatal(err)
	}
	opt := batteryOptions()
	p, store, err := app.Load()
	if err != nil {
		t.Fatal(err)
	}
	identity := &layout.Result{Program: p, Layouts: map[*ir.Array]*layout.ArrayLayout{}}
	w, err := trace.Generate(p, identity, m, store, trace.Options{MaxAccessesPerThread: opt.MaxAccessesPerThread})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.SimConfig(m, cm, opt)
	cfg.Policy = sim.PolicyFirstTouchNearest
	return cfg, w
}

// TestMetamorphicCheaperMigrationCost: with the decision spec held fixed
// (same threshold, window, cooldown), the cost knobs are charged exactly
// and only per committed migration — the costly variant pays 8 copy flits
// through the NoC and a 128-cycle shootdown stall per sharer at every
// commit, the cheap variant a single flit and no stall. Decision-for-
// decision, cheaper cost can never slow the run; but the guarded engine's
// decisions are deliberately timing-sensitive (cost shifts the clock, the
// clock shifts window bucketing, and the two-window confirmation guard is
// knife-edged), so the two runs may commit *different* migration
// sequences. The exec-time relation is therefore asserted only when the
// committed counts agree; the per-commit cost accounting is asserted
// unconditionally, on every app and both L2 organizations. Every run
// carries the full invariant checker, so each live remap is also
// bijection-checked at commit time.
func TestMetamorphicCheaperMigrationCost(t *testing.T) {
	for _, name := range metamorphicApps {
		for _, l2 := range []layout.CacheKind{layout.PrivateL2, layout.SharedL2} {
			cfg, w := migBatterySetup(t, name, l2)
			costly := cfg
			costly.Migrate = &mem.MigrationSpec{HotThreshold: 2, WindowCycles: 1024, CooldownWindows: 1, CopyFlits: 8, ShootdownCycles: 128}
			slow := checkedRun(t, costly, w, name+"/mig-costly")
			cheap := cfg
			cheap.Migrate = &mem.MigrationSpec{HotThreshold: 2, WindowCycles: 1024, CooldownWindows: 1, CopyFlits: 1, ShootdownCycles: 0}
			quick := checkedRun(t, cheap, w, name+"/mig-cheap")
			if slow.Migrations == 0 || quick.Migrations == 0 {
				t.Errorf("%s/%v: no migrations fired (costly %d, cheap %d); the relation is vacuous",
					name, l2, slow.Migrations, quick.Migrations)
			}
			if want := slow.Migrations * 8; slow.MigCopyMsgs != want {
				t.Errorf("%s/%v: costly run charged %d copy messages, want %d (8 per commit)",
					name, l2, slow.MigCopyMsgs, want)
			}
			if slow.MigStallCycles < slow.Migrations*128 {
				t.Errorf("%s/%v: costly run charged %d stall cycles for %d commits, want >= 128 each",
					name, l2, slow.MigStallCycles, slow.Migrations)
			}
			if quick.MigCopyMsgs != quick.Migrations {
				t.Errorf("%s/%v: cheap run charged %d copy messages for %d commits, want 1 per commit",
					name, l2, quick.MigCopyMsgs, quick.Migrations)
			}
			if quick.MigStallCycles != 0 {
				t.Errorf("%s/%v: zero-shootdown spec charged %d stall cycles",
					name, l2, quick.MigStallCycles)
			}
			if quick.Migrations == slow.Migrations && quick.ExecTime > slow.ExecTime {
				t.Errorf("%s/%v: same decisions, cheaper cost slowed the run: %d > %d",
					name, l2, quick.ExecTime, slow.ExecTime)
			}
		}
	}
}

// TestMetamorphicLargerCooldown: lengthening the post-migration cooldown
// only removes trigger opportunities, so the committed migration count can
// never rise.
func TestMetamorphicLargerCooldown(t *testing.T) {
	for _, name := range metamorphicApps {
		for _, l2 := range []layout.CacheKind{layout.PrivateL2, layout.SharedL2} {
			cfg, w := migBatterySetup(t, name, l2)
			var prev int64 = -1
			for _, cool := range []int{0, 2, 8} {
				c := cfg
				c.Migrate = &mem.MigrationSpec{HotThreshold: 2, WindowCycles: 256, CooldownWindows: cool, CopyFlits: 4, ShootdownCycles: 16}
				r := checkedRun(t, c, w, name+"/mig-cooldown")
				for _, v := range check.VerifyTotals(r.Totals(w, &c)) {
					t.Errorf("%s/%v cooldown %d: %s", name, l2, cool, v)
				}
				if prev >= 0 && r.Migrations > prev {
					t.Errorf("%s/%v: cooldown %d raised the migration count: %d > %d",
						name, l2, cool, r.Migrations, prev)
				}
				prev = r.Migrations
			}
		}
	}
}

// TestMigrationBatteryConserved runs the engine hot with every probe live
// over the metamorphic subset: live remaps must leave the conservation
// identities intact and every per-remap bijection check clean, window after
// window.
func TestMigrationBatteryConserved(t *testing.T) {
	for _, name := range metamorphicApps {
		for _, l2 := range []layout.CacheKind{layout.PrivateL2, layout.SharedL2} {
			cfg, w := migBatterySetup(t, name, l2)
			cfg.Migrate = &mem.MigrationSpec{HotThreshold: 2, WindowCycles: 256, CooldownWindows: 1, CopyFlits: 4, ShootdownCycles: 16}
			r := checkedRun(t, cfg, w, name+"/mig-conserved")
			for _, v := range check.VerifyTotals(r.Totals(w, &cfg)) {
				t.Errorf("%s/%v: %s", name, l2, v)
			}
			if r.Migrations > 0 && r.MigCopyMsgs == 0 {
				t.Errorf("%s/%v: %d migrations but no copy traffic", name, l2, r.Migrations)
			}
		}
	}
}
