// Package check is the simulator-wide validation subsystem: cross-layer
// invariant probes that hook the engine, the NoC, the DRAM controllers, and
// the sim front end at run time, plus closed-form analytical oracles and a
// metamorphic test battery that `make validate` sweeps over every bundled
// workload.
//
// The probes enforce the properties the paper's figures silently rely on:
//
//   - per-access timestamp causality — issue ≤ L1 ≤ L2 ≤ NoC ≤ DRAM, with
//     every stage of the Figure 2 flow monotone in time, and every started
//     access retired exactly once;
//   - request conservation generalized across cache/NoC/DRAM (the
//     RunTotals/VerifyTotals identities the old bespoke conservation test
//     asserted, now shared by tests, the CLI, and the battery);
//   - XY-route validity — every transit's hop count equals the Manhattan
//     distance and never exceeds the mesh diameter (MeshX−1)+(MeshY−1) —
//     and a zero-load latency lower bound per message;
//   - address-map agreement — Translate/MCOf/LocalAddr must agree on which
//     controller owns every byte, with (MC, local) ↔ physical a bijection;
//   - the FR-FCFS starvation bound — no request is ever passed over more
//     than the configured cap in favor of younger row-buffer hits;
//   - engine clock monotonicity — dispatched event times never rewind.
//
// A Checker is bound to one run (sim.Config.Check; sim.Run calls Bind and
// FinishRun itself) and is not safe for concurrent use — the simulator is
// single-goroutine, and concurrent sweeps attach one Checker per run. When
// no Checker is attached every probe site costs a single nil check, like
// the disabled tracer.
package check

import (
	"fmt"

	"offchip/internal/dram"
	"offchip/internal/mem"
	"offchip/internal/noc"
	"offchip/internal/obs"
)

// Violation is one detected invariant breach.
type Violation struct {
	Probe string // which probe fired: "causality", "conservation", "xy-route", ...
	Msg   string
}

func (v Violation) String() string { return v.Probe + ": " + v.Msg }

// maxRecorded caps the violation log: a systemic breach (e.g. a broken hop
// bound) would otherwise record one entry per message. Past the cap only
// the count grows.
const maxRecorded = 64

// Params binds a Checker to one simulated machine. sim.Run fills this from
// its Config; standalone substrate tests fill only the fields they use.
type Params struct {
	MeshX, MeshY int
	NoC          noc.Config
	DRAM         dram.Config
	Mem          mem.Config
	// Optimal marks a Section 2 optimal-scheme run (controllers bypassed).
	Optimal bool
	// Obs, when set, lets FinishRun cross-check the metrics registry
	// against the run totals.
	Obs *obs.Observer
}

// stageRec tracks one in-flight access for the causality probe.
type stageRec struct {
	stage Stage
	t     int64
}

// Checker collects invariant violations for one simulation run.
type Checker struct {
	bound  bool
	p      Params
	diam   int
	starve int // effective FR-FCFS bypass cap

	violations []Violation
	total      int64 // including violations dropped past maxRecorded

	// Causality probe state.
	nextID    int64
	inflight  map[int64]stageRec
	started   int64
	completed int64

	// Engine probe state.
	lastTick int64

	// NoC probe state.
	nocMsgs int64

	// DRAM probe state.
	dramEnq    int64
	dramServed int64
	MaxBypass  int // worst bypass count observed at service time
}

// New returns an unbound Checker. Bind attaches it to a machine; sim.Run
// binds the Checker in its Config automatically.
func New() *Checker {
	return &Checker{inflight: map[int64]stageRec{}}
}

// Bind attaches the Checker to one machine configuration. Binding resets
// all probe state, so a Checker instance validates exactly one run.
func (c *Checker) Bind(p Params) {
	c.bound = true
	c.p = p
	c.diam = p.MeshX + p.MeshY - 2
	c.starve = dram.EffectiveStarveLimit(p.DRAM)
	c.violations = nil
	c.total = 0
	c.nextID = 0
	c.inflight = map[int64]stageRec{}
	c.started, c.completed = 0, 0
	c.lastTick = 0
	c.nocMsgs = 0
	c.dramEnq, c.dramServed = 0, 0
	c.MaxBypass = 0
}

// Report records a violation found by an external probe site (e.g. the
// sim's directory/L2 agreement check).
func (c *Checker) Report(probe, format string, args ...any) {
	c.total++
	if len(c.violations) >= maxRecorded {
		return
	}
	c.violations = append(c.violations, Violation{Probe: probe, Msg: fmt.Sprintf(format, args...)})
}

// Violations returns the recorded violations (capped at maxRecorded; Count
// has the true total).
func (c *Checker) Violations() []Violation {
	if c == nil {
		return nil
	}
	return c.violations
}

// Count returns the total number of violations detected, including any
// dropped past the recording cap.
func (c *Checker) Count() int64 {
	if c == nil {
		return 0
	}
	return c.total
}

// Ok reports whether the run passed every probe.
func (c *Checker) Ok() bool { return c.Count() == 0 }

// Err returns nil when the run is clean, or an error summarizing the first
// violations.
func (c *Checker) Err() error {
	if c == nil || c.total == 0 {
		return nil
	}
	first := c.violations[0]
	return fmt.Errorf("check: %d violation(s), first: %s", c.total, first)
}

// FinishRun runs the end-of-run checks: the generalized conservation
// identities over the run totals, the no-access-left-in-flight drain
// check, and (when an observer is bound) the registry cross-check.
func (c *Checker) FinishRun(tot RunTotals) {
	if n := len(c.inflight); n != 0 {
		c.Report("causality", "%d accesses still in flight at drain (started %d, completed %d)",
			n, c.started, c.completed)
	}
	if c.started != c.completed {
		c.Report("causality", "started %d accesses but completed %d", c.started, c.completed)
	}
	if c.dramEnq != c.dramServed {
		c.Report("conservation", "controllers enqueued %d requests but served %d", c.dramEnq, c.dramServed)
	}
	// Probe counts must agree with the run totals when the probes were
	// attached (a standalone checker that never saw NoC traffic skips this).
	if c.nocMsgs != 0 && c.nocMsgs != tot.NetMsgs[0]+tot.NetMsgs[1] {
		c.Report("conservation", "NoC probe saw %d messages, run totals say %d",
			c.nocMsgs, tot.NetMsgs[0]+tot.NetMsgs[1])
	}
	for _, v := range VerifyTotals(tot) {
		c.Report(v.Probe, "%s", v.Msg)
	}
	if c.p.Obs != nil {
		for _, v := range CrossCheckRegistry(c.p.Obs.Reg, tot) {
			c.Report(v.Probe, "%s", v.Msg)
		}
	}
}
