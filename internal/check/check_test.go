package check

import (
	"strings"
	"testing"

	"offchip/internal/dram"
	"offchip/internal/mesh"
	"offchip/internal/noc"
)

// bound returns a Checker bound to a small 4×4 machine, ready to probe.
func bound() *Checker {
	c := New()
	c.Bind(Params{
		MeshX: 4, MeshY: 4,
		NoC:  noc.DefaultConfig(4, 4),
		DRAM: dram.DefaultConfig(),
	})
	return c
}

// wantProbe asserts the checker recorded at least one violation from the
// named probe.
func wantProbe(t *testing.T, c *Checker, probe string) {
	t.Helper()
	for _, v := range c.Violations() {
		if v.Probe == probe {
			return
		}
	}
	t.Errorf("no %q violation recorded; got %v", probe, c.Violations())
}

func TestCausalityCleanFlow(t *testing.T) {
	c := bound()
	id := c.StartAccess(10)
	if id == 0 {
		t.Fatal("probe ID 0 — zero must mean untracked")
	}
	c.Stage(id, StageL1, 12)
	c.Stage(id, StageL2, 12) // equal times are legal (same-cycle handoff)
	c.Stage(id, StageNoCReq, 20)
	c.EndAccess(id, 25)
	if !c.Ok() {
		t.Errorf("clean flow flagged: %v", c.Violations())
	}
}

func TestCausalityStageRewind(t *testing.T) {
	c := bound()
	id := c.StartAccess(10)
	c.Stage(id, StageL1, 5) // precedes issue
	wantProbe(t, c, "causality")
}

func TestCausalityDoubleRetire(t *testing.T) {
	c := bound()
	id := c.StartAccess(0)
	c.EndAccess(id, 5)
	c.EndAccess(id, 6)
	wantProbe(t, c, "causality")
}

func TestCausalityUnknownAccess(t *testing.T) {
	c := bound()
	c.Stage(99, StageL1, 0)
	wantProbe(t, c, "causality")
}

func TestCausalityInflightAtDrain(t *testing.T) {
	c := bound()
	c.StartAccess(0) // never retired
	c.FinishRun(RunTotals{MaxHops: -1})
	wantProbe(t, c, "causality")
}

func TestEngineTickRewind(t *testing.T) {
	c := bound()
	c.EngineTick(10)
	c.EngineTick(10) // equal is fine
	c.EngineTick(9)
	wantProbe(t, c, "engine")
}

func TestTransitClean(t *testing.T) {
	c := bound()
	src, dst := mesh.Node{X: 0, Y: 0}, mesh.Node{X: 2, Y: 1}
	zero := NoCZeroLoadBetween(c.p.NoC, src, dst)
	c.Transit(src, dst, noc.OnChip, 100, 100+zero, 3)
	if !c.Ok() {
		t.Errorf("clean transit flagged: %v", c.Violations())
	}
}

func TestTransitWrongHops(t *testing.T) {
	c := bound()
	// Manhattan distance 0→(2,1) is 3, not 4.
	c.Transit(mesh.Node{}, mesh.Node{X: 2, Y: 1}, noc.OnChip, 0, 100, 4)
	wantProbe(t, c, "xy-route")
}

func TestTransitHopBound(t *testing.T) {
	c := bound()
	// A destination outside the 4×4 mesh: distance 10 exceeds diameter 6.
	c.Transit(mesh.Node{}, mesh.Node{X: 5, Y: 5}, noc.OnChip, 0, 1000, 10)
	wantProbe(t, c, "hop-bound")
}

func TestTransitBelowZeroLoad(t *testing.T) {
	c := bound()
	// 3 hops arriving after 1 cycle: below any per-hop cost.
	c.Transit(mesh.Node{}, mesh.Node{X: 2, Y: 1}, noc.OnChip, 0, 1, 3)
	wantProbe(t, c, "zero-load")
}

func TestTransitIdealMustBeExact(t *testing.T) {
	c := New()
	cfg := noc.DefaultConfig(4, 4)
	cfg.Contention = false
	c.Bind(Params{MeshX: 4, MeshY: 4, NoC: cfg, DRAM: dram.DefaultConfig()})
	zero := NoCZeroLoad(cfg, 3)
	// On an ideal network any latency above zero-load is also a violation.
	c.Transit(mesh.Node{}, mesh.Node{X: 2, Y: 1}, noc.OnChip, 0, zero+1, 3)
	wantProbe(t, c, "zero-load")
}

func TestServeClean(t *testing.T) {
	c := bound()
	d := c.p.DRAM
	c.Enqueue(0, 3, 10)
	c.Serve(0, 3, 10, 15, 15+d.TRowHit, 2)
	if !c.Ok() {
		t.Errorf("clean service flagged: %v", c.Violations())
	}
	if c.MaxBypass != 2 {
		t.Errorf("MaxBypass = %d, want 2", c.MaxBypass)
	}
}

func TestServeBeforeArrive(t *testing.T) {
	c := bound()
	c.Serve(0, 0, 20, 10, 30, 0)
	wantProbe(t, c, "dram")
}

func TestServeBadDuration(t *testing.T) {
	c := bound()
	c.Serve(0, 0, 0, 0, 17, 0) // 17 matches none of hit/miss/conflict
	wantProbe(t, c, "dram")
}

func TestServeStarvationBound(t *testing.T) {
	c := bound()
	limit := dram.EffectiveStarveLimit(c.p.DRAM)
	c.Serve(0, 0, 0, 0, c.p.DRAM.TRowHit, limit) // at the bound: legal
	if !c.Ok() {
		t.Errorf("at-bound service flagged: %v", c.Violations())
	}
	c.Serve(0, 0, 0, 0, c.p.DRAM.TRowHit, limit+1)
	wantProbe(t, c, "starvation")
}

func TestFinishRunEnqueueServeMismatch(t *testing.T) {
	c := bound()
	c.Enqueue(0, 0, 0)
	c.FinishRun(RunTotals{MaxHops: -1})
	wantProbe(t, c, "conservation")
}

func TestVerifyTotals(t *testing.T) {
	clean := RunTotals{
		TraceAccesses: 10, Injected: 10, Completed: 10,
		L1Hits: 4, L2LocalHits: 3, OnChipRemote: 1, OffChip: 2,
		NetMsgs:      [2]int64{3, 2},
		HopCDF:       [2][]float64{{0.5, 0.8, 1}, {0, 0.5, 1}},
		MaxHops:      2,
		MemSubmitted: 2, MemServed: 2,
		Events: 30,
	}
	if vs := VerifyTotals(clean); len(vs) != 0 {
		t.Fatalf("clean totals flagged: %v", vs)
	}
	cases := []struct {
		name   string
		mutate func(*RunTotals)
		want   string
	}{
		{"dropped-injection", func(r *RunTotals) { r.Injected = 9; r.Completed = 9; r.L1Hits = 3 }, "injected"},
		{"lost-completion", func(r *RunTotals) { r.Completed = 9 }, "completed"},
		{"outcome-partition", func(r *RunTotals) { r.L1Hits = 5 }, "partition"},
		{"dram-mismatch", func(r *RunTotals) { r.MemServed = 1 }, "DRAM requests"},
		{"optimal-touched-controllers", func(r *RunTotals) { r.Optimal = true }, "optimal scheme submitted"},
		{"served-vs-offchip", func(r *RunTotals) { r.MemSubmitted = 3; r.MemServed = 3 }, "off-chip accesses"},
		{"cdf-wrong-length", func(r *RunTotals) { r.HopCDF[0] = []float64{0.5, 1} }, "entries"},
		{"cdf-not-closed", func(r *RunTotals) { r.HopCDF[1] = []float64{0, 0.5, 0.9} }, "close at 1"},
		{"too-few-events", func(r *RunTotals) { r.Events = 10 }, "multi-stage"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tot := clean
			tot.HopCDF = [2][]float64{
				append([]float64(nil), clean.HopCDF[0]...),
				append([]float64(nil), clean.HopCDF[1]...),
			}
			tc.mutate(&tot)
			vs := VerifyTotals(tot)
			if len(vs) == 0 {
				t.Fatal("seeded breakage not detected")
			}
			found := false
			for _, v := range vs {
				if strings.Contains(v.Msg, tc.want) {
					found = true
				}
			}
			if !found {
				t.Errorf("no violation mentioning %q; got %v", tc.want, vs)
			}
		})
	}
}

func TestReportCapAndCount(t *testing.T) {
	c := bound()
	for i := 0; i < 100; i++ {
		c.Report("test", "violation %d", i)
	}
	if len(c.Violations()) != maxRecorded {
		t.Errorf("recorded %d violations, cap is %d", len(c.Violations()), maxRecorded)
	}
	if c.Count() != 100 {
		t.Errorf("Count = %d, want 100", c.Count())
	}
	if c.Ok() {
		t.Error("Ok with violations")
	}
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "100 violation") {
		t.Errorf("Err = %v", err)
	}
}

func TestNilCheckerAccessors(t *testing.T) {
	var c *Checker
	if c.Violations() != nil || c.Count() != 0 || !c.Ok() || c.Err() != nil {
		t.Error("nil checker accessors not inert")
	}
}

func TestBindResets(t *testing.T) {
	c := bound()
	c.Report("test", "stale")
	c.StartAccess(0)
	c.EngineTick(50)
	c.Bind(c.p)
	if !c.Ok() || len(c.inflight) != 0 || c.lastTick != 0 || c.started != 0 {
		t.Error("Bind did not reset probe state")
	}
}
