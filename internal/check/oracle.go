package check

// Analytical oracles: closed-form latencies a contention-free run must
// match exactly. They are deliberately independent derivations from the
// model parameters — the simulator is validated against them, never the
// other way around.

import (
	"offchip/internal/dram"
	"offchip/internal/mesh"
	"offchip/internal/noc"
)

// NoCZeroLoad returns the arrival latency of a message crossing `hops`
// links of an otherwise idle network. Each hop costs the router pipeline
// latency plus — when contention (and therefore link serialization) is
// modeled — the serialization time of the packet on the link; an idle
// network has no queueing, so the sum is exact, and under contention it is
// a lower bound for every message.
func NoCZeroLoad(cfg noc.Config, hops int) int64 {
	per := cfg.HopLatency
	if cfg.Contention {
		per += cfg.LinkOccupancy
	}
	return int64(hops) * per
}

// NoCZeroLoadBetween is NoCZeroLoad over the XY route from src to dst.
func NoCZeroLoadBetween(cfg noc.Config, src, dst mesh.Node) int64 {
	return NoCZeroLoad(cfg, mesh.Dist(src, dst))
}

// DRAMSingleStream returns the total service time of n back-to-back
// same-row requests to one bank of an idle controller: the first opens the
// row (a row miss from the closed bank), every subsequent one is a row hit.
// FR-FCFS on a single stream has no reordering, so the sum is exact.
func DRAMSingleStream(cfg dram.Config, n int) int64 {
	if n <= 0 {
		return 0
	}
	return cfg.TRowMiss + int64(n-1)*cfg.TRowHit
}
