package check

import (
	"testing"

	"offchip/internal/dram"
	"offchip/internal/engine"
	"offchip/internal/mesh"
	"offchip/internal/noc"
)

// TestNoCZeroLoadOracleMatchesNetwork sends lone messages across an
// otherwise idle network and requires the simulated arrival to equal the
// closed-form zero-load latency exactly — under contention modeling (where
// serialization is part of the hop cost but no queueing occurs) and on the
// ideal network.
func TestNoCZeroLoadOracleMatchesNetwork(t *testing.T) {
	pairs := []struct{ src, dst mesh.Node }{
		{mesh.Node{X: 0, Y: 0}, mesh.Node{X: 0, Y: 0}},
		{mesh.Node{X: 0, Y: 0}, mesh.Node{X: 1, Y: 0}},
		{mesh.Node{X: 0, Y: 0}, mesh.Node{X: 3, Y: 2}},
		{mesh.Node{X: 2, Y: 3}, mesh.Node{X: 0, Y: 0}},
		{mesh.Node{X: 0, Y: 0}, mesh.Node{X: 7, Y: 7}}, // full diameter
	}
	for _, contention := range []bool{true, false} {
		cfg := noc.DefaultConfig(8, 8)
		cfg.Contention = contention
		n := noc.New(cfg)
		for i, p := range pairs {
			// Departures spaced far apart keep every link idle.
			depart := int64(i) * 10_000
			arr, hops := n.Transit(depart, p.src, p.dst, noc.OnChip)
			want := depart + NoCZeroLoadBetween(cfg, p.src, p.dst)
			if arr != want {
				t.Errorf("contention=%v %v->%v: arrival %d, oracle says %d",
					contention, p.src, p.dst, arr, want)
			}
			if zero := NoCZeroLoad(cfg, hops); arr-depart != zero {
				t.Errorf("contention=%v %d hops: latency %d, oracle says %d",
					contention, hops, arr-depart, zero)
			}
		}
	}
}

// TestDRAMSingleStreamOracleMatchesController submits back-to-back same-row
// requests to one bank of an idle controller and requires the last finish
// time to equal the closed-form single-stream service time: one row miss to
// open the row, then pure row hits.
func TestDRAMSingleStreamOracleMatchesController(t *testing.T) {
	cfg := dram.DefaultConfig()
	for _, n := range []int{1, 2, 5, 16} {
		var s engine.Sim
		c := dram.New(0, cfg, &s, nil)
		var last int64
		s.At(0, func() {
			for i := 0; i < n; i++ {
				// Same row (offsets < RowBytes): the stream never changes banks.
				c.Submit(int64(i)*64%cfg.RowBytes, func(f int64) {
					if f > last {
						last = f
					}
				})
			}
		})
		s.Run()
		if want := DRAMSingleStream(cfg, n); last != want {
			t.Errorf("n=%d: stream drained at %d, oracle says %d", n, last, want)
		}
	}
	if DRAMSingleStream(cfg, 0) != 0 {
		t.Error("empty stream has nonzero service time")
	}
}

// TestCheckerAcceptsQuietRealSubstrate wires a bound Checker as the actual
// NoC and DRAM probe and drives idle-substrate traffic through it: the
// probes must stay silent on correct hardware models.
func TestCheckerAcceptsQuietRealSubstrate(t *testing.T) {
	nocCfg := noc.DefaultConfig(4, 4)
	c := New()
	c.Bind(Params{MeshX: 4, MeshY: 4, NoC: nocCfg, DRAM: dram.DefaultConfig()})
	nocCfg.Probe = c
	n := noc.New(nocCfg)
	for i := 0; i < 5; i++ {
		n.Transit(int64(i)*10_000, mesh.Node{X: 0, Y: 0}, mesh.Node{X: 3, Y: i % 4}, noc.OffChip)
	}

	var s engine.Sim
	mc := dram.New(0, c.p.DRAM, &s, nil)
	mc.Probe = c
	s.At(0, func() {
		for i := 0; i < 8; i++ {
			mc.Submit(int64(i)*64, func(int64) {})
		}
	})
	s.Run()
	if !c.Ok() {
		t.Errorf("quiet substrate flagged: %v", c.Violations())
	}
}
