package check

import (
	"offchip/internal/mem"
	"offchip/internal/mesh"
	"offchip/internal/noc"
)

// Stage labels a point of the Figure 2 access flow for the causality probe.
// An access may revisit a stage (the shared-L2 flow crosses the NoC twice),
// so the probe enforces only that the reported times never rewind — the
// issue ≤ L1 ≤ L2 ≤ NoC ≤ DRAM ordering each flow implies.
type Stage int

const (
	StageIssue Stage = iota
	StageL1
	StageL2
	StageNoCReq  // a request-side network transit completed
	StageDir     // directory lookup at the controller
	StageDRAMSub // request handed to the controller queue
	StageDRAMDone
	StageNoCResp // a response-side network transit completed
)

var stageNames = [...]string{
	StageIssue:    "issue",
	StageL1:       "L1",
	StageL2:       "L2",
	StageNoCReq:   "noc-req",
	StageDir:      "dir",
	StageDRAMSub:  "dram-submit",
	StageDRAMDone: "dram-done",
	StageNoCResp:  "noc-resp",
}

func (s Stage) String() string {
	if s >= 0 && int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "stage?"
}

// StartAccess registers a new in-flight access at its issue time and
// returns its probe ID (always ≥ 1, so a zero ID means "untracked").
func (c *Checker) StartAccess(t int64) int64 {
	c.nextID++
	id := c.nextID
	c.inflight[id] = stageRec{stage: StageIssue, t: t}
	c.started++
	return id
}

// Stage records that the access reached stage s at time t, and fails the
// causality probe if t precedes the access's previous stage.
func (c *Checker) Stage(id int64, s Stage, t int64) {
	rec, ok := c.inflight[id]
	if !ok {
		c.Report("causality", "stage %v reported for unknown access %d", s, id)
		return
	}
	if t < rec.t {
		c.Report("causality", "access %d: %v at t=%d precedes %v at t=%d",
			id, s, t, rec.stage, rec.t)
	}
	c.inflight[id] = stageRec{stage: s, t: t}
}

// EndAccess retires the access at time t. Every started access must be
// ended exactly once; FinishRun flags leftovers.
func (c *Checker) EndAccess(id int64, t int64) {
	rec, ok := c.inflight[id]
	if !ok {
		c.Report("causality", "access %d retired twice (or never started)", id)
		return
	}
	if t < rec.t {
		c.Report("causality", "access %d: retire at t=%d precedes %v at t=%d",
			id, t, rec.stage, rec.t)
	}
	delete(c.inflight, id)
	c.completed++
}

// EngineTick is the engine.Sim.OnDispatch hook: dispatched event times must
// be monotone non-decreasing, the total (time, seq) order the determinism
// guarantees rest on.
func (c *Checker) EngineTick(now int64) {
	if now < c.lastTick {
		c.Report("engine", "clock rewound: dispatched t=%d after t=%d", now, c.lastTick)
	}
	c.lastTick = now
}

// Transit implements noc.Probe: every message must follow a minimal XY
// route (hops == Manhattan distance, ≤ the mesh diameter) and take at least
// the closed-form zero-load latency — exactly that latency when contention
// modeling is off.
func (c *Checker) Transit(src, dst mesh.Node, class noc.Class, depart, arrive int64, hops int) {
	if d := mesh.Dist(src, dst); hops != d {
		c.Report("xy-route", "%v->%v took %d hops, Manhattan distance is %d", src, dst, hops, d)
	}
	if c.p.MeshX > 0 && hops > c.diam {
		c.Report("hop-bound", "%v->%v took %d hops, mesh diameter is %d", src, dst, hops, c.diam)
	}
	lat, zero := arrive-depart, NoCZeroLoad(c.p.NoC, hops)
	if lat < zero {
		c.Report("zero-load", "%v->%v (%s) latency %d below zero-load bound %d",
			src, dst, class, lat, zero)
	}
	if !c.p.NoC.Contention && lat != zero {
		c.Report("zero-load", "%v->%v (%s) latency %d on ideal network, want exactly %d",
			src, dst, class, lat, zero)
	}
	c.nocMsgs++
}

// Enqueue implements dram.Probe (request accepted by a controller).
func (c *Checker) Enqueue(mc, bank int, at int64) {
	c.dramEnq++
}

// Serve implements dram.Probe: service must start no earlier than arrival,
// last exactly one of the three configured access times, and never follow
// more than StarveLimit bypasses by younger row hits — the FR-FCFS
// starvation bound the bounded-bypass scheduler enforces.
func (c *Checker) Serve(mc, bank int, arrive, start, finish int64, bypassed int) {
	if start < arrive {
		c.Report("dram", "mc%d bank %d served a request %d cycles before it arrived",
			mc, bank, arrive-start)
	}
	if d := finish - start; c.p.DRAM.TRowHit > 0 &&
		d != c.p.DRAM.TRowHit && d != c.p.DRAM.TRowMiss && d != c.p.DRAM.TRowConflict {
		c.Report("dram", "mc%d bank %d service time %d matches no configured access time", mc, bank, d)
	}
	if bypassed > c.starve {
		c.Report("starvation", "mc%d bank %d request bypassed %d times, bound is %d",
			mc, bank, bypassed, c.starve)
	}
	if bypassed > c.MaxBypass {
		c.MaxBypass = bypassed
	}
	c.dramServed++
}

// AddrOwner verifies the simulator's controller routing for one physical
// address against the address-map functions: mem.MCOf must agree on the
// owning controller, mem.LocalAddr on the dense per-controller address, and
// the (controller, local) pair must invert back to the same physical
// address — the bijection DRAM row-locality modeling depends on.
func (c *Checker) AddrOwner(paddr int64, mc int, local int64) {
	cfg := c.p.Mem
	if cfg.NumMCs <= 0 {
		return
	}
	if want := mem.MCOf(paddr, cfg); mc != want {
		c.Report("addr-map", "paddr %#x routed to mc%d, MCOf says mc%d", paddr, mc, want)
	}
	if want := mem.LocalAddr(paddr, cfg); local != want {
		c.Report("addr-map", "paddr %#x submitted as local %#x, LocalAddr says %#x", paddr, local, want)
	}
	unit := interleaveUnit(cfg)
	stripe := unit * int64(cfg.NumMCs)
	if back := (local/unit)*stripe + int64(mc)*unit + local%unit; back != paddr {
		c.Report("addr-map", "(mc%d, local %#x) inverts to paddr %#x, want %#x", mc, local, back, paddr)
	}
}
