package check_test

// Sampled-simulation battery: for every bundled workload, through both L2
// organizations and all three schemes (baseline, optimized layouts, optimal
// off-chip), the full run's headline metrics must land inside the confidence
// bounds RunSampled states, every measured window must satisfy the
// conservation identities, and the sampled estimator must actually sample
// (simulate well under the full access count). This is the validation that
// licenses `-sample on` as a drop-in for the exact sweeps.

import (
	"testing"

	"offchip/internal/check"
	"offchip/internal/core"
	"offchip/internal/layout"
	"offchip/internal/sim"
	"offchip/internal/workloads"
)

// sampledBatteryCap sizes the traces: long enough that the default spec
// samples rather than covering and each window is big enough to ride the
// machine's queueing steady state (the NoC ramp takes a few hundred cycles,
// so windows of ~60 accesses per stream are the useful minimum), short
// enough that 13 apps × 2 L2s × 3 schemes × (1 full + 12 window runs)
// stays a test, not a benchmark.
const sampledBatteryCap = 2400

// boundSlack loosens Bound.Within for the cross-scheme sweep: the stated
// bounds are calibrated for stationary streams, and a few workloads have
// phase-skewed windows right at the edge. The battery accepts |x − mean| ≤
// slack·half; slack stays small enough that a broken estimator (wrong
// extrapolation factor, warmup leaking into the estimate) still fails by an
// order of magnitude.
const boundSlack = 1.5

func within(b sim.Bound, x float64) bool {
	d := x - b.Mean
	if d < 0 {
		d = -d
	}
	return d <= boundSlack*b.Half
}

// sampledAgainstFull runs one (cfg, workload) cell both ways and checks the
// full metrics against the sampled bounds.
func sampledAgainstFull(t *testing.T, cfg sim.Config, w *sim.Workload, tag string) {
	t.Helper()
	full, err := sim.Run(cfg, w)
	if err != nil {
		t.Fatalf("%s: full: %v", tag, err)
	}
	sr, err := sim.RunSampled(cfg, w, sim.DefaultSampleSpec())
	if err != nil {
		t.Fatalf("%s: sampled: %v", tag, err)
	}
	if sr.Exact {
		t.Fatalf("%s: cap %d fell into the exact fallback — raise the cap", tag, sampledBatteryCap)
	}
	// Conservation on every measured window: each span run is a complete
	// drained simulation of its slice.
	for i, r := range sr.SpanResults {
		for _, v := range check.VerifyTotals(r.Totals(sr.SpanWorkloads[i], &cfg)) {
			t.Errorf("%s: window %d: %s", tag, i, v)
		}
	}
	// Sampling must pay: the default spec simulates ≈20% of the accesses
	// (10% measured, once warm + once in the span).
	if frac := float64(sr.SimulatedAccesses) / float64(sr.FullAccesses); frac > 0.5 {
		t.Errorf("%s: simulated %.0f%% of the full workload", tag, 100*frac)
	}
	checks := []struct {
		name string
		b    sim.Bound
		x    float64
	}{
		{"exec", sr.Est.ExecTime, float64(full.ExecTime)},
		{"offchip-share", sr.Est.OffChipShare, full.OffChipShare()},
		{"mem-avg", sr.Est.MemAvg, full.AvgMemLatency()},
		{"queue-occ", sr.Est.AvgQueueOcc, full.AvgQueueOcc},
	}
	for _, c := range checks {
		if !within(c.b, c.x) {
			t.Errorf("%s: %s: full run %.6g outside %.6g ± %.3g·%.6g",
				tag, c.name, c.x, c.b.Mean, boundSlack, c.b.Half)
		}
	}
}

// TestSampledBatteryAllWorkloads sweeps every application × L2 × scheme.
func TestSampledBatteryAllWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("sampled battery is the long validation sweep")
	}
	for _, app := range workloads.All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			t.Parallel()
			for _, l2 := range []layout.CacheKind{layout.PrivateL2, layout.SharedL2} {
				m := layout.Default8x8()
				m.L2 = l2
				cm, err := layout.MappingM1(m, layout.PlacementCorners(m.MeshX, m.MeshY))
				if err != nil {
					t.Fatal(err)
				}
				opt := core.Options{MaxAccessesPerThread: sampledBatteryCap}
				base, optim, _, err := core.Workloads(app, m, cm, opt)
				if err != nil {
					t.Fatal(err)
				}
				cfg := core.SimConfig(m, cm, opt)
				tag := app.Name + "/" + l2.String()
				sampledAgainstFull(t, cfg, base, tag+"/base")
				sampledAgainstFull(t, cfg, optim, tag+"/optim")
				optCfg := cfg
				optCfg.OptimalOffchip = true
				sampledAgainstFull(t, optCfg, base, tag+"/optimal")
			}
		})
	}
}
