package check

import (
	"fmt"

	"offchip/internal/obs"
)

// RunTotals summarizes a drained simulation run for the generalized
// conservation check. sim.(*Result).Totals builds it; VerifyTotals asserts
// the flow identities that hold for every correct run: nothing dropped,
// duplicated, or left in flight anywhere in the cache/NoC/DRAM pipeline.
type RunTotals struct {
	// TraceAccesses is the workload's access count (the injection target).
	TraceAccesses int64
	// Injected and Completed are the accesses the machine issued and retired.
	Injected  int64
	Completed int64

	// Outcome partition: every access is exactly one of these.
	L1Hits       int64
	L2LocalHits  int64
	OnChipRemote int64
	OffChip      int64

	// Network totals per class (on-chip, off-chip).
	NetMsgs [2]int64
	HopCDF  [2][]float64
	// MaxHops is the mesh diameter (MeshX−1)+(MeshY−1); each HopCDF must
	// have exactly one entry per reachable hop count, 0..MaxHops.
	MaxHops int

	// Controller totals.
	MemSubmitted int64
	MemServed    int64

	// Events is the engine's processed-event count.
	Events int64

	// Optimal marks a Section 2 optimal-scheme run, where the controllers
	// are bypassed (MemServed is the synthetic row-hit count).
	Optimal bool
}

// VerifyTotals checks the conservation identities on a drained run and
// returns one violation per broken identity (nil when clean). It subsumes
// the bespoke assertions the old internal/sim conservation tests carried.
func VerifyTotals(tot RunTotals) []Violation {
	var vs []Violation
	badf := func(format string, args ...any) {
		vs = append(vs, Violation{Probe: "conservation", Msg: fmt.Sprintf(format, args...)})
	}
	if tot.Injected != tot.TraceAccesses {
		badf("injected %d of %d trace accesses", tot.Injected, tot.TraceAccesses)
	}
	if tot.Completed != tot.Injected {
		badf("completed %d of %d injected accesses (events lost or duplicated)",
			tot.Completed, tot.Injected)
	}
	if sum := tot.L1Hits + tot.L2LocalHits + tot.OnChipRemote + tot.OffChip; sum != tot.Injected {
		badf("outcomes don't partition: l1=%d l2=%d remote=%d offchip=%d sum=%d total=%d",
			tot.L1Hits, tot.L2LocalHits, tot.OnChipRemote, tot.OffChip, sum, tot.Injected)
	}
	if tot.Optimal {
		// The optimal scheme bypasses the controllers — nothing may reach a
		// real queue.
		if tot.MemSubmitted != 0 {
			badf("optimal scheme submitted %d controller requests", tot.MemSubmitted)
		}
	} else if tot.MemSubmitted != tot.MemServed {
		badf("DRAM requests: submitted %d, served %d", tot.MemSubmitted, tot.MemServed)
	}
	// Exactly one memory service per off-chip access, in both modes.
	if tot.MemServed != tot.OffChip {
		badf("served %d memory requests for %d off-chip accesses", tot.MemServed, tot.OffChip)
	}
	for c := 0; c < 2; c++ {
		cdf := tot.HopCDF[c]
		if cdf == nil {
			continue
		}
		// Figure 15 shape: one entry per reachable hop count, 0..diameter.
		if tot.MaxHops >= 0 && len(cdf) != tot.MaxHops+1 {
			badf("class %d hop CDF has %d entries for diameter %d (want %d)",
				c, len(cdf), tot.MaxHops, tot.MaxHops+1)
		}
		// Every injected message was delivered: a class with traffic must
		// close at exactly 1.
		if tot.NetMsgs[c] != 0 && (len(cdf) == 0 || cdf[len(cdf)-1] != 1) {
			badf("class %d hop CDF does not close at 1: %v", c, cdf)
		}
	}
	if tot.Injected > 0 && tot.Events <= tot.Injected {
		badf("processed %d events for %d accesses (multi-stage flow missing)",
			tot.Events, tot.Injected)
	}
	return vs
}

// CrossCheckRegistry verifies that the observability registry agrees with
// the run totals — the counters every figure renders from must describe the
// same run the Result does. The registry must be private to the run (sim
// only enables this when it created the observer itself).
func CrossCheckRegistry(reg *obs.Registry, tot RunTotals) []Violation {
	var vs []Violation
	badf := func(format string, args ...any) {
		vs = append(vs, Violation{Probe: "registry", Msg: fmt.Sprintf(format, args...)})
	}
	if got := reg.Sum("sim", "accesses"); got != tot.Injected {
		badf("sim/accesses counter %d, result says %d", got, tot.Injected)
	}
	if got := reg.Sum("noc", "messages"); got != tot.NetMsgs[0]+tot.NetMsgs[1] {
		badf("noc/messages counter %d, result says %d", got, tot.NetMsgs[0]+tot.NetMsgs[1])
	}
	if got := reg.Sum("sim", "offchip_requests"); got != tot.OffChip {
		badf("sim/offchip_requests map sums to %d, result says %d off-chip", got, tot.OffChip)
	}
	wantServed := tot.MemServed
	if tot.Optimal {
		wantServed = 0 // synthetic services never touch the dram counters
	}
	if got := reg.Sum("dram", "served"); got != wantServed {
		badf("dram/served counter %d, result says %d", got, wantServed)
	}
	// Cache lookups: every access probes an L1 (Injected lookups) and every
	// L1 miss probes exactly one L2 (local or home bank), so total cache
	// hits+misses must equal 2·Injected − L1Hits.
	if got, want := reg.Sum("cache", "hits")+reg.Sum("cache", "misses"), 2*tot.Injected-tot.L1Hits; got != want {
		badf("cache hit+miss counters sum to %d, flow identity says %d", got, want)
	}
	return vs
}
