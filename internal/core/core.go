// Package core is the library façade: it wires the compiler pass
// (internal/layout with internal/approx), the trace generator, and the
// manycore simulator into the three runs every experiment compares —
// baseline (original layouts), optimized (the paper's transformation), and
// the Section 2 optimal scheme — and distills the simulator output into the
// metrics the paper's figures report.
package core

import (
	"fmt"
	"sync"

	"offchip/internal/approx"
	"offchip/internal/check"
	"offchip/internal/ir"
	"offchip/internal/layout"
	"offchip/internal/mem"
	"offchip/internal/noc"
	"offchip/internal/obs"
	"offchip/internal/prof"
	"offchip/internal/sim"
	"offchip/internal/trace"
	"offchip/internal/tracecache"
	"offchip/internal/workloads"
)

// Options tunes an experiment run.
type Options struct {
	// Threads is the total software thread count (0: one per core).
	Threads int
	// MaxAccessesPerThread caps trace length. Zero means full (unsampled)
	// traces: experiments need identical iteration coverage in the
	// baseline and optimized runs so that miss counts stay comparable.
	MaxAccessesPerThread int
	// BaselinePolicy is the page policy of the baseline run under page
	// interleaving (default PolicyInterleaved; PolicyFirstTouch for the
	// Section 6.3 comparison).
	BaselinePolicy sim.PolicyKind
	// MLPWindow overrides the per-core outstanding-miss window (0: default).
	MLPWindow int
	// BanksPerMC overrides the DRAM bank count per controller (0: the
	// calibrated default). The M1-vs-M2 experiments (Figures 17/18) use the
	// paper's nominal 4 banks per device, the bank-scarce regime the
	// locality-vs-MLP trade-off is about.
	BanksPerMC int
	// Contention disables NoC link contention when explicitly set false
	// via NoContention (ablation).
	NoContention bool
	// Seed forwards to sim.Config.Seed: it decorrelates the deterministic
	// per-access jitter stream between runs. Zero (the default) keeps the
	// historical stream every recorded figure uses.
	Seed uint64
	// Concurrent runs the three simulations (baseline, optimized, optimal)
	// on separate goroutines. Results are bit-identical to the sequential
	// order — the simulations share no mutable state — so this is purely a
	// wall-clock lever for multi-core hosts.
	Concurrent bool
	// Check attaches a fresh invariant checker (internal/check) to each of
	// the three runs; per-run violations land in Comparison.Checks. The
	// probes cost a few percent of runtime, so experiments leave this off
	// and `offchip -check` / `make validate` turn it on.
	Check bool
	// Prof attaches a fresh latency-attribution profiler (internal/prof)
	// to each of the three runs; per-run profiles land in
	// Comparison.Profiles. Like Check, it rides the probe surfaces and is
	// off by default.
	Prof bool
	// Observer, when set, supplies the observability sink for each of the
	// three runs ("baseline", "optimized", "optimal") — the hook the CLI
	// uses to attach a tracer to one run. When it returns nil (or is unset)
	// the run still gets a fresh registry-backed observer.
	Observer func(run string) *obs.Observer
	// OnProgress and ProgressEvery forward to sim.Config for live reporting;
	// the run name is prepended so interleaved runs stay distinguishable.
	OnProgress    func(run string, p sim.Progress)
	ProgressEvery int64
	// TraceCache, when set, memoizes trace generation across runs and jobs
	// (see internal/tracecache): each per-core stream is generated once per
	// (program, threads, cap, machine, layout fingerprint) and shared.
	// Cached streams are byte-identical to freshly generated ones, so the
	// cache is purely a wall-clock lever. Nil disables caching.
	TraceCache *tracecache.Cache
	// Migrate, when set, attaches the online hot-page migration engine to
	// the baseline and optimized runs (never the optimal scheme, which
	// already serves every request from the nearest controller). Requires
	// page interleaving; see mem.MigrationSpec. Nil (the default) keeps the
	// static policies bit-identical to their historical results.
	Migrate *mem.MigrationSpec
	// Sample, when set, replaces each full simulation with SMARTS-style
	// sampled simulation over the same traces (see sim.SampleSpec): metrics
	// become window-extrapolated estimates with confidence bounds, recorded
	// in Comparison.Sampled. Nil (the default) runs exact full simulations
	// with bit-identical historical results.
	Sample *sim.SampleSpec
}

// Metrics distills one simulation run.
type Metrics struct {
	ExecTime      int64
	OnChipNetAvg  float64 // mean network latency of on-chip accesses
	OffChipNetAvg float64 // mean network latency of off-chip accesses
	MemAvg        float64 // mean off-chip memory latency (queue + service)
	QueueAvg      float64 // mean off-chip queue wait (the Figure 14 mechanism)
	OffChipShare  float64 // fraction of accesses served off-chip (Figure 3)
	AvgQueueOcc   float64 // mean bank-queue occupancy (Figure 18)
	HopCDFOn      []float64
	HopCDFOff     []float64
	AccessMap     [][]int64 // [node][mc] off-chip requests (Figure 13)
	AppExecTime   map[int]int64

	// Online page migration (zero unless Options.Migrate fired).
	Migrations     int64
	MigCopyMsgs    int64
	MigStallCycles int64
}

func queueAvg(r *sim.Result) float64 {
	if r.MemServed == 0 {
		return 0
	}
	return float64(r.MemQueue) / float64(r.MemServed)
}

func distill(r *sim.Result) Metrics {
	return Metrics{
		ExecTime:       r.ExecTime,
		OnChipNetAvg:   r.AvgNetLatency(noc.OnChip),
		OffChipNetAvg:  r.AvgNetLatency(noc.OffChip),
		MemAvg:         r.AvgMemLatency(),
		QueueAvg:       queueAvg(r),
		OffChipShare:   r.OffChipShare(),
		AvgQueueOcc:    r.AvgQueueOcc,
		HopCDFOn:       r.HopCDF[noc.OnChip],
		HopCDFOff:      r.HopCDF[noc.OffChip],
		AccessMap:      r.AccessMap,
		AppExecTime:    r.AppExecTime,
		Migrations:     r.Migrations,
		MigCopyMsgs:    r.MigCopyMsgs,
		MigStallCycles: r.MigStallCycles,
	}
}

// Comparison is the outcome of running one application three ways.
type Comparison struct {
	App       string
	Machine   layout.Machine
	Mapping   string
	Baseline  Metrics
	Optimized Metrics
	Optimal   Metrics

	// Observers holds each run's observability layer ("baseline",
	// "optimized", "optimal") — the registries the -report dashboard and
	// -metrics dump read from.
	Observers map[string]*obs.Observer

	// Checks holds each run's invariant violations (Options.Check only;
	// nil slices mean the run was clean).
	Checks map[string][]check.Violation

	// Profiles holds each run's latency attribution (Options.Prof only).
	Profiles map[string]*prof.Profile

	// Sampled holds each run's sampled-simulation outcome — estimates with
	// confidence bounds — when Options.Sample was set (nil otherwise). The
	// Baseline/Optimized/Optimal metrics are then the estimate means.
	Sampled map[string]*sim.SampledResult

	// Compiler statistics (Table 2).
	PctArraysOptimized float64
	PctRefsSatisfied   float64
}

// Improvement helpers: fractional reduction of the optimized run vs the
// baseline for the four Figure 14/16 metrics.

// ExecImprovement returns 1 − T_opt/T_base.
func (c *Comparison) ExecImprovement() float64 {
	return improvement(float64(c.Baseline.ExecTime), float64(c.Optimized.ExecTime))
}

// OnChipNetImprovement returns the on-chip network latency reduction.
func (c *Comparison) OnChipNetImprovement() float64 {
	return improvement(c.Baseline.OnChipNetAvg, c.Optimized.OnChipNetAvg)
}

// OffChipNetImprovement returns the off-chip network latency reduction.
func (c *Comparison) OffChipNetImprovement() float64 {
	return improvement(c.Baseline.OffChipNetAvg, c.Optimized.OffChipNetAvg)
}

// MemImprovement returns the off-chip memory latency reduction.
func (c *Comparison) MemImprovement() float64 {
	return improvement(c.Baseline.MemAvg, c.Optimized.MemAvg)
}

// QueueImprovement returns the off-chip queue-wait reduction — the paper's
// stated mechanism behind the Figure 14/16 memory latency bars ("as a
// result of the reduction in queuing latency").
func (c *Comparison) QueueImprovement() float64 {
	return improvement(c.Baseline.QueueAvg, c.Optimized.QueueAvg)
}

// OptimalExecImprovement returns the Section 2 bound: 1 − T_optimal/T_base.
func (c *Comparison) OptimalExecImprovement() float64 {
	return improvement(float64(c.Baseline.ExecTime), float64(c.Optimal.ExecTime))
}

func improvement(base, opt float64) float64 {
	if base == 0 {
		return 0
	}
	return (base - opt) / base
}

// SimConfig assembles the simulator configuration for the machine/mapping.
// Cache capacities are scaled down from Table 1 in proportion to the
// synthetic kernels' footprints (a few MB instead of the paper's 124 MB to
// 1.9 GB inputs), so that working sets exceed the aggregate L2 the way the
// real applications exceeded the real 16 MB — the off-chip access share
// (Figure 3) depends on that ratio, not on absolute sizes.
func SimConfig(m layout.Machine, cm *layout.ClusterMapping, opt Options) sim.Config {
	cfg := sim.DefaultConfig(m, cm)
	cfg.L1Bytes = 2 << 10
	cfg.L2Bytes = 8 << 10
	if m.L2 == layout.SharedL2 {
		// A shared SNUCA cache holds each line once; private L2s replicate
		// shared lines. With the footprint-scaled capacities this is worth
		// roughly a doubling of effective per-bank capacity.
		cfg.L2Bytes = 16 << 10
	}
	cfg.DRAM.RowBytes = 1 << 10
	if opt.MLPWindow > 0 {
		cfg.MLPWindow = opt.MLPWindow
	}
	if opt.BanksPerMC > 0 {
		cfg.DRAM.BanksPerMC = opt.BanksPerMC
	}
	if opt.NoContention {
		cfg.NoC.Contention = false
	}
	cfg.Seed = opt.Seed
	cfg.Migrate = opt.Migrate
	return cfg
}

// Workloads builds the baseline and optimized traces for an application.
// The baseline uses identity layouts; the optimized one runs the full pass
// with the Section 5.4 profiler.
func Workloads(app *workloads.App, m layout.Machine, cm *layout.ClusterMapping, opt Options) (base, optim *sim.Workload, res *layout.Result, err error) {
	p, store, err := app.Load()
	if err != nil {
		return nil, nil, nil, err
	}
	res, err = layout.Optimize(p, m, cm, &layout.Options{
		Threads: opt.Threads,
		Approx:  approx.NewProfiler(store),
	})
	if err != nil {
		return nil, nil, nil, err
	}
	cap := opt.MaxAccessesPerThread
	if cap == 0 {
		cap = trace.Unlimited
	}
	tOpt := trace.Options{Threads: opt.Threads, MaxAccessesPerThread: cap}
	identity := &layout.Result{Program: p, Layouts: map[*ir.Array]*layout.ArrayLayout{}}
	// A nil TraceCache degrades to plain trace.Generate (tracecache handles
	// the nil receiver), so the uncached path is unchanged.
	base, err = opt.TraceCache.Generate(p, identity, m, store, tOpt)
	if err != nil {
		return nil, nil, nil, err
	}
	optim, err = opt.TraceCache.Generate(p, res, m, store, tOpt)
	if err != nil {
		return nil, nil, nil, err
	}
	return base, optim, res, nil
}

// MixWorkloads builds the baseline and optimized composed workloads for a
// phase-changing multiprogrammed mix: each entry's application goes through
// the same pass-and-generate pipeline as Workloads (sharing the trace cache
// when one is attached), and the per-app workloads are then composed
// phase-major with the entries' core rotations (trace.ComposeMix). The
// baseline composition interleaves identity-layout traces; the optimized
// one composes the transformed traces, so OS-assisted placement still sees
// each app's desired controllers.
func MixWorkloads(mix workloads.MixSpec, m layout.Machine, cm *layout.ClusterMapping, opt Options) (base, optim *sim.Workload, err error) {
	if err := mix.Validate(); err != nil {
		return nil, nil, err
	}
	var bases, optims []*sim.Workload
	var rotates []int
	for _, e := range mix.Entries {
		app, _ := workloads.ByName(e.App)
		b, o, _, err := Workloads(app, m, cm, opt)
		if err != nil {
			return nil, nil, fmt.Errorf("core: mix entry %s: %w", e.App, err)
		}
		bases, optims = append(bases, b), append(optims, o)
		rotates = append(rotates, e.Rotate)
	}
	name := mix.String()
	base, err = trace.ComposeMix(name, m.Cores(), bases, rotates)
	if err != nil {
		return nil, nil, err
	}
	optim, err = trace.ComposeMix(name, m.Cores(), optims, rotates)
	if err != nil {
		return nil, nil, err
	}
	return base, optim, nil
}

// Compare runs the application three ways on the machine: baseline,
// optimized, and the optimal scheme (on the baseline trace).
func Compare(app *workloads.App, m layout.Machine, cm *layout.ClusterMapping, opt Options) (*Comparison, error) {
	baseW, optW, res, err := Workloads(app, m, cm, opt)
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", app.Name, err)
	}

	observers := map[string]*obs.Observer{}
	checkers := map[string]*check.Checker{}
	profilers := map[string]*prof.Profiler{}
	attach := func(cfg *sim.Config, run string) {
		var o *obs.Observer
		if opt.Observer != nil {
			o = opt.Observer(run)
		}
		o = obs.OrNew(o)
		observers[run] = o
		cfg.Obs = o
		if opt.Check {
			ck := check.New()
			checkers[run] = ck
			cfg.Check = ck
		}
		if opt.Prof {
			pf := prof.New()
			profilers[run] = pf
			cfg.Prof = pf
		}
		if opt.OnProgress != nil {
			cfg.ProgressEvery = opt.ProgressEvery
			cfg.OnProgress = func(p sim.Progress) { opt.OnProgress(run, p) }
		}
	}

	// Configure all three runs up front (observer registration order stays
	// deterministic), then execute — concurrently when requested. The runs
	// share only immutable inputs (the traces), so concurrent execution is
	// bit-identical to sequential.
	cfg := SimConfig(m, cm, opt)
	cfg.Policy = opt.BaselinePolicy
	attach(&cfg, "baseline")

	optCfg := cfg
	if m.Interleave == layout.PageInterleave {
		// The optimized run needs the OS-assisted policy (Section 5.3).
		optCfg.Policy = sim.PolicyOSAssisted
	}
	attach(&optCfg, "optimized")

	idealCfg := cfg
	idealCfg.OptimalOffchip = true
	// The optimal scheme is the migration engine's fixed point — every
	// request already goes to the nearest controller — so it never migrates.
	idealCfg.Migrate = nil
	attach(&idealCfg, "optimal")

	type simJob struct {
		name    string
		cfg     sim.Config
		w       *sim.Workload
		res     *sim.Result
		sampled *sim.SampledResult
		err     error
	}
	jobs := []*simJob{
		{name: "baseline", cfg: cfg, w: baseW},
		{name: "optimized", cfg: optCfg, w: optW},
		{name: "optimal", cfg: idealCfg, w: baseW},
	}
	runJob := func(j *simJob) {
		if opt.Sample != nil {
			j.sampled, j.err = sim.RunSampled(j.cfg, j.w, *opt.Sample)
		} else {
			j.res, j.err = sim.Run(j.cfg, j.w)
		}
	}
	if opt.Concurrent {
		var wg sync.WaitGroup
		for _, j := range jobs {
			wg.Add(1)
			go func(j *simJob) {
				defer wg.Done()
				runJob(j)
			}(j)
		}
		wg.Wait()
	} else {
		for _, j := range jobs {
			runJob(j)
		}
	}
	for _, j := range jobs {
		if j.err != nil {
			return nil, fmt.Errorf("core: %s %s: %w", app.Name, j.name, j.err)
		}
	}
	distillJob := func(j *simJob) Metrics {
		if j.sampled != nil {
			return distillSampled(j.sampled)
		}
		return distill(j.res)
	}
	var sampled map[string]*sim.SampledResult
	if opt.Sample != nil {
		sampled = map[string]*sim.SampledResult{}
		for _, j := range jobs {
			sampled[j.name] = j.sampled
		}
	}

	var checks map[string][]check.Violation
	if opt.Check {
		checks = map[string][]check.Violation{}
		for run, ck := range checkers {
			checks[run] = ck.Violations()
		}
	}
	var profiles map[string]*prof.Profile
	if opt.Prof {
		profiles = map[string]*prof.Profile{}
		for run, pf := range profilers {
			profiles[run] = pf.Profile()
		}
	}

	return &Comparison{
		App:                app.Name,
		Machine:            m,
		Mapping:            cm.Name,
		Baseline:           distillJob(jobs[0]),
		Optimized:          distillJob(jobs[1]),
		Optimal:            distillJob(jobs[2]),
		Observers:          observers,
		Checks:             checks,
		Profiles:           profiles,
		Sampled:            sampled,
		PctArraysOptimized: res.PctArraysOptimized(),
		PctRefsSatisfied:   res.PctRefsSatisfied(),
	}, nil
}

// distillSampled projects a sampled run onto Metrics: scalar metrics take
// the estimate means; the distributional metrics (hop CDFs, the access map)
// come from the aggregated measured windows.
func distillSampled(sr *sim.SampledResult) Metrics {
	return Metrics{
		ExecTime:       int64(sr.Est.ExecTime.Mean + 0.5),
		OnChipNetAvg:   sr.Est.OnChipNetAvg.Mean,
		OffChipNetAvg:  sr.Est.OffChipNetAvg.Mean,
		MemAvg:         sr.Est.MemAvg.Mean,
		QueueAvg:       sr.Est.QueueAvg.Mean,
		OffChipShare:   sr.Est.OffChipShare.Mean,
		AvgQueueOcc:    sr.Est.AvgQueueOcc.Mean,
		HopCDFOn:       sr.Aggregate.HopCDF[noc.OnChip],
		HopCDFOff:      sr.Aggregate.HopCDF[noc.OffChip],
		AccessMap:      sr.Aggregate.AccessMap,
		AppExecTime:    sr.AppExecTime,
		Migrations:     sr.Aggregate.Migrations,
		MigCopyMsgs:    sr.Aggregate.MigCopyMsgs,
		MigStallCycles: sr.Aggregate.MigStallCycles,
	}
}
