package core

import (
	"testing"

	"offchip/internal/layout"
	"offchip/internal/sim"
	"offchip/internal/workloads"
)

func setup8x8(t *testing.T) (layout.Machine, *layout.ClusterMapping) {
	t.Helper()
	m := layout.Default8x8()
	cm, err := layout.MappingM1(m, layout.PlacementCorners(8, 8))
	if err != nil {
		t.Fatal(err)
	}
	return m, cm
}

func quickOpts() Options {
	return Options{} // full traces
}

func TestCompareApsiImproves(t *testing.T) {
	m, cm := setup8x8(t)
	app, _ := workloads.ByName("apsi")
	c, err := Compare(app, m, cm, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("apsi: exec %.1f%%, on-chip net %.1f%%, off-chip net %.1f%%, mem %.1f%% | optimal exec %.1f%%",
		100*c.ExecImprovement(), 100*c.OnChipNetImprovement(),
		100*c.OffChipNetImprovement(), 100*c.MemImprovement(),
		100*c.OptimalExecImprovement())
	if c.ExecImprovement() <= 0 {
		t.Errorf("apsi execution time got worse: %.1f%%", 100*c.ExecImprovement())
	}
	if c.OffChipNetImprovement() <= 0 {
		t.Errorf("off-chip network latency got worse: base %.1f opt %.1f",
			c.Baseline.OffChipNetAvg, c.Optimized.OffChipNetAvg)
	}
	// The compiler result must not beat the optimal scheme's bound by a
	// wide margin (the optimal also removes queueing, so it should win).
	if c.OptimalExecImprovement() <= 0 {
		t.Errorf("optimal scheme got worse than baseline")
	}
	if c.PctArraysOptimized != 100 {
		t.Errorf("apsi arrays optimized = %.0f%%", c.PctArraysOptimized)
	}
}

func TestCompareSharedL2(t *testing.T) {
	m, cm := setup8x8(t)
	m.L2 = layout.SharedL2
	app, _ := workloads.ByName("apsi")
	c, err := Compare(app, m, cm, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("apsi shared L2: exec %.1f%%, off-chip net %.1f%%",
		100*c.ExecImprovement(), 100*c.OffChipNetImprovement())
	if c.ExecImprovement() <= 0 {
		t.Errorf("shared-L2 exec improvement %.1f%%", 100*c.ExecImprovement())
	}
}

func TestComparePageInterleave(t *testing.T) {
	m, cm := setup8x8(t)
	m.Interleave = layout.PageInterleave
	app, _ := workloads.ByName("swim")
	c, err := Compare(app, m, cm, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("swim page interleave: exec %.1f%%, off-chip net %.1f%%",
		100*c.ExecImprovement(), 100*c.OffChipNetImprovement())
	if c.OffChipNetImprovement() <= 0 {
		t.Errorf("page-interleave off-chip net got worse")
	}
}

func TestFirstTouchBaseline(t *testing.T) {
	m, cm := setup8x8(t)
	m.Interleave = layout.PageInterleave
	app, _ := workloads.ByName("apsi")
	opt := quickOpts()
	opt.BaselinePolicy = sim.PolicyFirstTouch
	c, err := Compare(app, m, cm, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("apsi vs first-touch: exec %.1f%%", 100*c.ExecImprovement())
	// apsi's transposed accesses confuse first touch: our scheme should win.
	if c.ExecImprovement() <= 0 {
		t.Errorf("compiler scheme lost to first-touch on apsi by %.1f%%", -100*c.ExecImprovement())
	}
}

func TestMetricsSanity(t *testing.T) {
	m, cm := setup8x8(t)
	app, _ := workloads.ByName("swim")
	c, err := Compare(app, m, cm, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for name, mt := range map[string]Metrics{"base": c.Baseline, "opt": c.Optimized} {
		if mt.ExecTime <= 0 {
			t.Errorf("%s: exec time %d", name, mt.ExecTime)
		}
		if mt.OffChipShare <= 0 || mt.OffChipShare > 1 {
			t.Errorf("%s: off-chip share %v", name, mt.OffChipShare)
		}
		if len(mt.AccessMap) != 64 {
			t.Errorf("%s: access map %d nodes", name, len(mt.AccessMap))
		}
		last := mt.HopCDFOff[len(mt.HopCDFOff)-1]
		if last < 0.999 {
			t.Errorf("%s: off-chip hop CDF tail %v", name, last)
		}
	}
}

func TestOptionOverrides(t *testing.T) {
	m, cm := setup8x8(t)
	cfg := SimConfig(m, cm, Options{MLPWindow: 7, BanksPerMC: 4, NoContention: true})
	if cfg.MLPWindow != 7 {
		t.Errorf("MLPWindow = %d", cfg.MLPWindow)
	}
	if cfg.DRAM.BanksPerMC != 4 {
		t.Errorf("BanksPerMC = %d", cfg.DRAM.BanksPerMC)
	}
	if cfg.NoC.Contention {
		t.Error("contention still on")
	}
	// Defaults pass through.
	def := SimConfig(m, cm, Options{})
	if def.MLPWindow != 2 || !def.NoC.Contention {
		t.Errorf("defaults: %+v", def)
	}
	// Shared L2 gets the replication-free capacity benefit.
	ms := m
	ms.L2 = layout.SharedL2
	if got := SimConfig(ms, cm, Options{}).L2Bytes; got <= def.L2Bytes {
		t.Errorf("shared L2 capacity %d <= private %d", got, def.L2Bytes)
	}
}

func TestCompareWithSampledTraces(t *testing.T) {
	// The sampled-trace path must stay wired (smoke tests depend on it).
	m, cm := setup8x8(t)
	app, _ := workloads.ByName("galgel")
	c, err := Compare(app, m, cm, Options{MaxAccessesPerThread: 100})
	if err != nil {
		t.Fatal(err)
	}
	if c.Baseline.ExecTime <= 0 || c.Optimized.ExecTime <= 0 {
		t.Error("degenerate sampled run")
	}
}

func TestNoContentionAblation(t *testing.T) {
	// With an ideal network the baseline gets faster; the optimization's
	// benefit must shrink (its biggest lever is contention relief).
	m, cm := setup8x8(t)
	app, _ := workloads.ByName("apsi")
	withC, err := Compare(app, m, cm, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ideal, err := Compare(app, m, cm, Options{NoContention: true})
	if err != nil {
		t.Fatal(err)
	}
	if ideal.Baseline.ExecTime >= withC.Baseline.ExecTime {
		t.Errorf("ideal network baseline %d >= contended %d",
			ideal.Baseline.ExecTime, withC.Baseline.ExecTime)
	}
	if ideal.ExecImprovement() >= withC.ExecImprovement() {
		t.Errorf("ideal-network improvement %.1f%% >= contended %.1f%%",
			100*ideal.ExecImprovement(), 100*withC.ExecImprovement())
	}
}
