package core

import (
	"testing"

	"offchip/internal/workloads"
)

// TestFullSuiteShape is the end-to-end calibration check: with full traces
// on the Table 1 platform, every application's execution time must improve
// and the suite averages must land near the paper's headline numbers
// (Figure 16: 13.6% / 66.4% / 45.8% / 20.5%). Absolute factors differ — our
// substrate is a scaled synthetic simulator — but signs and rough bands
// must hold.
func TestFullSuiteShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-trace 13-application sweep")
	}
	m, cm := setup8x8(t)
	var sumExec, sumOn, sumOff float64
	apps := workloads.All()
	for _, app := range apps {
		c, err := Compare(app, m, cm, Options{})
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		t.Logf("%-10s exec %6.1f%% | onchip %6.1f%% | offchip %6.1f%% | mem %6.1f%% | queue %6.1f%% | optimal %6.1f%%",
			app.Name, 100*c.ExecImprovement(), 100*c.OnChipNetImprovement(),
			100*c.OffChipNetImprovement(), 100*c.MemImprovement(),
			100*c.QueueImprovement(), 100*c.OptimalExecImprovement())
		if c.ExecImprovement() < 0 {
			t.Errorf("%s: execution time regressed by %.1f%%", app.Name, -100*c.ExecImprovement())
		}
		if c.OffChipNetImprovement() <= 0 {
			t.Errorf("%s: off-chip network latency regressed", app.Name)
		}
		sumExec += c.ExecImprovement()
		sumOn += c.OnChipNetImprovement()
		sumOff += c.OffChipNetImprovement()
	}
	n := float64(len(apps))
	if avg := 100 * sumExec / n; avg < 10 || avg > 35 {
		t.Errorf("average exec improvement %.1f%%, want [10, 35] (paper: 20.5%%)", avg)
	}
	if avg := 100 * sumOff / n; avg < 25 {
		t.Errorf("average off-chip net improvement %.1f%%, want >= 25 (paper: 66.4%%)", avg)
	}
	if avg := 100 * sumOn / n; avg < 10 {
		t.Errorf("average on-chip net improvement %.1f%%, want >= 10 (paper: 13.6%%)", avg)
	}
}
