// Package deps implements array dependence analysis for affine loop nests:
// ZIV/GCD screening and Banerjee bounds refined by direction vectors. The
// paper's compilation flow runs "a loop transformation guided by array
// dependence analysis" before the layout pass (Section 6.1); this package
// provides that analysis, and in particular the legality check for the
// cache-oriented loop permutation the trace generator applies. (The layout
// transformation itself needs no legality check — data transformations are
// a kind of renaming and are never constrained by dependences.)
package deps

import (
	"fmt"
	"strings"

	"offchip/internal/ir"
	"offchip/internal/linalg"
)

// Direction is one component of a dependence direction vector: the sign of
// i_dst − i_src at that loop level.
type Direction int8

// Direction values.
const (
	Lt   Direction = iota // dst iteration greater ("<" in source order)
	Eq                    // same iteration at this level
	Gt                    // dst iteration smaller (">")
	Star                  // unconstrained
)

func (d Direction) String() string {
	switch d {
	case Lt:
		return "<"
	case Eq:
		return "="
	case Gt:
		return ">"
	default:
		return "*"
	}
}

// Vector is a dependence direction vector, one Direction per loop level
// (outermost first).
type Vector []Direction

func (v Vector) String() string {
	parts := make([]string, len(v))
	for i, d := range v {
		parts[i] = d.String()
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// Lexicographic classifies the vector: +1 if lexicographically positive
// (the first non-Eq is Lt), -1 if negative, 0 if all Eq. Star counts as
// potentially-either and classifies as +1 conservatively only when it is
// the leading non-Eq component — callers that need safety should expand
// Stars first (Feasible never produces Star).
func (v Vector) Lexicographic() int {
	for _, d := range v {
		switch d {
		case Lt, Star:
			return 1
		case Gt:
			return -1
		}
	}
	return 0
}

// Permute returns the vector reordered by perm: out[k] = v[perm[k]].
func (v Vector) Permute(perm []int) Vector {
	out := make(Vector, len(perm))
	for k, p := range perm {
		out[k] = v[p]
	}
	return out
}

// Kind classifies a dependence by the access types of its endpoints.
type Kind int

// Dependence kinds.
const (
	Flow   Kind = iota // write → read
	Anti               // read → write
	Output             // write → write
)

func (k Kind) String() string {
	switch k {
	case Flow:
		return "flow"
	case Anti:
		return "anti"
	default:
		return "output"
	}
}

// Dep is one dependence between two references of a nest, with the set of
// feasible (lexicographically non-negative) direction vectors.
type Dep struct {
	Src, Dst *ir.Ref
	Kind     Kind
	Vectors  []Vector
}

func (d Dep) String() string {
	parts := make([]string, len(d.Vectors))
	for i, v := range d.Vectors {
		parts[i] = v.String()
	}
	return fmt.Sprintf("%s dep %s -> %s %s", d.Kind, d.Src, d.Dst, strings.Join(parts, " "))
}

// bounds returns conservative constant bounds [lo, hi] (inclusive) for each
// loop, widening bounds that depend on outer loops by evaluating them at
// the outer loops' own extreme values.
func bounds(nest *ir.LoopNest) (lo, hi []int64) {
	m := nest.Depth()
	lo = make([]int64, m)
	hi = make([]int64, m)
	// Environments carrying min and max values of enclosing loops.
	envLo := map[string]int64{}
	envHi := map[string]int64{}
	for k, l := range nest.Loops {
		cands := []int64{
			l.Lower.Eval(envLo), l.Lower.Eval(envHi),
			l.Upper.Eval(envLo), l.Upper.Eval(envHi),
		}
		a, b := cands[0], cands[0]
		for _, c := range cands[1:] {
			if c < a {
				a = c
			}
			if c > b {
				b = c
			}
		}
		lo[k], hi[k] = a, b-1 // half-open upper bound
		if hi[k] < lo[k] {
			hi[k] = lo[k]
		}
		envLo[l.Var], envHi[l.Var] = lo[k], hi[k]
	}
	return lo, hi
}

// Analyze returns the feasible direction vectors for a dependence from src
// to dst within the nest (references to the same array; at least one of
// them should be a write for the result to be a true dependence, but the
// test itself is access-type agnostic). Indexed references are treated
// conservatively: every direction vector is feasible.
func Analyze(nest *ir.LoopNest, src, dst *ir.Ref) []Vector {
	if src.Array != dst.Array {
		return nil
	}
	m := nest.Depth()
	if src.Indexed() || dst.Indexed() {
		return allVectors(m)
	}
	vars := nest.Vars()
	aS, oS := src.AccessMatrix(vars)
	aD, oD := dst.AccessMatrix(vars)
	lo, hi := bounds(nest)

	// GCD screening per dimension over the unconstrained (all-Star) space:
	// Σ aS_k·x_k − Σ aD_k·y_k = oD_d − oS_d must have an integer solution.
	for d := 0; d < src.Array.NumDims(); d++ {
		var coeffs []int64
		for k := 0; k < m; k++ {
			coeffs = append(coeffs, aS.At(d, k), aD.At(d, k))
		}
		g := linalg.GCDAll(coeffs...)
		c := oD[d] - oS[d]
		if g == 0 {
			if c != 0 {
				return nil // constant subscripts that differ: independent
			}
			continue
		}
		if c%g != 0 {
			return nil
		}
	}

	// Hierarchical direction refinement: enumerate the 3^m concrete
	// vectors and keep those the Banerjee bounds admit in every dimension.
	var out []Vector
	cur := make(Vector, m)
	var rec func(level int)
	rec = func(level int) {
		if level == m {
			if banerjeeFeasible(aS, oS, aD, oD, lo, hi, cur) {
				v := make(Vector, m)
				copy(v, cur)
				out = append(out, v)
			}
			return
		}
		for _, d := range []Direction{Lt, Eq, Gt} {
			cur[level] = d
			rec(level + 1)
		}
	}
	rec(0)
	return out
}

// allVectors returns every concrete direction vector of length m.
func allVectors(m int) []Vector {
	var out []Vector
	cur := make(Vector, m)
	var rec func(level int)
	rec = func(level int) {
		if level == m {
			v := make(Vector, m)
			copy(v, cur)
			out = append(out, v)
			return
		}
		for _, d := range []Direction{Lt, Eq, Gt} {
			cur[level] = d
			rec(level + 1)
		}
	}
	rec(0)
	return out
}

// banerjeeFeasible reports whether, for every array dimension, the
// difference Σ aS_k·x_k + oS − (Σ aD_k·y_k + oD) can be zero under the
// loop bounds and the per-level direction constraints (x = source
// iteration, y = destination iteration, direction = sign of y − x).
func banerjeeFeasible(aS *linalg.Mat, oS linalg.Vec, aD *linalg.Mat, oD linalg.Vec, lo, hi []int64, dir Vector) bool {
	for d := 0; d < aS.Rows(); d++ {
		minV, maxV := oS[d]-oD[d], oS[d]-oD[d]
		for k := range dir {
			a, b := aS.At(d, k), aD.At(d, k)
			tMin, tMax, ok := termRange(a, b, lo[k], hi[k], dir[k])
			if !ok {
				return false // direction infeasible at this level (empty range)
			}
			minV += tMin
			maxV += tMax
		}
		if minV > 0 || maxV < 0 {
			return false
		}
	}
	return true
}

// termRange bounds t = a·x − b·y for x, y ∈ [lo, hi] under the direction
// constraint on y − x. ok is false when the constrained region is empty
// (e.g. y < x on a single-point range).
func termRange(a, b, lo, hi int64, dir Direction) (tMin, tMax int64, ok bool) {
	eval := func(x, y int64) int64 { return a*x - b*y }
	var pts [][2]int64
	switch dir {
	case Eq:
		pts = [][2]int64{{lo, lo}, {hi, hi}}
	case Lt: // y ≥ x+1: polygon vertices
		if lo+1 > hi {
			return 0, 0, false
		}
		pts = [][2]int64{{lo, lo + 1}, {lo, hi}, {hi - 1, hi}}
	case Gt: // y ≤ x−1
		if lo+1 > hi {
			return 0, 0, false
		}
		pts = [][2]int64{{lo + 1, lo}, {hi, lo}, {hi, hi - 1}}
	default: // Star
		pts = [][2]int64{{lo, lo}, {lo, hi}, {hi, lo}, {hi, hi}}
	}
	tMin, tMax = eval(pts[0][0], pts[0][1]), eval(pts[0][0], pts[0][1])
	for _, p := range pts[1:] {
		v := eval(p[0], p[1])
		if v < tMin {
			tMin = v
		}
		if v > tMax {
			tMax = v
		}
	}
	return tMin, tMax, true
}

// NestDeps computes every dependence of the nest: all pairs of references
// to the same array where at least one endpoint writes. Vectors are
// normalized to be lexicographically non-negative (a negative vector is
// the reversed dependence and is reported from the other endpoint).
func NestDeps(nest *ir.LoopNest) []Dep {
	type access struct {
		ref   *ir.Ref
		write bool
	}
	var accs []access
	for _, s := range nest.Body {
		if s.Write != nil {
			accs = append(accs, access{s.Write, true})
		}
		for _, r := range s.Reads {
			accs = append(accs, access{r, false})
		}
	}
	var out []Dep
	for i, src := range accs {
		for j, dst := range accs {
			if !src.write && !dst.write {
				continue
			}
			if src.ref.Array != dst.ref.Array {
				continue
			}
			if j < i {
				continue // the (dst,src) pair covers the reverse
			}
			vecs := Analyze(nest, src.ref, dst.ref)
			var kept []Vector
			for _, v := range vecs {
				switch v.Lexicographic() {
				case 1:
					kept = append(kept, v)
				case 0:
					if i != j {
						kept = append(kept, v) // loop-independent dependence
					}
				case -1:
					// Reversed: belongs to the (dst → src) dependence; keep
					// it here (reversed) only when this loop will not visit
					// the symmetric pair.
					if j == i {
						continue
					}
					rev := make(Vector, len(v))
					for k, d := range v {
						switch d {
						case Lt:
							rev[k] = Gt
						case Gt:
							rev[k] = Lt
						default:
							rev[k] = d
						}
					}
					_ = rev // symmetric pair handled when roles swap below
				}
			}
			if len(kept) == 0 {
				continue
			}
			kind := Output
			switch {
			case src.write && !dst.write:
				kind = Flow
			case !src.write && dst.write:
				kind = Anti
			}
			out = append(out, Dep{Src: src.ref, Dst: dst.ref, Kind: kind, Vectors: kept})
		}
	}
	return out
}

// PermutationLegal reports whether executing the nest with its loops
// reordered by perm (perm[k] = original index of the loop now at depth k)
// preserves every dependence: each direction vector, permuted, must remain
// lexicographically non-negative.
func PermutationLegal(depsList []Dep, perm []int) bool {
	for _, d := range depsList {
		for _, v := range d.Vectors {
			if v.Permute(perm).Lexicographic() < 0 {
				return false
			}
		}
	}
	return true
}

// InnermostLegal reports whether moving loop li to the innermost position
// (preserving the relative order of the others) is legal for the nest.
func InnermostLegal(nest *ir.LoopNest, li int) bool {
	m := nest.Depth()
	perm := make([]int, 0, m)
	for k := 0; k < m; k++ {
		if k != li {
			perm = append(perm, k)
		}
	}
	perm = append(perm, li)
	return PermutationLegal(NestDeps(nest), perm)
}
