package deps

import (
	"testing"

	"offchip/internal/ir"
)

func nestOf(t *testing.T, src string) *ir.LoopNest {
	t.Helper()
	return ir.MustParse(src).Nests[0]
}

func hasVector(vs []Vector, want string) bool {
	for _, v := range vs {
		if v.String() == want {
			return true
		}
	}
	return false
}

func TestIndependentByGCD(t *testing.T) {
	// A[2i] written, A[2i+1] read: even vs odd elements never overlap.
	n := nestOf(t, `
program p
array A[64]
parfor i = 0 .. 16 {
  A[2*i] = A[2*i+1]
}
`)
	w := n.Body[0].Write
	r := n.Body[0].Reads[0]
	if vs := Analyze(n, w, r); len(vs) != 0 {
		t.Errorf("GCD test missed independence: %v", vs)
	}
}

func TestIndependentByConstants(t *testing.T) {
	n := nestOf(t, `
program p
array A[64][64]
parfor i = 0 .. 8 {
  A[0][i] = A[1][i]
}
`)
	if vs := Analyze(n, n.Body[0].Write, n.Body[0].Reads[0]); len(vs) != 0 {
		t.Errorf("constant rows overlap: %v", vs)
	}
}

func TestStencilFlowDirections(t *testing.T) {
	// A[i][j] = A[i-1][j]: the write at iteration (i,·) is read at
	// (i+1,·): flow dependence with direction (<,=).
	n := nestOf(t, `
program p
array A[64][64]
parfor i = 1 .. 64 {
  for j = 0 .. 64 {
    A[i][j] = A[i-1][j]
  }
}
`)
	vs := Analyze(n, n.Body[0].Write, n.Body[0].Reads[0])
	if !hasVector(vs, "(<,=)") && !hasVector(vs, "(>,=)") {
		t.Errorf("stencil direction missing: %v", vs)
	}
	// (=,=) must be infeasible (the write never reads its own element).
	if hasVector(vs, "(=,=)") {
		t.Errorf("self-dependence reported: %v", vs)
	}
}

func TestBanerjeeBoundsPrune(t *testing.T) {
	// A[i] written for i in [0,8), A[i+100] read: offsets out of range.
	n := nestOf(t, `
program p
array A[256]
parfor i = 0 .. 8 {
  A[i] = A[i+100]
}
`)
	if vs := Analyze(n, n.Body[0].Write, n.Body[0].Reads[0]); len(vs) != 0 {
		t.Errorf("Banerjee missed range independence: %v", vs)
	}
}

func TestIndexedConservative(t *testing.T) {
	n := nestOf(t, `
program p
array A[64]
array idx[64] elem 4
parfor i = 0 .. 64 {
  A[idx[i]] = A[i]
}
`)
	vs := Analyze(n, n.Body[0].Write, n.Body[0].Reads[0])
	if len(vs) != 3 { // 3^1 concrete vectors
		t.Errorf("indexed reference not conservative: %v", vs)
	}
}

func TestNestDepsKinds(t *testing.T) {
	n := nestOf(t, `
program p
array A[64][64]
array B[64][64]
parfor i = 1 .. 63 {
  for j = 1 .. 63 {
    A[i][j] = A[i-1][j] + B[i][j]
  }
}
`)
	ds := NestDeps(n)
	var flow int
	for _, d := range ds {
		if d.Kind == Flow && d.Src.Array.Name == "A" {
			flow++
			if d.String() == "" {
				t.Error("empty rendering")
			}
		}
		if d.Src.Array.Name == "B" {
			t.Errorf("read-only array reported: %v", d)
		}
	}
	if flow == 0 {
		t.Error("flow dependence A[i][j] -> A[i-1][j] missed")
	}
}

func TestVectorLexicographic(t *testing.T) {
	cases := []struct {
		v    Vector
		want int
	}{
		{Vector{Eq, Eq}, 0},
		{Vector{Lt, Gt}, 1},
		{Vector{Eq, Lt}, 1},
		{Vector{Gt, Lt}, -1},
		{Vector{Eq, Gt}, -1},
		{Vector{Star, Gt}, 1}, // conservative
	}
	for _, c := range cases {
		if got := c.v.Lexicographic(); got != c.want {
			t.Errorf("Lexicographic(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestPermutationLegal(t *testing.T) {
	// Dependence (<,=) survives interchange (becomes (=,<)); (<,>) does
	// not (becomes (>,<)).
	fine := []Dep{{Vectors: []Vector{{Lt, Eq}}}}
	if !PermutationLegal(fine, []int{1, 0}) {
		t.Error("(<,=) interchange rejected")
	}
	bad := []Dep{{Vectors: []Vector{{Lt, Gt}}}}
	if PermutationLegal(bad, []int{1, 0}) {
		t.Error("(<,>) interchange accepted")
	}
	if !PermutationLegal(bad, []int{0, 1}) {
		t.Error("identity permutation rejected")
	}
}

func TestInnermostLegal(t *testing.T) {
	// Wavefront: A[i][j] = A[i-1][j] + A[i][j-1]. Interchange of the two
	// loops is legal ((<,=) -> (=,<) and (=,<) -> (<,=), both positive).
	wave := nestOf(t, `
program p
array A[64][64]
parfor i = 1 .. 64 {
  for j = 1 .. 64 {
    A[i][j] = A[i-1][j] + A[i][j-1]
  }
}
`)
	if !InnermostLegal(wave, 0) {
		t.Error("wavefront interchange rejected")
	}
	if !InnermostLegal(wave, 1) {
		t.Error("identity-innermost rejected")
	}

	// Skewed dependence A[i][j] = A[i-1][j+1]: vector (<,>) — moving i
	// innermost flips it negative: illegal.
	skew := nestOf(t, `
program p
array A[64][64]
parfor i = 1 .. 63 {
  for j = 0 .. 63 {
    A[i][j] = A[i-1][j+1]
  }
}
`)
	if InnermostLegal(skew, 0) {
		t.Error("illegal interchange accepted for (<,>) dependence")
	}
	if !InnermostLegal(skew, 1) {
		t.Error("original order rejected")
	}
}

func TestBoundsWithOuterDependence(t *testing.T) {
	// Triangular nest: the j bounds depend on i; dependence analysis must
	// stay conservative and not crash.
	n := nestOf(t, `
program p
array A[64][64]
parfor i = 1 .. 32 {
  for j = i .. 32 {
    A[i][j] = A[i-1][j]
  }
}
`)
	vs := Analyze(n, n.Body[0].Write, n.Body[0].Reads[0])
	if !hasVector(vs, "(<,=)") {
		t.Errorf("triangular stencil dependence missed: %v", vs)
	}
}

func TestDirectionStrings(t *testing.T) {
	if Star.String() != "*" || Lt.String() != "<" || Gt.String() != ">" || Eq.String() != "=" {
		t.Error("direction strings")
	}
	if (Vector{Lt, Eq, Gt}).String() != "(<,=,>)" {
		t.Errorf("vector string = %s", Vector{Lt, Eq, Gt})
	}
	for _, k := range []Kind{Flow, Anti, Output} {
		if k.String() == "" {
			t.Error("kind string empty")
		}
	}
}

func TestDifferentArraysNoDependence(t *testing.T) {
	n := nestOf(t, `
program p
array A[8]
array B[8]
parfor i = 0 .. 8 {
  A[i] = B[i]
}
`)
	if vs := Analyze(n, n.Body[0].Write, n.Body[0].Reads[0]); vs != nil {
		t.Errorf("cross-array dependence: %v", vs)
	}
}
