// Package dram models a memory controller with per-bank row buffers and
// FR-FCFS (first-ready, first-come-first-served) scheduling [16]: among
// pending requests, row-buffer hits are served before older row-buffer
// misses; ties fall back to arrival order. Timing follows the shape of the
// paper's Table 1 DDR3-1600 part: a row-buffer hit costs one CAS, a closed
// bank adds activation, and a conflict adds precharge.
//
// Controllers publish through the observability registry: request mix
// counters (row hits/misses/conflicts), per-bank served counts for the
// -report hottest-bank table, and the Figure 18 queue occupancy as a
// time-weighted gauge. With a tracer attached, every enqueue and every
// bank service (tagged with its row outcome) becomes a trace event.
package dram

import (
	"fmt"
	"strconv"

	"offchip/internal/engine"
	"offchip/internal/obs"
)

// Config sets the controller parameters.
type Config struct {
	BanksPerMC int
	RowBytes   int64 // row-buffer size (Table 1: 4 KB)

	// Service times in core cycles.
	TRowHit      int64 // open-row access (CAS)
	TRowMiss     int64 // closed bank (RCD + CAS)
	TRowConflict int64 // open different row (RP + RCD + CAS)

	// StarveLimit caps FR-FCFS reordering: once the oldest pending request
	// for a bank has been passed over this many times by younger row-buffer
	// hits, the bank reverts to strict FCFS until it is served. Real
	// schedulers carry such a cap for exactly this reason — an unbounded
	// hit-first policy starves a conflicting stream forever. Zero or
	// negative selects DefaultStarveLimit.
	StarveLimit int
}

// DefaultStarveLimit is the bypass cap used when Config.StarveLimit is
// unset.
const DefaultStarveLimit = 8

// EffectiveStarveLimit returns the bypass cap a controller with this
// configuration enforces (the invariant checker asserts it at every
// service).
func EffectiveStarveLimit(cfg Config) int {
	if cfg.StarveLimit <= 0 {
		return DefaultStarveLimit
	}
	return cfg.StarveLimit
}

// DefaultConfig returns timing in the shape of Micron DDR3-1600 as seen
// from a 2 GHz core: ~20 cycles CAS, ~40 activate+CAS, ~60 with precharge;
// 4 KB rows (Table 1), with 16 banks per controller (Table 1's 4 banks per
// device across four ranks).
func DefaultConfig() Config {
	return Config{
		BanksPerMC:   16,
		RowBytes:     4096,
		TRowHit:      20,
		TRowMiss:     40,
		TRowConflict: 60,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.BanksPerMC <= 0 {
		return fmt.Errorf("dram: %d banks", c.BanksPerMC)
	}
	if c.RowBytes <= 0 {
		return fmt.Errorf("dram: row size %d", c.RowBytes)
	}
	if c.TRowHit <= 0 || c.TRowMiss < c.TRowHit || c.TRowConflict < c.TRowMiss {
		return fmt.Errorf("dram: inconsistent timings hit=%d miss=%d conflict=%d",
			c.TRowHit, c.TRowMiss, c.TRowConflict)
	}
	return nil
}

// Completion receives a request's completion time. Callers that care about
// the allocation-free hot path implement it on their pooled per-access
// event object; Submit wraps legacy func callbacks in it.
type Completion interface {
	MemDone(finish int64)
}

// Probe observes controller activity for the invariant checker
// (internal/check implements it); attach via the Controller.Probe field
// before submitting requests.
type Probe interface {
	// Enqueue fires on every accepted request.
	Enqueue(mc, bank int, at int64)
	// Serve fires when a bank starts servicing a request: arrive is the
	// enqueue time, start/finish the service interval, bypassed how many
	// times younger row hits were served ahead of this request.
	Serve(mc, bank int, arrive, start, finish int64, bypassed int)
}

// funcCompletion adapts a legacy callback to Completion. Func values are
// pointer-shaped, so the conversion itself does not allocate.
type funcCompletion func(finish int64)

func (f funcCompletion) MemDone(finish int64) { f(finish) }

// request is one in-flight controller request. Requests are pooled on the
// controller and double as the engine event for their own completion
// (engine.Handler), so steady-state service allocates nothing.
type request struct {
	addr     int64
	arrive   int64
	bank     int
	row      int64
	finish   int64
	bypassed int // times a younger row hit was served ahead of this request
	done     Completion
	c        *Controller
	next     *request // controller free-list
}

// Handle is the bank-service completion event: deliver the finish time to
// the submitter, then let the controller schedule its next picks. The
// request recycles itself first — the completion may immediately submit a
// new request, which is allowed to reuse this node.
func (r *request) Handle(int64) {
	c, done, finish := r.c, r.done, r.finish
	c.freeReq(r)
	done.MemDone(finish)
	c.dispatch()
}

type bank struct {
	openRow int64 // -1 when closed
	freeAt  int64
}

// Controller is one memory controller instance.
type Controller struct {
	ID   int
	cfg  Config
	sim  *engine.Sim
	obs  *obs.Observer
	comp string // trace component name, "mc0"…

	banks    []bank
	pending  []*request
	freeReqs *request // recycled request nodes

	// OnSubmit, when set, observes every submitted (local) address; used by
	// tests and diagnostics.
	OnSubmit func(addr int64)

	// Probe, when set, observes every enqueue and service — the invariant
	// checker's timing and starvation-bound hook. Nil costs one check per
	// request.
	Probe Probe

	starve int // effective StarveLimit

	// Aggregate stats, mirrored into registry counters.
	Submitted       int64 // requests accepted (conservation: Submitted == Served at drain)
	Served          int64 // requests completed
	TotalMemLatency int64 // Σ (finish − arrive): the "memory latency" of Figure 4
	TotalQueueWait  int64 // Σ (service start − arrive)
	RowHits         int64

	// Plain time-weighted queue-length accumulator. It mirrors the registry
	// gauge so QueueOccupancy survives runs with a null observer (sampled
	// quiet windows), which register no metrics at all.
	qInt  int64
	qLast int64
	qCur  int64

	// Registry-backed statistics.
	servedC    *obs.Counter
	rowHitC    *obs.Counter
	rowMissC   *obs.Counter
	rowConflC  *obs.Counter
	queueWaitC *obs.Counter
	memLatC    *obs.Counter
	queueLen   *obs.TimeWeighted // Figure 18's time-averaged queue length
	bankServed []*obs.Counter
}

// New returns a controller bound to the simulation clock, publishing into
// the observer (nil gets a private registry).
func New(id int, cfg Config, sim *engine.Sim, o *obs.Observer) *Controller {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	o = obs.OrNew(o)
	c := &Controller{
		ID: id, cfg: cfg, sim: sim, obs: o,
		comp:   "mc" + strconv.Itoa(id),
		banks:  make([]bank, cfg.BanksPerMC),
		starve: EffectiveStarveLimit(cfg),
	}
	for i := range c.banks {
		c.banks[i].openRow = -1
	}
	mcLabel := "mc=" + strconv.Itoa(id)
	c.servedC = o.Reg.Counter("dram", "served", mcLabel)
	c.rowHitC = o.Reg.Counter("dram", "row_hits", mcLabel)
	c.rowMissC = o.Reg.Counter("dram", "row_misses", mcLabel)
	c.rowConflC = o.Reg.Counter("dram", "row_conflicts", mcLabel)
	c.queueWaitC = o.Reg.Counter("dram", "queue_wait_cycles", mcLabel)
	c.memLatC = o.Reg.Counter("dram", "mem_latency_cycles", mcLabel)
	c.queueLen = o.Reg.TimeWeighted("dram", "queue_len", mcLabel)
	c.bankServed = make([]*obs.Counter, cfg.BanksPerMC)
	for b := range c.bankServed {
		c.bankServed[b] = o.Reg.Counter("dram", "bank_served", mcLabel, "bank="+strconv.Itoa(b))
	}
	return c
}

// bankOf maps a local address to its bank and row using permutation-based
// (XOR-folded) bank interleaving, the standard defense against bank
// conflicts between regularly strided streams.
func (c *Controller) bankOf(addr int64) (int, int64) {
	rowID := addr / c.cfg.RowBytes
	bank := (rowID ^ (rowID >> 4) ^ (rowID >> 9)) % int64(c.cfg.BanksPerMC)
	return int(bank), rowID / int64(c.cfg.BanksPerMC)
}

// allocReq hands out a pooled request node bound to this controller.
func (c *Controller) allocReq() *request {
	r := c.freeReqs
	if r == nil {
		return &request{c: c}
	}
	c.freeReqs = r.next
	r.next = nil
	return r
}

// freeReq recycles a completed request, dropping the Completion reference so
// pooled caller events are not retained.
func (c *Controller) freeReq(r *request) {
	r.done = nil
	r.next = c.freeReqs
	c.freeReqs = r
}

// SubmitTo enqueues a request at the current simulation time; done.MemDone
// fires at the completion time. This is the allocation-free path: the
// request node comes from the controller's pool and doubles as the
// completion event.
func (c *Controller) SubmitTo(addr int64, done Completion) {
	if c.OnSubmit != nil {
		c.OnSubmit(addr)
	}
	b, row := c.bankOf(addr)
	now := c.sim.Now()
	r := c.allocReq()
	r.addr, r.arrive, r.bank, r.row, r.done = addr, now, b, row, done
	r.bypassed = 0
	c.Submitted++
	c.pending = append(c.pending, r)
	c.setQueueLen(now)
	if c.Probe != nil {
		c.Probe.Enqueue(c.ID, b, now)
	}
	if tr := c.obs.Tracer; tr.Enabled() {
		tr.Emit(now, "dram", "enqueue", c.comp, 0,
			"bank="+strconv.Itoa(b), "addr="+strconv.FormatInt(addr, 16))
	}
	c.dispatch()
}

// Submit enqueues a request with a func callback — the compatibility shim
// over SubmitTo for call sites that have not migrated to pooled Completions;
// the closure costs one allocation per call.
func (c *Controller) Submit(addr int64, onDone func(finish int64)) {
	c.SubmitTo(addr, funcCompletion(onDone))
}

// dispatch serves every idle bank its FR-FCFS pick.
func (c *Controller) dispatch() {
	now := c.sim.Now()
	for bi := range c.banks {
		if c.banks[bi].freeAt > now {
			continue
		}
		idx := c.pick(bi)
		if idx < 0 {
			continue
		}
		r := c.pending[idx]
		c.pending = append(c.pending[:idx], c.pending[idx+1:]...)
		c.setQueueLen(now)

		var dur int64
		var outcome string
		switch {
		case c.banks[bi].openRow == r.row:
			dur = c.cfg.TRowHit
			outcome = "row-hit"
			c.RowHits++
			c.rowHitC.Inc()
		case c.banks[bi].openRow == -1:
			dur = c.cfg.TRowMiss
			outcome = "row-miss"
			c.rowMissC.Inc()
		default:
			dur = c.cfg.TRowConflict
			outcome = "row-conflict"
			c.rowConflC.Inc()
		}
		c.banks[bi].openRow = r.row
		c.banks[bi].freeAt = now + dur

		finish := now + dur
		c.Served++
		c.TotalQueueWait += now - r.arrive
		c.TotalMemLatency += finish - r.arrive
		c.servedC.Inc()
		c.bankServed[bi].Inc()
		c.queueWaitC.Add(now - r.arrive)
		c.memLatC.Add(finish - r.arrive)
		if tr := c.obs.Tracer; tr.Enabled() {
			tr.Emit(now, "dram", outcome, c.comp, dur, "bank="+strconv.Itoa(bi))
		}
		if c.Probe != nil {
			c.Probe.Serve(c.ID, bi, r.arrive, now, finish, r.bypassed)
		}
		r.finish = finish
		c.sim.Schedule(finish, r)
	}
}

// pick returns the index of the FR-FCFS choice for the bank, or -1: the
// oldest row-buffer hit if any, else the oldest request for the bank —
// bounded by the starvation cap: once the oldest pending request for the
// bank has been bypassed StarveLimit times by younger hits, the bank
// serves strictly in arrival order until it drains.
func (c *Controller) pick(bank int) int {
	oldest, hit := -1, -1
	for i, r := range c.pending {
		if r.bank != bank {
			continue
		}
		if oldest == -1 {
			oldest = i
		}
		if r.row == c.banks[bank].openRow {
			hit = i // pending is in arrival order: first hit is oldest hit
			break
		}
	}
	if hit == -1 || hit == oldest {
		return oldest
	}
	// Bypass counts are non-increasing in arrival order (every bypass
	// increments all requests older than the served hit), so the oldest
	// request's count alone decides whether the cap is hit for this bank.
	if c.pending[oldest].bypassed >= c.starve {
		return oldest
	}
	for _, r := range c.pending[:hit] {
		if r.bank == bank {
			r.bypassed++
		}
	}
	return hit
}

// setQueueLen folds the elapsed interval at the previous queue length into
// the plain accumulator and mirrors the new length into the registry gauge.
func (c *Controller) setQueueLen(now int64) {
	n := int64(len(c.pending))
	c.qInt += c.qCur * (now - c.qLast)
	c.qLast = now
	c.qCur = n
	c.queueLen.Set(now, n)
}

// QueueOccupancy returns the time-averaged queue length over [0, until]
// (the bank queue utilization of Figure 18), extending the last recorded
// length to until. It reads the controller's own accumulator, not the
// registry gauge, so it holds under a null observer.
func (c *Controller) QueueOccupancy(until int64) float64 {
	if until <= 0 {
		return 0
	}
	return float64(c.qInt+c.qCur*(until-c.qLast)) / float64(until)
}

// BankServed returns the number of requests the bank has completed.
func (c *Controller) BankServed(bank int) int64 { return c.bankServed[bank].Value() }

// AvgMemLatency returns the mean request latency (queue + service).
func (c *Controller) AvgMemLatency() float64 {
	if c.Served == 0 {
		return 0
	}
	return float64(c.TotalMemLatency) / float64(c.Served)
}

// Outstanding returns the current queue depth (for tests).
func (c *Controller) Outstanding() int { return len(c.pending) }
