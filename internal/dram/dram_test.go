package dram

import (
	"testing"

	"offchip/internal/engine"
)

func TestSingleRequestClosedBank(t *testing.T) {
	var s engine.Sim
	c := New(0, DefaultConfig(), &s, nil)
	var done int64 = -1
	s.At(0, func() {
		c.Submit(0, func(finish int64) { done = finish })
	})
	s.Run()
	if done != DefaultConfig().TRowMiss {
		t.Errorf("closed-bank service finished at %d, want %d", done, DefaultConfig().TRowMiss)
	}
	if c.Served != 1 || c.TotalQueueWait != 0 {
		t.Errorf("served=%d queueWait=%d", c.Served, c.TotalQueueWait)
	}
}

func TestRowBufferHitFasterThanConflict(t *testing.T) {
	cfg := DefaultConfig()
	run := func(second int64) (gap int64) {
		var s engine.Sim
		c := New(0, cfg, &s, nil)
		var t1, t2 int64
		s.At(0, func() { c.Submit(0, func(f int64) { t1 = f }) })
		// Submit the second after the first completes, so no queueing.
		s.At(cfg.TRowMiss, func() { c.Submit(second, func(f int64) { t2 = f }) })
		s.Run()
		return t2 - t1
	}
	// Same row (addr 64 shares row 0 with addr 0): row hit.
	if g := run(64); g != cfg.TRowHit {
		t.Errorf("row hit gap = %d, want %d", g, cfg.TRowHit)
	}
	// Same bank, different row: conflict. Find an address that the XOR
	// bank permutation maps to bank 0 with a different row.
	var s0 engine.Sim
	probe := New(0, cfg, &s0, nil)
	bank0, row0 := probe.bankOf(0)
	conflictAddr := int64(-1)
	for r := int64(1); r < 4096; r++ {
		if b, row := probe.bankOf(r * cfg.RowBytes); b == bank0 && row != row0 {
			conflictAddr = r * cfg.RowBytes
			break
		}
	}
	if conflictAddr < 0 {
		t.Fatal("no conflicting address found")
	}
	if g := run(conflictAddr); g != cfg.TRowConflict {
		t.Errorf("conflict gap = %d, want %d", g, cfg.TRowConflict)
	}
}

func TestBanksServeInParallel(t *testing.T) {
	cfg := DefaultConfig()
	var s engine.Sim
	c := New(0, cfg, &s, nil)
	finishes := make([]int64, cfg.BanksPerMC)
	s.At(0, func() {
		for b := 0; b < cfg.BanksPerMC; b++ {
			bb := b
			// One request per bank: bank b gets row-id b.
			c.Submit(int64(b)*cfg.RowBytes, func(f int64) { finishes[bb] = f })
		}
	})
	s.Run()
	for b, f := range finishes {
		if f != cfg.TRowMiss {
			t.Errorf("bank %d finished at %d, want %d (parallel service)", b, f, cfg.TRowMiss)
		}
	}
}

func TestFRFCFSPrefersRowHit(t *testing.T) {
	cfg := DefaultConfig()
	var s engine.Sim
	c := New(0, cfg, &s, nil)
	var order []string
	// Find a conflicting row for bank 0 under the XOR permutation.
	bank0, row0 := c.bankOf(0)
	conflictAddr := int64(-1)
	for r := int64(1); r < 4096; r++ {
		if b, row := c.bankOf(r * cfg.RowBytes); b == bank0 && row != row0 {
			conflictAddr = r * cfg.RowBytes
			break
		}
	}
	if conflictAddr < 0 {
		t.Fatal("no conflicting address found")
	}
	s.At(0, func() {
		// Occupy bank 0 with row 0.
		c.Submit(0, func(int64) { order = append(order, "first") })
		// Then queue: a conflict request (older) and a row-hit (younger).
		c.Submit(conflictAddr, func(int64) { order = append(order, "conflict") })
		c.Submit(128, func(int64) { order = append(order, "hit") })
	})
	s.Run()
	if len(order) != 3 || order[0] != "first" || order[1] != "hit" || order[2] != "conflict" {
		t.Errorf("service order = %v, want [first hit conflict]", order)
	}
	if c.RowHits != 1 {
		t.Errorf("RowHits = %d", c.RowHits)
	}
}

func TestQueueWaitAccounted(t *testing.T) {
	cfg := DefaultConfig()
	var s engine.Sim
	c := New(0, cfg, &s, nil)
	var secondFinish int64
	s.At(0, func() {
		c.Submit(0, func(int64) {})
		c.Submit(64, func(f int64) { secondFinish = f }) // same bank, row hit after wait
	})
	s.Run()
	// Second waits TRowMiss then is served as a hit.
	want := cfg.TRowMiss + cfg.TRowHit
	if secondFinish != want {
		t.Errorf("second finish = %d, want %d", secondFinish, want)
	}
	if c.TotalQueueWait != cfg.TRowMiss {
		t.Errorf("TotalQueueWait = %d, want %d", c.TotalQueueWait, cfg.TRowMiss)
	}
	if got := c.AvgMemLatency(); got != float64(cfg.TRowMiss+want)/2 {
		t.Errorf("AvgMemLatency = %v", got)
	}
}

func TestQueueOccupancy(t *testing.T) {
	cfg := DefaultConfig()
	var s engine.Sim
	c := New(0, cfg, &s, nil)
	s.At(0, func() {
		for i := 0; i < 8; i++ {
			c.Submit(int64(i)*64, func(int64) {}) // all same bank/row area
		}
	})
	end := s.Run()
	occ := c.QueueOccupancy(end)
	if occ <= 0 {
		t.Errorf("queue occupancy = %v, want > 0 for a backlogged bank", occ)
	}
	if c.Outstanding() != 0 {
		t.Errorf("outstanding = %d after drain", c.Outstanding())
	}
	if c.QueueOccupancy(0) != 0 {
		t.Error("occupancy over empty interval")
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
	bad := good
	bad.BanksPerMC = 0
	if bad.Validate() == nil {
		t.Error("0 banks accepted")
	}
	bad = good
	bad.TRowConflict = 1
	if bad.Validate() == nil {
		t.Error("conflict < miss accepted")
	}
}
