package dram

import (
	"testing"

	"offchip/internal/engine"
)

// frfcfsAddrs resolves the symbolic addresses the FR-FCFS table tests use:
// three distinct rows on bank 0 plus same-row aliases. The XOR-permuted
// bank function makes literal addresses unreadable, so the rows are found
// by probing.
func frfcfsAddrs(t *testing.T, cfg Config) map[string]int64 {
	t.Helper()
	var s engine.Sim
	probe := New(0, cfg, &s, nil)
	bank0, row0 := probe.bankOf(0)
	addrs := map[string]int64{
		"r0":  0,
		"r0b": 64,  // same row as r0, different column → row-buffer hit
		"r0c": 128, // ditto
	}
	var rows []int64
	for r := int64(1); r < 1<<14 && len(rows) < 2; r++ {
		a := r * cfg.RowBytes
		if b, row := probe.bankOf(a); b == bank0 && row != row0 {
			dup := false
			for _, seen := range rows {
				if _, sr := probe.bankOf(seen); sr == row {
					dup = true
				}
			}
			if !dup {
				rows = append(rows, a)
			}
		}
	}
	if len(rows) < 2 {
		t.Fatal("could not find two extra rows on bank 0")
	}
	addrs["r1"], addrs["r2"] = rows[0], rows[1]
	// A row on a different bank, for the independence case.
	for r := int64(0); r < 1<<14; r++ {
		a := r * cfg.RowBytes
		if b, _ := probe.bankOf(a); b != bank0 {
			addrs["otherbank"] = a
			break
		}
	}
	return addrs
}

// TestFRFCFSEdgeCases drives the controller through the scheduling corner
// cases as a table: row-hit priority over older misses, arrival-order ties
// within a priority class, bank-busy backpressure, single-request queues,
// and bank independence. Timings use DefaultConfig: hit 20, miss 40,
// conflict 60.
func TestFRFCFSEdgeCases(t *testing.T) {
	cfg := DefaultConfig()
	type req struct {
		at   int64
		addr string
	}
	cases := []struct {
		name          string
		reqs          []req
		wantFinish    []int64
		wantQueueWait int64
		wantRowHits   int64
	}{
		{
			// A lone request on a closed bank: one row miss, no queueing.
			name:          "single-request-queue",
			reqs:          []req{{0, "r0"}},
			wantFinish:    []int64{40},
			wantQueueWait: 0,
			wantRowHits:   0,
		},
		{
			// The younger row-hit (r0b, arrives t=2) jumps the older
			// conflicting request (r1, arrives t=1) once the bank frees.
			name:          "hit-beats-older-miss",
			reqs:          []req{{0, "r0"}, {1, "r1"}, {2, "r0b"}},
			wantFinish:    []int64{40, 120, 60},
			wantQueueWait: (40 - 2) + (60 - 1),
			wantRowHits:   1,
		},
		{
			// Every queued hit drains before the older conflict.
			name:          "hits-drain-first",
			reqs:          []req{{0, "r0"}, {1, "r1"}, {2, "r0b"}, {3, "r0c"}},
			wantFinish:    []int64{40, 140, 60, 80},
			wantQueueWait: (40 - 2) + (60 - 3) + (80 - 1),
			wantRowHits:   2,
		},
		{
			// No hits pending: equal-priority conflicts are served in
			// arrival order (the FCFS half of FR-FCFS).
			name:          "arrival-order-tie-conflicts",
			reqs:          []req{{0, "r0"}, {1, "r2"}, {2, "r1"}},
			wantFinish:    []int64{40, 100, 160},
			wantQueueWait: (40 - 1) + (100 - 2),
			wantRowHits:   0,
		},
		{
			// Same two conflicts, swapped arrival: the serve order swaps
			// with them — the tie really is broken by arrival, not address.
			name:          "arrival-order-tie-swapped",
			reqs:          []req{{0, "r0"}, {1, "r1"}, {2, "r2"}},
			wantFinish:    []int64{40, 100, 160},
			wantQueueWait: (40 - 1) + (100 - 2),
			wantRowHits:   0,
		},
		{
			// Bank-busy backpressure: a burst to one row serializes on the
			// single bank, each service starting exactly when the bank
			// frees, never sooner.
			name:          "bank-busy-backpressure",
			reqs:          []req{{0, "r0"}, {0, "r0b"}, {0, "r0c"}},
			wantFinish:    []int64{40, 60, 80},
			wantQueueWait: 40 + 60,
			wantRowHits:   2,
		},
		{
			// Requests to different banks do not backpressure each other.
			name:          "banks-independent",
			reqs:          []req{{0, "r0"}, {0, "otherbank"}},
			wantFinish:    []int64{40, 40},
			wantQueueWait: 0,
			wantRowHits:   0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			addrs := frfcfsAddrs(t, cfg)
			var s engine.Sim
			c := New(0, cfg, &s, nil)
			finishes := make([]int64, len(tc.reqs))
			for i, r := range tc.reqs {
				i, r := i, r
				s.At(r.at, func() {
					c.Submit(addrs[r.addr], func(f int64) { finishes[i] = f })
				})
			}
			s.Run()
			for i, want := range tc.wantFinish {
				if finishes[i] != want {
					t.Errorf("request %d (%s@%d) finished at %d, want %d",
						i, tc.reqs[i].addr, tc.reqs[i].at, finishes[i], want)
				}
			}
			if c.TotalQueueWait != tc.wantQueueWait {
				t.Errorf("total queue wait = %d, want %d", c.TotalQueueWait, tc.wantQueueWait)
			}
			if c.RowHits != tc.wantRowHits {
				t.Errorf("row hits = %d, want %d", c.RowHits, tc.wantRowHits)
			}
			if c.Served != int64(len(tc.reqs)) {
				t.Errorf("served = %d, want %d", c.Served, len(tc.reqs))
			}
		})
	}
}
