package dram

import (
	"testing"

	"offchip/internal/engine"
)

// recordingProbe implements Probe and tracks the worst bypass count seen at
// service time — the quantity the invariant checker bounds on every run.
type recordingProbe struct {
	enqueues   int
	serves     int
	maxBypass  int
	orderBreak bool // start before arrive, or finish before start
}

func (p *recordingProbe) Enqueue(mc, bank int, at int64) { p.enqueues++ }

func (p *recordingProbe) Serve(mc, bank int, arrive, start, finish int64, bypassed int) {
	p.serves++
	if bypassed > p.maxBypass {
		p.maxBypass = bypassed
	}
	if start < arrive || finish < start {
		p.orderBreak = true
	}
}

// TestFRFCFSStarvationBound drives the bounded hit-first bypass as a table:
// once the oldest pending request for a bank has been passed over
// StarveLimit times by younger row-buffer hits, the bank reverts to strict
// arrival order until the starved request is served. Each case pins the
// exact finish times, so a cap that is off by one shifts a whole tail of
// the schedule and fails loudly. Timings use DefaultConfig: hit 20,
// miss 40, conflict 60.
func TestFRFCFSStarvationBound(t *testing.T) {
	type req struct {
		at   int64
		addr string
	}
	// Shared shape: an opening miss to r0 (serves 0–40 and opens the row), a
	// conflicting request r1 at t=1, then a stream of row hits to r0 that
	// would starve r1 forever under unbounded FR-FCFS.
	openThenConflict := func(hits int) []req {
		reqs := []req{{0, "r0"}, {1, "r1"}}
		aliases := []string{"r0b", "r0c", "r0d", "r0e", "r0f"}
		for i := 0; i < hits; i++ {
			reqs = append(reqs, req{int64(2 + i), aliases[i]})
		}
		return reqs
	}
	cases := []struct {
		name          string
		limit         int // Config.StarveLimit (0 → DefaultStarveLimit)
		reqs          []req
		wantFinish    []int64
		wantRowHits   int64
		wantMaxBypass int
	}{
		{
			// Cap 2, five hits queued: exactly two hits jump r1, then the
			// bank serves r1 (conflict, closing its row against the
			// remaining hits), then drains in arrival order.
			name:          "cap-reverts-to-fcfs",
			limit:         2,
			reqs:          openThenConflict(5),
			wantFinish:    []int64{40, 140, 60, 80, 200, 220, 240},
			wantRowHits:   4, // two pre-cap hits + two re-opened-row hits at the tail
			wantMaxBypass: 2,
		},
		{
			// Cap 2, only two hits queued: the cap is reached but never
			// binds — both hits drain first, as plain FR-FCFS would.
			name:          "under-cap-hits-drain",
			limit:         2,
			reqs:          openThenConflict(2),
			wantFinish:    []int64{40, 140, 60, 80},
			wantRowHits:   2,
			wantMaxBypass: 2,
		},
		{
			// Cap 1 is the tightest legal bound: one hit jumps, then strict
			// arrival order.
			name:          "cap-one",
			limit:         1,
			reqs:          openThenConflict(5),
			wantFinish:    []int64{40, 120, 60, 180, 200, 220, 240},
			wantRowHits:   4,
			wantMaxBypass: 1,
		},
		{
			// Default cap (8) with a five-hit stream: the cap never binds,
			// so the schedule is identical to unbounded FR-FCFS — the edge
			// cases in TestFRFCFSEdgeCases are unaffected by the bound.
			name:          "default-cap-never-binds",
			limit:         0,
			reqs:          openThenConflict(5),
			wantFinish:    []int64{40, 200, 60, 80, 100, 120, 140},
			wantRowHits:   5,
			wantMaxBypass: 5,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.StarveLimit = tc.limit
			addrs := frfcfsAddrs(t, cfg)
			// Extra same-row aliases for the longer hit streams (RowBytes is
			// 4096, so these stay in r0's row).
			addrs["r0d"], addrs["r0e"], addrs["r0f"] = 192, 256, 320
			var s engine.Sim
			c := New(0, cfg, &s, nil)
			probe := &recordingProbe{}
			c.Probe = probe
			finishes := make([]int64, len(tc.reqs))
			for i, r := range tc.reqs {
				i, r := i, r
				s.At(r.at, func() {
					c.Submit(addrs[r.addr], func(f int64) { finishes[i] = f })
				})
			}
			s.Run()
			for i, want := range tc.wantFinish {
				if finishes[i] != want {
					t.Errorf("request %d (%s@%d) finished at %d, want %d",
						i, tc.reqs[i].addr, tc.reqs[i].at, finishes[i], want)
				}
			}
			if c.RowHits != tc.wantRowHits {
				t.Errorf("row hits = %d, want %d", c.RowHits, tc.wantRowHits)
			}
			if probe.maxBypass != tc.wantMaxBypass {
				t.Errorf("max bypass = %d, want %d", probe.maxBypass, tc.wantMaxBypass)
			}
			if limit := EffectiveStarveLimit(cfg); probe.maxBypass > limit {
				t.Errorf("starvation bound violated: bypassed %d > limit %d", probe.maxBypass, limit)
			}
			if probe.enqueues != len(tc.reqs) || probe.serves != len(tc.reqs) {
				t.Errorf("probe saw %d enqueues, %d serves, want %d of each",
					probe.enqueues, probe.serves, len(tc.reqs))
			}
			if probe.orderBreak {
				t.Error("probe saw a service interval out of order (start<arrive or finish<start)")
			}
		})
	}
}
