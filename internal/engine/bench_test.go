package engine

import "testing"

// benchHandler is a self-rescheduling typed event: the steady-state shape of
// the simulator's hot loop (an in-flight access bouncing between substrates).
type benchHandler struct {
	s         *Sim
	remaining int
	delta     int64
}

func (h *benchHandler) Handle(now int64) {
	if h.remaining > 0 {
		h.remaining--
		h.s.Schedule(now+h.delta, h)
	}
}

// benchDelta spreads a handler population over the regimes the simulator
// produces: mostly short cache/NoC latencies inside the wheel window, with
// one in sixteen far enough out to ride the overflow heap.
func benchDelta(i int) int64 {
	if i%16 == 0 {
		return int64(2*wheelSize + 37*i)
	}
	return int64(1 + (i*7)%200)
}

// BenchmarkSteadyStateDispatchTyped is the benchmark the bench-smoke CI gate
// pins at 0 allocs/op: schedule+dispatch of pooled typed events with warm
// free-lists, i.e. the simulator's steady state. If this ever allocates, the
// hot path regressed.
func BenchmarkSteadyStateDispatchTyped(b *testing.B) {
	var s Sim
	const population = 64
	hs := make([]*benchHandler, population)
	for i := range hs {
		hs[i] = &benchHandler{s: &s, delta: benchDelta(i)}
	}
	seed := func(events int) {
		per := events / population
		for i, h := range hs {
			h.remaining = per
			s.Schedule(s.Now()+benchDelta(i), h)
		}
		s.Run()
	}
	seed(4 * population) // warm the node slab, overflow heap, and free-lists
	b.ReportAllocs()
	b.ResetTimer()
	seed(b.N)
}

// BenchmarkSteadyStateDispatchClosure measures the same loop through the
// At(func()) compatibility shim with a hoisted (reused) closure: the shim
// itself adds no allocation over Schedule. Real unmigrated call sites that
// capture per-event state still pay one closure allocation per event —
// that cost lives at the caller, which is why the simulator's hot paths
// use pooled typed Handlers.
func BenchmarkSteadyStateDispatchClosure(b *testing.B) {
	var s Sim
	b.ReportAllocs()
	b.ResetTimer()
	remaining := b.N
	var step func()
	step = func() {
		if remaining > 0 {
			remaining--
			s.After(int64(1+remaining%200), step)
		}
	}
	s.After(1, step)
	s.Run()
}

// benchOracleHandler mirrors benchHandler on the container/heap oracle.
type benchOracleHandler struct {
	s         *heapSim
	remaining int
	delta     int64
}

func (h *benchOracleHandler) Handle(now int64) {
	if h.remaining > 0 {
		h.remaining--
		h.s.Schedule(now+h.delta, h)
	}
}

// BenchmarkSteadyStateDispatchHeapOracle runs the typed workload on the
// original container/heap implementation (the test oracle) — the "before"
// number the timing wheel is measured against.
func BenchmarkSteadyStateDispatchHeapOracle(b *testing.B) {
	s := &heapSim{}
	const population = 64
	hs := make([]*benchOracleHandler, population)
	for i := range hs {
		hs[i] = &benchOracleHandler{s: s, delta: benchDelta(i)}
	}
	seed := func(events int) {
		per := events / population
		for i, h := range hs {
			h.remaining = per
			s.Schedule(s.Now()+benchDelta(i), h)
		}
		s.Run()
	}
	seed(4 * population)
	b.ReportAllocs()
	b.ResetTimer()
	seed(b.N)
}

// BenchmarkScheduleOnly isolates the enqueue cost (free-list pop + wheel or
// overflow insert), draining outside the timed region.
func BenchmarkScheduleOnly(b *testing.B) {
	var s Sim
	h := &benchHandler{s: &s}
	for i := 0; i < b.N; i++ { // warm the slab to this benchmark's peak
		s.Schedule(int64(i%512), h)
	}
	s.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Schedule(s.Now()+int64(i%512), h)
	}
	b.StopTimer()
	s.Run()
}
