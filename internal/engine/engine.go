// Package engine is a small deterministic discrete-event simulation kernel:
// an event queue ordered by (time, insertion sequence) and a reservation
// resource for modeling contended FIFO hardware (links, ports, banks).
// Determinism matters — two runs of the same workload must produce
// identical statistics — so ties are broken by insertion order, never by
// map iteration or goroutine scheduling.
//
// # Event kernel
//
// The queue is a bucketed calendar (timing wheel) rather than a binary
// heap: times within wheelSize cycles of now live in a circular array of
// FIFO buckets (one distinct time per bucket, found through an occupancy
// bitmap), and only the rare far-future event rides a (time, seq) min-heap
// overflow until the window reaches it. Event nodes are recycled through a
// free-list and allocated slab-at-a-time, so the steady-state hot loop —
// Schedule of a typed Handler plus its dispatch — performs zero heap
// allocations (the bench-smoke CI gate pins this at 0 allocs/op). The
// dispatch order is bit-for-bit the heap's: (time, insertion sequence),
// with past-time scheduling clamped to now; internal/engine's property
// tests drive both implementations with identical random schedules and
// require identical dispatch logs.
//
// Handler is the fast path: callers keep a pooled event object per logical
// operation and reschedule it stage by stage. At/After(func()) remain as
// compatibility shims for cold paths — they cost the closure allocation the
// typed interface exists to avoid, but queue nodes still come from the
// free-list.
package engine

import (
	"math"
	"math/bits"
)

// Handler is a typed event target. Schedule(t, h) arranges for h.Handle(t)
// to run when the simulation clock reaches t. Implementations are typically
// pooled structs that carry their own state and reschedule themselves, so
// the hot loop allocates nothing.
type Handler interface {
	Handle(now int64)
}

// Clock is the read-only face of the simulation clock, for substrates that
// timestamp but never schedule (e.g. cache trace events).
type Clock interface {
	Now() int64
}

const (
	// wheelBits sizes the calendar: the wheel covers [now, now+wheelSize).
	// Simulated latencies (cache, hop, DRAM service) are tens to a few
	// hundred cycles, so 1024 slots keep essentially every event on the
	// no-compare FIFO path; only cross-phase stragglers touch the overflow
	// heap.
	wheelBits = 10
	wheelSize = 1 << wheelBits
	wheelMask = wheelSize - 1
	occWords  = wheelSize / 64

	// slabSize is how many queue nodes are allocated at once when the
	// free-list runs dry; after warm-up the free-list satisfies everything.
	slabSize = 256
)

// node is one queued event. Nodes are owned by the Sim, recycled through
// its free-list, and never escape to callers.
type node struct {
	time int64
	seq  int64
	h    Handler
	next *node
}

// bucket is one wheel slot: a FIFO of nodes that all share one event time
// (times within the window map to distinct slots, and appends happen in
// seq order, so FIFO order is (time, seq) order).
type bucket struct {
	head, tail *node
}

// Sim is a discrete-event simulator instance. The zero value is ready to use.
type Sim struct {
	now       int64
	seq       int64
	processed int64
	pending   int

	slots    []bucket         // the calendar, indexed by time & wheelMask
	occ      [occWords]uint64 // occupancy bitmap over slots
	wheelCnt int              // nodes currently in the wheel
	overflow []*node          // (time, seq) min-heap of events beyond the window

	free *node  // recycled nodes
	slab []node // bulk-allocated nodes not yet handed out

	// ProgressEvery, when positive, makes Run call OnProgress after every
	// ProgressEvery processed events — the hook live run reporting hangs
	// off. OnProgress runs on the simulation goroutine, so it may read
	// simulator state without synchronization.
	ProgressEvery int64
	OnProgress    func(now, processed int64)

	// OnDispatch, when set, observes the time of every dispatched event just
	// before its handler runs — the invariant checker's clock-monotonicity
	// probe. Unset costs one nil check per event.
	OnDispatch func(now int64)
}

// Now returns the current simulation time in cycles.
func (s *Sim) Now() int64 { return s.now }

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return s.pending }

// Processed returns the number of events executed so far.
func (s *Sim) Processed() int64 { return s.processed }

// Schedule arranges for h.Handle to run at absolute time t. Scheduling in
// the past runs the event at the current time instead (events cannot rewind
// the clock). Events at equal times run in scheduling order — the (time,
// seq) total order every caller's determinism rests on.
func (s *Sim) Schedule(t int64, h Handler) {
	if s.slots == nil {
		s.slots = make([]bucket, wheelSize)
	}
	if t < s.now {
		t = s.now
	}
	// The sequence counter is the tie-breaker of the (time, seq) total
	// order; it increments once per event and must never wrap. At 2^63
	// events that is centuries of continuous simulation, but a silent wrap
	// would corrupt dispatch order, so it is a hard error instead.
	if s.seq == math.MaxInt64 {
		panic("engine: event sequence counter exhausted")
	}
	n := s.alloc()
	n.time, n.seq, n.h = t, s.seq, h
	s.seq++
	s.pending++
	if t < s.now+wheelSize {
		s.wheelInsert(n)
	} else {
		s.overflowPush(n)
	}
}

// ScheduleAfter arranges for h.Handle to run d cycles from now.
func (s *Sim) ScheduleAfter(d int64, h Handler) { s.Schedule(s.now+d, h) }

// funcEvent adapts the legacy func() call sites to Handler. The func value
// is pointer-shaped, so the interface conversion itself does not allocate —
// only the caller's closure does.
type funcEvent func()

func (f funcEvent) Handle(int64) { f() }

// At schedules fn to run at absolute time t. It is the compatibility shim
// over Schedule for call sites that have not migrated to typed events; the
// closure costs one allocation per call, which is why hot paths use
// Schedule with pooled Handlers instead.
func (s *Sim) At(t int64, fn func()) { s.Schedule(t, funcEvent(fn)) }

// After schedules fn to run d cycles from now.
func (s *Sim) After(d int64, fn func()) { s.Schedule(s.now+d, funcEvent(fn)) }

// Run processes events until the queue is empty and returns the final time.
func (s *Sim) Run() int64 {
	for s.pending > 0 {
		var t int64
		if s.wheelCnt > 0 {
			t = s.nextWheelTime()
		} else {
			t = s.overflow[0].time
		}
		s.now = t
		// Pull every overflow event whose time has entered the window
		// [t, t+wheelSize) into the wheel *before* running handlers at t:
		// heap pops arrive in (time, seq) order, and any same-time event a
		// handler schedules directly into the wheel was sequenced later, so
		// FIFO appends keep the total order exact.
		for len(s.overflow) > 0 && s.overflow[0].time < t+wheelSize {
			s.wheelInsert(s.overflowPop())
		}
		s.dispatch(t)
	}
	return s.now
}

// dispatch runs every event at time t, including events for t that handlers
// schedule while t is being dispatched (same-cycle reentrancy appends to
// the same bucket, preserving seq order).
func (s *Sim) dispatch(t int64) {
	i := int(t & wheelMask)
	b := &s.slots[i]
	for b.head != nil && b.head.time == t {
		n := b.head
		b.head = n.next
		if b.head == nil {
			b.tail = nil
		}
		s.wheelCnt--
		s.pending--
		h := n.h
		s.release(n)
		if s.OnDispatch != nil {
			s.OnDispatch(t)
		}
		h.Handle(t)
		s.processed++
		if s.ProgressEvery > 0 && s.OnProgress != nil && s.processed%s.ProgressEvery == 0 {
			s.OnProgress(s.now, s.processed)
		}
	}
	if b.head == nil {
		s.occ[i>>6] &^= 1 << uint(i&63)
	}
}

// wheelInsert appends n to its bucket's FIFO. Within the window each bucket
// holds exactly one distinct time, so append order is (time, seq) order.
func (s *Sim) wheelInsert(n *node) {
	i := int(n.time & wheelMask)
	b := &s.slots[i]
	if b.tail == nil {
		b.head, b.tail = n, n
		s.occ[i>>6] |= 1 << uint(i&63)
	} else {
		b.tail.next = n
		b.tail = n
	}
	s.wheelCnt++
}

// nextWheelTime returns the earliest event time in the wheel by scanning
// the occupancy bitmap circularly from now's slot (all wheel times lie in
// [now, now+wheelSize), so circular slot order is time order).
func (s *Sim) nextWheelTime() int64 {
	i0 := int(s.now & wheelMask)
	w0 := i0 >> 6
	if rest := s.occ[w0] >> uint(i0&63); rest != 0 {
		i := i0 + bits.TrailingZeros64(rest)
		return s.slots[i].head.time
	}
	for k := 1; k <= occWords; k++ {
		w := (w0 + k) & (occWords - 1)
		if s.occ[w] != 0 {
			i := w<<6 + bits.TrailingZeros64(s.occ[w])
			return s.slots[i].head.time
		}
	}
	panic("engine: wheel count positive but no occupied slot")
}

// overflowPush inserts n into the far-future min-heap ordered by (time, seq).
func (s *Sim) overflowPush(n *node) {
	q := append(s.overflow, n)
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !nodeLess(q[i], q[p]) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
	s.overflow = q
}

// overflowPop removes and returns the (time, seq)-minimum far-future event.
func (s *Sim) overflowPop() *node {
	q := s.overflow
	top := q[0]
	last := len(q) - 1
	q[0] = q[last]
	q[last] = nil
	q = q[:last]
	i := 0
	for {
		l := 2*i + 1
		if l >= len(q) {
			break
		}
		m := l
		if r := l + 1; r < len(q) && nodeLess(q[r], q[l]) {
			m = r
		}
		if !nodeLess(q[m], q[i]) {
			break
		}
		q[i], q[m] = q[m], q[i]
		i = m
	}
	s.overflow = q
	return top
}

func nodeLess(a, b *node) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

// alloc hands out a queue node: free-list first, then the current slab,
// growing the slab only when both are empty (warm steady state never gets
// there).
func (s *Sim) alloc() *node {
	if n := s.free; n != nil {
		s.free = n.next
		n.next = nil
		return n
	}
	if len(s.slab) == 0 {
		s.slab = make([]node, slabSize)
	}
	n := &s.slab[0]
	s.slab = s.slab[1:]
	return n
}

// release recycles a dispatched node, dropping its Handler reference so
// pooled caller events are not retained by the queue.
func (s *Sim) release(n *node) {
	n.h = nil
	n.next = s.free
	s.free = n
}

// Resource models a FIFO-served hardware resource with a known per-use
// occupancy (a mesh link, a DRAM bank, an MC port). Reserve books the next
// available slot and advances the resource's horizon; it never schedules
// events itself — callers fold the returned start time into their own
// latency computation.
type Resource struct {
	freeAt int64
	// BusyTime accumulates total occupied cycles, for utilization stats.
	BusyTime int64
}

// Reserve books the resource for `occupancy` cycles at the earliest time
// ≥ now, returning the start of the booking.
func (r *Resource) Reserve(now, occupancy int64) (start int64) {
	start = now
	if r.freeAt > start {
		start = r.freeAt
	}
	r.freeAt = start + occupancy
	r.BusyTime += occupancy
	return start
}

// FreeAt returns the time the resource next becomes free.
func (r *Resource) FreeAt() int64 { return r.freeAt }
