// Package engine is a small deterministic discrete-event simulation kernel:
// an event queue ordered by (time, insertion sequence) and a reservation
// resource for modeling contended FIFO hardware (links, ports, banks).
// Determinism matters — two runs of the same workload must produce
// identical statistics — so ties are broken by insertion order, never by
// map iteration or goroutine scheduling.
package engine

import "container/heap"

// Sim is a discrete-event simulator instance. The zero value is ready to use.
type Sim struct {
	now       int64
	seq       int64
	pq        eventQueue
	processed int64

	// ProgressEvery, when positive, makes Run call OnProgress after every
	// ProgressEvery processed events — the hook live run reporting hangs
	// off. OnProgress runs on the simulation goroutine, so it may read
	// simulator state without synchronization.
	ProgressEvery int64
	OnProgress    func(now, processed int64)
}

type event struct {
	time int64
	seq  int64
	fn   func()
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any     { old := *q; n := len(old); e := old[n-1]; *q = old[:n-1]; return e }

// Now returns the current simulation time in cycles.
func (s *Sim) Now() int64 { return s.now }

// At schedules fn to run at absolute time t. Scheduling in the past runs
// the event at the current time instead (events cannot rewind the clock).
func (s *Sim) At(t int64, fn func()) {
	if t < s.now {
		t = s.now
	}
	heap.Push(&s.pq, event{time: t, seq: s.seq, fn: fn})
	s.seq++
}

// After schedules fn to run d cycles from now.
func (s *Sim) After(d int64, fn func()) { s.At(s.now+d, fn) }

// Run processes events until the queue is empty and returns the final time.
func (s *Sim) Run() int64 {
	for s.pq.Len() > 0 {
		e := heap.Pop(&s.pq).(event)
		s.now = e.time
		e.fn()
		s.processed++
		if s.ProgressEvery > 0 && s.OnProgress != nil && s.processed%s.ProgressEvery == 0 {
			s.OnProgress(s.now, s.processed)
		}
	}
	return s.now
}

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return s.pq.Len() }

// Processed returns the number of events executed so far.
func (s *Sim) Processed() int64 { return s.processed }

// Resource models a FIFO-served hardware resource with a known per-use
// occupancy (a mesh link, a DRAM bank, an MC port). Reserve books the next
// available slot and advances the resource's horizon; it never schedules
// events itself — callers fold the returned start time into their own
// latency computation.
type Resource struct {
	freeAt int64
	// BusyTime accumulates total occupied cycles, for utilization stats.
	BusyTime int64
}

// Reserve books the resource for `occupancy` cycles at the earliest time
// ≥ now, returning the start of the booking.
func (r *Resource) Reserve(now, occupancy int64) (start int64) {
	start = now
	if r.freeAt > start {
		start = r.freeAt
	}
	r.freeAt = start + occupancy
	r.BusyTime += occupancy
	return start
}

// FreeAt returns the time the resource next becomes free.
func (r *Resource) FreeAt() int64 { return r.freeAt }
