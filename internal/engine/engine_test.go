package engine

import "testing"

func TestEventOrdering(t *testing.T) {
	var s Sim
	var order []int
	s.At(10, func() { order = append(order, 1) })
	s.At(5, func() { order = append(order, 0) })
	s.At(10, func() { order = append(order, 2) }) // same time: insertion order
	end := s.Run()
	if end != 10 {
		t.Errorf("end = %d", end)
	}
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Errorf("order = %v", order)
	}
}

func TestAfterAndNestedScheduling(t *testing.T) {
	var s Sim
	var times []int64
	s.At(3, func() {
		times = append(times, s.Now())
		s.After(4, func() { times = append(times, s.Now()) })
	})
	s.Run()
	if len(times) != 2 || times[0] != 3 || times[1] != 7 {
		t.Errorf("times = %v", times)
	}
}

func TestPastSchedulingClamps(t *testing.T) {
	var s Sim
	fired := int64(-1)
	s.At(10, func() {
		s.At(5, func() { fired = s.Now() }) // in the past: runs "now"
	})
	s.Run()
	if fired != 10 {
		t.Errorf("past event fired at %d, want 10", fired)
	}
}

func TestPending(t *testing.T) {
	var s Sim
	s.At(1, func() {})
	s.At(2, func() {})
	if s.Pending() != 2 {
		t.Errorf("Pending = %d", s.Pending())
	}
	s.Run()
	if s.Pending() != 0 {
		t.Errorf("Pending after run = %d", s.Pending())
	}
}

func TestResourceReserve(t *testing.T) {
	var r Resource
	if start := r.Reserve(0, 5); start != 0 {
		t.Errorf("first reserve start = %d", start)
	}
	// Contention: second request at t=2 waits until 5.
	if start := r.Reserve(2, 5); start != 5 {
		t.Errorf("contended start = %d, want 5", start)
	}
	// No contention once free.
	if start := r.Reserve(100, 5); start != 100 {
		t.Errorf("idle start = %d, want 100", start)
	}
	if r.BusyTime != 15 {
		t.Errorf("BusyTime = %d", r.BusyTime)
	}
	if r.FreeAt() != 105 {
		t.Errorf("FreeAt = %d", r.FreeAt())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int64 {
		var s Sim
		var log []int64
		for i := int64(0); i < 100; i++ {
			d := (i * 7) % 13
			s.At(d, func() { log = append(log, s.Now()) })
		}
		s.Run()
		return log
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}
