package engine

import (
	"math"
	"testing"
)

func TestEventOrdering(t *testing.T) {
	var s Sim
	var order []int
	s.At(10, func() { order = append(order, 1) })
	s.At(5, func() { order = append(order, 0) })
	s.At(10, func() { order = append(order, 2) }) // same time: insertion order
	end := s.Run()
	if end != 10 {
		t.Errorf("end = %d", end)
	}
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Errorf("order = %v", order)
	}
}

func TestAfterAndNestedScheduling(t *testing.T) {
	var s Sim
	var times []int64
	s.At(3, func() {
		times = append(times, s.Now())
		s.After(4, func() { times = append(times, s.Now()) })
	})
	s.Run()
	if len(times) != 2 || times[0] != 3 || times[1] != 7 {
		t.Errorf("times = %v", times)
	}
}

func TestPastSchedulingClamps(t *testing.T) {
	var s Sim
	fired := int64(-1)
	s.At(10, func() {
		s.At(5, func() { fired = s.Now() }) // in the past: runs "now"
	})
	s.Run()
	if fired != 10 {
		t.Errorf("past event fired at %d, want 10", fired)
	}
}

func TestPending(t *testing.T) {
	var s Sim
	s.At(1, func() {})
	s.At(2, func() {})
	if s.Pending() != 2 {
		t.Errorf("Pending = %d", s.Pending())
	}
	s.Run()
	if s.Pending() != 0 {
		t.Errorf("Pending after run = %d", s.Pending())
	}
}

func TestResourceReserve(t *testing.T) {
	var r Resource
	if start := r.Reserve(0, 5); start != 0 {
		t.Errorf("first reserve start = %d", start)
	}
	// Contention: second request at t=2 waits until 5.
	if start := r.Reserve(2, 5); start != 5 {
		t.Errorf("contended start = %d, want 5", start)
	}
	// No contention once free.
	if start := r.Reserve(100, 5); start != 100 {
		t.Errorf("idle start = %d, want 100", start)
	}
	if r.BusyTime != 15 {
		t.Errorf("BusyTime = %d", r.BusyTime)
	}
	if r.FreeAt() != 105 {
		t.Errorf("FreeAt = %d", r.FreeAt())
	}
}

// TestOverflowHorizonOrdering pins the wheel/overflow seam: events beyond
// the wheel window must interleave with near events in exact (time, seq)
// order, including ties between an overflow event and a later direct-wheel
// event at the same time.
func TestOverflowHorizonOrdering(t *testing.T) {
	var s Sim
	var order []int
	record := func(id int) func() { return func() { order = append(order, id) } }
	s.At(2*wheelSize+5, record(0)) // far future: overflow heap
	s.At(3*wheelSize, record(1))   // farther
	s.At(1, record(2))             // near: wheel
	s.At(1, func() {
		order = append(order, 3)
		// Scheduled mid-run for the same time an overflow event already
		// occupies: the overflow event has the smaller seq and must run
		// first once the window reaches it.
		s.At(2*wheelSize+5, record(4))
	})
	end := s.Run()
	want := []int{2, 3, 0, 4, 1}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if end != 3*wheelSize {
		t.Errorf("end = %d, want %d", end, 3*wheelSize)
	}
}

// TestReusedSimKeepsDeterministicOrdering is the regression test for the
// drained-then-reused case: a Sim that ran to completion must accept new
// events, keep its clock monotonic, and preserve (time, seq) ordering —
// recycled nodes and a non-zero starting time must not perturb dispatch.
func TestReusedSimKeepsDeterministicOrdering(t *testing.T) {
	var s Sim
	var order []int64
	s.At(40, func() { order = append(order, s.Now()) })
	s.At(7, func() { order = append(order, s.Now()) })
	if end := s.Run(); end != 40 {
		t.Fatalf("first drain ended at %d", end)
	}
	// Reuse: past times clamp to the drained clock, ties keep insert order.
	s.At(5, func() { order = append(order, 1000+s.Now()) })  // clamps to 40
	s.At(40, func() { order = append(order, 2000+s.Now()) }) // same time, later seq
	s.At(90, func() { order = append(order, s.Now()) })
	if end := s.Run(); end != 90 {
		t.Fatalf("second drain ended at %d", end)
	}
	want := []int64{7, 40, 1040, 2040, 90}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if s.Processed() != 5 {
		t.Errorf("processed = %d across reuse, want 5", s.Processed())
	}
}

// TestSeqExhaustionPanics guards the sequence-counter overflow hazard: the
// tie-breaker must never silently wrap (which would corrupt dispatch
// order), so the engine fails hard instead.
func TestSeqExhaustionPanics(t *testing.T) {
	var s Sim
	s.seq = math.MaxInt64
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling at an exhausted sequence counter did not panic")
		}
	}()
	s.At(1, func() {})
}

func TestDeterminism(t *testing.T) {
	run := func() []int64 {
		var s Sim
		var log []int64
		for i := int64(0); i < 100; i++ {
			d := (i * 7) % 13
			s.At(d, func() { log = append(log, s.Now()) })
		}
		s.Run()
		return log
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}
