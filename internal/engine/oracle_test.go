package engine

import "container/heap"

// heapSim is the original container/heap event queue this package shipped
// with, kept verbatim as a test-only oracle: the timing-wheel scheduler must
// reproduce its dispatch order — (time, insertion sequence), with past-time
// clamping — bit for bit. The property tests drive both implementations with
// identical schedules and require identical dispatch logs.
type heapSim struct {
	now int64
	seq int64
	pq  oracleQueue
}

type oracleEvent struct {
	time int64
	seq  int64
	h    Handler
}

type oracleQueue []oracleEvent

func (q oracleQueue) Len() int { return len(q) }
func (q oracleQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}
func (q oracleQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *oracleQueue) Push(x any)   { *q = append(*q, x.(oracleEvent)) }
func (q *oracleQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

func (s *heapSim) Now() int64 { return s.now }

func (s *heapSim) Schedule(t int64, h Handler) {
	if t < s.now {
		t = s.now
	}
	heap.Push(&s.pq, oracleEvent{time: t, seq: s.seq, h: h})
	s.seq++
}

func (s *heapSim) ScheduleAfter(d int64, h Handler) { s.Schedule(s.now+d, h) }

func (s *heapSim) At(t int64, fn func()) { s.Schedule(t, funcEvent(fn)) }

func (s *heapSim) After(d int64, fn func()) { s.At(s.now+d, fn) }

func (s *heapSim) Run() int64 {
	for s.pq.Len() > 0 {
		e := heap.Pop(&s.pq).(oracleEvent)
		s.now = e.time
		e.h.Handle(e.time)
	}
	return s.now
}

func (s *heapSim) Pending() int { return s.pq.Len() }
