package engine

import (
	"math/rand"
	"testing"
)

// scheduler is the surface the property tests exercise: both the
// timing-wheel Sim and the container/heap oracle implement it.
type scheduler interface {
	Now() int64
	At(t int64, fn func())
	After(d int64, fn func())
	Schedule(t int64, h Handler)
	ScheduleAfter(d int64, h Handler)
	Run() int64
}

// dispatchRecord is one executed event: the time it ran at and its identity
// (allocation order). Two schedulers agree iff their record streams agree.
type dispatchRecord struct {
	time int64
	id   int
}

// scenarioDriver replays one pseudo-random schedule on a scheduler. Child
// events are decided by the rng *in dispatch order*, so the driver doubles
// as an order detector: if the implementations diverge in dispatch order,
// they also diverge in what they schedule next, and the logs cannot match.
type scenarioDriver struct {
	s      scheduler
	rng    *rand.Rand
	log    []dispatchRecord
	nextID int
	budget int // events still allowed to be scheduled
}

// handlerEvent is the typed-path probe: a pooled-style Handler whose Handle
// records the dispatch and fans out children, exactly like the closure path.
type handlerEvent struct {
	d  *scenarioDriver
	id int
}

func (h *handlerEvent) Handle(now int64) { h.d.fire(h.id, now) }

func (d *scenarioDriver) fire(id int, now int64) {
	if now != d.s.Now() {
		panic("scheduler clock disagrees with handler's now argument")
	}
	d.log = append(d.log, dispatchRecord{time: now, id: id})
	children := d.rng.Intn(4) // 0..3 follow-up events
	for c := 0; c < children; c++ {
		d.spawn()
	}
}

// spawn schedules one child with a randomly chosen API (At / After /
// Schedule / ScheduleAfter) and a delta that exercises every queue regime:
// past times (clamping), the same cycle (reentrant dispatch), the wheel
// window, and far-future times that must ride the overflow heap.
func (d *scenarioDriver) spawn() {
	if d.budget <= 0 {
		return
	}
	d.budget--
	id := d.nextID
	d.nextID++
	var delta int64
	switch d.rng.Intn(10) {
	case 0:
		delta = -int64(d.rng.Intn(50)) // in the past: must clamp to now
	case 1:
		delta = 0 // same cycle: reentrant dispatch, FIFO within the cycle
	case 2, 3:
		delta = int64(d.rng.Intn(3 * wheelSize)) // beyond the wheel horizon
	default:
		delta = int64(d.rng.Intn(80)) // the common dense regime
	}
	t := d.s.Now() + delta
	switch d.rng.Intn(4) {
	case 0:
		d.s.At(t, func() { d.fire(id, d.s.Now()) })
	case 1:
		d.s.After(delta, func() { d.fire(id, d.s.Now()) })
	case 2:
		d.s.Schedule(t, &handlerEvent{d: d, id: id})
	default:
		d.s.ScheduleAfter(delta, &handlerEvent{d: d, id: id})
	}
}

// runScenario replays the seed's schedule: root events, rng-driven fan-out
// until the queue drains, then fresh roots on the *same* (drained, reused)
// scheduler until the whole event budget is spent. The drain-and-reuse loop
// is deliberate: a reused instance must keep its clock and its deterministic
// ordering, on both implementations.
func runScenario(s scheduler, seed int64, budget int) (records []dispatchRecord, end int64) {
	d := &scenarioDriver{s: s, rng: rand.New(rand.NewSource(seed)), budget: budget}
	for d.budget > 0 {
		roots := 1 + d.rng.Intn(8)
		for i := 0; i < roots && d.budget > 0; i++ {
			d.spawn()
		}
		end = s.Run()
	}
	return d.log, end
}

// TestPropertyWheelMatchesHeapOracle drives the timing-wheel scheduler and
// the original container/heap implementation with identical pseudo-random
// interleavings of At/After/Schedule — 10k-event schedules including
// past-time clamping, same-cycle reentrant scheduling, and overflow-horizon
// times — and requires bit-identical dispatch order (time, insertion seq).
func TestPropertyWheelMatchesHeapOracle(t *testing.T) {
	const budget = 10000
	for seed := int64(0); seed < 25; seed++ {
		wheelLog, wheelEnd := runScenario(&Sim{}, seed, budget)
		heapLog, heapEnd := runScenario(&heapSim{}, seed, budget)
		if len(wheelLog) != len(heapLog) {
			t.Fatalf("seed %d: dispatched %d events, oracle %d", seed, len(wheelLog), len(heapLog))
		}
		for i := range wheelLog {
			if wheelLog[i] != heapLog[i] {
				t.Fatalf("seed %d: dispatch %d diverges: wheel (t=%d id=%d) vs oracle (t=%d id=%d)",
					seed, i, wheelLog[i].time, wheelLog[i].id, heapLog[i].time, heapLog[i].id)
			}
		}
		if wheelEnd != heapEnd {
			t.Fatalf("seed %d: final time %d, oracle %d", seed, wheelEnd, heapEnd)
		}
		if len(wheelLog) != budget {
			t.Fatalf("seed %d: scenario dispatched %d events (wanted the full %d budget)", seed, len(wheelLog), budget)
		}
	}
}

// TestPropertyTimeNeverRewinds asserts the clock is monotonic under the
// same adversarial schedules (past-time events clamp, never rewind).
func TestPropertyTimeNeverRewinds(t *testing.T) {
	for seed := int64(100); seed < 110; seed++ {
		log, _ := runScenario(&Sim{}, seed, 2000)
		for i := 1; i < len(log); i++ {
			if log[i].time < log[i-1].time {
				t.Fatalf("seed %d: time rewound from %d to %d at dispatch %d",
					seed, log[i-1].time, log[i].time, i)
			}
		}
	}
}
