package experiments

import (
	"offchip/internal/runner"
)

// Fig3 reproduces Figure 3: the contribution of off-chip data accesses to
// total data accesses, per application, on the default platform with page
// interleaving and private L2s (the paper reports a 22.4% average of
// dynamic data accesses; our trace-level share counts every reference, so
// we also report the share of cache-level accesses, the more comparable
// number).
func Fig3(cfg Config) (*FigResult, error) {
	apps, err := cfg.apps()
	if err != nil {
		return nil, err
	}
	specs := make([]runner.JobSpec, len(apps))
	for i, app := range apps {
		s := cfg.spec(runner.ModeBaseline, app.Name)
		s.Interleave = "page"
		specs[i] = s
	}
	res, err := cfg.runJobs(specs)
	if err != nil {
		return nil, err
	}
	f := &FigResult{
		ID:      "Fig3",
		Title:   "off-chip share of data accesses (baseline, page interleaving)",
		Columns: []string{"offchip/total%", "offchip/L2level%"},
	}
	for i, app := range apps {
		r := res.Outcomes[i].Run
		l2Level := r.Total - r.L1Hits
		share2 := 0.0
		if l2Level > 0 {
			share2 = float64(r.OffChip) / float64(l2Level)
		}
		f.Rows = append(f.Rows, AppRow{App: app.Name, Values: []float64{
			100 * r.OffChipShare(),
			100 * share2,
		}})
	}
	f.finish()
	return f, nil
}

// Fig4 reproduces Figure 4: the impact of the optimal scheme (every
// off-chip request served by the nearest controller with no bank
// contention) on the three latencies and on execution time, under page
// interleaving.
func Fig4(cfg Config) (*FigResult, error) {
	apps, err := cfg.apps()
	if err != nil {
		return nil, err
	}
	specs := make([]runner.JobSpec, len(apps))
	for i, app := range apps {
		s := cfg.spec(runner.ModeCompare, app.Name)
		s.Interleave = "page"
		specs[i] = s
	}
	res, err := cfg.runJobs(specs)
	if err != nil {
		return nil, err
	}
	f := &FigResult{
		ID:      "Fig4",
		Title:   "optimal scheme vs default (page interleaving)",
		Columns: []string{"onchip-net%", "offchip-net%", "mem%", "exec%"},
	}
	for i, app := range apps {
		c := res.Outcomes[i].Comparison
		f.Rows = append(f.Rows, AppRow{App: app.Name, Values: []float64{
			100 * improvementOf(c.Baseline.OnChipNetAvg, c.Optimal.OnChipNetAvg),
			100 * improvementOf(c.Baseline.OffChipNetAvg, c.Optimal.OffChipNetAvg),
			100 * improvementOf(c.Baseline.MemAvg, c.Optimal.MemAvg),
			100 * c.OptimalExecImprovement(),
		}})
	}
	f.finish()
	return f, nil
}

func improvementOf(base, other float64) float64 {
	if base == 0 {
		return 0
	}
	return (base - other) / base
}

// Table2 reproduces Table 2: the percentage of arrays optimized and of
// array references satisfied by the chosen per-array transformations.
// Analysis-only jobs: no traces are generated and no simulation runs.
func Table2(cfg Config) (*FigResult, error) {
	apps, err := cfg.apps()
	if err != nil {
		return nil, err
	}
	specs := make([]runner.JobSpec, len(apps))
	for i, app := range apps {
		specs[i] = cfg.spec(runner.ModeAnalyze, app.Name)
	}
	res, err := cfg.runJobs(specs)
	if err != nil {
		return nil, err
	}
	f := &FigResult{
		ID:      "Table2",
		Title:   "arrays optimized and references satisfied",
		Columns: []string{"arrays%", "refs%"},
	}
	for i, app := range apps {
		a := res.Outcomes[i].Analysis
		f.Rows = append(f.Rows, AppRow{App: app.Name, Values: []float64{
			a.PctArraysOptimized(), a.PctRefsSatisfied(),
		}})
	}
	f.finish()
	return f, nil
}

// Fig14 reproduces Figure 14: the four improvement metrics under page
// interleaving with the OS-assisted allocation policy.
func Fig14(cfg Config) (*FigResult, error) {
	s := cfg.spec(runner.ModeCompare, "")
	s.Interleave = "page"
	return improvementSuite(cfg, "Fig14", "improvements under page interleaving", s)
}

// Fig16 reproduces Figure 16: the four improvement metrics under
// cache-line interleaving (the default for the remaining experiments).
func Fig16(cfg Config) (*FigResult, error) {
	return improvementSuite(cfg, "Fig16", "improvements under cache-line interleaving",
		cfg.spec(runner.ModeCompare, ""))
}

// Fig22 reproduces Figure 22: the improvements with the L2 space managed
// as a shared SNUCA cache (cache-line interleaving for both L2 home banks
// and main memory).
func Fig22(cfg Config) (*FigResult, error) {
	s := cfg.spec(runner.ModeCompare, "")
	s.L2 = "shared"
	return improvementSuite(cfg, "Fig22", "improvements with shared (SNUCA) L2", s)
}

// Fig23 reproduces Figure 23 (Section 6.3): our scheme (with page
// interleaving and OS-assisted allocation) against the OS first-touch
// policy baseline.
func Fig23(cfg Config) (*FigResult, error) {
	s := cfg.spec(runner.ModeCompare, "")
	s.Interleave = "page"
	s.Policy = "firsttouch"
	return improvementSuite(cfg, "Fig23", "our scheme vs the first-touch policy", s)
}
