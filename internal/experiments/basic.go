package experiments

import (
	"offchip/internal/core"
	"offchip/internal/layout"
	"offchip/internal/sim"
)

// Fig3 reproduces Figure 3: the contribution of off-chip data accesses to
// total data accesses, per application, on the default platform with page
// interleaving and private L2s (the paper reports a 22.4% average of
// dynamic data accesses; our trace-level share counts every reference, so
// we also report the share of cache-level accesses, the more comparable
// number).
func Fig3(cfg Config) (*FigResult, error) {
	apps, err := cfg.apps()
	if err != nil {
		return nil, err
	}
	m, cm, err := defaultMachine(layout.PageInterleave)
	if err != nil {
		return nil, err
	}
	f := &FigResult{
		ID:      "Fig3",
		Title:   "off-chip share of data accesses (baseline, page interleaving)",
		Columns: []string{"offchip/total%", "offchip/L2level%"},
	}
	opts := cfg.coreOpts()
	for _, app := range apps {
		baseW, _, _, err := core.Workloads(app, m, cm, opts)
		if err != nil {
			return nil, err
		}
		simCfg := core.SimConfig(m, cm, opts)
		r, err := sim.Run(simCfg, baseW)
		if err != nil {
			return nil, err
		}
		l2Level := r.Total - r.L1Hits
		share2 := 0.0
		if l2Level > 0 {
			share2 = float64(r.OffChip) / float64(l2Level)
		}
		f.Rows = append(f.Rows, AppRow{App: app.Name, Values: []float64{
			100 * r.OffChipShare(),
			100 * share2,
		}})
	}
	f.finish()
	return f, nil
}

// Fig4 reproduces Figure 4: the impact of the optimal scheme (every
// off-chip request served by the nearest controller with no bank
// contention) on the three latencies and on execution time, under page
// interleaving.
func Fig4(cfg Config) (*FigResult, error) {
	apps, err := cfg.apps()
	if err != nil {
		return nil, err
	}
	m, cm, err := defaultMachine(layout.PageInterleave)
	if err != nil {
		return nil, err
	}
	f := &FigResult{
		ID:      "Fig4",
		Title:   "optimal scheme vs default (page interleaving)",
		Columns: []string{"onchip-net%", "offchip-net%", "mem%", "exec%"},
	}
	opts := cfg.coreOpts()
	for _, app := range apps {
		c, err := core.Compare(app, m, cm, opts)
		if err != nil {
			return nil, err
		}
		f.Rows = append(f.Rows, AppRow{App: app.Name, Values: []float64{
			100 * improvementOf(c.Baseline.OnChipNetAvg, c.Optimal.OnChipNetAvg),
			100 * improvementOf(c.Baseline.OffChipNetAvg, c.Optimal.OffChipNetAvg),
			100 * improvementOf(c.Baseline.MemAvg, c.Optimal.MemAvg),
			100 * c.OptimalExecImprovement(),
		}})
	}
	f.finish()
	return f, nil
}

func improvementOf(base, other float64) float64 {
	if base == 0 {
		return 0
	}
	return (base - other) / base
}

// Table2 reproduces Table 2: the percentage of arrays optimized and of
// array references satisfied by the chosen per-array transformations.
func Table2(cfg Config) (*FigResult, error) {
	apps, err := cfg.apps()
	if err != nil {
		return nil, err
	}
	m, cm, err := defaultMachine(layout.LineInterleave)
	if err != nil {
		return nil, err
	}
	f := &FigResult{
		ID:      "Table2",
		Title:   "arrays optimized and references satisfied",
		Columns: []string{"arrays%", "refs%"},
	}
	opts := cfg.coreOpts()
	for _, app := range apps {
		_, _, res, err := core.Workloads(app, m, cm, opts)
		if err != nil {
			return nil, err
		}
		f.Rows = append(f.Rows, AppRow{App: app.Name, Values: []float64{
			res.PctArraysOptimized(), res.PctRefsSatisfied(),
		}})
	}
	f.finish()
	return f, nil
}

// Fig14 reproduces Figure 14: the four improvement metrics under page
// interleaving with the OS-assisted allocation policy.
func Fig14(cfg Config) (*FigResult, error) {
	m, cm, err := defaultMachine(layout.PageInterleave)
	if err != nil {
		return nil, err
	}
	return improvementSuite(cfg, "Fig14", "improvements under page interleaving", m, cm, cfg.coreOpts())
}

// Fig16 reproduces Figure 16: the four improvement metrics under
// cache-line interleaving (the default for the remaining experiments).
func Fig16(cfg Config) (*FigResult, error) {
	m, cm, err := defaultMachine(layout.LineInterleave)
	if err != nil {
		return nil, err
	}
	return improvementSuite(cfg, "Fig16", "improvements under cache-line interleaving", m, cm, cfg.coreOpts())
}

// Fig22 reproduces Figure 22: the improvements with the L2 space managed
// as a shared SNUCA cache (cache-line interleaving for both L2 home banks
// and main memory).
func Fig22(cfg Config) (*FigResult, error) {
	m, cm, err := defaultMachine(layout.LineInterleave)
	if err != nil {
		return nil, err
	}
	m.L2 = layout.SharedL2
	return improvementSuite(cfg, "Fig22", "improvements with shared (SNUCA) L2", m, cm, cfg.coreOpts())
}

// Fig23 reproduces Figure 23 (Section 6.3): our scheme (with page
// interleaving and OS-assisted allocation) against the OS first-touch
// policy baseline.
func Fig23(cfg Config) (*FigResult, error) {
	m, cm, err := defaultMachine(layout.PageInterleave)
	if err != nil {
		return nil, err
	}
	opts := cfg.coreOpts()
	opts.BaselinePolicy = sim.PolicyFirstTouch
	f, err := improvementSuite(cfg, "Fig23", "our scheme vs the first-touch policy", m, cm, opts)
	if err != nil {
		return nil, err
	}
	return f, nil
}
