package experiments

import "testing"

// quick config: short sampled traces, 2 apps — a smoke test of the wiring.
func TestSmokeAllExperiments(t *testing.T) {
	cfg := Config{Apps: []string{"apsi", "gafort"}, MaxAccessesPerThread: 120}
	for _, id := range AllIDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			out, err := Run(id, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(out) == 0 {
				t.Fatal("empty output")
			}
		})
	}
}
