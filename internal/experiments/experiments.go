// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6). Each Fig/Table function runs the required
// compile-simulate comparisons and returns a typed result that renders as a
// fixed-width table; cmd/benchtab and the bench_test.go benchmarks are thin
// wrappers around this package. The per-experiment index in DESIGN.md maps
// each function to the paper's figure.
package experiments

import (
	"fmt"
	"strings"

	"offchip/internal/core"
	"offchip/internal/layout"
	"offchip/internal/runner"
	"offchip/internal/stats"
	"offchip/internal/tracecache"
	"offchip/internal/workloads"
)

// Config selects what to run and how long the traces are.
type Config struct {
	// Apps restricts the suite (nil: all 13).
	Apps []string
	// MaxAccessesPerThread shortens traces for smoke tests (0: full traces,
	// the setting every reported number uses).
	MaxAccessesPerThread int
	// Parallel is the worker count for the job-sharded experiments (0 or
	// 1: sequential). Results are bit-identical at any worker count.
	Parallel int
	// Seed decorrelates the simulator's jitter stream per job (0: the
	// historical stream every recorded figure uses).
	Seed uint64
	// OnJob, when set, receives live per-job completion events.
	OnJob func(runner.JobEvent)
	// Prof attaches the latency-attribution profiler to every job
	// (observation only — job IDs and results are unchanged); per-run
	// profiles land on each JobOutcome.Profiles.
	Prof bool
	// TraceCache memoizes trace generation across every job and experiment
	// sharing this config (see internal/tracecache). Wall-clock only: cached
	// streams are byte-identical to freshly generated ones, and job IDs are
	// unchanged.
	TraceCache *tracecache.Cache
	// Migrate selects the hot-page migration spec FigMig's dynamic and
	// hybrid runs use: "" means the default mem.MigrationSpec ("on"), or a
	// compact spec like "h16w1024c2f0t64". Other experiments ignore it.
	Migrate string
	// Sample enables sampled simulation for the job-sharded experiments:
	// "" runs exact full simulations (the historical results), "on" the
	// default sim.SampleSpec, or a compact spec like "w4f0.1u1r1".
	// Sampling is part of each job's identity (the ID gains a sample=
	// field). The sequential multiprogrammed experiments (Fig25) always run
	// exact.
	Sample string
}

func (c Config) apps() ([]*workloads.App, error) {
	if len(c.Apps) == 0 {
		return workloads.All(), nil
	}
	var out []*workloads.App
	for _, name := range c.Apps {
		a, ok := workloads.ByName(name)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown application %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

func (c Config) coreOpts() core.Options {
	return core.Options{MaxAccessesPerThread: c.MaxAccessesPerThread, Seed: c.Seed, TraceCache: c.TraceCache}
}

// spec starts a job spec carrying the config-wide knobs. Callers fill in
// the per-job fields; enumeration everywhere walks slices in fixed order
// (never maps), so a suite's job list — and therefore its job IDs — is
// stable across runs.
func (c Config) spec(mode runner.Mode, app string) runner.JobSpec {
	return runner.JobSpec{
		Mode: mode, App: app, Cap: c.MaxAccessesPerThread, Seed: c.Seed,
		Sample: c.Sample, Prof: c.Prof, Cache: c.TraceCache,
	}
}

// runJobs shards the specs across c.Parallel workers and fails on the
// first job error (in input order).
func (c Config) runJobs(specs []runner.JobSpec) (*runner.Result, error) {
	workers := c.Parallel
	if workers <= 0 {
		workers = 1
	}
	res, err := runner.Run(specs, runner.Options{Workers: workers, OnJob: c.OnJob})
	if err != nil {
		return nil, err
	}
	if err := res.FirstError(); err != nil {
		return nil, err
	}
	return res, nil
}

// FigResult is a uniform per-application result matrix with a trailing
// average row, rendering as the bar groups of the paper's figures.
type FigResult struct {
	ID      string
	Title   string
	Columns []string // value column names (after the App column)
	Rows    []AppRow
	Average []float64
}

// AppRow is one application's values.
type AppRow struct {
	App    string
	Values []float64
}

// finish computes the average row.
func (f *FigResult) finish() {
	if len(f.Rows) == 0 {
		return
	}
	f.Average = make([]float64, len(f.Columns))
	for _, r := range f.Rows {
		for i, v := range r.Values {
			f.Average[i] += v
		}
	}
	for i := range f.Average {
		f.Average[i] /= float64(len(f.Rows))
	}
}

// Value returns the named column for the named application row.
func (f *FigResult) Value(app, column string) (float64, bool) {
	col := -1
	for i, c := range f.Columns {
		if c == column {
			col = i
		}
	}
	if col == -1 {
		return 0, false
	}
	for _, r := range f.Rows {
		if r.App == app {
			return r.Values[col], true
		}
	}
	return 0, false
}

// Table renders the result.
func (f *FigResult) Table() string {
	t := &stats.Table{
		Title:   fmt.Sprintf("%s: %s", f.ID, f.Title),
		Headers: append([]string{"app"}, f.Columns...),
	}
	for _, r := range f.Rows {
		cells := []any{r.App}
		for _, v := range r.Values {
			cells = append(cells, v)
		}
		t.AddF(cells...)
	}
	if f.Average != nil {
		cells := []any{"AVERAGE"}
		for _, v := range f.Average {
			cells = append(cells, v)
		}
		t.AddF(cells...)
	}
	return t.String()
}

func (f *FigResult) String() string { return f.Table() }

// defaultMachine returns the Table 1 platform with the default M1 mapping
// (Figure 8a) for the requested interleaving.
func defaultMachine(g layout.Granularity) (layout.Machine, *layout.ClusterMapping, error) {
	m := layout.Default8x8()
	m.Interleave = g
	cm, err := layout.MappingM1(m, layout.PlacementCorners(m.MeshX, m.MeshY))
	return m, cm, err
}

// improvementSuite runs the three-way comparison for every app (one job
// each, sharded across cfg.Parallel workers) and returns the four Figure
// 14/16 metrics (percent improvements). tmpl carries the machine knobs;
// its App field is overwritten per job.
func improvementSuite(cfg Config, id, title string, tmpl runner.JobSpec) (*FigResult, error) {
	apps, err := cfg.apps()
	if err != nil {
		return nil, err
	}
	specs := make([]runner.JobSpec, len(apps))
	for i, app := range apps {
		s := tmpl
		s.App = app.Name
		specs[i] = s
	}
	res, err := cfg.runJobs(specs)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", id, err)
	}
	f := &FigResult{
		ID:      id,
		Title:   title,
		Columns: []string{"onchip-net%", "offchip-net%", "mem%", "queue%", "exec%"},
	}
	for i, app := range apps {
		c := res.Outcomes[i].Comparison
		f.Rows = append(f.Rows, AppRow{App: app.Name, Values: []float64{
			100 * c.OnChipNetImprovement(),
			100 * c.OffChipNetImprovement(),
			100 * c.MemImprovement(),
			100 * c.QueueImprovement(),
			100 * c.ExecImprovement(),
		}})
	}
	f.finish()
	return f, nil
}

// execSuite runs the comparison across several machine variants and
// reports one exec-improvement column per variant. Jobs are enumerated
// app-major (apps[i] × variants[j] at index i·len(variants)+j).
func execSuite(cfg Config, id, title string, variants []variant) (*FigResult, error) {
	apps, err := cfg.apps()
	if err != nil {
		return nil, err
	}
	specs := make([]runner.JobSpec, 0, len(apps)*len(variants))
	for _, app := range apps {
		for _, v := range variants {
			s := v.spec
			s.Mode = runner.ModeCompare
			s.App = app.Name
			s.Cap = cfg.MaxAccessesPerThread
			s.Seed = cfg.Seed
			s.Sample = cfg.Sample
			s.Cache = cfg.TraceCache
			specs = append(specs, s)
		}
	}
	res, err := cfg.runJobs(specs)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", id, err)
	}
	f := &FigResult{ID: id, Title: title}
	for _, v := range variants {
		f.Columns = append(f.Columns, v.name+" exec%")
	}
	for i, app := range apps {
		row := AppRow{App: app.Name}
		for j := range variants {
			c := res.Outcomes[i*len(variants)+j].Comparison
			row.Values = append(row.Values, 100*c.ExecImprovement())
		}
		f.Rows = append(f.Rows, row)
	}
	f.finish()
	return f, nil
}

// variant names one machine configuration of an execSuite (the name feeds
// the column header; the spec's App/Cap/Seed fields are filled per job).
type variant struct {
	name string
	spec runner.JobSpec
}

// AllIDs lists the experiment identifiers benchtab accepts.
func AllIDs() []string {
	return []string{
		"fig3", "fig4", "table2", "fig13", "fig14", "fig15", "fig16",
		"fig17", "fig18", "fig19", "fig20", "fig21", "fig22", "fig23",
		"fig24", "fig25", "figmig", "figmix", "figtune",
	}
}

// Run executes one experiment by ID and returns its rendered table.
func Run(id string, cfg Config) (string, error) {
	switch strings.ToLower(id) {
	case "fig3":
		r, err := Fig3(cfg)
		return render(r, err)
	case "fig4":
		r, err := Fig4(cfg)
		return render(r, err)
	case "table2":
		r, err := Table2(cfg)
		return render(r, err)
	case "fig13":
		r, err := Fig13(cfg)
		if err != nil {
			return "", err
		}
		return r.Table(), nil
	case "fig14":
		r, err := Fig14(cfg)
		return render(r, err)
	case "fig15":
		r, err := Fig15(cfg)
		if err != nil {
			return "", err
		}
		return r.Table(), nil
	case "fig16":
		r, err := Fig16(cfg)
		return render(r, err)
	case "fig17":
		r, err := Fig17(cfg)
		return render(r, err)
	case "fig18":
		r, err := Fig18(cfg)
		return render(r, err)
	case "fig19":
		r, err := Fig19(cfg)
		return render(r, err)
	case "fig20":
		r, err := Fig20(cfg)
		return render(r, err)
	case "fig21":
		r, err := Fig21(cfg)
		return render(r, err)
	case "fig22":
		r, err := Fig22(cfg)
		return render(r, err)
	case "fig23":
		r, err := Fig23(cfg)
		return render(r, err)
	case "fig24":
		r, err := Fig24(cfg)
		return render(r, err)
	case "fig25":
		r, err := Fig25(cfg)
		if err != nil {
			return "", err
		}
		return r.Table(), nil
	case "figmig":
		r, err := FigMig(cfg)
		return render(r, err)
	case "figmix":
		r, err := FigMix(cfg)
		return render(r, err)
	case "figtune":
		r, err := FigTune(cfg)
		return render(r, err)
	default:
		return "", fmt.Errorf("experiments: unknown experiment %q (have %s)", id, strings.Join(AllIDs(), ", "))
	}
}

func render(f *FigResult, err error) (string, error) {
	if err != nil {
		return "", err
	}
	return f.Table(), nil
}
