package experiments

import (
	"strings"
	"testing"
)

// fastCfg keeps unit tests quick: two applications, sampled traces. Shape
// tests that depend on cache behavior use fullCfg (and testing.Short
// guards) instead — sampling perturbs reuse.
func fastCfg() Config {
	return Config{Apps: []string{"apsi", "gafort"}, MaxAccessesPerThread: 150}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("fig99", fastCfg()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestUnknownApp(t *testing.T) {
	cfg := Config{Apps: []string{"equake"}}
	if _, err := Fig16(cfg); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestAllIDsRunnable(t *testing.T) {
	ids := AllIDs()
	if len(ids) != 19 {
		t.Fatalf("%d experiment IDs, want 19 (15 paper figures + Table 2 + figmig/figmix/figtune)", len(ids))
	}
}

func TestFigResultHelpers(t *testing.T) {
	f := &FigResult{
		ID: "X", Title: "t",
		Columns: []string{"a", "b"},
		Rows: []AppRow{
			{App: "p", Values: []float64{1, 2}},
			{App: "q", Values: []float64{3, 4}},
		},
	}
	f.finish()
	if f.Average[0] != 2 || f.Average[1] != 3 {
		t.Errorf("averages = %v", f.Average)
	}
	if v, ok := f.Value("q", "b"); !ok || v != 4 {
		t.Errorf("Value = %v %v", v, ok)
	}
	if _, ok := f.Value("q", "zz"); ok {
		t.Error("phantom column found")
	}
	if _, ok := f.Value("zz", "a"); ok {
		t.Error("phantom app found")
	}
	tab := f.Table()
	if !strings.Contains(tab, "AVERAGE") || !strings.Contains(tab, "X: t") {
		t.Errorf("table rendering:\n%s", tab)
	}
}

func TestTable2Spread(t *testing.T) {
	// Layout statistics don't depend on trace length: run the full suite
	// with minimal traces. The suite must show the Table 2 character:
	// affine apps near 100% satisfied, irregular ones clearly below.
	cfg := Config{MaxAccessesPerThread: 1}
	r, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 13 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	get := func(app string) float64 {
		v, ok := r.Value(app, "refs%")
		if !ok {
			t.Fatalf("missing %s", app)
		}
		return v
	}
	for _, affine := range []string{"swim", "mgrid", "apsi", "minighost", "minimd", "hpccg"} {
		if get(affine) < 95 {
			t.Errorf("%s refs satisfied %.0f%%, want >= 95", affine, get(affine))
		}
	}
	for _, irregular := range []string{"gafort", "ammp", "fma3d"} {
		if get(irregular) > 95 {
			t.Errorf("%s refs satisfied %.0f%%, want < 95 (irregular)", irregular, get(irregular))
		}
	}
	// No app at 0 and none above 100.
	for _, row := range r.Rows {
		if row.Values[1] <= 0 || row.Values[1] > 100 {
			t.Errorf("%s refs satisfied %.1f%%", row.App, row.Values[1])
		}
	}
}

func TestFig13Skew(t *testing.T) {
	// The Figure 13 signature: optimized traffic to MC0 comes almost
	// exclusively from MC0's own quadrant; original traffic does not.
	// apsi with full traces (the paper's example application).
	cfg := Config{Apps: []string{"apsi"}}
	r, err := Fig13(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.QuadrantShareOptimized < 0.90 {
		t.Errorf("optimized quadrant share = %.2f, want >= 0.90", r.QuadrantShareOptimized)
	}
	if r.QuadrantShareOriginal > 0.60 {
		t.Errorf("original quadrant share = %.2f, want spread-out (< 0.60)", r.QuadrantShareOriginal)
	}
	// Distributions are normalized.
	sum := 0.0
	for _, v := range r.Optimized {
		sum += v
	}
	if sum < 0.99 || sum > 1.01 {
		t.Errorf("optimized map sums to %v", sum)
	}
	if !strings.Contains(r.Table(), "per-mille") {
		t.Error("table rendering")
	}
}

func TestFig15CDFShape(t *testing.T) {
	// Figure 15's signature: optimized off-chip requests traverse fewer
	// links — the optimized CDF dominates at low hop counts.
	cfg := Config{Apps: []string{"apsi"}}
	r, err := Fig15(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.AtOrBelow(r.OffChipOpt, 4) <= r.AtOrBelow(r.OffChipBase, 4) {
		t.Errorf("off-chip CDF at 4 links: opt %.2f <= base %.2f",
			r.AtOrBelow(r.OffChipOpt, 4), r.AtOrBelow(r.OffChipBase, 4))
	}
	// Monotone non-decreasing, ends at 1.
	for _, series := range [][]float64{r.OnChipBase, r.OnChipOpt, r.OffChipBase, r.OffChipOpt} {
		for i := 1; i < len(series); i++ {
			if series[i] < series[i-1]-1e-9 {
				t.Fatalf("CDF not monotone at %d: %v", i, series)
			}
		}
		if last := series[len(series)-1]; last < 0.999 {
			t.Errorf("CDF tail %v", last)
		}
	}
	if !strings.Contains(r.Table(), "links<=") {
		t.Error("table rendering")
	}
}

func TestFig17ChooserCrossover(t *testing.T) {
	// The compiler analysis must favor M2 exactly for the two high-MLP
	// applications (Section 4: fma3d and minighost).
	cfg := Config{Apps: []string{"swim", "fma3d", "minighost"}, MaxAccessesPerThread: 150}
	r, err := Fig17(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		pick := row.Values[2]
		wantM2 := row.App == "fma3d" || row.App == "minighost"
		if (pick == 1) != wantM2 {
			t.Errorf("%s: chooser=M2 is %v", row.App, pick)
		}
	}
}

func TestFig16AppImprovements(t *testing.T) {
	if testing.Short() {
		t.Skip("full-trace suite run")
	}
	// The headline result (Figure 16 / the paper's 20.5% average): every
	// application's execution time improves, and the suite average lands
	// in the paper's neighborhood.
	r, err := Fig16(Config{})
	if err != nil {
		t.Fatal(err)
	}
	execCol := len(r.Columns) - 1
	for _, row := range r.Rows {
		if row.Values[execCol] < 0 {
			t.Errorf("%s exec improvement %.1f%% < 0", row.App, row.Values[execCol])
		}
	}
	if avg := r.Average[execCol]; avg < 10 || avg > 35 {
		t.Errorf("average exec improvement %.1f%%, want within [10, 35] (paper: 20.5%%)", avg)
	}
	// Off-chip network latency must improve for every application.
	for _, row := range r.Rows {
		if row.Values[1] <= 0 {
			t.Errorf("%s off-chip net improvement %.1f%% <= 0", row.App, row.Values[1])
		}
	}
}

func TestFig19PlacementsAllImprove(t *testing.T) {
	if testing.Short() {
		t.Skip("full-trace run")
	}
	// Figure 19: every placement must show a positive average improvement.
	// (The paper reports P2 slightly best; in our substrate the diamond
	// placement shortens the *baseline's* paths so much that the relative
	// improvement is smaller than P1's — see EXPERIMENTS.md.)
	cfg := Config{Apps: []string{"apsi", "swim", "mgrid"}}
	r, err := Fig19(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, col := range r.Columns {
		if r.Average[i] <= 0 {
			t.Errorf("%s average improvement %.1f%% <= 0", col, r.Average[i])
		}
	}
}

func TestFig25AllMixesImprove(t *testing.T) {
	if testing.Short() {
		t.Skip("full-trace run")
	}
	r, err := Fig25(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(DefaultMixes()) {
		t.Fatalf("%d mixes", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.ImprovementP <= 0 {
			t.Errorf("%s weighted speedup regressed: %.1f%%", row.Mix, row.ImprovementP)
		}
		if row.WSBaseline <= 0 || row.WSBaseline > float64(2) {
			t.Errorf("%s baseline WS %.2f out of range", row.Mix, row.WSBaseline)
		}
	}
}
