package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden snapshot files")

// goldenConfig is the fixed quick configuration the snapshots pin: two
// applications and short sampled traces, so the test stays fast while still
// exercising every substrate (caches, NoC, controllers) end to end.
func goldenConfig() Config {
	return Config{Apps: []string{"apsi", "gafort"}, MaxAccessesPerThread: 120}
}

// TestGoldenFigures pins the byte-exact text rendering of Figures 13, 15,
// and 18 for the seed configuration. The checked-in snapshots were generated
// with the original container/heap event queue; the simulator must keep
// producing identical bytes after any engine change (the timing-wheel
// scheduler's (time, seq) dispatch order is bit-compatible by design), so
// any drift here means the event kernel broke determinism somewhere.
//
// Regenerate deliberately with:
//
//	go test ./internal/experiments -run TestGoldenFigures -update
func TestGoldenFigures(t *testing.T) {
	cfg := goldenConfig()
	cases := []struct {
		name string
		run  func() (string, error)
	}{
		{"fig13", func() (string, error) {
			r, err := Fig13(cfg)
			if err != nil {
				return "", err
			}
			return r.Table(), nil
		}},
		{"fig15", func() (string, error) {
			r, err := Fig15(cfg)
			if err != nil {
				return "", err
			}
			return r.Table(), nil
		}},
		{"fig18", func() (string, error) {
			r, err := Fig18(cfg)
			if err != nil {
				return "", err
			}
			return r.Table(), nil
		}},
		{"figmig", func() (string, error) {
			r, err := FigMig(cfg)
			if err != nil {
				return "", err
			}
			return r.Table(), nil
		}},
		// figmix pins the PR's headline claim at FULL trace length (cap 0):
		// dynamic or hybrid migration beats the static compiler layout on at
		// least two of the three phase-changing mixes. Short traces would
		// close too few 4096-cycle windows for the tuned spec to ever fire,
		// so this is the one golden that runs uncapped; results are
		// bit-identical at any worker count, so it shards for wall-clock.
		{"figmix", func() (string, error) {
			r, err := FigMix(Config{Parallel: 8})
			if err != nil {
				return "", err
			}
			return r.Table(), nil
		}},
		{"figtune", func() (string, error) {
			r, err := FigTune(Config{
				Apps: cfg.Apps, MaxAccessesPerThread: cfg.MaxAccessesPerThread, Parallel: 8,
			})
			if err != nil {
				return "", err
			}
			return r.Table(), nil
		}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			got, err := c.run()
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", c.name+".golden")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden snapshot (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s rendering drifted from golden snapshot.\n--- got ---\n%s\n--- want ---\n%s", c.name, got, want)
			}
		})
	}
}
