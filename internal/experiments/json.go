package experiments

import "encoding/json"

// JSON serializations let downstream tooling (plotters, regression
// trackers) consume regenerated experiments without parsing tables.
// cmd/benchtab exposes them behind -json.

// MarshalJSON renders the result as {id, title, columns, rows, average}.
func (f *FigResult) MarshalJSON() ([]byte, error) {
	type row struct {
		App    string    `json:"app"`
		Values []float64 `json:"values"`
	}
	out := struct {
		ID      string    `json:"id"`
		Title   string    `json:"title"`
		Columns []string  `json:"columns"`
		Rows    []row     `json:"rows"`
		Average []float64 `json:"average,omitempty"`
	}{ID: f.ID, Title: f.Title, Columns: f.Columns, Average: f.Average}
	for _, r := range f.Rows {
		out.Rows = append(out.Rows, row{App: r.App, Values: r.Values})
	}
	return json.Marshal(out)
}

// MarshalJSON renders the Figure 13 maps.
func (r *MapResult) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		ID                string    `json:"id"`
		Title             string    `json:"title"`
		MC                int       `json:"mc"`
		MeshX             int       `json:"meshX"`
		Original          []float64 `json:"original"`
		Optimized         []float64 `json:"optimized"`
		QuadrantOriginal  float64   `json:"quadrantShareOriginal"`
		QuadrantOptimized float64   `json:"quadrantShareOptimized"`
	}{r.ID, r.Title, r.MC, r.MeshX, r.Original, r.Optimized,
		r.QuadrantShareOriginal, r.QuadrantShareOptimized})
}

// MarshalJSON renders the Figure 15 CDFs.
func (r *CDFResult) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		ID          string    `json:"id"`
		Title       string    `json:"title"`
		OnChipBase  []float64 `json:"onchipOriginal"`
		OnChipOpt   []float64 `json:"onchipOptimized"`
		OffChipBase []float64 `json:"offchipOriginal"`
		OffChipOpt  []float64 `json:"offchipOptimized"`
	}{r.ID, r.Title, r.OnChipBase, r.OnChipOpt, r.OffChipBase, r.OffChipOpt})
}

// MarshalJSON renders the Figure 25 mixes.
func (r *MixResult) MarshalJSON() ([]byte, error) {
	type row struct {
		Mix         string  `json:"mix"`
		WSBaseline  float64 `json:"wsBaseline"`
		WSOptimized float64 `json:"wsOptimized"`
		Improvement float64 `json:"improvementPct"`
	}
	out := struct {
		ID    string `json:"id"`
		Title string `json:"title"`
		Rows  []row  `json:"rows"`
	}{ID: r.ID, Title: r.Title}
	for _, m := range r.Rows {
		out.Rows = append(out.Rows, row{m.Mix, m.WSBaseline, m.WSOptimized, m.ImprovementP})
	}
	return json.Marshal(out)
}

// RunJSON executes one experiment by ID and returns its JSON encoding.
func RunJSON(id string, cfg Config) ([]byte, error) {
	var v json.Marshaler
	var err error
	switch id {
	case "fig13":
		v, err = Fig13(cfg)
	case "fig15":
		v, err = Fig15(cfg)
	case "fig25":
		v, err = Fig25(cfg)
	default:
		var f *FigResult
		f, err = figByID(id, cfg)
		v = f
	}
	if err != nil {
		return nil, err
	}
	return json.Marshal(v)
}

// figByID dispatches the FigResult-shaped experiments.
func figByID(id string, cfg Config) (*FigResult, error) {
	switch id {
	case "fig3":
		return Fig3(cfg)
	case "fig4":
		return Fig4(cfg)
	case "table2":
		return Table2(cfg)
	case "fig14":
		return Fig14(cfg)
	case "fig16":
		return Fig16(cfg)
	case "fig17":
		return Fig17(cfg)
	case "fig18":
		return Fig18(cfg)
	case "fig19":
		return Fig19(cfg)
	case "fig20":
		return Fig20(cfg)
	case "fig21":
		return Fig21(cfg)
	case "fig22":
		return Fig22(cfg)
	case "fig23":
		return Fig23(cfg)
	case "fig24":
		return Fig24(cfg)
	case "figmig":
		return FigMig(cfg)
	case "figmix":
		return FigMix(cfg)
	case "figtune":
		return FigTune(cfg)
	default:
		return nil, errUnknown(id)
	}
}

func errUnknown(id string) error {
	return &unknownExperimentError{id}
}

type unknownExperimentError struct{ id string }

func (e *unknownExperimentError) Error() string {
	return "experiments: unknown experiment " + e.id
}
