package experiments

import (
	"encoding/json"
	"testing"
)

func TestRunJSON(t *testing.T) {
	cfg := fastCfg()
	for _, id := range []string{"table2", "fig13", "fig15", "fig25"} {
		raw, err := RunJSON(id, cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		var v map[string]any
		if err := json.Unmarshal(raw, &v); err != nil {
			t.Fatalf("%s: invalid JSON: %v", id, err)
		}
		if v["id"] == "" || v["id"] == nil {
			t.Errorf("%s: missing id field", id)
		}
	}
	if _, err := RunJSON("nope", cfg); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestFigResultJSONShape(t *testing.T) {
	f := &FigResult{
		ID: "FigX", Title: "t", Columns: []string{"a"},
		Rows:    []AppRow{{App: "apsi", Values: []float64{1.5}}},
		Average: []float64{1.5},
	}
	raw, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	var v struct {
		ID   string `json:"id"`
		Rows []struct {
			App    string    `json:"app"`
			Values []float64 `json:"values"`
		} `json:"rows"`
		Average []float64 `json:"average"`
	}
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatal(err)
	}
	if v.ID != "FigX" || len(v.Rows) != 1 || v.Rows[0].Values[0] != 1.5 || v.Average[0] != 1.5 {
		t.Errorf("round trip: %+v", v)
	}
}
