package experiments

import (
	"fmt"

	"offchip/internal/core"
	"offchip/internal/layout"
	"offchip/internal/sim"
)

// Fig17 reproduces Figure 17: execution time improvement under the two
// L2-to-MC mappings of Figure 8 (M1: one controller per quadrant; M2: two
// controllers per half). The paper's crossover — only the high-MLP
// applications fma3d and minighost prefer M2 — is also checked by the
// compiler analysis column (the chooser's pick).
func Fig17(cfg Config) (*FigResult, error) {
	m := layout.Default8x8()
	p := layout.PlacementCorners(m.MeshX, m.MeshY)
	m1, err := layout.MappingM1(m, p)
	if err != nil {
		return nil, err
	}
	m2, err := layout.MappingM2(m, p)
	if err != nil {
		return nil, err
	}
	f, err := execSuite(cfg, "Fig17", "L2-to-MC mapping M1 vs M2",
		[]variant{{"M1", m, m1}, {"M2", m, m2}}, cfg.coreOpts())
	if err != nil {
		return nil, err
	}
	// Third column: 1 when the compiler analysis of Section 4 picks M2.
	f.Columns = append(f.Columns, "chooser=M2")
	apps, _ := cfg.apps()
	for i, app := range apps {
		pick := layout.ChooseMapping([]*layout.ClusterMapping{m1, m2}, app.Demand, 4)
		v := 0.0
		if pick == m2 {
			v = 1
		}
		f.Rows[i].Values = append(f.Rows[i].Values, v)
	}
	f.finish()
	return f, nil
}

// Fig18 reproduces Figure 18: bank queue utilization (time-averaged queue
// occupancy) per application under mapping M1, which explains why fma3d
// and minighost prefer M2.
func Fig18(cfg Config) (*FigResult, error) {
	apps, err := cfg.apps()
	if err != nil {
		return nil, err
	}
	m, cm, err := defaultMachine(layout.LineInterleave)
	if err != nil {
		return nil, err
	}
	f := &FigResult{
		ID:      "Fig18",
		Title:   "bank queue occupancy under M1 (optimized runs)",
		Columns: []string{"queue-occupancy"},
	}
	opts := cfg.coreOpts()
	for _, app := range apps {
		_, optW, _, err := core.Workloads(app, m, cm, opts)
		if err != nil {
			return nil, err
		}
		simCfg := core.SimConfig(m, cm, opts)
		r, err := sim.Run(simCfg, optW)
		if err != nil {
			return nil, err
		}
		f.Rows = append(f.Rows, AppRow{App: app.Name, Values: []float64{r.AvgQueueOcc}})
	}
	f.finish()
	return f, nil
}

// Fig19 reproduces Figure 19: execution time improvement under the three
// memory controller placements (P1 corners, P2 diamond, P3 top/bottom).
func Fig19(cfg Config) (*FigResult, error) {
	m := layout.Default8x8()
	var variants []variant
	for _, p := range []*layout.MCPlacement{
		layout.PlacementCorners(m.MeshX, m.MeshY),
		layout.PlacementDiamond(m.MeshX, m.MeshY),
		layout.PlacementTopBottom(m.MeshX, m.MeshY),
	} {
		cm, err := layout.MappingM1(m, p)
		if err != nil {
			return nil, err
		}
		variants = append(variants, variant{p.Name, m, cm})
	}
	return execSuite(cfg, "Fig19", "MC placements P1/P2/P3", variants, cfg.coreOpts())
}

// Fig20 reproduces Figure 20: execution time improvement as the memory
// controller count grows (4, 8, 16 controllers around the perimeter, one
// per cluster as in Figure 27).
func Fig20(cfg Config) (*FigResult, error) {
	var variants []variant
	for _, n := range []int{4, 8, 16} {
		m := layout.Default8x8()
		m.NumMCs = n
		p, err := layout.PlacementPerimeter(m.MeshX, m.MeshY, n)
		if err != nil {
			return nil, err
		}
		cm, err := layout.MappingM1(m, p)
		if err != nil {
			return nil, err
		}
		variants = append(variants, variant{fmt.Sprintf("%dMC", n), m, cm})
	}
	return execSuite(cfg, "Fig20", "memory controller counts", variants, cfg.coreOpts())
}

// Fig21 reproduces Figure 21: execution time improvement on 4×4, 4×8, and
// 8×8 meshes (four corner controllers each).
func Fig21(cfg Config) (*FigResult, error) {
	var variants []variant
	for _, dims := range [][2]int{{4, 4}, {8, 4}, {8, 8}} {
		m := layout.Default8x8()
		m.MeshX, m.MeshY = dims[0], dims[1]
		cm, err := layout.MappingM1(m, layout.PlacementCorners(m.MeshX, m.MeshY))
		if err != nil {
			return nil, err
		}
		variants = append(variants, variant{fmt.Sprintf("%dx%d", dims[0], dims[1]), m, cm})
	}
	return execSuite(cfg, "Fig21", "mesh sizes", variants, cfg.coreOpts())
}
