package experiments

import (
	"fmt"

	"offchip/internal/layout"
	"offchip/internal/runner"
)

// Fig17 reproduces Figure 17: execution time improvement under the two
// L2-to-MC mappings of Figure 8 (M1: one controller per quadrant; M2: two
// controllers per half). The paper's crossover — only the high-MLP
// applications fma3d and minighost prefer M2 — is also checked by the
// compiler analysis column (the chooser's pick).
func Fig17(cfg Config) (*FigResult, error) {
	f, err := execSuite(cfg, "Fig17", "L2-to-MC mapping M1 vs M2", []variant{
		{"M1", runner.JobSpec{Mapping: "m1"}},
		{"M2", runner.JobSpec{Mapping: "m2"}},
	})
	if err != nil {
		return nil, err
	}
	// Third column: 1 when the compiler analysis of Section 4 picks M2.
	// The chooser consumes only the static demand profile, so this column
	// needs no simulation jobs.
	m := layout.Default8x8()
	p := layout.PlacementCorners(m.MeshX, m.MeshY)
	m1, err := layout.MappingM1(m, p)
	if err != nil {
		return nil, err
	}
	m2, err := layout.MappingM2(m, p)
	if err != nil {
		return nil, err
	}
	f.Columns = append(f.Columns, "chooser=M2")
	apps, _ := cfg.apps()
	for i, app := range apps {
		pick := layout.ChooseMapping([]*layout.ClusterMapping{m1, m2}, app.Demand, 4)
		v := 0.0
		if pick == m2 {
			v = 1
		}
		f.Rows[i].Values = append(f.Rows[i].Values, v)
	}
	f.finish()
	return f, nil
}

// Fig18 reproduces Figure 18: bank queue utilization (time-averaged queue
// occupancy) per application under mapping M1, which explains why fma3d
// and minighost prefer M2. The table is rendered from the merged registry
// view of the sharded jobs: each job's dram/queue_len gauges are looked up
// by job=<id>,run=optimized scope and time-averaged at that job's own end
// time.
func Fig18(cfg Config) (*FigResult, error) {
	apps, err := cfg.apps()
	if err != nil {
		return nil, err
	}
	specs := make([]runner.JobSpec, len(apps))
	for i, app := range apps {
		specs[i] = cfg.spec(runner.ModeOptimized, app.Name)
	}
	res, err := cfg.runJobs(specs)
	if err != nil {
		return nil, err
	}
	merged := res.Merged()
	f := &FigResult{
		ID:      "Fig18",
		Title:   "bank queue occupancy under M1 (optimized runs)",
		Columns: []string{"queue-occupancy"},
	}
	for i, app := range apps {
		o := res.Outcomes[i]
		until := o.ExecTimes["optimized"]
		var sum float64
		for mc := 0; mc < o.Spec.NumMCs; mc++ {
			sum += merged.TimeWeighted("dram", "queue_len",
				fmt.Sprintf("mc=%d", mc), "job="+o.ShortID, "run=optimized").Avg(until)
		}
		f.Rows = append(f.Rows, AppRow{App: app.Name,
			Values: []float64{sum / float64(o.Spec.NumMCs)}})
	}
	f.finish()
	return f, nil
}

// Fig19 reproduces Figure 19: execution time improvement under the three
// memory controller placements (P1 corners, P2 diamond, P3 top/bottom).
func Fig19(cfg Config) (*FigResult, error) {
	return execSuite(cfg, "Fig19", "MC placements P1/P2/P3", []variant{
		{"P1-corners", runner.JobSpec{Placement: "corners"}},
		{"P2-diamond", runner.JobSpec{Placement: "diamond"}},
		{"P3-topbottom", runner.JobSpec{Placement: "topbottom"}},
	})
}

// Fig20 reproduces Figure 20: execution time improvement as the memory
// controller count grows (4, 8, 16 controllers around the perimeter, one
// per cluster as in Figure 27).
func Fig20(cfg Config) (*FigResult, error) {
	var variants []variant
	for _, n := range []int{4, 8, 16} {
		variants = append(variants, variant{
			fmt.Sprintf("%dMC", n),
			runner.JobSpec{Placement: "perimeter", NumMCs: n},
		})
	}
	return execSuite(cfg, "Fig20", "memory controller counts", variants)
}

// Fig21 reproduces Figure 21: execution time improvement on 4×4, 4×8, and
// 8×8 meshes (four corner controllers each).
func Fig21(cfg Config) (*FigResult, error) {
	var variants []variant
	for _, dims := range [][2]int{{4, 4}, {8, 4}, {8, 8}} {
		variants = append(variants, variant{
			fmt.Sprintf("%dx%d", dims[0], dims[1]),
			runner.JobSpec{MeshX: dims[0], MeshY: dims[1]},
		})
	}
	return execSuite(cfg, "Fig21", "mesh sizes", variants)
}
