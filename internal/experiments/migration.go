package experiments

import (
	"fmt"

	"offchip/internal/mem"
	"offchip/internal/runner"
)

// figMigJobsPerApp is the job count FigMig enumerates per application, in
// fixed order: the page-interleaved OS-default baseline (the reference
// execution time), the paper's static compiler layout, first-touch-nearest
// (the FCFS placement of the dynamic rival family), dynamic migration on
// top of first-touch-nearest, and the hybrid (compiler layout + residual
// migration).
const figMigJobsPerApp = 5

// FigMig is the repro's first beyond-the-paper figure: the static
// compiler-directed layout head-to-head against the online placement family
// (first-touch-nearest and window-based hot-page migration, the
// FCFSTranslation/DynamicTranslation3 rivals), plus the hybrid that starts
// from the compiler layout and migrates residual hot pages. All runs use
// page interleaving; exec% columns are execution-time improvement over the
// page-interleaved round-robin baseline, and the migration columns count
// committed page remaps — every one paid for with page-copy flits through
// the NoC and TLB-shootdown stalls (see mem.MigrationSpec).
func FigMig(cfg Config) (*FigResult, error) {
	apps, err := cfg.apps()
	if err != nil {
		return nil, err
	}
	mig := cfg.Migrate
	if mig == "" {
		mig = "on"
	}
	if _, err := mem.ParseMigrationSpec(mig); err != nil {
		return nil, fmt.Errorf("figmig: %w", err)
	}
	specs := make([]runner.JobSpec, 0, len(apps)*figMigJobsPerApp)
	for _, app := range apps {
		base := cfg.spec(runner.ModeBaseline, app.Name)
		base.Interleave = "page"
		p2 := base
		p2.Mode = runner.ModeOptimized
		ft := base
		ft.Policy = "ftnearest"
		dyn := ft
		dyn.Migrate = mig
		hyb := p2
		hyb.Migrate = mig
		specs = append(specs, base, p2, ft, dyn, hyb)
	}
	res, err := cfg.runJobs(specs)
	if err != nil {
		return nil, fmt.Errorf("figmig: %w", err)
	}
	f := &FigResult{
		ID:    "figmig",
		Title: "static compiler layout vs. online page migration (exec improvement over page-interleaved default)",
		Columns: []string{
			"static-p2 exec%", "ftnearest exec%", "dynamic exec%", "hybrid exec%",
			"dyn-migs", "hyb-migs",
		},
	}
	for i, app := range apps {
		outs := res.Outcomes[i*figMigJobsPerApp : (i+1)*figMigJobsPerApp]
		baseT := float64(outs[0].Run.ExecTime)
		imp := func(o *runner.JobOutcome) float64 {
			if baseT == 0 {
				return 0
			}
			return 100 * (baseT - float64(o.Run.ExecTime)) / baseT
		}
		f.Rows = append(f.Rows, AppRow{App: app.Name, Values: []float64{
			imp(outs[1]), imp(outs[2]), imp(outs[3]), imp(outs[4]),
			float64(outs[3].Run.Migrations), float64(outs[4].Run.Migrations),
		}})
	}
	f.finish()
	return f, nil
}
