package experiments

import (
	"fmt"

	"offchip/internal/mem"
	"offchip/internal/runner"
	"offchip/internal/workloads"
)

// figMixJobsPerMix mirrors figMigJobsPerApp: per mix, the page-interleaved
// OS-default baseline, the static compiler layout, first-touch-nearest,
// dynamic migration on top of first-touch-nearest, and the hybrid.
const figMixJobsPerMix = 5

// mixTunedMigrationSpec is the figtune winner for the phase-changing mixes:
// the default spec's window and threshold at single-page granularity. The
// g4 cluster default is what makes `-migrate on` safe on stationary
// full-trace workloads, but a phase rotation re-homes individual pages in
// different directions at once, and per-page moves chase it faster than
// whole-cluster ones — so the mix figure pins the per-page variant while
// everything else inherits the default.
const mixTunedMigrationSpec = "h16w4096c2f0t64"

// FigMix is FigMig's rematch on the workloads migration was built for:
// phase-changing multiprogrammed mixes (workloads.DefaultPhaseMixes), whose
// core rotations move every application's hot pages to a different mesh
// region at each loop-nest boundary. Any placement fixed before the run —
// the OS default, the compiler layout, first-touch — is right for at most
// one phase and wrong for the rest, so here the dynamic and hybrid schemes
// should beat the static compiler layout, inverting FigMig's stationary
// verdict. Columns are execution-time improvement over the page-interleaved
// round-robin baseline, plus the committed-remap counts of the migrating
// runs.
func FigMix(cfg Config) (*FigResult, error) {
	mixes := workloads.DefaultPhaseMixes()
	mig := cfg.Migrate
	if mig == "" {
		mig = mixTunedMigrationSpec
	}
	if _, err := mem.ParseMigrationSpec(mig); err != nil {
		return nil, fmt.Errorf("figmix: %w", err)
	}
	specs := make([]runner.JobSpec, 0, len(mixes)*figMixJobsPerMix)
	for _, mx := range mixes {
		base := cfg.spec(runner.ModeBaseline, "")
		base.Mix = mx.String()
		base.Interleave = "page"
		p2 := base
		p2.Mode = runner.ModeOptimized
		ft := base
		ft.Policy = "ftnearest"
		dyn := ft
		dyn.Migrate = mig
		hyb := p2
		hyb.Migrate = mig
		specs = append(specs, base, p2, ft, dyn, hyb)
	}
	res, err := cfg.runJobs(specs)
	if err != nil {
		return nil, fmt.Errorf("figmix: %w", err)
	}
	f := &FigResult{
		ID:    "figmix",
		Title: "phase-changing mixes: static layouts vs. online migration (exec improvement over page-interleaved default)",
		Columns: []string{
			"static-p2 exec%", "ftnearest exec%", "dynamic exec%", "hybrid exec%",
			"dyn-migs", "hyb-migs",
		},
	}
	for i, mx := range mixes {
		outs := res.Outcomes[i*figMixJobsPerMix : (i+1)*figMixJobsPerMix]
		baseT := float64(outs[0].Run.ExecTime)
		imp := func(o *runner.JobOutcome) float64 {
			if baseT == 0 {
				return 0
			}
			return 100 * (baseT - float64(o.Run.ExecTime)) / baseT
		}
		f.Rows = append(f.Rows, AppRow{App: mx.String(), Values: []float64{
			imp(outs[1]), imp(outs[2]), imp(outs[3]), imp(outs[4]),
			float64(outs[3].Run.Migrations), float64(outs[4].Run.Migrations),
		}})
	}
	f.finish()
	return f, nil
}
