package experiments

import (
	"fmt"

	"offchip/internal/core"
	"offchip/internal/layout"
	"offchip/internal/runner"
	"offchip/internal/sim"
	"offchip/internal/stats"
	"offchip/internal/trace"
	"offchip/internal/workloads"
)

// Fig24 reproduces Figure 24 (Section 6.4): execution time improvement
// with 1 and 2 threads per core — the gains grow with thread count because
// the unoptimized runs suffer disproportionate contention. (The paper
// highlights the two-threads-per-core point, e.g. minighost ≈20%.)
func Fig24(cfg Config) (*FigResult, error) {
	cores := layout.Default8x8().Cores()
	var variants []variant
	for _, tpc := range []int{1, 2} {
		variants = append(variants, variant{
			fmt.Sprintf("%dtpc", tpc),
			runner.JobSpec{Threads: cores * tpc},
		})
	}
	f, err := execSuite(cfg, "Fig24", "threads per core", variants)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Mix is one multiprogrammed workload of Figure 25.
type Mix struct {
	Name string
	Apps []string
}

// DefaultMixes are the co-scheduled pairs Figure 25 evaluates: each
// application runs one thread on every core, so each core time-shares one
// thread of each application in the mix.
func DefaultMixes() []Mix {
	return []Mix{
		{"W1", []string{"swim", "apsi"}},
		{"W2", []string{"mgrid", "minighost"}},
		{"W3", []string{"fma3d", "apsi"}},
		{"W4", []string{"gafort", "art"}},
	}
}

// MixResult is the Figure 25 outcome: weighted speedups of baseline and
// optimized multiprogrammed runs.
type MixResult struct {
	ID, Title string
	Rows      []MixRow
}

// MixRow is one workload mix's result.
type MixRow struct {
	Mix          string
	WSBaseline   float64
	WSOptimized  float64
	ImprovementP float64
}

// Table renders the result.
func (r *MixResult) Table() string {
	t := &stats.Table{
		Title:   fmt.Sprintf("%s: %s", r.ID, r.Title),
		Headers: []string{"mix", "ws-baseline", "ws-optimized", "improvement%"},
	}
	for _, row := range r.Rows {
		t.AddF(row.Mix, row.WSBaseline, row.WSOptimized, row.ImprovementP)
	}
	return t.String()
}

// Fig25 reproduces Figure 25 (Section 6.4): multiprogrammed workloads,
// evaluated with the weighted speedup metric [21]: Σᵢ Tᵢ(alone)/Tᵢ(shared).
// It stays sequential by design: the applications of a mix time-share one
// simulated machine, so a mix is a single simulation, not a shardable set
// of independent jobs.
func Fig25(cfg Config) (*MixResult, error) {
	m, cm, err := defaultMachine(layout.LineInterleave)
	if err != nil {
		return nil, err
	}
	res := &MixResult{ID: "Fig25", Title: "multiprogrammed mixes, weighted speedup"}
	opts := cfg.coreOpts()
	simCfg := core.SimConfig(m, cm, opts)
	for _, mix := range DefaultMixes() {
		// Build both flavors of every application in the mix, and measure
		// the common alone-time reference on the unoptimized runs (weighted
		// speedup compares shared throughput against one fixed baseline).
		var baseShared, optShared []*sim.Workload
		var alone []int64
		for appID, name := range mix.Apps {
			app, ok := workloads.ByName(name)
			if !ok {
				return nil, fmt.Errorf("fig25: unknown app %q", name)
			}
			baseW, optW, _, err := core.Workloads(app, m, cm, opts)
			if err != nil {
				return nil, fmt.Errorf("fig25/%s: %w", mix.Name, err)
			}
			for i := range baseW.Streams {
				baseW.Streams[i].AppID = appID
			}
			for i := range optW.Streams {
				optW.Streams[i].AppID = appID
			}
			r, err := sim.Run(simCfg, baseW)
			if err != nil {
				return nil, err
			}
			alone = append(alone, r.ExecTime)
			baseShared = append(baseShared, baseW)
			optShared = append(optShared, optW)
		}
		wsBase, err := mixWS(mix, simCfg, alone, baseShared)
		if err != nil {
			return nil, fmt.Errorf("fig25/%s: %w", mix.Name, err)
		}
		wsOpt, err := mixWS(mix, simCfg, alone, optShared)
		if err != nil {
			return nil, fmt.Errorf("fig25/%s: %w", mix.Name, err)
		}
		res.Rows = append(res.Rows, MixRow{
			Mix:          mix.Name,
			WSBaseline:   wsBase,
			WSOptimized:  wsOpt,
			ImprovementP: 100 * (wsOpt - wsBase) / wsBase,
		})
	}
	return res, nil
}

// mixWS runs the merged mix and returns Σᵢ Tᵢ(alone)/Tᵢ(shared).
func mixWS(mix Mix, simCfg sim.Config, alone []int64, ws []*sim.Workload) (float64, error) {
	merged := trace.Merge(mix.Name, ws...)
	r, err := sim.Run(simCfg, merged)
	if err != nil {
		return 0, err
	}
	var sharedTimes []int64
	for appID := range mix.Apps {
		sharedTimes = append(sharedTimes, r.AppExecTime[appID])
	}
	return stats.WeightedSpeedup(alone, sharedTimes), nil
}
