package experiments

import (
	"fmt"

	"offchip/internal/runner"
)

// Request is a declarative sweep: applications × layout schemes, expanded
// into canonical job IDs. It is the JSON body a sweep client POSTs to the
// sweep service's /submit endpoint, and the shape cmd/offchip -submit
// builds from its flags — the service side never invents job parameters,
// it only expands and canonicalizes.
type Request struct {
	// Apps restricts the suite (nil: all 13 applications).
	Apps []string `json:"apps,omitempty"`
	// Schemes names the layout schemes to cross with the apps (nil: all of
	// SchemeNames). Unknown names are errors, not silently dropped.
	Schemes []string `json:"schemes,omitempty"`
	// Cap shortens traces (MaxAccessesPerThread; 0: full traces).
	Cap int `json:"cap,omitempty"`
	// Seed decorrelates the jitter streams (0: the historical stream).
	Seed uint64 `json:"seed,omitempty"`
	// Sample enables sampled simulation ("", "on", or a compact spec).
	Sample string `json:"sample,omitempty"`
}

// SchemeNames lists the layout schemes a Request may name, in expansion
// order.
func SchemeNames() []string {
	names := make([]string, len(sweepSchemes))
	for i, s := range sweepSchemes {
		names[i] = s.Name
	}
	return names
}

// Expand enumerates the request's job specs app-major (apps in the paper's
// listing order, schemes in SchemeNames order) — the same deterministic
// enumeration ExampleSweep uses, so a request's job list and IDs are stable
// across processes and machines.
func (r Request) Expand() ([]runner.JobSpec, error) {
	cfg := Config{
		Apps:                 r.Apps,
		MaxAccessesPerThread: r.Cap,
		Seed:                 r.Seed,
		Sample:               r.Sample,
	}
	apps, err := cfg.apps()
	if err != nil {
		return nil, err
	}
	schemes := r.Schemes
	if len(schemes) == 0 {
		schemes = SchemeNames()
	}
	setters := make([]func(*runner.JobSpec), len(schemes))
	for i, name := range schemes {
		found := false
		for _, s := range sweepSchemes {
			if s.Name == name {
				setters[i] = s.Set
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("experiments: unknown scheme %q (have %v)", name, SchemeNames())
		}
	}
	var specs []runner.JobSpec
	for _, app := range apps {
		for i := range schemes {
			s := cfg.spec(runner.ModeCompare, app.Name)
			setters[i](&s)
			specs = append(specs, s)
		}
	}
	return specs, nil
}
