package experiments

import (
	"fmt"

	"offchip/internal/obs"
	"offchip/internal/prof"
	"offchip/internal/runner"
	"offchip/internal/stats"
)

// sweepSchemes are the layout schemes the example sweep crosses with the
// application suite. A fixed slice — never a map — so the enumerated job
// list (and every job ID) is identical on every run.
var sweepSchemes = []struct {
	Name string
	Set  func(*runner.JobSpec)
}{
	{"line/private", func(s *runner.JobSpec) {}},
	{"page/private", func(s *runner.JobSpec) { s.Interleave = "page" }},
	{"line/shared", func(s *runner.JobSpec) { s.L2 = "shared" }},
}

// ExampleSweep enumerates the demonstration sweep: every configured
// application × the three layout schemes, one three-way comparison job
// each, in app-major order (apps in the paper's listing order).
func (c Config) ExampleSweep() ([]runner.JobSpec, error) {
	apps, err := c.apps()
	if err != nil {
		return nil, err
	}
	var specs []runner.JobSpec
	for _, app := range apps {
		for _, sch := range sweepSchemes {
			s := c.spec(runner.ModeCompare, app.Name)
			sch.Set(&s)
			specs = append(specs, s)
		}
	}
	return specs, nil
}

// SweepResult is the outcome of RunSweep: the job list, the raw runner
// result, and the merged registry every cross-job view reads from.
type SweepResult struct {
	Specs  []runner.JobSpec
	Result *runner.Result
	Merged *obs.Registry
}

// RunSweep runs the example sweep across cfg.Parallel workers.
func RunSweep(cfg Config) (*SweepResult, error) {
	specs, err := cfg.ExampleSweep()
	if err != nil {
		return nil, err
	}
	res, err := cfg.runJobs(specs)
	if err != nil {
		return nil, err
	}
	return &SweepResult{Specs: specs, Result: res, Merged: res.Merged()}, nil
}

// Table renders one row per job: the scheme, the job's short ID (the
// replay handle is the full ID, printed by cmd/benchtab -jobs), and the
// headline improvements.
func (r *SweepResult) Table() string {
	t := &stats.Table{
		Title:   "example sweep: app × layout scheme",
		Headers: []string{"app", "scheme", "job", "exec%", "mem%", "offchip-net%"},
	}
	for i, o := range r.Result.Outcomes {
		c := o.Comparison
		t.AddF(o.Spec.App, sweepSchemes[i%len(sweepSchemes)].Name, o.ShortID,
			100*c.ExecImprovement(), 100*c.MemImprovement(), 100*c.OffChipNetImprovement())
	}
	return t.String()
}

// Profiles aggregates every job's per-run latency attribution into one
// profile per run name ("baseline", "optimized", "optimal") — the sweep-wide
// differential view. Empty unless the sweep ran with Config.Prof. Addition
// is commutative, so the aggregate is identical at any worker count.
func (r *SweepResult) Profiles() map[string]*prof.Profile {
	out := map[string]*prof.Profile{}
	for _, o := range r.Result.Outcomes {
		if o == nil || o.Err != nil {
			continue
		}
		for run, p := range o.Profiles {
			if out[run] == nil {
				out[run] = &prof.Profile{}
			}
			out[run].Add(p)
		}
	}
	return out
}

// MergedQueueOcc reads one job's mean bank-queue occupancy for the given
// run from the merged registry — the Figure 18 quantity, addressable per
// job after the sweep.
func (r *SweepResult) MergedQueueOcc(i int, run string) float64 {
	o := r.Result.Outcomes[i]
	until := o.ExecTimes[run]
	var sum float64
	for mc := 0; mc < o.Spec.NumMCs; mc++ {
		sum += r.Merged.TimeWeighted("dram", "queue_len",
			fmt.Sprintf("mc=%d", mc), "job="+o.ShortID, "run="+run).Avg(until)
	}
	return sum / float64(o.Spec.NumMCs)
}
