package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"offchip/internal/runner"
)

// TestExampleSweepGoldenJobList pins the enumerated job list: stable,
// sorted, no map iteration anywhere. If this golden list changes, replay
// IDs recorded from earlier sweeps stop resolving — treat that as a
// breaking change, not a test to update casually.
func TestExampleSweepGoldenJobList(t *testing.T) {
	cfg := Config{Apps: []string{"apsi", "gafort"}, MaxAccessesPerThread: 150}
	specs, err := cfg.ExampleSweep()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"j1:mode=compare,app=apsi,l2=private,il=line,map=m1,place=corners,mesh=8x8,mcs=4,threads=0,banks=0,mlp=0,pol=interleaved,cap=150,seed=0",
		"j1:mode=compare,app=apsi,l2=private,il=page,map=m1,place=corners,mesh=8x8,mcs=4,threads=0,banks=0,mlp=0,pol=interleaved,cap=150,seed=0",
		"j1:mode=compare,app=apsi,l2=shared,il=line,map=m1,place=corners,mesh=8x8,mcs=4,threads=0,banks=0,mlp=0,pol=interleaved,cap=150,seed=0",
		"j1:mode=compare,app=gafort,l2=private,il=line,map=m1,place=corners,mesh=8x8,mcs=4,threads=0,banks=0,mlp=0,pol=interleaved,cap=150,seed=0",
		"j1:mode=compare,app=gafort,l2=private,il=page,map=m1,place=corners,mesh=8x8,mcs=4,threads=0,banks=0,mlp=0,pol=interleaved,cap=150,seed=0",
		"j1:mode=compare,app=gafort,l2=shared,il=line,map=m1,place=corners,mesh=8x8,mcs=4,threads=0,banks=0,mlp=0,pol=interleaved,cap=150,seed=0",
	}
	if len(specs) != len(want) {
		t.Fatalf("enumerated %d jobs, want %d", len(specs), len(want))
	}
	for i, s := range specs {
		if s.ID() != want[i] {
			t.Errorf("job %d:\n got %s\nwant %s", i, s.ID(), want[i])
		}
	}
	// Enumeration must be reproducible call-to-call.
	again, err := cfg.ExampleSweep()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(specs, again) {
		t.Error("two enumerations of the same config differ")
	}
}

// TestDeterminismSweepParallelMatchesSequential is the tentpole's
// differential gate at the experiments layer: the full example sweep run
// sequentially and with eight workers must agree byte-for-byte — per-job
// canonical outcomes and the merged registry snapshot alike. Table-driven
// over worker counts so the boundary cases (more workers than jobs) ride
// along.
func TestDeterminismSweepParallelMatchesSequential(t *testing.T) {
	cfg := Config{Apps: []string{"apsi", "gafort"}, MaxAccessesPerThread: 120}
	ref, err := RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	refJSON := make([][]byte, len(ref.Result.Outcomes))
	for i, o := range ref.Result.Outcomes {
		if refJSON[i], err = o.CanonicalJSON(); err != nil {
			t.Fatal(err)
		}
	}
	const horizon = int64(1) << 40
	refSnap := ref.Merged.Snapshot(horizon)

	for _, tc := range []struct {
		name    string
		workers int
	}{
		{"parallel-2", 2},
		{"parallel-8", 8},
		{"parallel-32-more-workers-than-jobs", 32},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := cfg
			c.Parallel = tc.workers
			got, err := RunSweep(c)
			if err != nil {
				t.Fatal(err)
			}
			for i, o := range got.Result.Outcomes {
				j, err := o.CanonicalJSON()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(j, refJSON[i]) {
					t.Errorf("job %s: %d-worker outcome differs from sequential", o.ID, tc.workers)
				}
			}
			if !reflect.DeepEqual(got.Merged.Snapshot(horizon), refSnap) {
				t.Errorf("%d-worker merged snapshot differs from sequential", tc.workers)
			}
		})
	}
}

// TestDeterminismFiguresUnderParallelism pins the user-visible contract:
// the rendered figure tables are identical at any worker count.
func TestDeterminismFiguresUnderParallelism(t *testing.T) {
	cfg := Config{Apps: []string{"apsi", "gafort"}, MaxAccessesPerThread: 120}
	for _, id := range []string{"fig13", "fig15", "fig18"} {
		seq, err := Run(id, cfg)
		if err != nil {
			t.Fatalf("%s sequential: %v", id, err)
		}
		pcfg := cfg
		pcfg.Parallel = 8
		par, err := Run(id, pcfg)
		if err != nil {
			t.Fatalf("%s parallel: %v", id, err)
		}
		if seq != par {
			t.Errorf("%s: rendered table differs between 1 and 8 workers:\n%s\nvs\n%s", id, seq, par)
		}
	}
}

// TestSweepSeedDecorrelatesJobs checks that a non-zero sweep seed gives
// each job its own jitter stream while staying reproducible.
func TestSweepSeedDecorrelatesJobs(t *testing.T) {
	specA := runner.JobSpec{App: "apsi", Cap: 120, Seed: 7}
	specB := runner.JobSpec{App: "apsi", Cap: 120, Seed: 7, Interleave: "page"}
	if specA.ID() == specB.ID() {
		t.Fatal("distinct jobs share an ID")
	}
	a1, err := runner.Replay(specA.ID())
	if err != nil {
		t.Fatal(err)
	}
	a2, err := runner.Replay(specA.ID())
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := a1.CanonicalJSON()
	j2, _ := a2.CanonicalJSON()
	if !bytes.Equal(j1, j2) {
		t.Error("seeded replay is not reproducible")
	}
}

func TestSweepTableMentionsEveryJob(t *testing.T) {
	cfg := Config{Apps: []string{"apsi"}, MaxAccessesPerThread: 120, Parallel: 4}
	res, err := RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tbl := res.Table()
	for _, o := range res.Result.Outcomes {
		if !contains(tbl, o.ShortID) {
			t.Errorf("sweep table lacks job %s", o.ShortID)
		}
	}
	// The merged Figure 18 view is addressable per job and positive for at
	// least the optimized run of some job.
	var any float64
	for i := range res.Result.Outcomes {
		any += res.MergedQueueOcc(i, "optimized")
	}
	if any <= 0 {
		t.Error("merged queue occupancy is zero across the whole sweep")
	}
}

func contains(s, sub string) bool {
	return bytes.Contains([]byte(s), []byte(sub))
}
