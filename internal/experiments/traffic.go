package experiments

import (
	"fmt"
	"strings"

	"offchip/internal/layout"
	"offchip/internal/obs"
	"offchip/internal/runner"
	"offchip/internal/stats"
)

// MapResult is the Figure 13 pair of per-node access-distribution maps for
// one controller: the fraction of the controller's off-chip requests issued
// by each node, before and after the optimization.
type MapResult struct {
	ID, Title string
	MC        int
	MeshX     int
	Original  []float64 // per node (row-major), sums to 1
	Optimized []float64

	// QuadrantShare is the fraction of the controller's traffic coming
	// from its own cluster's nodes — the "skew" Figure 13 visualizes.
	QuadrantShareOriginal  float64
	QuadrantShareOptimized float64
}

// Fig13 reproduces Figure 13: the distribution across nodes of apsi's
// off-chip accesses to controller MC0 (the paper's MC1, top-left corner),
// original vs optimized. In the original, requests come from all over the
// chip; optimized, they skew to the nearby quadrant. The maps are rendered
// from the merged registry: the job's sim/offchip_requests counters are
// addressed by their job=<id>,run=<name> scope labels.
func Fig13(cfg Config) (*MapResult, error) {
	apps, err := cfg.apps()
	if err != nil {
		return nil, err
	}
	target := apps[0]
	for _, a := range apps {
		if a.Name == "apsi" {
			target = a
		}
	}
	res, err := cfg.runJobs([]runner.JobSpec{cfg.spec(runner.ModeCompare, target.Name)})
	if err != nil {
		return nil, err
	}
	o := res.Outcomes[0]
	m, cm, _, err := o.Spec.Build()
	if err != nil {
		return nil, err
	}
	merged := res.Merged()
	readMap := func(run string) [][]int64 {
		am := make([][]int64, m.Cores())
		for node := range am {
			am[node] = make([]int64, m.NumMCs)
			for mc := range am[node] {
				am[node][mc] = merged.Counter("sim", "offchip_requests",
					fmt.Sprintf("node=%d", node), fmt.Sprintf("mc=%d", mc),
					"job="+o.ShortID, "run="+run).Value()
			}
		}
		return am
	}
	r := &MapResult{
		ID:    "Fig13",
		Title: fmt.Sprintf("distribution of %s's off-chip accesses to MC0", target.Name),
		MC:    0,
		MeshX: m.MeshX,
	}
	r.Original, r.QuadrantShareOriginal = mcMap(readMap("baseline"), 0, cm)
	r.Optimized, r.QuadrantShareOptimized = mcMap(readMap("optimized"), 0, cm)
	return r, nil
}

func mcMap(accessMap [][]int64, mc int, cm *layout.ClusterMapping) ([]float64, float64) {
	out := make([]float64, len(accessMap))
	var total, local int64
	for node := range accessMap {
		total += accessMap[node][mc]
	}
	if total == 0 {
		return out, 0
	}
	for node := range accessMap {
		out[node] = float64(accessMap[node][mc]) / float64(total)
		if cm.ClusterOf(node)*cm.K == mc {
			local += accessMap[node][mc]
		}
	}
	return out, float64(local) / float64(total)
}

// Table renders the two maps as per-mille heat grids.
func (r *MapResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	render := func(name string, m []float64, share float64) {
		fmt.Fprintf(&b, "%s (%.0f%% from MC%d's own cluster), per-mille per node:\n", name, 100*share, r.MC)
		for y := 0; y*r.MeshX < len(m); y++ {
			for x := 0; x < r.MeshX; x++ {
				fmt.Fprintf(&b, "%4d", int(m[y*r.MeshX+x]*1000+0.5))
			}
			b.WriteByte('\n')
		}
	}
	render("original", r.Original, r.QuadrantShareOriginal)
	render("optimized", r.Optimized, r.QuadrantShareOptimized)
	return b.String()
}

// CDFResult is Figure 15: the cumulative distribution of links traversed
// by on-chip and off-chip requests, original vs optimized, averaged over
// the application suite.
type CDFResult struct {
	ID, Title   string
	OnChipBase  []float64
	OnChipOpt   []float64
	OffChipBase []float64
	OffChipOpt  []float64
}

// Fig15 reproduces Figure 15. Per-job hop histograms are read back from
// the merged registry (scoped by job and run), turned into CDFs, and
// averaged across the suite — byte-identical to the per-run HopCDF the
// simulator reports, since both render from the same histogram counts.
func Fig15(cfg Config) (*CDFResult, error) {
	apps, err := cfg.apps()
	if err != nil {
		return nil, err
	}
	specs := make([]runner.JobSpec, len(apps))
	for i, app := range apps {
		specs[i] = cfg.spec(runner.ModeCompare, app.Name)
	}
	res, err := cfg.runJobs(specs)
	if err != nil {
		return nil, err
	}
	merged := res.Merged()
	r := &CDFResult{ID: "Fig15", Title: "CDF of links traversed per request"}
	n := 0
	for i := range apps {
		o := res.Outcomes[i]
		m, _, _, err := o.Spec.Build()
		if err != nil {
			return nil, err
		}
		// The NoC registers hop histograms with one bucket per possible
		// hop count (0..meshX+meshY) plus an overflow bucket that XY
		// routing can never reach; drop it to keep the historical shape.
		bounds := obs.LinearBuckets(0, 1, m.MeshX+m.MeshY+1)
		cdf := func(class, run string) []float64 {
			c := stats.CumulativeFractions(merged.Histogram("noc", "hops", bounds,
				"class="+class, "job="+o.ShortID, "run="+run).Counts())
			return c[:len(c)-1]
		}
		r.OnChipBase = accumulate(r.OnChipBase, cdf("on-chip", "baseline"))
		r.OnChipOpt = accumulate(r.OnChipOpt, cdf("on-chip", "optimized"))
		r.OffChipBase = accumulate(r.OffChipBase, cdf("off-chip", "baseline"))
		r.OffChipOpt = accumulate(r.OffChipOpt, cdf("off-chip", "optimized"))
		n++
	}
	for _, s := range [][]float64{r.OnChipBase, r.OnChipOpt, r.OffChipBase, r.OffChipOpt} {
		for i := range s {
			s[i] /= float64(n)
		}
	}
	return r, nil
}

func accumulate(dst, src []float64) []float64 {
	if dst == nil {
		dst = make([]float64, len(src))
	}
	for i := range dst {
		if i < len(src) {
			dst[i] += src[i]
		} else {
			dst[i] += 1
		}
	}
	return dst
}

// AtOrBelow returns the fraction of the given series' requests that
// traverse at most h links.
func (r *CDFResult) AtOrBelow(series []float64, h int) float64 {
	if h >= len(series) {
		return 1
	}
	return series[h]
}

// Table renders the four CDFs.
func (r *CDFResult) Table() string {
	t := &stats.Table{
		Title:   fmt.Sprintf("%s: %s", r.ID, r.Title),
		Headers: []string{"links<=", "onchip-orig%", "onchip-opt%", "offchip-orig%", "offchip-opt%"},
	}
	for h := 0; h < len(r.OffChipBase); h++ {
		t.AddF(fmt.Sprintf("%d", h),
			100*r.OnChipBase[h], 100*r.OnChipOpt[h],
			100*r.OffChipBase[h], 100*r.OffChipOpt[h])
	}
	return t.String()
}
