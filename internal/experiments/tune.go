package experiments

import (
	"fmt"

	"offchip/internal/mem"
	"offchip/internal/runner"
	"offchip/internal/workloads"
)

// tuneGrid enumerates the migration-spec candidates FigTune sweeps, in
// fixed order: hot-threshold × window × cooldown × cluster granularity,
// with the copy-flit and shootdown cost model held at the defaults. The
// grid spans the regimes the stationary suite and the phase mixes pull
// toward — patient high-threshold long-window specs that sit still on
// stationary apps, and responsive ones that chase a moving hot set.
func tuneGrid() []mem.MigrationSpec {
	var out []mem.MigrationSpec
	for _, thr := range []int{16, 64, 256} {
		for _, win := range []int64{1024, 4096} {
			for _, cool := range []int{2, 8} {
				for _, g := range []int{1, 4} {
					out = append(out, mem.MigrationSpec{
						HotThreshold:    thr,
						WindowCycles:    win,
						CooldownWindows: cool,
						ShootdownCycles: 64,
						ClusterPages:    g,
					})
				}
			}
		}
	}
	return out
}

// tuneWorkload is one column of the FigTune matrix: a stationary
// application (App set) or a phase-changing mix (Mix set).
type tuneWorkload struct {
	name string
	app  string
	mix  string
}

// FigTune is the spec-tuning sweep behind the default migration spec: every
// tuneGrid candidate runs against every workload of the suite (the config's
// applications plus the default phase mixes), and each cell reports the net
// execution-time change of adding migration to the first-touch-nearest
// baseline — positive means migration paid for its copies and shootdowns,
// negative means it thrashed. The trailing "min" column is the
// worst-workload net, the number a default spec must keep non-negative, and
// the title names the grid's winner (highest min, mean as tie-break). All
// jobs are canonical runner jobs, so the sweep shards across workers — or
// across sweepd shards — like any other suite.
func FigTune(cfg Config) (*FigResult, error) {
	apps, err := cfg.apps()
	if err != nil {
		return nil, err
	}
	var wls []tuneWorkload
	for _, app := range apps {
		wls = append(wls, tuneWorkload{name: app.Name, app: app.Name})
	}
	for _, mx := range workloads.DefaultPhaseMixes() {
		wls = append(wls, tuneWorkload{name: mx.String(), mix: mx.String()})
	}
	grid := tuneGrid()

	// One first-touch-nearest reference job per workload, then the grid's
	// migrating jobs spec-major: job i·len(wls)+j after the references is
	// grid[i] on wls[j].
	ref := func(w tuneWorkload) runner.JobSpec {
		s := cfg.spec(runner.ModeBaseline, w.app)
		s.Mix = w.mix
		s.Interleave = "page"
		s.Policy = "ftnearest"
		return s
	}
	specs := make([]runner.JobSpec, 0, len(wls)*(len(grid)+1))
	for _, w := range wls {
		specs = append(specs, ref(w))
	}
	for _, g := range grid {
		for _, w := range wls {
			s := ref(w)
			s.Migrate = g.String()
			specs = append(specs, s)
		}
	}
	res, err := cfg.runJobs(specs)
	if err != nil {
		return nil, fmt.Errorf("figtune: %w", err)
	}

	refT := make([]float64, len(wls))
	for j := range wls {
		refT[j] = float64(res.Outcomes[j].Run.ExecTime)
	}
	f := &FigResult{ID: "figtune"}
	for _, w := range wls {
		f.Columns = append(f.Columns, w.name+" net%")
	}
	f.Columns = append(f.Columns, "min")
	best, bestMin, bestMean := "", 0.0, 0.0
	for i, g := range grid {
		row := AppRow{App: g.String()}
		min, mean := 0.0, 0.0
		for j := range wls {
			o := res.Outcomes[len(wls)+i*len(wls)+j]
			var net float64
			if refT[j] != 0 {
				net = 100 * (refT[j] - float64(o.Run.ExecTime)) / refT[j]
			}
			row.Values = append(row.Values, net)
			mean += net
			if j == 0 || net < min {
				min = net
			}
		}
		mean /= float64(len(wls))
		row.Values = append(row.Values, min)
		f.Rows = append(f.Rows, row)
		if best == "" || min > bestMin || (min == bestMin && mean > bestMean) {
			best, bestMin, bestMean = g.String(), min, mean
		}
	}
	f.Title = fmt.Sprintf("migration-spec tuning sweep, net exec%% of adding migration to ftnearest (best: %s)", best)
	f.finish()
	return f, nil
}
