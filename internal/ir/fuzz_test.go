package ir_test

import (
	"testing"

	"offchip/internal/ir"
	"offchip/internal/workloads"
)

// FuzzParseProgram throws arbitrary byte soup at the kernel-language
// parser. Two properties must hold for every input:
//
//  1. Parse never panics — it returns an error for anything malformed
//     (the CLI feeds it user files).
//  2. Accepted programs round-trip: the printed form re-parses, and
//     printing is a fixpoint (print∘parse∘print = print), so the printer
//     is a faithful serialization of the IR.
//
// The corpus seeds with the full application suite's kernels (the same
// sources the examples/ programs run) plus edge cases around parameters,
// indexed subscripts, comments, and whitespace.
func FuzzParseProgram(f *testing.F) {
	for _, app := range workloads.All() {
		f.Add(app.Source)
	}
	for _, seed := range []string{
		"",
		"program empty\n",
		"program p\nparam N = 4\narray A[N]\nparfor i = 0 .. N { A[i] = A[i] }\n",
		"program p\narray A[8] elem 4\narray B[8]\nparfor i = 0 .. 8 { B[i] = B[A[i]] }\n",
		"program p\n# only a comment\nparam N = 1\narray A[1]\nparfor i = 0 .. 1 { A[i] = A[i] }",
		"program p\nparam N = 4\nparam M = N\narray A[M][M]\nparfor i = 1 .. M-1 {\n for j = 1 .. M-1 { A[i][j] = A[i-1][j] + A[i+1][j] }\n}\n",
		"program bad\nparfor i = 0 .. N { }\n",
		"program bad\narray A[0]\n",
		"program bad\nparam = 3\n",
		"parfor i = 0 .. 4 { }",
		"program p\r\nparam N = 2\r\narray A[2]\r\nparfor i = 0 .. 2 { A[i] = A[i] }\r\n",
		"program p param N",
		"program p\nparam N = 999999999999999999999999\n",
		"program p\narray A[4]\nparfor i = 4 .. 0 { A[i] = A[i] }\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := ir.Parse(src) // must not panic, whatever src is
		if err != nil {
			return
		}
		s1 := p.String()
		p2, err := ir.Parse(s1)
		if err != nil {
			t.Fatalf("printed form of accepted program does not re-parse: %v\ninput: %q\nprinted: %q", err, src, s1)
		}
		if s2 := p2.String(); s2 != s1 {
			t.Fatalf("print is not a fixpoint\nfirst:  %q\nsecond: %q", s1, s2)
		}
	})
}
