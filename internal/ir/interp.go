package ir

import (
	"fmt"

	"offchip/internal/linalg"
)

// DataStore holds the runtime contents of index arrays so the interpreter
// can resolve indexed references (A[idx[i]]). Arrays without stored contents
// read as zero.
type DataStore struct {
	vals map[*Array][]int64
}

// NewDataStore returns an empty store.
func NewDataStore() *DataStore {
	return &DataStore{vals: map[*Array][]int64{}}
}

// SetContents installs the linearized (row-major) integer contents of an
// index array.
func (d *DataStore) SetContents(a *Array, vals []int64) {
	d.vals[a] = vals
}

// Contents returns the stored contents of a, or nil.
func (d *DataStore) Contents(a *Array) []int64 {
	if d == nil {
		return nil
	}
	return d.vals[a]
}

// Lookup reads position pos of index array a, clamping out-of-range
// positions into the stored extent (profile-approximated references may
// slightly overrun).
func (d *DataStore) Lookup(a *Array, pos int64) int64 {
	if d == nil {
		return 0
	}
	vs := d.vals[a]
	if len(vs) == 0 {
		return 0
	}
	if pos < 0 {
		pos = 0
	}
	if pos >= int64(len(vs)) {
		pos = int64(len(vs)) - 1
	}
	return vs[pos]
}

// EvalRef evaluates the element coordinate touched by the reference under
// the given loop-variable environment, resolving indexed subscripts through
// the store.
func EvalRef(r *Ref, env map[string]int64, store *DataStore) linalg.Vec {
	coord := make(linalg.Vec, len(r.Subs))
	for dim, sub := range r.Subs {
		if is, ok := r.IndexSubs[dim]; ok {
			coord[dim] = store.Lookup(is.IndexArray, is.Inner.Eval(env))
		} else {
			coord[dim] = sub.Eval(env)
		}
	}
	return coord
}

// Iterate enumerates the iteration space of the nest in lexicographic order,
// invoking yield with the environment of loop-variable values. Iteration
// stops early if yield returns false; Iterate reports whether the walk ran
// to completion.
func (n *LoopNest) Iterate(yield func(env map[string]int64) bool) bool {
	env := make(map[string]int64, len(n.Loops))
	return n.iterateFrom(0, env, yield)
}

func (n *LoopNest) iterateFrom(depth int, env map[string]int64, yield func(map[string]int64) bool) bool {
	if depth == len(n.Loops) {
		return yield(env)
	}
	l := n.Loops[depth]
	lo, hi := l.Lower.Eval(env), l.Upper.Eval(env)
	for v := lo; v < hi; v++ {
		env[l.Var] = v
		if !n.iterateFrom(depth+1, env, yield) {
			return false
		}
	}
	delete(env, l.Var)
	return true
}

// ThreadChunk returns the half-open sub-range [lo', hi') of [lo, hi) that
// OpenMP static scheduling assigns to thread t of nthreads: the range is
// divided into nthreads contiguous chunks of size ⌈(hi−lo)/nthreads⌉ and
// assigned in thread order (the last chunks may be short or empty).
func ThreadChunk(lo, hi int64, t, nthreads int) (int64, int64) {
	if nthreads <= 0 {
		panic(fmt.Sprintf("ir: %d threads", nthreads))
	}
	total := hi - lo
	if total <= 0 {
		return lo, lo
	}
	chunk := (total + int64(nthreads) - 1) / int64(nthreads)
	clo := lo + int64(t)*chunk
	chi := clo + chunk
	if clo > hi {
		clo = hi
	}
	if chi > hi {
		chi = hi
	}
	return clo, chi
}

// IterateThread enumerates only the iterations that OpenMP static scheduling
// assigns to thread t of nthreads: the parallel loop's range is split into
// contiguous chunks, outer and inner sequential loops run in full. It
// reports whether the walk ran to completion.
func (n *LoopNest) IterateThread(t, nthreads int, yield func(env map[string]int64) bool) bool {
	if t < 0 || t >= nthreads {
		panic(fmt.Sprintf("ir: thread %d of %d", t, nthreads))
	}
	env := make(map[string]int64, len(n.Loops))
	return n.iterateThreadFrom(0, t, nthreads, env, yield)
}

func (n *LoopNest) iterateThreadFrom(depth, t, nthreads int, env map[string]int64, yield func(map[string]int64) bool) bool {
	if depth == len(n.Loops) {
		return yield(env)
	}
	l := n.Loops[depth]
	lo, hi := l.Lower.Eval(env), l.Upper.Eval(env)
	if depth == n.ParDepth {
		lo, hi = ThreadChunk(lo, hi, t, nthreads)
	}
	for v := lo; v < hi; v++ {
		env[l.Var] = v
		if !n.iterateThreadFrom(depth+1, t, nthreads, env, yield) {
			return false
		}
	}
	delete(env, l.Var)
	return true
}

// Touched returns, for each thread, the set of linear element indices of arr
// touched by that thread across all nests of the program. It is used by
// tests and by the mapping-quality analysis.
func Touched(p *Program, arr *Array, nthreads int, store *DataStore) []map[int64]bool {
	out := make([]map[int64]bool, nthreads)
	for t := range out {
		out[t] = map[int64]bool{}
	}
	for _, nest := range p.Nests {
		for t := 0; t < nthreads; t++ {
			nest.IterateThread(t, nthreads, func(env map[string]int64) bool {
				for _, s := range nest.Body {
					for _, r := range s.Refs() {
						if r.Array != arr {
							continue
						}
						out[t][arr.LinearIndex(EvalRef(r, env, store))] = true
					}
				}
				return true
			})
		}
	}
	return out
}
