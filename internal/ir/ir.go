// Package ir defines the affine program representation consumed by the
// off-chip access localization pass: arrays, parallel loop nests with affine
// bounds, and array references of the form r = A·i + o where A is the access
// matrix over the iteration vector i.
//
// Programs can be built programmatically (see Builder) or parsed from a small
// textual affine-loop language (see Parse). An interpreter enumerates
// iterations under an OpenMP-static-style block distribution of the parallel
// loop across threads, which is how the trace generator derives per-core
// address streams.
package ir

import (
	"fmt"
	"sort"
	"strings"

	"offchip/internal/linalg"
)

// DefaultElemSize is the size in bytes of an array element when a program
// does not specify one (doubles, as in the Fortran-heavy SPECOMP suite).
const DefaultElemSize = 8

// Array declares an n-dimensional rectangular array. Layout is row-major:
// the last dimension varies fastest.
type Array struct {
	Name     string
	Dims     []int64 // extent of each dimension, slowest-varying first
	ElemSize int64   // bytes per element
}

// NumDims returns the dimensionality of the array.
func (a *Array) NumDims() int { return len(a.Dims) }

// NumElems returns the total number of elements.
func (a *Array) NumElems() int64 {
	n := int64(1)
	for _, d := range a.Dims {
		n *= d
	}
	return n
}

// SizeBytes returns the total footprint of the array in bytes.
func (a *Array) SizeBytes() int64 { return a.NumElems() * a.ElemSize }

// LinearIndex maps an element coordinate to its row-major linear index.
// It panics if the coordinate has the wrong arity; out-of-bounds components
// are clamped into range (affine approximations of indexed references may
// slightly over-approximate the data space, which must not crash the
// interpreter — see Section 5.4 of the paper).
func (a *Array) LinearIndex(coord linalg.Vec) int64 {
	if len(coord) != len(a.Dims) {
		panic(fmt.Sprintf("ir: coordinate arity %d for %d-dimensional array %s", len(coord), len(a.Dims), a.Name))
	}
	var idx int64
	for d, c := range coord {
		if c < 0 {
			c = 0
		}
		if c >= a.Dims[d] {
			c = a.Dims[d] - 1
		}
		idx = idx*a.Dims[d] + c
	}
	return idx
}

// LinExpr is an affine (linear + constant) expression over named loop
// variables. Loop bounds and subscript expressions are LinExprs.
type LinExpr struct {
	Coeffs map[string]int64
	Const  int64
}

// ConstExpr returns the constant expression c.
func ConstExpr(c int64) LinExpr { return LinExpr{Const: c} }

// VarExpr returns the expression 1·name.
func VarExpr(name string) LinExpr {
	return LinExpr{Coeffs: map[string]int64{name: 1}}
}

// Term returns the expression k·name + c.
func Term(k int64, name string, c int64) LinExpr {
	if k == 0 {
		return ConstExpr(c)
	}
	return LinExpr{Coeffs: map[string]int64{name: k}, Const: c}
}

// Plus returns e + f.
func (e LinExpr) Plus(f LinExpr) LinExpr {
	out := LinExpr{Coeffs: map[string]int64{}, Const: e.Const + f.Const}
	for v, k := range e.Coeffs {
		out.Coeffs[v] += k
	}
	for v, k := range f.Coeffs {
		out.Coeffs[v] += k
	}
	for v, k := range out.Coeffs {
		if k == 0 {
			delete(out.Coeffs, v)
		}
	}
	return out
}

// Scaled returns k·e.
func (e LinExpr) Scaled(k int64) LinExpr {
	out := LinExpr{Coeffs: map[string]int64{}, Const: k * e.Const}
	for v, c := range e.Coeffs {
		if k*c != 0 {
			out.Coeffs[v] = k * c
		}
	}
	return out
}

// Eval evaluates the expression under an environment of variable values.
// Unbound variables evaluate as zero.
func (e LinExpr) Eval(env map[string]int64) int64 {
	v := e.Const
	for name, k := range e.Coeffs {
		v += k * env[name]
	}
	return v
}

// IsConst reports whether the expression has no variable terms.
func (e LinExpr) IsConst() bool { return len(e.Coeffs) == 0 }

// Coeff returns the coefficient of the named variable (zero if absent).
func (e LinExpr) Coeff(name string) int64 { return e.Coeffs[name] }

func (e LinExpr) String() string {
	names := make([]string, 0, len(e.Coeffs))
	for v := range e.Coeffs {
		names = append(names, v)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, v := range names {
		k := e.Coeffs[v]
		switch {
		case b.Len() == 0 && k == 1:
			b.WriteString(v)
		case b.Len() == 0 && k == -1:
			b.WriteString("-" + v)
		case b.Len() == 0:
			fmt.Fprintf(&b, "%d*%s", k, v)
		case k == 1:
			b.WriteString("+" + v)
		case k == -1:
			b.WriteString("-" + v)
		case k > 0:
			fmt.Fprintf(&b, "+%d*%s", k, v)
		default:
			fmt.Fprintf(&b, "-%d*%s", -k, v)
		}
	}
	if b.Len() == 0 {
		return fmt.Sprintf("%d", e.Const)
	}
	if e.Const > 0 {
		fmt.Fprintf(&b, "+%d", e.Const)
	} else if e.Const < 0 {
		fmt.Fprintf(&b, "%d", e.Const)
	}
	return b.String()
}

// Ref is a reference to an array. For an affine reference, Subs holds one
// affine subscript expression per array dimension; the access matrix A and
// offset vector o of r = A·i + o are derived from Subs relative to the
// enclosing nest's loop-variable order (see AccessMatrix).
//
// An indexed reference (Section 5.4) has at least one subscript read through
// an index array; those subscript positions are recorded in IndexSubs and
// resolved at interpretation time from a DataStore.
type Ref struct {
	Array *Array
	Subs  []LinExpr

	// IndexSubs maps a subscript position to an indirection: the value of
	// the subscript is IndexArray[inner] where inner is itself an affine
	// expression over the loop variables. Nil for purely affine references.
	IndexSubs map[int]*IndexSub
}

// IndexSub describes a single indexed subscript A[ X[inner] ].
type IndexSub struct {
	IndexArray *Array  // the index array being read (e.g. the CRS col array)
	Inner      LinExpr // affine position within the index array
}

// Indexed reports whether any subscript of the reference is indirected
// through an index array.
func (r *Ref) Indexed() bool { return len(r.IndexSubs) > 0 }

// AccessMatrix derives the access matrix A (n×m) and offset vector o from
// the affine subscripts, where vars lists the enclosing loop variables
// outermost first. Indexed subscript rows are zero in A (their variability
// is not affine); callers that need an affine view of an indexed reference
// use package approx to fit one from profile data.
func (r *Ref) AccessMatrix(vars []string) (*linalg.Mat, linalg.Vec) {
	n := len(r.Subs)
	a := linalg.NewMat(n, len(vars))
	o := make(linalg.Vec, n)
	for d, sub := range r.Subs {
		if r.IndexSubs != nil {
			if _, ok := r.IndexSubs[d]; ok {
				continue
			}
		}
		for j, v := range vars {
			a.Set(d, j, sub.Coeff(v))
		}
		o[d] = sub.Const
	}
	return a, o
}

func (r *Ref) String() string {
	var b strings.Builder
	b.WriteString(r.Array.Name)
	for d, s := range r.Subs {
		if is, ok := r.IndexSubs[d]; ok {
			fmt.Fprintf(&b, "[%s[%s]]", is.IndexArray.Name, is.Inner)
		} else {
			fmt.Fprintf(&b, "[%s]", s)
		}
	}
	return b.String()
}

// Statement is one assignment in a loop body: a write reference and the
// read references on the right-hand side. The arithmetic connecting the
// reads is irrelevant to layout optimization and is not represented.
type Statement struct {
	Write *Ref
	Reads []*Ref
}

// Refs returns all references of the statement, write first.
func (s *Statement) Refs() []*Ref {
	out := make([]*Ref, 0, 1+len(s.Reads))
	if s.Write != nil {
		out = append(out, s.Write)
	}
	out = append(out, s.Reads...)
	return out
}

func (s *Statement) String() string {
	var b strings.Builder
	if s.Write != nil {
		b.WriteString(s.Write.String())
		b.WriteString(" = ")
	}
	for i, r := range s.Reads {
		if i > 0 {
			b.WriteString(" + ")
		}
		b.WriteString(r.String())
	}
	return b.String()
}

// Loop is one level of a loop nest with affine bounds. The iteration range
// is the half-open interval [Lower, Upper); Step is always 1 in this IR
// (non-unit strides are normalized away by the front end).
type Loop struct {
	Var   string
	Lower LinExpr
	Upper LinExpr
}

// LoopNest is an m-level perfectly nested affine loop with one parallelized
// level. ParDepth is the index u (0-based, outermost first) of the
// parallelized loop: the iteration partition dimension of Section 5.1.
type LoopNest struct {
	Loops    []Loop
	ParDepth int
	Body     []*Statement
}

// Depth returns the number of loop levels m.
func (n *LoopNest) Depth() int { return len(n.Loops) }

// Vars returns the loop variables outermost first.
func (n *LoopNest) Vars() []string {
	vs := make([]string, len(n.Loops))
	for i, l := range n.Loops {
		vs[i] = l.Var
	}
	return vs
}

// TripCount returns the product of per-loop trip counts assuming constant
// bounds; loops with variable bounds contribute their trip count at the
// all-zero environment. This is the reference-weight estimate of
// Section 5.2 (weights are products of enclosing trip counts).
func (n *LoopNest) TripCount() int64 {
	env := map[string]int64{}
	total := int64(1)
	for _, l := range n.Loops {
		lo, hi := l.Lower.Eval(env), l.Upper.Eval(env)
		if hi > lo {
			total *= hi - lo
		}
	}
	return total
}

// Program is a whole data-parallel application: its arrays and parallel
// loop nests.
type Program struct {
	Name   string
	Arrays []*Array
	Nests  []*LoopNest
}

// Array returns the named array, or nil if not declared.
func (p *Program) Array(name string) *Array {
	for _, a := range p.Arrays {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// RefsTo returns all references to the given array across all nests,
// paired with their enclosing nest.
func (p *Program) RefsTo(arr *Array) []RefInNest {
	var out []RefInNest
	for _, n := range p.Nests {
		for _, s := range n.Body {
			for _, r := range s.Refs() {
				if r.Array == arr {
					out = append(out, RefInNest{Ref: r, Nest: n})
				}
			}
		}
	}
	return out
}

// RefInNest pairs a reference with the loop nest that encloses it.
type RefInNest struct {
	Ref  *Ref
	Nest *LoopNest
}

// Validate checks structural invariants: subscript arity matches array
// dimensionality, the parallel depth is in range, loop variables are unique
// within a nest, and bounds reference only enclosing loop variables.
func (p *Program) Validate() error {
	for _, a := range p.Arrays {
		if len(a.Dims) == 0 {
			return fmt.Errorf("ir: array %s has no dimensions", a.Name)
		}
		for d, x := range a.Dims {
			if x <= 0 {
				return fmt.Errorf("ir: array %s dimension %d has extent %d", a.Name, d, x)
			}
		}
		if a.ElemSize <= 0 {
			return fmt.Errorf("ir: array %s has element size %d", a.Name, a.ElemSize)
		}
	}
	for ni, n := range p.Nests {
		if len(n.Loops) == 0 {
			return fmt.Errorf("ir: nest %d has no loops", ni)
		}
		if n.ParDepth < 0 || n.ParDepth >= len(n.Loops) {
			return fmt.Errorf("ir: nest %d parallel depth %d out of range", ni, n.ParDepth)
		}
		seen := map[string]bool{}
		for li, l := range n.Loops {
			if seen[l.Var] {
				return fmt.Errorf("ir: nest %d reuses loop variable %s", ni, l.Var)
			}
			seen[l.Var] = true
			for v := range l.Lower.Coeffs {
				if !seen[v] {
					return fmt.Errorf("ir: nest %d loop %d lower bound uses %s before it is defined", ni, li, v)
				}
			}
			for v := range l.Upper.Coeffs {
				if !seen[v] {
					return fmt.Errorf("ir: nest %d loop %d upper bound uses %s before it is defined", ni, li, v)
				}
			}
		}
		for si, s := range n.Body {
			for _, r := range s.Refs() {
				if r.Array == nil {
					return fmt.Errorf("ir: nest %d stmt %d has a reference with no array", ni, si)
				}
				if len(r.Subs) != r.Array.NumDims() {
					return fmt.Errorf("ir: nest %d stmt %d: %s subscripted with %d of %d dims",
						ni, si, r.Array.Name, len(r.Subs), r.Array.NumDims())
				}
				for v := range subVars(r) {
					if !seen[v] {
						return fmt.Errorf("ir: nest %d stmt %d: reference to %s uses unknown variable %s",
							ni, si, r.Array.Name, v)
					}
				}
			}
		}
	}
	return nil
}

func subVars(r *Ref) map[string]bool {
	vs := map[string]bool{}
	for d, s := range r.Subs {
		if is, ok := r.IndexSubs[d]; ok {
			for v := range is.Inner.Coeffs {
				vs[v] = true
			}
			continue
		}
		for v := range s.Coeffs {
			vs[v] = true
		}
	}
	return vs
}
