package ir

import (
	"strings"
	"testing"

	"offchip/internal/linalg"
)

const stencilSrc = `
program stencil
param N = 8
array Z[8][8]

parfor i = 2 .. N-1 {
  for j = 2 .. N-1 {
    Z[j][i] = Z[j-1][i] + Z[j][i] + Z[j+1][i]
  }
}
`

func TestParseStencil(t *testing.T) {
	p, err := Parse(stencilSrc)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "stencil" {
		t.Errorf("name = %q", p.Name)
	}
	if len(p.Arrays) != 1 || p.Arrays[0].Name != "Z" {
		t.Fatalf("arrays = %v", p.Arrays)
	}
	z := p.Arrays[0]
	if z.Dims[0] != 8 || z.Dims[1] != 8 {
		t.Errorf("dims = %v", z.Dims)
	}
	if z.ElemSize != DefaultElemSize {
		t.Errorf("elem size = %d", z.ElemSize)
	}
	if len(p.Nests) != 1 {
		t.Fatalf("nests = %d", len(p.Nests))
	}
	n := p.Nests[0]
	if n.Depth() != 2 || n.ParDepth != 0 {
		t.Errorf("depth %d par %d", n.Depth(), n.ParDepth)
	}
	if len(n.Body) != 1 {
		t.Fatalf("body = %d stmts", len(n.Body))
	}
	s := n.Body[0]
	if s.Write.String() != "Z[j][i]" {
		t.Errorf("write = %s", s.Write)
	}
	if len(s.Reads) != 3 {
		t.Errorf("reads = %d", len(s.Reads))
	}
}

func TestAccessMatrixPaperExample(t *testing.T) {
	// Paper Section 5.1: reference A[i1][2*i2+1] in a 2-level nest has
	// A = [1 0; 0 2], o = (0, 1), and at i = (1, 2), a = (1, 5).
	p := MustParse(`
program ex
array A[16][16]
parfor i1 = 0 .. 4 {
  for i2 = 0 .. 4 {
    A[i1][2*i2+1] = A[i1][2*i2+1]
  }
}
`)
	ref := p.Nests[0].Body[0].Write
	a, o := ref.AccessMatrix(p.Nests[0].Vars())
	wantA := linalg.MatFromRows([]int64{1, 0}, []int64{0, 2})
	if !a.Equal(wantA) {
		t.Errorf("A = \n%v, want \n%v", a, wantA)
	}
	if !o.Equal(linalg.NewVec(0, 1)) {
		t.Errorf("o = %v", o)
	}
	got := a.MulVec(linalg.NewVec(1, 2)).Add(o)
	if !got.Equal(linalg.NewVec(1, 5)) {
		t.Errorf("A·i + o = %v, want (1, 5)", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSubstr string
	}{
		{"no program", `array A[4]`, "must start"},
		{"undeclared array", `program p
parfor i = 0 .. 4 { B[i] = B[i] }`, "undeclared"},
		{"no parfor", `program p
array A[4]
for i = 0 .. 4 { A[i] = A[i] }`, "no parfor"},
		{"two parfors", `program p
array A[4][4]
parfor i = 0 .. 4 { parfor j = 0 .. 4 { A[i][j] = A[i][j] } }`, "more than one parfor"},
		{"imperfect nest", `program p
array A[4][4]
parfor i = 0 .. 4 { A[i][0] = A[i][0] for j = 0 .. 4 { A[i][j] = A[i][j] } }`, "imperfect"},
		{"nonlinear", `program p
array A[4]
parfor i = 0 .. 4 { A[i*i] = A[i] }`, "nonlinear"},
		{"bad char", `program p @`, "unexpected character"},
		{"subscript arity", `program p
array A[4][4]
parfor i = 0 .. 4 { A[i] = A[i] }`, "subscripted with 1 of 2"},
		{"empty body", `program p
array A[4]
parfor i = 0 .. 4 { }`, "empty"},
		{"nonconst dim", `program p
array A[i]`, "must be constant"},
		{"nonconst param", `program p
param N = i`, "must be constant"},
		{"redeclared", `program p
array A[4]
array A[4]`, "redeclared"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatalf("no error for %q", c.src)
			}
			if !strings.Contains(err.Error(), c.wantSubstr) {
				t.Errorf("error %q does not contain %q", err, c.wantSubstr)
			}
		})
	}
}

func TestParamSubstitution(t *testing.T) {
	p := MustParse(`
program p
param N = 16
param HALF = 8
array A[16]
parfor i = 0 .. N { A[i] = A[i] }
parfor k = 0 .. HALF { A[k] = A[k+HALF] }
`)
	if got := p.Nests[0].Loops[0].Upper; !got.IsConst() || got.Const != 16 {
		t.Errorf("N substituted to %v", got)
	}
	if got := p.Nests[1].Loops[0].Upper; !got.IsConst() || got.Const != 8 {
		t.Errorf("HALF substituted to %v", got)
	}
	r := p.Nests[1].Body[0].Reads[0]
	if r.Subs[0].Const != 8 || r.Subs[0].Coeff("k") != 1 {
		t.Errorf("k+HALF parsed as %v", r.Subs[0])
	}
}

func TestParamTimesVar(t *testing.T) {
	p := MustParse(`
program p
param S = 4
array A[64]
parfor i = 0 .. 16 { A[S*i] = A[i*S] }
`)
	w := p.Nests[0].Body[0].Write
	if w.Subs[0].Coeff("i") != 4 {
		t.Errorf("S*i coeff = %d", w.Subs[0].Coeff("i"))
	}
	r := p.Nests[0].Body[0].Reads[0]
	if r.Subs[0].Coeff("i") != 4 {
		t.Errorf("i*S coeff = %d", r.Subs[0].Coeff("i"))
	}
}

func TestParseIndexedRef(t *testing.T) {
	p := MustParse(`
program spmv
array x[16]
array col[32] elem 4
array val[32]
array y[16]

parfor i = 0 .. 16 {
  for k = 2*i .. 2*i+2 {
    y[i] = y[i] + val[k] * x[col[k]]
  }
}
`)
	stmt := p.Nests[0].Body[0]
	var indexed *Ref
	for _, r := range stmt.Reads {
		if r.Indexed() {
			indexed = r
		}
	}
	if indexed == nil {
		t.Fatal("no indexed reference parsed")
	}
	if indexed.Array.Name != "x" {
		t.Errorf("indexed base = %s", indexed.Array.Name)
	}
	is := indexed.IndexSubs[0]
	if is == nil || is.IndexArray.Name != "col" {
		t.Fatalf("index sub = %+v", is)
	}
	if got := indexed.String(); got != "x[col[k]]" {
		t.Errorf("String = %q", got)
	}

	// Interpreting with store contents resolves through col.
	store := NewDataStore()
	colVals := make([]int64, 32)
	for i := range colVals {
		colVals[i] = int64((i * 7) % 16)
	}
	store.SetContents(p.Array("col"), colVals)
	env := map[string]int64{"i": 3, "k": 6}
	coord := EvalRef(indexed, env, store)
	if coord[0] != colVals[6] {
		t.Errorf("coord = %v, want %d", coord, colVals[6])
	}
}

func TestLinExprAlgebra(t *testing.T) {
	e := Term(2, "i", 1).Plus(Term(-2, "i", 0)).Plus(VarExpr("j"))
	if e.Coeff("i") != 0 {
		t.Errorf("cancelled coeff retained: %v", e)
	}
	if _, ok := e.Coeffs["i"]; ok {
		t.Error("zero coefficient not removed from map")
	}
	if e.Coeff("j") != 1 || e.Const != 1 {
		t.Errorf("e = %v", e)
	}
	if got := Term(3, "i", -2).String(); got != "3*i-2" {
		t.Errorf("String = %q", got)
	}
	if got := Term(-1, "i", 0).String(); got != "-i" {
		t.Errorf("String = %q", got)
	}
	if got := ConstExpr(0).String(); got != "0" {
		t.Errorf("String = %q", got)
	}
	if got := VarExpr("i").Plus(Term(2, "j", 3)).String(); got != "i+2*j+3" {
		t.Errorf("String = %q", got)
	}
}

func TestIterate(t *testing.T) {
	p := MustParse(stencilSrc)
	n := p.Nests[0]
	count := 0
	n.Iterate(func(env map[string]int64) bool {
		count++
		if env["i"] < 2 || env["i"] >= 7 || env["j"] < 2 || env["j"] >= 7 {
			t.Fatalf("iteration out of bounds: %v", env)
		}
		return true
	})
	if count != 25 {
		t.Errorf("iterations = %d, want 25", count)
	}

	// Early exit.
	count = 0
	completed := n.Iterate(func(env map[string]int64) bool {
		count++
		return count < 3
	})
	if completed || count != 3 {
		t.Errorf("early exit: completed=%v count=%d", completed, count)
	}
}

func TestThreadChunk(t *testing.T) {
	cases := []struct {
		lo, hi   int64
		t, n     int
		wlo, whi int64
	}{
		{0, 8, 0, 4, 0, 2},
		{0, 8, 3, 4, 6, 8},
		{0, 7, 3, 4, 6, 7}, // short last chunk
		{0, 2, 3, 4, 2, 2}, // empty chunk
		{5, 5, 0, 4, 5, 5}, // empty range
		{2, 10, 1, 2, 6, 10},
	}
	for _, c := range cases {
		lo, hi := ThreadChunk(c.lo, c.hi, c.t, c.n)
		if lo != c.wlo || hi != c.whi {
			t.Errorf("ThreadChunk(%d,%d,%d,%d) = [%d,%d), want [%d,%d)",
				c.lo, c.hi, c.t, c.n, lo, hi, c.wlo, c.whi)
		}
	}
}

func TestThreadChunksPartition(t *testing.T) {
	// Chunks must partition the range exactly for various sizes.
	for _, total := range []int64{0, 1, 7, 8, 63, 64, 100} {
		for _, nt := range []int{1, 2, 4, 7, 64} {
			var covered int64
			prevHi := int64(0)
			for th := 0; th < nt; th++ {
				lo, hi := ThreadChunk(0, total, th, nt)
				if lo > hi {
					t.Fatalf("total=%d nt=%d t=%d: lo %d > hi %d", total, nt, th, lo, hi)
				}
				if th > 0 && lo != prevHi {
					t.Fatalf("total=%d nt=%d t=%d: gap at %d..%d", total, nt, th, prevHi, lo)
				}
				covered += hi - lo
				prevHi = hi
			}
			if covered != total {
				t.Fatalf("total=%d nt=%d: covered %d", total, nt, covered)
			}
		}
	}
}

func TestIterateThread(t *testing.T) {
	p := MustParse(stencilSrc)
	n := p.Nests[0]
	seen := map[[2]int64]int{}
	for th := 0; th < 4; th++ {
		n.IterateThread(th, 4, func(env map[string]int64) bool {
			seen[[2]int64{env["i"], env["j"]}]++
			return true
		})
	}
	if len(seen) != 25 {
		t.Errorf("threads covered %d iterations, want 25", len(seen))
	}
	for it, c := range seen {
		if c != 1 {
			t.Errorf("iteration %v visited %d times", it, c)
		}
	}
}

func TestTouchedDisjointWhenParallel(t *testing.T) {
	// With the j-loop parallel and Z[j][i] style accesses after the paper's
	// transformation, each thread touches mostly its own rows. Here we use a
	// simple embarrassingly parallel kernel: disjoint write sets.
	p := MustParse(`
program par
array A[16][4]
parfor i = 0 .. 16 {
  for j = 0 .. 4 {
    A[i][j] = A[i][j]
  }
}
`)
	touched := Touched(p, p.Array("A"), 4, nil)
	for a := 0; a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			for e := range touched[a] {
				if touched[b][e] {
					t.Fatalf("threads %d and %d share element %d", a, b, e)
				}
			}
		}
	}
}

func TestLinearIndex(t *testing.T) {
	a := &Array{Name: "A", Dims: []int64{4, 8}, ElemSize: 8}
	if got := a.LinearIndex(linalg.NewVec(2, 3)); got != 2*8+3 {
		t.Errorf("LinearIndex = %d", got)
	}
	// Clamping.
	if got := a.LinearIndex(linalg.NewVec(-1, 100)); got != 0*8+7 {
		t.Errorf("clamped LinearIndex = %d", got)
	}
	if a.NumElems() != 32 || a.SizeBytes() != 256 {
		t.Errorf("NumElems=%d SizeBytes=%d", a.NumElems(), a.SizeBytes())
	}
}

func TestPrintRoundTrip(t *testing.T) {
	p := MustParse(stencilSrc)
	text := p.String()
	q, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, text)
	}
	if q.String() != text {
		t.Errorf("round trip mismatch:\n%s\n---\n%s", text, q.String())
	}
}

func TestValidateErrors(t *testing.T) {
	mk := func() *Program {
		return MustParse(stencilSrc)
	}
	p := mk()
	p.Arrays[0].Dims[0] = 0
	if err := p.Validate(); err == nil {
		t.Error("zero extent accepted")
	}
	p = mk()
	p.Arrays[0].ElemSize = 0
	if err := p.Validate(); err == nil {
		t.Error("zero elem size accepted")
	}
	p = mk()
	p.Nests[0].ParDepth = 5
	if err := p.Validate(); err == nil {
		t.Error("bad par depth accepted")
	}
	p = mk()
	p.Nests[0].Loops[1].Var = "i"
	if err := p.Validate(); err == nil {
		t.Error("duplicate loop var accepted")
	}
}

func TestTripCount(t *testing.T) {
	p := MustParse(stencilSrc)
	if got := p.Nests[0].TripCount(); got != 25 {
		t.Errorf("TripCount = %d, want 25", got)
	}
}

func TestRefsTo(t *testing.T) {
	p := MustParse(stencilSrc)
	refs := p.RefsTo(p.Array("Z"))
	if len(refs) != 4 {
		t.Errorf("RefsTo(Z) = %d refs, want 4 (1 write + 3 reads)", len(refs))
	}
	for _, rn := range refs {
		if rn.Nest != p.Nests[0] {
			t.Error("wrong nest recorded")
		}
	}
}
