package ir

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse parses a program in the textual affine-loop language:
//
//	program stencil
//	param N = 256
//	array Z[N][N]
//	array idx[N] elem 4
//
//	parfor j = 1 .. N-1 {
//	  for i = 1 .. N-1 {
//	    Z[j][i] = Z[j-1][i] + Z[j][i] + Z[j+1][i]
//	  }
//	}
//
// Loops iterate over the half-open range [lo, hi). Exactly one loop per nest
// is declared with parfor; nests must be perfectly nested (statements appear
// only in the innermost loop). Subscripts are affine expressions over the
// enclosing loop variables, or indexed reads through another array
// (A[idx[i]]). '#' begins a comment that runs to end of line. Parameters are
// compile-time constants substituted during parsing.
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, params: map[string]int64{}}
	prog, err := p.parseProgram()
	if err != nil {
		return nil, err
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

// MustParse is Parse but panics on error; it is intended for the static
// kernel definitions in internal/workloads and for tests.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokSym // single-rune symbol or ".."
)

type token struct {
	kind tokKind
	text string
	val  int64
	line int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	rs := []rune(src)
	i := 0
	for i < len(rs) {
		c := rs[i]
		switch {
		case c == '\n':
			line++
			i++
		case unicode.IsSpace(c):
			i++
		case c == '#':
			for i < len(rs) && rs[i] != '\n' {
				i++
			}
		case unicode.IsLetter(c) || c == '_':
			j := i
			for j < len(rs) && (unicode.IsLetter(rs[j]) || unicode.IsDigit(rs[j]) || rs[j] == '_') {
				j++
			}
			toks = append(toks, token{kind: tokIdent, text: string(rs[i:j]), line: line})
			i = j
		case unicode.IsDigit(c):
			j := i
			for j < len(rs) && unicode.IsDigit(rs[j]) {
				j++
			}
			v, err := strconv.ParseInt(string(rs[i:j]), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: bad integer %q: %v", line, string(rs[i:j]), err)
			}
			toks = append(toks, token{kind: tokInt, text: string(rs[i:j]), val: v, line: line})
			i = j
		case c == '.':
			if i+1 < len(rs) && rs[i+1] == '.' {
				toks = append(toks, token{kind: tokSym, text: "..", line: line})
				i += 2
			} else {
				return nil, fmt.Errorf("line %d: unexpected '.'", line)
			}
		case strings.ContainsRune("=+-*[]{}(),", c):
			toks = append(toks, token{kind: tokSym, text: string(c), line: line})
			i++
		default:
			return nil, fmt.Errorf("line %d: unexpected character %q", line, c)
		}
	}
	toks = append(toks, token{kind: tokEOF, line: line})
	return toks, nil
}

type parser struct {
	toks   []token
	pos    int
	params map[string]int64
	prog   *Program
	scope  []string // loop variables currently in scope, outermost first
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("line %d: %s", p.peek().line, fmt.Sprintf(format, args...))
}

func (p *parser) expectSym(s string) error {
	t := p.next()
	if t.kind != tokSym || t.text != s {
		return fmt.Errorf("line %d: expected %q, found %s", t.line, s, t)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.next()
	if t.kind != tokIdent {
		return "", fmt.Errorf("line %d: expected identifier, found %s", t.line, t)
	}
	return t.text, nil
}

func (p *parser) atKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokIdent && t.text == kw
}

func (p *parser) parseProgram() (*Program, error) {
	p.prog = &Program{}
	if !p.atKeyword("program") {
		return nil, p.errf("program must start with 'program <name>'")
	}
	p.next()
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	p.prog.Name = name

	for {
		switch {
		case p.atKeyword("param"):
			if err := p.parseParam(); err != nil {
				return nil, err
			}
		case p.atKeyword("array"):
			if err := p.parseArray(); err != nil {
				return nil, err
			}
		case p.atKeyword("for"), p.atKeyword("parfor"):
			nest, err := p.parseNest()
			if err != nil {
				return nil, err
			}
			p.prog.Nests = append(p.prog.Nests, nest)
		case p.peek().kind == tokEOF:
			return p.prog, nil
		default:
			return nil, p.errf("expected param, array, for, or parfor, found %s", p.peek())
		}
	}
}

func (p *parser) parseParam() error {
	p.next() // param
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if err := p.expectSym("="); err != nil {
		return err
	}
	e, err := p.parseExpr()
	if err != nil {
		return err
	}
	if !e.IsConst() {
		return p.errf("param %s must be constant", name)
	}
	p.params[name] = e.Const
	return nil
}

func (p *parser) parseArray() error {
	p.next() // array
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if p.prog.Array(name) != nil {
		return p.errf("array %s redeclared", name)
	}
	a := &Array{Name: name, ElemSize: DefaultElemSize}
	for p.peek().kind == tokSym && p.peek().text == "[" {
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return err
		}
		if !e.IsConst() {
			return p.errf("array %s dimension must be constant", name)
		}
		a.Dims = append(a.Dims, e.Const)
		if err := p.expectSym("]"); err != nil {
			return err
		}
	}
	if len(a.Dims) == 0 {
		return p.errf("array %s has no dimensions", name)
	}
	if p.atKeyword("elem") {
		p.next()
		t := p.next()
		if t.kind != tokInt {
			return fmt.Errorf("line %d: expected element size, found %s", t.line, t)
		}
		a.ElemSize = t.val
	}
	p.prog.Arrays = append(p.prog.Arrays, a)
	return nil
}

func (p *parser) parseNest() (*LoopNest, error) {
	nest := &LoopNest{ParDepth: -1}
	if err := p.parseLoopInto(nest); err != nil {
		return nil, err
	}
	if nest.ParDepth == -1 {
		return nil, fmt.Errorf("nest starting with loop %q has no parfor level", nest.Loops[0].Var)
	}
	return nest, nil
}

func (p *parser) parseLoopInto(nest *LoopNest) error {
	par := p.atKeyword("parfor")
	p.next() // for | parfor
	v, err := p.expectIdent()
	if err != nil {
		return err
	}
	if err := p.expectSym("="); err != nil {
		return err
	}
	lo, err := p.parseExpr()
	if err != nil {
		return err
	}
	if err := p.expectSym(".."); err != nil {
		return err
	}
	hi, err := p.parseExpr()
	if err != nil {
		return err
	}
	if err := p.expectSym("{"); err != nil {
		return err
	}
	if par {
		if nest.ParDepth != -1 {
			return p.errf("nest has more than one parfor level")
		}
		nest.ParDepth = len(nest.Loops)
	}
	nest.Loops = append(nest.Loops, Loop{Var: v, Lower: lo, Upper: hi})
	p.scope = append(p.scope, v)
	defer func() { p.scope = p.scope[:len(p.scope)-1] }()

	if p.atKeyword("for") || p.atKeyword("parfor") {
		if err := p.parseLoopInto(nest); err != nil {
			return err
		}
		return p.expectSym("}")
	}
	for !(p.peek().kind == tokSym && p.peek().text == "}") {
		if p.atKeyword("for") || p.atKeyword("parfor") {
			return p.errf("imperfect nest: loop after statements")
		}
		s, err := p.parseStatement()
		if err != nil {
			return err
		}
		nest.Body = append(nest.Body, s)
	}
	if len(nest.Body) == 0 {
		return p.errf("innermost loop body is empty")
	}
	return p.expectSym("}")
}

func (p *parser) parseStatement() (*Statement, error) {
	w, err := p.parseRef()
	if err != nil {
		return nil, err
	}
	if err := p.expectSym("="); err != nil {
		return nil, err
	}
	s := &Statement{Write: w}
	for {
		// RHS terms: references; bare integer constants are permitted and
		// ignored (they carry no layout information).
		if p.peek().kind == tokInt {
			p.next()
		} else {
			r, err := p.parseRef()
			if err != nil {
				return nil, err
			}
			s.Reads = append(s.Reads, r)
		}
		if p.peek().kind == tokSym && (p.peek().text == "+" || p.peek().text == "-" || p.peek().text == "*") {
			p.next()
			continue
		}
		return s, nil
	}
}

func (p *parser) parseRef() (*Ref, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	arr := p.prog.Array(name)
	if arr == nil {
		return nil, p.errf("reference to undeclared array %s", name)
	}
	r := &Ref{Array: arr}
	for p.peek().kind == tokSym && p.peek().text == "[" {
		p.next()
		// An indexed subscript begins with the name of another array
		// followed by '['.
		if t := p.peek(); t.kind == tokIdent && p.prog.Array(t.text) != nil &&
			p.toks[p.pos+1].kind == tokSym && p.toks[p.pos+1].text == "[" {
			idxName := p.next().text
			p.next() // [
			inner, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSym("]"); err != nil {
				return nil, err
			}
			if r.IndexSubs == nil {
				r.IndexSubs = map[int]*IndexSub{}
			}
			r.IndexSubs[len(r.Subs)] = &IndexSub{IndexArray: p.prog.Array(idxName), Inner: inner}
			r.Subs = append(r.Subs, ConstExpr(0))
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			r.Subs = append(r.Subs, e)
		}
		if err := p.expectSym("]"); err != nil {
			return nil, err
		}
	}
	if len(r.Subs) == 0 {
		return nil, p.errf("array %s referenced without subscripts", name)
	}
	return r, nil
}

// parseExpr parses an affine expression: term (('+'|'-') term)*.
func (p *parser) parseExpr() (LinExpr, error) {
	e, err := p.parseTerm(1)
	if err != nil {
		return LinExpr{}, err
	}
	for {
		t := p.peek()
		if t.kind != tokSym || (t.text != "+" && t.text != "-") {
			return e, nil
		}
		p.next()
		sign := int64(1)
		if t.text == "-" {
			sign = -1
		}
		f, err := p.parseTerm(sign)
		if err != nil {
			return LinExpr{}, err
		}
		e = e.Plus(f)
	}
}

// parseTerm parses INT ['*' IDENT] | IDENT ['*' INT] | '-' term, applying
// the given sign. Parameters evaluate to their constant values.
func (p *parser) parseTerm(sign int64) (LinExpr, error) {
	t := p.next()
	switch {
	case t.kind == tokSym && t.text == "-":
		return p.parseTerm(-sign)
	case t.kind == tokInt:
		if p.peek().kind == tokSym && p.peek().text == "*" {
			p.next()
			id, err := p.expectIdent()
			if err != nil {
				return LinExpr{}, err
			}
			if c, ok := p.params[id]; ok {
				return ConstExpr(sign * t.val * c), nil
			}
			return Term(sign*t.val, id, 0), nil
		}
		return ConstExpr(sign * t.val), nil
	case t.kind == tokIdent:
		var base LinExpr
		if c, ok := p.params[t.text]; ok {
			base = ConstExpr(c)
		} else {
			base = VarExpr(t.text)
		}
		if p.peek().kind == tokSym && p.peek().text == "*" {
			p.next()
			f := p.next()
			switch {
			case f.kind == tokInt:
				return base.Scaled(sign * f.val), nil
			case f.kind == tokIdent:
				if c, ok := p.params[f.text]; ok {
					return base.Scaled(sign * c), nil
				}
				if base.IsConst() {
					// param * loop-variable, e.g. N*i: still linear.
					return VarExpr(f.text).Scaled(sign * base.Const), nil
				}
				return LinExpr{}, fmt.Errorf("line %d: nonlinear term %s*%s", f.line, t.text, f.text)
			default:
				return LinExpr{}, fmt.Errorf("line %d: expected factor after '*', found %s", f.line, f)
			}
		}
		return base.Scaled(sign), nil
	default:
		return LinExpr{}, fmt.Errorf("line %d: expected expression, found %s", t.line, t)
	}
}
