package ir

import (
	"fmt"
	"strings"
)

// String renders the program back in the affine-loop language. The output
// round-trips through Parse (up to parameter substitution, which the parser
// performs eagerly).
func (p *Program) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s\n", p.Name)
	for _, a := range p.Arrays {
		fmt.Fprintf(&b, "array %s", a.Name)
		for _, d := range a.Dims {
			fmt.Fprintf(&b, "[%d]", d)
		}
		if a.ElemSize != DefaultElemSize {
			fmt.Fprintf(&b, " elem %d", a.ElemSize)
		}
		b.WriteByte('\n')
	}
	for _, n := range p.Nests {
		b.WriteByte('\n')
		writeNest(&b, n)
	}
	return b.String()
}

func writeNest(b *strings.Builder, n *LoopNest) {
	for d, l := range n.Loops {
		kw := "for"
		if d == n.ParDepth {
			kw = "parfor"
		}
		fmt.Fprintf(b, "%s%s %s = %s .. %s {\n", strings.Repeat("  ", d), kw, l.Var, l.Lower, l.Upper)
	}
	ind := strings.Repeat("  ", len(n.Loops))
	for _, s := range n.Body {
		fmt.Fprintf(b, "%s%s\n", ind, s)
	}
	for d := len(n.Loops) - 1; d >= 0; d-- {
		fmt.Fprintf(b, "%s}\n", strings.Repeat("  ", d))
	}
}
