package ir_test

import (
	"os"
	"testing"

	"offchip/internal/ir"
)

// TestSampleKernelParses keeps cmd/offchip's sample kernel valid: it is the
// documented entry point for -src users.
func TestSampleKernelParses(t *testing.T) {
	src, err := os.ReadFile("../../cmd/offchip/testdata/stencil.alc")
	if err != nil {
		t.Fatal(err)
	}
	p, err := ir.Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "stencil" || len(p.Nests) != 1 || len(p.Arrays) != 2 {
		t.Errorf("unexpected sample shape: %s, %d nests, %d arrays",
			p.Name, len(p.Nests), len(p.Arrays))
	}
}
