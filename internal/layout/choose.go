package layout

import "math"

// DemandProfile summarizes how hungrily a program issues off-chip requests,
// the input to the mapping chooser. It corresponds to the bank-queue
// pressure the paper measures in Figure 18: fma3d and minighost have much
// higher concurrent demand than the other applications, which is why they
// alone prefer mapping M2.
type DemandProfile struct {
	// ConcurrentRequests is the expected number of off-chip requests a
	// cluster's cores keep in flight simultaneously.
	ConcurrentRequests float64
	// BankServiceHops expresses one bank service time in units of per-hop
	// network latency, converting queueing delay into the same currency as
	// distance-to-MC. The paper's Table 1 parameters (≈40-cycle row hit vs
	// 4-cycle hops) give ≈10.
	BankServiceHops float64
}

// DefaultDemand returns a profile typical of the low-MLP applications.
func DefaultDemand() DemandProfile {
	return DemandProfile{ConcurrentRequests: 4, BankServiceHops: 10}
}

// MappingCost estimates the average cost (in hop-latency units) of an
// off-chip request under the mapping: the locality term (mean distance to
// the cluster's controllers) plus the queueing term (expected waits when
// the cluster's concurrent demand exceeds the parallelism of its
// controllers' banks). banksPerMC comes from the DRAM configuration.
func MappingCost(cm *ClusterMapping, d DemandProfile, banksPerMC int) float64 {
	locality := cm.AvgDistToMC()
	capacity := float64(cm.K * banksPerMC)
	// Saturation model: the cluster's banks serve up to `capacity` requests
	// concurrently for free; each excess request waits, on average, its
	// share of a bank service time. Below saturation locality dominates
	// (most applications prefer M1); past it the extra controllers of M2
	// pay for their longer distances (fma3d, minighost).
	excess := d.ConcurrentRequests - capacity
	if excess < 0 {
		excess = 0
	}
	wait := excess / capacity
	return locality + d.BankServiceHops*wait
}

// ChooseMapping implements the compiler analysis of Section 4: given a set
// of candidate L2-to-MC mappings supplied by the user, pick the one with
// the lowest estimated request cost under the program's demand profile.
// It returns nil for an empty candidate set.
func ChooseMapping(cands []*ClusterMapping, d DemandProfile, banksPerMC int) *ClusterMapping {
	var best *ClusterMapping
	bestCost := math.Inf(1)
	for _, cm := range cands {
		if cm == nil {
			continue
		}
		if c := MappingCost(cm, d, banksPerMC); c < bestCost {
			best, bestCost = cm, c
		}
	}
	return best
}
