package layout

import (
	"fmt"
	"sort"

	"offchip/internal/ir"
	"offchip/internal/linalg"
	"offchip/internal/mesh"
)

// ArrayLayout is the outcome of the pass for one array: either the identity
// (original row-major) layout, or the customized layout of Section 5.3. It
// exposes the virtual-address remapping the trace generator applies — the
// runtime meaning of the transformed references of Figure 9(c).
type ArrayLayout struct {
	Array     *ir.Array
	Optimized bool
	Reason    string      // why the array was left unoptimized (if it was)
	D2C       *DataToCore // the Data-to-Core step result (nil if unoptimized)

	elemSize int64

	// Transformed geometry: a' = U·a + shift lies in [0, newDims).
	u       *linalg.Mat
	shift   linalg.Vec
	newDims []int64
	strides []int64 // row-major strides of newDims[1:] within a row
	rowSize int64   // elements per partition-dimension row

	// Grouping: C clusters (private L2) or N cores (shared L2). Row r of
	// the partition dimension belongs to group ordOfRow[r] and is the
	// rowRank[r]-th row of that group.
	groups   int
	grain    int64 // G: elements per round-robin chunk (k·p private, p shared)
	ordOfRow []int32
	rowRank  []int64

	// Shared-L2 home-bank assignment: homeOf[c] is the L2 bank that holds
	// core c's data (nil for private L2).
	homeOf []int

	sizeBytes int64
	k         int   // MCs per cluster
	unitElems int64 // elements per interleaving unit p
	numMCs    int

	// Rewrite context (closed-form Figure 9(c) emission).
	cm      *ClusterMapping
	threads int
	b       int64 // data block size: partition rows per thread
}

// SizeBytes returns the virtual footprint of the array under this layout,
// including strip-mining/padding overhead.
func (al *ArrayLayout) SizeBytes() int64 { return al.sizeBytes }

// Offset maps an original element coordinate to its byte offset within the
// array's virtual allocation under this layout.
func (al *ArrayLayout) Offset(coord linalg.Vec) int64 {
	if !al.Optimized {
		return al.Array.LinearIndex(coord) * al.elemSize
	}
	ap := al.u.MulVec(coord).Add(al.shift)
	r0 := clamp(ap[0], 0, al.newDims[0]-1)
	var inRow int64
	for d := 1; d < len(ap); d++ {
		inRow += clamp(ap[d], 0, al.newDims[d]-1) * al.strides[d-1]
	}
	pos := al.rowRank[r0]*al.rowSize + inRow
	q, w := pos/al.grain, pos%al.grain
	lin := (q*int64(al.groups)+int64(al.ordOfRow[r0]))*al.grain + w
	return lin * al.elemSize
}

// DesiredMC returns the memory controller this layout wants to serve the
// interleaving unit containing the given byte offset, or -1 when the layout
// expresses no preference (unoptimized arrays). The OS-assisted page
// allocation policy consults this under page interleaving.
func (al *ArrayLayout) DesiredMC(byteOff int64) int {
	if !al.Optimized {
		return -1
	}
	lin := byteOff / al.elemSize
	if al.homeOf != nil {
		// Shared L2: group ordinals are home banks; the interleaving maps
		// a bank's units to MC bank%N' by construction.
		return int((lin / al.grain) % int64(al.groups) % int64(al.numMCs))
	}
	ord := (lin / al.grain) % int64(al.groups)
	j := (lin % al.grain) / al.unitElems
	return int(ord)*al.k + int(j)
}

func clamp(x, lo, hi int64) int64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// IdentityLayout returns the original row-major layout for an array (the
// baseline, and the fallback for unoptimizable arrays).
func IdentityLayout(arr *ir.Array, reason string) *ArrayLayout {
	return &ArrayLayout{
		Array:     arr,
		Optimized: false,
		Reason:    reason,
		elemSize:  arr.ElemSize,
		sizeBytes: arr.SizeBytes(),
	}
}

// customize builds the optimized layout for one array from its Data-to-Core
// result, under the machine's interleaving and L2 organization and the
// user's L2-to-MC mapping. threads is the number of worker threads the
// parallel loops are distributed over.
func customize(d2c *DataToCore, m Machine, cm *ClusterMapping, threads int) (*ArrayLayout, error) {
	arr := d2c.Array
	al := &ArrayLayout{
		Array:     arr,
		Optimized: true,
		D2C:       d2c,
		elemSize:  arr.ElemSize,
		u:         d2c.U,
		k:         cm.K,
		numMCs:    cm.NumMCs(),
	}
	al.unitElems = m.UnitBytes() / arr.ElemSize
	if al.unitElems == 0 {
		al.unitElems = 1
	}

	// Bounding box of the transformed data space: for a linear map the
	// extremes are at corners of the original box.
	n := arr.NumDims()
	lo := make(linalg.Vec, n)
	hi := make(linalg.Vec, n)
	first := true
	for corner := 0; corner < 1<<n; corner++ {
		c := make(linalg.Vec, n)
		for d := 0; d < n; d++ {
			if corner&(1<<d) != 0 {
				c[d] = arr.Dims[d] - 1
			}
		}
		img := d2c.U.MulVec(c)
		for d := 0; d < n; d++ {
			if first || img[d] < lo[d] {
				lo[d] = img[d]
			}
			if first || img[d] > hi[d] {
				hi[d] = img[d]
			}
		}
		first = false
	}
	al.shift = lo.Scale(-1)
	al.newDims = make([]int64, n)
	for d := 0; d < n; d++ {
		al.newDims[d] = hi[d] - lo[d] + 1
	}
	al.strides = make([]int64, n-1)
	al.rowSize = 1
	for d := n - 1; d >= 1; d-- {
		al.strides[d-1] = al.rowSize
		al.rowSize *= al.newDims[d]
	}

	d0 := al.newDims[0]
	if threads <= 0 {
		return nil, fmt.Errorf("layout: %d threads", threads)
	}
	b := (d0 + int64(threads) - 1) / int64(threads) // data block size
	// Pad the partition dimension so every thread owns exactly b rows —
	// the intra-array alignment padding of Section 5.3, which also makes
	// the customized reference a closed form (RewriteRef).
	d0 = b * int64(threads)
	al.newDims[0] = d0
	al.cm, al.threads, al.b = cm, threads, b

	switch m.L2 {
	case PrivateL2:
		al.groups = cm.NumClusters()
		al.grain = int64(cm.K) * al.unitElems
		ownerCluster := func(r int64) int32 {
			t := r / b
			if t >= int64(threads) {
				t = int64(threads) - 1
			}
			core := int(t) % m.Cores()
			return int32(cm.ClusterOf(core))
		}
		al.buildRowTables(d0, ownerCluster)
		maxQ := al.maxGroupChunks()
		al.sizeBytes = maxQ * int64(al.groups) * al.grain * al.elemSize
	case SharedL2:
		if m.Interleave != LineInterleave {
			return nil, fmt.Errorf("layout: shared L2 requires cache-line interleaving (the paper's Figure 22 configuration)")
		}
		cores := m.Cores()
		al.groups = cores
		al.grain = al.unitElems // p
		al.homeOf = assignHomeBanks(cm)
		ownerHome := func(r int64) int32 {
			t := r / b
			if t >= int64(threads) {
				t = int64(threads) - 1
			}
			return int32(al.homeOf[int(t)%cores])
		}
		al.buildRowTables(d0, ownerHome)
		maxQ := al.maxGroupChunks()
		al.sizeBytes = maxQ * int64(al.groups) * al.grain * al.elemSize
	default:
		return nil, fmt.Errorf("layout: unknown cache kind %v", m.L2)
	}
	return al, nil
}

// buildRowTables fills ordOfRow and rowRank: for every value r of the
// partition dimension, which group owns the row and the dense rank of the
// row among that group's rows.
func (al *ArrayLayout) buildRowTables(d0 int64, owner func(int64) int32) {
	al.ordOfRow = make([]int32, d0)
	al.rowRank = make([]int64, d0)
	counts := make([]int64, al.groups)
	for r := int64(0); r < d0; r++ {
		g := owner(r)
		al.ordOfRow[r] = g
		al.rowRank[r] = counts[g]
		counts[g]++
	}
}

// maxGroupChunks returns max over groups of ⌈rows·rowSize / grain⌉: the
// number of round-robin turns the layout needs, which (times groups×grain)
// is the padded footprint.
func (al *ArrayLayout) maxGroupChunks() int64 {
	counts := make([]int64, al.groups)
	for _, g := range al.ordOfRow {
		counts[g]++
	}
	var maxQ int64 = 1
	for _, rows := range counts {
		q := (rows*al.rowSize + al.grain - 1) / al.grain
		if q > maxQ {
			maxQ = q
		}
	}
	return maxQ
}

// assignHomeBanks resolves the shared-L2 tension of Section 5.3 — on-chip
// and off-chip localization cannot both be exact because the home bank
// (addr/p mod N) determines the controller (addr/p mod N′) — by taking the
// paper's second option: "first generate the layout localized for off-chip
// accesses and then try to localize the on-chip accesses as much as
// possible". Each core's data is homed on the nearest L2 bank whose
// interleave residue selects the core's desired controller, via a greedy
// nearest-first matching (each bank homes exactly one core's data, keeping
// bank load balanced). The desired controller is then hit exactly, and the
// home bank is a few hops away at most.
func assignHomeBanks(cm *ClusterMapping) []int {
	cores := cm.MeshX * cm.MeshY
	numMCs := cm.NumMCs()
	allowed := allowedMCs(cm)

	// Candidate (core, bank) pairs: the bank's interleave residue must map
	// to a controller in the cluster's allowed (desired-or-adjacent) set —
	// the Section 5.3 relaxation. Cost weighs the on-chip leg double: the
	// L1-to-home-bank path is traversed by every L1 miss (paths 1 and 5 of
	// Figure 2b), while the home-to-controller leg only by L2 misses.
	type pair struct {
		core, bank, cost int
	}
	var pairs []pair
	for t := 0; t < cores; t++ {
		tn := mesh.CoordOf(t, cm.MeshX)
		mask := allowed[cm.ClusterOf(t)]
		for u := 0; u < cores; u++ {
			mc := u % numMCs
			if !mask[mc] {
				continue
			}
			cost := 2*mesh.Dist(tn, mesh.CoordOf(u, cm.MeshX)) +
				cm.Placement.Dist(mesh.CoordOf(u, cm.MeshX), mc)
			pairs = append(pairs, pair{t, u, cost})
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].cost != pairs[j].cost {
			return pairs[i].cost < pairs[j].cost
		}
		if pairs[i].core != pairs[j].core {
			return pairs[i].core < pairs[j].core
		}
		return pairs[i].bank < pairs[j].bank
	})
	homeOf := make([]int, cores)
	for i := range homeOf {
		homeOf[i] = -1
	}
	usedBank := make([]bool, cores)
	assigned := 0
	for _, p := range pairs {
		if homeOf[p.core] != -1 || usedBank[p.bank] {
			continue
		}
		homeOf[p.core] = p.bank
		usedBank[p.bank] = true
		assigned++
		if assigned == cores {
			break
		}
	}
	for t := range homeOf {
		if homeOf[t] == -1 {
			homeOf[t] = t // unreachable for valid mappings; keep total
		}
	}
	return homeOf
}

// allowedMCs returns, per cluster, the set of controllers the delta-skip
// accepts: the cluster's own controllers plus those at minimal distance
// from them (the "adjacent" controllers; the excluded set C of the paper
// holds the rest, e.g. the diagonally opposite corner).
func allowedMCs(cm *ClusterMapping) [][]bool {
	numMCs := cm.NumMCs()
	out := make([][]bool, cm.NumClusters())
	for ord := range out {
		mask := make([]bool, numMCs)
		desired := cm.MCsOf(ord)
		for _, mc := range desired {
			mask[mc] = true
		}
		minD := 1 << 30
		for mc := 0; mc < numMCs; mc++ {
			if mask[mc] {
				continue
			}
			for _, d := range desired {
				if dd := cm.Placement.Dist(cm.Placement.NodeOf(mc), d); dd < minD {
					minD = dd
				}
			}
		}
		for mc := 0; mc < numMCs; mc++ {
			if mask[mc] {
				continue
			}
			for _, d := range desired {
				if cm.Placement.Dist(cm.Placement.NodeOf(mc), d) == minD {
					mask[mc] = true
					break
				}
			}
		}
		out[ord] = mask
	}
	return out
}
