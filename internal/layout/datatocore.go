package layout

import (
	"fmt"
	"sort"

	"offchip/internal/ir"
	"offchip/internal/linalg"
)

// refInfo is one reference to the array under optimization, with the data it
// contributes to the Data-to-Core analysis.
type refInfo struct {
	ref     *ir.Ref
	nest    *ir.LoopNest
	access  *linalg.Mat // A
	sub     *linalg.Mat // B = A without the iteration-partition column u
	parCol  linalg.Vec  // A·e_u, the column dropped to form B
	weight  int64       // estimated dynamic occurrences (product of trip counts)
	indexed bool        // true if the reference needed §5.4 approximation
}

// DataToCore is the result of the Data-to-Core mapping step for one array:
// the unimodular transformation U (whose row v = 0, the slowest-varying
// dimension, is the solved gᵥ), plus bookkeeping for Table 2.
type DataToCore struct {
	Array *ir.Array
	U     *linalg.Mat
	Gv    linalg.Vec

	// Satisfied is the weighted fraction of references whose submatrix
	// constraint Bᵀ·gᵥ = 0 holds under the chosen gᵥ — the "references
	// satisfied" column of Table 2.
	Satisfied float64

	// TotalWeight and SatisfiedWeight are the absolute weighted reference
	// counts behind Satisfied.
	TotalWeight, SatisfiedWeight int64
}

// ErrNotOptimizable reports why an array was left in its original layout.
type ErrNotOptimizable struct {
	Array  *ir.Array
	Reason string
}

func (e *ErrNotOptimizable) Error() string {
	return fmt.Sprintf("layout: array %s not optimizable: %s", e.Array.Name, e.Reason)
}

// dataPartitionDim is v, the data-partitioning dimension. It is always the
// slowest-varying dimension (dimension 0 in our row-major IR) to minimize
// padding overhead (footnote 3 of the paper).
const dataPartitionDim = 0

// collectRefs gathers the analysis inputs for every reference to arr,
// resolving indexed references through the supplied approximator (which may
// be nil, in which case indexed references are skipped — they count toward
// the total weight but can never be satisfied).
func collectRefs(p *ir.Program, arr *ir.Array, approx Approximator) []refInfo {
	var out []refInfo
	for _, rn := range p.RefsTo(arr) {
		vars := rn.Nest.Vars()
		u := rn.Nest.ParDepth
		weight := rn.Nest.TripCount()
		info := refInfo{ref: rn.Ref, nest: rn.Nest, weight: weight, indexed: rn.Ref.Indexed()}
		if rn.Ref.Indexed() {
			if approx == nil {
				out = append(out, info) // unsatisfiable, still weighted
				continue
			}
			a, ok := approx.Approximate(rn.Ref, rn.Nest)
			if !ok {
				out = append(out, info)
				continue
			}
			info.access = a
		} else {
			a, _ := rn.Ref.AccessMatrix(vars)
			info.access = a
		}
		info.sub = info.access.DropCol(u)
		info.parCol = info.access.Col(u)
		out = append(out, info)
	}
	return out
}

// Approximator supplies an affine access matrix for an indexed reference
// (Section 5.4). Approximate returns false when the fit error exceeds the
// acceptance threshold, in which case the reference is left unoptimized.
type Approximator interface {
	Approximate(r *ir.Ref, nest *ir.LoopNest) (*linalg.Mat, bool)
}

// dataToCore runs the Data-to-Core mapping step (Algorithm 1, lines 1–32)
// for one array: group references by submatrix B, pick the heaviest group,
// solve Bᵀ·gᵥ = 0, and complete gᵥ to a unimodular U.
func dataToCore(p *ir.Program, arr *ir.Array, approx Approximator) (*DataToCore, error) {
	refs := collectRefs(p, arr, approx)
	if len(refs) == 0 {
		return nil, &ErrNotOptimizable{arr, "no references"}
	}
	var total int64
	type group struct {
		key    string
		weight int64
		rep    refInfo
	}
	groups := map[string]*group{}
	for _, ri := range refs {
		total += ri.weight
		if ri.access == nil {
			continue // indexed reference with no acceptable approximation
		}
		key := ri.sub.String()
		g := groups[key]
		if g == nil {
			g = &group{key: key, rep: ri}
			groups[key] = g
		}
		g.weight += ri.weight
	}
	if len(groups) == 0 {
		return nil, &ErrNotOptimizable{arr, "only unapproximable indexed or pointer references"}
	}

	// Deterministically pick the heaviest submatrix group (ties by key).
	ordered := make([]*group, 0, len(groups))
	for _, g := range groups {
		ordered = append(ordered, g)
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].weight != ordered[j].weight {
			return ordered[i].weight > ordered[j].weight
		}
		return ordered[i].key < ordered[j].key
	})

	// Walk groups from heaviest: the first whose linear system has a
	// non-trivial solution that actually separates threads wins.
	for _, g := range ordered {
		gv := linalg.SolveHomogeneous(g.rep.sub.Transpose())
		if gv == nil {
			continue
		}
		// The partition must distinguish iterations of different threads:
		// gᵥ·(A·e_u) ≠ 0, otherwise all threads land on one hyperplane.
		if gv.Dot(g.rep.parCol) == 0 {
			continue
		}
		// Orient gᵥ so the partition dimension grows with the parallel
		// iterator: thread chunk order then matches data block order.
		if gv.Dot(g.rep.parCol) < 0 {
			gv = gv.Scale(-1)
		}
		u, err := buildU(gv)
		if err != nil {
			continue
		}
		d2c := &DataToCore{Array: arr, U: u, Gv: gv, TotalWeight: total}
		for _, ri := range refs {
			if ri.access == nil {
				continue
			}
			if ri.indexed {
				// A profile-approximated reference is satisfied when the
				// chosen partition follows its fitted parallel dimension;
				// the residual (halo) error is already bounded by the
				// approximation acceptance threshold (Section 5.4).
				if gv.Dot(ri.parCol) != 0 {
					d2c.SatisfiedWeight += ri.weight
				}
				continue
			}
			if ri.sub.Transpose().MulVec(gv).IsZero() && gv.Dot(ri.parCol) != 0 {
				d2c.SatisfiedWeight += ri.weight
			}
		}
		if total > 0 {
			d2c.Satisfied = float64(d2c.SatisfiedWeight) / float64(total)
		}
		return d2c, nil
	}
	return nil, &ErrNotOptimizable{arr, "no submatrix admits a thread-separating hyperplane"}
}

// buildU completes gᵥ to a unimodular U with row dataPartitionDim = gᵥ.
// If the completion's determinant check fails (it cannot, for a primitive
// gᵥ), the Hermite-normal-form correction of Algorithm 1 lines 10–13 would
// apply; UnimodularCompletion already guarantees det ±1. The caller has
// already oriented gᵥ, so its sign is preserved here.
func buildU(gv linalg.Vec) (*linalg.Mat, error) {
	return linalg.UnimodularCompletion(gv, dataPartitionDim)
}
