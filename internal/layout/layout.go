package layout

import (
	"fmt"
	"sort"
	"strings"

	"offchip/internal/ir"
)

// Options tunes the pass.
type Options struct {
	// Threads is the number of worker threads the parallel loops are
	// distributed over. Zero means one thread per core.
	Threads int
	// Approx resolves indexed references (Section 5.4); nil leaves them
	// unoptimized.
	Approx Approximator
}

// Result is the outcome of running the pass on a program: a layout per
// array plus the aggregate statistics reported in Table 2.
type Result struct {
	Program *ir.Program
	Machine Machine
	Mapping *ClusterMapping
	Layouts map[*ir.Array]*ArrayLayout

	ArraysTotal     int
	ArraysOptimized int

	RefWeightTotal     int64
	RefWeightSatisfied int64
}

// Layout returns the layout chosen for the array (identity if the array
// was not optimized or not part of the program).
func (r *Result) Layout(arr *ir.Array) *ArrayLayout {
	if al, ok := r.Layouts[arr]; ok {
		return al
	}
	return IdentityLayout(arr, "not analyzed")
}

// PctArraysOptimized returns the "arrays optimized" column of Table 2.
func (r *Result) PctArraysOptimized() float64 {
	if r.ArraysTotal == 0 {
		return 0
	}
	return 100 * float64(r.ArraysOptimized) / float64(r.ArraysTotal)
}

// PctRefsSatisfied returns the "references satisfied" column of Table 2:
// the weighted fraction of references whose layout preference the chosen
// per-array transformations satisfy.
func (r *Result) PctRefsSatisfied() float64 {
	if r.RefWeightTotal == 0 {
		return 0
	}
	return 100 * float64(r.RefWeightSatisfied) / float64(r.RefWeightTotal)
}

// Optimize runs the full pass (Algorithm 1) on every array of the program.
// Arrays that cannot be optimized (pointer-like/indexed references with no
// acceptable affine approximation, or no thread-separating hyperplane) keep
// their original layout; this is never an error, matching the paper's
// Table 2 where no application reaches 100%.
func Optimize(p *ir.Program, m Machine, cm *ClusterMapping, opts *Options) (*Result, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if cm == nil {
		return nil, fmt.Errorf("layout: nil L2-to-MC mapping")
	}
	if err := cm.Validate(); err != nil {
		return nil, err
	}
	if cm.MeshX != m.MeshX || cm.MeshY != m.MeshY {
		return nil, fmt.Errorf("layout: mapping is for a %dx%d mesh, machine is %dx%d",
			cm.MeshX, cm.MeshY, m.MeshX, m.MeshY)
	}
	if cm.NumMCs() != m.NumMCs {
		return nil, fmt.Errorf("layout: mapping uses %d MCs, machine has %d", cm.NumMCs(), m.NumMCs)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	var appr Approximator
	threads := m.Cores()
	if opts != nil {
		if opts.Threads > 0 {
			threads = opts.Threads
		}
		appr = opts.Approx
	}

	res := &Result{
		Program: p,
		Machine: m,
		Mapping: cm,
		Layouts: map[*ir.Array]*ArrayLayout{},
	}
	for _, arr := range p.Arrays {
		if isIndexOnlyArray(p, arr) {
			// Pure index arrays (read only inside other arrays' subscripts
			// and sequential setup) are metadata, not optimized data.
			res.Layouts[arr] = IdentityLayout(arr, "index array")
			continue
		}
		res.ArraysTotal++
		d2c, err := dataToCore(p, arr, appr)
		if err != nil {
			var weight int64
			for _, ri := range collectRefs(p, arr, appr) {
				weight += ri.weight
			}
			res.RefWeightTotal += weight
			res.Layouts[arr] = IdentityLayout(arr, err.Error())
			continue
		}
		al, err := customize(d2c, m, cm, threads)
		if err != nil {
			return nil, fmt.Errorf("layout: customizing %s: %w", arr.Name, err)
		}
		res.Layouts[arr] = al
		res.ArraysOptimized++
		res.RefWeightTotal += d2c.TotalWeight
		res.RefWeightSatisfied += d2c.SatisfiedWeight
	}
	return res, nil
}

// isIndexOnlyArray reports whether the array appears only as an index array
// inside other references' subscripts (it is never directly read or
// written by a statement).
func isIndexOnlyArray(p *ir.Program, arr *ir.Array) bool {
	usedAsIndex := false
	for _, n := range p.Nests {
		for _, s := range n.Body {
			for _, r := range s.Refs() {
				if r.Array == arr {
					return false
				}
				for _, is := range r.IndexSubs {
					if is.IndexArray == arr {
						usedAsIndex = true
					}
				}
			}
		}
	}
	return usedAsIndex
}

// TransformedSubs applies the Data-to-Core transformation to a reference's
// subscripts: r' = U·r, the Figure 9(b) form. vars is ignored for indexed
// subscripts, which pass through unchanged.
func (al *ArrayLayout) TransformedSubs(r *ir.Ref) []ir.LinExpr {
	if !al.Optimized || r.Indexed() {
		return r.Subs
	}
	n := len(r.Subs)
	out := make([]ir.LinExpr, n)
	for d := 0; d < n; d++ {
		e := ir.ConstExpr(0)
		for e2 := 0; e2 < n; e2++ {
			e = e.Plus(r.Subs[e2].Scaled(al.u.At(d, e2)))
		}
		out[d] = e
	}
	return out
}

// CustomizedForm renders the fully customized reference shape of
// Figure 9(c) for inspection: the U-transformed subscripts with the
// strip-mining and permutation of Section 5.3 spelled out symbolically.
func (al *ArrayLayout) CustomizedForm(r *ir.Ref) string {
	if !al.Optimized {
		return r.String()
	}
	subs := al.TransformedSubs(r)
	last := subs[len(subs)-1].String()
	v := subs[0].String()
	var mid []string
	for _, s := range subs[1 : len(subs)-1] {
		mid = append(mid, fmt.Sprintf("[%s]", s))
	}
	g := al.grain
	if al.homeOf != nil {
		return fmt.Sprintf("%s''[(%s)/%d][R'(%s)]%s[(%s)%%%d]",
			r.Array.Name, last, g, v, strings.Join(mid, ""), last, g)
	}
	return fmt.Sprintf("%s''[(%s)/%d][R(%s)]%s[(%s)%%%d]",
		r.Array.Name, last, g, v, strings.Join(mid, ""), last, g)
}

// Report renders a human-readable summary of the pass outcome.
func (r *Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s: %d/%d arrays optimized (%.0f%%), %.0f%% of references satisfied\n",
		r.Program.Name, r.ArraysOptimized, r.ArraysTotal, r.PctArraysOptimized(), r.PctRefsSatisfied())
	names := make([]string, 0, len(r.Layouts))
	byName := map[string]*ArrayLayout{}
	for arr, al := range r.Layouts {
		names = append(names, arr.Name)
		byName[arr.Name] = al
	}
	sort.Strings(names)
	for _, name := range names {
		al := byName[name]
		if al.Optimized {
			fmt.Fprintf(&b, "  %-10s optimized: gv=%v, %d B footprint (%.1f%% padding)\n",
				name, al.D2C.Gv, al.SizeBytes(),
				100*float64(al.SizeBytes()-al.Array.SizeBytes())/float64(al.Array.SizeBytes()))
		} else {
			fmt.Fprintf(&b, "  %-10s original layout (%s)\n", name, al.Reason)
		}
	}
	return b.String()
}
