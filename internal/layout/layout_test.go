package layout

import (
	"strings"
	"testing"

	"offchip/internal/ir"
	"offchip/internal/linalg"
	"offchip/internal/mesh"
)

func testMachine() Machine {
	return Machine{
		MeshX: 4, MeshY: 4,
		NumMCs:     4,
		LineBytes:  64,
		PageBytes:  512,
		L2:         PrivateL2,
		Interleave: LineInterleave,
	}
}

func mustM1(t *testing.T, m Machine) *ClusterMapping {
	t.Helper()
	cm, err := MappingM1(m, PlacementCorners(m.MeshX, m.MeshY))
	if err != nil {
		t.Fatal(err)
	}
	return cm
}

func TestMachineValidate(t *testing.T) {
	if err := Default8x8().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := Default8x8()
	bad.NumMCs = 7
	if err := bad.Validate(); err == nil {
		t.Error("64 cores / 7 MCs accepted")
	}
	bad = Default8x8()
	bad.PageBytes = 100
	if err := bad.Validate(); err == nil {
		t.Error("page not multiple of line accepted")
	}
	if Default8x8().UnitBytes() != 256 {
		t.Error("line interleave unit != line size")
	}
	pg := Default8x8()
	pg.Interleave = PageInterleave
	if pg.UnitBytes() != 4096 {
		t.Error("page interleave unit != page size")
	}
}

func TestClusterMappingM1(t *testing.T) {
	m := Default8x8()
	cm := mustM1(t, m)
	if cm.NumClusters() != 4 || cm.K != 1 {
		t.Fatalf("M1 shape: %d clusters, K=%d", cm.NumClusters(), cm.K)
	}
	if cm.CoresPerCluster() != 16 {
		t.Errorf("cores per cluster = %d", cm.CoresPerCluster())
	}
	// Quadrant membership: core 0 (0,0) in cluster 0; core 7 (7,0) in
	// cluster 1; core 56 (0,7) in cluster 2; core 63 in cluster 3.
	for _, c := range []struct{ core, want int }{{0, 0}, {7, 1}, {56, 2}, {63, 3}, {27, 0}, {36, 3}} {
		if got := cm.ClusterOf(c.core); got != c.want {
			t.Errorf("ClusterOf(%d) = %d, want %d", c.core, got, c.want)
		}
	}
	// Core 27 = (3,3) is in the TL quadrant: cluster 0, MC0 at (0,0).
	if got := cm.MCsOf(0); len(got) != 1 || got[0] != 0 {
		t.Errorf("MCsOf(0) = %v", got)
	}
	// Each quadrant's assigned corner MC is its nearest MC.
	p := cm.Placement
	for core := 0; core < 64; core++ {
		n := mesh.CoordOf(core, 8)
		want := cm.MCsOf(cm.ClusterOf(core))[0]
		if got := p.NearestMC(n); p.Dist(n, got) != p.Dist(n, want) {
			t.Errorf("core %d: assigned MC%d at distance %d, nearest MC%d at %d",
				core, want, p.Dist(n, want), got, p.Dist(n, got))
		}
	}
}

func TestClusterMappingM2(t *testing.T) {
	m := Default8x8()
	cm, err := MappingM2(m, PlacementCorners(8, 8))
	if err != nil {
		t.Fatal(err)
	}
	if cm.NumClusters() != 2 || cm.K != 2 {
		t.Fatalf("M2 shape: %d clusters, K=%d", cm.NumClusters(), cm.K)
	}
	if got := cm.MCsOf(0); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("MCsOf(0) = %v", got)
	}
	// M2 trades locality for MLP: its average distance must exceed M1's.
	m1 := mustM1(t, m)
	if cm.AvgDistToMC() <= m1.AvgDistToMC() {
		t.Errorf("M2 avg dist %.2f <= M1 avg dist %.2f", cm.AvgDistToMC(), m1.AvgDistToMC())
	}
}

func TestPlacements(t *testing.T) {
	for _, p := range []*MCPlacement{
		PlacementCorners(8, 8), PlacementDiamond(8, 8), PlacementTopBottom(8, 8),
	} {
		if err := p.Validate(8, 8); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if p.NumMCs() != 4 {
			t.Errorf("%s: %d MCs", p.Name, p.NumMCs())
		}
	}
	// Diamond minimizes mean distance over all nodes (Figure 19: P2 best).
	meanDist := func(p *MCPlacement) float64 {
		total := 0
		for core := 0; core < 64; core++ {
			n := mesh.CoordOf(core, 8)
			total += p.Dist(n, p.NearestMC(n))
		}
		return float64(total) / 64
	}
	d, c := meanDist(PlacementDiamond(8, 8)), meanDist(PlacementCorners(8, 8))
	if d >= c {
		t.Errorf("diamond mean dist %.2f >= corners %.2f", d, c)
	}
}

func TestPlacementPerimeter(t *testing.T) {
	for _, n := range []int{4, 8, 16} {
		p, err := PlacementPerimeter(8, 8, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := p.Validate(8, 8); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
		if p.NumMCs() != n {
			t.Errorf("n=%d: placed %d", n, p.NumMCs())
		}
	}
	if _, err := PlacementPerimeter(8, 8, 7); err == nil {
		t.Error("untileable MC count accepted")
	}
}

// The paper's running example (Figure 9/10): Z[j][i] with the i-loop
// parallel wants the transposed layout Z'[i][j].
func TestDataToCorePaperExample(t *testing.T) {
	p := ir.MustParse(`
program fig9
param N = 17
array Z[17][17]
parfor i = 2 .. N-1 {
  for j = 2 .. N-1 {
    Z[j][i] = Z[j-1][i] + Z[j][i] + Z[j+1][i]
  }
}
`)
	d2c, err := dataToCore(p, p.Array("Z"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !d2c.Gv.Equal(linalg.NewVec(0, 1)) {
		t.Errorf("gv = %v, want (0, 1)", d2c.Gv)
	}
	if !d2c.U.Row(0).Equal(linalg.NewVec(0, 1)) {
		t.Errorf("U row 0 = %v", d2c.U.Row(0))
	}
	if !linalg.IsUnimodular(d2c.U) {
		t.Errorf("U not unimodular:\n%v", d2c.U)
	}
	if d2c.Satisfied != 1.0 {
		t.Errorf("satisfied = %v, want 1 (all references share B)", d2c.Satisfied)
	}
	// The transformed reference is Z'[i][j]: applying U to the write's
	// subscripts must swap them.
	m := testMachine()
	al, err := customize(d2c, m, mustM1(t, m), m.Cores())
	if err != nil {
		t.Fatal(err)
	}
	subs := al.TransformedSubs(p.Nests[0].Body[0].Write)
	if subs[0].String() != "i" || subs[1].String() != "j" {
		t.Errorf("transformed subs = [%s][%s], want [i][j]", subs[0], subs[1])
	}
}

func TestDataToCoreUnoptimizable(t *testing.T) {
	// Array indexed only by the sequential loop: no thread-separating
	// hyperplane exists.
	p := ir.MustParse(`
program bad
array A[16]
parfor i = 0 .. 16 {
  for j = 0 .. 16 {
    A[j] = A[j]
  }
}
`)
	_, err := dataToCore(p, p.Array("A"), nil)
	if err == nil {
		t.Fatal("expected not-optimizable")
	}
	var eno *ErrNotOptimizable
	if !errorsAs(err, &eno) {
		t.Fatalf("error type %T", err)
	}
}

func errorsAs(err error, target **ErrNotOptimizable) bool {
	e, ok := err.(*ErrNotOptimizable)
	if ok {
		*target = e
	}
	return ok
}

func TestWeightedSubmatrixSelection(t *testing.T) {
	// Two nests prefer conflicting layouts; the one with the larger trip
	// count must win. Nest 1 (64x64 iterations) accesses A[i][j] (parallel
	// over i, wants row partitioning); nest 2 (4x4) accesses A[j][i]
	// (parallel over i, wants column partitioning).
	p := ir.MustParse(`
program conflict
array A[64][64]
parfor i = 0 .. 64 {
  for j = 0 .. 64 {
    A[i][j] = A[i][j]
  }
}
parfor i = 0 .. 4 {
  for j = 0 .. 4 {
    A[j][i] = A[j][i]
  }
}
`)
	d2c, err := dataToCore(p, p.Array("A"), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Winner: the heavy nest, whose B = A·(drop i col) has nullspace (1,0):
	// partition by the first subscript = i.
	if !d2c.Gv.Equal(linalg.NewVec(1, 0)) {
		t.Errorf("gv = %v, want (1, 0)", d2c.Gv)
	}
	// 64·64·2 refs of weight satisfied out of 64·64·2 + 4·4·2.
	wantSat := float64(2*64*64) / float64(2*64*64+2*4*4)
	if diff := d2c.Satisfied - wantSat; diff < -1e-9 || diff > 1e-9 {
		t.Errorf("satisfied = %v, want %v", d2c.Satisfied, wantSat)
	}
}

// elements yields every coordinate of the array.
func elements(arr *ir.Array) []linalg.Vec {
	coords := []linalg.Vec{{}}
	for _, d := range arr.Dims {
		var next []linalg.Vec
		for _, c := range coords {
			for v := int64(0); v < d; v++ {
				cc := append(c.Clone(), v)
				next = append(next, cc)
			}
		}
		coords = next
	}
	return coords
}

func optimizeOne(t *testing.T, m Machine, cm *ClusterMapping, src string) (*Result, *ArrayLayout, *ir.Program) {
	t.Helper()
	p := ir.MustParse(src)
	res, err := Optimize(p, m, cm, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res, res.Layout(p.Arrays[0]), p
}

const identitySrc = `
program ident
array A[16][16]
parfor i = 0 .. 16 {
  for j = 0 .. 16 {
    A[i][j] = A[i][j]
  }
}
`

func TestPrivateLayoutSteersMCs(t *testing.T) {
	m := testMachine()
	cm := mustM1(t, m)
	_, al, p := optimizeOne(t, m, cm, identitySrc)
	if !al.Optimized {
		t.Fatalf("not optimized: %s", al.Reason)
	}
	arr := p.Arrays[0]
	seen := map[int64]bool{}
	elemsPerThread := arr.NumElems() / int64(m.Cores()) // 16 rows / 16 threads
	for _, c := range elements(arr) {
		off := al.Offset(c)
		if off < 0 || off >= al.SizeBytes() {
			t.Fatalf("offset %d outside [0,%d) for %v", off, al.SizeBytes(), c)
		}
		if off%arr.ElemSize != 0 {
			t.Fatalf("misaligned offset %d for %v", off, c)
		}
		if seen[off] {
			t.Fatalf("offset %d assigned twice (at %v)", off, c)
		}
		seen[off] = true
		// U is the identity here, so row c[0] belongs to thread c[0]
		// (b = 1); the line-interleaved MC of the address must be the
		// thread's cluster's controller.
		owner := int(c[0])
		wantMC := cm.MCsOf(cm.ClusterOf(owner))
		gotMC := int((off / m.LineBytes) % int64(m.NumMCs))
		if gotMC != wantMC[0] {
			t.Errorf("element %v (owner core %d): line maps to MC%d, cluster wants %v", c, owner, gotMC, wantMC)
		}
		if dm := al.DesiredMC(off); dm != gotMC {
			t.Errorf("element %v: DesiredMC %d != interleaved MC %d", c, dm, gotMC)
		}
		_ = elemsPerThread
	}
}

func TestPrivateLayoutM2SpreadsOverK(t *testing.T) {
	m := testMachine()
	cm, err := MappingM2(m, PlacementCorners(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	_, al, p := optimizeOne(t, m, cm, identitySrc)
	arr := p.Arrays[0]
	// Every element must map to one of its cluster's two controllers, and
	// both controllers of each cluster must be used.
	used := map[int]map[int]bool{}
	for _, c := range elements(arr) {
		off := al.Offset(c)
		owner := int(c[0])
		ord := cm.ClusterOf(owner)
		gotMC := int((off / m.LineBytes) % int64(m.NumMCs))
		ok := false
		for _, mc := range cm.MCsOf(ord) {
			if mc == gotMC {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("element %v: MC%d not in cluster %d's set %v", c, gotMC, ord, cm.MCsOf(ord))
		}
		if used[ord] == nil {
			used[ord] = map[int]bool{}
		}
		used[ord][gotMC] = true
	}
	for ord, mcs := range used {
		if len(mcs) != 2 {
			t.Errorf("cluster %d used %d controllers, want 2 (MLP)", ord, len(mcs))
		}
	}
}

func TestPageInterleaveDesiredMCPageConstant(t *testing.T) {
	m := testMachine()
	m.Interleave = PageInterleave
	cm := mustM1(t, m)
	_, al, p := optimizeOne(t, m, cm, identitySrc)
	if !al.Optimized {
		t.Fatalf("not optimized: %s", al.Reason)
	}
	arr := p.Arrays[0]
	byPage := map[int64]int{}
	for _, c := range elements(arr) {
		off := al.Offset(c)
		page := off / m.PageBytes
		mc := al.DesiredMC(off)
		if mc < 0 || mc >= m.NumMCs {
			t.Fatalf("DesiredMC = %d", mc)
		}
		if prev, ok := byPage[page]; ok && prev != mc {
			t.Fatalf("page %d wants both MC%d and MC%d", page, prev, mc)
		}
		byPage[page] = mc
	}
}

func TestSharedLayoutMCsAdjacentOrDesired(t *testing.T) {
	m := testMachine()
	m.L2 = SharedL2
	cm := mustM1(t, m)
	_, al, p := optimizeOne(t, m, cm, identitySrc)
	if !al.Optimized {
		t.Fatalf("not optimized: %s", al.Reason)
	}
	arr := p.Arrays[0]
	allowed := allowedMCs(cm)
	seen := map[int64]bool{}
	for _, c := range elements(arr) {
		off := al.Offset(c)
		if off < 0 || off >= al.SizeBytes() {
			t.Fatalf("offset %d outside [0,%d)", off, al.SizeBytes())
		}
		if seen[off] {
			t.Fatalf("offset %d reused", off)
		}
		seen[off] = true
		owner := int(c[0]) // identity U, b = 1
		gotMC := int((off / m.LineBytes) % int64(m.NumMCs))
		if !allowed[cm.ClusterOf(owner)][gotMC] {
			t.Errorf("element %v (owner %d, cluster %d): MC%d is in the excluded set",
				c, owner, cm.ClusterOf(owner), gotMC)
		}
	}
}

func TestSharedRequiresLineInterleave(t *testing.T) {
	m := testMachine()
	m.L2 = SharedL2
	m.Interleave = PageInterleave
	cm := mustM1(t, m)
	p := ir.MustParse(identitySrc)
	if _, err := Optimize(p, m, cm, nil); err == nil {
		t.Error("shared L2 + page interleave accepted")
	}
}

func TestAllowedMCsExcludesDiagonal(t *testing.T) {
	m := Default8x8()
	cm := mustM1(t, m)
	allowed := allowedMCs(cm)
	// Cluster 0 (TL): desired MC0 at (0,0). Adjacent: MC1 (7,0) and MC2
	// (0,7) at distance 7. Excluded: MC3 (7,7) at distance 14.
	want := []bool{true, true, true, false}
	for mc, w := range want {
		if allowed[0][mc] != w {
			t.Errorf("allowed[0][%d] = %v, want %v", mc, allowed[0][mc], w)
		}
	}
}

func TestOptimizeStats(t *testing.T) {
	m := testMachine()
	cm := mustM1(t, m)
	res, _, _ := optimizeOne(t, m, cm, identitySrc)
	if res.ArraysTotal != 1 || res.ArraysOptimized != 1 {
		t.Errorf("stats: %d/%d", res.ArraysOptimized, res.ArraysTotal)
	}
	if res.PctArraysOptimized() != 100 || res.PctRefsSatisfied() != 100 {
		t.Errorf("percentages: %v%% arrays, %v%% refs", res.PctArraysOptimized(), res.PctRefsSatisfied())
	}
	if !strings.Contains(res.Report(), "optimized") {
		t.Error("report missing content")
	}
}

func TestOptimizeSkipsIndexArrays(t *testing.T) {
	m := testMachine()
	cm := mustM1(t, m)
	p := ir.MustParse(`
program spmv
array x[64]
array col[64] elem 4
array y[64]
parfor i = 0 .. 64 {
  for k = 0 .. 1 {
    y[i] = y[i] + x[col[i]]
  }
}
`)
	res, err := Optimize(p, m, cm, nil)
	if err != nil {
		t.Fatal(err)
	}
	// col is a pure index array: excluded from the optimization universe.
	if res.ArraysTotal != 2 {
		t.Errorf("ArraysTotal = %d, want 2 (x and y)", res.ArraysTotal)
	}
	colLayout := res.Layout(p.Array("col"))
	if colLayout.Optimized {
		t.Error("index array was transformed")
	}
	// x is only reached through an unapproximable indexed ref: identity.
	if res.Layout(p.Array("x")).Optimized {
		t.Error("x optimized without an approximator")
	}
	// y is affine and optimizable.
	if !res.Layout(p.Array("y")).Optimized {
		t.Errorf("y not optimized: %s", res.Layout(p.Array("y")).Reason)
	}
	if res.PctRefsSatisfied() >= 100 {
		t.Errorf("refs satisfied = %v%%, expected < 100 with indexed refs", res.PctRefsSatisfied())
	}
}

func TestOptimizeValidatesInputs(t *testing.T) {
	m := testMachine()
	cm := mustM1(t, m)
	p := ir.MustParse(identitySrc)
	if _, err := Optimize(p, m, nil, nil); err == nil {
		t.Error("nil mapping accepted")
	}
	other := Default8x8()
	if _, err := Optimize(p, other, cm, nil); err == nil {
		t.Error("mesh-size mismatch accepted")
	}
	badM := m
	badM.NumMCs = 2
	if _, err := Optimize(p, badM, cm, nil); err == nil {
		t.Error("MC-count mismatch accepted")
	}
}

func TestChooseMapping(t *testing.T) {
	m := Default8x8()
	p := PlacementCorners(8, 8)
	m1 := mustM1(t, m)
	m2, err := MappingM2(m, p)
	if err != nil {
		t.Fatal(err)
	}
	cands := []*ClusterMapping{m1, m2}
	// Low demand: locality wins (M1). This is most applications.
	low := DemandProfile{ConcurrentRequests: 3, BankServiceHops: 10}
	if got := ChooseMapping(cands, low, 4); got != m1 {
		t.Errorf("low demand chose %s", got.Name)
	}
	// High demand (fma3d, minighost): MLP wins (M2).
	high := DemandProfile{ConcurrentRequests: 16, BankServiceHops: 10}
	if got := ChooseMapping(cands, high, 4); got != m2 {
		t.Errorf("high demand chose %s", got.Name)
	}
	if ChooseMapping(nil, low, 4) != nil {
		t.Error("empty candidate set returned a mapping")
	}
}

func TestCustomizedFormRendering(t *testing.T) {
	m := testMachine()
	cm := mustM1(t, m)
	_, al, p := optimizeOne(t, m, cm, identitySrc)
	form := al.CustomizedForm(p.Nests[0].Body[0].Write)
	if !strings.Contains(form, "R(") || !strings.Contains(form, "%") {
		t.Errorf("customized form = %q", form)
	}
	// Unoptimized arrays render unchanged.
	id := IdentityLayout(p.Arrays[0], "test")
	if got := id.CustomizedForm(p.Nests[0].Body[0].Write); got != "A[i][j]" {
		t.Errorf("identity form = %q", got)
	}
}

func TestIdentityLayoutOffset(t *testing.T) {
	arr := &ir.Array{Name: "A", Dims: []int64{4, 4}, ElemSize: 8}
	al := IdentityLayout(arr, "baseline")
	if got := al.Offset(linalg.NewVec(2, 3)); got != (2*4+3)*8 {
		t.Errorf("Offset = %d", got)
	}
	if al.SizeBytes() != 128 {
		t.Errorf("SizeBytes = %d", al.SizeBytes())
	}
	if al.DesiredMC(64) != -1 {
		t.Error("identity layout expressed an MC preference")
	}
}

func TestLayoutFootprintPaddingBounded(t *testing.T) {
	// Padding must stay sane (within 4x of the original footprint for a
	// square array; the paper reports ~4% total runtime overhead).
	m := testMachine()
	cm := mustM1(t, m)
	_, al, p := optimizeOne(t, m, cm, identitySrc)
	orig := p.Arrays[0].SizeBytes()
	if al.SizeBytes() > 4*orig {
		t.Errorf("footprint %d > 4x original %d", al.SizeBytes(), orig)
	}
}

func TestAssignHomeBanksPermutation(t *testing.T) {
	m := Default8x8()
	cm := mustM1(t, m)
	homes := assignHomeBanks(cm)
	if len(homes) != 64 {
		t.Fatalf("%d home assignments", len(homes))
	}
	seen := map[int]bool{}
	allowed := allowedMCs(cm)
	distSum := 0
	for core, h := range homes {
		if seen[h] {
			t.Fatalf("bank %d homes two cores' data", h)
		}
		seen[h] = true
		// The bank's residue must select an allowed (desired-or-adjacent)
		// controller for the core's cluster.
		if !allowed[cm.ClusterOf(core)][h%cm.NumMCs()] {
			t.Errorf("core %d homed on bank %d with excluded MC%d", core, h, h%cm.NumMCs())
		}
		distSum += mesh.Dist(mesh.CoordOf(core, 8), mesh.CoordOf(h, 8))
	}
	// On-chip locality: the matching keeps homes close (cf. the 5.33-hop
	// average of random home banks on an 8x8 mesh).
	if avg := float64(distSum) / 64; avg > 2.5 {
		t.Errorf("average owner-to-home distance %.2f hops, want <= 2.5", avg)
	}
}

func TestSharedLayoutWithM2(t *testing.T) {
	m := testMachine()
	m.L2 = SharedL2
	cm, err := MappingM2(m, PlacementCorners(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	_, al, p := optimizeOne(t, m, cm, identitySrc)
	if !al.Optimized {
		t.Fatalf("not optimized: %s", al.Reason)
	}
	allowed := allowedMCs(cm)
	for _, c := range elements(p.Arrays[0]) {
		off := al.Offset(c)
		owner := int(c[0]) // identity U, b = 1
		gotMC := int((off / m.LineBytes) % int64(m.NumMCs))
		if !allowed[cm.ClusterOf(owner)][gotMC] {
			t.Fatalf("element %v: MC%d excluded for cluster %d", c, gotMC, cm.ClusterOf(owner))
		}
	}
}

func TestClusterMappingValidationErrors(t *testing.T) {
	m := Default8x8()
	good := mustM1(t, m)
	bad := *good
	bad.ClustersX = 3 // 8 % 3 != 0
	if bad.Validate() == nil {
		t.Error("uneven tiling accepted")
	}
	bad = *good
	bad.K = 0
	if bad.Validate() == nil {
		t.Error("K=0 accepted")
	}
	bad = *good
	bad.Placement = nil
	if bad.Validate() == nil {
		t.Error("nil placement accepted")
	}
	bad = *good
	bad.K = 2 // 4 clusters × 2 = 8 MCs but placement has 4
	if bad.Validate() == nil {
		t.Error("MC count mismatch accepted")
	}
	p := &MCPlacement{Name: "bad", Nodes: []mesh.Node{{X: 9, Y: 0}, {X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}}}
	if p.Validate(8, 8) == nil {
		t.Error("off-mesh MC accepted")
	}
	p2 := &MCPlacement{Name: "dup", Nodes: []mesh.Node{{X: 0, Y: 0}, {X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}}}
	if p2.Validate(8, 8) == nil {
		t.Error("duplicate MC node accepted")
	}
}

func TestMachineLineUnit(t *testing.T) {
	m := Default8x8()
	if m.LineUnit() != 256 {
		t.Errorf("LineUnit = %d (Table 1: 256B interleave unit)", m.LineUnit())
	}
	m.InterleaveBytes = 0
	if m.LineUnit() != m.LineBytes {
		t.Errorf("LineUnit fallback = %d", m.LineUnit())
	}
	m = Default8x8()
	m.InterleaveBytes = 100 // not a multiple of 64
	if m.Validate() == nil {
		t.Error("misaligned interleave unit accepted")
	}
}

func TestMappingCostMonotonicInDemand(t *testing.T) {
	m := Default8x8()
	cm := mustM1(t, m)
	low := MappingCost(cm, DemandProfile{ConcurrentRequests: 2, BankServiceHops: 10}, 4)
	high := MappingCost(cm, DemandProfile{ConcurrentRequests: 20, BankServiceHops: 10}, 4)
	if high <= low {
		t.Errorf("cost not monotone in demand: %v vs %v", low, high)
	}
	if def := DefaultDemand(); def.ConcurrentRequests <= 0 || def.BankServiceHops <= 0 {
		t.Error("default demand degenerate")
	}
}
