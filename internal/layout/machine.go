// Package layout implements the paper's contribution: the compiler-guided
// data layout transformation that localizes off-chip accesses in an
// NoC-based manycore (Algorithm 1).
//
// The pass has two steps. Determining the Data-to-Core mapping (Section 5.2)
// finds, per array, a unimodular transformation U whose data-partitioning row
// gᵥ solves Bᵀ·gᵥ = 0 for the dominant submatrix B of the array's access
// matrices, so that parallel hyperplanes orthogonal to dimension v isolate
// the data of different threads. Layout customization (Section 5.3) then
// strip-mines and permutes the transformed space so that, under the
// hardware's physical-address interleaving, each cluster's off-chip requests
// are served by the memory controllers the user's L2-to-MC mapping assigns
// to it. The pass emits, per array, both the transformed reference form (for
// inspection, as in Figure 9(c)) and an exact virtual-address remapping used
// by the trace generator — a data transformation is "a kind of renaming".
package layout

import (
	"fmt"
)

// CacheKind selects the last-level cache organization of Figure 2.
type CacheKind int

const (
	// PrivateL2 gives each core its own L2; misses consult a centralized
	// tag directory cached at the data's memory controller (Figure 2a).
	PrivateL2 CacheKind = iota
	// SharedL2 manages all L2 banks as one shared SNUCA cache with
	// address-interleaved home banks (Figure 2b).
	SharedL2
)

func (k CacheKind) String() string {
	switch k {
	case PrivateL2:
		return "private-L2"
	case SharedL2:
		return "shared-L2"
	default:
		return fmt.Sprintf("CacheKind(%d)", int(k))
	}
}

// Granularity selects how physical addresses are interleaved across memory
// controllers (Section 3, Figure 5).
type Granularity int

const (
	// LineInterleave takes the MC-select bits right after the cache-line
	// offset: consecutive cache lines map to consecutive MCs. The bits are
	// unchanged by address translation, so the compiler alone can steer
	// data to MCs.
	LineInterleave Granularity = iota
	// PageInterleave takes the MC-select bits right after the page offset:
	// consecutive physical pages map to consecutive MCs. The OS page
	// allocation policy decides the bits, so the compiler needs OS help
	// (Section 5.3, "Page Interleaving").
	PageInterleave
)

func (g Granularity) String() string {
	switch g {
	case LineInterleave:
		return "cache-line"
	case PageInterleave:
		return "page"
	default:
		return fmt.Sprintf("Granularity(%d)", int(g))
	}
}

// Machine describes the target manycore as the pass sees it.
type Machine struct {
	MeshX, MeshY int   // mesh dimensions; MeshX·MeshY cores
	NumMCs       int   // number of memory controllers N'
	LineBytes    int64 // cache line size in bytes (L1/L2 tag granularity)
	// InterleaveBytes is the unit of cache-line-granularity interleaving
	// and of shared-L2 home-bank selection (Table 1: 256 B, the L2 line
	// size, while the caches track 64 B lines). Zero means LineBytes.
	InterleaveBytes int64
	PageBytes       int64       // OS page size in bytes
	L2              CacheKind   // last-level cache organization
	Interleave      Granularity // physical address interleaving granularity
}

// LineUnit returns the line-granularity interleaving unit in bytes.
func (m Machine) LineUnit() int64 {
	if m.InterleaveBytes > 0 {
		return m.InterleaveBytes
	}
	return m.LineBytes
}

// Default8x8 returns the paper's default configuration (Table 1): an 8×8
// mesh, 4 memory controllers, 64-byte lines (Table 1's L1 line size; one
// line size serves L1, L2, and the interleaving unit in this model) and
// 4 KB pages, private L2s with cache-line interleaving.
func Default8x8() Machine {
	return Machine{
		MeshX:           8,
		MeshY:           8,
		NumMCs:          4,
		LineBytes:       64,
		InterleaveBytes: 256,
		PageBytes:       4096,
		L2:              PrivateL2,
		Interleave:      LineInterleave,
	}
}

// Cores returns the total core count.
func (m Machine) Cores() int { return m.MeshX * m.MeshY }

// UnitBytes returns the interleaving unit in bytes: the line size under
// cache-line interleaving, the page size under page interleaving.
func (m Machine) UnitBytes() int64 {
	if m.Interleave == PageInterleave {
		return m.PageBytes
	}
	return m.LineUnit()
}

// Validate checks the configuration for consistency.
func (m Machine) Validate() error {
	if m.MeshX <= 0 || m.MeshY <= 0 {
		return fmt.Errorf("layout: invalid mesh %dx%d", m.MeshX, m.MeshY)
	}
	if m.NumMCs <= 0 {
		return fmt.Errorf("layout: %d memory controllers", m.NumMCs)
	}
	if m.LineBytes <= 0 || m.PageBytes <= 0 {
		return fmt.Errorf("layout: line %dB page %dB", m.LineBytes, m.PageBytes)
	}
	if m.PageBytes%m.LineBytes != 0 {
		return fmt.Errorf("layout: page size %d not a multiple of line size %d", m.PageBytes, m.LineBytes)
	}
	if m.LineUnit()%m.LineBytes != 0 || m.PageBytes%m.LineUnit() != 0 {
		return fmt.Errorf("layout: interleave unit %d must divide page %d and be a multiple of line %d",
			m.LineUnit(), m.PageBytes, m.LineBytes)
	}
	if m.Cores()%m.NumMCs != 0 {
		return fmt.Errorf("layout: %d cores not divisible by %d MCs", m.Cores(), m.NumMCs)
	}
	return nil
}
