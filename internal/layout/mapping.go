package layout

import (
	"fmt"

	"offchip/internal/mesh"
)

// MCPlacement assigns each memory controller ID a node on the mesh. MC IDs
// are the logical IDs selected by the physical-address interleaving bits
// (MC of a unit-granularity address a is a mod NumMCs); the placement
// decides where each ID's controller physically sits. Constructors order
// IDs so that ID i is near cluster i·k of the row-major cluster grid, which
// is the paper's convention of binding thread order to MC order
// (footnote 5).
type MCPlacement struct {
	Name  string
	Nodes []mesh.Node // node of MC i
}

// NumMCs returns the number of controllers.
func (p *MCPlacement) NumMCs() int { return len(p.Nodes) }

// NodeOf returns the mesh node of controller mc.
func (p *MCPlacement) NodeOf(mc int) mesh.Node { return p.Nodes[mc] }

// Dist returns the hop distance from a node to controller mc.
func (p *MCPlacement) Dist(n mesh.Node, mc int) int {
	return mesh.Dist(n, p.Nodes[mc])
}

// NearestMC returns the controller with minimum hop distance from n
// (lowest ID on ties).
func (p *MCPlacement) NearestMC(n mesh.Node) int {
	best, bestD := 0, 1<<30
	for i, m := range p.Nodes {
		if d := mesh.Dist(n, m); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// Validate checks that every MC node is on the mesh and distinct.
func (p *MCPlacement) Validate(meshX, meshY int) error {
	seen := map[mesh.Node]bool{}
	for i, n := range p.Nodes {
		if n.X < 0 || n.X >= meshX || n.Y < 0 || n.Y >= meshY {
			return fmt.Errorf("layout: MC%d at %v outside %dx%d mesh", i, n, meshX, meshY)
		}
		if seen[n] {
			return fmt.Errorf("layout: two MCs share node %v", n)
		}
		seen[n] = true
	}
	return nil
}

// PlacementCorners is placement P1 (Figure 8a): four controllers in the
// mesh corners, IDs in row-major corner order (TL, TR, BL, BR) so that each
// quadrant cluster's ID-matched controller is its nearest.
func PlacementCorners(meshX, meshY int) *MCPlacement {
	return &MCPlacement{
		Name: "P1-corners",
		Nodes: []mesh.Node{
			{X: 0, Y: 0},
			{X: meshX - 1, Y: 0},
			{X: 0, Y: meshY - 1},
			{X: meshX - 1, Y: meshY - 1},
		},
	}
}

// PlacementDiamond is placement P2 (Figure 26a): controllers at the edge
// midpoints in a diamond, which minimizes the average distance-to-controller
// across the chip.
func PlacementDiamond(meshX, meshY int) *MCPlacement {
	return &MCPlacement{
		Name: "P2-diamond",
		Nodes: []mesh.Node{
			{X: meshX/2 - 1, Y: 0},         // top, serving the TL quadrant
			{X: meshX - 1, Y: meshY/2 - 1}, // right, serving the TR quadrant
			{X: 0, Y: meshY / 2},           // left, serving the BL quadrant
			{X: meshX / 2, Y: meshY - 1},   // bottom, serving the BR quadrant
		},
	}
}

// PlacementTopBottom is placement P3 (Figure 26b): controllers spread along
// the top and bottom edges.
func PlacementTopBottom(meshX, meshY int) *MCPlacement {
	return &MCPlacement{
		Name: "P3-topbottom",
		Nodes: []mesh.Node{
			{X: meshX / 4, Y: 0},
			{X: 3 * meshX / 4, Y: 0},
			{X: meshX / 4, Y: meshY - 1},
			{X: 3 * meshX / 4, Y: meshY - 1},
		},
	}
}

// PlacementPerimeter distributes n controllers around the chip perimeter,
// each placed at the free perimeter node nearest the center of cluster i of
// an n-cluster row-major grid (used for the 8- and 16-MC configurations of
// Figure 27).
func PlacementPerimeter(meshX, meshY, n int) (*MCPlacement, error) {
	cx, cy, err := clusterGrid(meshX, meshY, n)
	if err != nil {
		return nil, err
	}
	var per []mesh.Node
	for x := 0; x < meshX; x++ {
		per = append(per, mesh.Node{X: x, Y: 0}, mesh.Node{X: x, Y: meshY - 1})
	}
	for y := 1; y < meshY-1; y++ {
		per = append(per, mesh.Node{X: 0, Y: y}, mesh.Node{X: meshX - 1, Y: y})
	}
	used := map[mesh.Node]bool{}
	p := &MCPlacement{Name: fmt.Sprintf("perimeter-%d", n)}
	tw, th := meshX/cx, meshY/cy
	for ord := 0; ord < n; ord++ {
		ctr := mesh.Node{
			X: (ord%cx)*tw + tw/2,
			Y: (ord/cx)*th + th/2,
		}
		best, bestD := mesh.Node{X: -1}, 1<<30
		for _, cand := range per {
			if used[cand] {
				continue
			}
			if d := mesh.Dist(ctr, cand); d < bestD {
				best, bestD = cand, d
			}
		}
		if best.X == -1 {
			return nil, fmt.Errorf("layout: perimeter exhausted placing %d MCs on %dx%d", n, meshX, meshY)
		}
		used[best] = true
		p.Nodes = append(p.Nodes, best)
	}
	return p, nil
}

// ClusterMapping is a valid L2-to-MC mapping (Section 4): the mesh is tiled
// into ClustersX×ClustersY equal rectangular clusters of cores; cluster ord
// (row-major) is served by the K controllers with IDs ord·K … ord·K+K−1.
// Both validity constraints of the paper hold by construction: every cluster
// contains the same number of cores and is assigned the same number of
// controllers.
type ClusterMapping struct {
	Name                 string
	MeshX, MeshY         int
	ClustersX, ClustersY int
	K                    int // MCs per cluster
	Placement            *MCPlacement
}

// NumClusters returns ClustersX·ClustersY.
func (c *ClusterMapping) NumClusters() int { return c.ClustersX * c.ClustersY }

// NumMCs returns the total controller count of the mapping.
func (c *ClusterMapping) NumMCs() int { return c.NumClusters() * c.K }

// CoresPerCluster returns the number of cores in each cluster.
func (c *ClusterMapping) CoresPerCluster() int {
	return (c.MeshX / c.ClustersX) * (c.MeshY / c.ClustersY)
}

// ClusterOf returns the row-major cluster ordinal of a core ID.
func (c *ClusterMapping) ClusterOf(core int) int {
	n := mesh.CoordOf(core, c.MeshX)
	tw, th := c.MeshX/c.ClustersX, c.MeshY/c.ClustersY
	return (n.Y/th)*c.ClustersX + n.X/tw
}

// MCsOf returns the controller IDs serving cluster ord.
func (c *ClusterMapping) MCsOf(ord int) []int {
	mcs := make([]int, c.K)
	for j := range mcs {
		mcs[j] = ord*c.K + j
	}
	return mcs
}

// DesiredMCOf returns the first (primary) controller of a core's cluster.
func (c *ClusterMapping) DesiredMCOf(core int) int {
	return c.ClusterOf(core) * c.K
}

// Validate checks the two validity constraints and placement consistency.
func (c *ClusterMapping) Validate() error {
	if c.ClustersX <= 0 || c.ClustersY <= 0 || c.K <= 0 {
		return fmt.Errorf("layout: mapping %s has non-positive shape", c.Name)
	}
	if c.MeshX%c.ClustersX != 0 || c.MeshY%c.ClustersY != 0 {
		return fmt.Errorf("layout: mapping %s: %dx%d mesh not tiled evenly by %dx%d clusters",
			c.Name, c.MeshX, c.MeshY, c.ClustersX, c.ClustersY)
	}
	if c.Placement == nil {
		return fmt.Errorf("layout: mapping %s has no MC placement", c.Name)
	}
	if c.Placement.NumMCs() != c.NumMCs() {
		return fmt.Errorf("layout: mapping %s assigns %d MCs but placement has %d",
			c.Name, c.NumMCs(), c.Placement.NumMCs())
	}
	return c.Placement.Validate(c.MeshX, c.MeshY)
}

// AvgDistToMC returns the mean hop distance from each core to the
// controllers of its cluster — the locality half of the locality-vs-MLP
// trade-off the mapping chooser weighs.
func (c *ClusterMapping) AvgDistToMC() float64 {
	total, count := 0, 0
	for core := 0; core < c.MeshX*c.MeshY; core++ {
		n := mesh.CoordOf(core, c.MeshX)
		for _, mc := range c.MCsOf(c.ClusterOf(core)) {
			total += c.Placement.Dist(n, mc)
			count++
		}
	}
	return float64(total) / float64(count)
}

// clusterGrid factors n into a cx×cy grid as close to the mesh aspect ratio
// as possible, preferring wider-than-tall on square meshes.
func clusterGrid(meshX, meshY, n int) (cx, cy int, err error) {
	best := -1
	for x := 1; x <= n; x++ {
		if n%x != 0 {
			continue
		}
		y := n / x
		if meshX%x != 0 || meshY%y != 0 {
			continue
		}
		// Prefer the squarest tiling of the mesh.
		tw, th := meshX/x, meshY/y
		d := tw - th
		if d < 0 {
			d = -d
		}
		if best == -1 || d < best {
			best, cx, cy = d, x, y
		}
	}
	if best == -1 {
		return 0, 0, fmt.Errorf("layout: cannot tile %dx%d mesh into %d clusters", meshX, meshY, n)
	}
	return cx, cy, nil
}

// MappingM1 is the default L2-to-MC mapping of Figure 8a: one controller
// per cluster (K = 1), clusters tiling the mesh in a near-square grid, each
// cluster served by its own (nearest, under the matching placement)
// controller. It maximizes locality.
func MappingM1(m Machine, p *MCPlacement) (*ClusterMapping, error) {
	cx, cy, err := clusterGrid(m.MeshX, m.MeshY, m.NumMCs)
	if err != nil {
		return nil, err
	}
	c := &ClusterMapping{
		Name:  "M1",
		MeshX: m.MeshX, MeshY: m.MeshY,
		ClustersX: cx, ClustersY: cy,
		K:         1,
		Placement: p,
	}
	return c, c.Validate()
}

// MappingM2 is the alternate mapping of Figure 8b: two controllers per
// cluster (K = 2), so each core's requests spread over two controllers.
// It trades locality for memory-level parallelism.
func MappingM2(m Machine, p *MCPlacement) (*ClusterMapping, error) {
	if m.NumMCs%2 != 0 {
		return nil, fmt.Errorf("layout: M2 needs an even MC count, have %d", m.NumMCs)
	}
	cx, cy, err := clusterGrid(m.MeshX, m.MeshY, m.NumMCs/2)
	if err != nil {
		return nil, err
	}
	c := &ClusterMapping{
		Name:  "M2",
		MeshX: m.MeshX, MeshY: m.MeshY,
		ClustersX: cx, ClustersY: cy,
		K:         2,
		Placement: p,
	}
	return c, c.Validate()
}
