package layout

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"offchip/internal/ir"
)

// TestPropOffsetBijective drives the central layout invariant across random
// machine configurations, cache kinds, and array shapes: the customized
// layout must be a bijection from elements to distinct, aligned offsets
// inside the declared footprint — a data transformation is a renaming, so
// nothing may collide and nothing may escape the allocation.
func TestPropOffsetBijective(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))

		meshes := [][2]int{{4, 4}, {8, 4}, {8, 8}}
		mesh := meshes[r.Intn(len(meshes))]
		m := Machine{
			MeshX: mesh[0], MeshY: mesh[1],
			NumMCs:          4,
			LineBytes:       64,
			InterleaveBytes: 256,
			PageBytes:       4096,
			L2:              CacheKind(r.Intn(2)),
			Interleave:      LineInterleave,
		}
		if m.L2 == PrivateL2 && r.Intn(2) == 0 {
			m.Interleave = PageInterleave
		}
		cm, err := MappingM1(m, PlacementCorners(m.MeshX, m.MeshY))
		if err != nil {
			t.Log(err)
			return false
		}
		// Random 2-D array, sometimes transposed access to exercise U ≠ I.
		d0 := int64(16 + r.Intn(200))
		d1 := int64(8 + r.Intn(64))
		dims := fmt.Sprintf("[%d][%d]", d0, d1)
		var src string
		if r.Intn(2) == 0 {
			// Transposed: the parallel i walks A's fastest dimension.
			src = fmt.Sprintf(`
program prop
array A%s
parfor i = 0 .. %d {
  for j = 0 .. %d {
    A[j][i] = A[j][i]
  }
}
`, dims, d1, d0)
		} else {
			src = fmt.Sprintf(`
program prop
array A%s
parfor i = 0 .. %d {
  for j = 0 .. %d {
    A[i][j] = A[i][j]
  }
}
`, dims, d0, d1)
		}
		p, err := ir.Parse(src)
		if err != nil {
			t.Log(err)
			return false
		}
		res, err := Optimize(p, m, cm, nil)
		if err != nil {
			t.Log(err)
			return false
		}
		arr := p.Arrays[0]
		al := res.Layout(arr)
		if !al.Optimized {
			t.Logf("seed %d: not optimized: %s", seed, al.Reason)
			return false
		}
		seen := make(map[int64]bool, arr.NumElems())
		for _, c := range elements(arr) {
			off := al.Offset(c)
			if off < 0 || off >= al.SizeBytes() {
				t.Logf("seed %d: offset %d outside [0,%d)", seed, off, al.SizeBytes())
				return false
			}
			if off%arr.ElemSize != 0 {
				t.Logf("seed %d: misaligned offset %d", seed, off)
				return false
			}
			if seen[off] {
				t.Logf("seed %d: collision at %d (coord %v, dims %s, mesh %v, l2 %v)",
					seed, off, c, dims, mesh, m.L2)
				return false
			}
			seen[off] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropDesiredMCConsistent checks that DesiredMC always names a real
// controller for optimized arrays, and that under line interleaving it
// matches the hardware's interleave decision at offset granularity.
func TestPropDesiredMCConsistent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := Default8x8()
		cm, err := MappingM1(m, PlacementCorners(8, 8))
		if err != nil {
			return false
		}
		d0 := int64(64 + r.Intn(128))
		src := fmt.Sprintf(`
program prop
array A[%d][32]
parfor i = 0 .. %d {
  for j = 0 .. 32 {
    A[i][j] = A[i][j]
  }
}
`, d0, d0)
		p, err := ir.Parse(src)
		if err != nil {
			return false
		}
		res, err := Optimize(p, m, cm, nil)
		if err != nil {
			return false
		}
		arr := p.Arrays[0]
		al := res.Layout(arr)
		if !al.Optimized {
			return false
		}
		for _, c := range elements(arr) {
			off := al.Offset(c)
			mc := al.DesiredMC(off)
			if mc < 0 || mc >= m.NumMCs {
				t.Logf("seed %d: DesiredMC %d", seed, mc)
				return false
			}
			if got := int((off / m.LineUnit()) % int64(m.NumMCs)); got != mc {
				t.Logf("seed %d: interleave sends offset %d to MC%d, layout wants MC%d",
					seed, off, got, mc)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
