package layout

import (
	"fmt"

	"offchip/internal/ir"
)

// The paper's implementation is a source-to-source translator: the pass
// rewrites every optimized array reference into the strip-mined/permuted
// form of Figure 9(c). This file produces that rewritten form as an
// explicit expression tree — integer division and modulo by constants over
// affine bases — which both renders as source text and evaluates to the
// same byte offset as the runtime remapping ArrayLayout.Offset (the
// equivalence is tested property-style; a data transformation is a
// renaming, and the symbolic and table-driven views must agree exactly).

// ExprOp is the operator of a rewrite expression node.
type ExprOp int

// Expression operators.
const (
	OpAffine ExprOp = iota // affine leaf over the loop variables
	OpDiv                  // X / C (integer division, C > 0)
	OpMod                  // X % C (mathematical modulo, C > 0)
	OpMulC                 // X * C
	OpAdd                  // A + B
	OpTable                // Table[X] (the shared-L2 home-bank map)
)

// Expr is a subscript expression of a customized reference.
type Expr struct {
	Op    ExprOp
	Lin   ir.LinExpr // OpAffine
	X     *Expr      // OpDiv, OpMod, OpMulC, OpTable operand
	A, B  *Expr      // OpAdd operands
	C     int64      // OpDiv, OpMod, OpMulC constant
	Table []int64    // OpTable contents
}

func affine(l ir.LinExpr) *Expr      { return &Expr{Op: OpAffine, Lin: l} }
func div(x *Expr, c int64) *Expr     { return &Expr{Op: OpDiv, X: x, C: c} }
func mod(x *Expr, c int64) *Expr     { return &Expr{Op: OpMod, X: x, C: c} }
func mulc(x *Expr, c int64) *Expr    { return &Expr{Op: OpMulC, X: x, C: c} }
func add(a, b *Expr) *Expr           { return &Expr{Op: OpAdd, A: a, B: b} }
func table(x *Expr, t []int64) *Expr { return &Expr{Op: OpTable, X: x, Table: t} }

// Eval evaluates the expression under a loop-variable environment.
func (e *Expr) Eval(env map[string]int64) int64 {
	switch e.Op {
	case OpAffine:
		return e.Lin.Eval(env)
	case OpDiv:
		return floorDiv(e.X.Eval(env), e.C)
	case OpMod:
		return floorMod(e.X.Eval(env), e.C)
	case OpMulC:
		return e.X.Eval(env) * e.C
	case OpAdd:
		return e.A.Eval(env) + e.B.Eval(env)
	case OpTable:
		i := e.X.Eval(env)
		if i < 0 {
			i = 0
		}
		if i >= int64(len(e.Table)) {
			i = int64(len(e.Table)) - 1
		}
		return e.Table[i]
	default:
		panic(fmt.Sprintf("layout: unknown expr op %d", e.Op))
	}
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

func floorMod(a, b int64) int64 {
	m := a % b
	if m < 0 {
		m += b
	}
	return m
}

// String renders the expression in Figure 9(c) style.
func (e *Expr) String() string {
	switch e.Op {
	case OpAffine:
		return e.Lin.String()
	case OpDiv:
		return fmt.Sprintf("(%s)/%d", e.X, e.C)
	case OpMod:
		return fmt.Sprintf("(%s)%%%d", e.X, e.C)
	case OpMulC:
		return fmt.Sprintf("%d*(%s)", e.C, e.X)
	case OpAdd:
		return fmt.Sprintf("%s+%s", e.A, e.B)
	case OpTable:
		return fmt.Sprintf("H[%s]", e.X)
	default:
		return "?"
	}
}

// CustomRef is one rewritten array reference: the customized array shape
// and one subscript expression per new dimension.
type CustomRef struct {
	Array   *ir.Array
	NewDims []int64
	Subs    []*Expr
}

// String renders the reference, e.g. Z”[(j)/32][R][…].
func (cr *CustomRef) String() string {
	out := cr.Array.Name + "''"
	for _, s := range cr.Subs {
		out += fmt.Sprintf("[%s]", s)
	}
	return out
}

// Offset evaluates the byte offset the rewritten reference addresses under
// the loop environment (row-major over NewDims).
func (cr *CustomRef) Offset(env map[string]int64, elemSize int64) int64 {
	var lin int64
	for d, s := range cr.Subs {
		lin = lin*cr.NewDims[d] + s.Eval(env)
	}
	return lin * elemSize
}

// ErrNotClosedForm reports why a reference has no closed-form rewrite.
type ErrNotClosedForm struct{ Reason string }

func (e *ErrNotClosedForm) Error() string {
	return "layout: no closed-form rewrite: " + e.Reason
}

// RewriteRef rewrites an affine reference to an optimized array into its
// customized closed form. It requires the partition dimension to divide
// evenly into the per-thread data blocks (newDims[0] == b·threads); uneven
// tails fall back to the table-driven remap and return ErrNotClosedForm
// (padding, Section 5.3, normally guarantees even division).
func (al *ArrayLayout) RewriteRef(r *ir.Ref) (*CustomRef, error) {
	if !al.Optimized {
		return nil, &ErrNotClosedForm{"array not optimized"}
	}
	if r.Indexed() {
		return nil, &ErrNotClosedForm{"indexed reference"}
	}
	if al.cm == nil || al.threads <= 0 {
		return nil, &ErrNotClosedForm{"layout lacks mapping context"}
	}
	if al.newDims[0]%al.b != 0 || al.newDims[0]/al.b != int64(al.threads) {
		return nil, &ErrNotClosedForm{
			fmt.Sprintf("partition dim %d does not divide into %d blocks of %d",
				al.newDims[0], al.threads, al.b)}
	}
	if al.threads != al.cm.MeshX*al.cm.MeshY {
		return nil, &ErrNotClosedForm{"threads do not match mesh (multi-threads-per-core layouts reuse core blocks)"}
	}

	// Step 1 (Figure 9(b)): apply U and the bounding-box shift to get the
	// transformed affine subscripts a' = U·r + shift.
	n := len(r.Subs)
	lins := make([]ir.LinExpr, n)
	for d := 0; d < n; d++ {
		e := ir.ConstExpr(al.shift[d])
		for k := 0; k < n; k++ {
			e = e.Plus(r.Subs[k].Scaled(al.u.At(d, k)))
		}
		lins[d] = e
	}

	// pos = rowRank(a'₀)·rowSize + Σ a'_d·stride_d.
	r0 := affine(lins[0])
	inRow := ir.ConstExpr(0)
	for d := 1; d < n; d++ {
		inRow = inRow.Plus(lins[d].Scaled(al.strides[d-1]))
	}

	// Owner thread and its position in the mesh/cluster grids.
	t := div(r0, al.b)
	mx := al.cm.MeshX
	tw, th := mx/al.cm.ClustersX, al.cm.MeshY/al.cm.ClustersY
	x := mod(t, int64(mx))
	y := div(t, int64(mx))

	var group *Expr // cluster ordinal (private) or home bank (shared)
	if al.homeOf != nil {
		homes := make([]int64, len(al.homeOf))
		for i, h := range al.homeOf {
			homes[i] = int64(h)
		}
		group = table(t, homes)
	} else {
		// ord = (x/tw) + cx·(y/th): the R(r_v) grid arithmetic of §5.3.
		group = add(div(x, int64(tw)), mulc(div(y, int64(th)), int64(al.cm.ClustersX)))
	}

	// Dense row rank within the group. Private L2: a cluster's rows are
	// its threads' blocks in thread-ID order (row-major within the tile),
	// so rank = (tw·(y%th) + x%tw)·b + r0%b. Shared L2: each home bank
	// holds exactly one thread's rows (the assignment is a permutation),
	// so rank = r0%b.
	var rank *Expr
	if al.homeOf != nil {
		rank = mod(r0, al.b)
	} else {
		local := add(mod(x, int64(tw)), mulc(mod(y, int64(th)), int64(tw)))
		rank = add(mulc(local, al.b), mod(r0, al.b))
	}
	pos := add(mulc(rank, al.rowSize), affine(inRow))

	maxQ := al.sizeBytes / al.elemSize / al.grain / int64(al.groups)
	return &CustomRef{
		Array:   r.Array,
		NewDims: []int64{maxQ, int64(al.groups), al.grain},
		Subs:    []*Expr{div(pos, al.grain), group, mod(pos, al.grain)},
	}, nil
}

// RewriteProgram renders the whole program with every optimized reference
// in its customized form — the Figure 9(c) output of the source-to-source
// translator. Unrewritable references are kept in their original form with
// an annotation.
func RewriteProgram(p *ir.Program, res *Result) string {
	out := fmt.Sprintf("// program %s, layouts customized for mapping %s\n", p.Name, res.Mapping.Name)
	for ni, nest := range p.Nests {
		out += fmt.Sprintf("// nest %d\n", ni)
		for _, s := range nest.Body {
			line := "  "
			for i, r := range s.Refs() {
				al := res.Layout(r.Array)
				var form string
				if cr, err := al.RewriteRef(r); err == nil {
					form = cr.String()
				} else {
					form = r.String()
				}
				switch {
				case i == 0 && s.Write != nil:
					line += form + " = "
				case i == 1 || (i == 0 && s.Write == nil):
					line += form
				default:
					line += " + " + form
				}
			}
			out += line + "\n"
		}
	}
	return out
}
