package layout

import (
	"strings"
	"testing"

	"offchip/internal/ir"
)

// rewriteEquiv checks the central rewrite property on every iteration of
// the program: the symbolic Figure 9(c) form must address exactly the byte
// the table-driven runtime remap addresses — the data transformation is a
// renaming, and its two representations must agree.
func rewriteEquiv(t *testing.T, m Machine, cm *ClusterMapping, src string) {
	t.Helper()
	p := ir.MustParse(src)
	res, err := Optimize(p, m, cm, nil)
	if err != nil {
		t.Fatal(err)
	}
	for ni, nest := range p.Nests {
		for si, s := range nest.Body {
			for ri, r := range s.Refs() {
				al := res.Layout(r.Array)
				cr, err := al.RewriteRef(r)
				if err != nil {
					t.Fatalf("nest %d stmt %d ref %d (%s): %v", ni, si, ri, r, err)
				}
				checked := 0
				nest.Iterate(func(env map[string]int64) bool {
					want := al.Offset(ir.EvalRef(r, env, nil))
					got := cr.Offset(env, r.Array.ElemSize)
					if got != want {
						t.Fatalf("ref %s at %v: rewrite %d != remap %d\nform: %s",
							r, env, got, want, cr)
					}
					checked++
					return checked < 5000 // bounded but dense coverage
				})
				if checked == 0 {
					t.Fatalf("ref %s never evaluated", r)
				}
			}
		}
	}
}

const evenRowSrc = `
program even
array A[128][128]
parfor i = 0 .. 128 {
  for j = 0 .. 128 {
    A[i][j] = A[i][j]
  }
}
`

const evenTransposedSrc = `
program event
array Z[32][2048]
parfor i = 1 .. 2047 {
  for j = 1 .. 31 {
    Z[j][i] = Z[j-1][i] + Z[j+1][i]
  }
}
`

func TestRewriteEquivalencePrivate(t *testing.T) {
	m := Default8x8()
	cm := mustM1(t, m)
	rewriteEquiv(t, m, cm, evenRowSrc)
	rewriteEquiv(t, m, cm, evenTransposedSrc)
}

func TestRewriteEquivalencePrivateM2(t *testing.T) {
	m := Default8x8()
	cm, err := MappingM2(m, PlacementCorners(8, 8))
	if err != nil {
		t.Fatal(err)
	}
	rewriteEquiv(t, m, cm, evenRowSrc)
}

func TestRewriteEquivalenceShared(t *testing.T) {
	m := Default8x8()
	m.L2 = SharedL2
	cm := mustM1(t, m)
	rewriteEquiv(t, m, cm, evenRowSrc)
	rewriteEquiv(t, m, cm, evenTransposedSrc)
}

func TestRewriteEquivalencePageInterleave(t *testing.T) {
	m := Default8x8()
	m.Interleave = PageInterleave
	cm := mustM1(t, m)
	rewriteEquiv(t, m, cm, evenRowSrc)
}

func TestRewriteUnevenPartitionPadded(t *testing.T) {
	// 100 rows over 64 threads: b = 2 with a padded tail (Section 5.3's
	// intra-array alignment); the closed form must still hold on every
	// real element.
	m := Default8x8()
	cm := mustM1(t, m)
	rewriteEquiv(t, m, cm, `
program uneven
array A[100][64]
parfor i = 0 .. 100 {
  for j = 0 .. 64 {
    A[i][j] = A[i][j]
  }
}
`)
}

func TestRewriteNotClosedForm(t *testing.T) {
	m := Default8x8()
	cm := mustM1(t, m)
	p := ir.MustParse(evenRowSrc)
	r := p.Nests[0].Body[0].Write
	// Identity layout: no closed form.
	id := IdentityLayout(r.Array, "test")
	if _, err := id.RewriteRef(r); err == nil {
		t.Error("identity layout rewrote")
	}
	// Two threads per core: thread blocks fold onto cores, which the
	// closed form does not model.
	res, err := Optimize(p, m, cm, &Options{Threads: 2 * m.Cores()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Layout(r.Array).RewriteRef(r); err == nil {
		t.Error("multi-threads-per-core layout claimed a closed form")
	}
	// Indexed references: no closed form either.
	pi := ir.MustParse(`
program pidx
array A[128]
array idx[128] elem 4
parfor i = 0 .. 128 {
  A[idx[i]] = A[i]
}
`)
	resI, err := Optimize(pi, m, cm, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := pi.Nests[0].Body[0].Write
	if _, err := resI.Layout(w.Array).RewriteRef(w); err == nil {
		t.Error("indexed reference rewrote")
	}
}

func TestRewriteRendering(t *testing.T) {
	m := Default8x8()
	cm := mustM1(t, m)
	p := ir.MustParse(evenTransposedSrc)
	res, err := Optimize(p, m, cm, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := p.Nests[0].Body[0].Write
	cr, err := res.Layout(r.Array).RewriteRef(r)
	if err != nil {
		t.Fatal(err)
	}
	form := cr.String()
	if !strings.Contains(form, "''[") || !strings.Contains(form, "/") || !strings.Contains(form, "%") {
		t.Errorf("rendered form lacks strip-mining: %s", form)
	}
	text := RewriteProgram(p, res)
	if !strings.Contains(text, "Z''") || !strings.Contains(text, "nest 0") {
		t.Errorf("program rendering:\n%s", text)
	}
}

func TestRewriteSharedUsesHomeTable(t *testing.T) {
	m := Default8x8()
	m.L2 = SharedL2
	cm := mustM1(t, m)
	p := ir.MustParse(evenRowSrc)
	res, err := Optimize(p, m, cm, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := p.Nests[0].Body[0].Write
	cr, err := res.Layout(r.Array).RewriteRef(r)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cr.String(), "H[") {
		t.Errorf("shared rewrite lacks home-bank table: %s", cr)
	}
}

func TestExprEvalOps(t *testing.T) {
	env := map[string]int64{"i": 7}
	e := add(mulc(div(affine(ir.VarExpr("i")), 2), 10), mod(affine(ir.VarExpr("i")), 4))
	// i=7: (7/2)*10 + 7%4 = 30 + 3 = 33.
	if got := e.Eval(env); got != 33 {
		t.Errorf("Eval = %d", got)
	}
	tab := table(affine(ir.VarExpr("i")), []int64{5, 6, 7})
	if got := tab.Eval(map[string]int64{"i": 99}); got != 7 {
		t.Errorf("table clamp = %d", got)
	}
	if got := tab.Eval(map[string]int64{"i": -1}); got != 5 {
		t.Errorf("table clamp low = %d", got)
	}
	if floorDiv(-7, 2) != -4 || floorMod(-7, 4) != 1 {
		t.Error("floor arithmetic")
	}
	if !strings.Contains(e.String(), "/2") {
		t.Errorf("String = %s", e)
	}
}
