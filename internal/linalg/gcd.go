package linalg

// GCD returns the non-negative greatest common divisor of a and b.
// GCD(0, 0) is 0.
func GCD(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// GCDAll returns the non-negative GCD of all entries (0 for an empty or
// all-zero input).
func GCDAll(xs ...int64) int64 {
	var g int64
	for _, x := range xs {
		g = GCD(g, x)
		if g == 1 {
			return 1
		}
	}
	return g
}

// ExtGCD returns (g, x, y) with g = gcd(a, b) >= 0 and a·x + b·y = g.
func ExtGCD(a, b int64) (g, x, y int64) {
	oldR, r := a, b
	oldX, xx := int64(1), int64(0)
	oldY, yy := int64(0), int64(1)
	for r != 0 {
		q := oldR / r
		oldR, r = r, oldR-q*r
		oldX, xx = xx, oldX-q*xx
		oldY, yy = yy, oldY-q*yy
	}
	if oldR < 0 {
		oldR, oldX, oldY = -oldR, -oldX, -oldY
	}
	return oldR, oldX, oldY
}

// LCM returns the non-negative least common multiple of a and b.
// LCM(0, x) is 0.
func LCM(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	l := a / GCD(a, b) * b
	if l < 0 {
		l = -l
	}
	return l
}

// FloorDiv returns ⌊a/b⌋ for b > 0 (division rounded toward negative
// infinity, unlike Go's truncated division).
func FloorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

// Mod returns the mathematical a mod b in [0, |b|) for b != 0.
func Mod(a, b int64) int64 {
	m := a % b
	if m < 0 {
		if b < 0 {
			m -= b
		} else {
			m += b
		}
	}
	return m
}
