package linalg

// ColumnEchelon reduces A to column echelon form using unimodular column
// operations. It returns H, C and Cinv with
//
//	H = A·C,   C·Cinv = I,   det(C) = ±1.
//
// H has its nonzero columns first; within them, each pivot (the first
// nonzero entry of a column, scanning rows top to bottom) is positive and
// lies strictly below the pivot of the previous column. Columns of C that
// correspond to zero columns of H form an integer basis of the nullspace
// of A.
func ColumnEchelon(a *Mat) (h, c, cinv *Mat) {
	h = a.Clone()
	n := h.Cols()
	c = Identity(n)
	cinv = Identity(n)

	swapCols := func(i, j int) {
		h.SwapCols(i, j)
		c.SwapCols(i, j)
		cinv.SwapRows(i, j)
	}
	negateCol := func(j int) {
		h.NegateCol(j)
		c.NegateCol(j)
		cinv.NegateRow(j)
	}
	addColMultiple := func(dst, src int, k int64) {
		if k == 0 {
			return
		}
		h.AddColMultiple(dst, src, k)
		c.AddColMultiple(dst, src, k)
		cinv.AddRowMultiple(src, dst, -k)
	}

	pivotCol := 0
	for row := 0; row < h.Rows() && pivotCol < n; row++ {
		// Zero out columns pivotCol+1..n-1 in this row against column
		// pivotCol via the Euclidean algorithm on column operations.
		for {
			// Find the column (>= pivotCol) with the smallest nonzero
			// absolute value in this row; move it to pivotCol.
			best := -1
			for j := pivotCol; j < n; j++ {
				v := h.At(row, j)
				if v == 0 {
					continue
				}
				if v < 0 {
					v = -v
				}
				if best == -1 || v < absInt64(h.At(row, best)) {
					best = j
				}
			}
			if best == -1 {
				// Row is entirely zero from pivotCol on: no pivot here.
				break
			}
			swapCols(pivotCol, best)
			if h.At(row, pivotCol) < 0 {
				negateCol(pivotCol)
			}
			p := h.At(row, pivotCol)
			done := true
			for j := pivotCol + 1; j < n; j++ {
				v := h.At(row, j)
				if v == 0 {
					continue
				}
				addColMultiple(j, pivotCol, -FloorDiv(v, p))
				if h.At(row, j) != 0 {
					done = false
				}
			}
			if done {
				break
			}
		}
		if pivotCol < n && h.At(row, pivotCol) != 0 {
			pivotCol++
		}
	}
	return h, c, cinv
}

// NullspaceBasis returns an integer basis of {x : A·x = 0} as the columns of
// the returned matrix (n×k for an n-column A of rank n−k). A zero-dimensional
// nullspace yields an n×0 matrix.
func NullspaceBasis(a *Mat) *Mat {
	h, c, _ := ColumnEchelon(a)
	n := a.Cols()
	// Count the trailing zero columns of H.
	rank := 0
	for j := 0; j < n; j++ {
		zero := true
		for i := 0; i < h.Rows(); i++ {
			if h.At(i, j) != 0 {
				zero = false
				break
			}
		}
		if !zero {
			rank++
		}
	}
	basis := NewMat(n, n-rank)
	for j := rank; j < n; j++ {
		for i := 0; i < n; i++ {
			basis.Set(i, j-rank, c.At(i, j))
		}
	}
	return basis
}

// SolveHomogeneous returns one primitive nontrivial integer solution of
// A·x = 0, or nil if only the trivial solution exists. This implements the
// "Integer Gaussian Elimination" step of Algorithm 1 in the paper, used to
// solve Bᵀ·gᵥᵀ = 0 for the data-partitioning row vector gᵥ.
func SolveHomogeneous(a *Mat) Vec {
	basis := NullspaceBasis(a)
	if basis.Cols() == 0 {
		return nil
	}
	return basis.Col(0).Primitive()
}

// HermiteNormalForm computes the row-style Hermite normal form of A. It
// returns H and a unimodular U with H = U·A. Pivots are positive, and the
// entries above each pivot are reduced into [0, pivot).
func HermiteNormalForm(a *Mat) (h, u *Mat) {
	// Row HNF of A is the transpose of the column echelon form of Aᵀ,
	// with an extra reduction pass above the pivots.
	ht, ct, _ := ColumnEchelon(a.Transpose())
	h = ht.Transpose()
	u = ct.Transpose()

	// Reduce entries above each pivot.
	for i := 0; i < h.Rows(); i++ {
		// Find the pivot column of row i.
		pc := -1
		for j := 0; j < h.Cols(); j++ {
			if h.At(i, j) != 0 {
				pc = j
				break
			}
		}
		if pc == -1 {
			continue
		}
		p := h.At(i, pc)
		for r := 0; r < i; r++ {
			v := h.At(r, pc)
			q := FloorDiv(v, p)
			if q != 0 {
				h.AddRowMultiple(r, i, -q)
				u.AddRowMultiple(r, i, -q)
			}
		}
	}
	return h, u
}

func absInt64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}
