// Package linalg provides exact integer linear algebra for the layout
// transformation pass: integer vectors and matrices, fraction-free Gaussian
// elimination, Hermite normal form, integer nullspace bases, and unimodular
// completion of a primitive row vector to a full unimodular matrix.
//
// All arithmetic is on int64. The matrices manipulated by the compiler pass
// are access matrices of affine loop nests — small (rarely above 6×6) with
// small entries — so int64 is ample; operations that could overflow in
// pathological inputs document that assumption rather than checking it.
package linalg

import (
	"fmt"
	"strings"
)

// Vec is an integer column vector.
type Vec []int64

// NewVec returns a vector holding the given entries.
func NewVec(entries ...int64) Vec {
	v := make(Vec, len(entries))
	copy(v, entries)
	return v
}

// Clone returns an independent copy of v.
func (v Vec) Clone() Vec {
	w := make(Vec, len(v))
	copy(w, v)
	return w
}

// IsZero reports whether every entry of v is zero.
func (v Vec) IsZero() bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

// Dot returns the inner product of v and w.
// It panics if the lengths differ.
func (v Vec) Dot(w Vec) int64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("linalg: dot of vectors with lengths %d and %d", len(v), len(w)))
	}
	var s int64
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Add returns v + w as a new vector.
func (v Vec) Add(w Vec) Vec {
	if len(v) != len(w) {
		panic(fmt.Sprintf("linalg: add of vectors with lengths %d and %d", len(v), len(w)))
	}
	out := make(Vec, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// Sub returns v - w as a new vector.
func (v Vec) Sub(w Vec) Vec {
	if len(v) != len(w) {
		panic(fmt.Sprintf("linalg: sub of vectors with lengths %d and %d", len(v), len(w)))
	}
	out := make(Vec, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// Scale returns k·v as a new vector.
func (v Vec) Scale(k int64) Vec {
	out := make(Vec, len(v))
	for i := range v {
		out[i] = k * v[i]
	}
	return out
}

// Equal reports whether v and w have the same length and entries.
func (v Vec) Equal(w Vec) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if v[i] != w[i] {
			return false
		}
	}
	return true
}

// Primitive returns v divided by the GCD of its entries, with sign normalized
// so that the first nonzero entry is positive. The zero vector is returned
// unchanged.
func (v Vec) Primitive() Vec {
	g := GCDAll(v...)
	if g == 0 {
		return v.Clone()
	}
	out := make(Vec, len(v))
	for i := range v {
		out[i] = v[i] / g
	}
	for _, x := range out {
		if x == 0 {
			continue
		}
		if x < 0 {
			for i := range out {
				out[i] = -out[i]
			}
		}
		break
	}
	return out
}

func (v Vec) String() string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("%d", x)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// UnitVec returns the length-n unit vector with a 1 in position i (0-based).
func UnitVec(n, i int) Vec {
	if i < 0 || i >= n {
		panic(fmt.Sprintf("linalg: unit vector index %d out of range [0,%d)", i, n))
	}
	v := make(Vec, n)
	v[i] = 1
	return v
}

// Mat is a dense integer matrix with row-major storage.
type Mat struct {
	rows, cols int
	a          []int64
}

// NewMat returns a zero matrix with the given shape.
func NewMat(rows, cols int) *Mat {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative matrix dimension %dx%d", rows, cols))
	}
	return &Mat{rows: rows, cols: cols, a: make([]int64, rows*cols)}
}

// MatFromRows builds a matrix from row slices. All rows must have equal
// length; an empty row set yields a 0×0 matrix.
func MatFromRows(rows ...[]int64) *Mat {
	if len(rows) == 0 {
		return NewMat(0, 0)
	}
	cols := len(rows[0])
	m := NewMat(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("linalg: ragged rows: row 0 has %d cols, row %d has %d", cols, i, len(r)))
		}
		copy(m.a[i*cols:(i+1)*cols], r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Mat {
	m := NewMat(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the number of rows.
func (m *Mat) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Mat) Cols() int { return m.cols }

// At returns the entry at row i, column j.
func (m *Mat) At(i, j int) int64 {
	m.check(i, j)
	return m.a[i*m.cols+j]
}

// Set assigns the entry at row i, column j.
func (m *Mat) Set(i, j int, v int64) {
	m.check(i, j)
	m.a[i*m.cols+j] = v
}

func (m *Mat) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("linalg: index (%d,%d) out of range for %dx%d matrix", i, j, m.rows, m.cols))
	}
}

// Clone returns an independent copy of m.
func (m *Mat) Clone() *Mat {
	c := NewMat(m.rows, m.cols)
	copy(c.a, m.a)
	return c
}

// Row returns a copy of row i as a vector.
func (m *Mat) Row(i int) Vec {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("linalg: row %d out of range for %dx%d matrix", i, m.rows, m.cols))
	}
	return NewVec(m.a[i*m.cols : (i+1)*m.cols]...)
}

// Col returns a copy of column j as a vector.
func (m *Mat) Col(j int) Vec {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("linalg: col %d out of range for %dx%d matrix", j, m.rows, m.cols))
	}
	v := make(Vec, m.rows)
	for i := 0; i < m.rows; i++ {
		v[i] = m.a[i*m.cols+j]
	}
	return v
}

// SetRow overwrites row i with v. It panics on length mismatch.
func (m *Mat) SetRow(i int, v Vec) {
	if len(v) != m.cols {
		panic(fmt.Sprintf("linalg: set row of length %d in %dx%d matrix", len(v), m.rows, m.cols))
	}
	copy(m.a[i*m.cols:(i+1)*m.cols], v)
}

// Transpose returns mᵀ as a new matrix.
func (m *Mat) Transpose() *Mat {
	t := NewMat(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns m·n. It panics if the inner dimensions disagree.
func (m *Mat) Mul(n *Mat) *Mat {
	if m.cols != n.rows {
		panic(fmt.Sprintf("linalg: mul of %dx%d by %dx%d", m.rows, m.cols, n.rows, n.cols))
	}
	out := NewMat(m.rows, n.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			mik := m.a[i*m.cols+k]
			if mik == 0 {
				continue
			}
			for j := 0; j < n.cols; j++ {
				out.a[i*out.cols+j] += mik * n.a[k*n.cols+j]
			}
		}
	}
	return out
}

// MulVec returns m·v. It panics if the dimensions disagree.
func (m *Mat) MulVec(v Vec) Vec {
	if m.cols != len(v) {
		panic(fmt.Sprintf("linalg: mulvec of %dx%d by length-%d vector", m.rows, m.cols, len(v)))
	}
	out := make(Vec, m.rows)
	for i := 0; i < m.rows; i++ {
		var s int64
		for j := 0; j < m.cols; j++ {
			s += m.a[i*m.cols+j] * v[j]
		}
		out[i] = s
	}
	return out
}

// Equal reports whether m and n have the same shape and entries.
func (m *Mat) Equal(n *Mat) bool {
	if m.rows != n.rows || m.cols != n.cols {
		return false
	}
	for i, x := range m.a {
		if x != n.a[i] {
			return false
		}
	}
	return true
}

// IsZero reports whether every entry is zero.
func (m *Mat) IsZero() bool {
	for _, x := range m.a {
		if x != 0 {
			return false
		}
	}
	return true
}

// DropCol returns a copy of m with column j removed. This builds the
// submatrix B of an access matrix A with the iteration-partition column
// removed (Section 5.2 of the paper).
func (m *Mat) DropCol(j int) *Mat {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("linalg: drop col %d of %dx%d matrix", j, m.rows, m.cols))
	}
	out := NewMat(m.rows, m.cols-1)
	for i := 0; i < m.rows; i++ {
		jj := 0
		for c := 0; c < m.cols; c++ {
			if c == j {
				continue
			}
			out.Set(i, jj, m.At(i, c))
			jj++
		}
	}
	return out
}

// SwapRows exchanges rows i and j in place.
func (m *Mat) SwapRows(i, j int) {
	if i == j {
		return
	}
	for c := 0; c < m.cols; c++ {
		m.a[i*m.cols+c], m.a[j*m.cols+c] = m.a[j*m.cols+c], m.a[i*m.cols+c]
	}
}

// SwapCols exchanges columns i and j in place.
func (m *Mat) SwapCols(i, j int) {
	if i == j {
		return
	}
	for r := 0; r < m.rows; r++ {
		m.a[r*m.cols+i], m.a[r*m.cols+j] = m.a[r*m.cols+j], m.a[r*m.cols+i]
	}
}

// AddColMultiple adds k times column src to column dst in place.
func (m *Mat) AddColMultiple(dst, src int, k int64) {
	for r := 0; r < m.rows; r++ {
		m.a[r*m.cols+dst] += k * m.a[r*m.cols+src]
	}
}

// AddRowMultiple adds k times row src to row dst in place.
func (m *Mat) AddRowMultiple(dst, src int, k int64) {
	for c := 0; c < m.cols; c++ {
		m.a[dst*m.cols+c] += k * m.a[src*m.cols+c]
	}
}

// NegateCol negates column j in place.
func (m *Mat) NegateCol(j int) {
	for r := 0; r < m.rows; r++ {
		m.a[r*m.cols+j] = -m.a[r*m.cols+j]
	}
}

// NegateRow negates row i in place.
func (m *Mat) NegateRow(i int) {
	for c := 0; c < m.cols; c++ {
		m.a[i*m.cols+c] = -m.a[i*m.cols+c]
	}
}

func (m *Mat) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		b.WriteByte('[')
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d", m.At(i, j))
		}
		b.WriteByte(']')
		if i != m.rows-1 {
			b.WriteByte('\n')
		}
	}
	return b.String()
}
