package linalg

import (
	"testing"
)

func TestVecBasics(t *testing.T) {
	v := NewVec(1, -2, 3)
	w := NewVec(4, 5, -6)
	if got := v.Dot(w); got != 4-10-18 {
		t.Errorf("Dot = %d, want %d", got, 4-10-18)
	}
	if got := v.Add(w); !got.Equal(NewVec(5, 3, -3)) {
		t.Errorf("Add = %v", got)
	}
	if got := v.Sub(w); !got.Equal(NewVec(-3, -7, 9)) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Scale(-2); !got.Equal(NewVec(-2, 4, -6)) {
		t.Errorf("Scale = %v", got)
	}
	if NewVec(0, 0).IsZero() != true {
		t.Error("IsZero(0,0) = false")
	}
	if v.IsZero() {
		t.Error("IsZero(v) = true")
	}
}

func TestVecPrimitive(t *testing.T) {
	cases := []struct{ in, want Vec }{
		{NewVec(2, 4, 6), NewVec(1, 2, 3)},
		{NewVec(-2, 4), NewVec(1, -2)},
		{NewVec(0, 0, -5), NewVec(0, 0, 1)},
		{NewVec(0, 0), NewVec(0, 0)},
		{NewVec(7), NewVec(1)},
	}
	for _, c := range cases {
		if got := c.in.Primitive(); !got.Equal(c.want) {
			t.Errorf("Primitive(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestUnitVec(t *testing.T) {
	if got := UnitVec(3, 1); !got.Equal(NewVec(0, 1, 0)) {
		t.Errorf("UnitVec(3,1) = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("UnitVec out of range did not panic")
		}
	}()
	UnitVec(2, 5)
}

func TestGCD(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{12, 18, 6}, {-12, 18, 6}, {12, -18, 6}, {-12, -18, 6},
		{0, 5, 5}, {5, 0, 5}, {0, 0, 0}, {1, 1, 1}, {17, 13, 1},
	}
	for _, c := range cases {
		if got := GCD(c.a, c.b); got != c.want {
			t.Errorf("GCD(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	if got := GCDAll(4, 6, 10); got != 2 {
		t.Errorf("GCDAll = %d, want 2", got)
	}
	if got := GCDAll(); got != 0 {
		t.Errorf("GCDAll() = %d, want 0", got)
	}
}

func TestExtGCD(t *testing.T) {
	cases := [][2]int64{{12, 18}, {-5, 3}, {7, 0}, {0, -9}, {1, 1}, {240, 46}}
	for _, c := range cases {
		g, x, y := ExtGCD(c[0], c[1])
		if g != GCD(c[0], c[1]) {
			t.Errorf("ExtGCD(%d,%d): g = %d, want %d", c[0], c[1], g, GCD(c[0], c[1]))
		}
		if c[0]*x+c[1]*y != g {
			t.Errorf("ExtGCD(%d,%d): %d·%d + %d·%d != %d", c[0], c[1], c[0], x, c[1], y, g)
		}
	}
}

func TestLCMFloorDivMod(t *testing.T) {
	if got := LCM(4, 6); got != 12 {
		t.Errorf("LCM(4,6) = %d", got)
	}
	if got := LCM(0, 5); got != 0 {
		t.Errorf("LCM(0,5) = %d", got)
	}
	if got := LCM(-4, 6); got != 12 {
		t.Errorf("LCM(-4,6) = %d", got)
	}
	if got := FloorDiv(-7, 2); got != -4 {
		t.Errorf("FloorDiv(-7,2) = %d, want -4", got)
	}
	if got := FloorDiv(7, 2); got != 3 {
		t.Errorf("FloorDiv(7,2) = %d, want 3", got)
	}
	if got := Mod(-7, 3); got != 2 {
		t.Errorf("Mod(-7,3) = %d, want 2", got)
	}
	if got := Mod(7, 3); got != 1 {
		t.Errorf("Mod(7,3) = %d, want 1", got)
	}
}

func TestMatBasics(t *testing.T) {
	m := MatFromRows(
		[]int64{1, 2},
		[]int64{3, 4},
	)
	if m.Rows() != 2 || m.Cols() != 2 {
		t.Fatalf("shape = %dx%d", m.Rows(), m.Cols())
	}
	if m.At(1, 0) != 3 {
		t.Errorf("At(1,0) = %d", m.At(1, 0))
	}
	n := m.Clone()
	n.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Error("Clone aliases the original")
	}
	if !m.Row(1).Equal(NewVec(3, 4)) {
		t.Errorf("Row(1) = %v", m.Row(1))
	}
	if !m.Col(1).Equal(NewVec(2, 4)) {
		t.Errorf("Col(1) = %v", m.Col(1))
	}
	if tr := m.Transpose(); !tr.Equal(MatFromRows([]int64{1, 3}, []int64{2, 4})) {
		t.Errorf("Transpose = \n%v", tr)
	}
}

func TestMatMul(t *testing.T) {
	a := MatFromRows([]int64{1, 2}, []int64{3, 4})
	b := MatFromRows([]int64{5, 6}, []int64{7, 8})
	want := MatFromRows([]int64{19, 22}, []int64{43, 50})
	if got := a.Mul(b); !got.Equal(want) {
		t.Errorf("Mul = \n%v\nwant\n%v", got, want)
	}
	if got := a.MulVec(NewVec(1, -1)); !got.Equal(NewVec(-1, -1)) {
		t.Errorf("MulVec = %v", got)
	}
	id := Identity(2)
	if got := a.Mul(id); !got.Equal(a) {
		t.Error("A·I != A")
	}
}

func TestDropCol(t *testing.T) {
	a := MatFromRows([]int64{1, 2, 3}, []int64{4, 5, 6})
	if got := a.DropCol(1); !got.Equal(MatFromRows([]int64{1, 3}, []int64{4, 6})) {
		t.Errorf("DropCol(1) = \n%v", got)
	}
	if got := a.DropCol(0); !got.Equal(MatFromRows([]int64{2, 3}, []int64{5, 6})) {
		t.Errorf("DropCol(0) = \n%v", got)
	}
}

func TestDet(t *testing.T) {
	cases := []struct {
		m    *Mat
		want int64
	}{
		{Identity(3), 1},
		{MatFromRows([]int64{0, 1}, []int64{1, 0}), -1},
		{MatFromRows([]int64{2, 0}, []int64{0, 3}), 6},
		{MatFromRows([]int64{1, 2}, []int64{2, 4}), 0},
		{MatFromRows(
			[]int64{2, -3, 1},
			[]int64{2, 0, -1},
			[]int64{1, 4, 5},
		), 49},
		{NewMat(0, 0), 1},
	}
	for _, c := range cases {
		if got := Det(c.m); got != c.want {
			t.Errorf("Det(\n%v\n) = %d, want %d", c.m, got, c.want)
		}
	}
}

func TestNullspace(t *testing.T) {
	// x + y + z = 0 has a 2-dimensional nullspace.
	a := MatFromRows([]int64{1, 1, 1})
	basis := NullspaceBasis(a)
	if basis.Cols() != 2 {
		t.Fatalf("nullspace dim = %d, want 2", basis.Cols())
	}
	for j := 0; j < basis.Cols(); j++ {
		if !a.MulVec(basis.Col(j)).IsZero() {
			t.Errorf("A·b%d = %v != 0", j, a.MulVec(basis.Col(j)))
		}
	}
	// Full-rank square matrix: trivial nullspace.
	b := MatFromRows([]int64{1, 2}, []int64{3, 5})
	if NullspaceBasis(b).Cols() != 0 {
		t.Error("full-rank matrix has nontrivial nullspace basis")
	}
	if SolveHomogeneous(b) != nil {
		t.Error("SolveHomogeneous(full-rank) != nil")
	}
}

func TestSolveHomogeneousPaperExample(t *testing.T) {
	// Paper Section 5.2: reference Z[j][i] in a loop over (i, j) with the
	// i-loop (u = 0) parallelized. Access matrix A maps (i,j) to (j,i):
	//   A = [0 1; 1 0].  B = A without column u=0 = [1; 0].  Solve Bᵀg = 0.
	bt := MatFromRows([]int64{1, 0}) // Bᵀ, 1×2
	g := SolveHomogeneous(bt)
	if g == nil {
		t.Fatal("no solution for paper example")
	}
	if !g.Equal(NewVec(0, 1)) {
		t.Errorf("g = %v, want (0, 1)", g)
	}
}

func TestHermiteNormalForm(t *testing.T) {
	a := MatFromRows(
		[]int64{2, 4, 4},
		[]int64{-6, 6, 12},
		[]int64{10, 4, 16},
	)
	h, u := HermiteNormalForm(a)
	if !IsUnimodular(u) {
		t.Fatalf("U is not unimodular:\n%v", u)
	}
	if !u.Mul(a).Equal(h) {
		t.Fatalf("U·A != H:\nU·A=\n%v\nH=\n%v", u.Mul(a), h)
	}
	// H must be upper triangular with positive pivots for this full-rank A.
	for i := 0; i < h.Rows(); i++ {
		for j := 0; j < i; j++ {
			if h.At(i, j) != 0 {
				t.Errorf("H(%d,%d) = %d below diagonal", i, j, h.At(i, j))
			}
		}
	}
}

func TestColumnEchelonInvariants(t *testing.T) {
	a := MatFromRows(
		[]int64{1, 2, 3, 4},
		[]int64{2, 4, 6, 8},
		[]int64{0, 1, 1, 0},
	)
	h, c, cinv := ColumnEchelon(a)
	if !a.Mul(c).Equal(h) {
		t.Errorf("A·C != H")
	}
	if !c.Mul(cinv).Equal(Identity(4)) {
		t.Errorf("C·C⁻¹ != I:\n%v", c.Mul(cinv))
	}
	if !IsUnimodular(c) {
		t.Errorf("C not unimodular")
	}
}

func TestUnimodularCompletion(t *testing.T) {
	cases := []struct {
		g Vec
		v int
	}{
		{NewVec(1, 0), 1},
		{NewVec(0, 1), 0},
		{NewVec(2, 3), 0},
		{NewVec(3, 5, 7), 1},
		{NewVec(1, 1, 1, 1), 3},
		{NewVec(6, 10, 15), 2},
	}
	for _, c := range cases {
		u, err := UnimodularCompletion(c.g, c.v)
		if err != nil {
			t.Errorf("UnimodularCompletion(%v, %d): %v", c.g, c.v, err)
			continue
		}
		if !IsUnimodular(u) {
			t.Errorf("completion of %v not unimodular:\n%v", c.g, u)
		}
		if !u.Row(c.v).Equal(c.g) {
			t.Errorf("row %d of completion = %v, want %v", c.v, u.Row(c.v), c.g)
		}
	}
}

func TestUnimodularCompletionErrors(t *testing.T) {
	if _, err := UnimodularCompletion(NewVec(2, 4), 0); err == nil {
		t.Error("non-primitive vector accepted")
	}
	if _, err := UnimodularCompletion(NewVec(), 0); err == nil {
		t.Error("empty vector accepted")
	}
	if _, err := UnimodularCompletion(NewVec(1, 0), 5); err == nil {
		t.Error("out-of-range row accepted")
	}
	if _, err := UnimodularCompletion(NewVec(0, 0), 0); err == nil {
		t.Error("zero vector accepted")
	}
}

func TestInverseUnimodular(t *testing.T) {
	ms := []*Mat{
		Identity(3),
		MatFromRows([]int64{0, 1}, []int64{1, 0}),
		MatFromRows([]int64{1, 2}, []int64{0, 1}),
		MatFromRows(
			[]int64{1, 2, 3},
			[]int64{0, 1, 4},
			[]int64{0, 0, 1},
		),
		MatFromRows(
			[]int64{2, 3},
			[]int64{1, 2},
		),
	}
	for _, m := range ms {
		inv := InverseUnimodular(m)
		if !m.Mul(inv).Equal(Identity(m.Rows())) {
			t.Errorf("M·M⁻¹ != I for\n%v\ngot\n%v", m, m.Mul(inv))
		}
		if !inv.Mul(m).Equal(Identity(m.Rows())) {
			t.Errorf("M⁻¹·M != I for\n%v", m)
		}
	}
}

func TestMatPanics(t *testing.T) {
	a := MatFromRows([]int64{1, 2})
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("At out of range", func() { a.At(5, 0) })
	mustPanic("ragged rows", func() { MatFromRows([]int64{1}, []int64{1, 2}) })
	mustPanic("mul shape", func() { a.Mul(a) })
	mustPanic("mulvec shape", func() { a.MulVec(NewVec(1)) })
	mustPanic("det non-square", func() { Det(a) })
	mustPanic("dot length", func() { NewVec(1).Dot(NewVec(1, 2)) })
}
