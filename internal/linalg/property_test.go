package linalg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// smallMat draws a random matrix with entries in [-5, 5] and dimensions in
// [1, 5]. Small entries keep intermediate values far from overflow while
// still exercising every code path (zeros, negatives, rank deficiency).
func smallMat(r *rand.Rand) *Mat {
	rows := 1 + r.Intn(5)
	cols := 1 + r.Intn(5)
	m := NewMat(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, int64(r.Intn(11)-5))
		}
	}
	return m
}

func quickCfg() *quick.Config {
	return &quick.Config{MaxCount: 300}
}

func TestPropColumnEchelon(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := smallMat(r)
		h, c, cinv := ColumnEchelon(a)
		if !a.Mul(c).Equal(h) {
			t.Logf("A·C != H for A=\n%v", a)
			return false
		}
		if !c.Mul(cinv).Equal(Identity(a.Cols())) {
			t.Logf("C·C⁻¹ != I for A=\n%v", a)
			return false
		}
		if !IsUnimodular(c) {
			t.Logf("C not unimodular for A=\n%v", a)
			return false
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestPropNullspace(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := smallMat(r)
		basis := NullspaceBasis(a)
		for j := 0; j < basis.Cols(); j++ {
			v := basis.Col(j)
			if v.IsZero() {
				t.Logf("zero basis vector for A=\n%v", a)
				return false
			}
			if !a.MulVec(v).IsZero() {
				t.Logf("A·b != 0 for A=\n%v b=%v", a, v)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestPropSolveHomogeneousIsPrimitive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := smallMat(r)
		g := SolveHomogeneous(a)
		if g == nil {
			return true
		}
		if !a.MulVec(g).IsZero() {
			return false
		}
		return GCDAll(g...) == 1
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestPropHNF(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := smallMat(r)
		h, u := HermiteNormalForm(a)
		if !IsUnimodular(u) {
			t.Logf("U not unimodular for A=\n%v", a)
			return false
		}
		if !u.Mul(a).Equal(h) {
			t.Logf("U·A != H for A=\n%v", a)
			return false
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestPropUnimodularCompletion(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(5)
		g := make(Vec, n)
		for i := range g {
			g[i] = int64(r.Intn(13) - 6)
		}
		if g.IsZero() {
			g[r.Intn(n)] = 1
		}
		g = g.Primitive()
		v := r.Intn(n)
		u, err := UnimodularCompletion(g, v)
		if err != nil {
			t.Logf("completion of %v failed: %v", g, err)
			return false
		}
		return IsUnimodular(u) && u.Row(v).Equal(g)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestPropInverseUnimodular(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// Build a random unimodular matrix as a product of elementary ops.
		n := 1 + r.Intn(4)
		m := Identity(n)
		for k := 0; k < 8; k++ {
			i, j := r.Intn(n), r.Intn(n)
			if i == j {
				continue
			}
			switch r.Intn(3) {
			case 0:
				m.AddRowMultiple(i, j, int64(r.Intn(5)-2))
			case 1:
				m.SwapRows(i, j)
			case 2:
				m.NegateRow(i)
			}
		}
		inv := InverseUnimodular(m)
		return m.Mul(inv).Equal(Identity(n)) && inv.Mul(m).Equal(Identity(n))
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestPropExtGCD(t *testing.T) {
	f := func(a, b int32) bool {
		g, x, y := ExtGCD(int64(a), int64(b))
		return g == GCD(int64(a), int64(b)) && int64(a)*x+int64(b)*y == g
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestPropFloorDivMod(t *testing.T) {
	f := func(a int32, b int32) bool {
		if b == 0 {
			return true
		}
		bb := int64(b)
		if bb < 0 {
			bb = -bb
		}
		q, m := FloorDiv(int64(a), bb), Mod(int64(a), bb)
		return q*bb+m == int64(a) && m >= 0 && m < bb
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}
