package linalg

import "fmt"

// Det returns the determinant of a square matrix using the Bareiss
// fraction-free elimination algorithm (exact over the integers).
func Det(m *Mat) int64 {
	if m.Rows() != m.Cols() {
		panic(fmt.Sprintf("linalg: determinant of non-square %dx%d matrix", m.Rows(), m.Cols()))
	}
	n := m.Rows()
	if n == 0 {
		return 1
	}
	a := m.Clone()
	sign := int64(1)
	prev := int64(1)
	for k := 0; k < n-1; k++ {
		if a.At(k, k) == 0 {
			// Find a row below with a nonzero pivot.
			swapped := false
			for i := k + 1; i < n; i++ {
				if a.At(i, k) != 0 {
					a.SwapRows(i, k)
					sign = -sign
					swapped = true
					break
				}
			}
			if !swapped {
				return 0
			}
		}
		for i := k + 1; i < n; i++ {
			for j := k + 1; j < n; j++ {
				num := a.At(i, j)*a.At(k, k) - a.At(i, k)*a.At(k, j)
				a.Set(i, j, num/prev)
			}
			a.Set(i, k, 0)
		}
		prev = a.At(k, k)
	}
	return sign * a.At(n-1, n-1)
}

// IsUnimodular reports whether m is square with determinant ±1.
func IsUnimodular(m *Mat) bool {
	if m.Rows() != m.Cols() {
		return false
	}
	d := Det(m)
	return d == 1 || d == -1
}

// UnimodularCompletion extends a primitive row vector g to a full n×n
// unimodular matrix U whose v-th row (0-based) is g. This realizes the
// Unimodular_Layout_Transformation step of Algorithm 1: the transformation
// matrix U is completely determined by its data-partitioning row gᵥ, and the
// remaining rows are chosen so that det(U) = ±1.
//
// It returns an error if g is not primitive (the GCD of its entries must
// be 1) or if v is out of range.
func UnimodularCompletion(g Vec, v int) (*Mat, error) {
	n := len(g)
	if n == 0 {
		return nil, fmt.Errorf("linalg: cannot complete empty vector")
	}
	if v < 0 || v >= n {
		return nil, fmt.Errorf("linalg: completion row %d out of range [0,%d)", v, n)
	}
	if GCDAll(g...) != 1 {
		return nil, fmt.Errorf("linalg: vector %v is not primitive (gcd %d)", g, GCDAll(g...))
	}

	// Column-reduce the 1×n matrix [g] to (1, 0, …, 0) while tracking the
	// inverse of the accumulated column transformation. With g·C = e₀ᵀ we
	// get e₀ᵀ·C⁻¹ = g, i.e. the first row of C⁻¹ is exactly g, and C⁻¹ is
	// unimodular by construction.
	row := MatFromRows(append([]int64(nil), g...))
	h, _, cinv := ColumnEchelon(row)
	if h.At(0, 0) != 1 {
		// Cannot happen for a primitive vector; defensive check.
		return nil, fmt.Errorf("linalg: completion failed, reduced pivot %d", h.At(0, 0))
	}

	// Rotate rows so that row 0 (= g) lands at row v, preserving |det| = 1.
	u := NewMat(n, n)
	for i := 0; i < n; i++ {
		u.SetRow((i+v)%n, cinv.Row(i))
	}
	if !IsUnimodular(u) {
		return nil, fmt.Errorf("linalg: internal error: completion is not unimodular:\n%v", u)
	}
	return u, nil
}

// InverseUnimodular returns the exact integer inverse of a unimodular
// matrix. It panics if m is not unimodular.
func InverseUnimodular(m *Mat) *Mat {
	if !IsUnimodular(m) {
		panic("linalg: inverse of non-unimodular matrix")
	}
	// Column-reduce m to echelon form: m·C = H with H lower triangular and
	// unimodular. Then continue with column operations to reach the
	// identity, so that m·C' = I and C' = m⁻¹.
	h, c, _ := ColumnEchelon(m)
	n := m.Rows()
	// H is in column echelon form with ±1 pivots on the diagonal (since m
	// is unimodular, rank is n and each pivot divides det = ±1).
	for j := 0; j < n; j++ {
		if h.At(j, j) < 0 {
			h.NegateCol(j)
			c.NegateCol(j)
		}
	}
	// Eliminate below-diagonal entries column by column, right to left.
	for j := n - 1; j >= 0; j-- {
		for i := j + 1; i < n; i++ {
			k := h.At(i, j)
			if k != 0 {
				// Subtract k times column i (which has a single 1 in row i
				// among rows >= i after prior steps) from column j.
				h.AddColMultiple(j, i, -k)
				c.AddColMultiple(j, i, -k)
			}
		}
	}
	return c
}
