// Package looptrans provides the loop restructurings the paper's node
// compiler applies before the layout pass (Section 6.1: "enabling basically
// all major loop restructurings … such as loop permutation and iteration
// space tiling"): dependence-checked loop interchange and strip-mining of a
// loop into a block/offset pair. Transformations return new nests; the
// originals are never mutated, and every transform preserves the iteration
// set (property-tested).
package looptrans

import (
	"fmt"

	"offchip/internal/deps"
	"offchip/internal/ir"
)

// Interchange returns the nest with its loops reordered by perm
// (perm[k] = index of the original loop now at depth k). It fails if the
// permutation breaks a loop-bound dependence (a bound referencing a
// variable that would move inside it) or a data dependence.
func Interchange(nest *ir.LoopNest, perm []int) (*ir.LoopNest, error) {
	m := nest.Depth()
	if len(perm) != m {
		return nil, fmt.Errorf("looptrans: permutation of length %d for depth %d", len(perm), m)
	}
	seen := make([]bool, m)
	for _, p := range perm {
		if p < 0 || p >= m || seen[p] {
			return nil, fmt.Errorf("looptrans: invalid permutation %v", perm)
		}
		seen[p] = true
	}
	// Bound legality: each loop's bounds may only reference variables of
	// loops placed before it in the new order.
	pos := make([]int, m)
	for k, p := range perm {
		pos[p] = k
	}
	for li, l := range nest.Loops {
		for v := range l.Lower.Coeffs {
			if err := boundOK(nest, pos, li, v); err != nil {
				return nil, err
			}
		}
		for v := range l.Upper.Coeffs {
			if err := boundOK(nest, pos, li, v); err != nil {
				return nil, err
			}
		}
	}
	// Data-dependence legality.
	if !deps.PermutationLegal(deps.NestDeps(nest), perm) {
		return nil, fmt.Errorf("looptrans: permutation %v violates a data dependence", perm)
	}
	out := &ir.LoopNest{Body: nest.Body}
	for _, p := range perm {
		out.Loops = append(out.Loops, nest.Loops[p])
		if p == nest.ParDepth {
			out.ParDepth = len(out.Loops) - 1
		}
	}
	return out, nil
}

func boundOK(nest *ir.LoopNest, pos []int, li int, v string) error {
	for lj, other := range nest.Loops {
		if other.Var == v {
			if pos[lj] >= pos[li] {
				return fmt.Errorf("looptrans: bound of %s references %s, which would no longer enclose it",
					nest.Loops[li].Var, v)
			}
			return nil
		}
	}
	return nil // loop-independent symbol
}

// MakeInnermost returns the nest with loop li moved to the innermost
// position (the permutation loopOrder-style cache optimization uses).
func MakeInnermost(nest *ir.LoopNest, li int) (*ir.LoopNest, error) {
	m := nest.Depth()
	if li < 0 || li >= m {
		return nil, fmt.Errorf("looptrans: loop %d of %d", li, m)
	}
	perm := make([]int, 0, m)
	for k := 0; k < m; k++ {
		if k != li {
			perm = append(perm, k)
		}
	}
	return Interchange(nest, append(perm, li))
}

// StripMine splits loop li into a block loop and an offset loop of the
// given size: for v = L..U becomes
//
//	for vB = 0 .. (U−L)/size { for v = L+size·vB .. L+size·(vB+1) { … } }
//
// Size must evenly divide the (constant) trip count — the representation
// has no min() in bounds, and the paper's padding establishes divisibility
// anyway. Subscripts are untouched (the original variable survives as the
// inner loop), so the iteration set and the reference meanings are
// preserved exactly. Strip-mining is always legal.
func StripMine(nest *ir.LoopNest, li int, size int64) (*ir.LoopNest, error) {
	m := nest.Depth()
	if li < 0 || li >= m {
		return nil, fmt.Errorf("looptrans: loop %d of %d", li, m)
	}
	if size <= 0 {
		return nil, fmt.Errorf("looptrans: strip size %d", size)
	}
	l := nest.Loops[li]
	if !l.Lower.IsConst() || !l.Upper.IsConst() {
		return nil, fmt.Errorf("looptrans: strip-mining needs constant bounds on %s", l.Var)
	}
	trip := l.Upper.Const - l.Lower.Const
	if trip < 0 {
		trip = 0
	}
	if trip%size != 0 {
		return nil, fmt.Errorf("looptrans: size %d does not divide trip count %d of %s (pad first)",
			size, trip, l.Var)
	}
	blockVar := l.Var + "_b"
	for _, other := range nest.Loops {
		if other.Var == blockVar {
			return nil, fmt.Errorf("looptrans: variable %s already exists", blockVar)
		}
	}
	out := &ir.LoopNest{Body: nest.Body, ParDepth: nest.ParDepth}
	for k := 0; k < m; k++ {
		if k == li {
			out.Loops = append(out.Loops,
				ir.Loop{
					Var:   blockVar,
					Lower: ir.ConstExpr(0),
					Upper: ir.ConstExpr(trip / size),
				},
				ir.Loop{
					Var:   l.Var,
					Lower: ir.Term(size, blockVar, l.Lower.Const),
					Upper: ir.Term(size, blockVar, l.Lower.Const+size),
				})
			continue
		}
		out.Loops = append(out.Loops, nest.Loops[k])
	}
	if nest.ParDepth > li {
		out.ParDepth = nest.ParDepth + 1
	}
	if nest.ParDepth == li {
		// Parallelism moves to the block loop: contiguous chunks of blocks,
		// which is exactly OpenMP-static over the strip-mined loop.
		out.ParDepth = li
	}
	return out, nil
}

// Tile strip-mines two adjacent loops and interchanges the offset loop of
// the first with the block loop of the second, producing the classic
// 2-D tiling (legal when the plain interchange of the two loops is legal).
func Tile(nest *ir.LoopNest, li int, size1, size2 int64) (*ir.LoopNest, error) {
	m := nest.Depth()
	if li < 0 || li+1 >= m {
		return nil, fmt.Errorf("looptrans: tiling needs loops %d,%d within depth %d", li, li+1, m)
	}
	// Tiling is legal iff interchanging the two loops is legal.
	perm := make([]int, m)
	for k := range perm {
		perm[k] = k
	}
	perm[li], perm[li+1] = perm[li+1], perm[li]
	if !deps.PermutationLegal(deps.NestDeps(nest), perm) {
		return nil, fmt.Errorf("looptrans: tiling loops %d,%d violates a data dependence", li, li+1)
	}
	s1, err := StripMine(nest, li, size1)
	if err != nil {
		return nil, err
	}
	// After the first strip-mine the second loop sits at li+2.
	s2, err := StripMine(s1, li+2, size2)
	if err != nil {
		return nil, err
	}
	// Order is now [.., i_b, i, j_b, j, ..]; swap i and j_b.
	swap := make([]int, s2.Depth())
	for k := range swap {
		swap[k] = k
	}
	swap[li+1], swap[li+2] = swap[li+2], swap[li+1]
	return Interchange(s2, swap)
}
