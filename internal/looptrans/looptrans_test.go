package looptrans

import (
	"fmt"
	"sort"
	"testing"

	"offchip/internal/ir"
)

func nestOf(t *testing.T, src string) *ir.LoopNest {
	t.Helper()
	return ir.MustParse(src).Nests[0]
}

// iterSet enumerates the nest's iterations projected onto the given
// variables, as a sorted multiset fingerprint.
func iterSet(n *ir.LoopNest, vars []string) []string {
	var out []string
	n.Iterate(func(env map[string]int64) bool {
		s := ""
		for _, v := range vars {
			s += fmt.Sprintf("%d,", env[v])
		}
		out = append(out, s)
		return true
	})
	sort.Strings(out)
	return out
}

func sameIterations(t *testing.T, a, b *ir.LoopNest, vars []string) {
	t.Helper()
	sa, sb := iterSet(a, vars), iterSet(b, vars)
	if len(sa) != len(sb) {
		t.Fatalf("iteration counts differ: %d vs %d", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("iteration sets differ at %d: %s vs %s", i, sa[i], sb[i])
		}
	}
}

const rectSrc = `
program p
array A[64][64]
parfor i = 2 .. 34 {
  for j = 1 .. 17 {
    A[i][j] = A[i][j]
  }
}
`

func TestInterchangePreservesIterations(t *testing.T) {
	n := nestOf(t, rectSrc)
	sw, err := Interchange(n, []int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	sameIterations(t, n, sw, []string{"i", "j"})
	if sw.Loops[0].Var != "j" || sw.Loops[1].Var != "i" {
		t.Errorf("order = %s, %s", sw.Loops[0].Var, sw.Loops[1].Var)
	}
	// The parallel loop follows its loop.
	if sw.ParDepth != 1 {
		t.Errorf("ParDepth = %d, want 1 (i moved inward)", sw.ParDepth)
	}
	// Original untouched.
	if n.Loops[0].Var != "i" || n.ParDepth != 0 {
		t.Error("original nest mutated")
	}
}

func TestInterchangeRejectsBoundDependence(t *testing.T) {
	n := nestOf(t, `
program p
array A[64][64]
parfor i = 0 .. 32 {
  for j = i .. 32 {
    A[i][j] = A[i][j]
  }
}
`)
	if _, err := Interchange(n, []int{1, 0}); err == nil {
		t.Fatal("triangular interchange accepted")
	}
}

func TestInterchangeRejectsDataDependence(t *testing.T) {
	// A[i][j] = A[i-1][j+1]: direction (<,>) — interchange illegal.
	n := nestOf(t, `
program p
array A[64][64]
parfor i = 1 .. 32 {
  for j = 0 .. 31 {
    A[i][j] = A[i-1][j+1]
  }
}
`)
	if _, err := Interchange(n, []int{1, 0}); err == nil {
		t.Fatal("dependence-violating interchange accepted")
	}
	// Identity stays fine.
	if _, err := Interchange(n, []int{0, 1}); err != nil {
		t.Fatalf("identity rejected: %v", err)
	}
}

func TestInterchangeValidation(t *testing.T) {
	n := nestOf(t, rectSrc)
	if _, err := Interchange(n, []int{0}); err == nil {
		t.Error("short permutation accepted")
	}
	if _, err := Interchange(n, []int{0, 0}); err == nil {
		t.Error("duplicate permutation accepted")
	}
	if _, err := Interchange(n, []int{0, 5}); err == nil {
		t.Error("out-of-range permutation accepted")
	}
}

func TestMakeInnermost(t *testing.T) {
	n := nestOf(t, rectSrc)
	out, err := MakeInnermost(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.Loops[out.Depth()-1].Var != "i" {
		t.Errorf("innermost = %s", out.Loops[out.Depth()-1].Var)
	}
	sameIterations(t, n, out, []string{"i", "j"})
}

func TestStripMinePreservesIterations(t *testing.T) {
	n := nestOf(t, rectSrc) // i: 2..34 (32 iterations), j: 1..17 (16)
	sm, err := StripMine(n, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if sm.Depth() != 3 {
		t.Fatalf("depth = %d", sm.Depth())
	}
	if sm.Loops[0].Var != "i_b" || sm.Loops[1].Var != "i" {
		t.Errorf("loops = %s, %s", sm.Loops[0].Var, sm.Loops[1].Var)
	}
	// The original variables' iteration set is identical.
	sameIterations(t, n, sm, []string{"i", "j"})
	// The block loop covers 32/8 = 4 blocks.
	if sm.Loops[0].Upper.Const != 4 {
		t.Errorf("blocks = %v", sm.Loops[0].Upper)
	}
	// Parallelism stays on the block loop (OpenMP-static over strips).
	if sm.ParDepth != 0 {
		t.Errorf("ParDepth = %d", sm.ParDepth)
	}
	// Strip-mining the inner loop shifts the parallel depth.
	sm2, err := StripMine(n, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sm2.ParDepth != 0 {
		t.Errorf("inner strip-mine moved ParDepth to %d", sm2.ParDepth)
	}
	sameIterations(t, n, sm2, []string{"i", "j"})
}

func TestStripMineErrors(t *testing.T) {
	n := nestOf(t, rectSrc)
	if _, err := StripMine(n, 0, 7); err == nil {
		t.Error("non-dividing size accepted")
	}
	if _, err := StripMine(n, 0, 0); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := StripMine(n, 5, 8); err == nil {
		t.Error("bad loop index accepted")
	}
	tri := nestOf(t, `
program p
array A[64][64]
parfor i = 0 .. 32 {
  for j = i .. 32 {
    A[i][j] = A[i][j]
  }
}
`)
	if _, err := StripMine(tri, 1, 4); err == nil {
		t.Error("variable bounds accepted")
	}
}

func TestTile(t *testing.T) {
	n := nestOf(t, `
program p
array A[64][64]
parfor i = 0 .. 32 {
  for j = 0 .. 16 {
    A[i][j] = A[i][j]
  }
}
`)
	tiled, err := Tile(n, 0, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if tiled.Depth() != 4 {
		t.Fatalf("depth = %d", tiled.Depth())
	}
	order := []string{tiled.Loops[0].Var, tiled.Loops[1].Var, tiled.Loops[2].Var, tiled.Loops[3].Var}
	want := []string{"i_b", "j_b", "i", "j"}
	for k := range want {
		if order[k] != want[k] {
			t.Fatalf("tile order = %v, want %v", order, want)
		}
	}
	sameIterations(t, n, tiled, []string{"i", "j"})
}

func TestTileRejectsIllegal(t *testing.T) {
	n := nestOf(t, `
program p
array A[64][64]
parfor i = 1 .. 33 {
  for j = 0 .. 16 {
    A[i][j] = A[i-1][j+1]
  }
}
`)
	if _, err := Tile(n, 0, 8, 4); err == nil {
		t.Fatal("tiling with (<,>) dependence accepted")
	}
}
