// Package mem models the virtual memory system: per-application address
// spaces, virtual-to-physical translation with on-first-touch page
// allocation, the two hardware interleavings of physical addresses across
// memory controllers (cache-line and page granularity, Figure 5), and the
// page allocation policies the paper studies — default interleaving, the
// OS-assisted MC-targeted policy of Section 5.3, and the first-touch policy
// of Section 6.3.
package mem

import (
	"fmt"

	"offchip/internal/layout"
)

// Policy decides which memory controller should host a newly touched
// virtual page under page interleaving.
type Policy interface {
	// TargetMC picks the controller for a page. vpage is the virtual page
	// number, core the first core to touch it, desired the layout pass's
	// preference (-1 for none).
	TargetMC(vpage int64, core int, desired int) int
}

// InterleavedPolicy is the hardware/OS default: pages round-robin across
// controllers in first-touch order, regardless of who touches them.
type InterleavedPolicy struct {
	numMCs int
	next   int
}

// NewInterleavedPolicy returns the default policy for n controllers.
func NewInterleavedPolicy(n int) *InterleavedPolicy { return &InterleavedPolicy{numMCs: n} }

// TargetMC implements Policy.
func (p *InterleavedPolicy) TargetMC(int64, int, int) int {
	mc := p.next
	p.next = (p.next + 1) % p.numMCs
	return mc
}

// OSAssistedPolicy implements the modified page allocation of Section 5.3:
// honor the compiler's desired controller for each page (realizable via
// madvise in a real kernel); pages with no preference fall back to
// round-robin.
type OSAssistedPolicy struct {
	fallback InterleavedPolicy
}

// NewOSAssistedPolicy returns the OS-assisted policy for n controllers.
func NewOSAssistedPolicy(n int) *OSAssistedPolicy {
	return &OSAssistedPolicy{fallback: InterleavedPolicy{numMCs: n}}
}

// TargetMC implements Policy.
func (p *OSAssistedPolicy) TargetMC(vpage int64, core, desired int) int {
	if desired >= 0 && desired < p.fallback.numMCs {
		return desired
	}
	return p.fallback.TargetMC(vpage, core, desired)
}

// FirstTouchPolicy allocates a page from the controller of the cluster
// whose node first touches it (Section 6.3) — a greedy policy that assumes
// the first toucher is the dominant user.
type FirstTouchPolicy struct {
	// MCOfCore maps a core to its cluster's (primary) controller.
	MCOfCore func(core int) int
}

// TargetMC implements Policy.
func (p *FirstTouchPolicy) TargetMC(vpage int64, core, desired int) int {
	return p.MCOfCore(core)
}

// Config describes the physical memory system for an address space.
type Config struct {
	PageBytes  int64
	LineBytes  int64
	NumMCs     int
	Interleave layout.Granularity
	// PagesPerMC caps each controller's memory (0 = unbounded). When the
	// desired controller is full, allocation spills to the least-loaded
	// one, so the policy never increases page faults (Section 5.3).
	PagesPerMC int64
}

// AddressSpace is one application's virtual address space.
type AddressSpace struct {
	cfg    Config
	base   int64 // physical base; isolates co-running applications
	policy Policy

	pages   map[int64]int64 // vpage → physical page index (relative)
	nextOf  []int64         // per-MC next page slot
	allocOf []int64         // per-MC allocated (live) page count
	freeOf  [][]int64       // per-MC FIFO of physical pages freed by Remap
	Spills  int64           // allocations redirected by a full controller
}

// NewAddressSpace builds an address space with the given allocation policy
// (ignored under cache-line interleaving, where translation preserves the
// MC-select bits and the compiler alone controls placement).
func NewAddressSpace(cfg Config, base int64, policy Policy) *AddressSpace {
	if cfg.NumMCs <= 0 || cfg.PageBytes <= 0 || cfg.LineBytes <= 0 {
		panic(fmt.Sprintf("mem: bad config %+v", cfg))
	}
	if base%(cfg.PageBytes*int64(cfg.NumMCs)) != 0 {
		panic(fmt.Sprintf("mem: base %#x not aligned to %d pages", base, cfg.NumMCs))
	}
	return &AddressSpace{
		cfg:     cfg,
		base:    base,
		policy:  policy,
		pages:   map[int64]int64{},
		nextOf:  make([]int64, cfg.NumMCs),
		allocOf: make([]int64, cfg.NumMCs),
		freeOf:  make([][]int64, cfg.NumMCs),
	}
}

// Translate maps a virtual address to a physical address, allocating the
// backing page on first touch. core is the requesting core; desiredMC is
// the layout's preference for this address (-1 for none).
func (as *AddressSpace) Translate(vaddr int64, core, desiredMC int) int64 {
	if as.cfg.Interleave == layout.LineInterleave {
		// The MC-select bits sit inside the page offset: translation cannot
		// change them, so identity (plus the app base) models any layout.
		return as.base + vaddr
	}
	vpage := vaddr / as.cfg.PageBytes
	ppage, ok := as.pages[vpage]
	if !ok {
		ppage = as.allocate(vpage, core, desiredMC)
		as.pages[vpage] = ppage
	}
	return as.base + ppage*as.cfg.PageBytes + vaddr%as.cfg.PageBytes
}

// allocate picks a physical page for vpage honoring the policy and per-MC
// capacity.
func (as *AddressSpace) allocate(vpage int64, core, desiredMC int) int64 {
	mc := as.policy.TargetMC(vpage, core, desiredMC)
	if as.cfg.PagesPerMC > 0 && as.allocOf[mc] >= as.cfg.PagesPerMC {
		// Full: spill to the least-loaded controller.
		best := mc
		for i := range as.allocOf {
			if as.allocOf[i] < as.allocOf[best] {
				best = i
			}
		}
		if best == mc {
			panic("mem: physical memory exhausted")
		}
		mc = best
		as.Spills++
	}
	as.allocOf[mc]++
	if fl := as.freeOf[mc]; len(fl) > 0 {
		// Reuse a frame freed by a migration before extending the heap.
		ppage := fl[0]
		as.freeOf[mc] = fl[1:]
		return ppage
	}
	// Physical pages are striped so that page p maps to MC p mod NumMCs
	// (the page-interleaving of Figure 5); slot s of controller mc is page
	// s·NumMCs + mc.
	slot := as.nextOf[mc]
	as.nextOf[mc]++
	return slot*int64(as.cfg.NumMCs) + int64(mc)
}

// PageMC reports the controller currently hosting a virtual page, or false
// if the page has never been touched. Only meaningful under page
// interleaving, where a page lives wholly on one controller.
func (as *AddressSpace) PageMC(vpage int64) (int, bool) {
	ppage, ok := as.pages[vpage]
	if !ok {
		return 0, false
	}
	return int(ppage % int64(as.cfg.NumMCs)), true
}

// Remap moves a virtual page to a fresh physical frame on controller toMC,
// returning the frame's old controller. The old frame joins toMC's donor
// free list for reuse by later allocations, so the vpage→ppage map stays a
// bijection at every instant: the page is re-homed atomically, never
// double-homed or lost. Remap refuses (ok=false) when the page was never
// touched, already lives on toMC, or toMC is at its PagesPerMC capacity.
func (as *AddressSpace) Remap(vpage int64, toMC int) (from int, ok bool) {
	ppage, touched := as.pages[vpage]
	if !touched {
		return 0, false
	}
	from = int(ppage % int64(as.cfg.NumMCs))
	if from == toMC {
		return from, false
	}
	if as.cfg.PagesPerMC > 0 && as.allocOf[toMC] >= as.cfg.PagesPerMC {
		return from, false
	}
	as.allocOf[toMC]++
	var newpp int64
	if fl := as.freeOf[toMC]; len(fl) > 0 {
		newpp = fl[0]
		as.freeOf[toMC] = fl[1:]
	} else {
		slot := as.nextOf[toMC]
		as.nextOf[toMC]++
		newpp = slot*int64(as.cfg.NumMCs) + int64(toMC)
	}
	as.pages[vpage] = newpp
	as.allocOf[from]--
	as.freeOf[from] = append(as.freeOf[from], ppage)
	return from, true
}

// VerifyBijection checks the translation state's structural invariants:
// every mapped physical frame is unique (no page double-homed), lies below
// its controller's allocation cursor, and is absent from every free list;
// free-listed frames are themselves unique; and each controller's live count
// equals its mapped frames. It returns the first violation found.
func (as *AddressSpace) VerifyBijection() error {
	n := int64(as.cfg.NumMCs)
	free := map[int64]bool{}
	for mc, fl := range as.freeOf {
		for _, pp := range fl {
			if pp%n != int64(mc) {
				return fmt.Errorf("mem: free frame %d on MC %d's list, belongs to MC %d", pp, mc, pp%n)
			}
			if free[pp] {
				return fmt.Errorf("mem: frame %d free-listed twice", pp)
			}
			free[pp] = true
		}
	}
	seen := map[int64]int64{}
	live := make([]int64, as.cfg.NumMCs)
	for vp, pp := range as.pages {
		if prev, dup := seen[pp]; dup {
			return fmt.Errorf("mem: frame %d double-homed by vpages %d and %d", pp, prev, vp)
		}
		seen[pp] = vp
		if free[pp] {
			return fmt.Errorf("mem: vpage %d maps to free-listed frame %d", vp, pp)
		}
		mc := pp % n
		if pp/n >= as.nextOf[mc] {
			return fmt.Errorf("mem: vpage %d maps to unallocated frame %d (MC %d cursor %d)", vp, pp, mc, as.nextOf[mc])
		}
		live[mc]++
	}
	for mc, want := range live {
		if as.allocOf[mc] != want {
			return fmt.Errorf("mem: MC %d live count %d, page table says %d", mc, as.allocOf[mc], want)
		}
	}
	return nil
}

// MCOf returns the controller a physical address maps to under the
// configured interleaving.
func (as *AddressSpace) MCOf(paddr int64) int {
	return MCOf(paddr, as.cfg)
}

// MCOf returns the controller of a physical address under the given
// interleaving configuration.
func MCOf(paddr int64, cfg Config) int {
	if cfg.Interleave == layout.PageInterleave {
		return int((paddr / cfg.PageBytes) % int64(cfg.NumMCs))
	}
	return int((paddr / cfg.LineBytes) % int64(cfg.NumMCs))
}

// HomeBank returns the shared-L2 home bank of a physical address: lines
// interleave across all cores' banks (Figure 2b).
func HomeBank(paddr, lineBytes int64, cores int) int {
	return int((paddr / lineBytes) % int64(cores))
}

// LocalAddr compacts a physical address into the dense per-controller
// address space DRAM actually sees: controller i stores every N-th
// interleaving unit, and its row buffers hold contiguous runs of those
// units — a 4 KB row holds 4 KB of the controller's own data, not a 1/N
// slice of a global row.
func LocalAddr(paddr int64, cfg Config) int64 {
	unit := cfg.LineBytes
	if cfg.Interleave == layout.PageInterleave {
		unit = cfg.PageBytes
	}
	stripe := unit * int64(cfg.NumMCs)
	return (paddr/stripe)*unit + paddr%unit
}

// TranslationSnapshot captures an AddressSpace's mutable translation state
// — the page table, the per-MC allocation cursors, and the allocation
// policy's round-robin position — so sampled simulation can replay an
// identical first-touch history into many machines without re-walking the
// workload. Snapshots deep-copy on capture and on restore, so the source
// space, the snapshot, and every restored space diverge independently.
type TranslationSnapshot struct {
	pages   map[int64]int64
	nextOf  []int64
	allocOf []int64
	freeOf  [][]int64
	spills  int64
	polKind int // 0 stateless, 1 interleaved, 2 os-assisted
	polNext int
}

// Snapshot captures the space's translation state. Policies other than the
// built-in stateful ones (InterleavedPolicy, OSAssistedPolicy) are assumed
// stateless; a custom stateful Policy is not captured.
func (as *AddressSpace) Snapshot() *TranslationSnapshot {
	s := &TranslationSnapshot{
		pages:   make(map[int64]int64, len(as.pages)),
		nextOf:  append([]int64(nil), as.nextOf...),
		allocOf: append([]int64(nil), as.allocOf...),
		freeOf:  make([][]int64, len(as.freeOf)),
		spills:  as.Spills,
	}
	for mc, fl := range as.freeOf {
		s.freeOf[mc] = append([]int64(nil), fl...)
	}
	for k, v := range as.pages {
		s.pages[k] = v
	}
	switch p := as.policy.(type) {
	case *InterleavedPolicy:
		s.polKind, s.polNext = 1, p.next
	case *OSAssistedPolicy:
		s.polKind, s.polNext = 2, p.fallback.next
	}
	return s
}

// Restore overwrites the space's translation state with the snapshot's.
// The space must have the same configuration the snapshot was taken under.
func (as *AddressSpace) Restore(s *TranslationSnapshot) {
	as.pages = make(map[int64]int64, len(s.pages))
	for k, v := range s.pages {
		as.pages[k] = v
	}
	as.nextOf = append(as.nextOf[:0], s.nextOf...)
	as.allocOf = append(as.allocOf[:0], s.allocOf...)
	as.freeOf = make([][]int64, as.cfg.NumMCs)
	for mc, fl := range s.freeOf {
		as.freeOf[mc] = append([]int64(nil), fl...)
	}
	as.Spills = s.spills
	switch p := as.policy.(type) {
	case *InterleavedPolicy:
		if s.polKind == 1 {
			p.next = s.polNext
		}
	case *OSAssistedPolicy:
		if s.polKind == 2 {
			p.fallback.next = s.polNext
		}
	}
}

// PagesAllocated returns the total allocated page count (for tests).
func (as *AddressSpace) PagesAllocated() int64 {
	var n int64
	for _, c := range as.allocOf {
		n += c
	}
	return n
}

// AllocOf returns the page count allocated from controller mc.
func (as *AddressSpace) AllocOf(mc int) int64 { return as.allocOf[mc] }
