package mem

import (
	"testing"

	"offchip/internal/layout"
)

func pageCfg() Config {
	return Config{
		PageBytes:  4096,
		LineBytes:  256,
		NumMCs:     4,
		Interleave: layout.PageInterleave,
	}
}

func TestLineInterleaveIdentity(t *testing.T) {
	cfg := pageCfg()
	cfg.Interleave = layout.LineInterleave
	as := NewAddressSpace(cfg, 0, NewInterleavedPolicy(4))
	for _, v := range []int64{0, 255, 256, 123456} {
		if p := as.Translate(v, 0, -1); p != v {
			t.Errorf("Translate(%d) = %d under line interleaving", v, p)
		}
	}
	// MC of consecutive lines cycles 0,1,2,3.
	for i := int64(0); i < 8; i++ {
		if mc := as.MCOf(i * 256); mc != int(i%4) {
			t.Errorf("MCOf(line %d) = %d", i, mc)
		}
	}
}

func TestInterleavedPolicyRoundRobin(t *testing.T) {
	as := NewAddressSpace(pageCfg(), 0, NewInterleavedPolicy(4))
	for i := int64(0); i < 8; i++ {
		p := as.Translate(i*4096, 0, -1)
		if mc := as.MCOf(p); mc != int(i%4) {
			t.Errorf("page %d allocated on MC%d, want %d", i, mc, i%4)
		}
	}
	// Re-touching translates to the same page.
	p1 := as.Translate(0, 0, -1)
	p2 := as.Translate(100, 0, -1)
	if p2 != p1+100 {
		t.Errorf("retouch: %d vs %d", p1, p2)
	}
	if as.PagesAllocated() != 8 {
		t.Errorf("pages allocated = %d", as.PagesAllocated())
	}
}

func TestOSAssistedPolicyHonorsDesire(t *testing.T) {
	as := NewAddressSpace(pageCfg(), 0, NewOSAssistedPolicy(4))
	// All pages want MC2.
	for i := int64(0); i < 5; i++ {
		p := as.Translate(i*4096, 0, 2)
		if mc := as.MCOf(p); mc != 2 {
			t.Errorf("page %d on MC%d, want 2", i, mc)
		}
	}
	if as.AllocOf(2) != 5 {
		t.Errorf("MC2 alloc count = %d", as.AllocOf(2))
	}
	// No preference: falls back to round robin.
	p := as.Translate(100*4096, 0, -1)
	if mc := as.MCOf(p); mc != 0 {
		t.Errorf("fallback page on MC%d", mc)
	}
}

func TestFirstTouchPolicy(t *testing.T) {
	// Cores 0-31 belong to MC0, 32-63 to MC1 (toy cluster function).
	pol := &FirstTouchPolicy{MCOfCore: func(core int) int { return core / 32 }}
	as := NewAddressSpace(pageCfg(), 0, pol)
	p := as.Translate(0, 40, -1) // first touch by core 40
	if mc := as.MCOf(p); mc != 1 {
		t.Errorf("first-touch page on MC%d, want 1", mc)
	}
	// Later touches by other cores do not move it.
	p2 := as.Translate(8, 0, -1)
	if p2 != p+8 {
		t.Errorf("page moved: %d vs %d", p, p2)
	}
}

func TestSpillWhenMCFull(t *testing.T) {
	cfg := pageCfg()
	cfg.PagesPerMC = 2
	as := NewAddressSpace(cfg, 0, NewOSAssistedPolicy(4))
	for i := int64(0); i < 4; i++ {
		as.Translate(i*4096, 0, 0) // all want MC0; only 2 fit
	}
	if as.AllocOf(0) != 2 {
		t.Errorf("MC0 holds %d pages, cap 2", as.AllocOf(0))
	}
	if as.Spills != 2 {
		t.Errorf("spills = %d, want 2", as.Spills)
	}
	if as.PagesAllocated() != 4 {
		t.Errorf("total pages = %d (page faults!)", as.PagesAllocated())
	}
}

func TestBaseIsolatesAddressSpaces(t *testing.T) {
	cfg := pageCfg()
	base := int64(1) << 30
	a := NewAddressSpace(cfg, 0, NewInterleavedPolicy(4))
	b := NewAddressSpace(cfg, base, NewInterleavedPolicy(4))
	pa, pb := a.Translate(0, 0, -1), b.Translate(0, 0, -1)
	if pa == pb {
		t.Error("two address spaces collide")
	}
	// The base must not disturb MC selection.
	if a.MCOf(pa) != b.MCOf(pb) {
		t.Errorf("base changed MC: %d vs %d", a.MCOf(pa), b.MCOf(pb))
	}
}

func TestBaseAlignmentChecked(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("misaligned base accepted")
		}
	}()
	NewAddressSpace(pageCfg(), 100, NewInterleavedPolicy(4))
}

func TestHomeBank(t *testing.T) {
	if got := HomeBank(256*65, 256, 64); got != 1 {
		t.Errorf("HomeBank = %d, want 1", got)
	}
	if got := HomeBank(0, 256, 64); got != 0 {
		t.Errorf("HomeBank(0) = %d", got)
	}
}

func TestMCOfPageInterleave(t *testing.T) {
	cfg := pageCfg()
	if got := MCOf(4096*5, cfg); got != 1 {
		t.Errorf("MCOf = %d, want 1", got)
	}
}
