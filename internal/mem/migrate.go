// Online page migration: the dynamic rival to the paper's static,
// compiler-directed layout. The competitor family follows the thesis repo's
// Ramulator2 policies (FCFSTranslation / DynamicTranslation3): map a page to
// the controller nearest its *first* accessor, then keep per-page access
// distributions over fixed cycle windows and migrate a page whose dominant
// accessor crosses a hot threshold to that accessor's nearest controller.
// This file holds the pure decision machinery — the spec with its canonical
// string form (embedded in job IDs), the window/counter/cooldown engine, and
// the page-table remap — while internal/sim injects the modeled migration
// cost (page-copy flits through the NoC, TLB-shootdown stalls on the
// sharers).
package mem

import (
	"fmt"
	"strconv"
	"strings"
)

// MigrationSpec configures the hot-page migration engine. The zero value is
// not valid; use DefaultMigrationSpec or ParseMigrationSpec.
type MigrationSpec struct {
	// HotThreshold is the number of touches by a page's dominant accessor
	// within one window that triggers a migration toward that accessor's
	// nearest controller. An effectively infinite threshold (or zero
	// WindowCycles) makes the engine provably inert.
	HotThreshold int
	// WindowCycles is the access-distribution window length in simulated
	// cycles. Zero disables window rollover entirely: counters accumulate
	// but no migration can ever trigger.
	WindowCycles int64
	// CooldownWindows freezes a migrated page for this many subsequent
	// windows, preventing ping-pong between two alternating accessors.
	CooldownWindows int
	// CopyFlits is the number of line-sized messages a page copy injects
	// through the NoC from the old controller's node to the new one's.
	// Zero derives PageBytes/LineBytes from the machine.
	CopyFlits int
	// ShootdownCycles is the TLB-shootdown stall charged to every core that
	// touched the page in the triggering window, applied when the remap
	// commits.
	ShootdownCycles int64
}

// DefaultMigrationSpec returns the migration configuration "on" selects.
// The thresholds are calibrated to the footprint-scaled workloads: windows
// of 1024 cycles see hundreds of touches per hot page, so a dominant
// accessor with 16 touches is well past noise, and two cooldown windows
// stop the alternating-accessor ping-pong the unit tests pin down.
func DefaultMigrationSpec() MigrationSpec {
	return MigrationSpec{
		HotThreshold:    16,
		WindowCycles:    1024,
		CooldownWindows: 2,
		CopyFlits:       0,
		ShootdownCycles: 64,
	}
}

// Validate rejects non-runnable specs.
func (s MigrationSpec) Validate() error {
	if s.HotThreshold <= 0 {
		return fmt.Errorf("mem: migration hot threshold %d, want >= 1", s.HotThreshold)
	}
	if s.WindowCycles < 0 {
		return fmt.Errorf("mem: migration window %d cycles, want >= 0", s.WindowCycles)
	}
	if s.CooldownWindows < 0 {
		return fmt.Errorf("mem: migration cooldown %d windows, want >= 0", s.CooldownWindows)
	}
	if s.CopyFlits < 0 {
		return fmt.Errorf("mem: migration copy flits %d, want >= 0", s.CopyFlits)
	}
	if s.ShootdownCycles < 0 {
		return fmt.Errorf("mem: migration shootdown %d cycles, want >= 0", s.ShootdownCycles)
	}
	return nil
}

// String renders the canonical compact form h<thr>w<win>c<cool>f<flits>t<stall>.
// It round-trips through ParseMigrationSpec, so job IDs embed it verbatim.
func (s MigrationSpec) String() string {
	return fmt.Sprintf("h%dw%dc%df%dt%d",
		s.HotThreshold, s.WindowCycles, s.CooldownWindows, s.CopyFlits, s.ShootdownCycles)
}

// ParseMigrationSpec parses the compact form. "" and "off" mean migration
// disabled (nil); "on" means the defaults.
func ParseMigrationSpec(s string) (*MigrationSpec, error) {
	switch s {
	case "", "off":
		return nil, nil
	case "on":
		sp := DefaultMigrationSpec()
		return &sp, nil
	}
	rest, ok := strings.CutPrefix(s, "h")
	if !ok {
		return nil, fmt.Errorf("mem: migration spec %q: want \"on\", \"off\", or h<thr>w<win>c<cool>f<flits>t<stall>", s)
	}
	hs, rest, ok := strings.Cut(rest, "w")
	if !ok {
		return nil, fmt.Errorf("mem: migration spec %q lacks the w<window> field", s)
	}
	ws, rest, ok := strings.Cut(rest, "c")
	if !ok {
		return nil, fmt.Errorf("mem: migration spec %q lacks the c<cooldown> field", s)
	}
	cs, rest, ok := strings.Cut(rest, "f")
	if !ok {
		return nil, fmt.Errorf("mem: migration spec %q lacks the f<flits> field", s)
	}
	fs, ts, ok := strings.Cut(rest, "t")
	if !ok {
		return nil, fmt.Errorf("mem: migration spec %q lacks the t<shootdown> field", s)
	}
	var sp MigrationSpec
	var err error
	if sp.HotThreshold, err = strconv.Atoi(hs); err != nil {
		return nil, fmt.Errorf("mem: migration threshold %q: %w", hs, err)
	}
	if sp.WindowCycles, err = strconv.ParseInt(ws, 10, 64); err != nil {
		return nil, fmt.Errorf("mem: migration window %q: %w", ws, err)
	}
	if sp.CooldownWindows, err = strconv.Atoi(cs); err != nil {
		return nil, fmt.Errorf("mem: migration cooldown %q: %w", cs, err)
	}
	if sp.CopyFlits, err = strconv.Atoi(fs); err != nil {
		return nil, fmt.Errorf("mem: migration flits %q: %w", fs, err)
	}
	if sp.ShootdownCycles, err = strconv.ParseInt(ts, 10, 64); err != nil {
		return nil, fmt.Errorf("mem: migration shootdown %q: %w", ts, err)
	}
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	return &sp, nil
}

// PageID names one virtual page of one application's address space.
type PageID struct {
	App   int
	VPage int64
}

// Migration is one remap decision the engine produced at a window boundary.
type Migration struct {
	Page     PageID
	From, To int   // controllers
	Dominant int   // the core whose touches triggered the migration
	Count    int32 // the dominant core's touches in the window
	Sharers  []int // every core that touched the page in the window, ascending
}

// pageStat is one page's live migration state. Counters are reset lazily on
// the first touch of a new window, so idle pages cost nothing per window.
type pageStat struct {
	counts        []int32 // per-core touches within window `window`
	window        int64   // window index the counters belong to
	cooldownUntil int64   // first window index whose close may migrate again
	pending       bool    // a migration is in flight; frozen until Completed
}

// Migrator is the window/counter/cooldown decision engine. It is pure
// bookkeeping — no clocks, no cost model — so the edge cases (threshold
// exactly met, dominant-accessor ties, cooldown expiry, ping-pong damping)
// are table-testable in isolation. internal/sim drives it: Touch on every
// reference, Roll at each window boundary, Completed when a remap commits.
type Migrator struct {
	spec  MigrationSpec
	cores int
	// NearestMC maps a core to its nearest controller (by mesh hops) — the
	// migration target of a page that core dominates.
	nearestMC func(core int) int

	window int64 // index of the currently open window
	pages  map[PageID]*pageStat
	order  []PageID // first-touch order within the open window (determinism)
}

// NewMigrator builds the decision engine for a machine with the given core
// count. nearestMC maps a core to its nearest controller.
func NewMigrator(spec MigrationSpec, cores int, nearestMC func(core int) int) *Migrator {
	return &Migrator{
		spec:      spec,
		cores:     cores,
		nearestMC: nearestMC,
		pages:     map[PageID]*pageStat{},
	}
}

// Spec returns the engine's configuration.
func (g *Migrator) Spec() MigrationSpec { return g.spec }

// Window returns the index of the currently open window.
func (g *Migrator) Window() int64 { return g.window }

// Touch counts one reference to the page by the core within the open window.
func (g *Migrator) Touch(page PageID, core int) {
	st := g.pages[page]
	if st == nil {
		st = &pageStat{counts: make([]int32, g.cores)}
		st.window = g.window
		g.pages[page] = st
		g.order = append(g.order, page)
		st.counts[core]++
		return
	}
	if st.window != g.window {
		for i := range st.counts {
			st.counts[i] = 0
		}
		st.window = g.window
		g.order = append(g.order, page)
	}
	st.counts[core]++
}

// Roll closes the open window and returns the migrations it triggers, in
// first-touch order. curMC resolves a page's current home controller (from
// the live page table). A page migrates when its dominant accessor — ties
// broken toward the lowest core ID — reached HotThreshold touches, its
// nearest controller differs from the page's current home, the page is not
// cooling down, and no earlier migration of it is still in flight.
func (g *Migrator) Roll(curMC func(PageID) int) []Migration {
	closed := g.window
	g.window++
	var out []Migration
	for _, pg := range g.order {
		st := g.pages[pg]
		if st == nil || st.window != closed {
			continue
		}
		if st.pending || closed < st.cooldownUntil {
			continue
		}
		dom, cnt := -1, int32(0)
		for core, c := range st.counts {
			if c > cnt { // strict: ties keep the lowest core ID
				dom, cnt = core, c
			}
		}
		if dom < 0 || int(cnt) < g.spec.HotThreshold {
			continue
		}
		to := g.nearestMC(dom)
		from := curMC(pg)
		if to == from {
			continue
		}
		var sharers []int
		for core, c := range st.counts {
			if c > 0 {
				sharers = append(sharers, core)
			}
		}
		st.pending = true
		st.cooldownUntil = closed + 1 + int64(g.spec.CooldownWindows)
		out = append(out, Migration{
			Page: pg, From: from, To: to,
			Dominant: dom, Count: cnt, Sharers: sharers,
		})
	}
	g.order = g.order[:0]
	return out
}

// Completed marks the page's in-flight migration as committed, unfreezing
// it for future windows (the cooldown stamped at trigger time still holds).
func (g *Migrator) Completed(page PageID) {
	if st := g.pages[page]; st != nil {
		st.pending = false
	}
}

// FirstTouchNearestPolicy allocates a page from the controller *nearest*
// the first-touching core's mesh node — the FCFSTranslation competitor —
// rather than the first toucher's cluster controller (FirstTouchPolicy).
type FirstTouchNearestPolicy struct {
	// NearestMC maps a core to its nearest controller by mesh hops.
	NearestMC func(core int) int
}

// TargetMC implements Policy.
func (p *FirstTouchNearestPolicy) TargetMC(vpage int64, core, desired int) int {
	return p.NearestMC(core)
}
