// Online page migration: the dynamic rival to the paper's static,
// compiler-directed layout. The competitor family follows the thesis repo's
// Ramulator2 policies (FCFSTranslation / DynamicTranslation3): map a page to
// the controller nearest its *first* accessor, then keep per-page access
// distributions over fixed cycle windows and migrate a page whose dominant
// accessor crosses a hot threshold to that accessor's nearest controller.
// This file holds the pure decision machinery — the spec with its canonical
// string form (embedded in job IDs), the window/counter/cooldown engine, and
// the page-table remap — while internal/sim injects the modeled migration
// cost (page-copy flits through the NoC, TLB-shootdown stalls on the
// sharers).
package mem

import (
	"fmt"
	"strconv"
	"strings"
)

// MigrationSpec configures the hot-page migration engine. The zero value is
// not valid; use DefaultMigrationSpec or ParseMigrationSpec.
type MigrationSpec struct {
	// HotThreshold is the number of touches by a page's dominant accessor
	// within one window that triggers a migration toward that accessor's
	// nearest controller. An effectively infinite threshold (or zero
	// WindowCycles) makes the engine provably inert.
	HotThreshold int
	// WindowCycles is the access-distribution window length in simulated
	// cycles. Zero disables window rollover entirely: counters accumulate
	// but no migration can ever trigger.
	WindowCycles int64
	// CooldownWindows freezes a migrated page for this many subsequent
	// windows, preventing ping-pong between two alternating accessors.
	CooldownWindows int
	// CopyFlits is the number of line-sized messages a page copy injects
	// through the NoC from the old controller's node to the new one's.
	// Zero derives PageBytes/LineBytes from the machine.
	CopyFlits int
	// ShootdownCycles is the TLB-shootdown stall charged to every core that
	// touched the page in the triggering window, applied when the remap
	// commits.
	ShootdownCycles int64
	// ClusterPages migrates aligned groups of this many virtual pages as one
	// unit: touches aggregate per cluster, a triggering cluster moves every
	// allocated member page, and the sharers pay ONE shootdown per cluster
	// remap instead of one per page — the amortization that makes coarse
	// migration cheaper than per-page. 0 and 1 both mean single-page
	// migration (the historical behavior; old 5-field specs parse as g1).
	ClusterPages int
}

// DefaultMigrationSpec returns the migration configuration "on" selects:
// h16w4096c2f0t64g4, the winner of the figtune sweep over (threshold,
// window, cooldown, granularity) × the full-trace suite plus the
// phase-changing mixes. The old default (h16w1024c2, single-page) was a net
// loss on stationary workloads — 1025 remaps and −63% on apsi — because a
// 1024-cycle window rewards every transient; 4096-cycle windows with
// 4-page clusters amortize one shootdown over a whole cluster and leave
// the worst full-trace regression (apsi, −0.6%) inside the simulator's
// ±1% seed-jitter noise floor while still winning on phase-changing mixes.
func DefaultMigrationSpec() MigrationSpec {
	return MigrationSpec{
		HotThreshold:    16,
		WindowCycles:    4096,
		CooldownWindows: 2,
		CopyFlits:       0,
		ShootdownCycles: 64,
		ClusterPages:    4,
	}
}

// Validate rejects non-runnable specs.
func (s MigrationSpec) Validate() error {
	if s.HotThreshold <= 0 {
		return fmt.Errorf("mem: migration hot threshold %d, want >= 1", s.HotThreshold)
	}
	if s.WindowCycles < 0 {
		return fmt.Errorf("mem: migration window %d cycles, want >= 0", s.WindowCycles)
	}
	if s.CooldownWindows < 0 {
		return fmt.Errorf("mem: migration cooldown %d windows, want >= 0", s.CooldownWindows)
	}
	if s.CopyFlits < 0 {
		return fmt.Errorf("mem: migration copy flits %d, want >= 0", s.CopyFlits)
	}
	if s.ShootdownCycles < 0 {
		return fmt.Errorf("mem: migration shootdown %d cycles, want >= 0", s.ShootdownCycles)
	}
	if s.ClusterPages < 0 {
		return fmt.Errorf("mem: migration cluster %d pages, want >= 0", s.ClusterPages)
	}
	return nil
}

// String renders the canonical compact form
// h<thr>w<win>c<cool>f<flits>t<stall>[g<pages>]. The g field appears only
// when ClusterPages > 1, so every historical 5-field spec — and every job ID
// embedding one — renders byte-identically. It round-trips through
// ParseMigrationSpec.
func (s MigrationSpec) String() string {
	out := fmt.Sprintf("h%dw%dc%df%dt%d",
		s.HotThreshold, s.WindowCycles, s.CooldownWindows, s.CopyFlits, s.ShootdownCycles)
	if s.ClusterPages > 1 {
		out += fmt.Sprintf("g%d", s.ClusterPages)
	}
	return out
}

// ParseMigrationSpec parses the compact form. "" and "off" mean migration
// disabled (nil); "on" means the defaults. Only the canonical rendering is
// accepted: a spec whose numerals re-render differently ("h+16…", "h016…",
// an explicit "g1") is rejected, because job IDs embed the string verbatim
// and the sweep service dedups jobs by ID bytes — two spellings of one spec
// would defeat that dedup silently.
func ParseMigrationSpec(s string) (*MigrationSpec, error) {
	switch s {
	case "", "off":
		return nil, nil
	case "on":
		sp := DefaultMigrationSpec()
		return &sp, nil
	}
	rest, ok := strings.CutPrefix(s, "h")
	if !ok {
		return nil, fmt.Errorf("mem: migration spec %q: want \"on\", \"off\", or h<thr>w<win>c<cool>f<flits>t<stall>[g<pages>]", s)
	}
	hs, rest, ok := strings.Cut(rest, "w")
	if !ok {
		return nil, fmt.Errorf("mem: migration spec %q lacks the w<window> field", s)
	}
	ws, rest, ok := strings.Cut(rest, "c")
	if !ok {
		return nil, fmt.Errorf("mem: migration spec %q lacks the c<cooldown> field", s)
	}
	cs, rest, ok := strings.Cut(rest, "f")
	if !ok {
		return nil, fmt.Errorf("mem: migration spec %q lacks the f<flits> field", s)
	}
	fs, rest, ok := strings.Cut(rest, "t")
	if !ok {
		return nil, fmt.Errorf("mem: migration spec %q lacks the t<shootdown> field", s)
	}
	ts, gs, hasG := strings.Cut(rest, "g")
	var sp MigrationSpec
	var err error
	if sp.HotThreshold, err = strconv.Atoi(hs); err != nil {
		return nil, fmt.Errorf("mem: migration threshold %q: %w", hs, err)
	}
	if sp.WindowCycles, err = strconv.ParseInt(ws, 10, 64); err != nil {
		return nil, fmt.Errorf("mem: migration window %q: %w", ws, err)
	}
	if sp.CooldownWindows, err = strconv.Atoi(cs); err != nil {
		return nil, fmt.Errorf("mem: migration cooldown %q: %w", cs, err)
	}
	if sp.CopyFlits, err = strconv.Atoi(fs); err != nil {
		return nil, fmt.Errorf("mem: migration flits %q: %w", fs, err)
	}
	if sp.ShootdownCycles, err = strconv.ParseInt(ts, 10, 64); err != nil {
		return nil, fmt.Errorf("mem: migration shootdown %q: %w", ts, err)
	}
	if hasG {
		if sp.ClusterPages, err = strconv.Atoi(gs); err != nil {
			return nil, fmt.Errorf("mem: migration cluster %q: %w", gs, err)
		}
	}
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	if canon := sp.String(); canon != s {
		return nil, fmt.Errorf("mem: migration spec %q is not canonical (want %q): job IDs embed the spec verbatim, so only one spelling is accepted", s, canon)
	}
	return &sp, nil
}

// PageID names one virtual page of one application's address space.
type PageID struct {
	App   int
	VPage int64
}

// Migration is one remap decision the engine produced at a window boundary.
// With cluster-granularity migration (ClusterPages > 1) the decision covers
// the whole aligned cluster: Page is the cluster's base page and Pages its
// extent; counts and sharers aggregate over every member page.
type Migration struct {
	Page     PageID // single page, or the cluster's aligned base page
	Pages    int    // cluster extent in pages (1: single-page migration)
	From, To int    // controllers (From is the base page's current home)
	Dominant int    // the core whose touches triggered the migration
	Count    int32  // the dominant core's touches in the window
	Sharers  []int  // every core that touched the page/cluster in the window, ascending
}

// pageStat is one page's live migration state. Counters are reset lazily on
// the first touch of a new window, so idle pages cost nothing per window.
type pageStat struct {
	counts []int32 // per-core touches within window `window`
	hist   []int32 // exponentially-decayed per-core history (nil until
	// the page survives its first window rollover; decays by 1/4 per window)
	window        int64 // window index the counters belong to
	cooldownUntil int64 // first window index whose close may migrate again
	pending       bool  // a migration is in flight; frozen until Completed
	candTo        int   // unconfirmed candidate target (-1: none)
	candWindow    int64 // window index the candidate was recorded at
}

// fold rolls the page's window counters into the decayed history: the closed
// window's counts join the running total, which then loses a quarter per
// elapsed window. The fixed point of h = (h+c)·3/4 is 3c, so at evaluation
// time a stable pattern weighs its history 3:1 against the open window —
// the long-horizon estimate the profitability guard works from.
func (st *pageStat) fold(elapsed int64) {
	if st.hist == nil {
		st.hist = make([]int32, len(st.counts))
	}
	for i, c := range st.counts {
		h := st.hist[i] + c
		for k := int64(0); k < elapsed && h > 0; k++ {
			h -= (h + 3) >> 2
		}
		st.hist[i] = h
		st.counts[i] = 0
	}
}

// Migrator is the window/counter/cooldown decision engine. It is pure
// bookkeeping — no clocks, no cost model — so the edge cases (threshold
// exactly met, dominant-accessor ties, cooldown expiry, ping-pong damping)
// are table-testable in isolation. internal/sim drives it: Touch on every
// reference, Roll at each window boundary, Completed when a remap commits.
type Migrator struct {
	spec    MigrationSpec
	cores   int
	cluster int64 // migration granularity in pages (>= 1)
	// NearestMC maps a core to its nearest controller (by mesh hops) — the
	// migration target of a page that core dominates.
	nearestMC func(core int) int
	// dist is the mesh hop distance from a core's node to a controller's
	// node — the profitability model: a migration must strictly reduce the
	// touch-weighted total distance of the window it triggered in.
	dist func(core, mc int) int

	window int64 // index of the currently open window
	pages  map[PageID]*pageStat
	order  []PageID // first-touch order within the open window (determinism)
}

// NewMigrator builds the decision engine for a machine with the given core
// count. nearestMC maps a core to its nearest controller; dist is the mesh
// hop distance from a core's node to a controller's node.
func NewMigrator(spec MigrationSpec, cores int, nearestMC func(core int) int, dist func(core, mc int) int) *Migrator {
	cluster := int64(spec.ClusterPages)
	if cluster < 1 {
		cluster = 1
	}
	return &Migrator{
		spec:      spec,
		cores:     cores,
		cluster:   cluster,
		nearestMC: nearestMC,
		dist:      dist,
		pages:     map[PageID]*pageStat{},
	}
}

// Spec returns the engine's configuration.
func (g *Migrator) Spec() MigrationSpec { return g.spec }

// ClusterPages returns the effective migration granularity (>= 1).
func (g *Migrator) ClusterPages() int { return int(g.cluster) }

// Window returns the index of the currently open window.
func (g *Migrator) Window() int64 { return g.window }

// key maps a page to its decision unit: itself at single-page granularity,
// the aligned cluster base otherwise.
func (g *Migrator) key(page PageID) PageID {
	if g.cluster > 1 {
		page.VPage -= page.VPage % g.cluster
	}
	return page
}

// Touch counts one reference to the page by the core within the open window.
// At cluster granularity the touch lands on the page's cluster.
func (g *Migrator) Touch(page PageID, core int) {
	page = g.key(page)
	st := g.pages[page]
	if st == nil {
		st = &pageStat{counts: make([]int32, g.cores), candTo: -1}
		st.window = g.window
		g.pages[page] = st
		g.order = append(g.order, page)
		st.counts[core]++
		return
	}
	if st.window != g.window {
		st.fold(g.window - st.window)
		st.window = g.window
		g.order = append(g.order, page)
	}
	st.counts[core]++
}

// Roll closes the open window and returns the migrations it triggers, in
// first-touch order. curMC resolves a page's current home controller (from
// the live page table). A page migrates when its dominant accessor — ties
// broken toward the lowest core ID — reached HotThreshold touches, its
// nearest controller differs from the page's current home, the page is not
// cooling down, and no earlier migration of it is still in flight.
func (g *Migrator) Roll(curMC func(PageID) int) []Migration {
	closed := g.window
	g.window++
	// Per-controller traffic of the closing window (touches of every tracked
	// page, attributed to its current home), the balance picture behind the
	// queue guard below. Updated as migrations are approved so a burst of
	// same-window candidates cannot collectively overload one target.
	load := map[int]int64{}
	for _, pg := range g.order {
		if st := g.pages[pg]; st != nil && st.window == closed {
			var tot int64
			for _, c := range st.counts {
				tot += int64(c)
			}
			load[curMC(pg)] += tot
		}
	}
	var out []Migration
	for _, pg := range g.order {
		st := g.pages[pg]
		if st == nil || st.window != closed {
			continue
		}
		if st.pending || closed < st.cooldownUntil {
			continue
		}
		dom, cnt := -1, int32(0)
		for core, c := range st.counts {
			if c > cnt { // strict: ties keep the lowest core ID
				dom, cnt = core, c
			}
		}
		if dom < 0 || int(cnt) < g.spec.HotThreshold {
			continue
		}
		to := g.nearestMC(dom)
		from := curMC(pg)
		if to == from {
			continue
		}
		// Profitability guard: the dominant accessor gains from the move, but
		// every other sharer may be dragged farther from the page, and the
		// payoff accrues over the REST of the run, not the window that
		// triggered. Weigh history and window together (the decayed history
		// outweighs the open window 3:1 for a stable pattern) — the move must
		// cut the touch-weighted hop distance by at least two hops per
		// weighted touch, or the exec-time tail risk of shifting DRAM service
		// between controllers outweighs the NoC savings (exec time is a MAX
		// over cores: a globally profitable move can still slow the critical
		// one). Migrating on one window's dominance
		// alone is the over-migration pathology the old engine exhibited
		// (hundreds of net-loss remaps on stationary workloads, −63% on
		// apsi): a rotating pattern justifies in every window a move the
		// next window regrets, while the long-horizon estimate sees the
		// rotation cancel out.
		var benefit, effTotal, total int64
		for core, c := range st.counts {
			eff := int64(c)
			if st.hist != nil {
				eff += int64(st.hist[core])
			}
			if eff == 0 {
				continue
			}
			total += int64(c)
			effTotal += eff
			benefit += eff * int64(g.dist(core, from)-g.dist(core, to))
		}
		if benefit < 2*effTotal {
			continue
		}
		// Queue-balance guard: proximity is only half the objective — the
		// paper's thesis is that concentrating hot pages on one controller
		// trades network hops for queueing delay. Refuse a move that would
		// leave the target carrying more of this window's tracked traffic
		// than the page's current home carried before the move; migrations
		// then flow toward colder controllers (a phase shift drains the old
		// home) but never re-concentrate a spread that first-touch already
		// balanced.
		if load[to]+total > load[from] {
			continue
		}
		// Confirmation: a single window's snapshot is myopic — rotating
		// access patterns (a pipeline wavefront crossing the mesh) produce
		// windows that each justify a move the next window invalidates, and
		// chasing them remaps hot pages all run long for nothing. A genuine
		// hot-set shift persists, so a migration commits only when the same
		// page→target decision passes every guard in two consecutive windows.
		if st.candTo != to || st.candWindow != closed-1 {
			st.candTo, st.candWindow = to, closed
			continue
		}
		st.candTo = -1
		var sharers []int
		for core, c := range st.counts {
			if c > 0 {
				sharers = append(sharers, core)
			}
		}
		load[from] -= total
		load[to] += total
		st.pending = true
		st.cooldownUntil = closed + 1 + int64(g.spec.CooldownWindows)
		out = append(out, Migration{
			Page: pg, Pages: int(g.cluster), From: from, To: to,
			Dominant: dom, Count: cnt, Sharers: sharers,
		})
	}
	g.order = g.order[:0]
	return out
}

// Completed marks the page's (or its cluster's) in-flight migration as
// committed, unfreezing it for future windows (the cooldown stamped at
// trigger time still holds).
func (g *Migrator) Completed(page PageID) {
	if st := g.pages[g.key(page)]; st != nil {
		st.pending = false
	}
}

// FirstTouchNearestPolicy allocates a page from the controller *nearest*
// the first-touching core's mesh node — the FCFSTranslation competitor —
// rather than the first toucher's cluster controller (FirstTouchPolicy).
type FirstTouchNearestPolicy struct {
	// NearestMC maps a core to its nearest controller by mesh hops.
	NearestMC func(core int) int
}

// TargetMC implements Policy.
func (p *FirstTouchNearestPolicy) TargetMC(vpage int64, core, desired int) int {
	return p.NearestMC(core)
}
