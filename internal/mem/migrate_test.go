package mem

import (
	"strings"
	"testing"

	"offchip/internal/layout"
)

// nearestByMod is the test stand-in for the mesh's nearest-controller map:
// core c is nearest controller c mod 4.
func nearestByMod(core int) int { return core % 4 }

// distByMod is the matching hop-distance stand-in: controllers live on a
// line and core c sits at position c mod 4, so dist(c, mc) = |c%4 - mc|
// (zero exactly at the core's nearest controller).
func distByMod(core, mc int) int {
	d := core%4 - mc
	if d < 0 {
		d = -d
	}
	return d
}

// touchN records n touches of the page by the core.
func touchN(g *Migrator, pg PageID, core, n int) {
	for i := 0; i < n; i++ {
		g.Touch(pg, core)
	}
}

// homeAt returns a curMC resolver pinning every page to the one controller.
func homeAt(mc int) func(PageID) int { return func(PageID) int { return mc } }

func TestMigratorEdgeCases(t *testing.T) {
	pg := PageID{App: 0, VPage: 7}
	cases := []struct {
		name  string
		spec  MigrationSpec
		touch func(g *Migrator) // fills the open window
		home  int               // the page's current controller
		want  int               // expected migrations out of one Roll
		to    int               // expected target (when want > 0)
		dom   int               // expected dominant core (when want > 0)
	}{
		{
			name:  "threshold exactly met",
			spec:  MigrationSpec{HotThreshold: 16, WindowCycles: 100, ShootdownCycles: 1},
			touch: func(g *Migrator) { touchN(g, pg, 7, 16) }, // 3 hops gained per touch
			home:  0, want: 1, to: 3, dom: 7,
		},
		{
			name:  "one touch short of threshold",
			spec:  MigrationSpec{HotThreshold: 16, WindowCycles: 100, ShootdownCycles: 1},
			touch: func(g *Migrator) { touchN(g, pg, 7, 15) },
			home:  0, want: 0,
		},
		{
			name: "one hop per touch is below the density gate",
			spec: MigrationSpec{HotThreshold: 4, WindowCycles: 100, ShootdownCycles: 1},
			touch: func(g *Migrator) {
				touchN(g, pg, 5, 16) // nearest MC 1, one hop from home 0
			},
			home: 0, want: 0,
		},
		{
			name: "dominant-accessor tie keeps the lowest core",
			spec: MigrationSpec{HotThreshold: 4, WindowCycles: 100, ShootdownCycles: 1},
			touch: func(g *Migrator) {
				touchN(g, pg, 7, 4) // nearest MC 3; ties resolve to core 3 below
				touchN(g, pg, 3, 4) // nearest MC 3, the lowest tied core ID
			},
			home: 0, want: 1, to: 3, dom: 3,
		},
		{
			name: "zero net hop benefit: anchored, no migration",
			spec: MigrationSpec{HotThreshold: 4, WindowCycles: 100, ShootdownCycles: 1},
			touch: func(g *Migrator) {
				touchN(g, pg, 1, 5) // nearest MC 1: dominant, gains 1 hop per touch
				touchN(g, pg, 7, 5) // nearest MC 3: loses 1 hop per touch — a wash
			},
			home: 2, want: 0,
		},
		{
			name: "minority dragged farther than the dominant gains: no migration",
			spec: MigrationSpec{HotThreshold: 4, WindowCycles: 100, ShootdownCycles: 1},
			touch: func(g *Migrator) {
				touchN(g, pg, 5, 5) // nearest MC 1: dominant, gains 1 hop per touch
				touchN(g, pg, 0, 3) // nearest MC 0, the current home: loses 1 hop...
				touchN(g, pg, 4, 3) // ...per touch each, 6 hops lost vs 5 gained
			},
			home: 0, want: 0,
		},
		{
			name:  "already home: no migration",
			spec:  MigrationSpec{HotThreshold: 4, WindowCycles: 100, ShootdownCycles: 1},
			touch: func(g *Migrator) { touchN(g, pg, 5, 8) },
			home:  1, want: 0, // core 5's nearest MC is already the home
		},
		{
			name:  "effectively infinite threshold is inert",
			spec:  MigrationSpec{HotThreshold: 1 << 30, WindowCycles: 100, ShootdownCycles: 1},
			touch: func(g *Migrator) { touchN(g, pg, 5, 1000) },
			home:  0, want: 0,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g := NewMigrator(c.spec, 8, nearestByMod, distByMod)
			// A decision needs two consecutive qualifying windows: the first
			// Roll records the candidate, the second confirms (or keeps
			// refusing, for the guard cases).
			c.touch(g)
			if migs := g.Roll(homeAt(c.home)); len(migs) != 0 {
				t.Fatalf("first window migrated unconfirmed: %+v", migs)
			}
			c.touch(g)
			migs := g.Roll(homeAt(c.home))
			if len(migs) != c.want {
				t.Fatalf("Roll produced %d migrations, want %d: %+v", len(migs), c.want, migs)
			}
			if c.want == 0 {
				return
			}
			m := migs[0]
			if m.Page != pg || m.From != c.home || m.To != c.to || m.Dominant != c.dom {
				t.Errorf("migration %+v, want page %v %d->%d dominant %d", m, pg, c.home, c.to, c.dom)
			}
		})
	}
}

func TestMigratorSharersAscending(t *testing.T) {
	g := NewMigrator(MigrationSpec{HotThreshold: 4, WindowCycles: 100, ShootdownCycles: 1}, 8, nearestByMod, distByMod)
	pg := PageID{VPage: 1}
	hot := func() {
		touchN(g, pg, 7, 8) // dominant: 3 hops gained per touch toward MC 3
		touchN(g, pg, 5, 1)
		touchN(g, pg, 0, 1)
	}
	hot()
	if migs := g.Roll(homeAt(0)); len(migs) != 0 {
		t.Fatalf("unconfirmed window migrated: %+v", migs)
	}
	hot()
	migs := g.Roll(homeAt(0))
	if len(migs) != 1 {
		t.Fatalf("got %d migrations, want 1", len(migs))
	}
	want := []int{0, 5, 7}
	got := migs[0].Sharers
	if len(got) != len(want) {
		t.Fatalf("sharers %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sharers %v, want %v", got, want)
		}
	}
}

func TestMigratorPendingFreezesPage(t *testing.T) {
	spec := MigrationSpec{HotThreshold: 4, WindowCycles: 100, CooldownWindows: 0, ShootdownCycles: 1}
	g := NewMigrator(spec, 8, nearestByMod, distByMod)
	pg := PageID{VPage: 3}
	touchN(g, pg, 7, 8)
	if migs := g.Roll(homeAt(0)); len(migs) != 0 {
		t.Fatalf("window 0: unconfirmed window migrated: %+v", migs)
	}
	touchN(g, pg, 7, 8)
	if migs := g.Roll(homeAt(0)); len(migs) != 1 {
		t.Fatalf("window 1: got %d migrations, want 1", len(migs))
	}
	// The remap is still in flight: the page stays hot but must not
	// re-trigger until Completed.
	touchN(g, pg, 4, 24)
	if migs := g.Roll(homeAt(0)); len(migs) != 0 {
		t.Fatalf("pending page re-triggered: %+v", migs)
	}
	g.Completed(pg)
	// The reversed phase must shout louder than the decaying history of the
	// old accessor before the hop-benefit gate re-opens.
	touchN(g, pg, 4, 24)
	if migs := g.Roll(homeAt(3)); len(migs) != 0 {
		t.Fatalf("after Completed: unconfirmed window migrated: %+v", migs)
	}
	touchN(g, pg, 4, 24)
	if migs := g.Roll(homeAt(3)); len(migs) != 1 || migs[0].To != 0 {
		t.Fatalf("after Completed: got %+v, want one migration to MC 0", migs)
	}
}

func TestMigratorCooldownExpiresOnWindowBoundary(t *testing.T) {
	spec := MigrationSpec{HotThreshold: 4, WindowCycles: 100, CooldownWindows: 2, ShootdownCycles: 1}
	g := NewMigrator(spec, 8, nearestByMod, distByMod)
	pg := PageID{VPage: 9}

	touchN(g, pg, 7, 8)
	if migs := g.Roll(homeAt(0)); len(migs) != 0 { // window 0 records the candidate
		t.Fatalf("window 0: unconfirmed window migrated: %+v", migs)
	}
	touchN(g, pg, 7, 8)
	if migs := g.Roll(homeAt(0)); len(migs) != 1 { // closes window 1, cooldown until window 4
		t.Fatalf("window 1: %d migrations, want 1", len(migs))
	}
	g.Completed(pg)
	// The reversed phase (core 4, nearest MC 0, three hops from the new home)
	// keeps shouting through the cooldown; the touches only build history.
	for w := 2; w <= 3; w++ { // windows 2 and 3 are cooling
		touchN(g, pg, 4, 16)
		if migs := g.Roll(homeAt(3)); len(migs) != 0 {
			t.Fatalf("window %d: migrated during cooldown: %+v", w, migs)
		}
	}
	touchN(g, pg, 4, 16) // window 4: cooldown expired exactly at this boundary, candidate recorded
	if migs := g.Roll(homeAt(3)); len(migs) != 0 {
		t.Fatalf("window 4: unconfirmed window migrated: %+v", migs)
	}
	touchN(g, pg, 4, 16) // window 5 confirms
	if migs := g.Roll(homeAt(3)); len(migs) != 1 || migs[0].To != 0 {
		t.Fatalf("window 5: got %+v, want one migration to MC 0", migs)
	}
}

// TestMigratorPingPongStabilizes drives the worst case — two accessors on
// opposite controllers alternating dominance every two windows (one window
// of candidacy, one of confirmation) — and checks the cooldown bounds the
// migration rate to at most one per cooldown period, rather than one per
// confirmation period.
func TestMigratorPingPongStabilizes(t *testing.T) {
	const windows = 24
	spec := MigrationSpec{HotThreshold: 4, WindowCycles: 100, CooldownWindows: 3, ShootdownCycles: 1}
	g := NewMigrator(spec, 8, nearestByMod, distByMod)
	pg := PageID{VPage: 2}
	home := 0
	total := 0
	for w := 0; w < windows; w++ {
		core := 7 // nearest MC 3, three hops from home 0
		if (w/2)%2 == 1 {
			core = 4 // nearest MC 0, three hops from MC 3
		}
		touchN(g, pg, core, 8)
		migs := g.Roll(func(PageID) int { return home })
		for _, m := range migs {
			home = m.To
			g.Completed(m.Page)
			total++
		}
	}
	// Without damping this would migrate every other window once the page
	// leaves MC 0. With CooldownWindows=3, at most every 4th window can.
	if max := windows/(spec.CooldownWindows+1) + 1; total > max {
		t.Errorf("ping-pong: %d migrations in %d windows, want <= %d", total, windows, max)
	}
	if total == 0 {
		t.Error("ping-pong: no migrations at all; the engine never engaged")
	}
}

// TestMigratorAlternatingWindowsNeverConfirm pins the confirmation rule:
// a pattern that flips its pull every single window — each window valid on
// its own — never produces a migration, because no decision survives two
// consecutive windows.
func TestMigratorAlternatingWindowsNeverConfirm(t *testing.T) {
	spec := MigrationSpec{HotThreshold: 4, WindowCycles: 100, ShootdownCycles: 1}
	g := NewMigrator(spec, 8, nearestByMod, distByMod)
	pg := PageID{VPage: 4}
	for w := 0; w < 16; w++ {
		core := 6 // nearest MC 2, two hops gained from home 0
		if w%2 == 1 {
			core = 7 // nearest MC 3, three hops gained from home 0
		}
		touchN(g, pg, core, 8)
		if migs := g.Roll(homeAt(0)); len(migs) != 0 {
			t.Fatalf("window %d: rotating pattern migrated: %+v", w, migs)
		}
	}
}

func TestMigratorZeroWindowNeverRolls(t *testing.T) {
	// WindowCycles=0 means the driver never calls Roll; the engine contract
	// is just that Touch stays cheap and side-effect-free. Pin that a Roll,
	// if forced, still migrates nothing when nothing crossed the threshold.
	g := NewMigrator(MigrationSpec{HotThreshold: 16, WindowCycles: 0, ShootdownCycles: 1}, 8, nearestByMod, distByMod)
	touchN(g, PageID{VPage: 1}, 5, 15)
	if migs := g.Roll(homeAt(0)); len(migs) != 0 {
		t.Fatalf("zero-window roll migrated: %+v", migs)
	}
}

func TestParseMigrationSpec(t *testing.T) {
	cases := []struct {
		in      string
		want    *MigrationSpec
		wantErr bool
	}{
		{in: "", want: nil},
		{in: "off", want: nil},
		{in: "on", want: &MigrationSpec{HotThreshold: 16, WindowCycles: 4096, CooldownWindows: 2, CopyFlits: 0, ShootdownCycles: 64, ClusterPages: 4}},
		{in: "h8w512c1f16t32", want: &MigrationSpec{HotThreshold: 8, WindowCycles: 512, CooldownWindows: 1, CopyFlits: 16, ShootdownCycles: 32}},
		{in: "h1w0c0f0t0", want: &MigrationSpec{HotThreshold: 1}},
		{in: "x8w512c1f16t32", wantErr: true}, // bad prefix
		{in: "h8w512", wantErr: true},         // truncated
		{in: "h8w512c1f16t", wantErr: true},   // empty field
		{in: "h0w512c1f16t32", wantErr: true}, // threshold < 1
		{in: "h8w-1c1f16t32", wantErr: true},  // negative window
		{in: "h8w512c-1f0t0", wantErr: true},  // negative cooldown
		{in: "h8w512c1f16t32g4", want: &MigrationSpec{HotThreshold: 8, WindowCycles: 512, CooldownWindows: 1, CopyFlits: 16, ShootdownCycles: 32, ClusterPages: 4}},
		{in: "h8w512c1f16t32g1", wantErr: true},  // g1 renders as the 5-field form
		{in: "h8w512c1f16t32g0", wantErr: true},  // g0 likewise
		{in: "h+8w512c1f16t32", wantErr: true},   // non-canonical numeral
		{in: "h08w512c1f16t32", wantErr: true},   // non-canonical numeral
		{in: "h8w0512c1f16t32", wantErr: true},   // non-canonical numeral
		{in: "h8w512c1f16t32g04", wantErr: true}, // non-canonical numeral
		{in: " h8w512c1f16t32", wantErr: true},   // leading junk
		{in: "h8w512c1f16t32 ", wantErr: true},   // trailing junk
	}
	for _, c := range cases {
		got, err := ParseMigrationSpec(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseMigrationSpec(%q) = %+v, want error", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseMigrationSpec(%q): %v", c.in, err)
			continue
		}
		if (got == nil) != (c.want == nil) || (got != nil && *got != *c.want) {
			t.Errorf("ParseMigrationSpec(%q) = %+v, want %+v", c.in, got, c.want)
		}
		if got != nil {
			// The canonical form must round-trip.
			back, err := ParseMigrationSpec(got.String())
			if err != nil || *back != *got {
				t.Errorf("round-trip %q -> %q failed: %+v, %v", c.in, got.String(), back, err)
			}
		}
	}
}

func FuzzParseMigrationSpec(f *testing.F) {
	f.Add("on")
	f.Add("off")
	f.Add("h16w1024c2f0t64")
	f.Add("h8w512c1f16t32")
	f.Add("h-1w1c1f1t1")
	f.Add("hw512c1f16t32")
	f.Add("h99999999999999999999w1c1f1t1")
	f.Add("h16w4096c2f0t64g4")
	f.Add("h16w1024c2f0t64g1")
	f.Add("h+16w1024c2f0t64")
	f.Add("h016w1024c2f0t64")
	f.Fuzz(func(t *testing.T, s string) {
		sp, err := ParseMigrationSpec(s)
		if err != nil {
			if sp != nil {
				t.Fatalf("ParseMigrationSpec(%q) returned both a spec and an error", s)
			}
			return
		}
		if sp == nil {
			if s != "" && s != "off" {
				t.Fatalf("ParseMigrationSpec(%q) = nil, nil for a non-disable form", s)
			}
			return
		}
		if err := sp.Validate(); err != nil {
			t.Fatalf("ParseMigrationSpec(%q) accepted an invalid spec: %v", s, err)
		}
		// The canonical rendering must parse back to the same spec.
		canon := sp.String()
		back, err := ParseMigrationSpec(canon)
		if err != nil || back == nil || *back != *sp {
			t.Fatalf("canonical %q of %q does not round-trip: %+v, %v", canon, s, back, err)
		}
		if strings.ContainsAny(canon, ", =") {
			t.Fatalf("canonical form %q contains job-ID delimiter characters", canon)
		}
	})
}

func TestRemapMovesPageAndRecyclesFrame(t *testing.T) {
	as := NewAddressSpace(pageCfg(), 0, NewInterleavedPolicy(4))
	// Touch 8 pages: round-robin homes them MC 0..3,0..3.
	for i := int64(0); i < 8; i++ {
		as.Translate(i*4096, 0, -1)
	}
	if mc, ok := as.PageMC(0); !ok || mc != 0 {
		t.Fatalf("PageMC(0) = %d,%v, want 0,true", mc, ok)
	}
	p0 := as.Translate(100, 0, -1)

	from, ok := as.Remap(0, 2)
	if !ok || from != 0 {
		t.Fatalf("Remap(0, 2) = %d,%v, want 0,true", from, ok)
	}
	if mc, _ := as.PageMC(0); mc != 2 {
		t.Fatalf("after remap PageMC(0) = %d, want 2", mc)
	}
	p1 := as.Translate(100, 0, -1)
	if p1 == p0 {
		t.Fatal("translation unchanged after remap")
	}
	if mc := as.MCOf(p1); mc != 2 {
		t.Fatalf("remapped address on MC %d, want 2", mc)
	}
	if err := as.VerifyBijection(); err != nil {
		t.Fatal(err)
	}

	// Untouched page, no-op target, and live counts.
	if _, ok := as.Remap(99, 1); ok {
		t.Error("Remap of an untouched page succeeded")
	}
	if _, ok := as.Remap(0, 2); ok {
		t.Error("Remap onto the current home succeeded")
	}
	if as.AllocOf(0) != 1 || as.AllocOf(2) != 3 {
		t.Errorf("live counts MC0=%d MC2=%d, want 1 and 3", as.AllocOf(0), as.AllocOf(2))
	}

	// The freed MC0 frame must be recycled by the next MC0 allocation
	// before the heap grows.
	next0 := as.nextOf[0]
	p8 := as.Translate(8*4096, 0, 0) // round-robin policy is at MC 0 again
	if mc := as.MCOf(p8); mc != 0 {
		t.Fatalf("page 8 on MC %d, want 0", mc)
	}
	if as.nextOf[0] != next0 {
		t.Errorf("heap grew (cursor %d -> %d) instead of recycling the freed frame", next0, as.nextOf[0])
	}
	if p8/4096 != p0/4096 {
		t.Errorf("recycled frame %d, want the freed frame %d", p8/4096, p0/4096)
	}
	if err := as.VerifyBijection(); err != nil {
		t.Fatal(err)
	}
}

func TestRemapHonorsCapacity(t *testing.T) {
	cfg := pageCfg()
	cfg.PagesPerMC = 2
	as := NewAddressSpace(cfg, 0, NewInterleavedPolicy(4))
	for i := int64(0); i < 8; i++ { // fills every controller to capacity
		as.Translate(i*4096, 0, -1)
	}
	if _, ok := as.Remap(0, 1); ok {
		t.Fatal("Remap into a full controller succeeded")
	}
	// Free a slot on MC1 by moving one of its pages away... but MC2 is full
	// too, so first check the refusal is symmetric, then lift the cap.
	as.cfg.PagesPerMC = 3
	if _, ok := as.Remap(0, 1); !ok {
		t.Fatal("Remap refused below capacity")
	}
	if err := as.VerifyBijection(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotRestoreCarriesFreeLists(t *testing.T) {
	as := NewAddressSpace(pageCfg(), 0, NewInterleavedPolicy(4))
	for i := int64(0); i < 8; i++ {
		as.Translate(i*4096, 0, -1)
	}
	as.Remap(0, 2) // MC0 gains a free-listed frame
	snap := as.Snapshot()

	// Diverge the source: recycle the freed frame.
	as.Translate(8*4096, 0, -1)
	if err := as.VerifyBijection(); err != nil {
		t.Fatal(err)
	}

	fresh := NewAddressSpace(pageCfg(), 0, NewInterleavedPolicy(4))
	fresh.Restore(snap)
	if err := fresh.VerifyBijection(); err != nil {
		t.Fatalf("restored space: %v", err)
	}
	if mc, ok := fresh.PageMC(0); !ok || mc != 2 {
		t.Fatalf("restored PageMC(0) = %d,%v, want 2,true", mc, ok)
	}
	// The restored space must replay the same recycling decision.
	pSrc := as.Translate(8*4096, 0, -1)
	pRestored := fresh.Translate(8*4096, 0, -1)
	if pSrc != pRestored {
		t.Errorf("restored allocation diverged: %d vs %d", pRestored, pSrc)
	}
	if err := fresh.VerifyBijection(); err != nil {
		t.Fatal(err)
	}
}

func TestFirstTouchNearestPolicy(t *testing.T) {
	cfg := pageCfg()
	as := NewAddressSpace(cfg, 0, &FirstTouchNearestPolicy{NearestMC: nearestByMod})
	for core := 0; core < 8; core++ {
		p := as.Translate(int64(core)*4096, core, -1)
		if mc := as.MCOf(p); mc != core%4 {
			t.Errorf("core %d's page on MC %d, want %d", core, mc, core%4)
		}
	}
	_ = layout.PageInterleave // keep the import tied to pageCfg's intent
}

// TestMigratorClusterGranularity pins the cluster decision unit (spec field
// g<pages>): touches aggregate at the aligned cluster key, a triggering
// cluster migrates as one unit with Pages set to the extent, distinct
// clusters never pool their heat, and a phase-style hot-set handoff moves
// the newly hot cluster without disturbing the cooled one.
func TestMigratorClusterGranularity(t *testing.T) {
	spec4 := MigrationSpec{HotThreshold: 16, WindowCycles: 100, ShootdownCycles: 1, ClusterPages: 4}

	// touchSpread lands n touches per member page of the aligned 4-page
	// cluster at base — individually below threshold, collectively above.
	touchSpread := func(g *Migrator, base int64, core, n int) {
		for v := base; v < base+4; v++ {
			touchN(g, PageID{App: 0, VPage: v}, core, n)
		}
	}

	t.Run("touches aggregate at the cluster key", func(t *testing.T) {
		g := NewMigrator(spec4, 8, nearestByMod, distByMod)
		for w := 0; w < 2; w++ {
			touchSpread(g, 4, 7, 4) // 4 per page = 16 on the cluster, threshold met
			migs := g.Roll(homeAt(0))
			if w == 0 {
				if len(migs) != 0 {
					t.Fatalf("unconfirmed first window migrated: %+v", migs)
				}
				continue
			}
			if len(migs) != 1 {
				t.Fatalf("got %d migrations, want 1: %+v", len(migs), migs)
			}
			m := migs[0]
			if m.Page.VPage != 4 || m.Pages != 4 || m.To != 3 || m.Dominant != 7 {
				t.Errorf("migration %+v, want cluster base 4 extent 4 -> MC3 dominated by core 7", m)
			}
		}
	})

	t.Run("dominance ties at the cluster resolve to the lowest core", func(t *testing.T) {
		g := NewMigrator(spec4, 8, nearestByMod, distByMod)
		for w := 0; w < 2; w++ {
			touchSpread(g, 4, 7, 4) // nearest MC 3
			touchSpread(g, 4, 3, 4) // nearest MC 3, the lowest tied core
			migs := g.Roll(homeAt(0))
			if w == 1 {
				if len(migs) != 1 || migs[0].Dominant != 3 {
					t.Fatalf("got %+v, want one migration dominated by core 3", migs)
				}
			}
		}
	})

	t.Run("distinct clusters never pool their heat", func(t *testing.T) {
		g := NewMigrator(spec4, 8, nearestByMod, distByMod)
		for w := 0; w < 2; w++ {
			// 8 + 8 touches, but vpage 3 belongs to cluster 0 and vpage 4 to
			// cluster 4: neither decision unit reaches the threshold of 16.
			touchN(g, PageID{App: 0, VPage: 3}, 7, 8)
			touchN(g, PageID{App: 0, VPage: 4}, 7, 8)
			if migs := g.Roll(homeAt(0)); len(migs) != 0 {
				t.Fatalf("window %d: sub-threshold clusters migrated: %+v", w, migs)
			}
		}
	})

	t.Run("single-page engine does not aggregate", func(t *testing.T) {
		spec1 := spec4
		spec1.ClusterPages = 1
		g := NewMigrator(spec1, 8, nearestByMod, distByMod)
		for w := 0; w < 2; w++ {
			touchSpread(g, 4, 7, 4) // 4 per page: every page below threshold
			if migs := g.Roll(homeAt(0)); len(migs) != 0 {
				t.Fatalf("window %d: g=1 pooled cluster heat: %+v", w, migs)
			}
		}
		// The same heat concentrated on one page fires, with extent 1.
		for w := 0; w < 2; w++ {
			touchN(g, PageID{App: 0, VPage: 7}, 7, 16)
			migs := g.Roll(homeAt(0))
			if w == 1 && (len(migs) != 1 || migs[0].Page.VPage != 7 || migs[0].Pages != 1) {
				t.Fatalf("got %+v, want one single-page migration of vpage 7", migs)
			}
		}
	})

	t.Run("phase boundary hands off between clusters", func(t *testing.T) {
		spec := spec4
		spec.HotThreshold = 8
		g := NewMigrator(spec, 8, nearestByMod, distByMod)
		homes := map[int64]int{0: 0, 4: 0} // cluster base -> current MC
		curMC := func(p PageID) int { return homes[p.VPage] }

		// Phase 1: core 7 hammers cluster 0 for two windows; it moves to MC3.
		for w := 0; w < 2; w++ {
			touchSpread(g, 0, 7, 2)
			migs := g.Roll(curMC)
			if w == 1 {
				if len(migs) != 1 || migs[0].Page.VPage != 0 || migs[0].To != 3 {
					t.Fatalf("phase 1: got %+v, want cluster 0 -> MC3", migs)
				}
				homes[0] = 3
				g.Completed(migs[0].Page)
			}
		}

		// Phase 2: the hot set shifts to cluster 4. The cooled cluster 0 is
		// untouched and must stay put; the new hot cluster migrates.
		for w := 0; w < 2; w++ {
			touchSpread(g, 4, 7, 2)
			migs := g.Roll(curMC)
			if w == 0 && len(migs) != 0 {
				t.Fatalf("phase 2 first window migrated unconfirmed: %+v", migs)
			}
			if w == 1 {
				if len(migs) != 1 || migs[0].Page.VPage != 4 || migs[0].To != 3 {
					t.Fatalf("phase 2: got %+v, want cluster 4 -> MC3 and nothing else", migs)
				}
			}
		}
	})
}
