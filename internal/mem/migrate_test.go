package mem

import (
	"strings"
	"testing"

	"offchip/internal/layout"
)

// nearestByMod is the test stand-in for the mesh's nearest-controller map:
// core c is nearest controller c mod 4.
func nearestByMod(core int) int { return core % 4 }

// touchN records n touches of the page by the core.
func touchN(g *Migrator, pg PageID, core, n int) {
	for i := 0; i < n; i++ {
		g.Touch(pg, core)
	}
}

// homeAt returns a curMC resolver pinning every page to the one controller.
func homeAt(mc int) func(PageID) int { return func(PageID) int { return mc } }

func TestMigratorEdgeCases(t *testing.T) {
	pg := PageID{App: 0, VPage: 7}
	cases := []struct {
		name  string
		spec  MigrationSpec
		touch func(g *Migrator) // fills the open window
		home  int               // the page's current controller
		want  int               // expected migrations out of one Roll
		to    int               // expected target (when want > 0)
		dom   int               // expected dominant core (when want > 0)
	}{
		{
			name:  "threshold exactly met",
			spec:  MigrationSpec{HotThreshold: 16, WindowCycles: 100, ShootdownCycles: 1},
			touch: func(g *Migrator) { touchN(g, pg, 5, 16) },
			home:  0, want: 1, to: 1, dom: 5,
		},
		{
			name:  "one touch short of threshold",
			spec:  MigrationSpec{HotThreshold: 16, WindowCycles: 100, ShootdownCycles: 1},
			touch: func(g *Migrator) { touchN(g, pg, 5, 15) },
			home:  0, want: 0,
		},
		{
			name: "dominant-accessor tie keeps the lowest core",
			spec: MigrationSpec{HotThreshold: 4, WindowCycles: 100, ShootdownCycles: 1},
			touch: func(g *Migrator) {
				touchN(g, pg, 6, 4) // nearest MC 2; ties resolve to core 3 below
				touchN(g, pg, 3, 4) // nearest MC 3, the lowest tied core ID
			},
			home: 0, want: 1, to: 3, dom: 3,
		},
		{
			name:  "already home: no migration",
			spec:  MigrationSpec{HotThreshold: 4, WindowCycles: 100, ShootdownCycles: 1},
			touch: func(g *Migrator) { touchN(g, pg, 5, 8) },
			home:  1, want: 0, // core 5's nearest MC is already the home
		},
		{
			name:  "effectively infinite threshold is inert",
			spec:  MigrationSpec{HotThreshold: 1 << 30, WindowCycles: 100, ShootdownCycles: 1},
			touch: func(g *Migrator) { touchN(g, pg, 5, 1000) },
			home:  0, want: 0,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g := NewMigrator(c.spec, 8, nearestByMod)
			c.touch(g)
			migs := g.Roll(homeAt(c.home))
			if len(migs) != c.want {
				t.Fatalf("Roll produced %d migrations, want %d: %+v", len(migs), c.want, migs)
			}
			if c.want == 0 {
				return
			}
			m := migs[0]
			if m.Page != pg || m.From != c.home || m.To != c.to || m.Dominant != c.dom {
				t.Errorf("migration %+v, want page %v %d->%d dominant %d", m, pg, c.home, c.to, c.dom)
			}
		})
	}
}

func TestMigratorSharersAscending(t *testing.T) {
	g := NewMigrator(MigrationSpec{HotThreshold: 4, WindowCycles: 100, ShootdownCycles: 1}, 8, nearestByMod)
	pg := PageID{VPage: 1}
	touchN(g, pg, 7, 1)
	touchN(g, pg, 5, 4)
	touchN(g, pg, 0, 2)
	migs := g.Roll(homeAt(0))
	if len(migs) != 1 {
		t.Fatalf("got %d migrations, want 1", len(migs))
	}
	want := []int{0, 5, 7}
	got := migs[0].Sharers
	if len(got) != len(want) {
		t.Fatalf("sharers %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sharers %v, want %v", got, want)
		}
	}
}

func TestMigratorPendingFreezesPage(t *testing.T) {
	spec := MigrationSpec{HotThreshold: 4, WindowCycles: 100, CooldownWindows: 0, ShootdownCycles: 1}
	g := NewMigrator(spec, 8, nearestByMod)
	pg := PageID{VPage: 3}
	touchN(g, pg, 5, 8)
	if migs := g.Roll(homeAt(0)); len(migs) != 1 {
		t.Fatalf("window 0: got %d migrations, want 1", len(migs))
	}
	// The remap is still in flight: the page stays hot but must not
	// re-trigger until Completed.
	touchN(g, pg, 6, 8)
	if migs := g.Roll(homeAt(0)); len(migs) != 0 {
		t.Fatalf("pending page re-triggered: %+v", migs)
	}
	g.Completed(pg)
	touchN(g, pg, 6, 8)
	if migs := g.Roll(homeAt(1)); len(migs) != 1 || migs[0].To != 2 {
		t.Fatalf("after Completed: got %+v, want one migration to MC 2", migs)
	}
}

func TestMigratorCooldownExpiresOnWindowBoundary(t *testing.T) {
	spec := MigrationSpec{HotThreshold: 4, WindowCycles: 100, CooldownWindows: 2, ShootdownCycles: 1}
	g := NewMigrator(spec, 8, nearestByMod)
	pg := PageID{VPage: 9}
	hot := func(core int) { touchN(g, pg, core, 8) }

	hot(5)
	if migs := g.Roll(homeAt(0)); len(migs) != 1 { // closes window 0, cooldown until window 3
		t.Fatalf("window 0: %d migrations, want 1", len(migs))
	}
	g.Completed(pg)
	for w := 1; w <= 2; w++ { // windows 1 and 2 are cooling
		hot(6)
		if migs := g.Roll(homeAt(1)); len(migs) != 0 {
			t.Fatalf("window %d: migrated during cooldown: %+v", w, migs)
		}
	}
	hot(6) // window 3: cooldown expired exactly at this boundary
	if migs := g.Roll(homeAt(1)); len(migs) != 1 || migs[0].To != 2 {
		t.Fatalf("window 3: got %+v, want one migration to MC 2", migs)
	}
}

// TestMigratorPingPongStabilizes drives the worst case — two accessors on
// opposite controllers alternating dominance every window — and checks the
// cooldown bounds the migration rate to at most one per cooldown period,
// rather than one per window.
func TestMigratorPingPongStabilizes(t *testing.T) {
	const windows = 24
	spec := MigrationSpec{HotThreshold: 4, WindowCycles: 100, CooldownWindows: 3, ShootdownCycles: 1}
	g := NewMigrator(spec, 8, nearestByMod)
	pg := PageID{VPage: 2}
	home := 0
	total := 0
	for w := 0; w < windows; w++ {
		core := 1 // nearest MC 1
		if w%2 == 1 {
			core = 2 // nearest MC 2
		}
		touchN(g, pg, core, 8)
		migs := g.Roll(func(PageID) int { return home })
		for _, m := range migs {
			home = m.To
			g.Completed(m.Page)
			total++
		}
	}
	// Without damping this would migrate every window once the page leaves
	// MC 0. With CooldownWindows=3, at most every 4th window can migrate.
	if max := windows/(spec.CooldownWindows+1) + 1; total > max {
		t.Errorf("ping-pong: %d migrations in %d windows, want <= %d", total, windows, max)
	}
	if total == 0 {
		t.Error("ping-pong: no migrations at all; the engine never engaged")
	}
}

func TestMigratorZeroWindowNeverRolls(t *testing.T) {
	// WindowCycles=0 means the driver never calls Roll; the engine contract
	// is just that Touch stays cheap and side-effect-free. Pin that a Roll,
	// if forced, still migrates nothing when nothing crossed the threshold.
	g := NewMigrator(MigrationSpec{HotThreshold: 16, WindowCycles: 0, ShootdownCycles: 1}, 8, nearestByMod)
	touchN(g, PageID{VPage: 1}, 5, 15)
	if migs := g.Roll(homeAt(0)); len(migs) != 0 {
		t.Fatalf("zero-window roll migrated: %+v", migs)
	}
}

func TestParseMigrationSpec(t *testing.T) {
	cases := []struct {
		in      string
		want    *MigrationSpec
		wantErr bool
	}{
		{in: "", want: nil},
		{in: "off", want: nil},
		{in: "on", want: &MigrationSpec{HotThreshold: 16, WindowCycles: 1024, CooldownWindows: 2, CopyFlits: 0, ShootdownCycles: 64}},
		{in: "h8w512c1f16t32", want: &MigrationSpec{HotThreshold: 8, WindowCycles: 512, CooldownWindows: 1, CopyFlits: 16, ShootdownCycles: 32}},
		{in: "h1w0c0f0t0", want: &MigrationSpec{HotThreshold: 1}},
		{in: "x8w512c1f16t32", wantErr: true}, // bad prefix
		{in: "h8w512", wantErr: true},         // truncated
		{in: "h8w512c1f16t", wantErr: true},   // empty field
		{in: "h0w512c1f16t32", wantErr: true}, // threshold < 1
		{in: "h8w-1c1f16t32", wantErr: true},  // negative window
		{in: "h8w512c-1f0t0", wantErr: true},  // negative cooldown
	}
	for _, c := range cases {
		got, err := ParseMigrationSpec(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseMigrationSpec(%q) = %+v, want error", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseMigrationSpec(%q): %v", c.in, err)
			continue
		}
		if (got == nil) != (c.want == nil) || (got != nil && *got != *c.want) {
			t.Errorf("ParseMigrationSpec(%q) = %+v, want %+v", c.in, got, c.want)
		}
		if got != nil {
			// The canonical form must round-trip.
			back, err := ParseMigrationSpec(got.String())
			if err != nil || *back != *got {
				t.Errorf("round-trip %q -> %q failed: %+v, %v", c.in, got.String(), back, err)
			}
		}
	}
}

func FuzzParseMigrationSpec(f *testing.F) {
	f.Add("on")
	f.Add("off")
	f.Add("h16w1024c2f0t64")
	f.Add("h8w512c1f16t32")
	f.Add("h-1w1c1f1t1")
	f.Add("hw512c1f16t32")
	f.Add("h99999999999999999999w1c1f1t1")
	f.Fuzz(func(t *testing.T, s string) {
		sp, err := ParseMigrationSpec(s)
		if err != nil {
			if sp != nil {
				t.Fatalf("ParseMigrationSpec(%q) returned both a spec and an error", s)
			}
			return
		}
		if sp == nil {
			if s != "" && s != "off" {
				t.Fatalf("ParseMigrationSpec(%q) = nil, nil for a non-disable form", s)
			}
			return
		}
		if err := sp.Validate(); err != nil {
			t.Fatalf("ParseMigrationSpec(%q) accepted an invalid spec: %v", s, err)
		}
		// The canonical rendering must parse back to the same spec.
		canon := sp.String()
		back, err := ParseMigrationSpec(canon)
		if err != nil || back == nil || *back != *sp {
			t.Fatalf("canonical %q of %q does not round-trip: %+v, %v", canon, s, back, err)
		}
		if strings.ContainsAny(canon, ", =") {
			t.Fatalf("canonical form %q contains job-ID delimiter characters", canon)
		}
	})
}

func TestRemapMovesPageAndRecyclesFrame(t *testing.T) {
	as := NewAddressSpace(pageCfg(), 0, NewInterleavedPolicy(4))
	// Touch 8 pages: round-robin homes them MC 0..3,0..3.
	for i := int64(0); i < 8; i++ {
		as.Translate(i*4096, 0, -1)
	}
	if mc, ok := as.PageMC(0); !ok || mc != 0 {
		t.Fatalf("PageMC(0) = %d,%v, want 0,true", mc, ok)
	}
	p0 := as.Translate(100, 0, -1)

	from, ok := as.Remap(0, 2)
	if !ok || from != 0 {
		t.Fatalf("Remap(0, 2) = %d,%v, want 0,true", from, ok)
	}
	if mc, _ := as.PageMC(0); mc != 2 {
		t.Fatalf("after remap PageMC(0) = %d, want 2", mc)
	}
	p1 := as.Translate(100, 0, -1)
	if p1 == p0 {
		t.Fatal("translation unchanged after remap")
	}
	if mc := as.MCOf(p1); mc != 2 {
		t.Fatalf("remapped address on MC %d, want 2", mc)
	}
	if err := as.VerifyBijection(); err != nil {
		t.Fatal(err)
	}

	// Untouched page, no-op target, and live counts.
	if _, ok := as.Remap(99, 1); ok {
		t.Error("Remap of an untouched page succeeded")
	}
	if _, ok := as.Remap(0, 2); ok {
		t.Error("Remap onto the current home succeeded")
	}
	if as.AllocOf(0) != 1 || as.AllocOf(2) != 3 {
		t.Errorf("live counts MC0=%d MC2=%d, want 1 and 3", as.AllocOf(0), as.AllocOf(2))
	}

	// The freed MC0 frame must be recycled by the next MC0 allocation
	// before the heap grows.
	next0 := as.nextOf[0]
	p8 := as.Translate(8*4096, 0, 0) // round-robin policy is at MC 0 again
	if mc := as.MCOf(p8); mc != 0 {
		t.Fatalf("page 8 on MC %d, want 0", mc)
	}
	if as.nextOf[0] != next0 {
		t.Errorf("heap grew (cursor %d -> %d) instead of recycling the freed frame", next0, as.nextOf[0])
	}
	if p8/4096 != p0/4096 {
		t.Errorf("recycled frame %d, want the freed frame %d", p8/4096, p0/4096)
	}
	if err := as.VerifyBijection(); err != nil {
		t.Fatal(err)
	}
}

func TestRemapHonorsCapacity(t *testing.T) {
	cfg := pageCfg()
	cfg.PagesPerMC = 2
	as := NewAddressSpace(cfg, 0, NewInterleavedPolicy(4))
	for i := int64(0); i < 8; i++ { // fills every controller to capacity
		as.Translate(i*4096, 0, -1)
	}
	if _, ok := as.Remap(0, 1); ok {
		t.Fatal("Remap into a full controller succeeded")
	}
	// Free a slot on MC1 by moving one of its pages away... but MC2 is full
	// too, so first check the refusal is symmetric, then lift the cap.
	as.cfg.PagesPerMC = 3
	if _, ok := as.Remap(0, 1); !ok {
		t.Fatal("Remap refused below capacity")
	}
	if err := as.VerifyBijection(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotRestoreCarriesFreeLists(t *testing.T) {
	as := NewAddressSpace(pageCfg(), 0, NewInterleavedPolicy(4))
	for i := int64(0); i < 8; i++ {
		as.Translate(i*4096, 0, -1)
	}
	as.Remap(0, 2) // MC0 gains a free-listed frame
	snap := as.Snapshot()

	// Diverge the source: recycle the freed frame.
	as.Translate(8*4096, 0, -1)
	if err := as.VerifyBijection(); err != nil {
		t.Fatal(err)
	}

	fresh := NewAddressSpace(pageCfg(), 0, NewInterleavedPolicy(4))
	fresh.Restore(snap)
	if err := fresh.VerifyBijection(); err != nil {
		t.Fatalf("restored space: %v", err)
	}
	if mc, ok := fresh.PageMC(0); !ok || mc != 2 {
		t.Fatalf("restored PageMC(0) = %d,%v, want 2,true", mc, ok)
	}
	// The restored space must replay the same recycling decision.
	pSrc := as.Translate(8*4096, 0, -1)
	pRestored := fresh.Translate(8*4096, 0, -1)
	if pSrc != pRestored {
		t.Errorf("restored allocation diverged: %d vs %d", pRestored, pSrc)
	}
	if err := fresh.VerifyBijection(); err != nil {
		t.Fatal(err)
	}
}

func TestFirstTouchNearestPolicy(t *testing.T) {
	cfg := pageCfg()
	as := NewAddressSpace(cfg, 0, &FirstTouchNearestPolicy{NearestMC: nearestByMod})
	for core := 0; core < 8; core++ {
		p := as.Translate(int64(core)*4096, core, -1)
		if mc := as.MCOf(p); mc != core%4 {
			t.Errorf("core %d's page on MC %d, want %d", core, mc, core%4)
		}
	}
	_ = layout.PageInterleave // keep the import tied to pageCfg's intent
}
