// Package mesh provides the 2-D mesh coordinate arithmetic shared by the
// layout pass, the NoC model, and the manycore simulator: node coordinates,
// core-ID numbering (row-major), and Manhattan (hop) distance under XY
// dimension-order routing.
package mesh

import "fmt"

// Node is a router/core position on the mesh.
type Node struct {
	X, Y int
}

func (n Node) String() string { return fmt.Sprintf("(%d,%d)", n.X, n.Y) }

// Dist returns the Manhattan distance between two nodes: the number of links
// a packet traverses between them under XY routing.
func Dist(a, b Node) int {
	return abs(a.X-b.X) + abs(a.Y-b.Y)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// CoreID returns the row-major core ID of a node on a width-meshX mesh.
func CoreID(n Node, meshX int) int { return n.Y*meshX + n.X }

// CoordOf returns the node of a row-major core ID on a width-meshX mesh.
func CoordOf(id, meshX int) Node { return Node{X: id % meshX, Y: id / meshX} }

// XYPath appends to dst the sequence of nodes a packet visits travelling
// from src to dst under XY routing (X first, then Y), excluding src and
// including the destination. An empty result means src == dst.
func XYPath(src, dst Node) []Node {
	var path []Node
	cur := src
	for cur.X != dst.X {
		if cur.X < dst.X {
			cur.X++
		} else {
			cur.X--
		}
		path = append(path, cur)
	}
	for cur.Y != dst.Y {
		if cur.Y < dst.Y {
			cur.Y++
		} else {
			cur.Y--
		}
		path = append(path, cur)
	}
	return path
}
