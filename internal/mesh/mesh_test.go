package mesh

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDist(t *testing.T) {
	cases := []struct {
		a, b Node
		want int
	}{
		{Node{0, 0}, Node{0, 0}, 0},
		{Node{0, 0}, Node{3, 0}, 3},
		{Node{0, 0}, Node{0, 4}, 4},
		{Node{1, 2}, Node{4, 6}, 7},
		{Node{4, 6}, Node{1, 2}, 7}, // symmetric
	}
	for _, c := range cases {
		if got := Dist(c.a, c.b); got != c.want {
			t.Errorf("Dist(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCoreIDRoundTrip(t *testing.T) {
	for id := 0; id < 64; id++ {
		n := CoordOf(id, 8)
		if got := CoreID(n, 8); got != id {
			t.Errorf("round trip %d -> %v -> %d", id, n, got)
		}
	}
	if (CoordOf(9, 8) != Node{X: 1, Y: 1}) {
		t.Errorf("CoordOf(9) = %v", CoordOf(9, 8))
	}
}

func TestXYPath(t *testing.T) {
	// X first, then Y.
	path := XYPath(Node{0, 0}, Node{2, 1})
	want := []Node{{1, 0}, {2, 0}, {2, 1}}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Errorf("path[%d] = %v, want %v", i, path[i], want[i])
		}
	}
	if len(XYPath(Node{3, 3}, Node{3, 3})) != 0 {
		t.Error("self path not empty")
	}
	// Negative directions.
	back := XYPath(Node{2, 1}, Node{0, 0})
	if len(back) != 3 || back[2] != (Node{0, 0}) {
		t.Errorf("reverse path = %v", back)
	}
}

func TestPropPathLengthEqualsDist(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := Node{X: r.Intn(8), Y: r.Intn(8)}
		b := Node{X: r.Intn(8), Y: r.Intn(8)}
		path := XYPath(a, b)
		if len(path) != Dist(a, b) {
			return false
		}
		// Each step moves to an adjacent node; the path ends at b.
		prev := a
		for _, n := range path {
			if Dist(prev, n) != 1 {
				return false
			}
			prev = n
		}
		return len(path) == 0 || path[len(path)-1] == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNodeString(t *testing.T) {
	if got := (Node{X: 3, Y: 5}).String(); got != "(3,5)" {
		t.Errorf("String = %q", got)
	}
}
