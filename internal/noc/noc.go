// Package noc models the two-dimensional mesh network-on-chip: XY
// dimension-order routing over point-to-point links with per-link FIFO
// contention, a per-hop pipeline latency, and hop/latency accounting. It is
// a packet-level model: a message reserves each link of its path in order
// at send time, which captures the first-order contention behavior the
// paper measures (off-chip and on-chip traffic fighting over the same
// links) at a fraction of the cost of flit-level simulation.
//
// All statistics publish through the observability registry: the Figure 15
// hop histograms are registry histograms, and every directed link carries a
// traversal counter that feeds the -report heat grid. When a tracer is
// attached, each message emits a send event and each link traversal a
// per-link event.
package noc

import (
	"fmt"

	"offchip/internal/engine"
	"offchip/internal/mesh"
	"offchip/internal/obs"
)

// Config sets the network parameters (Table 1: 16-byte links, 2-cycle
// router pipeline, 4-cycle per-hop latency, XY routing).
type Config struct {
	MeshX, MeshY int
	// HopLatency is the pipeline latency a flit experiences per hop.
	HopLatency int64
	// LinkOccupancy is how long one message occupies each link (serialization
	// time of a cache-line-sized packet over a 16 B link).
	LinkOccupancy int64
	// Contention disables link reservation when false (the ablation knob:
	// an ideal network with pure distance latency).
	Contention bool
	// Obs supplies the metrics registry and tracer. Nil gets the network a
	// private registry, so standalone use stays fully observable.
	Obs *obs.Observer
	// Probe, when set, observes every completed transit — the invariant
	// checker's routing and zero-load-latency hook (internal/check
	// implements it). Nil costs one check per message.
	Probe Probe
}

// Probe observes network activity for the invariant checker.
type Probe interface {
	// Transit fires once per message after its links are booked: depart is
	// the send time, arrive the delivery time, hops the XY route length.
	Transit(src, dst mesh.Node, class Class, depart, arrive int64, hops int)
}

// DefaultConfig returns the paper's Table 1 network for the given mesh.
func DefaultConfig(meshX, meshY int) Config {
	return Config{
		MeshX: meshX, MeshY: meshY,
		HopLatency:    4,
		LinkOccupancy: 1,
		Contention:    true,
	}
}

// Class tags a message for the statistics split the paper reports:
// on-chip accesses (cache-to-cache, L1-to-L2-bank, directory traffic)
// versus off-chip accesses (to or from a memory controller).
type Class int

const (
	OnChip Class = iota
	OffChip
)

func (c Class) String() string {
	if c == OnChip {
		return "on-chip"
	}
	return "off-chip"
}

// Network is the mesh NoC.
type Network struct {
	cfg   Config
	obs   *obs.Observer
	links []engine.Resource // directed links, indexed by linkIndex

	// Aggregate stats, split by message class; mirrored into the registry
	// counters below.
	Messages [2]int64 // message count
	Hops     [2]int64 // total hops
	Latency  [2]int64 // total network cycles (incl. contention stalls)

	// Registry-backed statistics: the Figure 15 hop histograms and the
	// per-link traversal counters behind the -report heat grid.
	hopHist   [2]*obs.Histogram
	msgCount  [2]*obs.Counter
	hopCount  [2]*obs.Counter
	latCount  [2]*obs.Counter
	linkCount []*obs.Counter
	linkName  []string // precomputed "(x,y)->(x,y)" for trace events
}

// New builds a network. It panics on a non-positive mesh.
func New(cfg Config) *Network {
	if cfg.MeshX <= 0 || cfg.MeshY <= 0 {
		panic(fmt.Sprintf("noc: invalid mesh %dx%d", cfg.MeshX, cfg.MeshY))
	}
	// The XY diameter: a minimal route crosses at most (MeshX−1)+(MeshY−1)
	// links, so the hop histogram needs exactly diameter+1 buckets (0..diam).
	// Sizing it larger would leave permanently-empty rows in the Figure 15
	// CDF tables (and hide routing bugs that overshoot the diameter in the
	// overflow bucket instead of failing the conservation check).
	maxHops := cfg.MeshX + cfg.MeshY - 2
	o := obs.OrNew(cfg.Obs)
	n := &Network{
		cfg:       cfg,
		obs:       o,
		links:     make([]engine.Resource, cfg.MeshX*cfg.MeshY*4),
		linkCount: make([]*obs.Counter, cfg.MeshX*cfg.MeshY*4),
		linkName:  make([]string, cfg.MeshX*cfg.MeshY*4),
	}
	for c := 0; c < 2; c++ {
		label := "class=" + Class(c).String()
		n.hopHist[c] = o.Reg.Histogram("noc", "hops", obs.LinearBuckets(0, 1, maxHops+1), label)
		n.msgCount[c] = o.Reg.Counter("noc", "messages", label)
		n.hopCount[c] = o.Reg.Counter("noc", "hops_total", label)
		n.latCount[c] = o.Reg.Counter("noc", "latency_cycles", label)
	}
	dirDelta := [4]mesh.Node{{X: 1}, {X: -1}, {Y: 1}, {Y: -1}}
	for y := 0; y < cfg.MeshY; y++ {
		for x := 0; x < cfg.MeshX; x++ {
			from := mesh.Node{X: x, Y: y}
			base := mesh.CoreID(from, cfg.MeshX) * 4
			for d, delta := range dirDelta {
				to := mesh.Node{X: x + delta.X, Y: y + delta.Y}
				if to.X < 0 || to.X >= cfg.MeshX || to.Y < 0 || to.Y >= cfg.MeshY {
					continue // mesh edge: no link in this direction
				}
				n.linkCount[base+d] = o.Reg.Counter("noc", "link_traversals",
					"from="+from.String(), "to="+to.String())
				n.linkName[base+d] = from.String() + "->" + to.String()
			}
		}
	}
	return n
}

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

const (
	dirEast = iota
	dirWest
	dirSouth
	dirNorth
)

// linkIndex identifies the directed link leaving `from` toward `to`
// (adjacent nodes).
func (n *Network) linkIndex(from, to mesh.Node) int {
	base := mesh.CoreID(from, n.cfg.MeshX) * 4
	switch {
	case to.X == from.X+1:
		return base + dirEast
	case to.X == from.X-1:
		return base + dirWest
	case to.Y == from.Y+1:
		return base + dirSouth
	case to.Y == from.Y-1:
		return base + dirNorth
	default:
		panic(fmt.Sprintf("noc: %v and %v are not adjacent", from, to))
	}
}

// Transit sends a message from src to dst at time now, reserving each link
// of the XY route in order, and returns the arrival time and hop count.
// A zero-hop transit (src == dst) arrives immediately.
func (n *Network) Transit(now int64, src, dst mesh.Node, class Class) (arrival int64, hops int) {
	path := mesh.XYPath(src, dst)
	tr := n.obs.Tracer
	t := now
	prev := src
	for _, next := range path {
		li := n.linkIndex(prev, next)
		n.linkCount[li].Inc()
		if n.cfg.Contention {
			start := n.links[li].Reserve(t, n.cfg.LinkOccupancy)
			if tr.Enabled() {
				tr.Emit(start, "noc", "link", n.linkName[li], n.cfg.LinkOccupancy+n.cfg.HopLatency)
			}
			// The serialization time the message holds the link is part of
			// its own delivery time, not only a stall imposed on followers:
			// the tail flit lands LinkOccupancy after the link grant. This
			// makes a quiet contended network slower than the ideal one by
			// exactly LinkOccupancy per hop (the check package's zero-load
			// oracle pins that identity).
			t = start + n.cfg.LinkOccupancy + n.cfg.HopLatency
		} else {
			if tr.Enabled() {
				tr.Emit(t, "noc", "link", n.linkName[li], n.cfg.HopLatency)
			}
			t += n.cfg.HopLatency
		}
		prev = next
	}
	hops = len(path)
	n.Messages[class]++
	n.Hops[class] += int64(hops)
	n.Latency[class] += t - now
	n.msgCount[class].Inc()
	n.hopCount[class].Add(int64(hops))
	n.latCount[class].Add(t - now)
	n.hopHist[class].Observe(int64(hops))
	if n.cfg.Probe != nil {
		n.cfg.Probe.Transit(src, dst, class, now, t, hops)
	}
	if tr.Enabled() {
		tr.Emit(now, "noc", "msg", src.String()+"->"+dst.String(), t-now,
			"class="+class.String(), fmt.Sprintf("hops=%d", hops))
	}
	return t, hops
}

// AvgLatency returns the mean network latency of the class (0 if unused).
func (n *Network) AvgLatency(class Class) float64 {
	if n.Messages[class] == 0 {
		return 0
	}
	return float64(n.Latency[class]) / float64(n.Messages[class])
}

// AvgHops returns the mean hop count of the class (0 if unused).
func (n *Network) AvgHops(class Class) float64 {
	if n.Messages[class] == 0 {
		return 0
	}
	return float64(n.Hops[class]) / float64(n.Messages[class])
}

// HopCDF returns the cumulative fraction of the class's messages that
// traverse x or fewer links, for x = 0..len-1 (Figure 15). It is rendered
// from the registry histogram.
func (n *Network) HopCDF(class Class) []float64 {
	cdf := n.hopHist[class].CDF()
	if len(cdf) == 0 {
		// Under a null observer (quiet sampled-window runs) the histogram
		// was never registered; there is no distribution to render.
		return nil
	}
	// The histogram carries an overflow bucket beyond the 0..maxHops
	// bounds; XY routing can never exceed the mesh diameter, so fold it
	// away to preserve the historical shape (one entry per hop count).
	return cdf[:len(cdf)-1]
}

// HopHistogram returns the registry histogram of the class's hop counts.
func (n *Network) HopHistogram(class Class) *obs.Histogram { return n.hopHist[class] }

// LinkTraversals returns the traversal count of the directed link from→to.
func (n *Network) LinkTraversals(from, to mesh.Node) int64 {
	return n.linkCount[n.linkIndex(from, to)].Value()
}

// ResetStats clears the accumulated statistics (links keep their horizon).
func (n *Network) ResetStats() {
	for c := 0; c < 2; c++ {
		n.Messages[c], n.Hops[c], n.Latency[c] = 0, 0, 0
		n.hopHist[c].Reset()
		n.msgCount[c].Reset()
		n.hopCount[c].Reset()
		n.latCount[c].Reset()
	}
	for _, lc := range n.linkCount {
		lc.Reset()
	}
}
