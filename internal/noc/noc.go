// Package noc models the two-dimensional mesh network-on-chip: XY
// dimension-order routing over point-to-point links with per-link FIFO
// contention, a per-hop pipeline latency, and hop/latency accounting. It is
// a packet-level model: a message reserves each link of its path in order
// at send time, which captures the first-order contention behavior the
// paper measures (off-chip and on-chip traffic fighting over the same
// links) at a fraction of the cost of flit-level simulation.
package noc

import (
	"fmt"

	"offchip/internal/engine"
	"offchip/internal/mesh"
)

// Config sets the network parameters (Table 1: 16-byte links, 2-cycle
// router pipeline, 4-cycle per-hop latency, XY routing).
type Config struct {
	MeshX, MeshY int
	// HopLatency is the pipeline latency a flit experiences per hop.
	HopLatency int64
	// LinkOccupancy is how long one message occupies each link (serialization
	// time of a cache-line-sized packet over a 16 B link).
	LinkOccupancy int64
	// Contention disables link reservation when false (the ablation knob:
	// an ideal network with pure distance latency).
	Contention bool
}

// DefaultConfig returns the paper's Table 1 network for the given mesh.
func DefaultConfig(meshX, meshY int) Config {
	return Config{
		MeshX: meshX, MeshY: meshY,
		HopLatency:    4,
		LinkOccupancy: 1,
		Contention:    true,
	}
}

// Class tags a message for the statistics split the paper reports:
// on-chip accesses (cache-to-cache, L1-to-L2-bank, directory traffic)
// versus off-chip accesses (to or from a memory controller).
type Class int

const (
	OnChip Class = iota
	OffChip
)

func (c Class) String() string {
	if c == OnChip {
		return "on-chip"
	}
	return "off-chip"
}

// Network is the mesh NoC.
type Network struct {
	cfg   Config
	links []engine.Resource // directed links, indexed by linkIndex

	// Stats, split by message class.
	Messages [2]int64   // message count
	Hops     [2]int64   // total hops
	Latency  [2]int64   // total network cycles (incl. contention stalls)
	HopsHist [2][]int64 // messages by hop count
}

// New builds a network. It panics on a non-positive mesh.
func New(cfg Config) *Network {
	if cfg.MeshX <= 0 || cfg.MeshY <= 0 {
		panic(fmt.Sprintf("noc: invalid mesh %dx%d", cfg.MeshX, cfg.MeshY))
	}
	maxHops := cfg.MeshX + cfg.MeshY // diameter + 1 slack
	n := &Network{
		cfg:   cfg,
		links: make([]engine.Resource, cfg.MeshX*cfg.MeshY*4),
	}
	for c := range n.HopsHist {
		n.HopsHist[c] = make([]int64, maxHops+1)
	}
	return n
}

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

const (
	dirEast = iota
	dirWest
	dirSouth
	dirNorth
)

// linkIndex identifies the directed link leaving `from` toward `to`
// (adjacent nodes).
func (n *Network) linkIndex(from, to mesh.Node) int {
	base := mesh.CoreID(from, n.cfg.MeshX) * 4
	switch {
	case to.X == from.X+1:
		return base + dirEast
	case to.X == from.X-1:
		return base + dirWest
	case to.Y == from.Y+1:
		return base + dirSouth
	case to.Y == from.Y-1:
		return base + dirNorth
	default:
		panic(fmt.Sprintf("noc: %v and %v are not adjacent", from, to))
	}
}

// Transit sends a message from src to dst at time now, reserving each link
// of the XY route in order, and returns the arrival time and hop count.
// A zero-hop transit (src == dst) arrives immediately.
func (n *Network) Transit(now int64, src, dst mesh.Node, class Class) (arrival int64, hops int) {
	path := mesh.XYPath(src, dst)
	t := now
	prev := src
	for _, next := range path {
		if n.cfg.Contention {
			li := n.linkIndex(prev, next)
			start := n.links[li].Reserve(t, n.cfg.LinkOccupancy)
			t = start + n.cfg.HopLatency
		} else {
			t += n.cfg.HopLatency
		}
		prev = next
	}
	hops = len(path)
	n.Messages[class]++
	n.Hops[class] += int64(hops)
	n.Latency[class] += t - now
	if hops < len(n.HopsHist[class]) {
		n.HopsHist[class][hops]++
	} else {
		n.HopsHist[class][len(n.HopsHist[class])-1]++
	}
	return t, hops
}

// AvgLatency returns the mean network latency of the class (0 if unused).
func (n *Network) AvgLatency(class Class) float64 {
	if n.Messages[class] == 0 {
		return 0
	}
	return float64(n.Latency[class]) / float64(n.Messages[class])
}

// AvgHops returns the mean hop count of the class (0 if unused).
func (n *Network) AvgHops(class Class) float64 {
	if n.Messages[class] == 0 {
		return 0
	}
	return float64(n.Hops[class]) / float64(n.Messages[class])
}

// HopCDF returns the cumulative fraction of the class's messages that
// traverse x or fewer links, for x = 0..len-1 (Figure 15).
func (n *Network) HopCDF(class Class) []float64 {
	hist := n.HopsHist[class]
	out := make([]float64, len(hist))
	var cum, total int64
	for _, c := range hist {
		total += c
	}
	if total == 0 {
		return out
	}
	for i, c := range hist {
		cum += c
		out[i] = float64(cum) / float64(total)
	}
	return out
}

// ResetStats clears the accumulated statistics (links keep their horizon).
func (n *Network) ResetStats() {
	for c := 0; c < 2; c++ {
		n.Messages[c], n.Hops[c], n.Latency[c] = 0, 0, 0
		for i := range n.HopsHist[c] {
			n.HopsHist[c][i] = 0
		}
	}
}
