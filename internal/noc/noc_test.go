package noc

import (
	"testing"

	"offchip/internal/mesh"
)

func TestTransitLatencyUncontended(t *testing.T) {
	n := New(DefaultConfig(8, 8))
	src, dst := mesh.Node{X: 0, Y: 0}, mesh.Node{X: 3, Y: 2}
	arr, hops := n.Transit(0, src, dst, OffChip)
	if hops != 5 {
		t.Errorf("hops = %d, want 5", hops)
	}
	if arr != 5*4 {
		t.Errorf("arrival = %d, want 20 (5 hops × 4 cycles)", arr)
	}
	if n.Messages[OffChip] != 1 || n.Hops[OffChip] != 5 {
		t.Errorf("stats: %d msgs %d hops", n.Messages[OffChip], n.Hops[OffChip])
	}
}

func TestTransitZeroHop(t *testing.T) {
	n := New(DefaultConfig(4, 4))
	arr, hops := n.Transit(7, mesh.Node{X: 1, Y: 1}, mesh.Node{X: 1, Y: 1}, OnChip)
	if arr != 7 || hops != 0 {
		t.Errorf("arrival=%d hops=%d", arr, hops)
	}
}

func TestContentionDelays(t *testing.T) {
	cfg := DefaultConfig(4, 4)
	n := New(cfg)
	src, dst := mesh.Node{X: 0, Y: 0}, mesh.Node{X: 1, Y: 0}
	// Two messages over the same link at the same time: the second is
	// delayed by the link occupancy.
	a1, _ := n.Transit(0, src, dst, OnChip)
	a2, _ := n.Transit(0, src, dst, OnChip)
	if a1 != cfg.HopLatency {
		t.Errorf("first arrival = %d", a1)
	}
	if a2 != cfg.LinkOccupancy+cfg.HopLatency {
		t.Errorf("second arrival = %d, want %d", a2, cfg.LinkOccupancy+cfg.HopLatency)
	}

	// With contention disabled, both arrive together.
	cfg.Contention = false
	n2 := New(cfg)
	b1, _ := n2.Transit(0, src, dst, OnChip)
	b2, _ := n2.Transit(0, src, dst, OnChip)
	if b1 != b2 {
		t.Errorf("ideal network diverged: %d vs %d", b1, b2)
	}
}

func TestXYRoutingDisjointPathsDontContend(t *testing.T) {
	n := New(DefaultConfig(4, 4))
	a1, _ := n.Transit(0, mesh.Node{X: 0, Y: 0}, mesh.Node{X: 3, Y: 0}, OnChip)
	a2, _ := n.Transit(0, mesh.Node{X: 0, Y: 3}, mesh.Node{X: 3, Y: 3}, OnChip)
	if a1 != a2 {
		t.Errorf("disjoint paths contended: %d vs %d", a1, a2)
	}
	// Opposite directions of the same physical channel are separate links.
	n2 := New(DefaultConfig(4, 4))
	c1, _ := n2.Transit(0, mesh.Node{X: 0, Y: 0}, mesh.Node{X: 1, Y: 0}, OnChip)
	c2, _ := n2.Transit(0, mesh.Node{X: 1, Y: 0}, mesh.Node{X: 0, Y: 0}, OnChip)
	if c1 != c2 {
		t.Errorf("reverse direction contended: %d vs %d", c1, c2)
	}
}

func TestHopCDF(t *testing.T) {
	n := New(DefaultConfig(8, 8))
	n.Transit(0, mesh.Node{}, mesh.Node{X: 1, Y: 0}, OffChip) // 1 hop
	n.Transit(0, mesh.Node{}, mesh.Node{X: 2, Y: 0}, OffChip) // 2 hops
	n.Transit(0, mesh.Node{}, mesh.Node{X: 2, Y: 2}, OffChip) // 4 hops
	cdf := n.HopCDF(OffChip)
	if cdf[0] != 0 {
		t.Errorf("cdf[0] = %v", cdf[0])
	}
	if cdf[1] < 0.33 || cdf[1] > 0.34 {
		t.Errorf("cdf[1] = %v", cdf[1])
	}
	if cdf[4] != 1 || cdf[len(cdf)-1] != 1 {
		t.Errorf("cdf tail = %v", cdf)
	}
	// Unused class: all zeros.
	for _, v := range n.HopCDF(OnChip) {
		if v != 0 {
			t.Error("empty class CDF nonzero")
		}
	}
}

func TestAvgStatsAndReset(t *testing.T) {
	n := New(DefaultConfig(8, 8))
	n.Transit(0, mesh.Node{}, mesh.Node{X: 2, Y: 0}, OnChip)
	if got := n.AvgHops(OnChip); got != 2 {
		t.Errorf("AvgHops = %v", got)
	}
	if got := n.AvgLatency(OnChip); got != 8 {
		t.Errorf("AvgLatency = %v", got)
	}
	n.ResetStats()
	if n.Messages[OnChip] != 0 || n.AvgHops(OnChip) != 0 {
		t.Error("reset incomplete")
	}
}

func TestClassString(t *testing.T) {
	if OnChip.String() != "on-chip" || OffChip.String() != "off-chip" {
		t.Error("class strings")
	}
}
