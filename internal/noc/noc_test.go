package noc

import (
	"testing"

	"offchip/internal/mesh"
)

func TestTransitLatencyUncontended(t *testing.T) {
	n := New(DefaultConfig(8, 8))
	src, dst := mesh.Node{X: 0, Y: 0}, mesh.Node{X: 3, Y: 2}
	arr, hops := n.Transit(0, src, dst, OffChip)
	if hops != 5 {
		t.Errorf("hops = %d, want 5", hops)
	}
	// Per hop: 1 cycle of link serialization + 4 cycles of router pipeline.
	if arr != 5*(4+1) {
		t.Errorf("arrival = %d, want 25 (5 hops × (4+1) cycles)", arr)
	}
	if n.Messages[OffChip] != 1 || n.Hops[OffChip] != 5 {
		t.Errorf("stats: %d msgs %d hops", n.Messages[OffChip], n.Hops[OffChip])
	}
}

// TestSerializationInArrival pins the satellite fix: the cycles a message
// holds each link must reach its arrival time, so a zero-load contended
// network is slower than the ideal (contention-free) one by exactly
// LinkOccupancy per hop.
func TestSerializationInArrival(t *testing.T) {
	cfg := DefaultConfig(4, 4)
	src, dst := mesh.Node{X: 0, Y: 0}, mesh.Node{X: 2, Y: 1}
	real, hops := New(cfg).Transit(100, src, dst, OnChip)
	cfg.Contention = false
	ideal, _ := New(cfg).Transit(100, src, dst, OnChip)
	if want := ideal + int64(hops)*cfg.LinkOccupancy; real != want {
		t.Errorf("contended zero-load arrival = %d, want ideal %d + %d×occupancy = %d",
			real, ideal, hops, want)
	}
}

func TestTransitZeroHop(t *testing.T) {
	n := New(DefaultConfig(4, 4))
	arr, hops := n.Transit(7, mesh.Node{X: 1, Y: 1}, mesh.Node{X: 1, Y: 1}, OnChip)
	if arr != 7 || hops != 0 {
		t.Errorf("arrival=%d hops=%d", arr, hops)
	}
}

func TestContentionDelays(t *testing.T) {
	cfg := DefaultConfig(4, 4)
	n := New(cfg)
	src, dst := mesh.Node{X: 0, Y: 0}, mesh.Node{X: 1, Y: 0}
	// Two messages over the same link at the same time: the second is
	// delayed by the link occupancy.
	a1, _ := n.Transit(0, src, dst, OnChip)
	a2, _ := n.Transit(0, src, dst, OnChip)
	if a1 != cfg.LinkOccupancy+cfg.HopLatency {
		t.Errorf("first arrival = %d, want %d", a1, cfg.LinkOccupancy+cfg.HopLatency)
	}
	if a2 != 2*cfg.LinkOccupancy+cfg.HopLatency {
		t.Errorf("second arrival = %d, want %d", a2, 2*cfg.LinkOccupancy+cfg.HopLatency)
	}

	// With contention disabled, both arrive together.
	cfg.Contention = false
	n2 := New(cfg)
	b1, _ := n2.Transit(0, src, dst, OnChip)
	b2, _ := n2.Transit(0, src, dst, OnChip)
	if b1 != b2 {
		t.Errorf("ideal network diverged: %d vs %d", b1, b2)
	}
}

func TestXYRoutingDisjointPathsDontContend(t *testing.T) {
	n := New(DefaultConfig(4, 4))
	a1, _ := n.Transit(0, mesh.Node{X: 0, Y: 0}, mesh.Node{X: 3, Y: 0}, OnChip)
	a2, _ := n.Transit(0, mesh.Node{X: 0, Y: 3}, mesh.Node{X: 3, Y: 3}, OnChip)
	if a1 != a2 {
		t.Errorf("disjoint paths contended: %d vs %d", a1, a2)
	}
	// Opposite directions of the same physical channel are separate links.
	n2 := New(DefaultConfig(4, 4))
	c1, _ := n2.Transit(0, mesh.Node{X: 0, Y: 0}, mesh.Node{X: 1, Y: 0}, OnChip)
	c2, _ := n2.Transit(0, mesh.Node{X: 1, Y: 0}, mesh.Node{X: 0, Y: 0}, OnChip)
	if c1 != c2 {
		t.Errorf("reverse direction contended: %d vs %d", c1, c2)
	}
}

func TestHopCDF(t *testing.T) {
	n := New(DefaultConfig(8, 8))
	n.Transit(0, mesh.Node{}, mesh.Node{X: 1, Y: 0}, OffChip) // 1 hop
	n.Transit(0, mesh.Node{}, mesh.Node{X: 2, Y: 0}, OffChip) // 2 hops
	n.Transit(0, mesh.Node{}, mesh.Node{X: 2, Y: 2}, OffChip) // 4 hops
	cdf := n.HopCDF(OffChip)
	if cdf[0] != 0 {
		t.Errorf("cdf[0] = %v", cdf[0])
	}
	if cdf[1] < 0.33 || cdf[1] > 0.34 {
		t.Errorf("cdf[1] = %v", cdf[1])
	}
	if cdf[4] != 1 || cdf[len(cdf)-1] != 1 {
		t.Errorf("cdf tail = %v", cdf)
	}
	// Unused class: all zeros.
	for _, v := range n.HopCDF(OnChip) {
		if v != 0 {
			t.Error("empty class CDF nonzero")
		}
	}
}

// TestHopCDFLength pins the Figure 15 shape: exactly one entry per
// reachable hop count, 0 through the XY diameter (MeshX−1)+(MeshY−1).
func TestHopCDFLength(t *testing.T) {
	for _, tc := range []struct{ x, y, want int }{
		{8, 8, 15}, // diameter 14
		{4, 4, 7},  // diameter 6
		{4, 2, 5},  // diameter 4
		{1, 1, 1},  // single node: only 0 hops
	} {
		n := New(DefaultConfig(tc.x, tc.y))
		for _, class := range []Class{OnChip, OffChip} {
			if got := len(n.HopCDF(class)); got != tc.want {
				t.Errorf("%dx%d class %v: CDF has %d entries, want %d", tc.x, tc.y, class, got, tc.want)
			}
		}
		// The full corner-to-corner route must land in the last bucket, not
		// the folded-away overflow bucket.
		corner := mesh.Node{X: tc.x - 1, Y: tc.y - 1}
		n.Transit(0, mesh.Node{}, corner, OffChip)
		cdf := n.HopCDF(OffChip)
		if cdf[len(cdf)-1] != 1 {
			t.Errorf("%dx%d: diameter transit missing from CDF tail: %v", tc.x, tc.y, cdf)
		}
	}
}

func TestAvgStatsAndReset(t *testing.T) {
	n := New(DefaultConfig(8, 8))
	n.Transit(0, mesh.Node{}, mesh.Node{X: 2, Y: 0}, OnChip)
	if got := n.AvgHops(OnChip); got != 2 {
		t.Errorf("AvgHops = %v", got)
	}
	if got := n.AvgLatency(OnChip); got != 10 {
		t.Errorf("AvgLatency = %v, want 10 (2 hops × (4+1))", got)
	}
	n.ResetStats()
	if n.Messages[OnChip] != 0 || n.AvgHops(OnChip) != 0 {
		t.Error("reset incomplete")
	}
}

func TestClassString(t *testing.T) {
	if OnChip.String() != "on-chip" || OffChip.String() != "off-chip" {
		t.Error("class strings")
	}
}
