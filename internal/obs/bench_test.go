package obs

import (
	"io"
	"testing"
)

// BenchmarkTracerDisabled measures the nil-tracer fast path: the cost every
// instrumented site pays when tracing is off. The README's "Observing a
// run" section cites this guard; TestDisabledTracerOverhead asserts the
// documented < 5 ns/event budget.
func BenchmarkTracerDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(int64(i), "noc", "msg", "comp", 0)
	}
}

// BenchmarkTracerEnabledGuard measures the Enabled() guard hot paths use
// before building label strings.
func BenchmarkTracerEnabledGuard(b *testing.B) {
	var tr *Tracer
	n := 0
	for i := 0; i < b.N; i++ {
		if tr.Enabled() {
			n++
		}
	}
	if n != 0 {
		b.Fatal("nil tracer enabled")
	}
}

// BenchmarkCounterAdd measures the registry counter hot path (one atomic
// add), the cost every always-on metric pays.
func BenchmarkCounterAdd(b *testing.B) {
	reg := NewRegistry()
	c := reg.Counter("bench", "counter")
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkHistogramObserve measures a hop-histogram observation.
func BenchmarkHistogramObserve(b *testing.B) {
	reg := NewRegistry()
	h := reg.Histogram("bench", "hist", LinearBuckets(0, 1, 16))
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i & 15))
	}
}

// BenchmarkTracerRing measures the tracing-on path into a ring buffer (no
// serialization).
func BenchmarkTracerRing(b *testing.B) {
	tr := NewTracer(TracerOptions{Ring: 1 << 12})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(int64(i), "noc", "msg", "comp", 4)
	}
}

// BenchmarkTracerSampled measures the tracing-on path with 1-in-1024
// sampling to a discarded JSONL sink — the full-suite configuration.
func BenchmarkTracerSampled(b *testing.B) {
	tr := NewTracer(TracerOptions{JSONL: io.Discard, Sample: 1024})
	for i := 0; i < b.N; i++ {
		tr.Emit(int64(i), "noc", "msg", "comp", 4)
	}
}

// TestDisabledTracerOverhead is the overhead guard the issue and README
// reference: the disabled-tracer path must stay under 5 ns/event so that
// leaving instrumentation compiled in never slows a full-suite run. The
// bound is relaxed under -race, whose instrumentation dominates.
func TestDisabledTracerOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping overhead measurement in -short mode")
	}
	res := testing.Benchmark(BenchmarkTracerDisabled)
	ns := float64(res.T.Nanoseconds()) / float64(res.N)
	limit := 5.0
	if raceEnabled {
		limit = 200.0
	}
	t.Logf("disabled tracer: %.2f ns/event (limit %.0f)", ns, limit)
	if ns >= limit {
		t.Errorf("disabled tracer costs %.2f ns/event, budget is %.0f", ns, limit)
	}
	if res.AllocedBytesPerOp() != 0 {
		t.Errorf("disabled tracer allocates %d B/event", res.AllocedBytesPerOp())
	}
}
