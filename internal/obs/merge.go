package obs

import (
	"fmt"
	"sort"
)

// Registry merging is what makes sharded runs first-class: the parallel
// experiment runner gives every job a private registry (so concurrent
// simulations never contend or interleave), then folds all of them into one
// merged registry after the jobs finish. Merging in job order is
// deterministic — the merged snapshot of a parallel run is byte-identical
// to that of a sequential run over the same jobs.
//
// Merge semantics per metric kind:
//
//   - counters and gauges add;
//   - histograms add bucket-wise (bounds must match when keys collide);
//   - time-weighted gauges are *finalized* at the until time passed to the
//     merge — the integral is closed out over [0, until] and absorbed, so
//     Avg(until) on the merged gauge reproduces the source gauge's
//     time-average exactly.
//
// MergeScoped additionally rewrites every key with extra labels (e.g.
// job=<id>, run=optimized), keeping per-job values addressable in the
// merged view; Merge with no scope collapses same-keyed metrics across
// sources into aggregate totals.

// finalized returns the gauge's integral closed out at until (extending the
// current level), without mutating the gauge.
func (g *TimeWeighted) finalized(until int64) int64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if until < g.last {
		until = g.last
	}
	return g.integral + g.cur*(until-g.last)
}

// absorbIntegral adds a finalized integral covering [0, until] into the
// gauge without altering its current level.
func (g *TimeWeighted) absorbIntegral(integral, until int64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.integral += integral
	if until > g.last {
		g.last = until
	}
	g.mu.Unlock()
}

// absorb adds src's buckets into h. Bucket bounds must match.
func (h *Histogram) absorb(src *Histogram) {
	if h == nil || src == nil {
		return
	}
	if len(h.bounds) != len(src.bounds) {
		panic(fmt.Sprintf("obs: merging histograms with %d vs %d buckets", len(h.bounds), len(src.bounds)))
	}
	for i, b := range h.bounds {
		if b != src.bounds[i] {
			panic(fmt.Sprintf("obs: merging histograms with different bounds at %d (%d vs %d)", i, b, src.bounds[i]))
		}
	}
	for i := range src.counts {
		h.counts[i].Add(src.counts[i].Load())
	}
	h.sum.Add(src.sum.Load())
	h.total.Add(src.total.Load())
}

// sortedMetrics returns the registry's metrics in canonical key order.
func (r *Registry) sortedMetrics() []*metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	keys := make([]string, 0, len(r.metrics))
	for k := range r.metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*metric, len(keys))
	for i, k := range keys {
		out[i] = r.metrics[k]
	}
	return out
}

// MergeScoped folds every metric of src into r, adding the scope labels
// ("k=v" pairs) to each key. until is src's run end time, used to finalize
// time-weighted gauges (pass the run's ExecTime; 0 is fine when none are
// registered). src is not modified.
func (r *Registry) MergeScoped(src *Registry, until int64, scope ...string) {
	if r == nil || src == nil {
		return
	}
	for _, m := range src.sortedMetrics() {
		labels := make([]string, 0, len(m.labels)+len(scope))
		for k, v := range m.labels {
			labels = append(labels, k+"="+v)
		}
		labels = append(labels, scope...)
		switch m.kind {
		case "counter":
			r.Counter(m.component, m.name, labels...).Add(m.counter.Value())
		case "gauge":
			r.Gauge(m.component, m.name, labels...).Add(m.gauge.Value())
		case "timeweighted":
			r.TimeWeighted(m.component, m.name, labels...).absorbIntegral(m.tw.finalized(until), until)
		case "histogram":
			r.Histogram(m.component, m.name, m.hist.Bounds(), labels...).absorb(m.hist)
		}
	}
}

// Merge folds src into r without rescoping: same-keyed metrics aggregate.
func (r *Registry) Merge(src *Registry, until int64) {
	r.MergeScoped(src, until)
}
