package obs

import (
	"bytes"
	"testing"
)

// Satellite coverage for MergeScoped's edge cases: empty registries,
// duplicate scope labels, and associativity of chained merges.

func snapshotJSONL(t *testing.T, r *Registry, until int64) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := WriteJSONL(&b, r.Snapshot(until)); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

func TestMergeScopedEmptyRegistries(t *testing.T) {
	m := NewRegistry()
	m.MergeScoped(NewRegistry(), 0, "job=empty")
	if pts := m.Snapshot(0); len(pts) != 0 {
		t.Fatalf("merging an empty registry produced %d points", len(pts))
	}
	// An empty source must not disturb existing content either.
	m.Counter("sim", "accesses", "job=a").Add(5)
	before := snapshotJSONL(t, m, 0)
	m.MergeScoped(NewRegistry(), 0, "job=b")
	if !bytes.Equal(before, snapshotJSONL(t, m, 0)) {
		t.Fatal("empty merge changed the destination registry")
	}
}

func TestMergeScopedDuplicateJobLabels(t *testing.T) {
	src := NewRegistry()
	src.Counter("sim", "accesses").Add(3)
	src.Histogram("noc", "hops", []int64{0, 1}).Observe(1)

	m := NewRegistry()
	m.MergeScoped(src, 0, "job=x")
	m.MergeScoped(src, 0, "job=x") // same scope again: values accumulate
	if v := m.Counter("sim", "accesses", "job=x").Value(); v != 6 {
		t.Errorf("duplicate-scope counter = %d, want 6", v)
	}
	h := m.Histogram("noc", "hops", []int64{0, 1}, "job=x")
	if h.Total() != 2 {
		t.Errorf("duplicate-scope histogram total = %d, want 2", h.Total())
	}
}

func TestMergeThenMergeAssociative(t *testing.T) {
	mk := func(job string, n int64) *Registry {
		r := NewRegistry()
		r.Counter("sim", "accesses").Add(n)
		r.Histogram("noc", "hops", []int64{0, 1, 2}).Observe(n % 3)
		r.TimeWeighted("dram", "queue_len").Set(0, n)
		return r
	}
	a, b, c := mk("a", 1), mk("b", 2), mk("c", 3)

	// (a ⊕ b) ⊕ c: merge a and b into an intermediate, then that plus c
	// into the final registry.
	left := NewRegistry()
	left.MergeScoped(a, 10, "job=a")
	left.MergeScoped(b, 10, "job=b")
	lhs := NewRegistry()
	lhs.Merge(left, 10)
	lhs.MergeScoped(c, 10, "job=c")

	// a ⊕ (b ⊕ c).
	right := NewRegistry()
	right.MergeScoped(b, 10, "job=b")
	right.MergeScoped(c, 10, "job=c")
	rhs := NewRegistry()
	rhs.MergeScoped(a, 10, "job=a")
	rhs.Merge(right, 10)

	l, r := snapshotJSONL(t, lhs, 10), snapshotJSONL(t, rhs, 10)
	if !bytes.Equal(l, r) {
		t.Fatalf("merge is not associative:\nlhs:\n%s\nrhs:\n%s", l, r)
	}
}
