package obs

import (
	"reflect"
	"testing"
)

func TestMergeScopedKeepsPerJobValues(t *testing.T) {
	a := NewRegistry()
	a.Counter("sim", "accesses").Add(10)
	a.Histogram("noc", "hops", []int64{0, 1, 2}).Observe(1)
	a.TimeWeighted("dram", "queue_len", "mc=0").Set(0, 2) // level 2 over [0, 100]

	b := NewRegistry()
	b.Counter("sim", "accesses").Add(32)
	b.Histogram("noc", "hops", []int64{0, 1, 2}).Observe(2)
	b.TimeWeighted("dram", "queue_len", "mc=0").Set(0, 4) // level 4 over [0, 50]

	m := NewRegistry()
	m.MergeScoped(a, 100, "job=a")
	m.MergeScoped(b, 50, "job=b")

	if v := m.Counter("sim", "accesses", "job=a").Value(); v != 10 {
		t.Errorf("job=a counter = %d", v)
	}
	if v := m.Counter("sim", "accesses", "job=b").Value(); v != 32 {
		t.Errorf("job=b counter = %d", v)
	}
	// Time-weighted gauges reproduce each job's time-average at that job's
	// own end time.
	if avg := m.TimeWeighted("dram", "queue_len", "mc=0", "job=a").Avg(100); avg != 2 {
		t.Errorf("job=a avg = %v, want 2", avg)
	}
	if avg := m.TimeWeighted("dram", "queue_len", "mc=0", "job=b").Avg(50); avg != 4 {
		t.Errorf("job=b avg = %v, want 4", avg)
	}
	if c := m.Histogram("noc", "hops", []int64{0, 1, 2}, "job=b").Counts(); c[2] != 1 {
		t.Errorf("job=b hist counts = %v", c)
	}
}

func TestMergeUnscopedAggregates(t *testing.T) {
	a := NewRegistry()
	a.Counter("sim", "accesses").Add(3)
	a.Histogram("noc", "hops", []int64{0, 1}).Observe(0)
	b := NewRegistry()
	b.Counter("sim", "accesses").Add(4)
	b.Histogram("noc", "hops", []int64{0, 1}).Observe(1)

	m := NewRegistry()
	m.Merge(a, 0)
	m.Merge(b, 0)
	if v := m.Counter("sim", "accesses").Value(); v != 7 {
		t.Errorf("aggregate counter = %d, want 7", v)
	}
	h := m.Histogram("noc", "hops", []int64{0, 1})
	if h.Total() != 2 || h.Counts()[0] != 1 || h.Counts()[1] != 1 {
		t.Errorf("aggregate hist = %v total %d", h.Counts(), h.Total())
	}
}

func TestMergeOrderIndependentForDisjointScopes(t *testing.T) {
	build := func(order []string) []Point {
		regs := map[string]*Registry{}
		for _, name := range []string{"x", "y"} {
			r := NewRegistry()
			r.Counter("sim", "accesses").Add(int64(len(name)))
			r.TimeWeighted("dram", "queue_len").Set(0, 1)
			regs[name] = r
		}
		m := NewRegistry()
		for _, name := range order {
			m.MergeScoped(regs[name], 10, "job="+name)
		}
		return m.Snapshot(10)
	}
	if !reflect.DeepEqual(build([]string{"x", "y"}), build([]string{"y", "x"})) {
		t.Error("scoped merge depends on merge order")
	}
}

func TestMergeHistogramBoundsMismatchPanics(t *testing.T) {
	a := NewRegistry()
	a.Histogram("noc", "hops", []int64{0, 1}).Observe(0)
	m := NewRegistry()
	m.Histogram("noc", "hops", []int64{0, 5}).Observe(0)
	defer func() {
		if recover() == nil {
			t.Error("mismatched bounds merged silently")
		}
	}()
	m.Merge(a, 0)
}
