package obs

// FromPoints reconstructs a registry from a Snapshot, inverting it exactly:
// the rebuilt registry's Snapshot (at the same until) is deep-equal to the
// input, and merging it with MergeScoped produces the same result as merging
// the original registry. This is the receiving half of the sweep service's
// worker protocol — a worker process snapshots its per-run registries, ships
// the points as JSON, and the server rebuilds them for incremental
// aggregation into the merged sweep view.
//
// Reconstruction per metric kind:
//
//   - counters and gauges restore Value;
//   - time-weighted gauges restore the full (integral, last, current) state
//     from Point.Integral/Last/Value, so any later finalization — at any
//     until — matches the source gauge exactly;
//   - histograms restore bucket bounds, per-bucket counts, sum, and total.
func FromPoints(points []Point) *Registry {
	r := NewRegistry()
	for i := range points {
		p := &points[i]
		labels := make([]string, 0, len(p.Labels))
		for k, v := range p.Labels {
			labels = append(labels, k+"="+v)
		}
		switch p.Type {
		case "counter":
			r.Counter(p.Component, p.Name, labels...).Add(p.Value)
		case "gauge":
			r.Gauge(p.Component, p.Name, labels...).Add(p.Value)
		case "timeweighted":
			tw := r.TimeWeighted(p.Component, p.Name, labels...)
			tw.mu.Lock()
			tw.integral = p.Integral
			tw.last = p.Last
			tw.cur = p.Value
			tw.mu.Unlock()
		case "histogram":
			h := r.Histogram(p.Component, p.Name, p.Buckets, labels...)
			for j, c := range p.Counts {
				if j < len(h.counts) {
					h.counts[j].Add(c)
				}
			}
			h.sum.Add(p.Sum)
			h.total.Add(p.Count)
		}
	}
	return r
}
