package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

// populated returns a registry exercising every metric kind, shaped like the
// per-run registries a sweep job produces.
func populated() *Registry {
	r := NewRegistry()
	r.Counter("noc", "link_traversals", "x=1", "y=2").Add(42)
	r.Counter("dram", "requests", "mc=0").Add(7)
	r.Gauge("sim", "outstanding").Set(3)
	tw := r.TimeWeighted("dram", "queue_len", "mc=1")
	tw.Set(10, 4)
	tw.Set(30, 2)
	h := r.Histogram("noc", "hops", []int64{1, 2, 4, 8}, "kind=offchip")
	for _, v := range []int64{1, 2, 3, 5, 9, 100} {
		h.Observe(v)
	}
	return r
}

// TestFromPointsInvertsSnapshot pins the round trip: Snapshot → JSON →
// FromPoints → Snapshot must be byte-identical, including the time-weighted
// gauge's full state (not just its finalized average).
func TestFromPointsInvertsSnapshot(t *testing.T) {
	src := populated()
	const until = int64(100)
	snap := src.Snapshot(until)

	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var wire []Point
	if err := json.Unmarshal(raw, &wire); err != nil {
		t.Fatal(err)
	}
	rebuilt := FromPoints(wire)
	got := rebuilt.Snapshot(until)
	if !reflect.DeepEqual(got, snap) {
		t.Fatalf("rebuilt snapshot differs:\n got %+v\nwant %+v", got, snap)
	}

	// The round trip must hold at a different finalization horizon too —
	// that's what proves the raw (integral, last, cur) state survived rather
	// than just the until-specific average.
	other := src.Snapshot(250)
	if !reflect.DeepEqual(rebuilt.Snapshot(250), other) {
		t.Fatal("rebuilt snapshot differs at a different horizon")
	}
}

// TestFromPointsMergeEquivalence is the property the sweep service relies
// on: merging a reconstructed registry is indistinguishable from merging the
// original.
func TestFromPointsMergeEquivalence(t *testing.T) {
	src := populated()
	const until = int64(64)

	direct := NewRegistry()
	direct.MergeScoped(src, until, "job=j-1", "run=optimized")

	rebuilt := FromPoints(src.Snapshot(until))
	viaWire := NewRegistry()
	viaWire.MergeScoped(rebuilt, until, "job=j-1", "run=optimized")

	var a, b bytes.Buffer
	if err := WriteJSONL(&a, direct.Snapshot(until)); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&b, viaWire.Snapshot(until)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("merged views differ:\n direct: %s\n wire:   %s", a.String(), b.String())
	}
}

// TestFromPointsEmptyAndUnknown: empty input yields an empty registry, and
// unknown point types are skipped rather than panicking (forward
// compatibility with newer writers).
func TestFromPointsEmptyAndUnknown(t *testing.T) {
	if n := len(FromPoints(nil).Snapshot(0)); n != 0 {
		t.Fatalf("empty input produced %d metrics", n)
	}
	r := FromPoints([]Point{{Component: "x", Name: "y", Type: "summary-from-the-future"}})
	if n := len(r.Snapshot(0)); n != 0 {
		t.Fatalf("unknown type produced %d metrics", n)
	}
}
