package obs

// Quantile estimation over fixed-bucket histograms. The profiler's p50/p95/
// p99 latency columns (internal/prof) and any dashboard that needs a
// percentile read it from here, so every consumer interpolates the same way
// and two renderings of one histogram can never disagree.

// ExponentialBuckets returns n bucket bounds start, start·factor,
// start·factor², … — the geometric ladder latency distributions want
// (cycle counts span four orders of magnitude between an L1 hit and a
// congested off-chip access).
func ExponentialBuckets(start, factor int64, n int) []int64 {
	if n <= 0 || start <= 0 || factor < 2 {
		panic("obs: exponential buckets need n > 0, start > 0, factor >= 2")
	}
	out := make([]int64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// QuantileFromBuckets returns the p-quantile (p in [0,1], clamped) of a
// bucketed distribution, linearly interpolated within the containing
// bucket. bounds are the bucket upper bounds; counts has one extra trailing
// element for the overflow bucket, whose observations are clamped to the
// last bound (the histogram records no upper edge for them). The first
// bucket interpolates from 0. An empty distribution yields 0.
func QuantileFromBuckets(bounds, counts []int64, p float64) float64 {
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 || len(bounds) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(total)
	var cum int64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		prev := float64(cum)
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(bounds) {
			break // overflow bucket: clamp to the last bound
		}
		hi := float64(bounds[i])
		lo := float64(0)
		if i > 0 {
			lo = float64(bounds[i-1])
		} else if hi < 0 {
			lo = hi
		}
		return lo + (hi-lo)*(rank-prev)/float64(c)
	}
	return float64(bounds[len(bounds)-1])
}

// Quantile returns the p-quantile of the observed distribution, linearly
// interpolated within the containing bucket (see QuantileFromBuckets).
// Nil-safe like every histogram method.
func (h *Histogram) Quantile(p float64) float64 {
	if h == nil {
		return 0
	}
	return QuantileFromBuckets(h.bounds, h.Counts(), p)
}

// NewHistogram returns a standalone histogram with the given bucket upper
// bounds, not attached to any registry — the shape profile snapshots use so
// they stay valid after the run's registry is gone.
func NewHistogram(bounds []int64) *Histogram { return newHistogram(bounds) }

// Clone returns an independent copy of the histogram.
func (h *Histogram) Clone() *Histogram {
	if h == nil {
		return nil
	}
	c := newHistogram(h.bounds)
	c.absorb(h)
	return c
}

// Absorb adds src's buckets into h. Bucket bounds must match; the exported
// face of the merge used by obs.MergeScoped.
func (h *Histogram) Absorb(src *Histogram) { h.absorb(src) }
