package obs

import (
	"reflect"
	"testing"
)

func TestExponentialBuckets(t *testing.T) {
	got := ExponentialBuckets(1, 2, 5)
	if !reflect.DeepEqual(got, []int64{1, 2, 4, 8, 16}) {
		t.Fatalf("ExponentialBuckets(1,2,5) = %v", got)
	}
	got = ExponentialBuckets(10, 10, 3)
	if !reflect.DeepEqual(got, []int64{10, 100, 1000}) {
		t.Fatalf("ExponentialBuckets(10,10,3) = %v", got)
	}
	for _, bad := range [][3]int64{{0, 2, 5}, {1, 1, 5}, {1, 2, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ExponentialBuckets(%v) did not panic", bad)
				}
			}()
			ExponentialBuckets(bad[0], bad[1], int(bad[2]))
		}()
	}
}

func TestQuantileInterpolation(t *testing.T) {
	h := NewHistogram([]int64{10, 20, 40})
	// 10 observations spread uniformly in (10, 20]: the second bucket.
	for i := 0; i < 10; i++ {
		h.Observe(15)
	}
	// Median rank 5 of 10 → halfway through the (10,20] bucket.
	if got := h.Quantile(0.5); got != 15 {
		t.Errorf("p50 = %v, want 15", got)
	}
	if got := h.Quantile(1.0); got != 20 {
		t.Errorf("p100 = %v, want 20 (bucket upper bound)", got)
	}
	// First bucket interpolates from zero.
	h2 := NewHistogram([]int64{10})
	h2.Observe(5)
	h2.Observe(5)
	if got := h2.Quantile(0.5); got != 5 {
		t.Errorf("single-bucket p50 = %v, want 5", got)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Errorf("nil histogram quantile = %v", got)
	}
	empty := NewHistogram([]int64{1, 2})
	if got := empty.Quantile(0.99); got != 0 {
		t.Errorf("empty histogram quantile = %v", got)
	}
	// Overflow observations clamp to the last bound.
	h := NewHistogram([]int64{1, 2})
	h.Observe(100)
	if got := h.Quantile(0.5); got != 2 {
		t.Errorf("overflow quantile = %v, want 2", got)
	}
	// Out-of-range p clamps instead of misbehaving.
	h3 := NewHistogram([]int64{4})
	h3.Observe(2)
	if got := h3.Quantile(-1); got != h3.Quantile(0) {
		t.Errorf("p<0 not clamped: %v vs %v", got, h3.Quantile(0))
	}
	if got := h3.Quantile(2); got != h3.Quantile(1) {
		t.Errorf("p>1 not clamped: %v vs %v", got, h3.Quantile(1))
	}
}

func TestQuantileSkipsEmptyBuckets(t *testing.T) {
	h := NewHistogram([]int64{1, 2, 4, 8, 16})
	h.Observe(1)  // first bucket
	h.Observe(16) // last bucket; middle three stay empty
	if got := h.Quantile(0.95); got <= 8 || got > 16 {
		t.Errorf("p95 = %v, want within (8, 16]", got)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	h := NewHistogram([]int64{1, 2})
	h.Observe(1)
	c := h.Clone()
	h.Observe(1)
	if c.Total() != 1 || h.Total() != 2 {
		t.Fatalf("clone shares state: clone=%d orig=%d", c.Total(), h.Total())
	}
	if var2 := (*Histogram)(nil).Clone(); var2 != nil {
		t.Fatal("nil clone should stay nil")
	}
}
