//go:build !race

package obs

// raceEnabled reports whether the race detector is compiled in; the
// overhead-guard benchmark assertion is relaxed under -race, where every
// memory access carries instrumentation cost.
const raceEnabled = false
