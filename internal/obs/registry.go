// Package obs is the simulator-wide observability layer: a lock-cheap
// metrics registry (counters, gauges, time-weighted gauges, and fixed-bucket
// histograms, keyed by component/name/labels) and a structured event tracer
// that streams simulation events to JSONL and to Chrome trace_event format
// (chrome://tracing, Perfetto). Every simulation substrate — engine, NoC,
// caches, memory controllers, and the sim front end — publishes through it,
// and the paper's Figure 13/15/18 data is rendered *from* this layer rather
// than from bespoke per-component stat fields.
//
// Handles are obtained once at component construction and updated with
// atomic operations on the hot path; every handle method is nil-safe, so an
// uninstrumented component pays only a nil check. The disabled-tracer path
// is benchmarked to stay under 5 ns/event (see BenchmarkTracerDisabled).
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready;
// all methods are nil-safe.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Reset zeroes the counter.
func (c *Counter) Reset() {
	if c != nil {
		c.v.Store(0)
	}
}

// Gauge is a point-in-time value. All methods are nil-safe.
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// TimeWeighted is a gauge that integrates its value over simulated time, so
// a time-averaged level (bank-queue occupancy, outstanding misses) can be
// read at the end of a run. The writer supplies the simulation clock on
// every Set; reads may race with writes only across runs, so a small mutex
// suffices.
type TimeWeighted struct {
	mu       sync.Mutex
	integral int64 // Σ value·dt up to last
	last     int64
	cur      int64
}

// Set records that the level changed to value at time now. Time must be
// non-decreasing across calls.
func (g *TimeWeighted) Set(now, value int64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.integral += g.cur * (now - g.last)
	g.last = now
	g.cur = value
	g.mu.Unlock()
}

// Value returns the current level.
func (g *TimeWeighted) Value() int64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.cur
}

// raw returns the gauge's internal (integral, last) pair — with Value, the
// complete state, so a snapshot can reconstruct the gauge exactly.
func (g *TimeWeighted) raw() (integral, last int64) {
	if g == nil {
		return 0, 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.integral, g.last
}

// Avg returns the time-averaged level over [0, until], extending the last
// recorded level to until. A non-positive until yields 0.
func (g *TimeWeighted) Avg(until int64) float64 {
	if g == nil || until <= 0 {
		return 0
	}
	g.mu.Lock()
	integral := g.integral + g.cur*(until-g.last)
	g.mu.Unlock()
	return float64(integral) / float64(until)
}

// Histogram counts observations into fixed buckets. Bucket i counts values
// v ≤ bounds[i] (and > bounds[i-1]); one implicit overflow bucket catches
// values above the last bound. All methods are nil-safe.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1
	sum    atomic.Int64
	total  atomic.Int64
}

func newHistogram(bounds []int64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not increasing at %d", i))
		}
	}
	b := make([]int64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(bounds)+1)}
}

// LinearBuckets returns n bucket bounds start, start+width, ….
func LinearBuckets(start, width int64, n int) []int64 {
	if n <= 0 || width <= 0 {
		panic("obs: linear buckets need n > 0, width > 0")
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = start + int64(i)*width
	}
	return out
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	// Binary search is overkill for the short fixed bucket lists the
	// simulator uses (hop counts, latency decades); scan instead.
	i := len(h.bounds)
	for j, b := range h.bounds {
		if v <= b {
			i = j
			break
		}
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.total.Add(1)
}

// Bounds returns the bucket upper bounds.
func (h *Histogram) Bounds() []int64 {
	if h == nil {
		return nil
	}
	return h.bounds
}

// Counts returns the per-bucket counts; the final element is the overflow
// bucket.
func (h *Histogram) Counts() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Total returns the number of observations.
func (h *Histogram) Total() int64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// CDF returns, for each bucket (overflow included), the cumulative fraction
// of observations at or below its bound. Empty histograms yield all zeros.
func (h *Histogram) CDF() []float64 {
	if h == nil {
		return nil
	}
	counts := h.Counts()
	out := make([]float64, len(counts))
	var total, cum int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return out
	}
	for i, c := range counts {
		cum += c
		out[i] = float64(cum) / float64(total)
	}
	return out
}

// Reset zeroes every bucket.
func (h *Histogram) Reset() {
	if h == nil {
		return
	}
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.sum.Store(0)
	h.total.Store(0)
}

// metric is one registered instrument.
type metric struct {
	component string
	name      string
	labels    map[string]string
	kind      string

	counter *Counter
	gauge   *Gauge
	tw      *TimeWeighted
	hist    *Histogram
}

// Registry holds every registered metric, keyed by component, name, and
// labels. Registration takes a mutex; the returned handles are lock-free.
// Registering the same key twice returns the same handle, so components can
// be rebuilt against a shared registry.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: map[string]*metric{}}
}

// keyOf canonicalizes the metric identity. Labels are "k=v" pairs.
func keyOf(component, name string, labels []string) (string, map[string]string) {
	lm := make(map[string]string, len(labels))
	for _, l := range labels {
		k, v, ok := strings.Cut(l, "=")
		if !ok {
			panic(fmt.Sprintf("obs: label %q is not k=v", l))
		}
		lm[k] = v
	}
	keys := make([]string, 0, len(lm))
	for k := range lm {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(component)
	b.WriteByte('/')
	b.WriteString(name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(lm[k])
	}
	b.WriteByte('}')
	return b.String(), lm
}

func (r *Registry) register(component, name, kind string, labels []string) *metric {
	key, lm := keyOf(component, name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[key]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: %s registered as %s, requested as %s", key, m.kind, kind))
		}
		return m
	}
	m := &metric{component: component, name: name, labels: lm, kind: kind}
	r.metrics[key] = m
	return m
}

// Counter registers (or finds) a counter.
func (r *Registry) Counter(component, name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	m := r.register(component, name, "counter", labels)
	if m.counter == nil {
		m.counter = &Counter{}
	}
	return m.counter
}

// Gauge registers (or finds) a gauge.
func (r *Registry) Gauge(component, name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	m := r.register(component, name, "gauge", labels)
	if m.gauge == nil {
		m.gauge = &Gauge{}
	}
	return m.gauge
}

// TimeWeighted registers (or finds) a time-weighted gauge.
func (r *Registry) TimeWeighted(component, name string, labels ...string) *TimeWeighted {
	if r == nil {
		return nil
	}
	m := r.register(component, name, "timeweighted", labels)
	if m.tw == nil {
		m.tw = &TimeWeighted{}
	}
	return m.tw
}

// Histogram registers (or finds) a histogram with the given bucket bounds.
// A second registration of the same key keeps the original bounds.
func (r *Registry) Histogram(component, name string, bounds []int64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	m := r.register(component, name, "histogram", labels)
	if m.hist == nil {
		m.hist = newHistogram(bounds)
	}
	return m.hist
}

// Point is one metric's exported state, as serialized to the JSONL metrics
// dump. Counters and gauges fill Value; time-weighted gauges also fill Avg
// (over [0, until] as passed to Snapshot) plus the raw Integral/Last pair;
// histograms fill Buckets, Counts, Sum, and Count. A point slice carries
// everything a registry holds: FromPoints inverts Snapshot exactly, which is
// how sweep workers stream whole registries across a process boundary.
type Point struct {
	Run       string            `json:"run,omitempty"`
	Component string            `json:"component"`
	Name      string            `json:"name"`
	Labels    map[string]string `json:"labels,omitempty"`
	Type      string            `json:"type"`
	Value     int64             `json:"value,omitempty"`
	Avg       float64           `json:"avg,omitempty"`
	Integral  int64             `json:"integral,omitempty"`
	Last      int64             `json:"last,omitempty"`
	Buckets   []int64           `json:"buckets,omitempty"`
	Counts    []int64           `json:"counts,omitempty"`
	Sum       int64             `json:"sum,omitempty"`
	Count     int64             `json:"count,omitempty"`
}

// Snapshot exports every metric, sorted by component/name/labels for
// deterministic output. until is the run's end time, used to close out
// time-weighted averages (0 is fine when none are registered).
func (r *Registry) Snapshot(until int64) []Point {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	keys := make([]string, 0, len(r.metrics))
	for k := range r.metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ms := make([]*metric, len(keys))
	for i, k := range keys {
		ms[i] = r.metrics[k]
	}
	r.mu.Unlock()

	out := make([]Point, 0, len(ms))
	for _, m := range ms {
		p := Point{Component: m.component, Name: m.name, Labels: m.labels, Type: m.kind}
		switch m.kind {
		case "counter":
			p.Value = m.counter.Value()
		case "gauge":
			p.Value = m.gauge.Value()
		case "timeweighted":
			p.Value = m.tw.Value()
			p.Avg = m.tw.Avg(until)
			p.Integral, p.Last = m.tw.raw()
		case "histogram":
			p.Buckets = m.hist.Bounds()
			p.Counts = m.hist.Counts()
			p.Sum = m.hist.Sum()
			p.Count = m.hist.Total()
		}
		out = append(out, p)
	}
	return out
}

// WriteJSONL writes one JSON object per line for each point.
func WriteJSONL(w io.Writer, points []Point) error {
	enc := json.NewEncoder(w)
	for i := range points {
		if err := enc.Encode(&points[i]); err != nil {
			return err
		}
	}
	return nil
}

// Sum adds the values of every counter matching component/name across all
// label sets — e.g. total link traversals over the whole mesh.
func (r *Registry) Sum(component, name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var s int64
	for _, m := range r.metrics {
		if m.component == component && m.name == name && m.counter != nil {
			s += m.counter.Value()
		}
	}
	return s
}

// Observer bundles the registry with an optional tracer; it is the single
// handle the simulation substrates take.
type Observer struct {
	Reg    *Registry
	Tracer *Tracer
}

// New returns an observer with a fresh registry and no tracer.
func New() *Observer { return &Observer{Reg: NewRegistry()} }

// OrNew returns o, or a fresh observer when o is nil — the pattern every
// substrate constructor uses so standalone use stays registry-backed.
func OrNew(o *Observer) *Observer {
	if o == nil {
		return New()
	}
	return o
}
