package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	// Counters must be safe for concurrent increment (run under -race).
	reg := NewRegistry()
	c := reg.Counter("test", "hits")
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("test", "lat", LinearBuckets(0, 10, 8))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				h.Observe(int64(w * 25))
			}
		}()
	}
	wg.Wait()
	if got := h.Total(); got != 20000 {
		t.Errorf("total = %d, want 20000", got)
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	h := newHistogram([]int64{0, 1, 2, 5})
	// Bucket semantics: bucket i counts bounds[i-1] < v <= bounds[i];
	// values above the last bound land in the overflow bucket.
	for _, v := range []int64{-3, 0} {
		h.Observe(v) // v <= 0
	}
	h.Observe(1) // exactly on an edge: bucket of bound 1
	h.Observe(2) // bucket of bound 2
	for _, v := range []int64{3, 4, 5} {
		h.Observe(v) // (2, 5]
	}
	h.Observe(6) // overflow
	want := []int64{2, 1, 1, 3, 1}
	got := h.Counts()
	if len(got) != len(want) {
		t.Fatalf("counts = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d (%v)", i, got[i], want[i], got)
		}
	}
	if h.Total() != 8 {
		t.Errorf("total = %d", h.Total())
	}
	if h.Sum() != -3+0+1+2+3+4+5+6 {
		t.Errorf("sum = %d", h.Sum())
	}
	cdf := h.CDF()
	if cdf[len(cdf)-1] != 1.0 {
		t.Errorf("CDF must end at 1: %v", cdf)
	}
	if cdf[0] != 2.0/8 {
		t.Errorf("CDF[0] = %v", cdf[0])
	}
}

func TestHistogramValidation(t *testing.T) {
	for _, bounds := range [][]int64{{}, {3, 3}, {5, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bounds %v accepted", bounds)
				}
			}()
			newHistogram(bounds)
		}()
	}
}

func TestTimeWeightedGauge(t *testing.T) {
	var g TimeWeighted
	g.Set(0, 2)  // level 2 over [0,10)
	g.Set(10, 6) // level 6 over [10,20)
	g.Set(20, 0) // level 0 over [20,40]
	if got := g.Avg(40); got != (2*10+6*10)/40.0 {
		t.Errorf("avg = %v", got)
	}
	// Avg extends the last level to `until`.
	g.Set(40, 4)
	if got := g.Avg(50); got != (2*10+6*10+4*10)/50.0 {
		t.Errorf("extended avg = %v", got)
	}
	if g.Avg(0) != 0 {
		t.Errorf("avg over empty interval")
	}
	if g.Value() != 4 {
		t.Errorf("value = %d", g.Value())
	}
}

func TestRegistryReregistrationAndKinds(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("c", "n", "k=v")
	b := reg.Counter("c", "n", "k=v")
	if a != b {
		t.Error("re-registration returned a different handle")
	}
	if reg.Counter("c", "n", "k=w") == a {
		t.Error("different labels shared a handle")
	}
	defer func() {
		if recover() == nil {
			t.Error("kind mismatch accepted")
		}
	}()
	reg.Gauge("c", "n", "k=v")
}

func TestNilSafety(t *testing.T) {
	// Every handle must be a no-op when nil, so uninstrumented components
	// need no branches of their own.
	var c *Counter
	c.Inc()
	c.Add(5)
	c.Reset()
	if c.Value() != 0 {
		t.Error("nil counter value")
	}
	var g *Gauge
	g.Set(3)
	g.Add(1)
	var tw *TimeWeighted
	tw.Set(1, 2)
	if tw.Avg(10) != 0 {
		t.Error("nil timeweighted avg")
	}
	var h *Histogram
	h.Observe(1)
	h.Reset()
	if h.CDF() != nil || h.Total() != 0 {
		t.Error("nil histogram")
	}
	var reg *Registry
	if reg.Counter("a", "b") != nil || reg.Snapshot(0) != nil || reg.Sum("a", "b") != 0 {
		t.Error("nil registry")
	}
}

func TestSnapshotAndJSONL(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("noc", "messages", "class=on-chip").Add(7)
	reg.Gauge("sim", "cores").Set(64)
	reg.TimeWeighted("dram", "queue_len", "mc=0").Set(0, 2)
	reg.Histogram("noc", "hops", LinearBuckets(0, 1, 4)).Observe(2)

	points := reg.Snapshot(10)
	if len(points) != 4 {
		t.Fatalf("%d points", len(points))
	}
	// Snapshot is sorted by component/name/labels for deterministic dumps.
	if points[0].Component != "dram" || points[1].Name != "hops" {
		t.Errorf("order: %+v", points)
	}
	for _, p := range points {
		if p.Component == "dram" && p.Avg != 2.0 {
			t.Errorf("timeweighted avg = %v", p.Avg)
		}
	}

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, points); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d JSONL lines", len(lines))
	}
	for _, line := range lines {
		var p Point
		if err := json.Unmarshal([]byte(line), &p); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
	}

	if got := reg.Sum("noc", "messages"); got != 7 {
		t.Errorf("Sum = %d", got)
	}
}

func TestLabelValidation(t *testing.T) {
	reg := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Error("malformed label accepted")
		}
	}()
	reg.Counter("a", "b", "not-a-pair")
}

func TestLinearBuckets(t *testing.T) {
	got := LinearBuckets(5, 3, 3)
	want := []int64{5, 8, 11}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("LinearBuckets = %v", got)
		}
	}
}
