package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"offchip/internal/stats"
)

// This file renders the post-run text dashboard (`offchip -report`) from
// registry contents: the per-link heat grid of the mesh, the per-MC request
// mix, the hottest DRAM banks, and baseline-vs-optimized metric diffs.

// selectPoints returns the snapshot points matching component/name.
func selectPoints(reg *Registry, until int64, component, name string) []Point {
	var out []Point
	for _, p := range reg.Snapshot(until) {
		if p.Component == component && p.Name == name {
			out = append(out, p)
		}
	}
	return out
}

// parseNode parses a "(x,y)" label value.
func parseNode(s string) (x, y int, ok bool) {
	s = strings.TrimPrefix(s, "(")
	s = strings.TrimSuffix(s, ")")
	a, b, found := strings.Cut(s, ",")
	if !found {
		return 0, 0, false
	}
	x, err1 := strconv.Atoi(a)
	y, err2 := strconv.Atoi(b)
	return x, y, err1 == nil && err2 == nil
}

// LinkHeatGrid renders the mesh as a grid with the traversal count of every
// link (both directions summed) printed between its endpoints — the
// congestion view behind Figure 15's hop distributions. Counts come from
// the "noc/link_traversals" counters.
func LinkHeatGrid(reg *Registry, meshX, meshY int) string {
	type edge struct{ x, y int } // undirected: (x,y)→east and (x,y)→south
	horiz := map[edge]int64{}
	vert := map[edge]int64{}
	for _, p := range selectPoints(reg, 0, "noc", "link_traversals") {
		fx, fy, ok1 := parseNode(p.Labels["from"])
		tx, ty, ok2 := parseNode(p.Labels["to"])
		if !ok1 || !ok2 {
			continue
		}
		switch {
		case fy == ty && (tx == fx+1 || tx == fx-1):
			x := min(fx, tx)
			horiz[edge{x, fy}] += p.Value
		case fx == tx && (ty == fy+1 || ty == fy-1):
			y := min(fy, ty)
			vert[edge{fx, y}] += p.Value
		}
	}

	const cellW, gapW = 5, 8 // "[ 63]" and " 123456 "
	var b strings.Builder
	b.WriteString("== per-link heat (traversals, both directions) ==\n")
	for y := 0; y < meshY; y++ {
		for x := 0; x < meshX; x++ {
			fmt.Fprintf(&b, "[%3d]", y*meshX+x)
			if x+1 < meshX {
				fmt.Fprintf(&b, "%*d ", gapW-1, horiz[edge{x, y}])
			}
		}
		b.WriteByte('\n')
		if y+1 < meshY {
			for x := 0; x < meshX; x++ {
				fmt.Fprintf(&b, "%*d", cellW, vert[edge{x, y}])
				if x+1 < meshX {
					b.WriteString(strings.Repeat(" ", gapW))
				}
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// HottestLinks returns the top-k directed links by traversal count.
func HottestLinks(reg *Registry, k int) *stats.Table {
	pts := selectPoints(reg, 0, "noc", "link_traversals")
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].Value != pts[j].Value {
			return pts[i].Value > pts[j].Value
		}
		return pts[i].Labels["from"]+pts[i].Labels["to"] < pts[j].Labels["from"]+pts[j].Labels["to"]
	})
	t := &stats.Table{
		Title:   fmt.Sprintf("top-%d hottest links", k),
		Headers: []string{"link", "traversals"},
	}
	for i, p := range pts {
		if i >= k || p.Value == 0 {
			break
		}
		t.AddF(p.Labels["from"]+"->"+p.Labels["to"], p.Value)
	}
	return t
}

// MCRequestMix renders the per-controller request mix: served requests and
// how they split into row hits, misses, and conflicts, plus the
// time-averaged queue occupancy of Figure 18.
func MCRequestMix(reg *Registry, until int64) *stats.Table {
	served := selectPoints(reg, until, "dram", "served")
	byMC := func(name string) map[string]int64 {
		m := map[string]int64{}
		for _, p := range selectPoints(reg, until, "dram", name) {
			m[p.Labels["mc"]] = p.Value
		}
		return m
	}
	hits, misses, conflicts := byMC("row_hits"), byMC("row_misses"), byMC("row_conflicts")
	occ := map[string]float64{}
	for _, p := range selectPoints(reg, until, "dram", "queue_len") {
		occ[p.Labels["mc"]] = p.Avg
	}
	sort.Slice(served, func(i, j int) bool { return served[i].Labels["mc"] < served[j].Labels["mc"] })
	t := &stats.Table{
		Title:   "per-MC request mix (Figure 18 occupancy)",
		Headers: []string{"mc", "served", "row-hit", "row-miss", "row-conflict", "hit%", "avg queue occ"},
	}
	for _, p := range served {
		mc := p.Labels["mc"]
		hitPct := 0.0
		if p.Value > 0 {
			hitPct = 100 * float64(hits[mc]) / float64(p.Value)
		}
		t.AddF("mc"+mc, p.Value, hits[mc], misses[mc], conflicts[mc],
			fmt.Sprintf("%.1f", hitPct), fmt.Sprintf("%.2f", occ[mc]))
	}
	return t
}

// HottestBanks returns the top-k DRAM banks by served requests.
func HottestBanks(reg *Registry, k int) *stats.Table {
	pts := selectPoints(reg, 0, "dram", "bank_served")
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].Value != pts[j].Value {
			return pts[i].Value > pts[j].Value
		}
		if pts[i].Labels["mc"] != pts[j].Labels["mc"] {
			return pts[i].Labels["mc"] < pts[j].Labels["mc"]
		}
		return pts[i].Labels["bank"] < pts[j].Labels["bank"]
	})
	t := &stats.Table{
		Title:   fmt.Sprintf("top-%d hottest banks", k),
		Headers: []string{"mc", "bank", "served"},
	}
	for i, p := range pts {
		if i >= k || p.Value == 0 {
			break
		}
		t.AddF("mc"+p.Labels["mc"], p.Labels["bank"], p.Value)
	}
	return t
}

// HopCDFTable renders the Figure 15 link-traversal distribution from the
// registry's "noc/hops" histograms: the cumulative fraction of messages of
// each class that traverse x or fewer links.
func HopCDFTable(reg *Registry) *stats.Table {
	t := &stats.Table{
		Title:   "hop CDF (Figure 15, from the registry)",
		Headers: []string{"class", "hops", "cum%"},
	}
	pts := selectPoints(reg, 0, "noc", "hops")
	sort.Slice(pts, func(i, j int) bool { return pts[i].Labels["class"] < pts[j].Labels["class"] })
	for _, p := range pts {
		if p.Count == 0 {
			continue
		}
		fracs := stats.CumulativeFractions(p.Counts)
		for i, c := range p.Counts {
			if c == 0 {
				continue
			}
			bound := "overflow"
			if i < len(p.Buckets) {
				bound = strconv.FormatInt(p.Buckets[i], 10)
			}
			t.AddF(p.Labels["class"], bound, fmt.Sprintf("%.1f", 100*fracs[i]))
		}
	}
	return t
}

// DiffTable aggregates every counter by component/name (summing across
// label sets) and tabulates baseline vs optimized values with the
// fractional change — the structural diff of two runs.
func DiffTable(base, opt *Registry) *stats.Table {
	aggregate := func(reg *Registry) map[string]int64 {
		m := map[string]int64{}
		for _, p := range reg.Snapshot(0) {
			if p.Type != "counter" {
				continue
			}
			m[p.Component+"/"+p.Name] += p.Value
		}
		return m
	}
	a, b := aggregate(base), aggregate(opt)
	keys := make([]string, 0, len(a))
	for k := range a {
		keys = append(keys, k)
	}
	for k := range b {
		if _, ok := a[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	t := &stats.Table{
		Title:   "baseline vs optimized (counters, summed over labels)",
		Headers: []string{"metric", "baseline", "optimized", "change"},
	}
	for _, k := range keys {
		change := "n/a"
		if a[k] != 0 {
			change = stats.Pct(float64(b[k]-a[k]) / float64(a[k]))
		}
		t.AddF(k, a[k], b[k], change)
	}
	return t
}
