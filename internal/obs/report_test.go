package obs

import (
	"strings"
	"testing"
)

// demoRegistry builds a registry shaped like a tiny 2x2-mesh run.
func demoRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("noc", "link_traversals", "from=(0,0)", "to=(1,0)").Add(10)
	reg.Counter("noc", "link_traversals", "from=(1,0)", "to=(0,0)").Add(5)
	reg.Counter("noc", "link_traversals", "from=(0,0)", "to=(0,1)").Add(7)
	reg.Counter("noc", "link_traversals", "from=(1,1)", "to=(1,0)").Add(2)
	reg.Counter("dram", "served", "mc=0").Add(100)
	reg.Counter("dram", "row_hits", "mc=0").Add(60)
	reg.Counter("dram", "row_misses", "mc=0").Add(10)
	reg.Counter("dram", "row_conflicts", "mc=0").Add(30)
	reg.TimeWeighted("dram", "queue_len", "mc=0").Set(0, 3)
	reg.Counter("dram", "bank_served", "mc=0", "bank=0").Add(70)
	reg.Counter("dram", "bank_served", "mc=0", "bank=1").Add(30)
	h := reg.Histogram("noc", "hops", LinearBuckets(0, 1, 4), "class=off-chip")
	h.Observe(1)
	h.Observe(1)
	h.Observe(3)
	return reg
}

func TestLinkHeatGrid(t *testing.T) {
	out := LinkHeatGrid(demoRegistry(), 2, 2)
	// Both directions of (0,0)<->(1,0) sum to 15.
	if !strings.Contains(out, "15") {
		t.Errorf("horizontal sum missing:\n%s", out)
	}
	if !strings.Contains(out, "7") {
		t.Errorf("vertical link missing:\n%s", out)
	}
	if !strings.Contains(out, "[  0]") || !strings.Contains(out, "[  3]") {
		t.Errorf("node cells missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // title + cells / vlinks / cells
		t.Errorf("%d lines:\n%s", len(lines), out)
	}
}

func TestMCRequestMix(t *testing.T) {
	out := MCRequestMix(demoRegistry(), 10).String()
	for _, want := range []string{"mc0", "100", "60", "30", "60.0", "3.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestHottestBanks(t *testing.T) {
	out := HottestBanks(demoRegistry(), 10).String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Title + header + separator + two banks.
	if len(lines) != 5 {
		t.Errorf("%d lines:\n%s", len(lines), out)
	}
	// Sorted descending: bank 0 (70) before bank 1 (30).
	if strings.Index(out, "70") > strings.Index(out, "30") {
		t.Errorf("banks not sorted:\n%s", out)
	}
}

func TestHottestLinks(t *testing.T) {
	out := HottestLinks(demoRegistry(), 2).String()
	if !strings.Contains(out, "(0,0)->(1,0)") || !strings.Contains(out, "10") {
		t.Errorf("hottest link missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // capped at top-2
		t.Errorf("%d lines:\n%s", len(lines), out)
	}
}

func TestHopCDFTable(t *testing.T) {
	out := HopCDFTable(demoRegistry()).String()
	// 2 of 3 messages at ≤1 hop (66.7%), all at ≤3 (100.0%).
	if !strings.Contains(out, "66.7") || !strings.Contains(out, "100.0") {
		t.Errorf("CDF values missing:\n%s", out)
	}
}

func TestDiffTable(t *testing.T) {
	base := demoRegistry()
	opt := NewRegistry()
	opt.Counter("dram", "served", "mc=0").Add(50)
	opt.Counter("dram", "row_hits", "mc=0").Add(50)
	opt.Counter("obs", "new_metric").Add(1)
	out := DiffTable(base, opt).String()
	if !strings.Contains(out, "dram/served") || !strings.Contains(out, "-50.0%") {
		t.Errorf("diff missing:\n%s", out)
	}
	// Metrics absent on one side still appear.
	if !strings.Contains(out, "obs/new_metric") || !strings.Contains(out, "n/a") {
		t.Errorf("one-sided metric missing:\n%s", out)
	}
	// Label-heavy metrics aggregate to one row per component/name.
	if strings.Count(out, "link_traversals") != 1 {
		t.Errorf("aggregation failed:\n%s", out)
	}
}
