package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
)

// Event is one structured simulation event: a message crossing a link, a
// cache hit, a DRAM row conflict, a core retiring an access. TS and Dur are
// in simulated cycles. Args carries optional "k=v" detail pairs.
type Event struct {
	TS   int64    `json:"ts"`
	Dur  int64    `json:"dur,omitempty"`
	Cat  string   `json:"cat"`
	Name string   `json:"name"`
	Comp string   `json:"comp"`
	Args []string `json:"args,omitempty"`
}

// TracerOptions configures a Tracer. Any combination of sinks may be set.
type TracerOptions struct {
	// JSONL, when non-nil, receives one JSON event object per line.
	JSONL io.Writer
	// Chrome, when non-nil, receives the run as a Chrome trace_event JSON
	// array, loadable in chrome://tracing and Perfetto. Call Close to
	// terminate the array.
	Chrome io.Writer
	// Ring keeps the last Ring sampled events in memory for post-run
	// inspection (Events, WriteChrome). Zero disables the ring.
	Ring int
	// Sample keeps every Sample-th event; values ≤ 1 keep all. Sampling
	// applies uniformly to all sinks so full-suite runs stay fast.
	Sample int64
}

// Tracer emits structured simulation events. A nil *Tracer is the disabled
// tracer: Emit returns immediately (benchmarked < 5 ns/event, see
// BenchmarkTracerDisabled), so instrumentation can stay unconditional on
// cold paths. Hot paths that would build label strings should still guard
// with Enabled.
type Tracer struct {
	opts TracerOptions

	mu      sync.Mutex
	seen    int64
	kept    int64
	ring    []Event
	ringPos int
	wrapped bool

	jsonl  *bufio.Writer
	chrome *bufio.Writer
	opened bool
	nEmit  int64
	tids   map[string]int
	err    error
}

// NewTracer builds a tracer for the given sinks.
func NewTracer(o TracerOptions) *Tracer {
	t := &Tracer{opts: o, tids: map[string]int{}}
	if o.JSONL != nil {
		t.jsonl = bufio.NewWriter(o.JSONL)
	}
	if o.Chrome != nil {
		t.chrome = bufio.NewWriter(o.Chrome)
	}
	if o.Ring > 0 {
		t.ring = make([]Event, o.Ring)
	}
	return t
}

// Enabled reports whether the tracer records anything; callers use it to
// skip building event detail strings on hot paths.
func (t *Tracer) Enabled() bool { return t != nil }

// Emit records one event. Args are "k=v" pairs. On a nil tracer this is a
// single branch.
func (t *Tracer) Emit(ts int64, cat, name, comp string, dur int64, args ...string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seen++
	if t.opts.Sample > 1 && (t.seen-1)%t.opts.Sample != 0 {
		return
	}
	t.kept++
	ev := Event{TS: ts, Dur: dur, Cat: cat, Name: name, Comp: comp, Args: args}
	if t.ring != nil {
		t.ring[t.ringPos] = ev
		t.ringPos++
		if t.ringPos == len(t.ring) {
			t.ringPos, t.wrapped = 0, true
		}
	}
	if t.jsonl != nil && t.err == nil {
		b, err := json.Marshal(&ev)
		if err == nil {
			_, err = t.jsonl.Write(append(b, '\n'))
		}
		if err != nil {
			t.err = err
		}
	}
	if t.chrome != nil && t.err == nil {
		t.writeChromeEvent(t.chrome, &ev)
	}
}

// Seen returns the number of events offered; Kept the number recorded
// after sampling.
func (t *Tracer) Seen() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seen
}

// Kept returns the number of events recorded after sampling.
func (t *Tracer) Kept() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.kept
}

// Events returns the ring contents, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil || t.ring == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.wrapped {
		out := make([]Event, t.ringPos)
		copy(out, t.ring[:t.ringPos])
		return out
	}
	out := make([]Event, 0, len(t.ring))
	out = append(out, t.ring[t.ringPos:]...)
	out = append(out, t.ring[:t.ringPos]...)
	return out
}

// tidOf assigns a stable Chrome thread ID per component and, on first
// sight, emits the thread_name metadata event naming it.
func (t *Tracer) tidOf(w *bufio.Writer, comp string) int {
	if tid, ok := t.tids[comp]; ok {
		return tid
	}
	tid := len(t.tids) + 1
	t.tids[comp] = tid
	t.sep(w)
	fmt.Fprintf(w, `{"name":"thread_name","ph":"M","pid":0,"tid":%d,"args":{"name":%s}}`,
		tid, jsonString(comp))
	return tid
}

func (t *Tracer) sep(w *bufio.Writer) {
	if !t.opened {
		w.WriteString("[\n")
		t.opened = true
		return
	}
	w.WriteString(",\n")
}

// writeChromeEvent appends one trace_event object. Durations map to
// complete ("X") events, instants to "i".
func (t *Tracer) writeChromeEvent(w *bufio.Writer, ev *Event) {
	tid := t.tidOf(w, ev.Comp)
	t.sep(w)
	var args strings.Builder
	for i, a := range ev.Args {
		k, v, _ := strings.Cut(a, "=")
		if i > 0 {
			args.WriteByte(',')
		}
		args.WriteString(jsonString(k))
		args.WriteByte(':')
		args.WriteString(jsonString(v))
	}
	if ev.Dur > 0 {
		fmt.Fprintf(w, `{"name":%s,"cat":%s,"ph":"X","ts":%d,"dur":%d,"pid":0,"tid":%d,"args":{%s}}`,
			jsonString(ev.Name), jsonString(ev.Cat), ev.TS, ev.Dur, tid, args.String())
	} else {
		fmt.Fprintf(w, `{"name":%s,"cat":%s,"ph":"i","s":"t","ts":%d,"pid":0,"tid":%d,"args":{%s}}`,
			jsonString(ev.Name), jsonString(ev.Cat), ev.TS, tid, args.String())
	}
	// Write errors stick inside the bufio.Writer and surface at Close.
}

func jsonString(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

// WriteChrome dumps the ring buffer as a complete Chrome trace to w. It is
// independent of the streaming Chrome sink.
func (t *Tracer) WriteChrome(w io.Writer) error {
	if t == nil {
		return nil
	}
	events := t.Events()
	sub := NewTracer(TracerOptions{Chrome: w})
	for i := range events {
		ev := &events[i]
		sub.Emit(ev.TS, ev.Cat, ev.Name, ev.Comp, ev.Dur, ev.Args...)
	}
	return sub.Close()
}

// Close terminates the Chrome JSON array and flushes both sinks. It
// returns the first write error encountered during the run.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.chrome != nil {
		if !t.opened {
			t.chrome.WriteString("[")
			t.opened = true
		}
		t.chrome.WriteString("\n]\n")
		if err := t.chrome.Flush(); err != nil && t.err == nil {
			t.err = err
		}
	}
	if t.jsonl != nil {
		if err := t.jsonl.Flush(); err != nil && t.err == nil {
			t.err = err
		}
	}
	return t.err
}
