package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files")

// emitFixture produces a small deterministic event sequence covering both
// duration ("X") and instant ("i") phases, args, and repeated components.
func emitFixture(tr *Tracer) {
	tr.Emit(0, "noc", "msg", "(0,0)->(1,0)", 5, "class=off-chip", "hops=1")
	tr.Emit(3, "dram", "enqueue", "mc0", 0, "bank=2")
	tr.Emit(3, "dram", "row-hit", "mc0", 20, "bank=2")
	tr.Emit(10, "cache", "hit", "l1.0", 0)
	tr.Emit(25, "core", "retire", "core0", 0)
}

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(TracerOptions{Chrome: &buf})
	emitFixture(tr)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "chrome_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("chrome trace drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}

	// The output must be a loadable trace: a JSON array of objects with the
	// trace_event fields chrome://tracing requires.
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	var xEvents, metadata int
	for _, ev := range events {
		switch ev["ph"] {
		case "M":
			metadata++
		case "X":
			xEvents++
			if ev["dur"] == nil || ev["ts"] == nil {
				t.Errorf("X event missing ts/dur: %v", ev)
			}
		case "i":
			if ev["s"] != "t" {
				t.Errorf("instant event missing scope: %v", ev)
			}
		default:
			t.Errorf("unknown phase %v", ev["ph"])
		}
	}
	if xEvents != 2 {
		t.Errorf("%d duration events, want 2", xEvents)
	}
	// One thread_name metadata record per distinct component:
	// the link, mc0, l1.0, and core0.
	if metadata != 4 {
		t.Errorf("%d metadata events, want 4", metadata)
	}
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(TracerOptions{JSONL: &buf})
	emitFixture(tr)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("%d lines, want 5", len(lines))
	}
	var ev Event
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Cat != "noc" || ev.Name != "msg" || ev.Dur != 5 || len(ev.Args) != 2 {
		t.Errorf("first event = %+v", ev)
	}
}

func TestSampling(t *testing.T) {
	tr := NewTracer(TracerOptions{Ring: 100, Sample: 10})
	for i := 0; i < 95; i++ {
		tr.Emit(int64(i), "c", "n", "comp", 0)
	}
	if tr.Seen() != 95 {
		t.Errorf("seen = %d", tr.Seen())
	}
	if tr.Kept() != 10 { // events 0, 10, …, 90
		t.Errorf("kept = %d", tr.Kept())
	}
	evs := tr.Events()
	if len(evs) != 10 || evs[0].TS != 0 || evs[9].TS != 90 {
		t.Errorf("ring contents: %v", evs)
	}
}

func TestRingWraps(t *testing.T) {
	tr := NewTracer(TracerOptions{Ring: 4})
	for i := 0; i < 10; i++ {
		tr.Emit(int64(i), "c", "n", "comp", 0)
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("ring length %d", len(evs))
	}
	for i, want := range []int64{6, 7, 8, 9} {
		if evs[i].TS != want {
			t.Errorf("ring[%d].TS = %d, want %d", i, evs[i].TS, want)
		}
	}
}

func TestWriteChromeFromRing(t *testing.T) {
	tr := NewTracer(TracerOptions{Ring: 16})
	emitFixture(tr)
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("ring chrome dump not valid JSON: %v", err)
	}
	if len(events) == 0 {
		t.Error("empty ring dump")
	}
}

func TestNilTracer(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer enabled")
	}
	tr.Emit(1, "a", "b", "c", 0) // must not panic
	if tr.Seen() != 0 || tr.Kept() != 0 || tr.Events() != nil {
		t.Error("nil tracer recorded something")
	}
	if err := tr.Close(); err != nil {
		t.Errorf("nil close: %v", err)
	}
}

func TestEmptyTraceCloses(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(TracerOptions{Chrome: &buf})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("empty trace not valid JSON: %q", buf.String())
	}
	if len(events) != 0 {
		t.Errorf("%d events in empty trace", len(events))
	}
}
