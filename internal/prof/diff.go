package prof

import (
	"fmt"

	"offchip/internal/obs"
	"offchip/internal/stats"
)

// Differential attribution: where did a scheme's speedup come from? The
// components partition each access's latency exactly, so the per-access
// component deltas between two runs sum to the per-access end-to-end
// latency delta — every saved cycle is accounted to a stage.

// DiffTable tabulates baseline-vs-optimized attribution per component:
// mean cycles per access in each run, the delta, and the delta's share of
// the end-to-end per-access latency change. Shares sum to 100% (of the
// absolute delta) because the components partition the latency.
func DiffTable(title string, base, opt *Profile) *stats.Table {
	t := &stats.Table{
		Title:   title,
		Headers: []string{"stage", "substage", "base cyc/acc", "opt cyc/acc", "delta", "share"},
	}
	if base == nil || opt == nil || base.Accesses == 0 || opt.Accesses == 0 {
		return t
	}
	totalDelta := float64(opt.EndToEnd)/float64(opt.Accesses) - float64(base.EndToEnd)/float64(base.Accesses)
	for c := Component(0); c < NumComponents; c++ {
		b, o := base.PerAccess(c), opt.PerAccess(c)
		if b == 0 && o == 0 {
			continue
		}
		d := o - b
		share := "n/a"
		if totalDelta != 0 {
			share = stats.Pct(d / totalDelta)
		}
		t.AddF(compStage[c], compSub[c],
			fmt.Sprintf("%.2f", b), fmt.Sprintf("%.2f", o), fmt.Sprintf("%+.2f", d), share)
	}
	t.AddF("end-to-end", "total",
		fmt.Sprintf("%.2f", float64(base.EndToEnd)/float64(base.Accesses)),
		fmt.Sprintf("%.2f", float64(opt.EndToEnd)/float64(opt.Accesses)),
		fmt.Sprintf("%+.2f", totalDelta), "100.0%")
	return t
}

// AttributionTable tabulates one run's attribution: total cycles, mean
// cycles per access, and share of end-to-end latency per component.
func AttributionTable(title string, p *Profile) *stats.Table {
	t := &stats.Table{
		Title:   title,
		Headers: []string{"stage", "substage", "cycles", "cyc/acc", "share"},
	}
	if p == nil || p.Accesses == 0 {
		return t
	}
	for c := Component(0); c < NumComponents; c++ {
		if p.Comp[c] == 0 {
			continue
		}
		share := "n/a"
		if p.EndToEnd != 0 {
			share = stats.Pct(float64(p.Comp[c]) / float64(p.EndToEnd))
		}
		t.AddF(compStage[c], compSub[c], p.Comp[c], fmt.Sprintf("%.2f", p.PerAccess(c)), share)
	}
	t.AddF("end-to-end", "total", p.EndToEnd,
		fmt.Sprintf("%.2f", float64(p.EndToEnd)/float64(p.Accesses)), "100.0%")
	return t
}

// QuantileTable tabulates p50/p95/p99 of the per-visit latency of every
// stage plus the end-to-end distribution, read from the profile's
// histograms via obs.Histogram.Quantile.
func QuantileTable(title string, p *Profile) *stats.Table {
	t := &stats.Table{
		Title:   title,
		Headers: []string{"stage", "visits", "p50", "p95", "p99"},
	}
	if p == nil {
		return t
	}
	row := func(name string, h *obs.Histogram) {
		if h.Total() == 0 {
			return
		}
		t.AddF(name, h.Total(),
			fmt.Sprintf("%.1f", h.Quantile(0.50)),
			fmt.Sprintf("%.1f", h.Quantile(0.95)),
			fmt.Sprintf("%.1f", h.Quantile(0.99)))
	}
	for _, s := range StageNames {
		if h := p.Stages[s]; h != nil && h.Total() > 0 {
			row(s, h)
		}
	}
	row("end-to-end", p.End)
	return t
}

// StageSummary is the JSON-friendly projection of one component, served by
// the live plane's /profile endpoint and the run manifest.
type StageSummary struct {
	Stage     string  `json:"stage"`
	Substage  string  `json:"substage"`
	Cycles    int64   `json:"cycles"`
	PerAccess float64 `json:"per_access"`
	Share     float64 `json:"share"` // fraction of end-to-end cycles
}

// Summary is the JSON-friendly projection of a whole profile.
type Summary struct {
	Accesses   int64          `json:"accesses"`
	EndToEnd   int64          `json:"end_to_end_cycles"`
	Attributed int64          `json:"attributed_cycles"`
	P50        float64        `json:"p50"`
	P95        float64        `json:"p95"`
	P99        float64        `json:"p99"`
	Components []StageSummary `json:"components"`
}

// Summarize projects the profile for JSON serialization.
func (p *Profile) Summarize() Summary {
	s := Summary{Accesses: p.Accesses, EndToEnd: p.EndToEnd, Attributed: p.Attributed()}
	if p.End != nil {
		s.P50 = p.End.Quantile(0.50)
		s.P95 = p.End.Quantile(0.95)
		s.P99 = p.End.Quantile(0.99)
	}
	for c := Component(0); c < NumComponents; c++ {
		if c < Component(len(p.Comp)) && p.Comp[c] != 0 {
			share := 0.0
			if p.EndToEnd != 0 {
				share = float64(p.Comp[c]) / float64(p.EndToEnd)
			}
			s.Components = append(s.Components, StageSummary{
				Stage: compStage[c], Substage: compSub[c],
				Cycles: p.Comp[c], PerAccess: p.PerAccess(c), Share: share,
			})
		}
	}
	return s
}

// StageTotals returns "stage;substage" → cycles for the manifest.
func (p *Profile) StageTotals() map[string]int64 {
	out := map[string]int64{}
	for c := Component(0); c < NumComponents; c++ {
		if c < Component(len(p.Comp)) && p.Comp[c] != 0 {
			out[compStage[c]+";"+compSub[c]] = p.Comp[c]
		}
	}
	return out
}
