package prof

import (
	"compress/gzip"
	"fmt"
	"io"
	"strings"
)

// Flamegraph export: simulated cycles rendered as if they were a CPU
// profile, so the standard tooling (inferno/flamegraph.pl on folded
// stacks, `go tool pprof` on the protobuf form) can visualize where the
// machine's cycles go. Stacks are core;stage;substage — the "call tree"
// is the Figure 2 pipeline, and the leaf weight is attributed cycles.

// FoldedStacks renders the per-core attribution in folded-stack format:
// one "frame1;frame2;frame3 weight" line per non-zero (core, component),
// with prefix (e.g. the run name) prepended as the root frame when
// non-empty. Lines are emitted in (core, component) order, deterministic.
func (p *Profile) FoldedStacks(prefix string) string {
	var b strings.Builder
	root := ""
	if prefix != "" {
		root = prefix + ";"
	}
	for core := range p.PerCore {
		for c := Component(0); c < NumComponents; c++ {
			v := p.PerCore[core][c]
			if v == 0 {
				continue
			}
			fmt.Fprintf(&b, "%score%d;%s;%s %d\n", root, core, compStage[c], compSub[c], v)
		}
	}
	return b.String()
}

// --- pprof profile.proto encoding -------------------------------------
//
// The encoder is a minimal hand-rolled protobuf writer for the subset of
// profile.proto the export needs (no dependency on the pprof module):
// Profile{sample_type=1, sample=2, location=4, function=5, string_table=6},
// ValueType{type=1, unit=2}, Sample{location_id=1, value=2},
// Location{id=1, line=4}, Line{function_id=1, line=2},
// Function{id=1, name=2, system_name=3, filename=4}.

type protoBuf struct{ b []byte }

func (p *protoBuf) varint(v uint64) {
	for v >= 0x80 {
		p.b = append(p.b, byte(v)|0x80)
		v >>= 7
	}
	p.b = append(p.b, byte(v))
}

// tag writes a field key: field number and wire type (0 varint, 2 bytes).
func (p *protoBuf) tag(field, wire int) { p.varint(uint64(field<<3 | wire)) }

func (p *protoBuf) uintField(field int, v uint64) {
	if v == 0 {
		return
	}
	p.tag(field, 0)
	p.varint(v)
}

func (p *protoBuf) intField(field int, v int64) { p.uintField(field, uint64(v)) }

func (p *protoBuf) bytesField(field int, b []byte) {
	p.tag(field, 2)
	p.varint(uint64(len(b)))
	p.b = append(p.b, b...)
}

// stringTable interns strings into the profile's string table (index 0 is
// the mandated empty string).
type stringTable struct {
	idx  map[string]int64
	strs []string
}

func newStringTable() *stringTable {
	return &stringTable{idx: map[string]int64{"": 0}, strs: []string{""}}
}

func (st *stringTable) of(s string) int64 {
	if i, ok := st.idx[s]; ok {
		return i
	}
	i := int64(len(st.strs))
	st.idx[s] = i
	st.strs = append(st.strs, s)
	return i
}

// WritePprof writes the profile as a gzipped pprof profile.proto whose
// samples are [substage, stage, core] stacks (leaf first, as pprof
// requires) weighted by attributed simulated cycles. Load it with
// `go tool pprof <file>`.
func (p *Profile) WritePprof(w io.Writer) error {
	st := newStringTable()
	var body protoBuf

	// sample_type: one value per sample, "sim_cycles" in "cycles".
	var vt protoBuf
	vt.intField(1, st.of("sim_cycles"))
	vt.intField(2, st.of("cycles"))
	body.bytesField(1, vt.b)

	// One function + location per distinct frame name.
	locOf := map[string]uint64{}
	var locs, funcs protoBuf
	locationOf := func(name string) uint64 {
		if id, ok := locOf[name]; ok {
			return id
		}
		id := uint64(len(locOf) + 1)
		locOf[name] = id
		var fn protoBuf
		fn.uintField(1, id)
		fn.intField(2, st.of(name))
		fn.intField(3, st.of(name))
		fn.intField(4, st.of("sim"))
		funcs.bytesField(5, fn.b)
		var line protoBuf
		line.uintField(1, id)
		var loc protoBuf
		loc.uintField(1, id)
		loc.bytesField(4, line.b)
		locs.bytesField(4, loc.b)
		return id
	}

	var samples protoBuf
	for core := range p.PerCore {
		coreLoc := locationOf(fmt.Sprintf("core%d", core))
		for c := Component(0); c < NumComponents; c++ {
			v := p.PerCore[core][c]
			if v == 0 {
				continue
			}
			var s protoBuf
			// Leaf-first stack: substage, stage, core.
			s.tag(1, 0)
			s.varint(locationOf(compStage[c] + ";" + compSub[c]))
			s.tag(1, 0)
			s.varint(locationOf(compStage[c]))
			s.tag(1, 0)
			s.varint(coreLoc)
			s.tag(2, 0)
			s.varint(uint64(v))
			samples.bytesField(2, s.b)
		}
	}

	body.b = append(body.b, samples.b...)
	body.b = append(body.b, locs.b...)
	body.b = append(body.b, funcs.b...)
	for _, s := range st.strs {
		body.bytesField(6, []byte(s))
	}

	gz := gzip.NewWriter(w)
	if _, err := gz.Write(body.b); err != nil {
		return err
	}
	return gz.Close()
}
