package prof

import (
	"encoding/json"
	"os"
	"os/exec"
	"strings"
	"time"
)

// Manifest is the provenance record written next to every sweep's output:
// what ran, with which configuration and seed, from which source revision,
// how long it took, and where the cycles went. A figure regenerated months
// later can be traced back to the exact run that produced it.
type Manifest struct {
	Command     string            `json:"command"`
	Args        []string          `json:"args,omitempty"`
	Config      map[string]string `json:"config,omitempty"`
	Seed        uint64            `json:"seed"`
	GitRev      string            `json:"git_rev"`
	StartedAt   string            `json:"started_at"`
	WallSeconds float64           `json:"wall_seconds"`
	Jobs        []string          `json:"jobs,omitempty"` // canonical job IDs
	StageTotals map[string]int64  `json:"stage_totals,omitempty"`
}

// NewManifest starts a manifest for the current process: command line,
// git revision, and start timestamp are captured now; the caller fills
// config, jobs, and stage totals and calls Write at the end of the run.
func NewManifest() *Manifest {
	m := &Manifest{
		GitRev:    GitRev(),
		StartedAt: time.Now().UTC().Format(time.RFC3339),
		Config:    map[string]string{},
	}
	if len(os.Args) > 0 {
		m.Command = os.Args[0]
		m.Args = os.Args[1:]
	}
	return m
}

// GitRev returns the working tree's HEAD revision, best-effort: "unknown"
// when git or the repository is unavailable (provenance must never fail a
// run).
func GitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// Write serializes the manifest as indented JSON at path, stamping the
// wall time since StartedAt.
func (m *Manifest) Write(path string) error {
	if t, err := time.Parse(time.RFC3339, m.StartedAt); err == nil {
		m.WallSeconds = time.Since(t).Seconds()
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ManifestPath returns the conventional manifest location next to an
// output file: "<out>.manifest.json".
func ManifestPath(out string) string { return out + ".manifest.json" }
