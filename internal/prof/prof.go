// Package prof is the cycle-level latency-attribution profiler: it rides
// the same per-access probe surface the invariant checker uses
// (sim.Config stage callbacks, per-transit hop counts, the controllers'
// queue/service split) and decomposes every access's end-to-end latency
// into exclusive per-stage components — L1 lookup, L2 lookup, NoC request
// traversal split into zero-load hops vs link queueing, directory lookup
// and forwarding, DRAM queue wait vs bank service, NoC reply traversal.
// The decomposition is conservative by construction: each hook attributes
// the cycles since the access's previous event to exactly one component,
// so the components of one access always sum to its probe-observed
// end-to-end latency (TestAttributionConservation and `make profile-smoke`
// enforce it).
//
// Aggregates land per (core, component) and per MC, with registry-backed
// latency histograms per stage (p50/p95/p99 via obs.Histogram.Quantile).
// A detached profiler (sim.Config.Prof == nil) costs one nil check per
// probe site, like the checker and the tracer.
package prof

import (
	"fmt"

	"offchip/internal/check"
	"offchip/internal/noc"
	"offchip/internal/obs"
)

// Component is one exclusive slice of an access's end-to-end latency.
type Component int

const (
	CompL1 Component = iota
	CompL2
	CompNoCReqHops  // request traversal, zero-load portion
	CompNoCReqQueue // request traversal, link queueing above zero-load
	CompDirLookup
	CompFwdHops  // directory→owner forward, zero-load portion
	CompFwdQueue // directory→owner forward, link queueing
	CompDRAMQueue
	CompDRAMService
	CompNoCRespHops
	CompNoCRespQueue
	CompRetire // residual between the last attributed event and retirement

	NumComponents
)

// Stage groups components into the coarse pipeline stages the flamegraph
// and the differential table fold by.
var compStage = [NumComponents]string{
	CompL1:           "l1",
	CompL2:           "l2",
	CompNoCReqHops:   "noc-req",
	CompNoCReqQueue:  "noc-req",
	CompDirLookup:    "dir",
	CompFwdHops:      "dir",
	CompFwdQueue:     "dir",
	CompDRAMQueue:    "dram",
	CompDRAMService:  "dram",
	CompNoCRespHops:  "noc-resp",
	CompNoCRespQueue: "noc-resp",
	CompRetire:       "retire",
}

var compSub = [NumComponents]string{
	CompL1:           "lookup",
	CompL2:           "lookup",
	CompNoCReqHops:   "hops",
	CompNoCReqQueue:  "queueing",
	CompDirLookup:    "lookup",
	CompFwdHops:      "fwd-hops",
	CompFwdQueue:     "fwd-queueing",
	CompDRAMQueue:    "queue",
	CompDRAMService:  "service",
	CompNoCRespHops:  "hops",
	CompNoCRespQueue: "queueing",
	CompRetire:       "residual",
}

// Stage returns the component's coarse pipeline stage ("l1", "noc-req", …).
func (c Component) Stage() string { return compStage[c] }

// Sub returns the component's substage within its stage ("hops", "queue", …).
func (c Component) Sub() string { return compSub[c] }

func (c Component) String() string { return compStage[c] + ";" + compSub[c] }

// StageNames lists the coarse stages in pipeline order — the grouping
// every per-stage histogram and table iterates in. "migration" is the one
// stage outside the per-access pipeline: online page migration's copy+stall
// overhead, observed per committed migration rather than per access, so it
// sits outside the Attributed()==EndToEnd conservation identity.
var StageNames = []string{"l1", "l2", "noc-req", "dir", "dram", "noc-resp", "retire", "migration"}

var stageIndex = func() map[string]int {
	m := make(map[string]int, len(StageNames))
	for i, s := range StageNames {
		m[s] = i
	}
	return m
}()

// TransitKind classifies a network traversal for attribution.
type TransitKind int

const (
	// TransitReq is a request-side traversal (L1/L2 toward directory or MC).
	TransitReq TransitKind = iota
	// TransitFwd is the directory→owner forward of an L2-to-L2 transfer.
	TransitFwd
	// TransitResp is a response-side traversal (data heading back).
	TransitResp
)

var transitComps = [...][2]Component{
	TransitReq:  {CompNoCReqHops, CompNoCReqQueue},
	TransitFwd:  {CompFwdHops, CompFwdQueue},
	TransitResp: {CompNoCRespHops, CompNoCRespQueue},
}

// Params binds a profiler to one simulated machine.
type Params struct {
	Cores int
	MCs   int
	// NoC supplies the hop cost the zero-load/queueing split is computed
	// against (check.NoCZeroLoad — the same oracle the checker enforces).
	NoC noc.Config
	// Obs hosts the per-stage and end-to-end latency histograms. Nil gets
	// the profiler a private registry.
	Obs *obs.Observer
}

// accessRec tracks one in-flight access: its issuing core, issue time, and
// the time of its last attributed event (the exclusive-attribution cursor).
type accessRec struct {
	core  int
	start int64
	last  int64
}

// servedSplit is one controller service record waiting for its access's
// completion event: the queue/service split dram.Probe.Serve reported.
type servedSplit struct {
	queue   int64
	service int64
}

// serveKey correlates a Serve record with the completion the controller
// schedules for it: completions for one (mc, finish) time dispatch in the
// same order the controller emitted them (the engine's (time, seq) order),
// so a per-key FIFO resolves even same-cycle collisions across banks.
type serveKey struct {
	mc     int
	finish int64
}

// Profiler decomposes per-access latency. It is bound to one run at a time
// (Bind resets all state) and is not safe for concurrent runs — give each
// simulation its own, exactly like check.Checker.
type Profiler struct {
	p      Params
	perHop int64 // zero-load cycles per hop

	nextID   int64
	inflight map[int64]accessRec
	pending  map[serveKey][]servedSplit

	// Aggregates, plain int64 on the hot path; published to the registry
	// by FinishRun.
	comp      [NumComponents]int64
	perCore   [][NumComponents]int64
	mcQueue   []int64
	mcService []int64
	accesses  int64
	endToEnd  int64
	// Migration overhead: cycles outside the per-access pipeline (copy
	// transit + TLB-shootdown stalls), counted per committed migration.
	migrations int64
	migCycles  int64

	endHist    *obs.Histogram
	stageHists []*obs.Histogram // indexed like StageNames

	obs        *obs.Observer
	violations []string
}

// New returns an unbound profiler; sim.Run binds it via Config.Prof.
func New() *Profiler { return &Profiler{} }

// histBounds is the geometric latency ladder every profiler histogram
// uses: 1..2^19 cycles, overflow above. Shared bounds keep sweep-merged
// registries mergeable (obs histogram absorption requires equal bounds).
func histBounds() []int64 { return obs.ExponentialBuckets(1, 2, 20) }

// Bind resets the profiler and attaches it to a machine. sim.Run calls it
// once per run before the first access issues.
func (p *Profiler) Bind(params Params) {
	p.p = params
	p.perHop = check.NoCZeroLoad(params.NoC, 1)
	p.nextID = 0
	p.inflight = make(map[int64]accessRec)
	p.pending = make(map[serveKey][]servedSplit)
	p.comp = [NumComponents]int64{}
	p.perCore = make([][NumComponents]int64, params.Cores)
	p.mcQueue = make([]int64, params.MCs)
	p.mcService = make([]int64, params.MCs)
	p.accesses = 0
	p.endToEnd = 0
	p.migrations = 0
	p.migCycles = 0
	p.violations = nil
	p.obs = obs.OrNew(params.Obs)
	p.endHist = p.obs.Reg.Histogram("prof", "access_latency", histBounds())
	p.stageHists = make([]*obs.Histogram, len(StageNames))
	for i, s := range StageNames {
		p.stageHists[i] = p.obs.Reg.Histogram("prof", "stage_latency", histBounds(), "stage="+s)
	}
}

// violate records an internal consistency failure (attribution running
// backwards, an uncorrelated DRAM completion). A clean run records none;
// the profile-smoke gate asserts that.
func (p *Profiler) violate(format string, args ...any) {
	if len(p.violations) < 64 {
		p.violations = append(p.violations, fmt.Sprintf(format, args...))
	}
}

// Violations returns the internal consistency failures of the bound run.
func (p *Profiler) Violations() []string { return p.violations }

// Start registers a new access issued by core at time t and returns its
// profiler ID (≥ 1; 0 means "untracked", matching the checker convention).
func (p *Profiler) Start(core int, t int64) int64 {
	p.nextID++
	p.inflight[p.nextID] = accessRec{core: core, start: t, last: t}
	return p.nextID
}

// attribute charges delta cycles to component c on the access's core.
func (p *Profiler) attribute(rec *accessRec, c Component, delta int64) {
	if delta < 0 {
		p.violate("component %v of access on core %d ran backwards (%d cycles)", c, rec.core, delta)
		return
	}
	p.comp[c] += delta
	if rec.core >= 0 && rec.core < len(p.perCore) {
		p.perCore[rec.core][c] += delta
	}
}

// StageAt records that the access finished component c at time t,
// attributing all cycles since its previous event to c.
func (p *Profiler) StageAt(id int64, c Component, t int64) {
	rec, ok := p.inflight[id]
	if !ok {
		p.violate("stage %v reported for unknown access %d", c, id)
		return
	}
	delta := t - rec.last
	p.attribute(&rec, c, delta)
	if delta >= 0 {
		p.stageHists[stageIndex[compStage[c]]].Observe(delta)
	}
	rec.last = t
	p.inflight[id] = rec
}

// TransitAt records one network traversal of hops links departing at
// depart and arriving at arrive, splitting the cycles since the access's
// previous event into the zero-load hop cost and link queueing. kind
// selects the request, forward, or response component pair.
func (p *Profiler) TransitAt(id int64, kind TransitKind, depart, arrive int64, hops int) {
	rec, ok := p.inflight[id]
	if !ok {
		p.violate("transit reported for unknown access %d", id)
		return
	}
	delta := arrive - rec.last
	zero := int64(hops) * p.perHop
	if zero > delta {
		// Attribution never exceeds the elapsed window: a transit departing
		// before the previous event would break exclusivity.
		p.violate("transit of access %d: zero-load %d exceeds elapsed %d", id, zero, delta)
		zero = delta
	}
	comps := transitComps[kind]
	p.attribute(&rec, comps[0], zero)
	p.attribute(&rec, comps[1], delta-zero)
	if delta >= 0 {
		p.stageHists[stageIndex[compStage[comps[0]]]].Observe(delta)
	}
	rec.last = arrive
	p.inflight[id] = rec
}

// Enqueue implements dram.Probe; arrival time is already the access's
// cursor (the submit stage fires at the same cycle), so nothing to record.
func (p *Profiler) Enqueue(mc, bank int, at int64) {}

// Serve implements dram.Probe: remember the request's queue-wait and bank
// service split until its completion event reaches DRAMDone. Service
// records for one (mc, finish) cycle complete in emission order, so a
// per-key FIFO correlates them exactly.
func (p *Profiler) Serve(mc, bank int, arrive, start, finish int64, bypassed int) {
	k := serveKey{mc: mc, finish: finish}
	p.pending[k] = append(p.pending[k], servedSplit{queue: start - arrive, service: finish - start})
}

// DRAMDone records that the access's controller request finished at finish
// on controller mc, attributing the cycles since the previous event to
// DRAM queue wait and bank service using the controller's own split.
func (p *Profiler) DRAMDone(id int64, mc int, finish int64) {
	rec, ok := p.inflight[id]
	if !ok {
		p.violate("DRAM completion for unknown access %d", id)
		return
	}
	delta := finish - rec.last
	k := serveKey{mc: mc, finish: finish}
	q := p.pending[k]
	var split servedSplit
	if len(q) > 0 {
		split = q[0]
		if len(q) == 1 {
			delete(p.pending, k)
		} else {
			p.pending[k] = q[1:]
		}
	} else {
		p.violate("access %d: no service record at mc%d finish=%d", id, mc, finish)
		split = servedSplit{queue: 0, service: delta}
	}
	if split.queue+split.service != delta {
		// The submit stage and the controller's arrive stamp coincide by
		// construction; a mismatch means the correlation picked the wrong
		// record. Keep conservation: trust the service time, absorb the
		// difference into queueing.
		p.violate("access %d: mc%d split %d+%d != elapsed %d", id, mc, split.queue, split.service, delta)
		split.queue = delta - split.service
	}
	p.attribute(&rec, CompDRAMQueue, split.queue)
	p.attribute(&rec, CompDRAMService, split.service)
	if delta >= 0 {
		p.stageHists[stageIndex["dram"]].Observe(delta)
	}
	if mc >= 0 && mc < len(p.mcQueue) && split.queue >= 0 && split.service >= 0 {
		p.mcQueue[mc] += split.queue
		p.mcService[mc] += split.service
	}
	rec.last = finish
	p.inflight[id] = rec
}

// DRAMOptimal records the Section 2 optimal scheme's contention-free
// service finishing at finish: all elapsed cycles are bank service (the
// optimal scheme has no queue by definition).
func (p *Profiler) DRAMOptimal(id int64, finish int64) {
	rec, ok := p.inflight[id]
	if !ok {
		p.violate("optimal DRAM completion for unknown access %d", id)
		return
	}
	delta := finish - rec.last
	p.attribute(&rec, CompDRAMService, delta)
	if delta >= 0 {
		p.stageHists[stageIndex["dram"]].Observe(delta)
	}
	rec.last = finish
	p.inflight[id] = rec
}

// End retires the access at time t. Cycles between the last attributed
// event and t land in CompRetire; on every current simulator path the
// completion event fires exactly at the last attributed time, so a nonzero
// retire component flags an unattributed latency source.
func (p *Profiler) End(id int64, t int64) {
	rec, ok := p.inflight[id]
	if !ok {
		p.violate("access %d retired twice (or never started)", id)
		return
	}
	p.attribute(&rec, CompRetire, t-rec.last)
	delete(p.inflight, id)
	p.accesses++
	total := t - rec.start
	p.endToEnd += total
	p.endHist.Observe(total)
}

// Migration records one committed page migration: copyCycles is the copy's
// transit time (launch to last flit landing), stallCycles the total TLB
// shootdown charged across the sharer cores. The cost lands in the
// "migration" stage histogram and the migration aggregates — deliberately
// outside the per-access components, whose exclusive sum must stay equal to
// the end-to-end latency.
func (p *Profiler) Migration(copyCycles, stallCycles int64) {
	p.migrations++
	p.migCycles += copyCycles + stallCycles
	if copyCycles >= 0 {
		p.stageHists[stageIndex["migration"]].Observe(copyCycles)
	}
}

// FinishRun publishes the aggregates into the bound registry and verifies
// the run drained: every started access ended and every controller service
// record was claimed by a completion.
func (p *Profiler) FinishRun() {
	if n := len(p.inflight); n > 0 {
		p.violate("%d accesses still in flight at end of run", n)
	}
	if n := len(p.pending); n > 0 {
		p.violate("%d DRAM service records never matched a completion", n)
	}
	reg := p.obs.Reg
	reg.Counter("prof", "accesses").Add(p.accesses)
	reg.Counter("prof", "end_to_end_cycles").Add(p.endToEnd)
	for c := Component(0); c < NumComponents; c++ {
		reg.Counter("prof", "stage_cycles", "stage="+compStage[c], "sub="+compSub[c]).Add(p.comp[c])
	}
	for core := range p.perCore {
		for c := Component(0); c < NumComponents; c++ {
			if v := p.perCore[core][c]; v != 0 {
				reg.Counter("prof", "core_cycles",
					fmt.Sprintf("core=%d", core), "stage="+compStage[c], "sub="+compSub[c]).Add(v)
			}
		}
	}
	if p.migrations != 0 {
		reg.Counter("prof", "migrations").Add(p.migrations)
		reg.Counter("prof", "migration_cycles").Add(p.migCycles)
	}
	for mc := range p.mcQueue {
		if p.mcQueue[mc] != 0 || p.mcService[mc] != 0 {
			reg.Counter("prof", "mc_cycles", fmt.Sprintf("mc=%d", mc), "sub=queue").Add(p.mcQueue[mc])
			reg.Counter("prof", "mc_cycles", fmt.Sprintf("mc=%d", mc), "sub=service").Add(p.mcService[mc])
		}
	}
}

// Profile snapshots the bound run's attribution into a self-contained
// value (histograms are cloned, so the snapshot survives the registry).
func (p *Profiler) Profile() *Profile {
	out := &Profile{
		Cores:           len(p.perCore),
		MCs:             len(p.mcQueue),
		Accesses:        p.accesses,
		EndToEnd:        p.endToEnd,
		Migrations:      p.migrations,
		MigrationCycles: p.migCycles,
		Comp:            make([]int64, NumComponents),
		PerCore:         make([][]int64, len(p.perCore)),
		MCQueue:         append([]int64(nil), p.mcQueue...),
		MCService:       append([]int64(nil), p.mcService...),
		End:             p.endHist.Clone(),
		Stages:          make(map[string]*obs.Histogram, len(StageNames)),
		Violations:      append([]string(nil), p.violations...),
	}
	copy(out.Comp, p.comp[:])
	for i := range p.perCore {
		out.PerCore[i] = append([]int64(nil), p.perCore[i][:]...)
	}
	for i, s := range StageNames {
		out.Stages[s] = p.stageHists[i].Clone()
	}
	return out
}

// Profile is one run's (or one aggregated sweep's) complete attribution.
type Profile struct {
	Cores     int
	MCs       int
	Accesses  int64
	EndToEnd  int64   // Σ per-access end-to-end cycles
	Comp      []int64 // indexed by Component
	PerCore   [][]int64
	MCQueue   []int64
	MCService []int64

	// Migration overhead, outside the per-access attribution (and therefore
	// outside the Attributed()==EndToEnd identity): committed page
	// migrations and their total copy+shootdown cycles.
	Migrations      int64
	MigrationCycles int64

	End    *obs.Histogram            // end-to-end latency distribution
	Stages map[string]*obs.Histogram // per-visit latency by coarse stage

	// Violations carries the profiler's internal consistency failures into
	// the snapshot (empty for a clean run — the profile-smoke gate asserts
	// it).
	Violations []string
}

// Attributed returns the sum of every component — by construction equal to
// EndToEnd for a clean run (the conservation invariant the tests enforce).
func (p *Profile) Attributed() int64 {
	var s int64
	for _, v := range p.Comp {
		s += v
	}
	return s
}

// PerAccess returns the component's mean cycles per completed access.
func (p *Profile) PerAccess(c Component) float64 {
	if p.Accesses == 0 {
		return 0
	}
	return float64(p.Comp[c]) / float64(p.Accesses)
}

// Add folds another profile into p (sweep aggregation). Core and MC slices
// grow to cover the larger machine; histograms merge bucket-wise.
func (p *Profile) Add(o *Profile) {
	if o == nil {
		return
	}
	if p.Comp == nil {
		p.Comp = make([]int64, NumComponents)
	}
	for i := range o.Comp {
		p.Comp[i] += o.Comp[i]
	}
	for len(p.PerCore) < len(o.PerCore) {
		p.PerCore = append(p.PerCore, make([]int64, NumComponents))
	}
	for i := range o.PerCore {
		for c := range o.PerCore[i] {
			p.PerCore[i][c] += o.PerCore[i][c]
		}
	}
	for len(p.MCQueue) < len(o.MCQueue) {
		p.MCQueue = append(p.MCQueue, 0)
		p.MCService = append(p.MCService, 0)
	}
	for i := range o.MCQueue {
		p.MCQueue[i] += o.MCQueue[i]
		p.MCService[i] += o.MCService[i]
	}
	if p.Cores < o.Cores {
		p.Cores = o.Cores
	}
	if p.MCs < o.MCs {
		p.MCs = o.MCs
	}
	p.Accesses += o.Accesses
	p.EndToEnd += o.EndToEnd
	p.Migrations += o.Migrations
	p.MigrationCycles += o.MigrationCycles
	if p.End == nil {
		p.End = obs.NewHistogram(histBounds())
	}
	p.End.Absorb(o.End)
	if p.Stages == nil {
		p.Stages = make(map[string]*obs.Histogram, len(StageNames))
	}
	for _, s := range StageNames {
		if o.Stages[s] == nil {
			continue
		}
		if p.Stages[s] == nil {
			p.Stages[s] = obs.NewHistogram(histBounds())
		}
		p.Stages[s].Absorb(o.Stages[s])
	}
	p.Violations = append(p.Violations, o.Violations...)
}
