package prof

import (
	"bytes"
	"compress/gzip"
	"io"
	"strings"
	"testing"

	"offchip/internal/noc"
)

func testParams() Params {
	return Params{
		Cores: 2,
		MCs:   1,
		NoC:   noc.Config{HopLatency: 2, LinkOccupancy: 1, Contention: true},
	}
}

// driveAccess replays one synthetic off-chip access through every hook the
// simulator fires: L1 miss, L2 miss, request transit, directory, DRAM
// queue+service, response transit, retire.
func driveAccess(p *Profiler, core int, issue int64) {
	id := p.Start(core, issue)
	t := issue + 3 // L1 lookup
	p.StageAt(id, CompL1, t)
	t += 7 // L2 lookup
	p.StageAt(id, CompL2, t)
	// 4 hops, 12 zero-load cycles (perHop=3), 5 cycles of link queueing.
	p.TransitAt(id, TransitReq, t, t+17, 4)
	t += 17
	t += 2 // directory lookup
	p.StageAt(id, CompDirLookup, t)
	// DRAM: arrives at t, waits 6, serves 20.
	finish := t + 26
	p.Serve(0, 0, t, t+6, finish, 0)
	p.DRAMDone(id, 0, finish)
	t = finish
	// Response: 4 hops, no queueing.
	p.TransitAt(id, TransitResp, t, t+12, 4)
	t += 12
	p.End(id, t)
}

func TestSyntheticConservation(t *testing.T) {
	p := New()
	p.Bind(testParams())
	if p.perHop != 3 {
		t.Fatalf("perHop = %d, want 3 (HopLatency+LinkOccupancy)", p.perHop)
	}
	driveAccess(p, 0, 100)
	driveAccess(p, 1, 250)
	p.FinishRun()
	if v := p.Violations(); len(v) != 0 {
		t.Fatalf("clean run recorded violations: %v", v)
	}
	prof := p.Profile()
	if prof.Accesses != 2 {
		t.Fatalf("accesses = %d, want 2", prof.Accesses)
	}
	if got, want := prof.Attributed(), prof.EndToEnd; got != want {
		t.Fatalf("attributed %d != end-to-end %d", got, want)
	}
	if prof.Comp[CompRetire] != 0 {
		t.Fatalf("retire residual = %d, want 0", prof.Comp[CompRetire])
	}
	// Per-component expectations for one access, doubled.
	want := map[Component]int64{
		CompL1:           2 * 3,
		CompL2:           2 * 7,
		CompNoCReqHops:   2 * 12,
		CompNoCReqQueue:  2 * 5,
		CompDirLookup:    2 * 2,
		CompDRAMQueue:    2 * 6,
		CompDRAMService:  2 * 20,
		CompNoCRespHops:  2 * 12,
		CompNoCRespQueue: 0,
	}
	for c, w := range want {
		if prof.Comp[c] != w {
			t.Errorf("%v = %d, want %d", c, prof.Comp[c], w)
		}
	}
	// Per-core split: each core ran one identical access.
	for c := Component(0); c < NumComponents; c++ {
		if prof.PerCore[0][c] != prof.PerCore[1][c] {
			t.Errorf("per-core mismatch at %v: %d vs %d", c, prof.PerCore[0][c], prof.PerCore[1][c])
		}
	}
	if prof.MCQueue[0] != 12 || prof.MCService[0] != 40 {
		t.Errorf("mc split = %d/%d, want 12/40", prof.MCQueue[0], prof.MCService[0])
	}
}

func TestTransitZeroLoadClamped(t *testing.T) {
	p := New()
	p.Bind(testParams())
	id := p.Start(0, 0)
	// 10 hops would be 30 zero-load cycles, but only 12 elapsed: the split
	// must clamp (and record the inconsistency).
	p.TransitAt(id, TransitReq, 0, 12, 10)
	p.End(id, 12)
	if p.comp[CompNoCReqHops] != 12 || p.comp[CompNoCReqQueue] != 0 {
		t.Fatalf("clamped split = %d/%d, want 12/0", p.comp[CompNoCReqHops], p.comp[CompNoCReqQueue])
	}
	if len(p.Violations()) == 0 {
		t.Fatal("over-long zero-load transit should record a violation")
	}
}

func TestUncorrelatedDRAMDoneKeepsConservation(t *testing.T) {
	p := New()
	p.Bind(testParams())
	id := p.Start(0, 0)
	p.DRAMDone(id, 0, 40) // no Serve record
	p.End(id, 40)
	if len(p.Violations()) == 0 {
		t.Fatal("missing service record should record a violation")
	}
	prof := p.Profile()
	if prof.Attributed() != prof.EndToEnd {
		t.Fatalf("conservation broken: %d != %d", prof.Attributed(), prof.EndToEnd)
	}
}

func TestProfileAdd(t *testing.T) {
	mk := func(issue int64) *Profile {
		p := New()
		p.Bind(testParams())
		driveAccess(p, 0, issue)
		return p.Profile()
	}
	a, b := mk(0), mk(1000)
	sum := &Profile{}
	sum.Add(a)
	sum.Add(b)
	if sum.Accesses != 2 {
		t.Fatalf("accesses = %d, want 2", sum.Accesses)
	}
	if sum.Attributed() != a.Attributed()+b.Attributed() {
		t.Fatal("component sums did not add")
	}
	if sum.EndToEnd != a.EndToEnd+b.EndToEnd {
		t.Fatal("end-to-end did not add")
	}
	if sum.End.Total() != 2 {
		t.Fatalf("merged end histogram total = %d, want 2", sum.End.Total())
	}
	if len(sum.Violations) != 0 {
		t.Fatalf("clean profiles merged into violations: %v", sum.Violations)
	}
}

func TestFoldedStacks(t *testing.T) {
	p := New()
	p.Bind(testParams())
	driveAccess(p, 1, 0)
	folded := p.Profile().FoldedStacks("apsi")
	if !strings.Contains(folded, "apsi;core1;dram;service 20\n") {
		t.Fatalf("folded stacks missing dram service line:\n%s", folded)
	}
	if strings.Contains(folded, "core0") {
		t.Fatalf("idle core leaked into folded stacks:\n%s", folded)
	}
	for _, line := range strings.Split(strings.TrimSuffix(folded, "\n"), "\n") {
		if len(strings.Fields(line)) != 2 {
			t.Fatalf("folded line %q is not 'stack weight'", line)
		}
	}
}

func TestWritePprofIsGzippedProto(t *testing.T) {
	p := New()
	p.Bind(testParams())
	driveAccess(p, 0, 0)
	var buf bytes.Buffer
	if err := p.Profile().WritePprof(&buf); err != nil {
		t.Fatal(err)
	}
	gr, err := gzip.NewReader(&buf)
	if err != nil {
		t.Fatalf("output is not gzip: %v", err)
	}
	raw, err := io.ReadAll(gr)
	if err != nil {
		t.Fatalf("gunzip: %v", err)
	}
	if len(raw) == 0 {
		t.Fatal("empty profile body")
	}
	for _, want := range []string{"sim_cycles", "dram;service", "core0"} {
		if !bytes.Contains(raw, []byte(want)) {
			t.Errorf("profile body missing string %q", want)
		}
	}
}

func TestDiffTableSharesSumToTotal(t *testing.T) {
	base := New()
	base.Bind(testParams())
	driveAccess(base, 0, 0)
	opt := New()
	opt.Bind(testParams())
	// The "optimized" run: same access with less DRAM queueing.
	id := opt.Start(0, 0)
	opt.StageAt(id, CompL1, 3)
	opt.StageAt(id, CompL2, 10)
	opt.TransitAt(id, TransitReq, 10, 27, 4)
	opt.StageAt(id, CompDirLookup, 29)
	opt.Serve(0, 0, 29, 30, 50, 0)
	opt.DRAMDone(id, 0, 50)
	opt.TransitAt(id, TransitResp, 50, 62, 4)
	opt.End(id, 62)

	tbl := DiffTable("diff", base.Profile(), opt.Profile())
	s := tbl.String()
	if !strings.Contains(s, "end-to-end") || !strings.Contains(s, "100.0%") {
		t.Fatalf("diff table missing total row:\n%s", s)
	}
	if !strings.Contains(s, "dram") {
		t.Fatalf("diff table missing dram rows:\n%s", s)
	}
}

func TestQuantileTable(t *testing.T) {
	p := New()
	p.Bind(testParams())
	driveAccess(p, 0, 0)
	s := QuantileTable("quantiles", p.Profile()).String()
	for _, want := range []string{"l1", "dram", "end-to-end", "p99"} {
		if !strings.Contains(s, want) {
			t.Fatalf("quantile table missing %q:\n%s", want, s)
		}
	}
}

func TestSummarize(t *testing.T) {
	p := New()
	p.Bind(testParams())
	driveAccess(p, 0, 0)
	sum := p.Profile().Summarize()
	if sum.Accesses != 1 || sum.Attributed != sum.EndToEnd {
		t.Fatalf("summary %+v not conservative", sum)
	}
	var share float64
	for _, c := range sum.Components {
		share += c.Share
	}
	if share < 0.999 || share > 1.001 {
		t.Fatalf("component shares sum to %f, want 1", share)
	}
	totals := p.Profile().StageTotals()
	if totals["dram;service"] != 20 {
		t.Fatalf("stage totals = %v", totals)
	}
}
