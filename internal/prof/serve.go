package prof

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"offchip/internal/obs"
)

// The live observability plane: an opt-in HTTP endpoint (the -serve flag
// of cmd/offchip and cmd/benchtab) exposing the obs registry as Prometheus
// text exposition (/metrics), sweep progress as JSON (/progress), and the
// current attribution snapshot (/profile). The listener binds before the
// run starts — a bad address fails fast instead of racing a goroutine —
// and shuts down cleanly at exit; cmd/sweepd will mount the same handler.

// Progress is the /progress payload. The serving side fills Elapsed and
// ETA from its own clock; callbacks fill the job counts.
type Progress struct {
	TotalJobs  int     `json:"total_jobs"`
	DoneJobs   int     `json:"done_jobs"`
	InFlight   int     `json:"in_flight"`
	Failed     int     `json:"failed"`
	ElapsedSec float64 `json:"elapsed_sec"`
	ETASec     float64 `json:"eta_sec"`
}

// ServerConfig wires the data sources of a Server. All callbacks must be
// safe for concurrent use; nil callbacks serve empty payloads.
type ServerConfig struct {
	// Addr is the listen address (e.g. ":9090", "127.0.0.1:0").
	Addr string
	// Registries returns the label→registry map /metrics exports. Labels
	// become the source="..." label on every exported sample.
	Registries func() map[string]*obs.Registry
	// Profiles returns the label→profile map /profile serves.
	Profiles func() map[string]*Profile
	// Progress returns the current job counts for /progress.
	Progress func() Progress
	// Extra mounts additional handlers on the plane's mux (path →
	// handler) — how the sweep service adds /submit, /jobs/, and /state
	// next to the built-in endpoints. Paths must not collide with the
	// built-ins ("/", "/metrics", "/progress", "/profile").
	Extra map[string]http.HandlerFunc
}

// Server is the live observability endpoint.
type Server struct {
	cfg   ServerConfig
	ln    net.Listener
	srv   *http.Server
	start time.Time

	mu     sync.Mutex
	closed bool
}

// NewServer binds the listener (failing fast on a bad address) and returns
// the server without serving yet; call Start to begin handling requests.
func NewServer(cfg ServerConfig) (*Server, error) {
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("prof: serve: %w", err)
	}
	s := &Server{cfg: cfg, ln: ln, start: time.Now()}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/progress", s.handleProgress)
	mux.HandleFunc("/profile", s.handleProfile)
	for path, h := range cfg.Extra {
		mux.HandleFunc(path, h)
	}
	s.srv = &http.Server{Handler: mux}
	return s, nil
}

// Addr returns the bound listen address (resolves ":0" to the real port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Start serves requests on the bound listener until Close.
func (s *Server) Start() {
	go func() {
		if err := s.srv.Serve(s.ln); err != nil && err != http.ErrServerClosed {
			// The listener was bound at construction, so a serve error here
			// is a shutdown race at worst; nothing useful to surface.
			_ = err
		}
	}()
}

// Close shuts the server down and releases the listener. Safe to call
// more than once.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.srv.Close()
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	fmt.Fprint(w, "offchip observability plane\n/metrics  Prometheus text exposition\n/progress job progress JSON\n/profile  latency attribution JSON\n")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var regs map[string]*obs.Registry
	if s.cfg.Registries != nil {
		regs = s.cfg.Registries()
	}
	WriteExposition(w, regs)
}

func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	var p Progress
	if s.cfg.Progress != nil {
		p = s.cfg.Progress()
	}
	p.ElapsedSec = time.Since(s.start).Seconds()
	if p.DoneJobs > 0 && p.DoneJobs < p.TotalJobs {
		p.ETASec = p.ElapsedSec / float64(p.DoneJobs) * float64(p.TotalJobs-p.DoneJobs)
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(p)
}

func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	out := map[string]Summary{}
	if s.cfg.Profiles != nil {
		for label, p := range s.cfg.Profiles() {
			if p != nil {
				out[label] = p.Summarize()
			}
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(out)
}

// --- Prometheus text exposition ---------------------------------------

// sanitizeMetricName maps a registry component/name to the Prometheus
// name charset [a-zA-Z_:][a-zA-Z0-9_:]*.
func sanitizeMetricName(s string) string {
	var b strings.Builder
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

func sanitizeLabelName(s string) string { return sanitizeMetricName(s) }

// promLabels renders a label set ({} omitted when empty), keys sorted.
func promLabels(labels map[string]string, extra ...[2]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var parts []string
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%q", sanitizeLabelName(k), labels[k]))
	}
	for _, kv := range extra {
		parts = append(parts, fmt.Sprintf("%s=%q", sanitizeLabelName(kv[0]), kv[1]))
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// WriteExposition writes every registry's snapshot in Prometheus text
// exposition format (one family per component/name, `# TYPE` lines,
// cumulative histogram buckets with le labels, _sum and _count series).
// The source map key becomes a source="..." label; sources and samples
// are emitted in sorted order, so the output is deterministic.
func WriteExposition(w io.Writer, sources map[string]*obs.Registry) {
	names := make([]string, 0, len(sources))
	for n := range sources {
		names = append(names, n)
	}
	sort.Strings(names)

	type family struct {
		name  string
		typ   string
		lines []string
	}
	byName := map[string]*family{}
	var order []string
	add := func(name, typ, line string) {
		f := byName[name]
		if f == nil {
			f = &family{name: name, typ: typ}
			byName[name] = f
			order = append(order, name)
		}
		f.lines = append(f.lines, line)
	}

	for _, src := range names {
		reg := sources[src]
		if reg == nil {
			continue
		}
		srcLabel := [2]string{"source", src}
		for _, p := range reg.Snapshot(0) {
			name := "offchip_" + sanitizeMetricName(p.Component) + "_" + sanitizeMetricName(p.Name)
			switch p.Type {
			case "counter":
				add(name, "counter", fmt.Sprintf("%s%s %d", name, promLabels(p.Labels, srcLabel), p.Value))
			case "gauge", "timeweighted":
				add(name, "gauge", fmt.Sprintf("%s%s %d", name, promLabels(p.Labels, srcLabel), p.Value))
			case "histogram":
				var cum int64
				for i, c := range p.Counts {
					cum += c
					le := "+Inf"
					if i < len(p.Buckets) {
						le = strconv.FormatInt(p.Buckets[i], 10)
					}
					add(name, "histogram", fmt.Sprintf("%s_bucket%s %d",
						name, promLabels(p.Labels, srcLabel, [2]string{"le", le}), cum))
				}
				add(name, "histogram", fmt.Sprintf("%s_sum%s %d", name, promLabels(p.Labels, srcLabel), p.Sum))
				add(name, "histogram", fmt.Sprintf("%s_count%s %d", name, promLabels(p.Labels, srcLabel), p.Count))
			}
		}
	}

	for _, n := range order {
		f := byName[n]
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		for _, l := range f.lines {
			fmt.Fprintln(w, l)
		}
	}
}

// ParseExposition validates Prometheus text exposition: every non-comment
// line must be `name{labels} value`, names in the legal charset, label
// values quoted, values parseable floats. It returns the family and
// sample counts — the profile-smoke gate asserts both are positive.
func ParseExposition(r io.Reader) (families, samples int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(rest) != 2 || !validMetricName(rest[0]) {
				return 0, 0, fmt.Errorf("prof: exposition line %d: bad TYPE line %q", lineNo, line)
			}
			switch rest[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return 0, 0, fmt.Errorf("prof: exposition line %d: unknown type %q", lineNo, rest[1])
			}
			families++
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // other comments (HELP etc.)
		}
		name := line
		rest := ""
		if i := strings.IndexByte(line, '{'); i >= 0 {
			name = line[:i]
			j := strings.LastIndexByte(line, '}')
			if j < i {
				return 0, 0, fmt.Errorf("prof: exposition line %d: unbalanced braces", lineNo)
			}
			rest = strings.TrimSpace(line[j+1:])
		} else if i := strings.IndexByte(line, ' '); i >= 0 {
			name = line[:i]
			rest = strings.TrimSpace(line[i+1:])
		}
		if !validMetricName(name) {
			return 0, 0, fmt.Errorf("prof: exposition line %d: bad metric name %q", lineNo, name)
		}
		val := rest
		if i := strings.IndexByte(rest, ' '); i >= 0 {
			val = rest[:i] // optional trailing timestamp
		}
		if _, err := strconv.ParseFloat(val, 64); err != nil {
			return 0, 0, fmt.Errorf("prof: exposition line %d: bad value %q", lineNo, val)
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		return 0, 0, err
	}
	return families, samples, nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}
