package prof

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"

	"offchip/internal/obs"
)

func expositionFixture() map[string]*obs.Registry {
	r := obs.NewRegistry()
	r.Counter("sim", "accesses", "node=3").Add(42)
	r.Gauge("dram", "queue_depth", "mc=0").Set(7)
	h := r.Histogram("prof", "access_latency", obs.ExponentialBuckets(1, 2, 4))
	h.Observe(3)
	h.Observe(100)
	return map[string]*obs.Registry{"baseline": r}
}

func TestExpositionRoundTrip(t *testing.T) {
	var b strings.Builder
	WriteExposition(&b, expositionFixture())
	out := b.String()
	for _, want := range []string{
		"# TYPE offchip_sim_accesses counter",
		`offchip_sim_accesses{node="3",source="baseline"} 42`,
		"# TYPE offchip_prof_access_latency histogram",
		`le="+Inf"`,
		"offchip_prof_access_latency_sum",
		"offchip_prof_access_latency_count",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	families, samples, err := ParseExposition(strings.NewReader(out))
	if err != nil {
		t.Fatalf("own exposition does not parse: %v", err)
	}
	if families < 3 || samples < 5 {
		t.Fatalf("families=%d samples=%d, want >=3 and >=5", families, samples)
	}
	// Determinism: two renders are byte-identical.
	var b2 strings.Builder
	WriteExposition(&b2, expositionFixture())
	if out != b2.String() {
		t.Fatal("exposition output is not deterministic")
	}
}

func TestParseExpositionRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"3invalid_name 1\n",
		"ok_name not-a-number\n",
		"unbalanced{le=\"1\" 3\n",
		"# TYPE bad_type florb\nx 1\n",
	} {
		if _, _, err := ParseExposition(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseExposition accepted %q", bad)
		}
	}
}

func TestNewServerBadAddrFailsFast(t *testing.T) {
	if _, err := NewServer(ServerConfig{Addr: "256.0.0.1:bad"}); err == nil {
		t.Fatal("bad listen address should fail at construction")
	}
}

func TestServerEndpoints(t *testing.T) {
	p := New()
	p.Bind(testParams())
	driveAccess(p, 0, 0)
	p.FinishRun()
	prof := p.Profile()
	reg := p.obs.Reg

	s, err := NewServer(ServerConfig{
		Addr:       "127.0.0.1:0",
		Registries: func() map[string]*obs.Registry { return map[string]*obs.Registry{"run": reg} },
		Profiles:   func() map[string]*Profile { return map[string]*Profile{"run": prof} },
		Progress:   func() Progress { return Progress{TotalJobs: 4, DoneJobs: 2, InFlight: 1} },
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Close()
	base := "http://" + s.Addr()

	get := func(path string) []byte {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return body
	}

	metrics := get("/metrics")
	families, samples, err := ParseExposition(strings.NewReader(string(metrics)))
	if err != nil || families == 0 || samples == 0 {
		t.Fatalf("/metrics invalid (families=%d samples=%d): %v", families, samples, err)
	}
	if !strings.Contains(string(metrics), "offchip_prof_stage_cycles") {
		t.Fatalf("/metrics missing published profiler counters:\n%s", metrics)
	}

	var prog Progress
	if err := json.Unmarshal(get("/progress"), &prog); err != nil {
		t.Fatalf("/progress: %v", err)
	}
	if prog.DoneJobs != 2 || prog.TotalJobs != 4 || prog.ETASec <= 0 {
		t.Fatalf("/progress = %+v", prog)
	}

	var profiles map[string]Summary
	if err := json.Unmarshal(get("/profile"), &profiles); err != nil {
		t.Fatalf("/profile: %v", err)
	}
	if got := profiles["run"]; got.Accesses != 1 || got.Attributed != got.EndToEnd {
		t.Fatalf("/profile = %+v", got)
	}

	if !strings.Contains(string(get("/")), "/metrics") {
		t.Fatal("index page should list the endpoints")
	}

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestManifestWrite(t *testing.T) {
	m := NewManifest()
	m.Seed = 7
	m.Config["apps"] = "apsi"
	m.Jobs = []string{"j1:mode=compare,app=apsi"}
	m.StageTotals = map[string]int64{"dram;service": 20}
	path := t.TempDir() + "/out.jsonl.manifest.json"
	if err := m.Write(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Manifest
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Seed != 7 || back.GitRev == "" || back.StageTotals["dram;service"] != 20 {
		t.Fatalf("manifest round-trip = %+v", back)
	}
	if ManifestPath("results.jsonl") != "results.jsonl.manifest.json" {
		t.Fatal("ManifestPath convention changed")
	}
}
