package prof_test

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"offchip/internal/obs"
	"offchip/internal/prof"
	"offchip/internal/runner"
)

// TestProfileSmoke is the `make profile-smoke` gate: a small three-way
// comparison with the profiler attached must (a) attribute every access's
// latency conservatively — the components sum exactly to the end-to-end
// latency the probes observed, with no internal violations and no
// unattributed retire residual — and (b) serve a parseable Prometheus
// exposition of the run's registries.
func TestProfileSmoke(t *testing.T) {
	spec := runner.JobSpec{Mode: runner.ModeCompare, App: "apsi", Cap: 2000, Prof: true}
	out := spec.Execute()
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if len(out.Profiles) != 3 {
		t.Fatalf("got %d profiles, want baseline/optimized/optimal", len(out.Profiles))
	}
	agg := &prof.Profile{}
	for run, p := range out.Profiles {
		if p.Accesses == 0 {
			t.Fatalf("%s: no accesses profiled", run)
		}
		if got, want := p.Attributed(), p.EndToEnd; got != want {
			t.Errorf("%s: attributed %d cycles != end-to-end %d (drift %d)",
				run, got, want, got-want)
		}
		if r := p.Comp[prof.CompRetire]; r != 0 {
			t.Errorf("%s: %d unattributed retire cycles", run, r)
		}
		if len(p.Violations) != 0 {
			t.Errorf("%s: profiler violations: %v", run, p.Violations)
		}
		if p.End.Total() != p.Accesses {
			t.Errorf("%s: end histogram total %d != accesses %d", run, p.End.Total(), p.Accesses)
		}
		agg.Add(p)
	}
	// Sweep aggregation keeps the invariant.
	if agg.Attributed() != agg.EndToEnd {
		t.Errorf("aggregated profile not conservative: %d != %d", agg.Attributed(), agg.EndToEnd)
	}

	// The differential table must exist for baseline vs optimized and close
	// with the 100% total row.
	diff := prof.DiffTable("smoke", out.Profiles["baseline"], out.Profiles["optimized"]).String()
	if !strings.Contains(diff, "end-to-end") || !strings.Contains(diff, "100.0%") {
		t.Errorf("differential table malformed:\n%s", diff)
	}

	// Live plane: serve the run registries and re-parse the exposition.
	regs := map[string]*obs.Registry{}
	for run, o := range out.Observers {
		if o != nil && o.Reg != nil {
			regs[run] = o.Reg
		}
	}
	srv, err := prof.NewServer(prof.ServerConfig{
		Addr:       "127.0.0.1:0",
		Registries: func() map[string]*obs.Registry { return regs },
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	families, samples, err := prof.ParseExposition(strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("/metrics does not parse: %v", err)
	}
	if families == 0 || samples == 0 {
		t.Fatalf("/metrics empty: families=%d samples=%d", families, samples)
	}
	if !strings.Contains(string(body), "offchip_prof_stage_cycles") {
		t.Error("/metrics missing the profiler's published stage cycles")
	}
}
