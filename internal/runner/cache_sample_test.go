package runner

// Differential no-change guarantees for the trace cache and the sampling
// knob: attaching a Cache must not move a single byte of any outcome, and a
// spec with no Sample renders exactly the historical job ID, so every
// recorded figure and replay handle stays valid.

import (
	"bytes"
	"strings"
	"testing"

	"offchip/internal/tracecache"
)

// TestCacheDoesNotChangeOutcomes runs the heterogeneous sweep twice — cold,
// then with a shared in-process cache — and demands byte-identical canonical
// outcomes, plus evidence the cache was actually exercised.
func TestCacheDoesNotChangeOutcomes(t *testing.T) {
	// The heterogeneous sweep plus seed variants: the jitter seed is not a
	// trace input, so reseeded jobs must share cached streams.
	specs := append(testSpecs(),
		JobSpec{Mode: ModeCompare, App: "apsi", Cap: 100, Seed: 7},
		JobSpec{Mode: ModeBaseline, App: "gafort", Cap: 100, Seed: 9},
	)
	plain, err := Run(specs, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.FirstError(); err != nil {
		t.Fatal(err)
	}
	cache, err := tracecache.New("")
	if err != nil {
		t.Fatal(err)
	}
	cached := make([]JobSpec, len(specs))
	for i, s := range specs {
		s.Cache = cache
		cached[i] = s
	}
	withCache, err := Run(cached, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := withCache.FirstError(); err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		if got, want := cached[i].ID(), specs[i].ID(); got != want {
			t.Errorf("cache changed job ID: %s != %s", got, want)
		}
		a, err := plain.Outcomes[i].CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		b, err := withCache.Outcomes[i].CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("job %s: cached outcome differs from uncached\nplain:  %s\ncached: %s",
				specs[i].ID(), a, b)
		}
	}
	st := cache.Stats()
	if st.Misses == 0 {
		t.Error("cache saw no generation at all")
	}
	// The sweep shares keys across jobs (two compare jobs on apsi/default,
	// and every compare's baseline stream doubles as its optimal input), so
	// there must be real sharing, not just pass-through.
	if st.Hits == 0 {
		t.Errorf("cache saw no hits across the sweep: %+v", st)
	}
}

// TestSampleAbsentFromHistoricalIDs: with no Sample, IDs render without a
// sample= field — bit-compatible with every ID recorded before sampling
// existed — and the Cache pointer never appears in identity at all.
func TestSampleAbsentFromHistoricalIDs(t *testing.T) {
	s := JobSpec{App: "apsi", Cap: 100}
	if id := s.ID(); strings.Contains(id, "sample") {
		t.Errorf("unsampled ID %q mentions sampling", id)
	}
	cache, err := tracecache.New("")
	if err != nil {
		t.Fatal(err)
	}
	withCache := s
	withCache.Cache = cache
	if withCache.ID() != s.ID() {
		t.Errorf("cache pointer leaked into the job ID: %s != %s", withCache.ID(), s.ID())
	}
	// "off" is the explicit spelling of no sampling; it normalizes away.
	off := s
	off.Sample = "off"
	if off.Normalized().Sample != "" || off.ID() != s.ID() {
		t.Errorf("Sample=off did not normalize to the historical ID: %s", off.ID())
	}
}

// TestSampleFieldRoundTrip: sampled IDs carry the canonical spec string and
// survive ParseJobID; malformed specs fail at Build with a clear error.
func TestSampleFieldRoundTrip(t *testing.T) {
	s := JobSpec{App: "apsi", Cap: 100, Sample: "on"}
	n := s.Normalized()
	if n.Sample != "w4f0.1u1r1" {
		t.Errorf("Sample=on normalized to %q", n.Sample)
	}
	id := s.ID()
	if !strings.Contains(id, "sample=w4f0.1u1r1") {
		t.Errorf("sampled ID %q lacks the canonical sample field", id)
	}
	got, err := ParseJobID(id)
	if err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, n)
	}
	if _, err := ParseJobID("j1:app=apsi,sample=bogus"); err == nil {
		t.Error("malformed sample spec accepted in an ID")
	}
	bad := JobSpec{App: "apsi", Sample: "wXf1u1r1"}
	if _, _, _, err := bad.Normalized().Build(); err == nil {
		t.Error("Build accepted an unparseable sample spec")
	}
}

// TestSampledJobOutcomes: a sampled compare carries three per-run sampled
// results; sampled baseline/optimized jobs surface the aggregate as Run and
// the extrapolated exec time as the merge horizon.
func TestSampledJobOutcomes(t *testing.T) {
	specs := []JobSpec{
		{Mode: ModeCompare, App: "apsi", Cap: 600, Sample: "on"},
		{Mode: ModeBaseline, App: "apsi", Cap: 600, Sample: "on"},
	}
	res, err := Run(specs, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
	cmp := res.Outcomes[0]
	for _, run := range []string{"baseline", "optimized", "optimal"} {
		sr := cmp.Sampled[run]
		if sr == nil {
			t.Fatalf("compare outcome lacks sampled result for %q", run)
		}
		if sr.Exact {
			t.Errorf("%s: cap 600 should sample, not cover", run)
		}
		if sr.Est.ExecTime.Mean <= 0 || sr.Est.ExecTime.Half <= 0 {
			t.Errorf("%s: degenerate exec bound %+v", run, sr.Est.ExecTime)
		}
	}
	if cmp.Comparison == nil || cmp.Comparison.Baseline.ExecTime <= 0 {
		t.Error("sampled compare produced no distilled metrics")
	}
	base := res.Outcomes[1]
	sr := base.Sampled["baseline"]
	if sr == nil || base.Run == nil {
		t.Fatal("sampled baseline outcome incomplete")
	}
	if base.Run != sr.Aggregate {
		t.Error("baseline Run is not the sampled aggregate")
	}
	if want := int64(sr.Est.ExecTime.Mean + 0.5); base.ExecTimes["baseline"] != want {
		t.Errorf("merge horizon %d, want extrapolated %d", base.ExecTimes["baseline"], want)
	}
}

// TestSampledReplayDeterminism: a sampled job replayed from its ID alone
// reproduces the sweep outcome byte for byte.
func TestSampledReplayDeterminism(t *testing.T) {
	spec := JobSpec{Mode: ModeCompare, App: "gafort", Cap: 600, Sample: "on"}
	res, err := Run([]JobSpec{spec}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
	replayed, err := Replay(spec.ID())
	if err != nil {
		t.Fatal(err)
	}
	want, err := res.Outcomes[0].CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := replayed.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Errorf("sampled replay differs from sweep:\nsweep:  %s\nreplay: %s", want, got)
	}
}
