package runner

// Executor abstracts where a job runs. The default executes in the calling
// process (the work-stealing pool's historical behavior); the sweep service
// plugs in a process-fleet executor that ships the spec to a worker process
// and rebuilds the outcome from the wire form. Any executor must preserve
// the determinism contract: for a given canonical job ID, the outcome's
// deterministic projection (CanonicalJSON, per-run registries, exec times)
// is identical wherever and whenever the job runs.
type Executor interface {
	Execute(spec JobSpec) *JobOutcome
}

// localExecutor runs the job in-process (behind the panic-capturing path).
type localExecutor struct{}

func (localExecutor) Execute(spec JobSpec) *JobOutcome { return spec.execute() }

// Local is the in-process executor — the default when Options.Executor is
// nil.
var Local Executor = localExecutor{}
