package runner

import (
	"reflect"
	"testing"
)

// FuzzParseJobID throws arbitrary strings at the canonical job-ID parser.
// The contract: ParseJobID never panics, and anything it accepts renders a
// canonical ID that is a fixed point — re-parsing yields the same normalized
// spec and the same ID bytes. That fixed point is what makes job IDs safe as
// replay handles, dedup keys, and journal entries in the sweep service.
func FuzzParseJobID(f *testing.F) {
	// Seed with real canonical IDs, including the sample= and trace-cache-era
	// variants, plus near-misses.
	seeds := []JobSpec{
		{App: "apsi"},
		{Mode: ModeBaseline, App: "swim", Interleave: "page", Cap: 100},
		{Mode: ModeAnalyze, App: "fma3d", Seed: 77},
		{App: "gafort", L2: "shared", Mapping: "m2", Placement: "diamond", MeshX: 4, MeshY: 4, NumMCs: 8},
		{App: "apsi", Sample: "on"},
		{App: "apsi", Sample: "w4f0.1u1r1", Threads: 16, BanksPerMC: 2, MLPWindow: 4},
		{App: "mgrid", Policy: "osassisted", Cap: -1},
	}
	for _, s := range seeds {
		f.Add(s.ID())
	}
	f.Add("j1:")
	f.Add("j1:mode=compare")
	f.Add("j1:app=apsi,mesh=8x8,sample=off")
	f.Add("j0:app=apsi")
	f.Add("j1:app=apsi,mesh=8x,cap=9999999999999999999999")
	f.Add("j1:app=a=b,pol=,seed=18446744073709551615")

	f.Fuzz(func(t *testing.T, id string) {
		spec, err := ParseJobID(id)
		if err != nil {
			return // rejected cleanly
		}
		canon := spec.ID()
		again, err := ParseJobID(canon)
		if err != nil {
			t.Fatalf("canonical ID %q of accepted input %q does not re-parse: %v", canon, id, err)
		}
		if !reflect.DeepEqual(again, spec) {
			t.Fatalf("re-parse of %q changed the spec:\n got %+v\nwant %+v", canon, again, spec)
		}
		if again.ID() != canon {
			t.Fatalf("ID is not a fixed point: %q -> %q", canon, again.ID())
		}
		// ShortID must be derived from the canonical ID alone.
		if again.ShortID() != spec.ShortID() {
			t.Fatalf("ShortID unstable for %q", canon)
		}
	})
}
