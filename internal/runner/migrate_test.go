package runner

import (
	"reflect"
	"strings"
	"testing"
)

// TestMigrateAbsentFromHistoricalIDs: a job without migration renders
// exactly the ID it always did, and the explicit "off" spelling normalizes
// away — so every recorded sweep result keeps its identity.
func TestMigrateAbsentFromHistoricalIDs(t *testing.T) {
	s := JobSpec{App: "apsi", Cap: 100}
	if id := s.ID(); strings.Contains(id, "mig") {
		t.Errorf("migration-free ID %q mentions migration", id)
	}
	off := s
	off.Migrate = "off"
	if off.Normalized().Migrate != "" || off.ID() != s.ID() {
		t.Errorf("Migrate=off did not normalize to the historical ID: %s", off.ID())
	}
}

// TestMigrateFieldRoundTrip: migrating IDs carry the canonical spec string
// and survive ParseJobID; malformed specs fail early with a clear error.
func TestMigrateFieldRoundTrip(t *testing.T) {
	s := JobSpec{Mode: ModeBaseline, App: "apsi", Cap: 100, Interleave: "page", Migrate: "on"}
	n := s.Normalized()
	if n.Migrate != "h16w4096c2f0t64g4" {
		t.Errorf("Migrate=on normalized to %q", n.Migrate)
	}
	id := s.ID()
	if !strings.Contains(id, "mig=h16w4096c2f0t64g4") {
		t.Errorf("migrating ID %q lacks the canonical mig field", id)
	}
	got, err := ParseJobID(id)
	if err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, n)
	}
	if _, err := ParseJobID("j1:app=apsi,mig=bogus"); err == nil {
		t.Error("malformed migration spec accepted in an ID")
	}
	bad := JobSpec{App: "apsi", Interleave: "page", Migrate: "hXw1c1f1t1"}
	if _, _, _, err := bad.Normalized().Build(); err == nil {
		t.Error("Build accepted an unparseable migration spec")
	}
}

// TestMigrateChangesIdentity: migration is part of a job's identity — two
// specs equal in everything else must not collide in the result store.
func TestMigrateChangesIdentity(t *testing.T) {
	plain := JobSpec{Mode: ModeBaseline, App: "apsi", Cap: 100, Interleave: "page"}
	migrating := plain
	migrating.Migrate = "on"
	if plain.ID() == migrating.ID() {
		t.Errorf("migration did not change the job ID: %s", plain.ID())
	}
	other := migrating
	other.Migrate = "h8w512c1f4t16"
	if other.ID() == migrating.ID() {
		t.Error("different migration specs rendered the same ID")
	}
}

// TestMigrateRequiresPageInterleave: Build rejects migration on a
// line-interleaved machine with an actionable error.
func TestMigrateRequiresPageInterleave(t *testing.T) {
	s := JobSpec{Mode: ModeBaseline, App: "apsi", Cap: 100, Migrate: "on"}
	_, _, _, err := s.Normalized().Build()
	if err == nil || !strings.Contains(err.Error(), "il=page") {
		t.Errorf("Build error %v, want a mention of il=page", err)
	}
}

// TestFirstTouchNearestPolicyJob: the ftnearest policy round-trips through
// the ID and runs end to end.
func TestFirstTouchNearestPolicyJob(t *testing.T) {
	s := JobSpec{Mode: ModeBaseline, App: "gafort", Cap: 100, Interleave: "page", Policy: "ftnearest"}
	id := s.ID()
	if !strings.Contains(id, "pol=ftnearest") {
		t.Errorf("ID %q lacks the policy field", id)
	}
	got, err := ParseJobID(id)
	if err != nil {
		t.Fatal(err)
	}
	if got.Policy != "ftnearest" {
		t.Errorf("round-tripped policy %q", got.Policy)
	}
	res, err := Run([]JobSpec{s}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
	if res.Outcomes[0].Run == nil || res.Outcomes[0].Run.ExecTime <= 0 {
		t.Error("ftnearest job produced no run result")
	}
}

// TestMigrateReplayDeterminism: a migrating job replayed from its ID alone
// reproduces the sweep outcome — including the migration counters — byte
// for byte.
func TestMigrateReplayDeterminism(t *testing.T) {
	spec := JobSpec{Mode: ModeBaseline, App: "apsi", Cap: 200, Interleave: "page", Policy: "ftnearest", Migrate: "h2w256c1f4t16"}
	res, err := Run([]JobSpec{spec}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
	out := res.Outcomes[0]
	if out.Run.Migrations == 0 {
		t.Fatal("aggressive spec fired no migrations; determinism gate is vacuous")
	}
	replayed, err := Replay(out.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(replayed.Run, out.Run) {
		t.Errorf("replay diverged:\n got %+v\nwant %+v", replayed.Run, out.Run)
	}
}
