package runner

import (
	"bytes"
	"strings"
	"testing"
)

// mixSpecs is the mix half of testSpecs: phase-changing multiprogrammed
// jobs across the modes and migration variants a mix can run under. Capped
// traces keep it fast enough for -race -count=2.
func mixSpecs() []JobSpec {
	return []JobSpec{
		{Mode: ModeBaseline, Mix: "mix2(apsi@16+gafort@0)", Interleave: "page", Cap: 100},
		{Mode: ModeBaseline, Mix: "mix2(apsi@16+gafort@16)", Interleave: "page", Policy: "ftnearest", Cap: 100},
		{Mode: ModeOptimized, Mix: "mix2(swim@32+mgrid@32)", Interleave: "page", Cap: 100},
		{Mode: ModeBaseline, Mix: "mix2(apsi@16+gafort@16)", Interleave: "page", Policy: "ftnearest",
			Migrate: "h4w256c1f0t16", Cap: 400},
		{Mode: ModeOptimized, Mix: "mix2(fma3d@16+art@48)", Interleave: "page",
			Migrate: "h4w256c1f0t16g4", Cap: 400},
	}
}

// TestMixDeterminismParallelMatchesSequential is the mix half of the
// differential gate: a sweep of phase-changing mix jobs — including
// migrating and cluster-migrating ones — run on 1 worker and on 8 workers
// must produce byte-identical canonical outcomes. Mix traces interleave
// several applications' generators, so this pins down that composition
// introduced no map-order or shared-state nondeterminism.
func TestMixDeterminismParallelMatchesSequential(t *testing.T) {
	specs := mixSpecs()
	seq, err := Run(specs, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(specs, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := seq.FirstError(); err != nil {
		t.Fatal(err)
	}
	if err := par.FirstError(); err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		a, err := seq.Outcomes[i].CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		b, err := par.Outcomes[i].CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("job %s: parallel outcome differs from sequential\nseq: %s\npar: %s",
				specs[i].ID(), a, b)
		}
	}
}

// TestMixJobIDRoundTrip: a mix job's canonical ID embeds the mix spec
// verbatim as a mix= field, parses back to an identical spec, and replays
// to the same bytes the sweep produced.
func TestMixJobIDRoundTrip(t *testing.T) {
	for _, s := range mixSpecs() {
		id := s.ID()
		if !strings.Contains(id, "mix="+s.Mix) {
			t.Errorf("ID %q does not embed mix=%s", id, s.Mix)
		}
		back, err := ParseJobID(id)
		if err != nil {
			t.Fatalf("ParseJobID(%q): %v", id, err)
		}
		if back.ID() != id {
			t.Errorf("ID round-trip drifted: %q -> %q", id, back.ID())
		}
		if back.Mix != s.Mix {
			t.Errorf("ID %q parsed mix %q, want %q", id, back.Mix, s.Mix)
		}
	}
}

// TestMixReplayDeterminism: one migrating mix job replayed from its ID alone
// reproduces the sweep's canonical bytes, the same contract single-app
// migrating jobs pin in TestMigrateReplayDeterminism.
func TestMixReplayDeterminism(t *testing.T) {
	spec := JobSpec{Mode: ModeBaseline, Mix: "mix2(apsi@16+gafort@16)", Interleave: "page",
		Policy: "ftnearest", Migrate: "h4w256c1f0t16g4", Cap: 400}
	res, err := Run([]JobSpec{spec}, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
	replayed, err := Replay(spec.ID())
	if err != nil {
		t.Fatal(err)
	}
	want, err := res.Outcomes[0].CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := replayed.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Errorf("replay of %s differs from sweep outcome", spec.ID())
	}
}

// TestMixExclusiveWithApp: a job naming both an application and a mix is
// ambiguous and must be rejected, as must a mix job in a mode that needs a
// composed (optimized) counterpart it cannot have.
func TestMixExclusiveWithApp(t *testing.T) {
	bad := JobSpec{Mode: ModeBaseline, App: "apsi", Mix: "mix2(apsi@16+gafort@0)", Interleave: "page", Cap: 100}
	res, err := Run([]JobSpec{bad}, Options{Workers: 1})
	if err == nil {
		err = res.FirstError()
	}
	if err == nil {
		t.Fatal("job with both App and Mix ran")
	}
}
