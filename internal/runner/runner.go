package runner

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"offchip/internal/obs"
)

// Options tunes a sweep.
type Options struct {
	// Workers is the pool size; 0 or negative means GOMAXPROCS(0).
	Workers int
	// OnJob, when set, is invoked once per finished job. Calls are
	// serialized (safe for terminal output) but their order follows
	// completion, which is not deterministic under stealing.
	OnJob func(ev JobEvent)
	// Executor runs each job; nil means Local (in-process). A remote
	// executor (e.g. the sweep service's process fleet) must uphold the
	// determinism contract documented on the Executor interface.
	Executor Executor
}

// JobEvent reports one finished job to Options.OnJob.
type JobEvent struct {
	ID     string
	Index  int // position in the input spec slice
	Worker int
	Done   int // jobs finished so far, this one included
	Total  int
	WallNS int64
	Err    error
	// Outcome is the finished job's full result. The live observability
	// plane merges registries and aggregates profiles from here as jobs
	// complete; OnJob calls are serialized, so reading it needs no extra
	// locking.
	Outcome *JobOutcome
}

// Result is the outcome of a sweep.
type Result struct {
	// Outcomes is indexed exactly like the input spec slice, regardless of
	// which worker ran which job when — the property that makes a parallel
	// sweep's output indistinguishable from a sequential one.
	Outcomes []*JobOutcome
	Workers  int
	Wall     time.Duration
	// Steals counts jobs a worker took from another worker's deque.
	Steals int64
}

// deque is one worker's job queue: the owner pops from the front, thieves
// steal from the back. Jobs are indices into the shared spec slice.
type deque struct {
	mu   sync.Mutex
	jobs []int
}

func (d *deque) popFront() (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.jobs) == 0 {
		return 0, false
	}
	j := d.jobs[0]
	d.jobs = d.jobs[1:]
	return j, true
}

func (d *deque) popBack() (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.jobs) == 0 {
		return 0, false
	}
	j := d.jobs[len(d.jobs)-1]
	d.jobs = d.jobs[:len(d.jobs)-1]
	return j, true
}

// Run executes every spec and returns the outcomes in input order.
// Individual job failures land in the corresponding outcome's Err (see
// Result.FirstError); Run itself errors only on malformed input, such as
// two specs normalizing to the same job ID — duplicates would make replay
// ambiguous and double-count in the merged registry.
func Run(specs []JobSpec, opt Options) (*Result, error) {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) && len(specs) > 0 {
		workers = len(specs)
	}
	seen := make(map[string]int, len(specs))
	for i, s := range specs {
		id := s.ID()
		if prev, dup := seen[id]; dup {
			return nil, fmt.Errorf("runner: specs %d and %d share job ID %s", prev, i, id)
		}
		seen[id] = i
	}
	res := &Result{
		Outcomes: make([]*JobOutcome, len(specs)),
		Workers:  workers,
	}
	if len(specs) == 0 {
		return res, nil
	}

	// Deal jobs round-robin so every deque starts with a similar share;
	// stealing rebalances whatever the deal got wrong.
	deques := make([]*deque, workers)
	for w := range deques {
		deques[w] = &deque{}
	}
	for i := range specs {
		w := i % workers
		deques[w].jobs = append(deques[w].jobs, i)
	}

	exec := opt.Executor
	if exec == nil {
		exec = Local
	}
	var (
		done   atomic.Int64
		steals atomic.Int64
		evMu   sync.Mutex
		wg     sync.WaitGroup
	)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i, ok := deques[w].popFront()
				if !ok {
					// Own deque dry: steal from the back of the others,
					// scanning from the next worker around the ring.
					for k := 1; k < workers && !ok; k++ {
						i, ok = deques[(w+k)%workers].popBack()
					}
					if !ok {
						return
					}
					steals.Add(1)
				}
				t0 := time.Now()
				out := exec.Execute(specs[i])
				out.Worker = w
				out.WallNS = time.Since(t0).Nanoseconds()
				res.Outcomes[i] = out
				n := done.Add(1)
				if opt.OnJob != nil {
					evMu.Lock()
					opt.OnJob(JobEvent{
						ID:      out.ID,
						Index:   i,
						Worker:  w,
						Done:    int(n),
						Total:   len(specs),
						WallNS:  out.WallNS,
						Err:     out.Err,
						Outcome: out,
					})
					evMu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	res.Wall = time.Since(start)
	res.Steals = steals.Load()
	return res, nil
}

// FirstError returns the first failed job's error (in input order), or nil.
func (r *Result) FirstError() error {
	for _, o := range r.Outcomes {
		if o != nil && o.Err != nil {
			return fmt.Errorf("runner: job %s: %w", o.ID, o.Err)
		}
	}
	return nil
}

// Merged folds every job's per-run registries into one registry, scoping
// each with job=<short ID> and run=<name> labels. Merging walks the
// outcomes in input order and each job's runs in sorted name order, so the
// merged registry is identical however the sweep was scheduled.
func (r *Result) Merged() *obs.Registry {
	m := obs.NewRegistry()
	for _, o := range r.Outcomes {
		if o == nil || o.Err != nil {
			continue
		}
		runs := make([]string, 0, len(o.Observers))
		for run := range o.Observers {
			runs = append(runs, run)
		}
		sort.Strings(runs)
		for _, run := range runs {
			ob := o.Observers[run]
			if ob == nil || ob.Reg == nil {
				continue
			}
			m.MergeScoped(ob.Reg, o.ExecTimes[run], "job="+o.ShortID, "run="+run)
		}
	}
	return m
}
