package runner

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestJobIDRoundTrip(t *testing.T) {
	specs := []JobSpec{
		{App: "apsi"},
		{Mode: ModeBaseline, App: "swim", Interleave: "page", Cap: 100},
		{Mode: ModeOptimized, App: "mgrid", L2: "shared", Mapping: "m2", Placement: "perimeter", NumMCs: 8},
		{Mode: ModeAnalyze, App: "art", MeshX: 4, MeshY: 4, Threads: 32, BanksPerMC: 4, MLPWindow: 2},
		{App: "fma3d", Policy: "firsttouch", Seed: 77, Cap: 250},
	}
	for _, s := range specs {
		id := s.ID()
		got, err := ParseJobID(id)
		if err != nil {
			t.Fatalf("ParseJobID(%s): %v", id, err)
		}
		if got != s.Normalized() {
			t.Errorf("round trip of %s:\n got %+v\nwant %+v", id, got, s.Normalized())
		}
		if got.ID() != id {
			t.Errorf("re-rendered ID %s != %s", got.ID(), id)
		}
	}
	for _, bad := range []string{
		"",
		"v9:mode=compare",
		"j1:mode=compare",          // no app
		"j1:app=apsi,bogus=1",      // unknown field
		"j1:app=apsi,mesh=8",       // malformed mesh
		"j1:app=apsi,threads=many", // non-numeric
		"j1:app=apsi,seed=-1",      // negative seed
		"j1:app=apsi,mode",         // not k=v
	} {
		if _, err := ParseJobID(bad); err == nil {
			t.Errorf("ParseJobID(%q) accepted malformed ID", bad)
		}
	}
}

func TestShortIDStable(t *testing.T) {
	a := JobSpec{App: "apsi"}
	if a.ShortID() != (JobSpec{App: "apsi", Mode: ModeCompare}).ShortID() {
		t.Error("normalization changed the short ID")
	}
	if a.ShortID() == (JobSpec{App: "swim"}).ShortID() {
		t.Error("distinct jobs share a short ID")
	}
	if !strings.HasPrefix(a.ShortID(), "j-") || len(a.ShortID()) != 18 {
		t.Errorf("short ID %q has unexpected shape", a.ShortID())
	}
}

// testSpecs is a small heterogeneous sweep: every job mode, two apps, two
// layout schemes. Capped traces keep it fast enough for -race -count=2.
func testSpecs() []JobSpec {
	return []JobSpec{
		{Mode: ModeCompare, App: "apsi", Cap: 100},
		{Mode: ModeCompare, App: "gafort", Interleave: "page", Cap: 100},
		{Mode: ModeBaseline, App: "apsi", Interleave: "page", Cap: 100},
		{Mode: ModeOptimized, App: "gafort", Cap: 100},
		{Mode: ModeAnalyze, App: "swim"},
		{Mode: ModeCompare, App: "apsi", L2: "shared", Cap: 100, Seed: 42},
	}
}

// TestDeterminismParallelMatchesSequential is the runner's half of the
// differential gate: the same sweep run on 1 worker and on 8 workers must
// produce byte-identical canonical outcomes for every job and identical
// merged registry snapshots.
func TestDeterminismParallelMatchesSequential(t *testing.T) {
	specs := testSpecs()
	seq, err := Run(specs, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(specs, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := seq.FirstError(); err != nil {
		t.Fatal(err)
	}
	if err := par.FirstError(); err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		a, err := seq.Outcomes[i].CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		b, err := par.Outcomes[i].CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("job %s: parallel outcome differs from sequential\nseq: %s\npar: %s",
				specs[i].ID(), a, b)
		}
	}
	const horizon = int64(1) << 40 // past every job's ExecTime, so Avg is compared too
	if !reflect.DeepEqual(seq.Merged().Snapshot(horizon), par.Merged().Snapshot(horizon)) {
		t.Error("merged registry snapshots differ between 1 and 8 workers")
	}
}

// TestDeterminismReplayFromID re-runs single jobs from their canonical IDs
// and checks they reproduce the sweep's numbers bit-for-bit.
func TestDeterminismReplayFromID(t *testing.T) {
	specs := testSpecs()
	sweep, err := Run(specs, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := sweep.FirstError(); err != nil {
		t.Fatal(err)
	}
	for i, s := range specs {
		replayed, err := Replay(s.ID())
		if err != nil {
			t.Fatalf("replay %s: %v", s.ID(), err)
		}
		want, err := sweep.Outcomes[i].CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		got, err := replayed.CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Errorf("job %s: replay differs from sweep outcome", s.ID())
		}
	}
}

func TestRunKeepsInputOrder(t *testing.T) {
	// Analyze-only jobs are cheap, so a larger set exercises the deques
	// and stealing paths; outcomes must land at their input index anyway.
	var specs []JobSpec
	for _, app := range []string{"apsi", "swim", "mgrid", "art", "gafort"} {
		for _, threads := range []int{0, 16, 32, 64} {
			specs = append(specs, JobSpec{Mode: ModeAnalyze, App: app, Threads: threads})
		}
	}
	res, err := Run(specs, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
	for i, o := range res.Outcomes {
		if o == nil {
			t.Fatalf("outcome %d missing", i)
		}
		if o.ID != specs[i].ID() {
			t.Errorf("outcome %d holds job %s, want %s", i, o.ID, specs[i].ID())
		}
		if o.Analysis == nil {
			t.Errorf("outcome %d has no analysis result", i)
		}
	}
}

func TestRunEventsAndErrors(t *testing.T) {
	specs := []JobSpec{
		{Mode: ModeAnalyze, App: "apsi"},
		{Mode: ModeAnalyze, App: "no-such-app"},
		{Mode: Mode("bogus"), App: "apsi"},
	}
	var events int
	res, err := Run(specs, Options{Workers: 2, OnJob: func(ev JobEvent) {
		events++
		if ev.Total != len(specs) {
			t.Errorf("event total = %d", ev.Total)
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if events != len(specs) {
		t.Errorf("saw %d events, want %d", events, len(specs))
	}
	if res.Outcomes[0].Err != nil {
		t.Errorf("good job failed: %v", res.Outcomes[0].Err)
	}
	if res.Outcomes[1].Err == nil || res.Outcomes[2].Err == nil {
		t.Error("bad jobs reported no error")
	}
	if err := res.FirstError(); err == nil {
		t.Error("FirstError missed the failures")
	}
}

func TestRunRejectsDuplicateIDs(t *testing.T) {
	specs := []JobSpec{
		{App: "apsi"},
		{App: "apsi", Mode: ModeCompare, L2: "private"}, // normalizes identical
	}
	if _, err := Run(specs, Options{}); err == nil {
		t.Error("duplicate job IDs accepted")
	}
}

func TestMergedScopesPerJob(t *testing.T) {
	specs := []JobSpec{
		{Mode: ModeBaseline, App: "apsi", Cap: 80},
		{Mode: ModeBaseline, App: "gafort", Cap: 80},
	}
	res, err := Run(specs, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
	m := res.Merged()
	for i, o := range res.Outcomes {
		var total int64
		for node := 0; node < 64; node++ {
			for mc := 0; mc < 4; mc++ {
				total += m.Counter("sim", "offchip_requests",
					"node="+itoa(node), "mc="+itoa(mc),
					"job="+o.ShortID, "run=baseline").Value()
			}
		}
		if total != o.Run.OffChip {
			t.Errorf("job %d: merged off-chip counters sum to %d, Result says %d",
				i, total, o.Run.OffChip)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
