// Package runner shards independent experiment jobs — one (workload,
// layout scheme, mesh/MC configuration, seed) simulation each — across a
// work-stealing pool of workers. Every job gets a private observability
// registry and a jitter seed derived from a stable hash of its job ID, so
// a parallel sweep is bit-identical to a sequential one and any single job
// can be replayed from its ID alone (the -replay flag of cmd/benchtab).
// After the jobs finish, the per-job registries fold into one merged
// registry (see obs.MergeScoped) from which the Figure 13/15/18 tables are
// rendered.
package runner

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"offchip/internal/approx"
	"offchip/internal/core"
	"offchip/internal/layout"
	"offchip/internal/mem"
	"offchip/internal/obs"
	"offchip/internal/prof"
	"offchip/internal/sim"
	"offchip/internal/tracecache"
	"offchip/internal/workloads"
)

// Mode selects what a job runs.
type Mode string

const (
	// ModeCompare runs the full three-way comparison (baseline, optimized,
	// optimal) — the shape most figures need.
	ModeCompare Mode = "compare"
	// ModeBaseline simulates only the unoptimized trace (Figure 3).
	ModeBaseline Mode = "baseline"
	// ModeOptimized simulates only the optimized trace (Figure 18).
	ModeOptimized Mode = "optimized"
	// ModeAnalyze runs only the compiler pass, no simulation (Table 2).
	ModeAnalyze Mode = "analyze"
)

// JobSpec identifies one independent experiment job. The zero value of
// every field means "default"; Normalized fills the defaults in so that
// ID, hashing, and replay always see one canonical form.
type JobSpec struct {
	Mode       Mode
	App        string // workload name (required unless Mix is set)
	L2         string // "private" | "shared"
	Interleave string // "line" | "page"
	Mapping    string // "m1" | "m2"
	Placement  string // "corners" | "diamond" | "topbottom" | "perimeter"
	MeshX      int
	MeshY      int
	NumMCs     int
	Threads    int    // total software threads (0: one per core)
	BanksPerMC int    // 0: calibrated default
	MLPWindow  int    // 0: default
	Policy     string // baseline page policy: "interleaved" | "firsttouch" | "osassisted"
	Cap        int    // MaxAccessesPerThread (0: full traces)
	Seed       uint64 // sweep seed; 0 keeps the historical jitter stream

	// Mix, when set, replaces App with a phase-changing multiprogrammed mix
	// (workloads.MixSpec compact form, e.g. "mix2(apsi@16+gafort@0)"): the
	// job simulates the composed workload instead of a single application.
	// The form contains no comma or equals sign, so it embeds verbatim as
	// the ID's mix= field — appended only when set, like sample=/mig=, so
	// single-app IDs keep their historical bytes. Mix jobs run ModeBaseline
	// or ModeOptimized (the per-app compiler analysis of compare/analyze has
	// no composed counterpart), and exactly one of App and Mix must be set.
	Mix string

	// Migrate enables online hot-page migration: "" (or "off") runs the
	// static policies unchanged, "on" the default mem.MigrationSpec, and a
	// compact spec ("h16w1024c2f0t64") a custom one. Migration changes
	// results, so like Sample it IS part of the job identity — the ID gains
	// a mig= field exactly when Migrate is set, and IDs without one keep
	// their historical form. Requires page interleaving; applied to the
	// baseline and optimized runs, never the optimal scheme.
	Migrate string

	// Sample enables sampled simulation: "" (or "off") runs exact full
	// simulations, "on" the default sim.SampleSpec, and a compact spec
	// ("w4f0.1u1r1") a custom one. Sampling changes results (estimates
	// instead of exact metrics), so unlike Prof it IS part of the job
	// identity — the ID gains a sample= field exactly when Sample is set,
	// and IDs without one keep their historical form.
	Sample string

	// Prof attaches the latency-attribution profiler to the job's runs and
	// fills JobOutcome.Profiles. Pure observation: it is deliberately
	// excluded from ID/ParseJobID so profiling a job never changes its
	// identity, seed derivation, or replayed results.
	Prof bool

	// Cache, when set, memoizes trace generation across the sweep's jobs
	// (see internal/tracecache). Cached streams are byte-identical to
	// freshly generated ones, so like Prof it is excluded from the ID —
	// caching never changes a job's identity or results.
	Cache *tracecache.Cache
}

// Normalized returns the spec with every defaulted field made explicit.
func (s JobSpec) Normalized() JobSpec {
	if s.Mode == "" {
		s.Mode = ModeCompare
	}
	if s.L2 == "" {
		s.L2 = "private"
	}
	if s.Interleave == "" {
		s.Interleave = "line"
	}
	if s.Mapping == "" {
		s.Mapping = "m1"
	}
	if s.Placement == "" {
		s.Placement = "corners"
	}
	if s.MeshX == 0 {
		s.MeshX = 8
	}
	if s.MeshY == 0 {
		s.MeshY = 8
	}
	if s.NumMCs == 0 {
		s.NumMCs = 4
	}
	if s.Policy == "" {
		s.Policy = "interleaved"
	}
	if s.Sample != "" {
		// Canonicalize ("on" → the default spec's compact form, "off" → "")
		// so equal sampling configurations always render equal IDs. An
		// unparseable spec is left verbatim; Build reports the error.
		if sp, err := sim.ParseSampleSpec(s.Sample); err == nil {
			if sp == nil {
				s.Sample = ""
			} else {
				s.Sample = sp.String()
			}
		}
	}
	if s.Migrate != "" {
		// Same canonicalization as Sample, against the migration spec form.
		if sp, err := mem.ParseMigrationSpec(s.Migrate); err == nil {
			if sp == nil {
				s.Migrate = ""
			} else {
				s.Migrate = sp.String()
			}
		}
	}
	if s.Mix != "" {
		// Mix specs are strictly canonical already (ParseMixSpec rejects any
		// other spelling), so this only normalizes a parseable spec to itself
		// and clears "" round-trips; an unparseable one is left verbatim for
		// Build/execute to report.
		if sp, err := workloads.ParseMixSpec(s.Mix); err == nil && sp != nil {
			s.Mix = sp.String()
		}
	}
	return s
}

// ID renders the canonical, fully parseable job identifier. Two specs
// that normalize equal have equal IDs; ParseJobID inverts it exactly.
func (s JobSpec) ID() string {
	n := s.Normalized()
	id := fmt.Sprintf(
		"j1:mode=%s,app=%s,l2=%s,il=%s,map=%s,place=%s,mesh=%dx%d,mcs=%d,threads=%d,banks=%d,mlp=%d,pol=%s,cap=%d,seed=%d",
		n.Mode, n.App, n.L2, n.Interleave, n.Mapping, n.Placement,
		n.MeshX, n.MeshY, n.NumMCs, n.Threads, n.BanksPerMC, n.MLPWindow,
		n.Policy, n.Cap, n.Seed)
	if n.Sample != "" {
		// Appended only when set, so every pre-sampling job ID (and every
		// recorded replay handle) is unchanged.
		id += ",sample=" + n.Sample
	}
	if n.Migrate != "" {
		id += ",mig=" + n.Migrate
	}
	if n.Mix != "" {
		id += ",mix=" + n.Mix
	}
	return id
}

// ShortID is a compact fingerprint of the ID, used as the job=… label in
// merged registries (the full ID contains the label syntax's own
// delimiters).
func (s JobSpec) ShortID() string {
	return fmt.Sprintf("j-%016x", fnv64(s.ID()))
}

// ParseJobID inverts ID. It accepts exactly the canonical form (version
// prefix "j1:", comma-separated k=v fields).
func ParseJobID(id string) (JobSpec, error) {
	var s JobSpec
	body, ok := strings.CutPrefix(id, "j1:")
	if !ok {
		return s, fmt.Errorf("runner: job ID %q lacks the j1: prefix", id)
	}
	for _, field := range strings.Split(body, ",") {
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			return s, fmt.Errorf("runner: job ID field %q is not k=v", field)
		}
		var err error
		switch k {
		case "mode":
			s.Mode = Mode(v)
		case "app":
			s.App = v
		case "l2":
			s.L2 = v
		case "il":
			s.Interleave = v
		case "map":
			s.Mapping = v
		case "place":
			s.Placement = v
		case "mesh":
			x, y, ok := strings.Cut(v, "x")
			if !ok {
				return s, fmt.Errorf("runner: mesh %q is not WxH", v)
			}
			if s.MeshX, err = strconv.Atoi(x); err == nil {
				s.MeshY, err = strconv.Atoi(y)
			}
		case "mcs":
			s.NumMCs, err = strconv.Atoi(v)
		case "threads":
			s.Threads, err = strconv.Atoi(v)
		case "banks":
			s.BanksPerMC, err = strconv.Atoi(v)
		case "mlp":
			s.MLPWindow, err = strconv.Atoi(v)
		case "pol":
			s.Policy = v
		case "cap":
			s.Cap, err = strconv.Atoi(v)
		case "seed":
			s.Seed, err = strconv.ParseUint(v, 10, 64)
		case "sample":
			if _, err = sim.ParseSampleSpec(v); err == nil {
				s.Sample = v
			}
		case "mig":
			if _, err = mem.ParseMigrationSpec(v); err == nil {
				s.Migrate = v
			}
		case "mix":
			if _, err = workloads.ParseMixSpec(v); err == nil {
				s.Mix = v
			}
		default:
			return s, fmt.Errorf("runner: unknown job ID field %q", k)
		}
		if err != nil {
			return s, fmt.Errorf("runner: job ID field %s=%q: %w", k, v, err)
		}
	}
	if s.App == "" && s.Mix == "" {
		return s, fmt.Errorf("runner: job ID %q names no app or mix", id)
	}
	if s.App != "" && s.Mix != "" {
		return s, fmt.Errorf("runner: job ID %q names both an app and a mix", id)
	}
	return s.Normalized(), nil
}

// fnv64 is FNV-1a, inlined so job identity never depends on library
// changes.
func fnv64(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// splitmix64 finalizes a seed so correlated inputs yield decorrelated
// streams.
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// simSeed derives the per-job jitter seed: 0 stays 0 (the historical
// stream every recorded figure uses), anything else is mixed with the job
// ID hash so two jobs in the same sweep never share a stream.
func (s JobSpec) simSeed() uint64 {
	if s.Seed == 0 {
		return 0
	}
	return splitmix64(fnv64(s.ID()) ^ s.Seed)
}

// Build resolves the spec into a machine, cluster mapping, and core
// options — the exact inputs core.Compare takes.
func (s JobSpec) Build() (layout.Machine, *layout.ClusterMapping, core.Options, error) {
	n := s.Normalized()
	var opt core.Options
	m := layout.Default8x8()
	m.MeshX, m.MeshY = n.MeshX, n.MeshY
	m.NumMCs = n.NumMCs
	switch n.L2 {
	case "private":
		m.L2 = layout.PrivateL2
	case "shared":
		m.L2 = layout.SharedL2
	default:
		return m, nil, opt, fmt.Errorf("runner: unknown L2 organization %q", n.L2)
	}
	switch n.Interleave {
	case "line":
		m.Interleave = layout.LineInterleave
	case "page":
		m.Interleave = layout.PageInterleave
	default:
		return m, nil, opt, fmt.Errorf("runner: unknown interleaving %q", n.Interleave)
	}
	var p *layout.MCPlacement
	var err error
	switch n.Placement {
	case "corners":
		p = layout.PlacementCorners(m.MeshX, m.MeshY)
	case "diamond":
		p = layout.PlacementDiamond(m.MeshX, m.MeshY)
	case "topbottom":
		p = layout.PlacementTopBottom(m.MeshX, m.MeshY)
	case "perimeter":
		p, err = layout.PlacementPerimeter(m.MeshX, m.MeshY, m.NumMCs)
		if err != nil {
			return m, nil, opt, fmt.Errorf("runner: %w", err)
		}
	default:
		return m, nil, opt, fmt.Errorf("runner: unknown placement %q", n.Placement)
	}
	var cm *layout.ClusterMapping
	switch n.Mapping {
	case "m1":
		cm, err = layout.MappingM1(m, p)
	case "m2":
		cm, err = layout.MappingM2(m, p)
	default:
		return m, nil, opt, fmt.Errorf("runner: unknown mapping %q", n.Mapping)
	}
	if err != nil {
		return m, nil, opt, fmt.Errorf("runner: %w", err)
	}
	opt = core.Options{
		Threads:              n.Threads,
		MaxAccessesPerThread: n.Cap,
		MLPWindow:            n.MLPWindow,
		BanksPerMC:           n.BanksPerMC,
		Seed:                 n.simSeed(),
		TraceCache:           s.Cache,
	}
	if n.Sample != "" {
		sp, err := sim.ParseSampleSpec(n.Sample)
		if err != nil {
			return m, nil, opt, fmt.Errorf("runner: %w", err)
		}
		opt.Sample = sp
	}
	if n.Migrate != "" {
		sp, err := mem.ParseMigrationSpec(n.Migrate)
		if err != nil {
			return m, nil, opt, fmt.Errorf("runner: %w", err)
		}
		if sp != nil && m.Interleave != layout.PageInterleave {
			return m, nil, opt, fmt.Errorf("runner: migration (mig=%s) requires il=page", n.Migrate)
		}
		opt.Migrate = sp
	}
	switch n.Policy {
	case "interleaved":
		opt.BaselinePolicy = sim.PolicyInterleaved
	case "firsttouch":
		opt.BaselinePolicy = sim.PolicyFirstTouch
	case "ftnearest":
		opt.BaselinePolicy = sim.PolicyFirstTouchNearest
	case "osassisted":
		opt.BaselinePolicy = sim.PolicyOSAssisted
	default:
		return m, nil, opt, fmt.Errorf("runner: unknown policy %q", n.Policy)
	}
	return m, cm, opt, nil
}

// JobOutcome is everything one job produced. Exactly one of Comparison,
// Run, or Analysis is set (by Mode); Observers and ExecTimes carry the
// per-run registries and end times the merged view is built from.
type JobOutcome struct {
	Spec    JobSpec
	ID      string
	ShortID string

	Comparison *core.Comparison         // ModeCompare
	Run        *sim.Result              // ModeBaseline / ModeOptimized
	Analysis   *layout.Result           // ModeAnalyze
	Observers  map[string]*obs.Observer // run name → observer
	ExecTimes  map[string]int64         // run name → ExecTime (merge horizon)
	Profiles   map[string]*prof.Profile // run name → attribution (Spec.Prof only)

	// Sampled carries each run's sampled-simulation outcome (estimates with
	// confidence bounds) when Spec.Sample was set.
	Sampled map[string]*sim.SampledResult

	Err    error
	Worker int   // which worker executed the job (not deterministic)
	WallNS int64 // job wall-clock (not deterministic)

	// Canonical, when non-empty, is a precomputed deterministic projection
	// that CanonicalJSON returns verbatim. The sweep service's fleet
	// executor sets it from the worker's wire form, so a remotely executed
	// outcome projects byte-identically even for modes (analyze) whose
	// inputs are not reconstructible from the projection itself.
	Canonical json.RawMessage
}

// canonicalOutcome is the deterministic projection of a JobOutcome — the
// part that must be byte-identical between sequential, parallel, and
// replayed executions. Worker and WallNS are deliberately absent.
type canonicalOutcome struct {
	ID        string
	Baseline  *core.Metrics `json:",omitempty"`
	Optimized *core.Metrics `json:",omitempty"`
	Optimal   *core.Metrics `json:",omitempty"`
	PctArrays float64
	PctRefs   float64
	Run       *sim.Result `json:",omitempty"`
}

// CanonicalJSON serializes the deterministic portion of the outcome. The
// differential determinism tests compare these bytes across execution
// strategies.
func (o *JobOutcome) CanonicalJSON() ([]byte, error) {
	if o.Err != nil {
		return nil, o.Err
	}
	if len(o.Canonical) > 0 {
		return o.Canonical, nil
	}
	c := canonicalOutcome{ID: o.ID, Run: o.Run}
	if o.Comparison != nil {
		c.Baseline = &o.Comparison.Baseline
		c.Optimized = &o.Comparison.Optimized
		c.Optimal = &o.Comparison.Optimal
		c.PctArrays = o.Comparison.PctArraysOptimized
		c.PctRefs = o.Comparison.PctRefsSatisfied
	}
	if o.Analysis != nil {
		c.PctArrays = o.Analysis.PctArraysOptimized()
		c.PctRefs = o.Analysis.PctRefsSatisfied()
	}
	return json.Marshal(c)
}

// execute runs the job and never panics: compiler or simulator panics are
// captured into Err so one bad job cannot take down a sweep.
func (s JobSpec) execute() (out *JobOutcome) {
	n := s.Normalized()
	out = &JobOutcome{
		Spec:      n,
		ID:        n.ID(),
		ShortID:   n.ShortID(),
		Observers: map[string]*obs.Observer{},
		ExecTimes: map[string]int64{},
	}
	defer func() {
		if r := recover(); r != nil {
			out.Err = fmt.Errorf("runner: job %s panicked: %v", out.ID, r)
		}
	}()
	var mix *workloads.MixSpec
	if n.Mix != "" {
		if n.App != "" {
			out.Err = fmt.Errorf("runner: job %s names both an app and a mix", out.ID)
			return out
		}
		sp, err := workloads.ParseMixSpec(n.Mix)
		if err != nil {
			out.Err = err
			return out
		}
		mix = sp
	}
	var app *workloads.App
	if mix == nil {
		a, ok := workloads.ByName(n.App)
		if !ok {
			out.Err = fmt.Errorf("runner: unknown application %q", n.App)
			return out
		}
		app = a
	}
	m, cm, opt, err := n.Build()
	if err != nil {
		out.Err = err
		return out
	}
	if mix != nil && n.Mode != ModeBaseline && n.Mode != ModeOptimized {
		out.Err = fmt.Errorf("runner: mix jobs run mode=baseline or mode=optimized, not %s (the per-app compiler analysis of compare/analyze has no composed counterpart)", n.Mode)
		return out
	}
	switch n.Mode {
	case ModeCompare:
		opt.Prof = n.Prof
		c, err := core.Compare(app, m, cm, opt)
		if err != nil {
			out.Err = err
			return out
		}
		out.Comparison = c
		out.Observers = c.Observers
		out.ExecTimes = map[string]int64{
			"baseline":  c.Baseline.ExecTime,
			"optimized": c.Optimized.ExecTime,
			"optimal":   c.Optimal.ExecTime,
		}
		out.Profiles = c.Profiles
		out.Sampled = c.Sampled
	case ModeBaseline, ModeOptimized:
		var baseW, optW *sim.Workload
		var err error
		if mix != nil {
			baseW, optW, err = core.MixWorkloads(*mix, m, cm, opt)
		} else {
			baseW, optW, _, err = core.Workloads(app, m, cm, opt)
		}
		if err != nil {
			out.Err = err
			return out
		}
		cfg := core.SimConfig(m, cm, opt)
		cfg.Policy = opt.BaselinePolicy
		w := baseW
		run := "baseline"
		if n.Mode == ModeOptimized {
			w, run = optW, "optimized"
			if m.Interleave == layout.PageInterleave {
				// Optimized runs under page interleaving need the layout
				// pass's page placement honored, exactly as core.Compare
				// does.
				cfg.Policy = sim.PolicyOSAssisted
			}
		}
		o := obs.OrNew(nil)
		cfg.Obs = o
		var pf *prof.Profiler
		if n.Prof {
			pf = prof.New()
			cfg.Prof = pf
		}
		if opt.Sample != nil {
			// Sampled single-run mode: Run carries the aggregate of the
			// measured windows (a deterministic projection), Sampled the
			// estimates and bounds.
			sr, err := sim.RunSampled(cfg, w, *opt.Sample)
			if err != nil {
				out.Err = err
				return out
			}
			out.Run = sr.Aggregate
			out.Sampled = map[string]*sim.SampledResult{run: sr}
			out.Observers[run] = o
			out.ExecTimes[run] = int64(sr.Est.ExecTime.Mean + 0.5)
			if pf != nil {
				out.Profiles = map[string]*prof.Profile{run: pf.Profile()}
			}
			return out
		}
		r, err := sim.Run(cfg, w)
		if err != nil {
			out.Err = err
			return out
		}
		out.Run = r
		out.Observers[run] = o
		out.ExecTimes[run] = r.ExecTime
		if pf != nil {
			out.Profiles = map[string]*prof.Profile{run: pf.Profile()}
		}
	case ModeAnalyze:
		p, store, err := app.Load()
		if err != nil {
			out.Err = err
			return out
		}
		res, err := layout.Optimize(p, m, cm, &layout.Options{
			Threads: opt.Threads,
			Approx:  approx.NewProfiler(store),
		})
		if err != nil {
			out.Err = err
			return out
		}
		out.Analysis = res
	default:
		out.Err = fmt.Errorf("runner: unknown mode %q", n.Mode)
	}
	return out
}

// Execute runs the job in the calling goroutine — the single-job entry
// point (replay with options, the profile-smoke gate) behind the same
// panic-capturing path the sweep workers use.
func (s JobSpec) Execute() *JobOutcome { return s.execute() }

// Replay re-executes a single job from its canonical ID. Because the job's
// jitter seed and registry are derived from the ID alone, the outcome is
// bit-identical to the same job's outcome inside any sweep, parallel or
// not. The returned outcome's Err is also returned for convenience.
func Replay(id string) (*JobOutcome, error) {
	spec, err := ParseJobID(id)
	if err != nil {
		return nil, err
	}
	out := spec.execute()
	return out, out.Err
}
