package sim_test

// Conservation invariant battery: every access injected into the machine
// must be delivered — through the caches, the NoC, and the DRAM
// controllers — with nothing dropped, duplicated, or left in flight when
// the event queue drains. The identities themselves live in
// check.VerifyTotals (shared with the validation battery and the CLI's
// -check mode); these tests drive them over every workload in
// internal/workloads through both L2 organizations (and the optimal scheme
// on one), so a lost or double-counted event anywhere in the pooled
// event-recycling hot path fails loudly rather than skewing a figure.
// `make validate` runs it under -race -count=2.

import (
	"testing"

	"offchip/internal/check"
	"offchip/internal/core"
	"offchip/internal/layout"
	"offchip/internal/sim"
	"offchip/internal/workloads"
)

// conserved asserts the generalized conservation identities on a drained run.
func conserved(t *testing.T, r *sim.Result, w *sim.Workload, cfg *sim.Config) {
	t.Helper()
	for _, v := range check.VerifyTotals(r.Totals(w, cfg)) {
		t.Error(v)
	}
}

// TestConservationAllWorkloads sweeps every bundled application, capped to a
// short trace, through private and shared L2 machines.
func TestConservationAllWorkloads(t *testing.T) {
	for _, app := range workloads.All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			t.Parallel()
			for _, l2 := range []layout.CacheKind{layout.PrivateL2, layout.SharedL2} {
				m := layout.Default8x8()
				m.L2 = l2
				cm, err := layout.MappingM1(m, layout.PlacementCorners(m.MeshX, m.MeshY))
				if err != nil {
					t.Fatal(err)
				}
				opt := core.Options{MaxAccessesPerThread: 120}
				base, optim, _, err := core.Workloads(app, m, cm, opt)
				if err != nil {
					t.Fatal(err)
				}
				cfg := core.SimConfig(m, cm, opt)
				for name, w := range map[string]*sim.Workload{"base": base, "optim": optim} {
					r, err := sim.Run(cfg, w)
					if err != nil {
						t.Fatalf("%v/%s: %v", l2, name, err)
					}
					conserved(t, r, w, &cfg)
				}
			}
		})
	}
}

// TestConservationOptimalScheme checks the Section 2 optimal scheme, which
// takes the controller-bypassing path, on one representative app per L2
// organization.
func TestConservationOptimalScheme(t *testing.T) {
	app, ok := workloads.ByName("apsi")
	if !ok {
		t.Fatal("apsi workload missing")
	}
	for _, l2 := range []layout.CacheKind{layout.PrivateL2, layout.SharedL2} {
		m := layout.Default8x8()
		m.L2 = l2
		cm, err := layout.MappingM1(m, layout.PlacementCorners(m.MeshX, m.MeshY))
		if err != nil {
			t.Fatal(err)
		}
		opt := core.Options{MaxAccessesPerThread: 120}
		base, _, _, err := core.Workloads(app, m, cm, opt)
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.SimConfig(m, cm, opt)
		cfg.OptimalOffchip = true
		r, err := sim.Run(cfg, base)
		if err != nil {
			t.Fatal(err)
		}
		conserved(t, r, base, &cfg)
	}
}

// TestConservationHeavyContention drives a deliberately hot configuration —
// many outstanding misses, every line on one controller — so queueing at
// the banks and links is deep, and still nothing may be lost.
func TestConservationHeavyContention(t *testing.T) {
	m := layout.Machine{
		MeshX: 4, MeshY: 4,
		NumMCs:     4,
		LineBytes:  64,
		PageBytes:  512,
		L2:         layout.PrivateL2,
		Interleave: layout.LineInterleave,
	}
	cm, err := layout.MappingM1(m, layout.PlacementCorners(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig(m, cm)
	cfg.L1Bytes = 1024
	cfg.L2Bytes = 4096
	cfg.MLPWindow = 16
	var streams []sim.Stream
	for c := 0; c < m.Cores(); c++ {
		var accs []sim.Access
		for i := int64(0); i < 200; i++ {
			// Strided so almost everything misses and lands on MC0.
			accs = append(accs, sim.Access{VAddr: (int64(c)*4099 + i*256*4) % (1 << 22), DesiredMC: -1})
		}
		streams = append(streams, sim.Stream{Core: c, Accesses: accs})
	}
	w := &sim.Workload{Name: "contention", Streams: streams}
	r, err := sim.Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	conserved(t, r, w, &cfg)
	if r.MemQueue <= 0 {
		t.Error("contention workload produced no queue wait — test is not stressing the queues")
	}
}

// TestConservationShortTraces covers the degenerate small cases (single
// access, single stream, multiprogrammed pair) where off-by-one event
// recycling bugs hide.
func TestConservationShortTraces(t *testing.T) {
	m := layout.Machine{
		MeshX: 4, MeshY: 4,
		NumMCs:     4,
		LineBytes:  64,
		PageBytes:  512,
		L2:         layout.PrivateL2,
		Interleave: layout.LineInterleave,
	}
	cm, err := layout.MappingM1(m, layout.PlacementCorners(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig(m, cm)
	cfg.L1Bytes = 1024
	cfg.L2Bytes = 4096
	cases := []*sim.Workload{
		{Name: "one", Streams: []sim.Stream{{Core: 0, Accesses: []sim.Access{{VAddr: 0, DesiredMC: -1}}}}},
		{Name: "pair", Streams: []sim.Stream{
			{Core: 0, AppID: 0, Accesses: []sim.Access{{VAddr: 0, DesiredMC: -1}, {VAddr: 64, DesiredMC: -1}}},
			{Core: 0, AppID: 1, Accesses: []sim.Access{{VAddr: 0, DesiredMC: -1}}},
		}},
	}
	for i, w := range cases {
		r, err := sim.Run(cfg, w)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		conserved(t, r, w, &cfg)
	}
}
