package sim

import (
	"offchip/internal/mem"
	"offchip/internal/mesh"
	"offchip/internal/noc"
	"offchip/internal/obs"
)

// migState drives online page migration inside one run: it feeds every timed
// access into the mem.Migrator decision engine, rolls windows lazily from
// the access stream (no engine events fire unless a migration actually
// triggers, which keeps a migration-free run bit-identical to one with the
// engine detached), and models each migration's cost — CopyFlits line-sized
// messages injected through the NoC from the old controller's node to the
// new one's, then a remap event at copy-finish time that atomically updates
// the page table and charges the TLB-shootdown stall to every core that
// touched the page in the triggering window.
type migState struct {
	m    *machine
	eng  *mem.Migrator
	spec mem.MigrationSpec

	copyFlits int   // resolved: spec value, or PageBytes/LineBytes
	windowEnd int64 // absolute cycle the open window closes at

	// Registry counters, created on the first committed migration so a run
	// that never migrates leaves the registry byte-identical to one without
	// the engine.
	migC, copyC, stallC *obs.Counter
}

// nearestMCOf maps a core to the controller nearest its mesh node — the
// allocation target of FirstTouchNearestPolicy and the migration target of
// a page that core dominates.
func (m *machine) nearestMCOf(core int) int {
	return m.cfg.Mapping.Placement.NearestMC(mesh.CoordOf(core, m.cfg.Machine.MeshX))
}

// coreMCDist is the mesh hop distance from a core's node to a controller's
// node — the migration engine's profitability model.
func (m *machine) coreMCDist(core, mc int) int {
	return m.cfg.Mapping.Placement.Dist(mesh.CoordOf(core, m.cfg.Machine.MeshX), mc)
}

func newMigState(m *machine, spec mem.MigrationSpec) *migState {
	flits := spec.CopyFlits
	if flits == 0 {
		flits = int((m.memCfg.PageBytes + m.memCfg.LineBytes - 1) / m.memCfg.LineBytes)
	}
	return &migState{
		m:         m,
		eng:       mem.NewMigrator(spec, m.cfg.Machine.Cores(), m.nearestMCOf, m.coreMCDist),
		spec:      spec,
		copyFlits: flits,
		windowEnd: spec.WindowCycles,
	}
}

// touch records one timed access into the open window, first closing any
// windows the clock has passed. Rolling here — on the access stream, not on
// a periodic engine event — means a run whose threshold never fires
// processes exactly the same event sequence as one with migration disabled.
func (g *migState) touch(now int64, app int, vpage int64, core int) {
	if g.spec.WindowCycles > 0 {
		for now >= g.windowEnd {
			g.roll(now)
			g.windowEnd += g.spec.WindowCycles
		}
	}
	g.eng.Touch(mem.PageID{App: app, VPage: vpage}, core)
}

// roll closes the open window and launches the page copies it triggers.
func (g *migState) roll(now int64) {
	migs := g.eng.Roll(func(p mem.PageID) int {
		mc, _ := g.m.spaces[p.App].PageMC(p.VPage)
		return mc
	})
	for _, mg := range migs {
		g.launch(now, mg)
	}
}

// launch injects the page-copy traffic as real off-chip-class messages —
// they contend with demand traffic on the same links and appear in every
// NoC total — and schedules the remap to commit when the last flit lands.
// At cluster granularity (Migration.Pages > 1) every allocated member page
// not already homed on the target controller is copied from its own current
// home, and one remap event commits the whole cluster.
func (g *migState) launch(now int64, mg mem.Migration) {
	m := g.m
	sp := m.spaces[mg.Page.App]
	to := m.cfg.Mapping.Placement.NodeOf(mg.To)
	finish := now
	var pages []int64
	for v := mg.Page.VPage; v < mg.Page.VPage+int64(mg.Pages); v++ {
		mc, ok := sp.PageMC(v)
		if !ok || mc == mg.To {
			continue // untouched, or already home: nothing to move
		}
		pages = append(pages, v)
		from := m.cfg.Mapping.Placement.NodeOf(mc)
		for i := 0; i < g.copyFlits; i++ {
			t, _ := m.net.Transit(now, from, to, noc.OffChip)
			if t > finish {
				finish = t
			}
		}
	}
	if len(pages) == 0 {
		// Every member already lives on the target (the base page moved
		// between decision and launch): nothing in flight, unfreeze now.
		g.eng.Completed(mg.Page)
		return
	}
	m.sim.Schedule(finish, &remapEvent{g: g, mg: mg, pages: pages, start: now})
}

// remapEvent commits one migration: an engine event at copy-finish time.
// In-flight accesses translated before the commit keep their old physical
// address — the old frame is still consistent data, it merely stops being
// the page's home — so the remap is atomic and the address map is a
// bijection at every instant. A cluster commits as one unit: its member
// remaps apply back to back at the same instant, the sharers pay ONE
// shootdown for the whole cluster, and the bijection probe runs once after
// the last member.
type remapEvent struct {
	g     *migState
	mg    mem.Migration
	pages []int64 // member vpages to re-home (off-target at launch)
	start int64
}

// Handle implements engine.Handler.
func (e *remapEvent) Handle(now int64) {
	g, mg := e.g, e.mg
	m := g.m
	sp := m.spaces[mg.Page.App]
	remapped := 0
	for _, v := range e.pages {
		if _, ok := sp.Remap(v, mg.To); ok {
			remapped++
		}
	}
	if remapped > 0 {
		var stall int64
		for _, core := range mg.Sharers {
			cs := m.cores[core]
			if cs.nextFree < now {
				cs.nextFree = now
			}
			cs.nextFree += g.spec.ShootdownCycles
			stall += g.spec.ShootdownCycles
		}
		m.res.Migrations++
		m.res.MigCopyMsgs += int64(g.copyFlits * remapped)
		m.res.MigStallCycles += stall
		if g.migC == nil {
			g.migC = m.obs.Reg.Counter("mig", "migrations")
			g.copyC = m.obs.Reg.Counter("mig", "copy_msgs")
			g.stallC = m.obs.Reg.Counter("mig", "stall_cycles")
		}
		g.migC.Inc()
		g.copyC.Add(int64(g.copyFlits * remapped))
		g.stallC.Add(stall)
		if pf := m.pf; pf != nil {
			pf.Migration(now-e.start, stall)
		}
		if ck := m.ck; ck != nil {
			if err := sp.VerifyBijection(); err != nil {
				ck.Report("migration", "after remap of app %d vpage %d (+%d pages) MC %d→%d: %v",
					mg.Page.App, mg.Page.VPage, remapped-1, mg.From, mg.To, err)
			}
		}
	}
	g.eng.Completed(mg.Page)
}
