package sim_test

// Migration battery: the online page-migration engine must be provably
// inert when degenerate (byte-identical results to the static policies, so
// the historical figures cannot drift), and fully conserved when active
// (remaps commit atomically while accesses are in flight; every copy flit
// and shootdown stall is accounted). `make validate` runs this file under
// -race -count=2 along with the conservation battery.

import (
	"reflect"
	"testing"

	"offchip/internal/check"
	"offchip/internal/core"
	"offchip/internal/ir"
	"offchip/internal/layout"
	"offchip/internal/mem"
	"offchip/internal/obs"
	"offchip/internal/sim"
	"offchip/internal/trace"
	"offchip/internal/workloads"
)

// pageMachine returns the Table 1 platform under page interleaving (the
// only interleaving migration is defined for) with the given L2.
func pageMachine(t *testing.T, l2 layout.CacheKind) (layout.Machine, *layout.ClusterMapping) {
	t.Helper()
	m := layout.Default8x8()
	m.L2 = l2
	m.Interleave = layout.PageInterleave
	cm, err := layout.MappingM1(m, layout.PlacementCorners(m.MeshX, m.MeshY))
	if err != nil {
		t.Fatal(err)
	}
	return m, cm
}

// baselineWorkload builds the app's identity-layout trace directly, without
// the layout optimizer — the compiler pass refuses shared L2 under page
// interleaving (a compiler constraint, Figure 22), but migration runs under
// the OS-default layout where no pass is involved.
func baselineWorkload(t *testing.T, app *workloads.App, m layout.Machine, cap int) *sim.Workload {
	t.Helper()
	p, store, err := app.Load()
	if err != nil {
		t.Fatal(err)
	}
	identity := &layout.Result{Program: p, Layouts: map[*ir.Array]*layout.ArrayLayout{}}
	w, err := trace.Generate(p, identity, m, store, trace.Options{MaxAccessesPerThread: cap})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// aggressiveSpec migrates eagerly so short test traces still trigger
// remaps: low threshold, short windows, minimal damping.
func aggressiveSpec() *mem.MigrationSpec {
	return &mem.MigrationSpec{HotThreshold: 2, WindowCycles: 256, CooldownWindows: 1, CopyFlits: 4, ShootdownCycles: 16}
}

// TestMigrationDegenerateEquivalence is the differential gate behind the
// "provably inert" contract: a migration engine that can never fire — an
// unreachable threshold, or zero-length windows — must leave every workload's
// result byte-identical to a run with no engine attached, under both L2
// organizations and both static baseline policies. Any divergence (an extra
// event, a perturbed counter, a registry entry) means the disabled path costs
// something, and the historical goldens are no longer trustworthy.
func TestMigrationDegenerateEquivalence(t *testing.T) {
	degenerate := map[string]*mem.MigrationSpec{
		"infinite-threshold": {HotThreshold: 1 << 30, WindowCycles: 1024, CooldownWindows: 2, ShootdownCycles: 64},
		"zero-windows":       {HotThreshold: 2, WindowCycles: 0, CooldownWindows: 2, ShootdownCycles: 64},
	}
	for _, app := range workloads.All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			t.Parallel()
			for _, l2 := range []layout.CacheKind{layout.PrivateL2, layout.SharedL2} {
				m, cm := pageMachine(t, l2)
				opt := core.Options{MaxAccessesPerThread: 120}
				base := baselineWorkload(t, app, m, 120)
				for _, pol := range []sim.PolicyKind{sim.PolicyInterleaved, sim.PolicyFirstTouchNearest} {
					cfg := core.SimConfig(m, cm, opt)
					cfg.Policy = pol
					ref, err := sim.Run(cfg, base)
					if err != nil {
						t.Fatal(err)
					}
					for name, spec := range degenerate {
						mcfg := cfg
						mcfg.Migrate = spec
						got, err := sim.Run(mcfg, base)
						if err != nil {
							t.Fatalf("%v/policy%d/%s: %v", l2, pol, name, err)
						}
						if !reflect.DeepEqual(got, ref) {
							t.Errorf("%v/policy%d/%s: degenerate migration perturbed the result", l2, pol, name)
						}
					}
				}
			}
		})
	}
}

// TestMigrationDegenerateRegistryIdentical extends the differential gate to
// the observability plane: with a degenerate engine attached, the metrics
// registry must carry exactly the same points (no mig/* counters, identical
// values elsewhere).
func TestMigrationDegenerateRegistryIdentical(t *testing.T) {
	app, ok := workloads.ByName("apsi")
	if !ok {
		t.Fatal("apsi workload missing")
	}
	m, cm := pageMachine(t, layout.PrivateL2)
	opt := core.Options{MaxAccessesPerThread: 120}
	base, _, _, err := core.Workloads(app, m, cm, opt)
	if err != nil {
		t.Fatal(err)
	}
	snap := func(spec *mem.MigrationSpec) ([]obs.Point, *sim.Result) {
		cfg := core.SimConfig(m, cm, opt)
		cfg.Migrate = spec
		o := obs.New()
		cfg.Obs = o
		r, err := sim.Run(cfg, base)
		if err != nil {
			t.Fatal(err)
		}
		return o.Reg.Snapshot(r.ExecTime), r
	}
	refPts, refR := snap(nil)
	gotPts, gotR := snap(&mem.MigrationSpec{HotThreshold: 1 << 30, WindowCycles: 1024, ShootdownCycles: 64})
	if !reflect.DeepEqual(gotR, refR) {
		t.Error("degenerate migration perturbed the result")
	}
	if !reflect.DeepEqual(gotPts, refPts) {
		t.Errorf("degenerate migration perturbed the registry: %d points vs %d", len(gotPts), len(refPts))
	}
}

// TestMigrationConservation runs the engine hot — low threshold, short
// windows — across both L2 organizations and checks that live remaps (pages
// re-homed while accesses are in flight) never break the conservation
// identities, the registry cross-check, or the page-table bijection probe.
func TestMigrationConservation(t *testing.T) {
	for _, name := range []string{"apsi", "swim", "fma3d"} {
		app, ok := workloads.ByName(name)
		if !ok {
			t.Fatalf("%s workload missing", name)
		}
		for _, l2 := range []layout.CacheKind{layout.PrivateL2, layout.SharedL2} {
			m, cm := pageMachine(t, l2)
			opt := core.Options{MaxAccessesPerThread: 200}
			base := baselineWorkload(t, app, m, 200)
			cfg := core.SimConfig(m, cm, opt)
			cfg.Policy = sim.PolicyFirstTouchNearest
			cfg.Migrate = aggressiveSpec()
			ck := check.New()
			cfg.Check = ck
			o := obs.New()
			cfg.Obs = o
			r, err := sim.Run(cfg, base)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range ck.Violations() {
				t.Errorf("%s/%v: checker: %v", name, l2, v)
			}
			tot := r.Totals(base, &cfg)
			for _, v := range check.VerifyTotals(tot) {
				t.Errorf("%s/%v: totals: %v", name, l2, v)
			}
			for _, v := range check.CrossCheckRegistry(o.Reg, tot) {
				t.Errorf("%s/%v: registry: %v", name, l2, v)
			}
		}
	}
}

// TestMigrationCostVisible pins the acceptance criterion that migration is
// never free: when remaps fire, the copy traffic lands in the NoC message
// totals, the registry carries the mig/* counters, and every committed
// migration paid exactly CopyFlits messages.
func TestMigrationCostVisible(t *testing.T) {
	app, ok := workloads.ByName("apsi")
	if !ok {
		t.Fatal("apsi workload missing")
	}
	m, cm := pageMachine(t, layout.PrivateL2)
	opt := core.Options{MaxAccessesPerThread: 200}
	base, _, _, err := core.Workloads(app, m, cm, opt)
	if err != nil {
		t.Fatal(err)
	}
	spec := aggressiveSpec()
	cfg := core.SimConfig(m, cm, opt)
	cfg.Policy = sim.PolicyFirstTouchNearest
	cfg.Migrate = spec
	o := obs.New()
	cfg.Obs = o
	r, err := sim.Run(cfg, base)
	if err != nil {
		t.Fatal(err)
	}
	if r.Migrations == 0 {
		t.Fatal("aggressive spec triggered no migrations; the cost path is untested")
	}
	if want := r.Migrations * int64(spec.CopyFlits); r.MigCopyMsgs != want {
		t.Errorf("MigCopyMsgs = %d, want %d (%d migrations x %d flits)", r.MigCopyMsgs, want, r.Migrations, spec.CopyFlits)
	}
	if r.MigStallCycles <= 0 {
		t.Error("migrations fired but no shootdown stall was charged")
	}
	// The copies travel the NoC: the off-chip message total must exceed a
	// run identical in every respect except the engine.
	ref := cfg
	ref.Migrate = nil
	ref.Obs = nil
	rr, err := sim.Run(ref, base)
	if err != nil {
		t.Fatal(err)
	}
	gotMsgs := r.NetMsgs[0] + r.NetMsgs[1]
	refMsgs := rr.NetMsgs[0] + rr.NetMsgs[1]
	if gotMsgs < refMsgs+r.MigCopyMsgs {
		t.Errorf("NoC messages %d do not include the %d copy messages (static run: %d)", gotMsgs, r.MigCopyMsgs, refMsgs)
	}
	// And the registry agrees with the result's accounting.
	for name, want := range map[string]int64{
		"migrations": r.Migrations, "copy_msgs": r.MigCopyMsgs, "stall_cycles": r.MigStallCycles,
	} {
		if got := o.Reg.Counter("mig", name).Value(); got != want {
			t.Errorf("registry mig/%s = %d, want %d", name, got, want)
		}
	}
}

// TestMigrationDeterministic pins that a hot engine is as reproducible as
// the static policies: same config, same workload, byte-identical results.
func TestMigrationDeterministic(t *testing.T) {
	app, ok := workloads.ByName("swim")
	if !ok {
		t.Fatal("swim workload missing")
	}
	m, cm := pageMachine(t, layout.SharedL2)
	opt := core.Options{MaxAccessesPerThread: 200}
	base := baselineWorkload(t, app, m, 200)
	cfg := core.SimConfig(m, cm, opt)
	cfg.Policy = sim.PolicyFirstTouchNearest
	cfg.Migrate = aggressiveSpec()
	r1, err := sim.Run(cfg, base)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sim.Run(cfg, base)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Error("hot migration engine is not deterministic across identical runs")
	}
	if r1.Migrations == 0 {
		t.Error("determinism run triggered no migrations; gate is vacuous")
	}
}

// TestMigrationValidation pins the config-level guard rails: migration
// demands page interleaving and refuses to stack on the optimal scheme.
func TestMigrationValidation(t *testing.T) {
	m := layout.Default8x8() // line interleave
	cm, err := layout.MappingM1(m, layout.PlacementCorners(m.MeshX, m.MeshY))
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig(m, cm)
	cfg.Migrate = aggressiveSpec()
	if err := cfg.Validate(); err == nil {
		t.Error("migration under line interleaving validated")
	}
	m.Interleave = layout.PageInterleave
	cfg = sim.DefaultConfig(m, cm)
	cfg.Migrate = aggressiveSpec()
	if err := cfg.Validate(); err != nil {
		t.Errorf("migration under page interleaving rejected: %v", err)
	}
	cfg.OptimalOffchip = true
	if err := cfg.Validate(); err == nil {
		t.Error("migration stacked on the optimal scheme validated")
	}
	cfg.OptimalOffchip = false
	cfg.Migrate = &mem.MigrationSpec{HotThreshold: 0, WindowCycles: 1024}
	if err := cfg.Validate(); err == nil {
		t.Error("invalid spec (threshold 0) validated")
	}
}

// TestMigrationClusterCost pins the cluster-granularity cost model with a
// synthetic geometry where every number is computable by hand. One core in
// the far corner of a 4x4 mesh (node 15, whose nearest controller is the
// corner MC at distance 0) round-robins over the four pages of one aligned
// cluster, which page interleaving spread across all four corner MCs.
//
//   - At g=4 the cluster is one decision unit: the whole hot set moves to
//     the corner controller in ONE migration event. The member already homed
//     there is skipped, so exactly three pages re-home — MigCopyMsgs counts
//     per-member copies (3 x CopyFlits) while the single sharer pays ONE
//     shootdown for the whole cluster (MigStallCycles == ShootdownCycles).
//   - At g=1 the same trace migrates nothing: any window hot enough to
//     clear the threshold for one page also touched the page homed on the
//     target controller, so the queue-balance guard refuses every
//     candidate (the move would concentrate a spread that page
//     interleaving balanced). Cluster granularity is precisely what lets
//     the set move as a unit.
func TestMigrationClusterCost(t *testing.T) {
	m := layout.Machine{
		MeshX: 4, MeshY: 4,
		NumMCs:     4,
		LineBytes:  64,
		PageBytes:  512,
		L2:         layout.PrivateL2,
		Interleave: layout.PageInterleave,
	}
	cm, err := layout.MappingM1(m, layout.PlacementCorners(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	base := sim.DefaultConfig(m, cm)
	base.L1Bytes = 1024
	base.L2Bytes = 4096

	// Core 15 at (3,3); pages 0..3 first-touch onto MCs 0..3 in order, so
	// the cluster's base page homes on MC0 at node (0,0), six hops away.
	st := sim.Stream{Core: 15}
	for i := 0; i < 600; i++ {
		st.Accesses = append(st.Accesses, sim.Access{
			VAddr:     int64(i%4)*512 + int64(i*64)%512,
			DesiredMC: -1,
		})
	}
	w := &sim.Workload{Name: "cluster", Streams: []sim.Stream{st}}

	run := func(clusterPages int) *sim.Result {
		t.Helper()
		cfg := base
		cfg.Migrate = &mem.MigrationSpec{
			HotThreshold: 2, WindowCycles: 256, CooldownWindows: 1,
			CopyFlits: 2, ShootdownCycles: 16, ClusterPages: clusterPages,
		}
		r, err := sim.Run(cfg, w)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	r4 := run(4)
	if r4.Migrations != 1 {
		t.Fatalf("g=4: %d migrations, want exactly 1 (the whole cluster in one event)", r4.Migrations)
	}
	if want := int64(3 * 2); r4.MigCopyMsgs != want {
		t.Errorf("g=4: MigCopyMsgs = %d, want %d (3 off-target members x 2 flits; the member already home is not copied)",
			r4.MigCopyMsgs, want)
	}
	if want := int64(16); r4.MigStallCycles != want {
		t.Errorf("g=4: MigStallCycles = %d, want %d (one shootdown for the whole cluster, one sharer)",
			r4.MigStallCycles, want)
	}

	r1 := run(1)
	if r1.Migrations != 0 {
		t.Errorf("g=1: %d migrations, want 0 (queue-balance guard refuses every single-page move of a balanced spread)",
			r1.Migrations)
	}
	if r1.MigCopyMsgs != 0 || r1.MigStallCycles != 0 {
		t.Errorf("g=1: cost charged with no migrations: copy=%d stall=%d", r1.MigCopyMsgs, r1.MigStallCycles)
	}
}
