package sim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"testing"

	"offchip/internal/noc"
	"offchip/internal/obs"
)

// manyAccesses builds a workload with enough traffic to exercise every
// substrate: strided streams on several cores, so some requests hit every
// controller and the DRAM queues actually fill.
func manyAccesses(cores, perCore int) *Workload {
	w := &Workload{Name: "many"}
	for c := 0; c < cores; c++ {
		var accs []Access
		for i := 0; i < perCore; i++ {
			// Consecutive pairs touch the same line, so L1 hits occur too.
			accs = append(accs, Access{VAddr: int64(c*1000+i/2) * 64, DesiredMC: -1})
		}
		w.Streams = append(w.Streams, Stream{Core: c, Accesses: accs})
	}
	return w
}

// TestRegistryMatchesResult is the regression test behind the acceptance
// criterion: the Figure 13/15/18 numbers the observability registry holds
// must equal the (historically bespoke) stat fields in Result.
func TestRegistryMatchesResult(t *testing.T) {
	cfg := testConfig(t)
	o := obs.New()
	cfg.Obs = o
	r, err := Run(cfg, manyAccesses(16, 50))
	if err != nil {
		t.Fatal(err)
	}
	if r.OffChip == 0 || r.MemServed == 0 {
		t.Fatal("workload produced no off-chip traffic; test is vacuous")
	}

	points := map[string]obs.Point{}
	for _, p := range o.Reg.Snapshot(r.ExecTime) {
		key := p.Component + "/" + p.Name
		keys := make([]string, 0, len(p.Labels))
		for k := range p.Labels {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			key += "," + k + "=" + p.Labels[k]
		}
		points[key] = p
	}

	// Figure 13: the per-node per-MC access map.
	var mapTotal int64
	for node := range r.AccessMap {
		for mc, want := range r.AccessMap[node] {
			mapTotal += want
			p, ok := points[fmt.Sprintf("sim/offchip_requests,mc=%d,node=%d", mc, node)]
			if !ok {
				t.Fatalf("missing offchip_requests point for node %d mc %d", node, mc)
			}
			if p.Value != want {
				t.Errorf("registry access map [%d][%d] = %d, Result says %d", node, mc, p.Value, want)
			}
		}
	}
	if mapTotal != r.OffChip {
		t.Errorf("access map total %d != OffChip %d", mapTotal, r.OffChip)
	}

	// Figure 15: hop histograms. The registry histogram must carry exactly
	// the messages the aggregate counters saw, and the CDF in Result must
	// be the registry histogram's CDF.
	for c := 0; c < 2; c++ {
		class := noc.Class(c)
		hist := points["noc/hops,class="+class.String()]
		if hist.Count != r.NetMsgs[c] {
			t.Errorf("%v hop histogram has %d messages, Result says %d", class, hist.Count, r.NetMsgs[c])
		}
		if hist.Sum != r.NetHops[c] {
			t.Errorf("%v hop histogram sums %d hops, Result says %d", class, hist.Sum, r.NetHops[c])
		}
		var cum int64
		for i, want := range r.HopCDF[c] {
			cum += hist.Counts[i]
			got := float64(cum) / float64(hist.Count)
			if math.Abs(got-want) > 1e-12 {
				t.Errorf("%v HopCDF[%d] = %v, registry CDF %v", class, i, want, got)
			}
		}
		if msgs := points["noc/messages,class="+class.String()]; msgs.Value != r.NetMsgs[c] {
			t.Errorf("%v message counter %d != %d", class, msgs.Value, r.NetMsgs[c])
		}
		if lat := points["noc/latency_cycles,class="+class.String()]; lat.Value != r.NetLatency[c] {
			t.Errorf("%v latency counter %d != %d", class, lat.Value, r.NetLatency[c])
		}
	}

	// Figure 18: per-MC queue occupancy is the registry's time-weighted
	// queue_len averaged over the run.
	for mc, want := range r.QueueOcc {
		p, ok := points[fmt.Sprintf("dram/queue_len,mc=%d", mc)]
		if !ok {
			t.Fatalf("missing queue_len for mc %d", mc)
		}
		if math.Abs(p.Avg-want) > 1e-12 {
			t.Errorf("registry queue occupancy mc%d = %v, Result says %v", mc, p.Avg, want)
		}
	}

	// Supporting counters: served/row-hit totals and cache hits.
	var served, rowHits, bankServed int64
	for mc := 0; mc < cfg.Machine.NumMCs; mc++ {
		served += points[fmt.Sprintf("dram/served,mc=%d", mc)].Value
		rowHits += points[fmt.Sprintf("dram/row_hits,mc=%d", mc)].Value
	}
	for _, p := range o.Reg.Snapshot(0) {
		if p.Component == "dram" && p.Name == "bank_served" {
			bankServed += p.Value
		}
	}
	if served != r.MemServed {
		t.Errorf("served %d != MemServed %d", served, r.MemServed)
	}
	if bankServed != served {
		t.Errorf("per-bank served %d != per-MC served %d", bankServed, served)
	}
	if rowHits != r.RowHits {
		t.Errorf("row hits %d != %d", rowHits, r.RowHits)
	}
	var l1Hits int64
	for _, p := range o.Reg.Snapshot(0) {
		if p.Component == "cache" && p.Name == "hits" && p.Labels["comp"][:2] == "l1" {
			l1Hits += p.Value
		}
	}
	if l1Hits != r.L1Hits {
		t.Errorf("cache registry l1 hits %d != L1Hits %d", l1Hits, r.L1Hits)
	}
	if got := points["sim/accesses"].Value; got != r.Total {
		t.Errorf("accesses %d != Total %d", got, r.Total)
	}
	if got := points["sim/offchip"].Value; got != r.OffChip {
		t.Errorf("offchip %d != %d", got, r.OffChip)
	}
}

// TestTracingDoesNotPerturb verifies that attaching a tracer changes no
// simulation outcome: observability must be read-only.
func TestTracingDoesNotPerturb(t *testing.T) {
	run := func(o *obs.Observer) *Result {
		cfg := testConfig(t)
		cfg.Obs = o
		r, err := Run(cfg, manyAccesses(16, 40))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	plain := run(nil)
	tr := obs.NewTracer(obs.TracerOptions{Ring: 64, Sample: 7})
	traced := run(&obs.Observer{Reg: obs.NewRegistry(), Tracer: tr})
	if plain.ExecTime != traced.ExecTime || plain.OffChip != traced.OffChip ||
		plain.NetLatency != traced.NetLatency || plain.MemLatency != traced.MemLatency {
		t.Errorf("tracing perturbed the run: %+v vs %+v", plain, traced)
	}
	if tr.Seen() == 0 {
		t.Error("tracer saw no events")
	}
}

// TestTraceEventsWellFormed runs a traced simulation and checks the JSONL
// stream parses and covers every event category the issue names.
func TestTraceEventsWellFormed(t *testing.T) {
	var buf bytes.Buffer
	cfg := testConfig(t)
	cfg.Obs = &obs.Observer{
		Reg:    obs.NewRegistry(),
		Tracer: obs.NewTracer(obs.TracerOptions{JSONL: &buf}),
	}
	if _, err := Run(cfg, manyAccesses(8, 30)); err != nil {
		t.Fatal(err)
	}
	if err := cfg.Obs.Tracer.Close(); err != nil {
		t.Fatal(err)
	}
	cats := map[string]map[string]bool{}
	dec := json.NewDecoder(&buf)
	for dec.More() {
		var ev obs.Event
		if err := dec.Decode(&ev); err != nil {
			t.Fatal(err)
		}
		if cats[ev.Cat] == nil {
			cats[ev.Cat] = map[string]bool{}
		}
		cats[ev.Cat][ev.Name] = true
	}
	for _, want := range []struct{ cat, name string }{
		{"noc", "msg"}, {"noc", "link"},
		{"cache", "hit"}, {"cache", "miss"},
		{"dram", "enqueue"},
		{"core", "retire"}, {"core", "stall"},
	} {
		if !cats[want.cat][want.name] {
			t.Errorf("no %s/%s events in trace (have %v)", want.cat, want.name, cats)
		}
	}
	// At least one of the three row outcomes must appear.
	if !cats["dram"]["row-hit"] && !cats["dram"]["row-miss"] && !cats["dram"]["row-conflict"] {
		t.Errorf("no dram service events: %v", cats["dram"])
	}
}

// TestProgressCallback verifies live reporting fires with sane values.
func TestProgressCallback(t *testing.T) {
	cfg := testConfig(t)
	var samples []Progress
	cfg.OnProgress = func(p Progress) { samples = append(samples, p) }
	cfg.ProgressEvery = 100
	r, err := Run(cfg, manyAccesses(16, 50))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) == 0 {
		t.Fatal("no progress samples")
	}
	last := samples[len(samples)-1]
	if last.Cycles <= 0 || last.Cycles > r.ExecTime {
		t.Errorf("cycles = %d (exec time %d)", last.Cycles, r.ExecTime)
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].Events != samples[i-1].Events+100 {
			t.Errorf("events not monotonic by 100: %d then %d", samples[i-1].Events, samples[i].Events)
		}
		if samples[i].Cycles < samples[i-1].Cycles {
			t.Errorf("cycles went backward")
		}
	}
}
