package sim

import (
	"reflect"
	"sync"
	"testing"

	"offchip/internal/layout"
)

// raceWorkload builds a workload with enough cross-core traffic (shared
// lines, off-chip misses, queueing) to exercise every substrate.
func raceWorkload(cores int) *Workload {
	var streams []Stream
	for c := 0; c < cores; c++ {
		var accs []Access
		for i := int64(0); i < 120; i++ {
			accs = append(accs, Access{VAddr: (int64(c)*977 + i*131) % 8192 * 8, DesiredMC: -1})
		}
		streams = append(streams, Stream{Core: c, Accesses: accs})
	}
	return &Workload{Name: "race", Streams: streams}
}

// TestDeterminismConcurrentRuns is the -race stress gate for the parallel
// experiment runner: sim.Run holds no package-level mutable state, so any
// number of simulations may run concurrently — including over the *same*
// Workload value — and each must produce exactly the result a solo run
// produces. A data race here (flagged by -race) or a result mismatch means
// some state leaked between concurrent machines.
func TestDeterminismConcurrentRuns(t *testing.T) {
	cfg := testConfig(t)
	w := raceWorkload(16)

	ref, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}

	// Heterogeneous configs in flight at once: same workload, different
	// policies/seeds — the shape of a sharded parameter sweep.
	sharedCfg := cfg
	sharedCfg.Machine.L2 = layout.SharedL2
	seededCfg := cfg
	seededCfg.Seed = 12345
	sharedRef, err := Run(sharedCfg, w)
	if err != nil {
		t.Fatal(err)
	}
	seededRef, err := Run(seededCfg, w)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	results := make([]*Result, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := cfg
			switch i % 3 {
			case 1:
				c = sharedCfg
			case 2:
				c = seededCfg
			}
			results[i], errs[i] = Run(c, w)
		}(i)
	}
	wg.Wait()

	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
		want := ref
		switch i % 3 {
		case 1:
			want = sharedRef
		case 2:
			want = seededRef
		}
		if !reflect.DeepEqual(results[i], want) {
			t.Errorf("worker %d: concurrent result diverged from solo run", i)
		}
	}
}

// TestSeedChangesJitterStream pins the Seed contract: seed 0 reproduces the
// historical stream, equal seeds reproduce each other, and different seeds
// (with jitter enabled) sample different interleavings.
func TestSeedChangesJitterStream(t *testing.T) {
	cfg := testConfig(t)
	cfg.GapJitter = 8
	w := raceWorkload(16)

	base1, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	base2, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base1, base2) {
		t.Fatal("seed 0 is not reproducible")
	}

	seeded := cfg
	seeded.Seed = 99
	s1, err := Run(seeded, w)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Run(seeded, w)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("equal seeds produced different results")
	}
	if s1.ExecTime == base1.ExecTime && reflect.DeepEqual(s1.NetLatency, base1.NetLatency) {
		t.Error("seed 99 produced the seed-0 stream (seed not mixed into jitter)")
	}
}
