package sim

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"offchip/internal/noc"
	"offchip/internal/obs"
)

// SampleSpec configures SMARTS-style sampled simulation: instead of replaying
// a workload end to end, RunSampled simulates W evenly spaced windows of it,
// each preceded by a warmup prefix that primes caches and page tables, and
// extrapolates every headline metric from the measured windows with a
// confidence bound. Sampling never changes what a window simulates — windows
// replay verbatim slices of the exact streams a full run would — so with
// sampling off (a nil spec) results are bit-identical to the pre-sampling
// code path.
type SampleSpec struct {
	// Windows is the number of measurement windows per run (default 4).
	Windows int
	// Fraction is the measured share of each stream's accesses, spread
	// evenly over the windows (default 0.1).
	Fraction float64
	// WarmupFrac sizes each window's timed warmup prefix relative to its
	// measured length (default 1.0). Warmup accesses are simulated but
	// excluded from the estimates: each window runs twice — warmup+measure
	// and warmup alone — and the measured contribution is the difference.
	// The timed warmup exists to reach the machine's queueing steady state
	// (the NoC runs saturated, and the closed-loop ramp takes a few hundred
	// cycles); cache and page-table state is primed separately by the
	// functional warming pass, which is much cheaper per access.
	WarmupFrac float64
	// Replicates phase-shifts the window grid and pools the windows of all
	// replicates into the estimator (default 1).
	Replicates int
}

// DefaultSampleSpec returns the default sampling configuration ("on").
func DefaultSampleSpec() SampleSpec {
	return SampleSpec{Windows: 4, Fraction: 0.1, WarmupFrac: 1.0, Replicates: 1}
}

func (s SampleSpec) normalized() SampleSpec {
	d := DefaultSampleSpec()
	if s.Windows <= 0 {
		s.Windows = d.Windows
	}
	if s.Fraction <= 0 {
		s.Fraction = d.Fraction
	}
	if s.WarmupFrac < 0 {
		s.WarmupFrac = d.WarmupFrac
	}
	if s.Replicates <= 0 {
		s.Replicates = d.Replicates
	}
	return s
}

// Validate rejects specs that cannot produce a meaningful estimate.
func (s SampleSpec) Validate() error {
	n := s.normalized()
	if n.Fraction > 1 {
		return fmt.Errorf("sim: sample fraction %g > 1", n.Fraction)
	}
	if n.Windows > 1<<20 || n.Replicates > 1<<10 {
		return fmt.Errorf("sim: implausible sample spec %s", n.String())
	}
	return nil
}

// String renders the canonical compact form, e.g. "w4f0.1u1r1". It
// round-trips through ParseSampleSpec, so job IDs embed it verbatim.
func (s SampleSpec) String() string {
	n := s.normalized()
	return fmt.Sprintf("w%df%su%sr%d",
		n.Windows,
		strconv.FormatFloat(n.Fraction, 'g', -1, 64),
		strconv.FormatFloat(n.WarmupFrac, 'g', -1, 64),
		n.Replicates)
}

// ParseSampleSpec parses the compact form. "" and "off" mean no sampling
// (nil); "on" means the defaults.
func ParseSampleSpec(s string) (*SampleSpec, error) {
	switch s {
	case "", "off":
		return nil, nil
	case "on":
		sp := DefaultSampleSpec()
		return &sp, nil
	}
	rest, ok := strings.CutPrefix(s, "w")
	if !ok {
		return nil, fmt.Errorf("sim: sample spec %q: want \"on\", \"off\", or w<n>f<frac>u<warm>r<reps>", s)
	}
	ws, rest, ok := strings.Cut(rest, "f")
	if !ok {
		return nil, fmt.Errorf("sim: sample spec %q lacks the f<fraction> field", s)
	}
	fs, rest, ok := strings.Cut(rest, "u")
	if !ok {
		return nil, fmt.Errorf("sim: sample spec %q lacks the u<warmup> field", s)
	}
	us, rs, ok := strings.Cut(rest, "r")
	if !ok {
		return nil, fmt.Errorf("sim: sample spec %q lacks the r<replicates> field", s)
	}
	var sp SampleSpec
	var err error
	if sp.Windows, err = strconv.Atoi(ws); err != nil {
		return nil, fmt.Errorf("sim: sample windows %q: %w", ws, err)
	}
	if sp.Fraction, err = strconv.ParseFloat(fs, 64); err != nil {
		return nil, fmt.Errorf("sim: sample fraction %q: %w", fs, err)
	}
	if sp.WarmupFrac, err = strconv.ParseFloat(us, 64); err != nil {
		return nil, fmt.Errorf("sim: sample warmup %q: %w", us, err)
	}
	if sp.Replicates, err = strconv.Atoi(rs); err != nil {
		return nil, fmt.Errorf("sim: sample replicates %q: %w", rs, err)
	}
	sp = sp.normalized()
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	return &sp, nil
}

// Bound is a point estimate with a symmetric confidence half-width: the
// battery accepts a full-run value x when |x − Mean| ≤ Half.
type Bound struct {
	Mean float64
	Half float64
}

// Within reports whether x falls inside the bound.
func (b Bound) Within(x float64) bool { return math.Abs(x-b.Mean) <= b.Half }

// RelHalf returns Half as a fraction of |Mean| (0 when Mean is 0).
func (b Bound) RelHalf() float64 {
	if b.Mean == 0 {
		return 0
	}
	return b.Half / math.Abs(b.Mean)
}

// SampledEstimates carries one Bound per headline metric (the quantities
// core.Metrics distills from a full run).
type SampledEstimates struct {
	ExecTime      Bound
	OnChipNetAvg  Bound
	OffChipNetAvg Bound
	MemAvg        Bound
	QueueAvg      Bound
	OffChipShare  Bound
	AvgQueueOcc   Bound
}

// SampledResult is the outcome of RunSampled.
type SampledResult struct {
	Spec SampleSpec
	// Exact is set when the spec's windows would cover every stream whole
	// (tiny workloads): the result is then one full run and every bound has
	// Half 0 — sampled equals full by construction.
	Exact bool

	FullAccesses      int64 // accesses of the full workload
	MeasuredAccesses  int64 // Σ measured (span − warmup) accesses
	SimulatedAccesses int64 // Σ accesses actually simulated (span + warmup runs)

	Est         SampledEstimates
	AppExecTime map[int]int64 // extrapolated per-application exec times

	// Aggregate sums the span runs — the distributional metrics (hop CDFs,
	// the node×MC access map) that have no per-window scalar estimator.
	// Warmup accesses are included here; their share is WarmupFrac/(1+WarmupFrac).
	Aggregate *Result
	// SpanResults/SpanWorkloads are the measured-window runs and their
	// inputs, in (replicate, window) order — each is a complete drained
	// simulation, so check.VerifyTotals holds on every pair.
	SpanResults   []*Result
	SpanWorkloads []*Workload
}

// streamWindow computes the window-win (of spec.Windows, replicate rep)
// slice bounds for a stream of n accesses: [start, start+warm+wlen), of
// which the first warm accesses are warmup. covered reports whether the
// window spans the whole stream (warm is then 0).
func (s SampleSpec) streamWindow(n, rep, win int) (start, warm, wlen int, covered bool) {
	wlen = int(float64(n)*s.Fraction/float64(s.Windows) + 0.5)
	if wlen < 1 {
		wlen = 1
	}
	warm = int(float64(wlen)*s.WarmupFrac + 0.5)
	if wlen+warm >= n {
		return 0, 0, n, true
	}
	stride := n / s.Windows
	offset := 0
	if s.Replicates > 1 && stride > 0 {
		offset = stride * rep / s.Replicates
	}
	start = win*stride + offset
	if start+warm+wlen > n {
		start = n - warm - wlen
	}
	if start < 0 {
		start = 0
	}
	return start, warm, wlen, false
}

// coversAll reports whether every stream's window spans the whole stream —
// the degenerate case where sampling buys nothing and RunSampled falls back
// to one exact full run.
func (s SampleSpec) coversAll(w *Workload) bool {
	for i := range w.Streams {
		if _, _, _, covered := s.streamWindow(len(w.Streams[i].Accesses), 0, 0); !covered {
			return false
		}
	}
	return true
}

// sliceStream cuts [start, start+length) out of st, remapping every phase
// marker into the slice (clamped), so page allocation still walks phases in
// program order. The slice aliases the original accesses — read-only, like
// any workload shared between runs.
func sliceStream(st *Stream, start, length int) Stream {
	out := Stream{Core: st.Core, AppID: st.AppID}
	out.Accesses = st.Accesses[start : start+length : start+length]
	if len(st.Phases) > 0 {
		out.Phases = make([]int, len(st.Phases))
		for i, ph := range st.Phases {
			p := ph - start
			if p < 0 {
				p = 0
			}
			if p > length {
				p = length
			}
			out.Phases[i] = p
		}
	}
	return out
}

// windowWorkloads builds the three workloads of one (replicate, window)
// cell: span (warmup + measured accesses), warm (the warmup prefixes alone),
// and half (the first half of each warmup prefix). span − warm isolates the
// measured window; warm − half isolates the second half of the warmup — a
// partially-warmed control segment whose distance from the measured values
// observes the local warming gradient, which sizes the bias allowance in
// the bounds.
//
// All three share one WarmState: the full workload as the page universe
// (identical page placement to the full run) and, when warmK > 0, up to
// warmK accesses of each stream's pre-window prefix replayed functionally
// so the caches and the directory approximate their mid-run contents. The
// shared state cancels exactly in the span − warm and warm − half
// subtractions.
func (s SampleSpec) windowWorkloads(w *Workload, rep, win, warmK int, pages *PageMemo) (span, warm, half *Workload) {
	span = &Workload{Name: w.Name}
	warm = &Workload{Name: w.Name}
	half = &Workload{Name: w.Name}
	span.Streams = make([]Stream, len(w.Streams))
	warm.Streams = make([]Stream, len(w.Streams))
	half.Streams = make([]Stream, len(w.Streams))
	ws := &WarmState{PageUniverse: w, Pages: pages}
	for i := range w.Streams {
		st := &w.Streams[i]
		start, wu, wlen, _ := s.streamWindow(len(st.Accesses), rep, win)
		span.Streams[i] = sliceStream(st, start, wu+wlen)
		warm.Streams[i] = sliceStream(st, start, wu)
		half.Streams[i] = sliceStream(st, start, wu/2)
		if warmK > 0 && start > 0 {
			from := start - warmK
			if from < 0 {
				from = 0
			}
			ws.CacheStreams = append(ws.CacheStreams, sliceStream(st, from, start-from))
		}
	}
	span.Warm, warm.Warm, half.Warm = ws, ws, ws
	return span, warm, half
}

// warmDepth is how much trace each window replays functionally before the
// timed run, as a multiple of the machine's total per-core cache lines: deep
// enough to overwrite the (cold) L1, L2 and directory state several times,
// shallow enough that warming stays a small fraction of a full simulation.
const warmDepth = 4

// RunSampled runs the sampled simulation: spec.Replicates × spec.Windows
// measured windows, each simulated as warmup+measure and warmup-only runs
// whose difference isolates the measured window's contribution to every
// additive counter. Scalar metrics are estimated as the mean over windows
// with a t-distribution confidence half-width (plus a relative floor that
// owns the method's residual bias); window runs inherit cfg's Check and
// Prof hooks, while the observability sink and progress callbacks attach to
// the first span run only (a sampled run has no single coherent timeline).
func RunSampled(cfg Config, w *Workload, spec SampleSpec) (*SampledResult, error) {
	spec = spec.normalized()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	sr := &SampledResult{Spec: spec, FullAccesses: w.TotalAccesses()}

	if cfg.Migrate != nil && !spec.coversAll(w) {
		// Window runs restore cache/page snapshots that carry NO Migrator
		// state (open-window counters, cooldowns, in-flight remaps), so a
		// sampled migrating run would silently measure a different policy
		// than the full run it claims to estimate. Fail fast instead; the
		// degenerate spec whose windows cover every stream falls through to
		// one exact full run, where migration is well-defined.
		return nil, fmt.Errorf("sim: sampled simulation cannot estimate a migrating run (mig=%s): window snapshots carry no migration state; run exact (no -sample), or a sample spec whose windows cover the whole trace", cfg.Migrate)
	}

	if spec.coversAll(w) {
		r, err := Run(cfg, w)
		if err != nil {
			return nil, err
		}
		sr.Exact = true
		sr.MeasuredAccesses = sr.FullAccesses
		sr.SimulatedAccesses = sr.FullAccesses
		sr.Aggregate = r
		sr.SpanResults = []*Result{r}
		sr.SpanWorkloads = []*Workload{w}
		sr.Est = exactEstimates(r)
		sr.AppExecTime = r.AppExecTime
		return sr, nil
	}

	quiet := cfg
	quiet.Obs = nil
	quiet.OnProgress = nil
	quiet.ProgressEvery = 0
	if cfg.Check == nil {
		// Null observer: every registration site sees a nil registry and
		// returns nil handles (all nil-safe), skipping the per-run cost of
		// building hundreds of labeled metrics nobody will read. The checker
		// path keeps a real registry for its end-of-run cross-check.
		quiet.Obs = &obs.Observer{}
	}

	est := newEstimator()
	appSamples := map[int]*metricSamples{}
	// Functional cache warming depth: enough pre-window trace to overwrite
	// the cold L1, L2 and directory state several times over.
	var cacheLines float64
	if lb := cfg.Machine.LineBytes; lb > 0 {
		cacheLines = float64(cfg.L1Bytes+cfg.L2Bytes) / float64(lb)
	}
	warmK := int(cacheLines) * warmDepth
	if n := len(w.Streams); n > 0 {
		est.setGrowthFactor(spec, int(sr.FullAccesses)/n)
	}
	// Every window run shares one page universe and machine config, so the
	// first-touch walk happens once and is snapshot-restored into the rest.
	pages := &PageMemo{}
	for rep := 0; rep < spec.Replicates; rep++ {
		for win := 0; win < spec.Windows; win++ {
			span, warm, half := spec.windowWorkloads(w, rep, win, warmK, pages)
			runCfg := quiet
			if rep == 0 && win == 0 {
				// One representative window feeds the observability sink.
				runCfg.Obs = cfg.Obs
			}
			spanR, err := Run(runCfg, span)
			if err != nil {
				return nil, fmt.Errorf("sim: sampled window r%dw%d: %w", rep, win, err)
			}
			var warmR, halfR *Result
			if warm.TotalAccesses() > 0 {
				warmR, err = Run(quiet, warm)
				if err != nil {
					return nil, fmt.Errorf("sim: sampled warmup r%dw%d: %w", rep, win, err)
				}
			} else {
				warmR = &Result{}
			}
			if halfAcc := half.TotalAccesses(); halfAcc > 0 && halfAcc < warm.TotalAccesses() {
				halfR, err = Run(quiet, half)
				if err != nil {
					return nil, fmt.Errorf("sim: sampled half-warmup r%dw%d: %w", rep, win, err)
				}
				sr.SimulatedAccesses += halfAcc
			}
			sr.SpanResults = append(sr.SpanResults, spanR)
			sr.SpanWorkloads = append(sr.SpanWorkloads, span)
			sr.MeasuredAccesses += span.TotalAccesses() - warm.TotalAccesses()
			sr.SimulatedAccesses += span.TotalAccesses() + warm.TotalAccesses()
			est.addWindow(spanR, warmR, halfR, sr.FullAccesses, appSamples)
		}
	}
	sr.Aggregate = aggregate(sr.SpanResults)
	sr.Est = est.estimates()
	sr.AppExecTime = map[int]int64{}
	for app, ms := range appSamples {
		sr.AppExecTime[app] = int64(ms.bound().Mean + 0.5)
	}
	return sr, nil
}

// exactEstimates converts a full run into zero-width bounds (the Exact path).
func exactEstimates(r *Result) SampledEstimates {
	var qa float64
	if r.MemServed > 0 {
		qa = float64(r.MemQueue) / float64(r.MemServed)
	}
	return SampledEstimates{
		ExecTime:      Bound{Mean: float64(r.ExecTime)},
		OnChipNetAvg:  Bound{Mean: r.AvgNetLatency(noc.OnChip)},
		OffChipNetAvg: Bound{Mean: r.AvgNetLatency(noc.OffChip)},
		MemAvg:        Bound{Mean: r.AvgMemLatency()},
		QueueAvg:      Bound{Mean: qa},
		OffChipShare:  Bound{Mean: r.OffChipShare()},
		AvgQueueOcc:   Bound{Mean: r.AvgQueueOcc},
	}
}

// estimator accumulates per-window scalar samples.
type estimator struct {
	exec, onNet, offNet, mem, queue, share, occ metricSamples
}

func newEstimator() *estimator { return &estimator{} }

// setGrowthFactor derives the congestion-growth extrapolation factor from
// the window geometry on a typical stream of n accesses. The control
// segment (second half of the warmup) and the measured segment sit one
// gradient step apart — midpoint distance wu/4 + wlen/2 in accesses — while
// the run-average machine age sits (n/2 − wu − wlen/2) accesses beyond the
// measured midpoint. Their ratio converts the observed per-step gradient
// into the bias a persistent linear ramp (unstable NoC or controller
// queues) would accumulate by mid-run. Stationary workloads have a
// near-zero mean gradient, so the allowance only engages when windows
// consistently age while running.
func (e *estimator) setGrowthFactor(spec SampleSpec, n int) {
	start, wu, wlen, covered := spec.streamWindow(n, 0, 0)
	_ = start
	if covered {
		return
	}
	gap := float64(wu)/4 + float64(wlen)/2
	if gap <= 0 {
		return
	}
	remaining := float64(n)/2 - float64(wu) - float64(wlen)/2
	if remaining <= 0 {
		return
	}
	gf := remaining / gap
	for _, m := range []*metricSamples{&e.exec, &e.onNet, &e.offNet, &e.mem, &e.queue, &e.share, &e.occ} {
		m.growthFactor = gf
	}
}

// sub clamps a counter difference at zero: the warmup-only run is a
// slightly different schedule than the span run's prefix (FR-FCFS may
// reorder across the cut), so tiny negative deltas are possible.
func sub(a, b int64) int64 {
	if a <= b {
		return 0
	}
	return a - b
}

// windowVals are one segment's metric values, each valid only when its
// denominator was nonzero.
type windowVals struct {
	exec, onNet, offNet, mem, queue, share, occ             float64
	okExec, okOnNet, okOffNet, okMem, okShare, okOcc, valid bool
}

// deltaVals computes the metric values of the segment isolated by base −
// prefix: the extrapolated exec time, the per-event latency averages, the
// off-chip share, and the time-weighted queue occupancy.
func deltaVals(base, prefix *Result, fullAcc int64) windowVals {
	var v windowVals
	dTotal := sub(base.Total, prefix.Total)
	if dTotal <= 0 || fullAcc <= 0 {
		return v
	}
	v.valid = true
	f := float64(dTotal) / float64(fullAcc)
	dExec := sub(base.ExecTime, prefix.ExecTime)
	v.exec, v.okExec = float64(dExec)/f, true
	if dMsgs := sub(base.NetMsgs[noc.OnChip], prefix.NetMsgs[noc.OnChip]); dMsgs > 0 {
		v.onNet = float64(sub(base.NetLatency[noc.OnChip], prefix.NetLatency[noc.OnChip])) / float64(dMsgs)
		v.okOnNet = true
	}
	if dMsgs := sub(base.NetMsgs[noc.OffChip], prefix.NetMsgs[noc.OffChip]); dMsgs > 0 {
		v.offNet = float64(sub(base.NetLatency[noc.OffChip], prefix.NetLatency[noc.OffChip])) / float64(dMsgs)
		v.okOffNet = true
	}
	if dServed := sub(base.MemServed, prefix.MemServed); dServed > 0 {
		v.mem = float64(sub(base.MemLatency, prefix.MemLatency)) / float64(dServed)
		v.queue = float64(sub(base.MemQueue, prefix.MemQueue)) / float64(dServed)
		v.okMem = true
	}
	v.share, v.okShare = float64(sub(base.OffChip, prefix.OffChip))/float64(dTotal), true
	if dExec > 0 {
		// Time-weighted subtraction: occupancy·time is the additive quantity.
		occ := (base.AvgQueueOcc*float64(base.ExecTime) - prefix.AvgQueueOcc*float64(prefix.ExecTime)) / float64(dExec)
		if occ < 0 {
			occ = 0
		}
		v.occ, v.okOcc = occ, true
	}
	return v
}

// addWindow folds one window's measured (span − warm) values into the
// samples, and contrasts them against a control segment to size the bias
// allowance. The control is the second half of the warmup (warm − half) —
// partially warmed like the measured window, so its gap from the measured
// values observes the local warming gradient rather than the full cold-start
// distance. When no half-warmup run exists (degenerate short warmups), the
// whole warmup run serves as a cruder, fully-cold control.
func (e *estimator) addWindow(span, warm, half *Result, fullAcc int64, app map[int]*metricSamples) {
	meas := deltaVals(span, warm, fullAcc)
	if !meas.valid {
		return
	}
	e.exec.add(meas.exec)
	if meas.okOnNet {
		e.onNet.add(meas.onNet)
	}
	if meas.okOffNet {
		e.offNet.add(meas.offNet)
	}
	if meas.okMem {
		e.mem.add(meas.mem)
		e.queue.add(meas.queue)
	}
	e.share.add(meas.share)
	if meas.okOcc {
		e.occ.add(meas.occ)
	}

	var ctrl windowVals
	if half != nil {
		ctrl = deltaVals(warm, half, fullAcc)
	} else if warm.Total > 0 {
		ctrl = deltaVals(warm, &Result{}, fullAcc)
	}
	if ctrl.valid {
		if ctrl.okExec {
			e.exec.addContrast(ctrl.exec, meas.exec)
		}
		if ctrl.okOnNet && meas.okOnNet {
			e.onNet.addContrast(ctrl.onNet, meas.onNet)
		}
		if ctrl.okOffNet && meas.okOffNet {
			e.offNet.addContrast(ctrl.offNet, meas.offNet)
		}
		if ctrl.okMem && meas.okMem {
			e.mem.addContrast(ctrl.mem, meas.mem)
			e.queue.addContrast(ctrl.queue, meas.queue)
		}
		if ctrl.okShare {
			e.share.addContrast(ctrl.share, meas.share)
		}
		if ctrl.okOcc && meas.okOcc {
			e.occ.addContrast(ctrl.occ, meas.occ)
		}
	}

	f := float64(sub(span.Total, warm.Total)) / float64(fullAcc)
	for a, t := range span.AppExecTime {
		var wt int64
		if warm.AppExecTime != nil {
			wt = warm.AppExecTime[a]
		}
		if app[a] == nil {
			app[a] = &metricSamples{}
		}
		app[a].add(float64(sub(t, wt)) / f)
	}
}

func (e *estimator) estimates() SampledEstimates {
	return SampledEstimates{
		ExecTime:      e.exec.bound(),
		OnChipNetAvg:  e.onNet.bound(),
		OffChipNetAvg: e.offNet.bound(),
		MemAvg:        e.mem.bound(),
		QueueAvg:      e.queue.bound(),
		OffChipShare:  e.share.bound(),
		AvgQueueOcc:   e.occ.bound(),
	}
}

// boundRelFloor is the relative half-width floor: the window estimator has
// residual bias that neither the across-window variance nor the
// control-segment contrast can see — cut-point reordering, restart stagger,
// and above all queue occupancy that builds over thousands of cycles and is
// flat at window age — so every stated bound is at least this fraction of
// the estimate. The cross-workload battery calibrates the value: sustained
// DRAM-queue excess on periodic traces is the widest blind spot.
const boundRelFloor = 0.3

// boundBiasFactor scales the cold-start allowance. Each window's warmup-only
// run is a fully cold simulation of the same neighborhood, so the gap
// between its metric value and the measured (warmed) value is a direct
// observation of the warming gradient; the residual distance from the
// measured value to steady state is of the same order when the warmup is at
// least window-sized, and the battery validates the resulting bounds against
// full runs across every workload and scheme.
const boundBiasFactor = 2.0

// metricSamples is one metric's per-window sample set plus the control-vs-
// measured contrasts that size its bias allowance.
type metricSamples struct {
	xs        []float64
	contrasts []float64
	growths   []float64
	// growthFactor extrapolates a persistent within-window growth gradient
	// to the full run. Window runs restart from empty queues, so when the
	// machine operates past a queueing knee (the NoC and the controllers
	// congest over the whole run, never reaching the window's young state
	// again), every window under-observes the steady congestion by an
	// amount the measured-vs-control gradient reveals: the gradient is one
	// congestion-growth step, and growthFactor counts how many such steps
	// separate a young window from the run-average machine age.
	growthFactor float64
}

func (m *metricSamples) add(x float64) { m.xs = append(m.xs, x) }

// addContrast records one window's control-vs-measured gap: the magnitude
// widens the bias allowance directly, the signed gradient feeds the
// congestion-growth extrapolation.
func (m *metricSamples) addContrast(ctrl, measured float64) {
	m.contrasts = append(m.contrasts, math.Abs(ctrl-measured))
	m.growths = append(m.growths, measured-ctrl)
}

// bound returns mean ± max(t·stderr, bias allowance, growth allowance,
// relative floor).
func (m *metricSamples) bound() Bound {
	k := len(m.xs)
	if k == 0 {
		return Bound{}
	}
	var mean float64
	for _, x := range m.xs {
		mean += x
	}
	mean /= float64(k)
	var half float64
	if k > 1 {
		var ss float64
		for _, x := range m.xs {
			d := x - mean
			ss += d * d
		}
		sd := math.Sqrt(ss / float64(k-1))
		half = tcrit(k-1) * sd / math.Sqrt(float64(k))
	}
	if len(m.contrasts) > 0 {
		var c float64
		for _, x := range m.contrasts {
			c += x
		}
		if b := boundBiasFactor * c / float64(len(m.contrasts)); b > half {
			half = b
		}
	}
	if m.growthFactor > 0 && len(m.growths) > 0 {
		var g float64
		for _, x := range m.growths {
			g += x
		}
		if b := m.growthFactor * g / float64(len(m.growths)); b > half {
			half = b
		}
	}
	if fl := boundRelFloor * math.Abs(mean); fl > half {
		half = fl
	}
	return Bound{Mean: mean, Half: half}
}

// tcrit is the two-sided 95% Student-t critical value.
func tcrit(df int) float64 {
	table := []float64{0, 12.71, 4.30, 3.18, 2.78, 2.57, 2.45, 2.36, 2.31, 2.26, 2.23,
		2.20, 2.18, 2.16, 2.14, 2.13}
	if df < len(table) {
		return table[df]
	}
	if df < 30 {
		return 2.09
	}
	return 1.96
}

// aggregate sums span runs into one Result for the distributional metrics.
// Counters add; CDFs combine weighted by message counts; time-averaged
// occupancies combine weighted by exec time.
func aggregate(rs []*Result) *Result {
	agg := &Result{AppExecTime: map[int]int64{}}
	for _, r := range rs {
		agg.ExecTime += r.ExecTime
		agg.Total += r.Total
		agg.Completed += r.Completed
		agg.L1Hits += r.L1Hits
		agg.L2LocalHits += r.L2LocalHits
		agg.OnChipRemote += r.OnChipRemote
		agg.OffChip += r.OffChip
		agg.Events += r.Events
		agg.MemLatency += r.MemLatency
		agg.MemQueue += r.MemQueue
		agg.MemServed += r.MemServed
		agg.MemSubmitted += r.MemSubmitted
		agg.RowHits += r.RowHits
		agg.PageSpills += r.PageSpills
		for a, t := range r.AppExecTime {
			agg.AppExecTime[a] += t
		}
		for cls := 0; cls < 2; cls++ {
			agg.NetMsgs[cls] += r.NetMsgs[cls]
			agg.NetHops[cls] += r.NetHops[cls]
			agg.NetLatency[cls] += r.NetLatency[cls]
		}
		if r.AccessMap != nil {
			if agg.AccessMap == nil {
				agg.AccessMap = make([][]int64, len(r.AccessMap))
				for n := range r.AccessMap {
					agg.AccessMap[n] = make([]int64, len(r.AccessMap[n]))
				}
			}
			for n := range r.AccessMap {
				for mc := range r.AccessMap[n] {
					agg.AccessMap[n][mc] += r.AccessMap[n][mc]
				}
			}
		}
		if r.QueueOcc != nil {
			if agg.QueueOcc == nil {
				agg.QueueOcc = make([]float64, len(r.QueueOcc))
			}
			for mc := range r.QueueOcc {
				agg.QueueOcc[mc] += r.QueueOcc[mc] * float64(r.ExecTime)
			}
		}
		agg.AvgQueueOcc += r.AvgQueueOcc * float64(r.ExecTime)
	}
	// CDF: message-weighted average of the per-run CDFs. Quiet window runs
	// carry no histogram (null observer) and hence no CDF; the average is
	// over the instrumented runs only, weighted by their own message counts.
	for cls := 0; cls < 2; cls++ {
		var maxLen int
		var msgs int64
		for _, r := range rs {
			if len(r.HopCDF[cls]) > maxLen {
				maxLen = len(r.HopCDF[cls])
			}
			if len(r.HopCDF[cls]) > 0 {
				msgs += r.NetMsgs[cls]
			}
		}
		if maxLen == 0 || msgs == 0 {
			continue
		}
		cdf := make([]float64, maxLen)
		for _, r := range rs {
			if len(r.HopCDF[cls]) == 0 {
				continue
			}
			w := float64(r.NetMsgs[cls]) / float64(msgs)
			for h := 0; h < maxLen; h++ {
				v := 1.0 // a CDF stays at 1 past its last bin
				if h < len(r.HopCDF[cls]) {
					v = r.HopCDF[cls][h]
				}
				cdf[h] += w * v
			}
		}
		agg.HopCDF[cls] = cdf
	}
	if agg.ExecTime > 0 {
		for mc := range agg.QueueOcc {
			agg.QueueOcc[mc] /= float64(agg.ExecTime)
		}
		agg.AvgQueueOcc /= float64(agg.ExecTime)
	}
	return agg
}
