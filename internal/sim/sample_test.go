package sim

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"offchip/internal/check"
	"offchip/internal/layout"
	"offchip/internal/mem"
)

func TestParseSampleSpec(t *testing.T) {
	for _, s := range []string{"", "off"} {
		sp, err := ParseSampleSpec(s)
		if err != nil || sp != nil {
			t.Errorf("ParseSampleSpec(%q) = %v, %v; want nil, nil", s, sp, err)
		}
	}
	sp, err := ParseSampleSpec("on")
	if err != nil || sp == nil || *sp != DefaultSampleSpec() {
		t.Fatalf("ParseSampleSpec(on) = %v, %v; want defaults", sp, err)
	}
	manual, err := ParseSampleSpec("w4f0.2u0.5r2")
	if err != nil {
		t.Fatal(err)
	}
	want := SampleSpec{Windows: 4, Fraction: 0.2, WarmupFrac: 0.5, Replicates: 2}
	if *manual != want {
		t.Errorf("manual spec = %+v, want %+v", *manual, want)
	}
	// The canonical string round-trips: parse → String → parse is a fixpoint,
	// so job IDs can embed it verbatim.
	again, err := ParseSampleSpec(manual.String())
	if err != nil || *again != *manual {
		t.Errorf("round trip %q → %+v, %v", manual.String(), again, err)
	}
	if got := DefaultSampleSpec().String(); got != "w4f0.1u1r1" {
		t.Errorf("default spec renders %q", got)
	}

	for _, bad := range []string{
		"x", "w4", "w4f0.2", "w4f0.2u0.5", "wXf0.2u0.5r1", "w4fYu0.5r1",
		"w4f0.2uZr1", "w4f0.2u0.5rW", "w4f1.5u0.5r1", // fraction > 1
	} {
		if sp, err := ParseSampleSpec(bad); err == nil {
			t.Errorf("ParseSampleSpec(%q) accepted: %+v", bad, sp)
		}
	}
}

// TestStreamWindowBounds: for any stream length the window slice must stay in
// bounds, have the promised measured length, and report covered exactly when
// warmup + window span the stream.
func TestStreamWindowBounds(t *testing.T) {
	spec := DefaultSampleSpec()
	for _, n := range []int{1, 2, 5, 17, 100, 1000, 12345} {
		for rep := 0; rep < 2; rep++ {
			for win := 0; win < spec.Windows; win++ {
				start, warm, wlen, covered := spec.streamWindow(n, rep, win)
				if start < 0 || warm < 0 || wlen < 1 || start+warm+wlen > n {
					t.Fatalf("n=%d r%dw%d: slice [%d, +%d+%d) out of bounds", n, rep, win, start, warm, wlen)
				}
				if covered != (warm+wlen >= n) {
					t.Errorf("n=%d r%dw%d: covered=%v with warm=%d wlen=%d", n, rep, win, covered, warm, wlen)
				}
				if covered && (start != 0 || wlen != n) {
					t.Errorf("n=%d r%dw%d: covered window is [%d, +%d), want the whole stream", n, rep, win, start, wlen)
				}
			}
		}
	}
}

// TestSliceStreamPhases: phase markers are remapped into the slice and
// clamped at its edges, preserving monotonicity for the page allocator.
func TestSliceStreamPhases(t *testing.T) {
	st := &Stream{
		Core:   5,
		AppID:  1,
		Phases: []int{0, 3, 8, 10},
		Accesses: []Access{
			{VAddr: 0}, {VAddr: 64}, {VAddr: 128}, {VAddr: 192}, {VAddr: 256},
			{VAddr: 320}, {VAddr: 384}, {VAddr: 448}, {VAddr: 512}, {VAddr: 576},
		},
	}
	out := sliceStream(st, 2, 4) // accesses [2, 6)
	if out.Core != 5 || out.AppID != 1 {
		t.Errorf("header not copied: %+v", out)
	}
	if len(out.Accesses) != 4 || out.Accesses[0].VAddr != 128 {
		t.Errorf("accesses = %+v", out.Accesses)
	}
	// 0→0 (clamped up), 3→1, 8→4 (clamped down), 10→4.
	if want := []int{0, 1, 4, 4}; !reflect.DeepEqual(out.Phases, want) {
		t.Errorf("phases = %v, want %v", out.Phases, want)
	}
	// The slice aliases the source; appending to it must not be possible
	// without reallocating (full-capacity subslice).
	if cap(out.Accesses) != len(out.Accesses) {
		t.Errorf("access slice not capacity-clamped: len %d cap %d", len(out.Accesses), cap(out.Accesses))
	}
}

// sampleWorkload builds a deterministic multi-stream workload large enough
// that the default spec actually samples (does not cover it).
func sampleWorkload(cores, perCore int) *Workload {
	w := &Workload{Name: "sampled"}
	for c := 0; c < cores; c++ {
		st := Stream{Core: c, Phases: []int{0, perCore / 4, perCore / 2, 3 * perCore / 4}}
		for i := 0; i < perCore; i++ {
			// Strided walk with a per-core offset: a stationary stream with
			// plenty of misses, like the array sweeps the generator emits.
			st.Accesses = append(st.Accesses, Access{
				VAddr:     int64(c)*(1<<16) + int64(i)*64%(1<<14),
				DesiredMC: -1,
			})
		}
		w.Streams = append(w.Streams, st)
	}
	return w
}

// TestRunSampledExactTinyWorkload: when the windows would cover every stream,
// RunSampled degenerates to one full run with zero-width bounds.
func TestRunSampledExactTinyWorkload(t *testing.T) {
	cfg := testConfig(t)
	w := oneAccess(0, 0)
	full, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := RunSampled(cfg, w, DefaultSampleSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !sr.Exact {
		t.Fatal("one-access workload not recognized as exact")
	}
	if sr.Est.ExecTime.Half != 0 || sr.Est.ExecTime.Mean != float64(full.ExecTime) {
		t.Errorf("exact estimate %+v, want exactly %d", sr.Est.ExecTime, full.ExecTime)
	}
	if sr.Aggregate.ExecTime != full.ExecTime || len(sr.SpanResults) != 1 {
		t.Errorf("exact path did not return the full run verbatim")
	}
	if sr.MeasuredAccesses != sr.FullAccesses || sr.SimulatedAccesses != sr.FullAccesses {
		t.Errorf("exact accounting %d/%d measured/simulated, want %d", sr.MeasuredAccesses, sr.SimulatedAccesses, sr.FullAccesses)
	}
}

// TestRunSampledConservation: every span window is a complete drained
// simulation, so the conservation identities hold pairwise — the satellite's
// "sampled totals pass check.VerifyTotals on the measured windows".
func TestRunSampledConservation(t *testing.T) {
	cfg := testConfig(t)
	w := sampleWorkload(16, 2000)
	sr, err := RunSampled(cfg, w, DefaultSampleSpec())
	if err != nil {
		t.Fatal(err)
	}
	if sr.Exact {
		t.Fatal("workload too small: exact fallback means the test exercises nothing")
	}
	if len(sr.SpanResults) != 4 || len(sr.SpanWorkloads) != 4 {
		t.Fatalf("got %d span runs, want 4", len(sr.SpanResults))
	}
	for i, r := range sr.SpanResults {
		for _, v := range check.VerifyTotals(r.Totals(sr.SpanWorkloads[i], &cfg)) {
			t.Errorf("window %d: %s", i, v)
		}
	}
	if sr.MeasuredAccesses <= 0 || sr.MeasuredAccesses >= sr.FullAccesses {
		t.Errorf("measured %d of %d accesses", sr.MeasuredAccesses, sr.FullAccesses)
	}
	// Default spec: 10% measured + 10% warmup simulated twice + the
	// half-warmup control ≈ 35%.
	if frac := float64(sr.SimulatedAccesses) / float64(sr.FullAccesses); frac > 0.4 {
		t.Errorf("simulated %.0f%% of the workload — sampling is not buying wall clock", 100*frac)
	}
}

// TestRunSampledDeterminism: sampling is as deterministic as the simulator —
// two runs produce bit-identical estimates.
func TestRunSampledDeterminism(t *testing.T) {
	cfg := testConfig(t)
	w := sampleWorkload(8, 1500)
	a, err := RunSampled(cfg, w, DefaultSampleSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSampled(cfg, w, DefaultSampleSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Est, b.Est) {
		t.Errorf("estimates differ across identical runs:\n%+v\n%+v", a.Est, b.Est)
	}
	if a.MeasuredAccesses != b.MeasuredAccesses || a.Aggregate.ExecTime != b.Aggregate.ExecTime {
		t.Errorf("accounting differs across identical runs")
	}
}

// TestWarmMemoRestoreEqualsReplay: the snapshot-restore fast path of warm
// state (page tables via PageMemo, caches/directory via the per-WarmState
// memo) must be indistinguishable from re-walking preTouch and replaying
// CacheStreams — the estimator's span − warm subtraction relies on the
// three runs of a window starting from identical machine state.
func TestWarmMemoRestoreEqualsReplay(t *testing.T) {
	cfg := testConfig(t)
	// Page interleaving so the run preTouches and the PageMemo layer is
	// exercised alongside the cache/directory memo.
	cfg.Machine.Interleave = layout.PageInterleave
	w := sampleWorkload(8, 1500)
	spec := DefaultSampleSpec()

	// Replay path: fresh WarmState (and no PageMemo) per run.
	span1, _, _ := spec.windowWorkloads(w, 0, 1, 512, nil)
	fresh, err := Run(cfg, span1)
	if err != nil {
		t.Fatal(err)
	}

	// Memoized path: the first run replays and captures, the second restores.
	span2, _, _ := spec.windowWorkloads(w, 0, 1, 512, &PageMemo{})
	if _, err := Run(cfg, span2); err != nil {
		t.Fatal(err)
	}
	if span2.Warm.memo == nil || span2.Warm.Pages.spaces == nil {
		t.Fatal("first run did not capture the warm snapshots")
	}
	restored, err := Run(cfg, span2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh, restored) {
		t.Errorf("restored-warm run differs from replayed-warm run:\n%+v\n%+v", fresh, restored)
	}
}

// TestRunSampledBoundsCoverFullRun: on a stationary workload the full run's
// headline metrics land inside the stated confidence bounds.
func TestRunSampledBoundsCoverFullRun(t *testing.T) {
	cfg := testConfig(t)
	w := sampleWorkload(16, 2000)
	full, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := RunSampled(cfg, w, DefaultSampleSpec())
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		name string
		b    Bound
		x    float64
	}{
		{"ExecTime", sr.Est.ExecTime, float64(full.ExecTime)},
		{"OffChipShare", sr.Est.OffChipShare, full.OffChipShare()},
		{"MemAvg", sr.Est.MemAvg, full.AvgMemLatency()},
	}
	for _, c := range checks {
		if !c.b.Within(c.x) {
			t.Errorf("%s: full run %.4g outside %.4g ± %.4g", c.name, c.x, c.b.Mean, c.b.Half)
		}
	}
	if rel := sr.Est.ExecTime.RelHalf(); rel < boundRelFloor-1e-12 {
		t.Errorf("ExecTime bound %.3f narrower than the stated floor %.2f", rel, boundRelFloor)
	}
}

// TestMetricSamplesBound: the t-bound math on a known sample set, and the
// relative floor taking over when the variance is tiny.
func TestMetricSamplesBound(t *testing.T) {
	var m metricSamples
	for _, x := range []float64{10, 14, 6, 10} {
		m.add(x)
	}
	b := m.bound()
	if b.Mean != 10 {
		t.Errorf("mean = %v, want 10", b.Mean)
	}
	// sd = sqrt(32/3), stderr = sd/2, t(3) = 3.18 → half ≈ 5.19; the floor
	// 0.3·10 = 3 is smaller, so the t-bound wins.
	want := 3.18 * math.Sqrt(32.0/3.0) / 2
	if math.Abs(b.Half-want) > 1e-9 {
		t.Errorf("half = %v, want %v", b.Half, want)
	}
	var c metricSamples
	for i := 0; i < 8; i++ {
		c.add(100)
	}
	if b := c.bound(); b.Half != boundRelFloor*100 {
		t.Errorf("zero-variance half = %v, want the %v floor", b.Half, boundRelFloor*100)
	}
	if (metricSamples{}).xs != nil {
		t.Fatal("zero value not empty")
	}
}

// TestAggregateWeighting: aggregate sums counters and weights the CDFs by
// messages and occupancies by time.
func TestAggregateWeighting(t *testing.T) {
	a := &Result{ExecTime: 100, Total: 10, AvgQueueOcc: 2, QueueOcc: []float64{2, 0}}
	a.NetMsgs[0] = 10
	a.HopCDF[0] = []float64{0.5, 1}
	b := &Result{ExecTime: 300, Total: 30, AvgQueueOcc: 4, QueueOcc: []float64{4, 0}}
	b.NetMsgs[0] = 30
	b.HopCDF[0] = []float64{0.9, 1}
	agg := aggregate([]*Result{a, b})
	if agg.ExecTime != 400 || agg.Total != 40 || agg.NetMsgs[0] != 40 {
		t.Errorf("sums wrong: %+v", agg)
	}
	// Occupancy: (2·100 + 4·300)/400 = 3.5, time-weighted.
	if math.Abs(agg.AvgQueueOcc-3.5) > 1e-12 || math.Abs(agg.QueueOcc[0]-3.5) > 1e-12 {
		t.Errorf("occupancy = %v / %v, want 3.5", agg.AvgQueueOcc, agg.QueueOcc[0])
	}
	// CDF bin 0: 0.25·0.5 + 0.75·0.9 = 0.8, message-weighted.
	if math.Abs(agg.HopCDF[0][0]-0.8) > 1e-12 || math.Abs(agg.HopCDF[0][1]-1) > 1e-12 {
		t.Errorf("CDF = %v", agg.HopCDF[0])
	}
}

// TestSubClamps: counter differences clamp at zero (FR-FCFS may reorder
// across the warmup cut, making tiny negative deltas possible).
func TestSubClamps(t *testing.T) {
	if sub(5, 3) != 2 || sub(3, 5) != 0 || sub(4, 4) != 0 {
		t.Error("sub misbehaves")
	}
}

// TestRunSampledMigrateFailsFast pins the sampled-x-migration contract:
// window snapshots restore cache and page-table state but carry no Migrator
// state (open-window counters, cooldowns, in-flight remaps), so a sampled
// migrating run would silently measure a different policy than the full run
// it claims to estimate. RunSampled must refuse up front — before any span
// simulation — unless the spec degenerates to windows that cover the whole
// trace, where it falls through to one exact run and migration is
// well-defined again.
func TestRunSampledMigrateFailsFast(t *testing.T) {
	m := layout.Machine{
		MeshX: 4, MeshY: 4,
		NumMCs:     4,
		LineBytes:  64,
		PageBytes:  512,
		L2:         layout.PrivateL2,
		Interleave: layout.PageInterleave, // migration requires page interleave
	}
	cm, err := layout.MappingM1(m, layout.PlacementCorners(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(m, cm)
	cfg.L1Bytes = 1024
	cfg.L2Bytes = 4096
	spec := mem.DefaultMigrationSpec()
	cfg.Migrate = &spec

	w := sampleWorkload(4, 2000)
	if sp := DefaultSampleSpec(); sp.coversAll(w) {
		t.Fatal("workload too small: the default spec covers it, so nothing is refused")
	}
	sr, err := RunSampled(cfg, w, DefaultSampleSpec())
	if err == nil {
		t.Fatalf("RunSampled accepted a migrating run it cannot estimate: %+v", sr)
	}
	if sr != nil {
		t.Errorf("fail-fast returned a partial result alongside the error: %+v", sr)
	}
	if !strings.Contains(err.Error(), "cannot estimate a migrating run") {
		t.Errorf("error does not explain the refusal: %v", err)
	}
	if !strings.Contains(err.Error(), cfg.Migrate.String()) {
		t.Errorf("error does not name the offending spec %s: %v", cfg.Migrate, err)
	}

	// The degenerate covering spec is the documented escape hatch: one
	// window, full fraction, no warmup — RunSampled collapses to a single
	// exact run with the engine attached.
	covering := SampleSpec{Windows: 1, Fraction: 1, WarmupFrac: 0, Replicates: 1}
	sr, err = RunSampled(cfg, w, covering)
	if err != nil {
		t.Fatal(err)
	}
	if !sr.Exact {
		t.Error("covering spec did not take the exact path")
	}
	full, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Aggregate.ExecTime != full.ExecTime {
		t.Errorf("exact migrating run diverged: sampled %d, direct %d", sr.Aggregate.ExecTime, full.ExecTime)
	}
}
