// Package sim is the manycore simulator: cores replay per-thread memory
// traces through L1s, private or shared-SNUCA L2s, the mesh NoC, and
// FR-FCFS memory controllers, following the access flows of Figure 2. It
// collects every statistic the paper's evaluation reports: execution time,
// the network latency of on-chip and off-chip accesses, off-chip memory
// (queue) latency, link-traversal histograms (Figure 15), per-node per-MC
// access maps (Figure 13), and bank-queue occupancy (Figure 18). It also
// implements the "optimal scheme" of Section 2 — every off-chip request
// served by the nearest controller with no bank contention — used to bound
// the achievable savings (Figure 4).
package sim

import (
	"fmt"

	"offchip/internal/cache"
	"offchip/internal/check"
	"offchip/internal/dram"
	"offchip/internal/engine"
	"offchip/internal/layout"
	"offchip/internal/mem"
	"offchip/internal/mesh"
	"offchip/internal/noc"
	"offchip/internal/obs"
	"offchip/internal/prof"
)

// PolicyKind selects the page allocation policy under page interleaving.
type PolicyKind int

const (
	// PolicyInterleaved is the default: pages round-robin across MCs.
	PolicyInterleaved PolicyKind = iota
	// PolicyOSAssisted honors the layout pass's per-page desired MC
	// (Section 5.3).
	PolicyOSAssisted
	// PolicyFirstTouch allocates from the MC of the first-touching node's
	// cluster (Section 6.3).
	PolicyFirstTouch
	// PolicyFirstTouchNearest allocates from the controller *nearest* the
	// first-touching core's mesh node — the FCFS placement of the dynamic
	// rival family (the baseline the hot-page migration engine refines).
	PolicyFirstTouchNearest
)

// Config assembles the simulated machine.
type Config struct {
	Machine layout.Machine
	Mapping *layout.ClusterMapping // supplies the MC placement and clusters

	NoC  noc.Config
	DRAM dram.Config

	L1Bytes int64
	L1Ways  int
	L2Bytes int64 // per node
	L2Ways  int

	L1Latency  int64
	L2Latency  int64
	DirLatency int64 // directory lookup at the MC (private L2)

	// MLPWindow is the number of outstanding misses a core sustains.
	MLPWindow int
	// ComputeGap is the minimum cycles between successive issues of one
	// stream (non-memory work between accesses; the paper's two-issue
	// SPARC cores retire several instructions per data reference).
	ComputeGap int64
	// StartStagger delays core c's first issue by c·StartStagger cycles,
	// modeling the thread start-up skew of a real runtime; without it the
	// synthetic lockstep of identical kernels produces artificial burst
	// congestion no real system exhibits.
	StartStagger int64
	// GapJitter adds a deterministic per-access pseudo-random 0..GapJitter-1
	// cycles to ComputeGap (hashed from core and access index), modeling
	// per-iteration compute variation; identical synthetic kernels would
	// otherwise stay in lockstep and alias their miss bursts.
	GapJitter int64
	// Seed decorrelates the jitter stream between runs: it is mixed into
	// the per-access jitter hash, so two runs of the same workload with
	// different seeds sample different (but individually deterministic)
	// compute-variation sequences. Zero keeps the historical stream — every
	// recorded figure uses seed 0. The parallel experiment runner derives
	// each job's seed from a stable hash of its job ID, which is what makes
	// single-job replay bit-exact.
	Seed uint64

	// Policy selects the page allocation policy (page interleaving only).
	Policy PolicyKind

	// Migrate attaches the online hot-page migration engine (page
	// interleaving only; nil disables it and the migration code path is
	// provably inert — bit-identical results and registries). The engine
	// watches per-page access distributions over Migrate.WindowCycles
	// windows and re-homes pages whose dominant accessor crosses
	// Migrate.HotThreshold, paying the modeled cost: page-copy flits
	// through the NoC plus TLB-shootdown stalls on the sharers.
	Migrate *mem.MigrationSpec

	// OptimalOffchip turns on the Section 2 optimal scheme.
	OptimalOffchip bool

	// DebugMC0, when set, observes every local address submitted to MC0.
	DebugMC0 func(addr int64)

	// Obs supplies the observability layer (metrics registry + tracer) every
	// substrate publishes through. Nil gets the run a private registry, so
	// the Figure 13/15/18 statistics are always registry-backed.
	Obs *obs.Observer

	// OnProgress, when set, is called from the simulation loop every
	// ProgressEvery processed events (default 1<<16) with live run status.
	OnProgress    func(Progress)
	ProgressEvery int64

	// Check attaches the cross-layer invariant checker: Run binds it to this
	// machine, hooks it into the engine, the NoC, and the controllers, feeds
	// it every stage of every access, and finishes it with the run's
	// conservation totals. Nil (the default) disables every probe at the
	// cost of one nil check per site, like the tracer.
	Check *check.Checker

	// Prof attaches the latency-attribution profiler: Run binds it to this
	// machine and feeds it the same per-access stage stream the checker
	// sees, plus per-transit hop counts and the controllers' queue/service
	// splits, so every access's end-to-end latency decomposes into
	// exclusive per-stage components. Nil (the default) disables every
	// hook at the cost of one nil check per site.
	Prof *prof.Profiler
}

// Progress is a live status sample of a running simulation.
type Progress struct {
	Cycles      int64 // simulated cycles so far
	Events      int64 // engine events processed
	Outstanding int   // memory accesses currently in flight
}

// DefaultConfig returns the paper's Table 1 machine around the given
// layout machine and mapping.
func DefaultConfig(m layout.Machine, cm *layout.ClusterMapping) Config {
	return Config{
		Machine:      m,
		Mapping:      cm,
		NoC:          noc.DefaultConfig(m.MeshX, m.MeshY),
		DRAM:         dram.DefaultConfig(),
		L1Bytes:      16 << 10,
		L1Ways:       2,
		L2Bytes:      256 << 10,
		L2Ways:       16,
		L1Latency:    2,
		L2Latency:    10,
		DirLatency:   4,
		MLPWindow:    2,
		ComputeGap:   4,
		GapJitter:    8,
		StartStagger: 17,
	}
}

// Validate checks the configuration for consistency.
func (c Config) Validate() error {
	if err := c.Machine.Validate(); err != nil {
		return err
	}
	if c.Mapping == nil {
		return fmt.Errorf("sim: nil cluster mapping")
	}
	if err := c.Mapping.Validate(); err != nil {
		return err
	}
	if c.Mapping.NumMCs() != c.Machine.NumMCs {
		return fmt.Errorf("sim: mapping has %d MCs, machine %d", c.Mapping.NumMCs(), c.Machine.NumMCs)
	}
	if c.Machine.Cores() > cache.MaxDirectoryCores {
		return fmt.Errorf("sim: %d cores exceed directory capacity %d", c.Machine.Cores(), cache.MaxDirectoryCores)
	}
	if c.MLPWindow <= 0 {
		return fmt.Errorf("sim: MLP window %d", c.MLPWindow)
	}
	if c.Migrate != nil {
		if err := c.Migrate.Validate(); err != nil {
			return err
		}
		if c.Machine.Interleave != layout.PageInterleave {
			return fmt.Errorf("sim: page migration requires page interleaving (the MC-select bits of a line-interleaved address sit inside the page offset)")
		}
		if c.OptimalOffchip {
			return fmt.Errorf("sim: page migration is meaningless under the optimal scheme (every request already goes to the nearest controller)")
		}
	}
	if err := c.DRAM.Validate(); err != nil {
		return err
	}
	return nil
}

// Access is one memory reference of a trace. DesiredMC carries the layout
// pass's controller preference for OS-assisted page allocation (-1: none).
type Access struct {
	VAddr     int64
	DesiredMC int8
}

// Stream is the access sequence of one software thread, bound to a core.
// Phases optionally records the start index of each program phase (loop
// nest); under page interleaving, page allocation honors phase order across
// streams — the implicit barrier between OpenMP parallel regions — so a
// master-thread initialization phase really does perform the first touches.
type Stream struct {
	Core     int
	AppID    int
	Accesses []Access
	Phases   []int
}

// Workload is a set of streams, possibly from several applications
// (multiprogrammed mixes put one stream per application on each core).
type Workload struct {
	Name    string
	Streams []Stream
	// Sequential makes each core execute its streams one after another, in
	// declaration order, instead of round-robin time-sharing. Phase-changing
	// multiprogrammed mixes (trace.ComposeMix) set it: their per-phase
	// streams are ordered phase-major, so sequential execution realizes the
	// phases as consecutive epochs — which is what moves the hot set
	// mid-run. Single-stream cores behave identically either way.
	Sequential bool
	// Warm optionally primes the machine before timing begins — used by
	// sampled simulation so a window cut from the middle of a trace starts
	// from (approximately) the machine state the full run would have there.
	Warm *WarmState
}

// WarmState is the pre-run warming input of a window run. PageUniverse is
// preTouched in place of the run's own workload, so the window reproduces
// the full run's page placement exactly (first-touch allocation is
// timing-independent: the full run performs it all up front, in phase
// order). CacheStreams are replayed functionally — address translation,
// cache fills, directory updates; no events, no time, no statistics — to
// approximate the cache and directory contents at the window's start.
type WarmState struct {
	PageUniverse *Workload
	CacheStreams []Stream

	// Pages optionally memoizes the preTouch result. Runs whose WarmState
	// carries the same *PageMemo share one first-touch walk: the first run
	// performs it and captures a translation snapshot per application; later
	// runs restore the snapshot instead of re-walking PageUniverse. Valid
	// whenever the runs share (PageUniverse, machine config) — the snapshot
	// is exact state, so restored runs are bit-identical to replayed ones.
	Pages *PageMemo

	// memo is the per-WarmState cache/directory snapshot: the three runs of
	// one sampling window (span, warm-only, half-warm control) share a
	// WarmState and therefore an identical CacheStreams replay, so the first
	// run replays and captures, and the rest restore.
	memo *warmSnapshot
}

// PageMemo shares one preTouch walk across runs; see WarmState.Pages.
// The zero value is ready to use. Not safe for concurrent runs.
type PageMemo struct {
	spaces map[int]*mem.TranslationSnapshot
}

// warmSnapshot is the machine state warmCaches produces, captured once per
// WarmState and restored into subsequent runs.
type warmSnapshot struct {
	l1s, l2s []*cache.Snapshot
	dir      map[int64]uint64
}

// TotalAccesses returns the workload's access count.
func (w *Workload) TotalAccesses() int64 {
	var n int64
	for _, s := range w.Streams {
		n += int64(len(s.Accesses))
	}
	return n
}

// Result carries every statistic of a run.
type Result struct {
	ExecTime    int64
	AppExecTime map[int]int64

	// Access outcome counts.
	Total        int64
	Completed    int64 // accesses fully retired — conservation: == Total at drain
	L1Hits       int64
	L2LocalHits  int64 // private: local L2 hit; shared: home-bank hit
	OnChipRemote int64 // private: L2-to-L2 transfer
	OffChip      int64

	// Events is the number of engine events the run processed (the
	// denominator of the ns-per-simulated-event benchmark figure).
	Events int64

	// Network statistics by class (from the NoC).
	NetMsgs    [2]int64
	NetHops    [2]int64
	NetLatency [2]int64
	HopCDF     [2][]float64

	// Off-chip memory statistics (from the controllers).
	MemLatency   int64 // Σ queue+service
	MemQueue     int64 // Σ queue wait
	MemServed    int64
	MemSubmitted int64 // requests accepted by controllers — conservation: == MemServed at drain (0 under OptimalOffchip, which bypasses the controllers)
	RowHits      int64
	QueueOcc     []float64 // per-MC time-averaged queue length
	AvgQueueOcc  float64

	// AccessMap[node][mc] counts off-chip requests sent from each node to
	// each controller (Figure 13).
	AccessMap [][]int64

	PageSpills int64

	// Online page migration (zero unless Config.Migrate is set and fires).
	Migrations     int64 // committed page remaps
	MigCopyMsgs    int64 // page-copy messages injected through the NoC
	MigStallCycles int64 // TLB-shootdown cycles charged to sharer cores
}

// OffChipShare returns the fraction of accesses served off-chip (Figure 3).
func (r *Result) OffChipShare() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.OffChip) / float64(r.Total)
}

// AvgNetLatency returns the mean network latency for the class.
func (r *Result) AvgNetLatency(class noc.Class) float64 {
	if r.NetMsgs[class] == 0 {
		return 0
	}
	return float64(r.NetLatency[class]) / float64(r.NetMsgs[class])
}

// AvgMemLatency returns the mean off-chip memory latency (queue+service).
func (r *Result) AvgMemLatency() float64 {
	if r.MemServed == 0 {
		return 0
	}
	return float64(r.MemLatency) / float64(r.MemServed)
}

type coreState struct {
	streams     []*streamState
	nextStream  int // round-robin among the core's streams
	outstanding int
	nextFree    int64 // earliest next issue (compute gap pacing)
	issued      int64 // accesses issued so far (jitter hash input)
}

type streamState struct {
	stream *Stream
	idx    int
	done   bool
}

type machine struct {
	cfg    Config
	memCfg mem.Config
	sim    *engine.Sim
	obs    *obs.Observer
	net    *noc.Network
	mcs    []*dram.Controller
	l1s    []*cache.Cache
	l2s    []*cache.Cache
	dir    *cache.Directory
	spaces map[int]*mem.AddressSpace
	cores  []*coreState
	res    *Result
	ck     *check.Checker // nil when checking is off
	pf     *prof.Profiler // nil when profiling is off
	mig    *migState      // nil when migration is off
	seq    bool           // Workload.Sequential: no per-core round-robin

	// Registry-backed statistics: the Figure 13 access map plus the access
	// outcome counters; coreComp holds precomputed trace component names.
	accessMap [][]*obs.Counter
	totalC    *obs.Counter
	l2LocalC  *obs.Counter
	remoteC   *obs.Counter
	offChipC  *obs.Counter
	coreComp  []string
	seedMix   uint64 // Seed pre-mixed for the jitter hash (0 when Seed is 0)

	freeEvents *accessEvent // recycled access events

	running int // streams not yet finished
}

// accessEvent stages: which step of the Figure 2 flow the event represents
// when it fires. One pooled accessEvent walks an access through its whole
// lifetime, rescheduling itself stage by stage, so the per-access hot path
// performs zero heap allocations.
const (
	stStart          = iota // core start-stagger kick-off
	stProcess               // issue: run the access through L1 and the Figure 2 flow
	stComplete              // retire at the current time
	stPrivOptFinish         // private optimal scheme: memory done, send data back
	stPrivSubmit            // private: request arrives at the MC directory, submit to DRAM
	stSharedHomeHit         // shared: home-bank hit, send data back to the L1
	stSharedBank            // shared: miss reaches the home bank, forward to the MC
	stSharedOptServe        // shared optimal scheme: memory done, fill the home bank
	stSharedSubmit          // shared: request arrives at the MC, submit to DRAM
	stSharedFill            // shared: fill arrives at the home bank, send to the L1
)

// accessEvent is one in-flight memory access. It implements both
// engine.Handler (its own continuation at each stage) and dram.Completion
// (the controller calls MemDone directly on it), and is recycled through the
// machine's free-list at retirement.
type accessEvent struct {
	m    *machine
	next *accessEvent // machine free-list

	stage int8
	last  bool
	core  int
	app   int
	mcID  int
	acc   Access
	t     int64 // stage-specific captured time (e.g. the optimal scheme's finish)
	local int64 // controller-local address
	ckID  int64 // invariant-checker access ID (0 when checking is off)
	pfID  int64 // profiler access ID (0 when profiling is off)

	coreNode mesh.Node
	mcNode   mesh.Node
	homeNode mesh.Node
}

// allocEvent hands out a pooled access event bound to the machine.
func (m *machine) allocEvent() *accessEvent {
	e := m.freeEvents
	if e == nil {
		return &accessEvent{m: m}
	}
	m.freeEvents = e.next
	e.next = nil
	return e
}

// freeEvent recycles a retired access event.
func (m *machine) freeEvent(e *accessEvent) {
	e.next = m.freeEvents
	m.freeEvents = e
}

// Handle advances the access one stage. Times mirror the closure-based
// implementation exactly: stages that previously captured a time use e.t,
// stages that previously read sim.Now() use now — the event schedule is
// 1:1 with the old code, so dispatch order (and every statistic) is
// bit-for-bit identical.
func (e *accessEvent) Handle(now int64) {
	m := e.m
	switch e.stage {
	case stStart:
		core := e.core
		m.freeEvent(e)
		m.tryIssue(core)
	case stProcess:
		m.process(e)
	case stComplete:
		core, app, last := e.core, e.app, e.last
		if ck := m.ck; ck != nil {
			ck.EndAccess(e.ckID, now)
		}
		if pf := m.pf; pf != nil {
			pf.End(e.pfID, now)
		}
		m.freeEvent(e)
		m.complete(core, app, last)
	case stPrivOptFinish:
		tBack, hops := m.net.Transit(e.t, e.mcNode, e.coreNode, noc.OffChip)
		if ck := m.ck; ck != nil {
			ck.Stage(e.ckID, check.StageNoCResp, tBack)
		}
		if pf := m.pf; pf != nil {
			pf.TransitAt(e.pfID, prof.TransitResp, e.t, tBack, hops)
		}
		e.stage = stComplete
		m.sim.Schedule(tBack, e)
	case stPrivSubmit:
		if ck := m.ck; ck != nil {
			ck.Stage(e.ckID, check.StageDRAMSub, now)
		}
		m.mcs[e.mcID].SubmitTo(e.local, e)
	case stSharedHomeHit:
		// Path 5: home bank → L1.
		tData, hops := m.net.Transit(now, e.homeNode, e.coreNode, noc.OnChip)
		if ck := m.ck; ck != nil {
			ck.Stage(e.ckID, check.StageNoCResp, tData)
		}
		if pf := m.pf; pf != nil {
			pf.TransitAt(e.pfID, prof.TransitResp, now, tData, hops)
		}
		e.stage = stComplete
		m.sim.Schedule(tData, e)
	case stSharedBank:
		// Paths 2–4, issued by the home bank.
		tReq, hops := m.net.Transit(now, e.homeNode, e.mcNode, noc.OffChip)
		if ck := m.ck; ck != nil {
			ck.Stage(e.ckID, check.StageNoCReq, tReq)
		}
		if pf := m.pf; pf != nil {
			pf.TransitAt(e.pfID, prof.TransitReq, now, tReq, hops)
		}
		if m.cfg.OptimalOffchip {
			finish := tReq + m.cfg.DRAM.TRowHit
			m.res.MemLatency += m.cfg.DRAM.TRowHit
			m.res.MemServed++
			if ck := m.ck; ck != nil {
				ck.Stage(e.ckID, check.StageDRAMDone, finish)
			}
			if pf := m.pf; pf != nil {
				pf.DRAMOptimal(e.pfID, finish)
			}
			e.stage, e.t = stSharedOptServe, finish
			m.sim.Schedule(finish, e)
			return
		}
		e.stage = stSharedSubmit
		m.sim.Schedule(tReq, e)
	case stSharedSubmit:
		if ck := m.ck; ck != nil {
			ck.Stage(e.ckID, check.StageDRAMSub, now)
		}
		m.mcs[e.mcID].SubmitTo(e.local, e)
	case stSharedOptServe:
		tFill, hops := m.net.Transit(e.t, e.mcNode, e.homeNode, noc.OffChip)
		if ck := m.ck; ck != nil {
			ck.Stage(e.ckID, check.StageNoCResp, tFill)
		}
		if pf := m.pf; pf != nil {
			pf.TransitAt(e.pfID, prof.TransitResp, e.t, tFill, hops)
		}
		e.stage = stSharedFill
		m.sim.Schedule(tFill, e)
	case stSharedFill:
		// Path 5: home bank → L1.
		tData, hops := m.net.Transit(now, e.homeNode, e.coreNode, noc.OnChip)
		if ck := m.ck; ck != nil {
			ck.Stage(e.ckID, check.StageNoCResp, tData)
		}
		if pf := m.pf; pf != nil {
			pf.TransitAt(e.pfID, prof.TransitResp, now, tData, hops)
		}
		e.stage = stComplete
		m.sim.Schedule(tData, e)
	default:
		panic("sim: accessEvent in unknown stage")
	}
}

// MemDone receives the DRAM completion (dram.Completion): route the data
// back toward the requester (private) or the home bank (shared). The stage
// still holds the submit stage that handed the event to the controller.
func (e *accessEvent) MemDone(finish int64) {
	m := e.m
	if ck := m.ck; ck != nil {
		ck.Stage(e.ckID, check.StageDRAMDone, finish)
	}
	if pf := m.pf; pf != nil {
		pf.DRAMDone(e.pfID, e.mcID, finish)
	}
	switch e.stage {
	case stPrivSubmit:
		tBack, hops := m.net.Transit(finish, e.mcNode, e.coreNode, noc.OffChip)
		if ck := m.ck; ck != nil {
			ck.Stage(e.ckID, check.StageNoCResp, tBack)
		}
		if pf := m.pf; pf != nil {
			pf.TransitAt(e.pfID, prof.TransitResp, finish, tBack, hops)
		}
		e.stage = stComplete
		m.sim.Schedule(tBack, e)
	case stSharedSubmit:
		tFill, hops := m.net.Transit(finish, e.mcNode, e.homeNode, noc.OffChip)
		if ck := m.ck; ck != nil {
			ck.Stage(e.ckID, check.StageNoCResp, tFill)
		}
		if pf := m.pf; pf != nil {
			pf.TransitAt(e.pfID, prof.TransitResp, finish, tFill, hops)
		}
		e.stage = stSharedFill
		m.sim.Schedule(tFill, e)
	default:
		panic("sim: MemDone in unknown stage")
	}
}

// totalOutstanding sums in-flight accesses across cores (live reporting).
func (m *machine) totalOutstanding() int {
	var n int
	for _, cs := range m.cores {
		n += cs.outstanding
	}
	return n
}

// Run simulates the workload on the configured machine.
func Run(cfg Config, w *Workload) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cores := cfg.Machine.Cores()
	for _, s := range w.Streams {
		if s.Core < 0 || s.Core >= cores {
			return nil, fmt.Errorf("sim: stream bound to core %d of %d", s.Core, cores)
		}
	}

	o := obs.OrNew(cfg.Obs)
	memCfg := mem.Config{
		PageBytes:  cfg.Machine.PageBytes,
		LineBytes:  cfg.Machine.LineUnit(),
		NumMCs:     cfg.Machine.NumMCs,
		Interleave: cfg.Machine.Interleave,
	}
	nocCfg := cfg.NoC
	nocCfg.Obs = o
	if cfg.Check != nil {
		p := check.Params{
			MeshX: cfg.Machine.MeshX, MeshY: cfg.Machine.MeshY,
			NoC: nocCfg, DRAM: cfg.DRAM, Mem: memCfg,
			Optimal: cfg.OptimalOffchip,
		}
		if cfg.Obs == nil {
			// Only a private registry is guaranteed to describe this run
			// alone, which the end-of-run registry cross-check requires.
			p.Obs = o
		}
		cfg.Check.Bind(p)
		nocCfg.Probe = cfg.Check
	}
	if cfg.Prof != nil {
		cfg.Prof.Bind(prof.Params{
			Cores: cores, MCs: cfg.Machine.NumMCs, NoC: nocCfg, Obs: o,
		})
	}
	m := &machine{
		cfg:    cfg,
		memCfg: memCfg,
		sim:    &engine.Sim{},
		obs:    o,
		net:    noc.New(nocCfg),
		dir:    cache.NewDirectory(),
		spaces: map[int]*mem.AddressSpace{},
		ck:     cfg.Check,
		pf:     cfg.Prof,
		res: &Result{
			AppExecTime: map[int]int64{},
			AccessMap:   make([][]int64, cores),
		},
	}
	if cfg.Check != nil {
		m.sim.OnDispatch = cfg.Check.EngineTick
	}
	if cfg.Seed != 0 {
		// SplitMix64 finalizer: spread the seed bits before XOR-ing into
		// the per-access jitter hash.
		z := cfg.Seed + 0x9e3779b97f4a7c15
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		m.seedMix = z ^ (z >> 31)
	}
	m.totalC = o.Reg.Counter("sim", "accesses")
	m.l2LocalC = o.Reg.Counter("sim", "l2_local_hits")
	m.remoteC = o.Reg.Counter("sim", "onchip_remote")
	m.offChipC = o.Reg.Counter("sim", "offchip")
	m.accessMap = make([][]*obs.Counter, cores)
	for i := range m.res.AccessMap {
		m.res.AccessMap[i] = make([]int64, cfg.Machine.NumMCs)
		m.accessMap[i] = make([]*obs.Counter, cfg.Machine.NumMCs)
		for mc := range m.accessMap[i] {
			m.accessMap[i][mc] = o.Reg.Counter("sim", "offchip_requests",
				fmt.Sprintf("node=%d", i), fmt.Sprintf("mc=%d", mc))
		}
	}
	for i := 0; i < cfg.Machine.NumMCs; i++ {
		mc := dram.New(i, cfg.DRAM, m.sim, o)
		if pr := dramProbeFor(cfg.Check, cfg.Prof); pr != nil {
			mc.Probe = pr
		}
		m.mcs = append(m.mcs, mc)
	}
	if cfg.DebugMC0 != nil {
		m.mcs[0].OnSubmit = cfg.DebugMC0
	}
	if cfg.Migrate != nil {
		m.mig = newMigState(m, *cfg.Migrate)
	}
	m.seq = w.Sequential
	for i := 0; i < cores; i++ {
		l1 := cache.New(cfg.L1Bytes, cfg.Machine.LineBytes, cfg.L1Ways)
		l2 := cache.New(cfg.L2Bytes, cfg.Machine.LineBytes, cfg.L2Ways)
		l1.Instrument(o, fmt.Sprintf("l1.%d", i), m.sim)
		l2.Instrument(o, fmt.Sprintf("l2.%d", i), m.sim)
		m.l1s = append(m.l1s, l1)
		m.l2s = append(m.l2s, l2)
		m.cores = append(m.cores, &coreState{})
		m.coreComp = append(m.coreComp, fmt.Sprintf("core%d", i))
	}
	if cfg.OnProgress != nil {
		every := cfg.ProgressEvery
		if every <= 0 {
			every = 1 << 16
		}
		m.sim.ProgressEvery = every
		m.sim.OnProgress = func(now, processed int64) {
			cfg.OnProgress(Progress{Cycles: now, Events: processed, Outstanding: m.totalOutstanding()})
		}
	}

	// Address spaces come from the page universe when one is attached: its
	// stream order fixes each application's base address, and it is a
	// superset of the run's own applications.
	spaceStreams := w.Streams
	if w.Warm != nil && w.Warm.PageUniverse != nil {
		spaceStreams = w.Warm.PageUniverse.Streams
	}
	appBase := int64(0)
	for _, s := range spaceStreams {
		if _, ok := m.spaces[s.AppID]; !ok {
			m.spaces[s.AppID] = mem.NewAddressSpace(memCfg, appBase, m.policy())
			appBase += 1 << 34
		}
	}

	for i := range w.Streams {
		s := &w.Streams[i]
		if len(s.Accesses) == 0 {
			continue
		}
		ss := &streamState{stream: s}
		m.cores[s.Core].streams = append(m.cores[s.Core].streams, ss)
		m.running++
	}

	if cfg.Machine.Interleave == layout.PageInterleave {
		pu := w
		if w.Warm != nil && w.Warm.PageUniverse != nil {
			pu = w.Warm.PageUniverse
		}
		pm := (*PageMemo)(nil)
		if w.Warm != nil {
			pm = w.Warm.Pages
		}
		if pm != nil && pm.spaces != nil {
			for app, space := range m.spaces {
				snap := pm.spaces[app]
				if snap == nil {
					panic(fmt.Sprintf("sim: PageMemo has no snapshot for app %d — shared across runs with different page universes", app))
				}
				space.Restore(snap)
			}
		} else {
			m.preTouch(pu)
			if pm != nil {
				pm.spaces = make(map[int]*mem.TranslationSnapshot, len(m.spaces))
				for app, space := range m.spaces {
					pm.spaces[app] = space.Snapshot()
				}
			}
		}
	}
	if w.Warm != nil && len(w.Warm.CacheStreams) > 0 {
		if s := w.Warm.memo; s != nil {
			for i := range m.l1s {
				m.l1s[i].Restore(s.l1s[i])
				m.l2s[i].Restore(s.l2s[i])
			}
			m.dir.Restore(s.dir)
		} else {
			m.warmCaches(w.Warm.CacheStreams)
			s := &warmSnapshot{dir: m.dir.Snapshot()}
			for i := range m.l1s {
				s.l1s = append(s.l1s, m.l1s[i].Snapshot())
				s.l2s = append(s.l2s, m.l2s[i].Snapshot())
			}
			w.Warm.memo = s
		}
	}
	for core := range m.cores {
		e := m.allocEvent()
		e.stage, e.core = stStart, core
		m.sim.Schedule(int64(core)*cfg.StartStagger, e)
	}
	m.sim.Run()

	m.finishStats(w)
	if cfg.Check != nil {
		cfg.Check.FinishRun(m.res.Totals(w, &cfg))
	}
	if cfg.Prof != nil {
		cfg.Prof.FinishRun()
	}
	return m.res, nil
}

// dramProbeFor selects the controller probe for the attached observers:
// the checker, the profiler, or a fan-out to both. Returning a concrete
// nil through the interface would read as non-nil at the call site, so
// absent observers yield an explicit nil.
func dramProbeFor(ck *check.Checker, pf *prof.Profiler) dram.Probe {
	switch {
	case ck != nil && pf != nil:
		return dramProbes{a: ck, b: pf}
	case ck != nil:
		return ck
	case pf != nil:
		return pf
	}
	return nil
}

// dramProbes duplicates the controller probe stream to two observers.
type dramProbes struct{ a, b dram.Probe }

func (d dramProbes) Enqueue(mc, bank int, at int64) {
	d.a.Enqueue(mc, bank, at)
	d.b.Enqueue(mc, bank, at)
}

func (d dramProbes) Serve(mc, bank int, arrive, start, finish int64, bypassed int) {
	d.a.Serve(mc, bank, arrive, start, finish, bypassed)
	d.b.Serve(mc, bank, arrive, start, finish, bypassed)
}

// Totals summarizes a drained run for check.VerifyTotals — the generalized
// conservation identities shared by the conservation tests, the validation
// battery, and the CLI's -check mode.
func (r *Result) Totals(w *Workload, cfg *Config) check.RunTotals {
	return check.RunTotals{
		TraceAccesses: w.TotalAccesses(),
		Injected:      r.Total,
		Completed:     r.Completed,
		L1Hits:        r.L1Hits,
		L2LocalHits:   r.L2LocalHits,
		OnChipRemote:  r.OnChipRemote,
		OffChip:       r.OffChip,
		NetMsgs:       r.NetMsgs,
		HopCDF:        r.HopCDF,
		MaxHops:       cfg.Machine.MeshX + cfg.Machine.MeshY - 2,
		MemSubmitted:  r.MemSubmitted,
		MemServed:     r.MemServed,
		Events:        r.Events,
		Optimal:       cfg.OptimalOffchip,
	}
}

// preTouch walks the workload phase by phase (streams in declaration order
// within a phase) and performs the virtual-to-physical allocations in that
// order: the timing simulation has no inter-core barriers, but page
// allocation must respect the program's phase structure (a serial
// initialization phase owns the first touch of every page it visits).
func (m *machine) preTouch(w *Workload) {
	maxPhases := 1
	for i := range w.Streams {
		if n := len(w.Streams[i].Phases); n > maxPhases {
			maxPhases = n
		}
	}
	for ph := 0; ph < maxPhases; ph++ {
		for i := range w.Streams {
			st := &w.Streams[i]
			lo, hi := phaseRange(st, ph)
			for _, acc := range st.Accesses[lo:hi] {
				m.spaces[st.AppID].Translate(acc.VAddr, st.Core, int(acc.DesiredMC))
			}
		}
	}
}

// warmCaches replays the warm slices through the caches and the directory
// with the exact state mutations of the timed access path — translation,
// L1 fill, L2 fill, directory add/remove — but no events and no simulated
// time. Streams interleave round-robin, one access per stream per sweep,
// approximating the issue order of the timed run. The hit/miss counters the
// replay perturbs are reset afterwards so results count timed accesses only.
func (m *machine) warmCaches(streams []Stream) {
	idx := make([]int, len(streams))
	for alive := true; alive; {
		alive = false
		for i := range streams {
			st := &streams[i]
			if idx[i] >= len(st.Accesses) {
				continue
			}
			alive = true
			acc := st.Accesses[idx[i]]
			idx[i]++
			paddr := m.spaces[st.AppID].Translate(acc.VAddr, st.Core, int(acc.DesiredMC))
			if hit, _ := m.l1s[st.Core].Access(paddr); hit {
				continue
			}
			if m.cfg.Machine.L2 == layout.SharedL2 {
				home := mem.HomeBank(paddr, m.cfg.Machine.LineUnit(), m.cfg.Machine.Cores())
				m.l2s[home].Access(paddr)
				continue
			}
			line := m.l2s[st.Core].LineAddr(paddr)
			if hit, evicted := m.l2s[st.Core].Access(paddr); !hit {
				if evicted >= 0 {
					m.dir.Remove(evicted, st.Core)
				}
				m.dir.Add(line, st.Core)
			}
		}
	}
	for core := range m.l1s {
		m.l1s[core].ResetStats()
		m.l2s[core].ResetStats()
	}
}

// phaseRange returns the [lo, hi) access range of phase ph in the stream.
// Streams without phase markers are one phase.
func phaseRange(st *Stream, ph int) (int, int) {
	if len(st.Phases) == 0 {
		if ph == 0 {
			return 0, len(st.Accesses)
		}
		return 0, 0
	}
	if ph >= len(st.Phases) {
		return 0, 0
	}
	lo := st.Phases[ph]
	hi := len(st.Accesses)
	if ph+1 < len(st.Phases) {
		hi = st.Phases[ph+1]
	}
	return lo, hi
}

func (m *machine) policy() mem.Policy {
	switch m.cfg.Policy {
	case PolicyOSAssisted:
		return mem.NewOSAssistedPolicy(m.cfg.Machine.NumMCs)
	case PolicyFirstTouch:
		return &mem.FirstTouchPolicy{MCOfCore: m.cfg.Mapping.DesiredMCOf}
	case PolicyFirstTouchNearest:
		return &mem.FirstTouchNearestPolicy{NearestMC: m.nearestMCOf}
	default:
		return mem.NewInterleavedPolicy(m.cfg.Machine.NumMCs)
	}
}

// tryIssue launches accesses for the core until its MLP window fills.
func (m *machine) tryIssue(core int) {
	cs := m.cores[core]
	for cs.outstanding < m.cfg.MLPWindow {
		ss := m.nextReady(cs)
		if ss == nil {
			return
		}
		acc := ss.stream.Accesses[ss.idx]
		ss.idx++
		app := ss.stream.AppID
		if ss.idx == len(ss.stream.Accesses) {
			ss.done = true
		}
		cs.outstanding++
		now := m.sim.Now()
		t := now
		if cs.nextFree > t {
			t = cs.nextFree
		}
		gap := m.cfg.ComputeGap
		if m.cfg.GapJitter > 0 {
			// Cheap deterministic hash of (core, issue count, seed). With
			// Seed 0 the mix term vanishes and the historical jitter stream
			// is reproduced exactly.
			h := uint64(core)*0x9e3779b97f4a7c15 + uint64(cs.issued)*0xbf58476d1ce4e5b9
			h ^= m.seedMix
			h ^= h >> 31
			gap += int64(h % uint64(m.cfg.GapJitter))
		}
		cs.issued++
		cs.nextFree = t + gap
		e := m.allocEvent()
		e.stage, e.core, e.app, e.acc, e.last = stProcess, core, app, acc, ss.done
		m.sim.Schedule(t, e)
	}
	// Window full with work remaining: the core stalls until a miss returns.
	// (Do not use nextReady here — it advances the round-robin pointer, and
	// tracing must never perturb the simulation.)
	if tr := m.obs.Tracer; tr.Enabled() {
		for _, ss := range cs.streams {
			if !ss.done {
				tr.Emit(m.sim.Now(), "core", "stall", m.coreComp[core], 0)
				break
			}
		}
	}
}

// nextReady picks the core's next stream with work: round-robin by default
// (streams time-share the core), or the first unfinished stream in
// declaration order under Workload.Sequential (streams run as consecutive
// epochs — the phase structure of a composed mix).
func (m *machine) nextReady(cs *coreState) *streamState {
	if m.seq {
		for _, ss := range cs.streams {
			if !ss.done {
				return ss
			}
		}
		return nil
	}
	n := len(cs.streams)
	for i := 0; i < n; i++ {
		ss := cs.streams[(cs.nextStream+i)%n]
		if !ss.done {
			cs.nextStream = (cs.nextStream + i + 1) % n
			return ss
		}
	}
	return nil
}

// complete finishes one access at the current time.
func (m *machine) complete(core, app int, last bool) {
	cs := m.cores[core]
	cs.outstanding--
	m.res.Completed++
	if tr := m.obs.Tracer; tr.Enabled() {
		tr.Emit(m.sim.Now(), "core", "retire", m.coreComp[core], 0)
	}
	if t := m.sim.Now(); t > m.res.AppExecTime[app] {
		m.res.AppExecTime[app] = t
	}
	if t := m.sim.Now(); t > m.res.ExecTime {
		m.res.ExecTime = t
	}
	if last {
		m.running--
	}
	m.tryIssue(core)
}

// process runs one access through the Figure 2 flow, rescheduling the
// pooled event for its next stage.
func (m *machine) process(e *accessEvent) {
	m.res.Total++
	m.totalC.Inc()
	if ck := m.ck; ck != nil {
		e.ckID = ck.StartAccess(m.sim.Now())
	}
	if pf := m.pf; pf != nil {
		e.pfID = pf.Start(e.core, m.sim.Now())
	}
	if g := m.mig; g != nil {
		// Every timed reference counts toward the page's access distribution
		// (the engine watches the TLB, not the caches), and crossing a window
		// boundary rolls the window before this access translates.
		g.touch(m.sim.Now(), e.app, e.acc.VAddr/m.memCfg.PageBytes, e.core)
	}
	paddr := m.spaces[e.app].Translate(e.acc.VAddr, e.core, int(e.acc.DesiredMC))

	// L1.
	if hit, _ := m.l1s[e.core].Access(paddr); hit {
		if ck := m.ck; ck != nil {
			ck.Stage(e.ckID, check.StageL1, m.sim.Now()+m.cfg.L1Latency)
		}
		if pf := m.pf; pf != nil {
			pf.StageAt(e.pfID, prof.CompL1, m.sim.Now()+m.cfg.L1Latency)
		}
		e.stage = stComplete
		m.sim.ScheduleAfter(m.cfg.L1Latency, e)
		return
	}
	if m.cfg.Machine.L2 == layout.SharedL2 {
		m.processShared(e, paddr)
		return
	}
	m.processPrivate(e, paddr)
}

// processPrivate follows Figure 2a: local L2, then the directory cached at
// the line's MC, then an L2-to-L2 transfer or an off-chip access.
func (m *machine) processPrivate(e *accessEvent, paddr int64) {
	core, app := e.core, e.app
	t0 := m.sim.Now() + m.cfg.L1Latency
	if ck := m.ck; ck != nil {
		ck.Stage(e.ckID, check.StageL1, t0)
	}
	if pf := m.pf; pf != nil {
		pf.StageAt(e.pfID, prof.CompL1, t0)
	}
	line := m.l2s[core].LineAddr(paddr)
	if hit, evicted := m.l2s[core].Access(paddr); hit {
		m.res.L2LocalHits++
		m.l2LocalC.Inc()
		if ck := m.ck; ck != nil {
			ck.Stage(e.ckID, check.StageL2, t0+m.cfg.L2Latency)
		}
		if pf := m.pf; pf != nil {
			pf.StageAt(e.pfID, prof.CompL2, t0+m.cfg.L2Latency)
		}
		e.stage = stComplete
		m.sim.Schedule(t0+m.cfg.L2Latency, e)
		return
	} else if evicted >= 0 {
		m.dir.Remove(evicted, core)
	}
	m.dir.Add(line, core) // the fill just performed by Access

	t1 := t0 + m.cfg.L2Latency
	if ck := m.ck; ck != nil {
		ck.Stage(e.ckID, check.StageL2, t1)
	}
	if pf := m.pf; pf != nil {
		pf.StageAt(e.pfID, prof.CompL2, t1)
	}
	mcID := m.spaces[app].MCOf(paddr)
	mcNode := m.cfg.Mapping.Placement.NodeOf(mcID)
	coreNode := mesh.CoordOf(core, m.cfg.Machine.MeshX)

	// Peek the directory to classify the request's traffic, then send
	// path 1 (L2 → directory at the MC).
	owner := m.ownerOf(line, core)
	if owner >= 0 {
		// On-chip: directory forwards to the owning L2, which sends the
		// line to the requester.
		m.res.OnChipRemote++
		m.remoteC.Inc()
		tArr, reqHops := m.net.Transit(t1, coreNode, mcNode, noc.OnChip)
		tDir := tArr + m.cfg.DirLatency
		ownerNode := mesh.CoordOf(owner, m.cfg.Machine.MeshX)
		tFwd, fwdHops := m.net.Transit(tDir, mcNode, ownerNode, noc.OnChip)
		tOwn := tFwd + m.cfg.L2Latency
		tData, respHops := m.net.Transit(tOwn, ownerNode, coreNode, noc.OnChip)
		if ck := m.ck; ck != nil {
			ck.Stage(e.ckID, check.StageNoCReq, tArr)
			ck.Stage(e.ckID, check.StageDir, tDir)
			ck.Stage(e.ckID, check.StageNoCResp, tData)
		}
		if pf := m.pf; pf != nil {
			pf.TransitAt(e.pfID, prof.TransitReq, t1, tArr, reqHops)
			pf.StageAt(e.pfID, prof.CompDirLookup, tDir)
			pf.TransitAt(e.pfID, prof.TransitFwd, tDir, tFwd, fwdHops)
			pf.StageAt(e.pfID, prof.CompL2, tOwn)
			pf.TransitAt(e.pfID, prof.TransitResp, tOwn, tData, respHops)
		}
		e.stage = stComplete
		m.sim.Schedule(tData, e)
		return
	}

	// Off-chip (paths 1–3 of Figure 2a).
	m.res.OffChip++
	m.offChipC.Inc()
	e.coreNode = coreNode
	if m.cfg.OptimalOffchip {
		// Section 2 optimal scheme: nearest controller, no bank contention.
		nearest := m.cfg.Mapping.Placement.NearestMC(coreNode)
		nearNode := m.cfg.Mapping.Placement.NodeOf(nearest)
		m.accessMap[core][nearest].Inc()
		tArr, hops := m.net.Transit(t1, coreNode, nearNode, noc.OffChip)
		finish := tArr + m.cfg.DirLatency + m.cfg.DRAM.TRowHit
		m.res.MemLatency += m.cfg.DRAM.TRowHit
		m.res.MemServed++
		if ck := m.ck; ck != nil {
			ck.Stage(e.ckID, check.StageNoCReq, tArr)
			ck.Stage(e.ckID, check.StageDRAMDone, finish)
		}
		if pf := m.pf; pf != nil {
			pf.TransitAt(e.pfID, prof.TransitReq, t1, tArr, hops)
			pf.StageAt(e.pfID, prof.CompDirLookup, tArr+m.cfg.DirLatency)
			pf.DRAMOptimal(e.pfID, finish)
		}
		e.stage, e.t, e.mcNode = stPrivOptFinish, finish, nearNode
		m.sim.Schedule(finish, e)
		return
	}
	m.accessMap[core][mcID].Inc()
	tArr, hops := m.net.Transit(t1, coreNode, mcNode, noc.OffChip)
	tDir := tArr + m.cfg.DirLatency
	e.stage, e.mcID, e.mcNode = stPrivSubmit, mcID, mcNode
	e.local = mem.LocalAddr(paddr, m.memCfg)
	if ck := m.ck; ck != nil {
		ck.Stage(e.ckID, check.StageNoCReq, tArr)
		ck.Stage(e.ckID, check.StageDir, tDir)
		ck.AddrOwner(paddr, mcID, e.local)
	}
	if pf := m.pf; pf != nil {
		pf.TransitAt(e.pfID, prof.TransitReq, t1, tArr, hops)
		pf.StageAt(e.pfID, prof.CompDirLookup, tDir)
	}
	m.sim.Schedule(tDir, e)
}

// ownerOf returns the core (≠ requester) nearest to the requester whose L2
// holds the line, or -1. It delegates to the directory's distance-aware
// Owner; when the checker is attached, it also verifies that the chosen
// core's L2 really holds the line — the directory must never go stale,
// since every eviction removes its sharer bit.
func (m *machine) ownerOf(line int64, requester int) int {
	owner := m.dir.Owner(line, requester, m.cfg.Machine.MeshX)
	if owner >= 0 {
		if ck := m.ck; ck != nil && !m.l2s[owner].Contains(line) {
			ck.Report("directory", "core %d recorded as sharer of line %#x but its L2 does not hold it",
				owner, line)
		}
	}
	return owner
}

// processShared follows Figure 2b: the home L2 bank, then the controller.
// The continuation stages (stSharedBank → stSharedSubmit/stSharedOptServe →
// stSharedFill → stComplete) live on the pooled event.
func (m *machine) processShared(e *accessEvent, paddr int64) {
	core, app := e.core, e.app
	t0 := m.sim.Now() + m.cfg.L1Latency
	cores := m.cfg.Machine.Cores()
	home := mem.HomeBank(paddr, m.cfg.Machine.LineUnit(), cores)
	homeNode := mesh.CoordOf(home, m.cfg.Machine.MeshX)
	coreNode := mesh.CoordOf(core, m.cfg.Machine.MeshX)
	e.coreNode, e.homeNode = coreNode, homeNode

	// Path 1: L1 → home bank.
	tArr, hops := m.net.Transit(t0, coreNode, homeNode, noc.OnChip)
	tBank := tArr + m.cfg.L2Latency
	if ck := m.ck; ck != nil {
		ck.Stage(e.ckID, check.StageL1, t0)
		ck.Stage(e.ckID, check.StageNoCReq, tArr)
		ck.Stage(e.ckID, check.StageL2, tBank)
	}
	if pf := m.pf; pf != nil {
		pf.StageAt(e.pfID, prof.CompL1, t0)
		pf.TransitAt(e.pfID, prof.TransitReq, t0, tArr, hops)
		pf.StageAt(e.pfID, prof.CompL2, tBank)
	}
	if hit, _ := m.l2s[home].Access(paddr); hit {
		m.res.L2LocalHits++
		m.l2LocalC.Inc()
		e.stage = stSharedHomeHit
		m.sim.Schedule(tBank, e)
		return
	}

	// Off-chip (paths 2–4), issued by the home bank.
	m.res.OffChip++
	m.offChipC.Inc()
	mcID := m.spaces[app].MCOf(paddr)
	if m.cfg.OptimalOffchip {
		mcID = m.cfg.Mapping.Placement.NearestMC(homeNode)
	}
	mcNode := m.cfg.Mapping.Placement.NodeOf(mcID)
	m.accessMap[home][mcID].Inc()
	e.stage, e.mcID, e.mcNode = stSharedBank, mcID, mcNode
	e.local = mem.LocalAddr(paddr, m.memCfg)
	if ck := m.ck; ck != nil && !m.cfg.OptimalOffchip {
		// The optimal scheme routes to the nearest MC, not the owner, so
		// the address-map agreement probe only applies to real runs.
		ck.AddrOwner(paddr, mcID, e.local)
	}
	m.sim.Schedule(tBank, e)
}

// finishStats folds substrate statistics into the result.
func (m *machine) finishStats(w *Workload) {
	r := m.res
	// ExecTime was tracked at each completion (idle start-stagger events
	// on streamless cores must not count).
	if r.ExecTime == 0 {
		r.ExecTime = m.sim.Now()
	}
	r.L1Hits = 0
	for _, l1 := range m.l1s {
		r.L1Hits += l1.Hits
	}
	for c := 0; c < 2; c++ {
		r.NetMsgs[c] = m.net.Messages[c]
		r.NetHops[c] = m.net.Hops[c]
		r.NetLatency[c] = m.net.Latency[c]
		r.HopCDF[c] = m.net.HopCDF(noc.Class(c))
	}
	r.Events = m.sim.Processed()
	for _, mc := range m.mcs {
		if !m.cfg.OptimalOffchip {
			r.MemLatency += mc.TotalMemLatency
			r.MemServed += mc.Served
		}
		r.MemSubmitted += mc.Submitted
		r.MemQueue += mc.TotalQueueWait
		r.RowHits += mc.RowHits
		r.QueueOcc = append(r.QueueOcc, mc.QueueOccupancy(r.ExecTime))
	}
	for _, q := range r.QueueOcc {
		r.AvgQueueOcc += q
	}
	if len(r.QueueOcc) > 0 {
		r.AvgQueueOcc /= float64(len(r.QueueOcc))
	}
	// Figure 13: render the per-node per-MC access map from the registry.
	for node := range m.accessMap {
		for mc, c := range m.accessMap[node] {
			r.AccessMap[node][mc] = c.Value()
		}
	}
	for _, sp := range m.spaces {
		r.PageSpills += sp.Spills
	}
}
