package sim

import (
	"testing"

	"offchip/internal/layout"
	"offchip/internal/noc"
)

func testConfig(t *testing.T) Config {
	t.Helper()
	m := layout.Machine{
		MeshX: 4, MeshY: 4,
		NumMCs:     4,
		LineBytes:  64,
		PageBytes:  512,
		L2:         layout.PrivateL2,
		Interleave: layout.LineInterleave,
	}
	cm, err := layout.MappingM1(m, layout.PlacementCorners(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(m, cm)
	cfg.L1Bytes = 1024
	cfg.L2Bytes = 4096
	return cfg
}

func oneAccess(core int, vaddr int64) *Workload {
	return &Workload{
		Name:    "one",
		Streams: []Stream{{Core: core, Accesses: []Access{{VAddr: vaddr, DesiredMC: -1}}}},
	}
}

func TestSingleColdMissLatency(t *testing.T) {
	cfg := testConfig(t)
	r, err := Run(cfg, oneAccess(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	// Core 0 at (0,0); line 0 maps to MC0 at (0,0): zero network hops.
	// L1 (2) + L2 (10) + directory (4) + closed-bank DRAM (40) = 56.
	want := cfg.L1Latency + cfg.L2Latency + cfg.DirLatency + cfg.DRAM.TRowMiss
	if r.ExecTime != want {
		t.Errorf("ExecTime = %d, want %d", r.ExecTime, want)
	}
	if r.OffChip != 1 || r.Total != 1 || r.L1Hits != 0 {
		t.Errorf("counts: offchip=%d total=%d l1=%d", r.OffChip, r.Total, r.L1Hits)
	}
	if r.AccessMap[0][0] != 1 {
		t.Errorf("AccessMap[0][0] = %d", r.AccessMap[0][0])
	}
	if r.OffChipShare() != 1 {
		t.Errorf("OffChipShare = %v", r.OffChipShare())
	}
}

func TestL1HitAfterFill(t *testing.T) {
	cfg := testConfig(t)
	w := &Workload{Streams: []Stream{{
		Core:     0,
		Accesses: []Access{{VAddr: 0, DesiredMC: -1}, {VAddr: 8, DesiredMC: -1}},
	}}}
	// MLP 1 so the second access starts after the fill completes.
	cfg.MLPWindow = 1
	r, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if r.L1Hits != 1 {
		t.Errorf("L1Hits = %d, want 1 (same line)", r.L1Hits)
	}
	if r.OffChip != 1 {
		t.Errorf("OffChip = %d", r.OffChip)
	}
}

func TestRemoteL2Transfer(t *testing.T) {
	cfg := testConfig(t)
	cfg.MLPWindow = 1
	w := &Workload{Streams: []Stream{
		{Core: 0, Accesses: []Access{{VAddr: 0, DesiredMC: -1}}},
		// Core 5 touches the same line much later (its stream is issued
		// independently, but the directory peek at processing time finds
		// core 0's copy).
		{Core: 5, Accesses: []Access{{VAddr: 0, DesiredMC: -1}, {VAddr: 0, DesiredMC: -1}}},
	}}
	r, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if r.OffChip+r.OnChipRemote+r.L1Hits+r.L2LocalHits != 3 {
		t.Errorf("categories don't sum: %+v", r)
	}
	if r.OnChipRemote < 1 {
		t.Errorf("OnChipRemote = %d, want >= 1 (cache-to-cache transfer)", r.OnChipRemote)
	}
	if r.NetMsgs[noc.OnChip] < 3 {
		t.Errorf("on-chip messages = %d, want >= 3 (request+forward+data)", r.NetMsgs[noc.OnChip])
	}
}

func TestSharedL2Flow(t *testing.T) {
	cfg := testConfig(t)
	cfg.Machine.L2 = layout.SharedL2
	// vaddr chosen so its home bank is core 5: line 5.
	vaddr := int64(5 * 64)
	r, err := Run(cfg, oneAccess(0, vaddr))
	if err != nil {
		t.Fatal(err)
	}
	if r.OffChip != 1 {
		t.Errorf("OffChip = %d", r.OffChip)
	}
	// Path 1 (L1→home) + path 5 (home→L1) on-chip; paths 2 and 4 off-chip.
	if r.NetMsgs[noc.OnChip] != 2 || r.NetMsgs[noc.OffChip] != 2 {
		t.Errorf("messages: on=%d off=%d, want 2/2", r.NetMsgs[noc.OnChip], r.NetMsgs[noc.OffChip])
	}
	// The off-chip request is attributed to the home node, not the core.
	if r.AccessMap[5][1] != 1 { // line 5 → MC 5%4=1
		t.Errorf("AccessMap home/MC wrong: %v", r.AccessMap)
	}

	// A second run with a second access from another core hits the home
	// bank on-chip.
	w := &Workload{Streams: []Stream{
		{Core: 0, Accesses: []Access{{VAddr: vaddr, DesiredMC: -1}}},
		{Core: 9, Accesses: []Access{{VAddr: vaddr, DesiredMC: -1}, {VAddr: vaddr, DesiredMC: -1}}},
	}}
	cfg.MLPWindow = 1
	r2, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if r2.L2LocalHits < 1 {
		t.Errorf("home-bank hits = %d, want >= 1", r2.L2LocalHits)
	}
}

func TestOptimalSchemeUsesNearestMC(t *testing.T) {
	cfg := testConfig(t)
	cfg.OptimalOffchip = true
	// Core 15 at (3,3): nearest MC is MC3 (corner (3,3)), but the line of
	// vaddr 0 belongs to MC0. The optimal scheme must go to MC3.
	r, err := Run(cfg, oneAccess(15, 0))
	if err != nil {
		t.Fatal(err)
	}
	if r.AccessMap[15][3] != 1 {
		t.Errorf("optimal scheme AccessMap = %v", r.AccessMap[15])
	}
	// No queueing: memory latency is exactly one row hit.
	if r.MemLatency != cfg.DRAM.TRowHit || r.MemServed != 1 {
		t.Errorf("optimal mem latency = %d/%d", r.MemLatency, r.MemServed)
	}
	// Zero hops to the corner MC at the core's own node.
	if r.NetHops[noc.OffChip] != 0 {
		t.Errorf("off-chip hops = %d", r.NetHops[noc.OffChip])
	}
}

func TestOptimalFasterThanDefault(t *testing.T) {
	cfg := testConfig(t)
	// A burst of far accesses from one corner core to the far MC.
	var accs []Access
	for i := int64(0); i < 64; i++ {
		// All lines map to MC3 ((3,3)), requested from core 0 ((0,0)).
		accs = append(accs, Access{VAddr: i*64*4 + 3*64, DesiredMC: -1})
	}
	w := &Workload{Streams: []Stream{{Core: 0, Accesses: accs}}}
	base, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	cfg.OptimalOffchip = true
	opt, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if opt.ExecTime >= base.ExecTime {
		t.Errorf("optimal %d >= baseline %d", opt.ExecTime, base.ExecTime)
	}
	if opt.AvgNetLatency(noc.OffChip) >= base.AvgNetLatency(noc.OffChip) {
		t.Errorf("optimal off-chip net latency %.1f >= baseline %.1f",
			opt.AvgNetLatency(noc.OffChip), base.AvgNetLatency(noc.OffChip))
	}
}

func TestMLPWindowOverlapsMisses(t *testing.T) {
	cfg := testConfig(t)
	var accs []Access
	for i := int64(0); i < 8; i++ {
		accs = append(accs, Access{VAddr: i * 64 * 4, DesiredMC: -1}) // all MC0, different rows? same bank
	}
	w := &Workload{Streams: []Stream{{Core: 0, Accesses: accs}}}
	cfg.MLPWindow = 1
	serial, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MLPWindow = 8
	parallel, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if parallel.ExecTime >= serial.ExecTime {
		t.Errorf("MLP 8 time %d >= MLP 1 time %d", parallel.ExecTime, serial.ExecTime)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := testConfig(t)
	var streams []Stream
	for c := 0; c < 16; c++ {
		var accs []Access
		for i := int64(0); i < 50; i++ {
			accs = append(accs, Access{VAddr: (int64(c)*977 + i*131) % 8192 * 8, DesiredMC: -1})
		}
		streams = append(streams, Stream{Core: c, Accesses: accs})
	}
	w := &Workload{Streams: streams}
	r1, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if r1.ExecTime != r2.ExecTime || r1.OffChip != r2.OffChip ||
		r1.NetLatency != r2.NetLatency || r1.MemLatency != r2.MemLatency {
		t.Errorf("nondeterministic: %+v vs %+v", r1, r2)
	}
}

func TestMultiprogrammedIsolation(t *testing.T) {
	cfg := testConfig(t)
	w := &Workload{Streams: []Stream{
		{Core: 0, AppID: 0, Accesses: []Access{{VAddr: 0, DesiredMC: -1}}},
		{Core: 0, AppID: 1, Accesses: []Access{{VAddr: 0, DesiredMC: -1}}},
	}}
	r, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	// Same vaddr, different apps: both must miss (no phantom sharing).
	if r.OffChip != 2 {
		t.Errorf("OffChip = %d, want 2 (isolated address spaces)", r.OffChip)
	}
	if len(r.AppExecTime) != 2 {
		t.Errorf("AppExecTime = %v", r.AppExecTime)
	}
}

func TestOSAssistedPolicyRoutesToDesiredMC(t *testing.T) {
	cfg := testConfig(t)
	cfg.Machine.Interleave = layout.PageInterleave
	cfg.Policy = PolicyOSAssisted
	w := &Workload{Streams: []Stream{{
		Core:     0,
		Accesses: []Access{{VAddr: 0, DesiredMC: 2}},
	}}}
	r, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if r.AccessMap[0][2] != 1 {
		t.Errorf("desired MC ignored: %v", r.AccessMap[0])
	}
}

func TestFirstTouchPolicyUsesClusterMC(t *testing.T) {
	cfg := testConfig(t)
	cfg.Machine.Interleave = layout.PageInterleave
	cfg.Policy = PolicyFirstTouch
	// Core 15 is in cluster 3: its pages come from MC3.
	r, err := Run(cfg, oneAccess(15, 0))
	if err != nil {
		t.Fatal(err)
	}
	if r.AccessMap[15][3] != 1 {
		t.Errorf("first touch map: %v", r.AccessMap[15])
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := testConfig(t)
	cfg.Mapping = nil
	if _, err := Run(cfg, oneAccess(0, 0)); err == nil {
		t.Error("nil mapping accepted")
	}
	cfg = testConfig(t)
	cfg.MLPWindow = 0
	if _, err := Run(cfg, oneAccess(0, 0)); err == nil {
		t.Error("zero MLP accepted")
	}
	cfg = testConfig(t)
	if _, err := Run(cfg, oneAccess(99, 0)); err == nil {
		t.Error("out-of-range core accepted")
	}
}

func TestWorkloadTotalAccesses(t *testing.T) {
	w := &Workload{Streams: []Stream{
		{Core: 0, Accesses: make([]Access, 3)},
		{Core: 1, Accesses: make([]Access, 5)},
	}}
	if w.TotalAccesses() != 8 {
		t.Errorf("TotalAccesses = %d", w.TotalAccesses())
	}
}

func TestQueueOccupancyPositiveUnderLoad(t *testing.T) {
	cfg := testConfig(t)
	var accs []Access
	for i := int64(0); i < 100; i++ {
		accs = append(accs, Access{VAddr: i * 256 * 4, DesiredMC: -1}) // all MC0
	}
	w := &Workload{Streams: []Stream{{Core: 0, Accesses: accs}}}
	cfg.MLPWindow = 16
	r, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if r.QueueOcc[0] <= 0 {
		t.Errorf("MC0 queue occupancy = %v under heavy load", r.QueueOcc[0])
	}
	if r.AvgQueueOcc <= 0 {
		t.Errorf("avg queue occupancy = %v", r.AvgQueueOcc)
	}
}

func TestStartStaggerNotCountedWhenIdle(t *testing.T) {
	// Idle cores' start events must not inflate ExecTime: a single stream
	// on core 0 finishes long before core 15's stagger tick.
	cfg := testConfig(t)
	cfg.StartStagger = 1000
	r, err := Run(cfg, oneAccess(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if r.ExecTime >= 1000 {
		t.Errorf("ExecTime %d includes idle stagger events", r.ExecTime)
	}
}

func TestGapJitterDeterministic(t *testing.T) {
	cfg := testConfig(t)
	cfg.GapJitter = 16
	w := &Workload{Streams: []Stream{{Core: 3, Accesses: []Access{
		{VAddr: 0, DesiredMC: -1}, {VAddr: 4096, DesiredMC: -1}, {VAddr: 8192, DesiredMC: -1},
	}}}}
	r1, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if r1.ExecTime != r2.ExecTime {
		t.Errorf("jitter nondeterministic: %d vs %d", r1.ExecTime, r2.ExecTime)
	}
	// Different cores see different jitter sequences.
	w2 := &Workload{Streams: []Stream{{Core: 5, Accesses: w.Streams[0].Accesses}}}
	r3, err := Run(cfg, w2)
	if err != nil {
		t.Fatal(err)
	}
	_ = r3 // may or may not differ; the property under test is determinism
}

func TestSharedL2OptimalScheme(t *testing.T) {
	cfg := testConfig(t)
	cfg.Machine.L2 = layout.SharedL2
	cfg.OptimalOffchip = true
	// Home bank of vaddr 0 is core 0 at (0,0); its nearest MC is MC0.
	r, err := Run(cfg, oneAccess(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if r.AccessMap[0][0] != 1 {
		t.Errorf("shared optimal AccessMap = %v", r.AccessMap[0])
	}
	if r.MemLatency != cfg.DRAM.TRowHit {
		t.Errorf("optimal mem latency = %d", r.MemLatency)
	}
}

func TestDebugMC0Hook(t *testing.T) {
	cfg := testConfig(t)
	var seen []int64
	cfg.DebugMC0 = func(a int64) { seen = append(seen, a) }
	if _, err := Run(cfg, oneAccess(0, 0)); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 {
		t.Errorf("hook observed %d submissions, want 1", len(seen))
	}
}

func TestLocalAddressCompaction(t *testing.T) {
	// Two consecutive units of MC0's stripe must be contiguous in the
	// controller's local address space (so they share a DRAM row).
	cfg := testConfig(t)
	var seen []int64
	cfg.DebugMC0 = func(a int64) { seen = append(seen, a) }
	unit := cfg.Machine.LineUnit()
	stripe := unit * int64(cfg.Machine.NumMCs)
	w := &Workload{Streams: []Stream{{Core: 0, Accesses: []Access{
		{VAddr: 0, DesiredMC: -1},
		{VAddr: stripe, DesiredMC: -1}, // next MC0 unit
	}}}}
	cfg.MLPWindow = 1
	if _, err := Run(cfg, w); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 {
		t.Fatalf("submissions = %v", seen)
	}
	if seen[1]-seen[0] != unit {
		t.Errorf("local addresses %v not compacted (want gap %d)", seen, unit)
	}
}
