// Package stats provides the small statistics and presentation helpers the
// experiment harness uses: normalized improvements, means, weighted speedup
// for multiprogrammed mixes, and fixed-width table rendering for the
// regenerated figures and tables.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Improvement returns the fractional reduction of optimized vs baseline:
// (baseline − optimized) / baseline. Zero baselines yield 0.
func Improvement(baseline, optimized float64) float64 {
	if baseline == 0 {
		return 0
	}
	return (baseline - optimized) / baseline
}

// Pct formats a fraction as a percentage with one decimal.
func Pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// MeanSpeedupRatio returns the arithmetic mean of per-element ratios
// new/old — used for averaging normalized runtimes, as the paper's
// "average improvement" figures are. Elements with a zero old value
// contribute 0 to the mean.
func MeanSpeedupRatio(old, new []float64) float64 {
	if len(old) != len(new) || len(old) == 0 {
		return 0
	}
	var s float64
	for i := range old {
		if old[i] == 0 {
			continue
		}
		s += new[i] / old[i]
	}
	return s / float64(len(old))
}

// GeoMean returns the geometric mean of xs: (Πxᵢ)^(1/n), computed in log
// space to avoid overflow. It returns 0 for empty input or when any
// element is non-positive (the geometric mean is undefined there).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// WeightedSpeedup computes the multiprogrammed-workload metric of
// Figure 25 [21]: Σᵢ IPCᵢ(shared) / IPCᵢ(alone). With fixed instruction
// counts per application this is Σᵢ Tᵢ(alone) / Tᵢ(shared).
func WeightedSpeedup(aloneTimes, sharedTimes []int64) float64 {
	if len(aloneTimes) != len(sharedTimes) {
		panic("stats: weighted speedup length mismatch")
	}
	var ws float64
	for i := range aloneTimes {
		if sharedTimes[i] == 0 {
			continue
		}
		ws += float64(aloneTimes[i]) / float64(sharedTimes[i])
	}
	return ws
}

// CumulativeFractions turns histogram bucket counts into a CDF: element i
// is the fraction of observations in buckets 0..i. It mirrors the
// obs.Histogram CDF arithmetic exactly (integer cumulation, one float
// division per bucket), so CDFs rendered from merged registry shards are
// bit-identical to the per-run ones. All-zero counts yield all zeros.
func CumulativeFractions(counts []int64) []float64 {
	out := make([]float64, len(counts))
	var total, cum int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return out
	}
	for i, c := range counts {
		cum += c
		out[i] = float64(cum) / float64(total)
	}
	return out
}

// Table renders rows as a fixed-width text table with a header.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// Add appends a row; cells beyond the header count are dropped.
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddF appends a row of formatted cells: strings pass through, float64
// render with %.1f, integers with %d.
func (t *Table) AddF(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		case int:
			row[i] = fmt.Sprintf("%d", v)
		case int64:
			row[i] = fmt.Sprintf("%d", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}
