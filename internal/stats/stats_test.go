package stats

import (
	"math"
	"strings"
	"testing"
)

func TestImprovement(t *testing.T) {
	if got := Improvement(100, 80); got != 0.2 {
		t.Errorf("Improvement = %v", got)
	}
	if got := Improvement(0, 5); got != 0 {
		t.Errorf("zero baseline = %v", got)
	}
	if got := Improvement(50, 75); got != -0.5 {
		t.Errorf("regression = %v", got)
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.205); got != "20.5%" {
		t.Errorf("Pct = %q", got)
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
}

func TestMeanSpeedupRatio(t *testing.T) {
	if got := MeanSpeedupRatio([]float64{100, 200}, []float64{80, 100}); got != (0.8+0.5)/2 {
		t.Errorf("MeanSpeedupRatio = %v", got)
	}
	if got := MeanSpeedupRatio([]float64{1}, []float64{1, 2}); got != 0 {
		t.Errorf("length mismatch = %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean(2,8) = %v, want 4", got)
	}
	if got := GeoMean([]float64{5}); math.Abs(got-5) > 1e-12 {
		t.Errorf("GeoMean(5) = %v", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %v", got)
	}
	if got := GeoMean([]float64{1, 0, 4}); got != 0 {
		t.Errorf("GeoMean with zero = %v", got)
	}
	if got := GeoMean([]float64{1, -2}); got != 0 {
		t.Errorf("GeoMean with negative = %v", got)
	}
	// A true geometric mean differs from the arithmetic mean of ratios:
	// ratios 0.5 and 2.0 must average to exactly 1.
	if got := GeoMean([]float64{0.5, 2.0}); math.Abs(got-1) > 1e-12 {
		t.Errorf("GeoMean(0.5,2) = %v, want 1", got)
	}
}

func TestTableColumnAlignment(t *testing.T) {
	tab := &Table{Headers: []string{"x", "longheader"}}
	tab.Add("aaaaaaaa", "1")
	out := tab.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines:\n%s", len(lines), out)
	}
	// The second column starts at the same offset in every line: cells are
	// padded to the widest cell of column one plus the two-space gap.
	idx := strings.Index(lines[2], "1")
	if idx != len("aaaaaaaa")+2 {
		t.Errorf("second column at %d:\n%s", idx, out)
	}
	if strings.Index(lines[1], "-") != 0 || len(lines[1]) < idx {
		t.Errorf("separator misaligned:\n%s", out)
	}
	// Cells beyond the header count are dropped in rendering.
	tab2 := &Table{Headers: []string{"only"}}
	tab2.Add("a", "extra")
	if strings.Contains(tab2.String(), "extra") {
		t.Errorf("extra cell rendered: %q", tab2.String())
	}
}

func TestWeightedSpeedup(t *testing.T) {
	// Two apps, each running at half speed when shared: WS = 1.0.
	if got := WeightedSpeedup([]int64{100, 200}, []int64{200, 400}); got != 1.0 {
		t.Errorf("WeightedSpeedup = %v", got)
	}
	// No slowdown: WS = number of apps.
	if got := WeightedSpeedup([]int64{100, 100}, []int64{100, 100}); got != 2.0 {
		t.Errorf("ideal WS = %v", got)
	}
	// Zero shared time skipped.
	if got := WeightedSpeedup([]int64{100}, []int64{0}); got != 0 {
		t.Errorf("zero shared = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch accepted")
		}
	}()
	WeightedSpeedup([]int64{1}, []int64{1, 2})
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		Title:   "demo",
		Headers: []string{"app", "value"},
	}
	tab.Add("apsi", "35.2")
	tab.AddF("swim", 20.25)
	tab.AddF("n", 7)
	tab.AddF("n64", int64(9))
	tab.AddF("other", struct{}{})
	out := tab.String()
	if !strings.Contains(out, "== demo ==") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "20.2") { // %.1f
		t.Errorf("float formatting:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Title + header + separator + 5 rows.
	if len(lines) != 8 {
		t.Errorf("%d lines:\n%s", len(lines), out)
	}
	// Columns align: header and first row have the same prefix width.
	if !strings.HasPrefix(lines[2], "---") {
		t.Errorf("separator row: %q", lines[2])
	}
}

func TestTableShortRow(t *testing.T) {
	tab := &Table{Headers: []string{"a", "b", "c"}}
	tab.Add("only")
	out := tab.String()
	if !strings.Contains(out, "only") {
		t.Error("short row dropped")
	}
}

func TestCumulativeFractions(t *testing.T) {
	got := CumulativeFractions([]int64{1, 0, 3})
	want := []float64{0.25, 0.25, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("cdf[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	for i, v := range CumulativeFractions([]int64{0, 0}) {
		if v != 0 {
			t.Errorf("empty histogram cdf[%d] = %v, want 0", i, v)
		}
	}
	if out := CumulativeFractions(nil); len(out) != 0 {
		t.Errorf("nil counts gave %v", out)
	}
}
