package sweepq

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"testing"
	"time"

	"offchip/internal/obs"
	"offchip/internal/runner"
)

// crashSweepSpecs enumerates the 50-job sweep the crash test runs: the
// application suite crossed with four single-run variants, truncated to 50.
// Baseline-mode jobs keep each job to one simulation so the whole battery
// stays fast under -race on one CPU.
func crashSweepSpecs(t *testing.T) []runner.JobSpec {
	t.Helper()
	apps := []string{
		"wupwise", "swim", "mgrid", "applu", "galgel", "apsi", "gafort",
		"fma3d", "art", "ammp", "hpccg", "minighost", "minimd",
	}
	variants := []func(*runner.JobSpec){
		func(s *runner.JobSpec) {},
		func(s *runner.JobSpec) { s.Interleave = "page" },
		func(s *runner.JobSpec) { s.L2 = "shared" },
		func(s *runner.JobSpec) { s.Policy = "firsttouch" },
	}
	var specs []runner.JobSpec
	for _, app := range apps {
		for _, set := range variants {
			s := runner.JobSpec{Mode: runner.ModeBaseline, App: app, Cap: 60}
			set(&s)
			specs = append(specs, s)
		}
	}
	return specs[:50]
}

// TestCrashResume is the service's end-to-end durability proof:
//
//  1. run the 50-job sweep uninterrupted (in-process) for the reference
//     merged registry;
//  2. boot a sweep server, submit the same sweep over HTTP, and SIGKILL the
//     whole worker fleet mid-run;
//  3. boot a fresh server on the same state directory, resubmit, and let it
//     finish;
//  4. assert the jobs completed before the kill were served from the
//     journal (never re-run), and the final merged registry is
//     byte-identical to the uninterrupted run's.
func TestCrashResume(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process crash test")
	}
	specs := crashSweepSpecs(t)
	ids := make([]string, len(specs))
	for i, s := range specs {
		ids[i] = s.ID()
	}

	// Reference: the same sweep, uninterrupted and in-process.
	ref, err := runner.Run(specs, runner.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.FirstError(); err != nil {
		t.Fatal(err)
	}
	horizon := int64(1) << 40
	want := snapshotJSONL(t, ref.Merged(), horizon)

	// First server life: submit over HTTP, let part of the sweep finish,
	// then kill the fleet mid-run.
	state := t.TempDir()
	s1, err := NewServer(Config{
		StateDir: state, Workers: 3, MaxRetries: 2,
		RetryBackoff: 10 * time.Millisecond,
		testJobDelay: 15 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	submitHTTP(t, s1.Addr(), SubmitRequest{Jobs: ids})
	waitDone(t, s1.Addr(), 10)
	s1.Kill()

	journaled := countJournal(t, s1)
	if journaled < 1 || journaled >= len(ids) {
		t.Fatalf("kill landed outside the interesting window: %d/%d jobs journaled", journaled, len(ids))
	}
	t.Logf("killed fleet with %d/%d jobs journaled", journaled, len(ids))

	// Second life: same state dir, resubmit everything.
	s2, err := NewServer(Config{
		StateDir: state, Workers: 3, MaxRetries: 2,
		RetryBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	res := submitHTTP(t, s2.Addr(), SubmitRequest{Jobs: ids})
	if res.Cached < journaled {
		t.Fatalf("only %d of %d journaled jobs served from cache", res.Cached, journaled)
	}
	if failed := s2.Wait(0); failed != 0 {
		t.Fatalf("%d jobs failed after resume", failed)
	}
	st := s2.Stats()
	if st.JournalHits < int64(journaled) {
		t.Fatalf("journal hits %d < %d journaled completions", st.JournalHits, journaled)
	}
	if st.Done != len(ids) {
		t.Fatalf("resumed server finished %d/%d jobs", st.Done, len(ids))
	}

	// The recovered+completed merged registry must be byte-identical to the
	// uninterrupted run's.
	got := snapshotJSONL(t, s2.Merged(), horizon)
	if !bytes.Equal(got, want) {
		t.Fatalf("merged registry after crash/resume differs from uninterrupted run\n got %d bytes\nwant %d bytes", len(got), len(want))
	}

	// And every per-job canonical projection matches the reference outcome.
	for i, id := range ids {
		jr := s2.Result(id)
		if jr == nil {
			t.Fatalf("job %s has no result", id)
		}
		want, err := ref.Outcomes[i].CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(jr.Canonical, want) {
			t.Fatalf("job %s: canonical result differs after crash/resume", id)
		}
	}

	// Resubmitting yet again must be pure cache: no new work accepted.
	res = submitHTTP(t, s2.Addr(), SubmitRequest{Jobs: ids})
	if res.Accepted != 0 || res.Cached != len(ids) {
		t.Fatalf("resubmit after completion accepted new work: %+v", res)
	}
}

// snapshotJSONL renders a merged registry as its canonical JSONL bytes —
// the byte-stable form the determinism comparisons use.
func snapshotJSONL(t *testing.T, r *obs.Registry, horizon int64) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := obs.WriteJSONL(&buf, r.Snapshot(horizon)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// countJournal reads how many completions the server's journal holds.
func countJournal(t *testing.T, s *Server) int {
	t.Helper()
	return len(s.journal.Entries)
}

// submitHTTP posts a SubmitRequest to a live server.
func submitHTTP(t *testing.T, addr string, req SubmitRequest) *SubmitResult {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post("http://"+addr+"/submit", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	var res SubmitResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	return &res
}

// waitDone polls /progress until at least n jobs are done.
func waitDone(t *testing.T, addr string, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/progress")
		if err != nil {
			t.Fatal(err)
		}
		var p struct {
			DoneJobs int `json:"done_jobs"`
		}
		err = json.NewDecoder(resp.Body).Decode(&p)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if p.DoneJobs >= n {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("timed out waiting for progress")
}

// TestJournalTornTail: a journal whose final line was torn by a crash must
// recover every whole line and ignore the tail.
func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/journal.jsonl"
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append(JournalEntry{ID: fmt.Sprintf("j1:app=a%d", i), Blob: "b", Digest: "d"}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	// Tear the last line, as a crash mid-append would.
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, whole[:len(whole)-17], 0o644); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(j2.Entries) != 2 {
		t.Fatalf("recovered %d entries from torn journal, want 2", len(j2.Entries))
	}
	// The journal stays appendable after recovery.
	if err := j2.Append(JournalEntry{ID: "j1:app=new", Blob: "b", Digest: "d"}); err != nil {
		t.Fatal(err)
	}
	j3, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if len(j3.Entries) != 3 {
		t.Fatalf("post-recovery append lost: %d entries, want 3", len(j3.Entries))
	}
}
