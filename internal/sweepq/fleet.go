package sweepq

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"
	"sync/atomic"
	"time"

	"offchip/internal/runner"
)

// FleetConfig tunes a worker-process fleet.
type FleetConfig struct {
	// Workers is the number of worker processes; 0 or negative means 1.
	Workers int
	// CacheDir, when set, is the shared on-disk trace cache every job frame
	// points its worker at.
	CacheDir string
	// JobTimeout bounds one job's wall time on a worker; a worker that
	// blows it is killed (and the job reported as a transport failure, so
	// the caller may retry). 0 disables the bound.
	JobTimeout time.Duration
	// Command builds the worker command. nil re-executes the current
	// binary with WorkerEnv set — any binary calling MaybeWorker serves.
	Command func() *exec.Cmd
	// Stderr receives worker stderr; nil inherits the parent's.
	Stderr io.Writer
}

// FleetStats counts transport-level events. All fields are cumulative.
type FleetStats struct {
	Spawns       int64 `json:"spawns"`        // worker processes started (including replacements)
	TimeoutKills int64 `json:"timeout_kills"` // workers killed for blowing JobTimeout
	StaleResults int64 `json:"stale_results"` // frames discarded for a mismatched job/attempt tag
	Crashes      int64 `json:"crashes"`       // workers that died with a job in flight
}

// Fleet owns a pool of worker processes and dispatches jobs to them over
// the length-prefixed protocol. It implements runner.Executor, so a
// work-stealing sweep can run its jobs out-of-process by setting
// Options.Executor — the shape benchtab's -bench-sweepd measures.
type Fleet struct {
	cfg  FleetConfig
	idle chan *workerProc

	mu     sync.Mutex
	procs  map[*workerProc]struct{}
	closed bool

	spawns       atomic.Int64
	timeoutKills atomic.Int64
	staleResults atomic.Int64
	crashes      atomic.Int64
}

// workerProc is one live worker process. The reader goroutine pumps result
// frames into results and closes dead (then results) when the stream ends,
// so Do can always distinguish "result", "worker died", and "timeout".
type workerProc struct {
	cmd       *exec.Cmd
	stdin     io.WriteCloser
	bw        *bufio.Writer
	results   chan resultFrame
	dead      chan struct{}
	readErr   error // valid after dead is closed
	broken    bool  // set by Do when the proc must not be reused
	drainOnce sync.Once
}

// drain discards any frames still flowing from an abandoned proc so its
// reader goroutine can reach the stream's end and reap the process. Only
// called once no Do will touch the proc again.
func (p *workerProc) drain() {
	p.drainOnce.Do(func() {
		go func() {
			for range p.results {
			}
		}()
	})
}

// NewFleet spawns the worker processes. Failing to spawn any worker fails
// the whole fleet — a sweep service with zero workers is misconfigured.
func NewFleet(cfg FleetConfig) (*Fleet, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	f := &Fleet{
		cfg:   cfg,
		idle:  make(chan *workerProc, cfg.Workers),
		procs: map[*workerProc]struct{}{},
	}
	for i := 0; i < cfg.Workers; i++ {
		p, err := f.spawn()
		if err != nil {
			f.Close()
			return nil, err
		}
		f.idle <- p
	}
	return f, nil
}

// Stats snapshots the transport counters.
func (f *Fleet) Stats() FleetStats {
	return FleetStats{
		Spawns:       f.spawns.Load(),
		TimeoutKills: f.timeoutKills.Load(),
		StaleResults: f.staleResults.Load(),
		Crashes:      f.crashes.Load(),
	}
}

func (f *Fleet) spawn() (*workerProc, error) {
	var cmd *exec.Cmd
	if f.cfg.Command != nil {
		cmd = f.cfg.Command()
	} else {
		self, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("sweepq: locate own binary: %w", err)
		}
		cmd = exec.Command(self)
	}
	env := cmd.Env
	if env == nil {
		env = os.Environ()
	}
	cmd.Env = append(env, WorkerEnv+"=1")
	if f.cfg.Stderr != nil {
		cmd.Stderr = f.cfg.Stderr
	} else {
		cmd.Stderr = os.Stderr
	}
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, fmt.Errorf("sweepq: worker stdin: %w", err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, fmt.Errorf("sweepq: worker stdout: %w", err)
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("sweepq: start worker: %w", err)
	}
	f.spawns.Add(1)
	p := &workerProc{
		cmd:     cmd,
		stdin:   stdin,
		bw:      bufio.NewWriter(stdin),
		results: make(chan resultFrame, 4),
		dead:    make(chan struct{}),
	}
	f.mu.Lock()
	f.procs[p] = struct{}{}
	f.mu.Unlock()
	go func() {
		br := bufio.NewReader(stdout)
		for {
			var rf resultFrame
			if err := ReadFrame(br, &rf); err != nil {
				if err != io.EOF {
					p.readErr = err
				}
				close(p.dead)
				close(p.results)
				// Reap so a respawning fleet never accumulates zombies.
				_ = cmd.Wait()
				return
			}
			p.results <- rf
		}
	}()
	return p, nil
}

// kill force-terminates one proc; its reader goroutine observes the closed
// stream and reaps it.
func (p *workerProc) kill() {
	if p.cmd.Process != nil {
		_ = p.cmd.Process.Kill()
	}
	_ = p.stdin.Close()
}

// acquire takes an idle worker, resurrecting it if it died while idle.
func (f *Fleet) acquire() (*workerProc, error) {
	p := <-f.idle
	if p == nil {
		return nil, errors.New("sweepq: fleet has no spawnable workers")
	}
	select {
	case <-p.dead:
		return f.replaceLocked(p)
	default:
		return p, nil
	}
}

// release returns a worker to the pool, replacing it first if broken. The
// idle channel's capacity equals the worker count, so the send never
// blocks; a nil placeholder keeps capacity accounting intact when a
// replacement cannot be spawned (e.g. after Close or Kill).
func (f *Fleet) release(p *workerProc) {
	if p.broken {
		select {
		case <-p.dead:
		default:
			p.kill()
		}
		np, err := f.replaceLocked(p)
		if err != nil {
			f.idle <- nil
			return
		}
		f.idle <- np
		return
	}
	f.idle <- p
}

func (f *Fleet) replaceLocked(old *workerProc) (*workerProc, error) {
	f.mu.Lock()
	delete(f.procs, old)
	closed := f.closed
	f.mu.Unlock()
	old.drain()
	if closed {
		return nil, errors.New("sweepq: fleet closed")
	}
	return f.spawn()
}

// Do runs one job on the fleet: acquire a worker, send the tagged job
// frame, and wait for the matching result. Errors are transport-level
// (worker died, timeout, fleet closed) — the caller decides whether to
// retry; job-level failures come back inside the JobResult.
func (f *Fleet) Do(id string, attempt int) (*JobResult, error) {
	p, err := f.acquire()
	if err != nil {
		f.idle <- nil // keep capacity
		return nil, err
	}
	jr, err := f.do(p, id, attempt)
	f.release(p)
	return jr, err
}

func (f *Fleet) do(p *workerProc, id string, attempt int) (*JobResult, error) {
	if err := writeFlush(p.bw, jobFrame{ID: id, Attempt: attempt, CacheDir: f.cfg.CacheDir}); err != nil {
		p.broken = true
		f.crashes.Add(1)
		return nil, fmt.Errorf("sweepq: send job %s: %w", id, err)
	}
	var deadline <-chan time.Time
	if f.cfg.JobTimeout > 0 {
		t := time.NewTimer(f.cfg.JobTimeout)
		defer t.Stop()
		deadline = t.C
	}
	for {
		select {
		case rf, ok := <-p.results:
			if !ok {
				p.broken = true
				f.crashes.Add(1)
				return nil, fmt.Errorf("sweepq: worker exited with job %s in flight", id)
			}
			if rf.ID != id || rf.Attempt != attempt {
				// A duplicate or late frame from a previous assignment:
				// discard and keep waiting for ours. Tagging frames with
				// (id, attempt) is what makes this race harmless.
				f.staleResults.Add(1)
				continue
			}
			if rf.Err != "" {
				return nil, fmt.Errorf("sweepq: worker rejected job %s: %s", id, rf.Err)
			}
			if rf.Result == nil {
				return nil, fmt.Errorf("sweepq: worker sent empty result for job %s", id)
			}
			return rf.Result, nil
		case <-p.dead:
			p.broken = true
			f.crashes.Add(1)
			if p.readErr != nil {
				return nil, fmt.Errorf("sweepq: worker died on job %s: %v", id, p.readErr)
			}
			return nil, fmt.Errorf("sweepq: worker exited with job %s in flight", id)
		case <-deadline:
			p.broken = true
			f.timeoutKills.Add(1)
			p.kill()
			return nil, fmt.Errorf("sweepq: job %s exceeded the %v worker timeout", id, f.cfg.JobTimeout)
		}
	}
}

// Execute implements runner.Executor: the job ships to a worker process and
// the outcome is rebuilt from the wire form. Transport failures surface as
// the outcome's Err, exactly like an in-process panic would.
func (f *Fleet) Execute(spec runner.JobSpec) *runner.JobOutcome {
	n := spec.Normalized()
	jr, err := f.Do(n.ID(), 0)
	if err != nil {
		return &runner.JobOutcome{Spec: n, ID: n.ID(), ShortID: n.ShortID(), Err: err}
	}
	return jr.Outcome()
}

// Kill force-terminates every worker process immediately (SIGKILL) and
// leaves the fleet unusable — the crash-recovery test's hammer. Pending Do
// calls return transport errors.
func (f *Fleet) Kill() {
	f.mu.Lock()
	f.closed = true
	procs := make([]*workerProc, 0, len(f.procs))
	for p := range f.procs {
		procs = append(procs, p)
	}
	f.mu.Unlock()
	for _, p := range procs {
		p.kill()
		p.drain()
	}
}

// Close shuts the fleet down in an orderly way: close every worker's stdin
// (the protocol's EOF), give them a moment to exit, then kill stragglers.
func (f *Fleet) Close() {
	f.mu.Lock()
	f.closed = true
	procs := make([]*workerProc, 0, len(f.procs))
	for p := range f.procs {
		procs = append(procs, p)
	}
	f.mu.Unlock()
	for _, p := range procs {
		_ = p.stdin.Close()
		p.drain()
	}
	for _, p := range procs {
		select {
		case <-p.dead:
		case <-time.After(2 * time.Second):
			p.kill()
			<-p.dead
		}
	}
}
