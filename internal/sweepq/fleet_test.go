package sweepq

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"offchip/internal/runner"
)

// testFleetCommand builds a worker command running this test binary in the
// given fault mode.
func testFleetCommand(t *testing.T, mode string) func() *exec.Cmd {
	t.Helper()
	self, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	marker := filepath.Join(t.TempDir(), "fault-fired")
	return func() *exec.Cmd {
		cmd := exec.Command(self)
		cmd.Env = append(os.Environ(),
			"SWEEPQ_TEST_MODE="+mode, "SWEEPQ_TEST_MARKER="+marker)
		return cmd
	}
}

// TestFleetExecutesJobs is the happy path: jobs shipped to a real worker
// process come back with the same deterministic projection as in-process
// execution.
func TestFleetExecutesJobs(t *testing.T) {
	f, err := NewFleet(FleetConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	spec := runner.JobSpec{App: "apsi", Cap: 60}
	remote := f.Execute(spec)
	if remote.Err != nil {
		t.Fatalf("fleet execution failed: %v", remote.Err)
	}
	local := spec.Execute()
	want, _ := local.CanonicalJSON()
	got, err := remote.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("fleet outcome diverged from local:\n got %s\nwant %s", got, want)
	}
}

// TestFleetAsRunnerExecutor runs a whole work-stealing sweep through the
// fleet and asserts the merged registry is identical to the in-process
// sweep's — the differential test behind benchtab -bench-sweepd.
func TestFleetAsRunnerExecutor(t *testing.T) {
	specs := []runner.JobSpec{
		{Mode: runner.ModeBaseline, App: "apsi", Cap: 60},
		{Mode: runner.ModeBaseline, App: "swim", Cap: 60},
		{Mode: runner.ModeBaseline, App: "mgrid", Interleave: "page", Cap: 60},
		{App: "gafort", Cap: 60},
	}
	local, err := runner.Run(specs, runner.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFleet(FleetConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	remote, err := runner.Run(specs, runner.Options{Workers: 2, Executor: f})
	if err != nil {
		t.Fatal(err)
	}
	if err := remote.FirstError(); err != nil {
		t.Fatal(err)
	}
	horizon := int64(1) << 40
	if !reflect.DeepEqual(local.Merged().Snapshot(horizon), remote.Merged().Snapshot(horizon)) {
		t.Fatal("merged registry differs between in-process and fleet execution")
	}
}

// failure-mode table: each row injects one worker fault and states what the
// server must do about it.
func TestServerWorkerFailureModes(t *testing.T) {
	job := runner.JobSpec{Mode: runner.ModeBaseline, App: "apsi", Cap: 60}.ID()
	for _, tc := range []struct {
		name       string
		mode       string
		timeout    time.Duration
		maxRetries int
		wantState  taskState
		check      func(t *testing.T, s *Server)
	}{
		{
			// Worker receives the job and dies before replying: the crash is
			// detected, the job requeues, and a respawned worker finishes it.
			name: "worker exit mid-job", mode: "exit-before-result",
			maxRetries: 3, wantState: taskDone,
			check: func(t *testing.T, s *Server) {
				if st := s.Stats(); st.Retries != 1 || st.Fleet.Crashes == 0 {
					t.Fatalf("want 1 retry and a recorded crash, got %+v", st)
				}
			},
		},
		{
			// Worker truncates its result frame and dies: same recovery path,
			// but through the framing error rather than a clean EOF.
			name: "truncated result frame", mode: "truncate-result",
			maxRetries: 3, wantState: taskDone,
			check: func(t *testing.T, s *Server) {
				if st := s.Stats(); st.Retries != 1 {
					t.Fatalf("want 1 retry, got %+v", st)
				}
			},
		},
		{
			// Worker delivers the same result twice: the duplicate is
			// discarded by the (id, attempt) tag and nothing double-merges.
			name: "duplicate result delivery", mode: "duplicate-result",
			maxRetries: 0, wantState: taskDone,
			check: func(t *testing.T, s *Server) {
				if st := s.Stats(); st.Retries != 0 || st.Failed != 0 {
					t.Fatalf("duplicate delivery caused retries or failures: %+v", st)
				}
			},
		},
		{
			// Worker stalls past JobTimeout: it is killed, the job requeues,
			// and the late result (if any) can never match the new attempt.
			name: "timeout then late result", mode: "sleep-before-result",
			timeout: 300 * time.Millisecond, maxRetries: 3, wantState: taskDone,
			check: func(t *testing.T, s *Server) {
				if st := s.Stats(); st.Fleet.TimeoutKills != 1 || st.Retries != 1 {
					t.Fatalf("want 1 timeout kill and 1 retry, got %+v", st)
				}
			},
		},
		{
			// Every worker dies on every attempt: retries exhaust and the job
			// fails without wedging the queue.
			name: "persistent crash exhausts retries", mode: "always-exit",
			maxRetries: 2, wantState: taskFailed,
			check: func(t *testing.T, s *Server) {
				if st := s.Stats(); st.Retries != 3 || st.Failed != 1 {
					t.Fatalf("want 3 retries then failure, got %+v", st)
				}
			},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, err := NewServer(Config{
				StateDir:      t.TempDir(),
				Workers:       1,
				JobTimeout:    tc.timeout,
				MaxRetries:    tc.maxRetries,
				RetryBackoff:  10 * time.Millisecond,
				WorkerCommand: testFleetCommand(t, tc.mode),
			})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			if _, err := s.Submit([]string{job}, 0); err != nil {
				t.Fatal(err)
			}
			s.Wait(0)
			s.mu.Lock()
			state := s.tasks[job].state
			s.mu.Unlock()
			if state != tc.wantState {
				t.Fatalf("job ended %q, want %q", state, tc.wantState)
			}
			tc.check(t, s)
		})
	}
}

// TestServerDeterministicJobErrorFailsFast: a job whose error is inherent
// to its ID (unknown app) must fail immediately, not burn retries.
func TestServerDeterministicJobErrorFailsFast(t *testing.T) {
	s, err := NewServer(Config{
		StateDir: t.TempDir(), Workers: 1, MaxRetries: 5,
		RetryBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	bad := "j1:app=nosuchapp"
	if _, err := s.Submit([]string{bad}, 0); err != nil {
		t.Fatal(err)
	}
	if failed := s.Wait(0); failed != 1 {
		t.Fatalf("want 1 failed job, got %d", failed)
	}
	if st := s.Stats(); st.Retries != 0 {
		t.Fatalf("deterministic failure consumed %d retries", st.Retries)
	}
}

// TestFinishIdempotent drives finish directly with a stale attempt and a
// post-completion duplicate — both must be counted and dropped.
func TestFinishIdempotent(t *testing.T) {
	s, err := NewServer(Config{StateDir: t.TempDir(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	spec := runner.JobSpec{Mode: runner.ModeAnalyze, App: "apsi"}
	jr := ResultOf(spec.Execute())
	tk := &task{id: spec.ID(), shortID: spec.ShortID(), state: taskRunning}
	s.mu.Lock()
	s.tasks[tk.id] = tk
	s.mu.Unlock()

	s.finish(tk, 0, jr, nil)
	if tk.state != taskDone {
		t.Fatalf("first finish did not complete the task: %v", tk.state)
	}
	before := s.Merged().Snapshot(0)
	s.finish(tk, 0, jr, nil) // duplicate completion
	s.finish(tk, 1, jr, nil) // stale attempt
	if st := s.Stats(); st.DuplicateResults != 2 {
		t.Fatalf("want 2 duplicate results recorded, got %d", st.DuplicateResults)
	}
	if !reflect.DeepEqual(before, s.Merged().Snapshot(0)) {
		t.Fatal("duplicate completion mutated the merged registry")
	}
}
