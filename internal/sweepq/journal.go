package sweepq

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
)

// The checkpoint journal is an append-only JSONL file of completed jobs:
// one line per success, written after the result blob lands in the store.
// Restart recovery replays the journal, re-loads each blob, and verifies it
// against the recorded digest — so a crash can lose at most the in-flight
// jobs, never corrupt a completed one. A torn final line (the crash landed
// mid-append) is detected and ignored.

// JournalEntry is one completed job: its canonical ID, the result blob's
// filename in the store, and the blob's FNV-1a digest.
type JournalEntry struct {
	V      int    `json:"v"`
	ID     string `json:"id"`
	Blob   string `json:"blob"`
	Digest string `json:"digest"`
}

// Journal is the open append handle plus the entries recovered at open.
type Journal struct {
	f *os.File
	// Entries maps canonical job ID → recovered entry (last write wins).
	Entries map[string]JournalEntry
}

// OpenJournal opens (creating if absent) the journal at path and recovers
// its entries. Unparseable lines terminate recovery — appends are
// sequential, so garbage can only be a torn tail from a crash mid-append —
// and the torn tail is truncated away so future appends start on a clean
// line instead of gluing onto the partial one.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sweepq: open journal: %w", err)
	}
	j := &Journal{f: f, Entries: map[string]JournalEntry{}}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var good int64 // byte offset past the last whole, valid line
	for sc.Scan() {
		var e JournalEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil || e.V != 1 || e.ID == "" {
			break // torn tail; everything before it holds
		}
		good += int64(len(sc.Bytes())) + 1
		j.Entries[e.ID] = e
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("sweepq: read journal: %w", err)
	}
	if fi, err := f.Stat(); err == nil && good > fi.Size() {
		good = fi.Size() // final line valid but unterminated: keep it whole
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, fmt.Errorf("sweepq: truncate torn journal tail: %w", err)
	}
	if _, err := f.Seek(good, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("sweepq: seek journal: %w", err)
	}
	return j, nil
}

// Append records one completed job and syncs — the job is checkpointed the
// moment Append returns.
func (j *Journal) Append(e JournalEntry) error {
	e.V = 1
	line, err := json.Marshal(e)
	if err != nil {
		return err
	}
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("sweepq: append journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("sweepq: sync journal: %w", err)
	}
	j.Entries[e.ID] = e
	return nil
}

// Close releases the append handle.
func (j *Journal) Close() error { return j.f.Close() }

// BlobDigest fingerprints a result blob for the journal (FNV-1a, rendered
// like runner short IDs).
func BlobDigest(b []byte) string {
	h := uint64(0xcbf29ce484222325)
	for _, c := range b {
		h ^= uint64(c)
		h *= 0x100000001b3
	}
	return strconv.FormatUint(h, 16)
}
