package sweepq

import (
	"bufio"
	"io"
	"os"
	"testing"
	"time"

	"offchip/internal/runner"
)

// TestMain doubles as the worker-fleet entry point: the fleet re-executes
// this very test binary with WorkerEnv set, and the env check routes the
// child into the protocol loop instead of the test runner. The optional
// SWEEPQ_TEST_MODE env selects a misbehavior for the failure-mode tests.
func TestMain(m *testing.M) {
	if os.Getenv(WorkerEnv) != "" {
		testWorkerMain()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// testWorkerMain is WorkerMain with injectable faults. "Once" behaviors use
// a marker file so the fault fires in exactly one worker process across the
// fleet and its respawns.
func testWorkerMain() {
	mode := os.Getenv("SWEEPQ_TEST_MODE")
	marker := os.Getenv("SWEEPQ_TEST_MARKER")
	if mode == "" {
		MaybeWorker() // exercises the production entry point; never returns
	}
	firstHere := func() bool {
		f, err := os.OpenFile(marker, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err != nil {
			return false // marker exists: another process already misbehaved
		}
		f.Close()
		return true
	}
	br := bufio.NewReader(os.Stdin)
	bw := bufio.NewWriter(os.Stdout)
	for {
		var jf jobFrame
		if err := ReadFrame(br, &jf); err != nil {
			if err == io.EOF {
				return
			}
			os.Exit(1)
		}
		switch mode {
		case "always-exit":
			os.Exit(3)
		case "exit-before-result":
			if firstHere() {
				os.Exit(3) // job received, worker dies mid-job
			}
		case "sleep-before-result":
			if firstHere() {
				time.Sleep(1500 * time.Millisecond) // blows a short JobTimeout
			}
		case "truncate-result":
			if firstHere() {
				// Write half a frame, then die: the server-side reader must
				// report a truncated frame, not hang or accept garbage.
				var full sliceWriter
				rf := resultFrame{ID: jf.ID, Attempt: jf.Attempt, Err: "unused"}
				_ = WriteFrame(&full, rf)
				os.Stdout.Write(full[:len(full)/2])
				os.Exit(3)
			}
		}
		rf := resultFrame{ID: jf.ID, Attempt: jf.Attempt}
		if spec, err := runner.ParseJobID(jf.ID); err != nil {
			rf.Err = err.Error()
		} else {
			rf.Result = ResultOf(spec.Execute())
		}
		if err := writeFlush(bw, rf); err != nil {
			os.Exit(1)
		}
		if mode == "duplicate-result" {
			// Deliver the same result a second time — the duplicate must be
			// discarded by the (id, attempt) tag check, not double-merged.
			if err := writeFlush(bw, rf); err != nil {
				os.Exit(1)
			}
		}
	}
}

type sliceWriter []byte

func (w *sliceWriter) Write(p []byte) (int, error) {
	*w = append(*w, p...)
	return len(p), nil
}
