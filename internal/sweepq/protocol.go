// Package sweepq is the sharded sweep service: a priority job queue with
// dedup, a fleet of worker processes speaking length-prefixed JSON over
// stdin/stdout, an append-only completion journal for checkpoint/resume, and
// an HTTP plane (mounted on internal/prof's server) for submission and live
// progress. Jobs are identified by their canonical runner job IDs, which
// makes every job replayable, dedupable, and cacheable: an identical job ID
// always produces an identical result, so a completed job's blob can be
// served forever from the content-addressed result store.
package sweepq

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"

	"offchip/internal/core"
	"offchip/internal/obs"
	"offchip/internal/runner"
	"offchip/internal/sim"
)

// maxFrame bounds a single protocol frame. Job results carry full registry
// snapshots, which for big meshes reach megabytes; a corrupt length prefix
// must still never drive an unbounded allocation.
const maxFrame = 1 << 28 // 256 MiB

// WriteFrame writes one length-prefixed JSON frame: a 4-byte big-endian
// payload length followed by the JSON encoding of v.
func WriteFrame(w io.Writer, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("sweepq: encode frame: %w", err)
	}
	if len(body) > maxFrame {
		return fmt.Errorf("sweepq: frame of %d bytes exceeds the %d limit", len(body), maxFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// ReadFrame reads one length-prefixed frame into v. A clean EOF before the
// first header byte returns io.EOF; EOF anywhere later (a truncated frame)
// returns an explicit error, so a dying peer is always distinguishable from
// an orderly close.
func ReadFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("sweepq: truncated frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return fmt.Errorf("sweepq: frame length %d exceeds the %d limit", n, maxFrame)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return fmt.Errorf("sweepq: truncated %d-byte frame: %w", n, err)
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("sweepq: bad frame payload: %w", err)
	}
	return nil
}

// jobFrame is the server→worker message: run this job. Attempt tags the
// assignment so a late or duplicated result from an earlier attempt can
// never be mistaken for the current one. CacheDir points the worker at the
// shared on-disk trace cache (empty: no caching).
type jobFrame struct {
	ID       string `json:"id"`
	Attempt  int    `json:"attempt"`
	CacheDir string `json:"cache_dir,omitempty"`
}

// resultFrame is the worker→server reply. Err carries transport-level
// failures (an unparseable job ID reaching the worker); job-level failures
// ride inside Result.Err so they stay attached to the job's identity.
type resultFrame struct {
	ID      string     `json:"id"`
	Attempt int        `json:"attempt"`
	Err     string     `json:"err,omitempty"`
	Result  *JobResult `json:"result,omitempty"`
}

// RunResult is one run's deterministic outcome: its exec time (the merge
// horizon for time-weighted gauges) and the full registry snapshot.
type RunResult struct {
	Run      string      `json:"run"`
	ExecTime int64       `json:"exec_time"`
	Points   []obs.Point `json:"points"`
}

// JobResult is the wire (and on-disk blob) form of one completed job: the
// deterministic projection the differential tests compare, plus everything
// needed to rebuild the job's contribution to a merged sweep registry.
type JobResult struct {
	ID        string          `json:"id"`
	ShortID   string          `json:"short_id"`
	Err       string          `json:"err,omitempty"`
	Canonical json.RawMessage `json:"canonical,omitempty"`
	Runs      []RunResult     `json:"runs,omitempty"`
}

// ResultOf projects a finished job outcome into its wire form. Runs are
// serialized in sorted name order, so the blob bytes for a given job ID are
// identical wherever the job ran.
func ResultOf(out *runner.JobOutcome) *JobResult {
	jr := &JobResult{ID: out.ID, ShortID: out.ShortID}
	if out.Err != nil {
		jr.Err = out.Err.Error()
		return jr
	}
	var err error
	if jr.Canonical, err = out.CanonicalJSON(); err != nil {
		jr.Err = err.Error()
		return jr
	}
	runs := make([]string, 0, len(out.Observers))
	for run := range out.Observers {
		runs = append(runs, run)
	}
	sort.Strings(runs)
	for _, run := range runs {
		ob := out.Observers[run]
		if ob == nil || ob.Reg == nil {
			continue
		}
		until := out.ExecTimes[run]
		jr.Runs = append(jr.Runs, RunResult{
			Run:      run,
			ExecTime: until,
			Points:   ob.Reg.Snapshot(until),
		})
	}
	return jr
}

// MergeInto folds the result's runs into a merged sweep registry, exactly as
// runner.Result.Merged does for in-process outcomes: each run is rescoped
// with job=<short ID> and run=<name> labels and finalized at its exec time.
// Merging is commutative across jobs, so the merged registry's snapshot is
// byte-identical however completions were ordered.
func (jr *JobResult) MergeInto(m *obs.Registry) {
	if jr.Err != "" {
		return
	}
	for _, rr := range jr.Runs {
		m.MergeScoped(obs.FromPoints(rr.Points), rr.ExecTime, "job="+jr.ShortID, "run="+rr.Run)
	}
}

// canonicalOutcome mirrors runner's deterministic projection (field names
// and order must match runner.canonicalOutcome exactly — the rebuilt
// outcome's CanonicalJSON is asserted byte-identical to the original).
type canonicalOutcome struct {
	ID        string
	Baseline  *core.Metrics `json:",omitempty"`
	Optimized *core.Metrics `json:",omitempty"`
	Optimal   *core.Metrics `json:",omitempty"`
	PctArrays float64
	PctRefs   float64
	Run       *sim.Result `json:",omitempty"`
}

// Outcome rebuilds a runner.JobOutcome from the wire form — the inverse of
// ResultOf up to the deterministic projection: CanonicalJSON of the rebuilt
// outcome is byte-identical to the original's, and the per-run registries
// merge identically (obs.FromPoints restores exact gauge state). Worker and
// WallNS are left zero; the fleet executor fills them from its own clock.
func (jr *JobResult) Outcome() *runner.JobOutcome {
	spec, err := runner.ParseJobID(jr.ID)
	out := &runner.JobOutcome{
		Spec:      spec,
		ID:        jr.ID,
		ShortID:   jr.ShortID,
		Observers: map[string]*obs.Observer{},
		ExecTimes: map[string]int64{},
	}
	if err != nil {
		out.Err = err
		return out
	}
	if jr.Err != "" {
		out.Err = errors.New(jr.Err)
		return out
	}
	out.Canonical = jr.Canonical
	var c canonicalOutcome
	if err := json.Unmarshal(jr.Canonical, &c); err != nil {
		out.Err = fmt.Errorf("sweepq: result for %s has bad canonical payload: %w", jr.ID, err)
		return out
	}
	switch {
	case c.Baseline != nil && c.Optimized != nil:
		cmp := &core.Comparison{
			App:                spec.App,
			Mapping:            spec.Mapping,
			PctArraysOptimized: c.PctArrays,
			PctRefsSatisfied:   c.PctRefs,
		}
		cmp.Baseline = *c.Baseline
		cmp.Optimized = *c.Optimized
		if c.Optimal != nil {
			cmp.Optimal = *c.Optimal
		}
		out.Comparison = cmp
	case c.Run != nil:
		out.Run = c.Run
	}
	for _, rr := range jr.Runs {
		out.Observers[rr.Run] = &obs.Observer{Reg: obs.FromPoints(rr.Points)}
		out.ExecTimes[rr.Run] = rr.ExecTime
	}
	return out
}

// writeFlush frames v and flushes — one syscall-visible message per call,
// which is what keeps a SIGKILLed peer from leaving a half-frame behind
// only at the true kill point rather than on every write.
func writeFlush(bw *bufio.Writer, v any) error {
	if err := WriteFrame(bw, v); err != nil {
		return err
	}
	return bw.Flush()
}
